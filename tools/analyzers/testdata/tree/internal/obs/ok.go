// Package obs may use sync/atomic: it owns the concurrency primitives.
package obs

import "sync/atomic"

// V is a counter cell.
var V atomic.Uint64
