// Package client exercises every errsentinel case.
package client

import (
	"context"
	"errors"
	"io"
)

func read(r io.Reader) error {
	var err error
	if err == io.EOF { // finding: line 12
		return nil
	}
	if io.EOF != err { // finding: line 15 (sentinel on the left)
		return err
	}
	if err != context.Canceled { // finding: line 18
		return err
	}
	return nil
}

func fine(err error) error {
	if errors.Is(err, io.EOF) { // ok: errors.Is
		return nil
	}
	if err == io.ErrShortWrite { // ok: not a wrapping-prone sentinel in the list
		return nil
	}
	if err == io.EOF { // sentinel-ok: json.Decoder documents the unwrapped value
		return nil
	}
	return err
}
