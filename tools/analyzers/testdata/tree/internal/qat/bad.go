// Package qat must not import sync/atomic (line 4 is the finding).
package qat

import "sync/atomic"

// N is a sneaky lock-free counter.
var N atomic.Int64
