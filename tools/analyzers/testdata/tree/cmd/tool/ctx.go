// Package main exercises every ctxbackground case.
package main

import "context"

func fresh(ctx context.Context) error { // finding: line 8
	_ = ctx
	sub := context.Background()
	return sub.Err()
}

func todo(ctx context.Context) error { // finding: line 13
	sub := context.TODO()
	_ = ctx
	return sub.Err()
}

func nilDefault(ctx context.Context) error { // ok: re-roots the parameter
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx.Err()
}

func annotated(ctx context.Context) error { // ok: deliberate detachment
	_ = ctx
	audit := context.Background() // detached: audit log must survive request cancellation
	return audit.Err()
}

func noCtx() error { // ok: no context parameter to propagate
	return context.Background().Err()
}

func main() {}
