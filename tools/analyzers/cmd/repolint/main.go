// repolint runs the repository's custom Go analyzers (tools/analyzers)
// over a source tree and prints one line per finding.
//
// Usage:
//
//	repolint [root]
//
// The root defaults to ".". Exit status: 0 clean, 1 findings, 2 errors.
package main

import (
	"fmt"
	"os"

	"tangled/tools/analyzers"
)

func main() {
	root := "."
	switch len(os.Args) {
	case 1:
	case 2:
		root = os.Args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: repolint [root]")
		os.Exit(2)
	}
	findings, err := analyzers.Run(root, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
