package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// CtxBackground flags context.Background()/context.TODO() calls inside
// functions that already receive a context.Context: the incoming context
// carries the request's deadline and cancellation, and manufacturing a
// fresh root silently detaches the work from both. Two escapes are
// recognized: the nil-defaulting idiom `ctx = context.Background()` that
// re-roots the received parameter itself, and a same-line "// detached:"
// comment naming why work must outlive the caller.
var CtxBackground = &Analyzer{
	Name: "ctxbackground",
	Doc:  "propagate the received context.Context instead of context.Background()/TODO()",
	Check: func(f *File) []Finding {
		var out []Finding
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			params := ctxParamNames(fn.Type)
			if len(params) == 0 {
				continue
			}
			defaulting := map[*ast.CallExpr]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					// ctx = context.Background() re-roots the parameter —
					// the nil-default idiom, not a detachment.
					if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
						if id, ok := as.Lhs[0].(*ast.Ident); ok && params[id.Name] {
							if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
								defaulting[call] = true
							}
						}
					}
					return true
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok || pkg.Name != "context" {
					return true
				}
				if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
					return true
				}
				if defaulting[call] || detachedOnLine(f, call.Pos()) {
					return true
				}
				out = append(out, f.finding("ctxbackground", call.Pos(),
					"context.%s() inside a function receiving a context.Context: propagate the parameter (or mark the call \"// detached: <why>\")",
					sel.Sel.Name))
				return true
			})
		}
		return out
	},
}

// ctxParamNames returns the names of the signature's context.Context
// parameters (empty when there are none).
func ctxParamNames(ft *ast.FuncType) map[string]bool {
	if ft.Params == nil {
		return nil
	}
	var names map[string]bool
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "context" || sel.Sel.Name != "Context" {
			continue
		}
		if names == nil {
			names = map[string]bool{}
		}
		for _, n := range field.Names {
			names[n.Name] = true
		}
	}
	return names
}

// detachedOnLine reports whether a "// detached:" comment sits on the same
// line as pos.
func detachedOnLine(f *File, pos token.Pos) bool {
	line := f.Fset.Position(pos).Line
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			if f.Fset.Position(c.Pos()).Line == line && strings.Contains(c.Text, "detached:") {
				return true
			}
		}
	}
	return false
}
