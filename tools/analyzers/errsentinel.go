package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// sentinelErrors lists well-known sentinel error values whose identity
// comparison breaks under wrapping: an error that arrives through
// fmt.Errorf("...: %w", err) or a custom Unwrap chain is the sentinel for
// errors.Is but not for ==. Qualified name -> true.
var sentinelErrors = map[string]bool{
	"io.EOF":                   true,
	"io.ErrUnexpectedEOF":      true,
	"io.ErrClosedPipe":         true,
	"context.Canceled":         true,
	"context.DeadlineExceeded": true,
	"sql.ErrNoRows":            true,
	"net.ErrClosed":            true,
	"os.ErrNotExist":           true,
	"os.ErrExist":              true,
	"os.ErrClosed":             true,
	"os.ErrDeadlineExceeded":   true,
}

// ErrSentinel flags == / != comparisons against well-known sentinel errors
// (io.EOF, context.Canceled, ...): they miss wrapped errors, which is how
// failures actually travel through this codebase's layers (farm joins
// contexts, the server classifies with errors.Is, the client decodes
// wrapped transport failures). Use errors.Is instead. A comparison that is
// deliberately exact — e.g. a decoder contract that documents the unwrapped
// sentinel — may carry a same-line "// sentinel-ok: <why>" comment.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc:  "compare sentinel errors with errors.Is, not == / != (escape: \"// sentinel-ok: <why>\")",
	Check: func(f *File) []Finding {
		var out []Finding
		ast.Inspect(f.AST, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			name := sentinelName(bin.X)
			if name == "" {
				name = sentinelName(bin.Y)
			}
			if name == "" || sentinelOKOnLine(f, bin.Pos()) {
				return true
			}
			verb := "errors.Is(err, " + name + ")"
			if bin.Op == token.NEQ {
				verb = "!" + verb
			}
			out = append(out, f.finding("errsentinel", bin.Pos(),
				"comparison with %s misses wrapped errors: use %s (or mark \"// sentinel-ok: <why>\")",
				name, verb))
			return true
		})
		return out
	},
}

// sentinelName returns the qualified name when e is a selector over one of
// the known sentinel error values, else "".
func sentinelName(e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	name := pkg.Name + "." + sel.Sel.Name
	if !sentinelErrors[name] {
		return ""
	}
	return name
}

// sentinelOKOnLine reports whether a "// sentinel-ok:" comment sits on the
// same line as pos.
func sentinelOKOnLine(f *File, pos token.Pos) bool {
	line := f.Fset.Position(pos).Line
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			if f.Fset.Position(c.Pos()).Line == line && strings.Contains(c.Text, "sentinel-ok:") {
				return true
			}
		}
	}
	return false
}
