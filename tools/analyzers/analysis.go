// Package analyzers enforces repository-wide Go invariants with a small
// go/analysis-style framework built only on the standard library's go/ast
// and go/parser (the container this repo builds in has no golang.org/x/tools,
// so the real go/analysis API is off the table; the shape here mirrors it so
// analyzers port over directly if that dependency ever lands).
//
// An Analyzer inspects one parsed file at a time — purely syntactic, no type
// information — and reports Findings. The driver (cmd/repolint) walks the
// repository, and the package's own tests run every analyzer over the live
// tree, so `go test ./...` fails when an invariant regresses.
//
// Current invariants:
//
//   - atomicscope: sync/atomic stays confined to the packages that own
//     concurrency primitives (see atomicAllowed); everything else uses
//     channels, sync, or the obs counters.
//   - ctxbackground: a function that receives a context.Context must not
//     manufacture context.Background()/context.TODO() — the caller's
//     context (deadlines, cancellation) has to propagate into run loops.
//     A call deliberately detaching work may carry a trailing
//     "// detached:" comment naming why.
//   - errsentinel: well-known sentinel errors (io.EOF, context.Canceled,
//     ...) are compared with errors.Is, never == / != — identity breaks
//     under %w wrapping, and errors here travel through wrapped layers
//     (farm context joins, server classification, client transport). A
//     deliberate exact comparison may carry a trailing "// sentinel-ok:"
//     comment naming why.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	// Path is the file, relative to the walked root, slash-separated.
	Path string
	Line int
	Col  int
	// Analyzer names the check; Msg explains the violation.
	Analyzer string
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Path, f.Line, f.Col, f.Analyzer, f.Msg)
}

// File is one parsed source file handed to analyzers.
type File struct {
	// Path is relative to the walked root, slash-separated.
	Path string
	Fset *token.FileSet
	AST  *ast.File
}

// pos converts a token position into a Finding location.
func (f *File) finding(analyzer string, p token.Pos, format string, args ...interface{}) Finding {
	pos := f.Fset.Position(p)
	return Finding{
		Path:     f.Path,
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: analyzer,
		Msg:      fmt.Sprintf(format, args...),
	}
}

// Analyzer is one syntactic invariant.
type Analyzer struct {
	Name string
	Doc  string
	// Check inspects one file and returns its violations.
	Check func(f *File) []Finding
}

// All returns every repository analyzer.
func All() []*Analyzer {
	return []*Analyzer{AtomicScope, CtxBackground, ErrSentinel}
}

// Run parses every .go file under root (skipping vendor-ish and VCS
// directories and each analyzer package's testdata) and applies the
// analyzers. Findings come back sorted by position; a parse failure is an
// error — the tree is expected to build.
func Run(root string, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || name == "vendor" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		astf, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		f := &File{Path: rel, Fset: fset, AST: astf}
		for _, a := range analyzers {
			findings = append(findings, a.Check(f)...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
