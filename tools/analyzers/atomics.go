package analyzers

import (
	"strconv"
	"strings"
)

// atomicAllowed lists the directory prefixes permitted to import
// sync/atomic: the packages that own a concurrency primitive (metric cells,
// the farm's work counters, the server's drain/queue state, the client's
// and load tool's progress counters). Everywhere else lock-free cleverness
// is a review hazard — use channels, sync, or an obs counter, or extend
// this list deliberately in the same change that adds the primitive.
var atomicAllowed = []string{
	"internal/obs",
	"internal/farm",
	"internal/memo", // cache hit/miss/eviction/dedup counters + obs handle swap
	"internal/jobs", // worker/drain coordination in the async queue and its tests
	"internal/server",
	"internal/client",
	"internal/cluster", // per-node in-flight/missed-beat/demotion clocks on the router hot path
	"cmd/qatclient",
}

// AtomicScope flags sync/atomic imports outside the allowlist.
var AtomicScope = &Analyzer{
	Name: "atomicscope",
	Doc:  "confine sync/atomic to the packages that own concurrency primitives",
	Check: func(f *File) []Finding {
		dir := f.Path
		if i := strings.LastIndexByte(dir, '/'); i >= 0 {
			dir = dir[:i]
		} else {
			dir = "."
		}
		for _, ok := range atomicAllowed {
			if dir == ok || strings.HasPrefix(dir, ok+"/") {
				return nil
			}
		}
		var out []Finding
		for _, imp := range f.AST.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "sync/atomic" {
				continue
			}
			out = append(out, f.finding("atomicscope", imp.Pos(),
				"sync/atomic import outside the allowed packages (%s): use channels, sync, or an obs counter, or extend the allowlist deliberately",
				strings.Join(atomicAllowed, ", ")))
		}
		return out
	},
}
