package analyzers

import (
	"fmt"
	"testing"
)

// TestFixtureTree pins every analyzer against the testdata tree: exact
// paths, lines and analyzer names.
func TestFixtureTree(t *testing.T) {
	findings, err := Run("testdata/tree", All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s:%d %s", f.Path, f.Line, f.Analyzer))
	}
	want := []string{
		"cmd/tool/ctx.go:8 ctxbackground",
		"cmd/tool/ctx.go:13 ctxbackground",
		"internal/client/sentinel.go:12 errsentinel",
		"internal/client/sentinel.go:15 errsentinel",
		"internal/client/sentinel.go:18 errsentinel",
		"internal/qat/bad.go:4 atomicscope",
	}
	if len(got) != len(want) {
		t.Fatalf("findings:\n  got  %v\n  want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("finding %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRepositoryInvariants runs every analyzer over the live tree, so a
// regression anywhere in the repository fails `go test ./...` — the same
// gate CI applies through cmd/repolint.
func TestRepositoryInvariants(t *testing.T) {
	findings, err := Run("../..", All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
