// tangled-asm assembles Tangled/Qat assembly source into a $readmemh-style
// hex word image.
//
// Usage:
//
//	tangled-asm [-o image.hex] [-l] prog.asm
//
// With -l a listing (address, word, source line) is printed to stdout.
// Input "-" reads from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tangled/internal/asm"
)

func main() {
	out := flag.String("o", "", "output hex image path (default: stdout)")
	listing := flag.Bool("l", false, "print a listing to stdout")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tangled-asm [-o out.hex] [-l] prog.asm")
		os.Exit(2)
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *listing {
		printListing(prog)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	} else if *listing {
		return // listing already on stdout; don't mix in the image
	}
	if err := asm.WriteHex(w, prog.Words); err != nil {
		fatal(err)
	}
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func printListing(p *asm.Program) {
	dis := asm.Disassemble(p.Words)
	addr := 0
	byAddr := map[int]string{}
	for name, a := range p.Symbols {
		if prev, ok := byAddr[int(a)]; ok {
			byAddr[int(a)] = prev + " " + name
		} else {
			byAddr[int(a)] = name
		}
	}
	i := 0
	for _, text := range dis {
		if labels, ok := byAddr[addr]; ok {
			fmt.Printf("%s:\n", labels)
		}
		words := 1
		if i+1 < len(p.Words) {
			// Two-word forms consume the next word too; detect by
			// re-rendering length.
			if len(text) > 0 && (text[0] == 'q' || isTwoWordMnemonic(text)) {
				words = 2
			}
		}
		fmt.Printf("%04x:  %04x", addr, p.Words[addr])
		if words == 2 {
			fmt.Printf(" %04x", p.Words[addr+1])
		} else {
			fmt.Printf("     ")
		}
		fmt.Printf("  %s\n", text)
		addr += words
		i++
	}
}

func isTwoWordMnemonic(text string) bool {
	for _, m := range []string{"qand ", "qor ", "qxor ", "ccnot ", "cswap ", "cnot ", "swap "} {
		if len(text) >= len(m) && text[:len(m)] == m {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tangled-asm:", err)
	os.Exit(1)
}
