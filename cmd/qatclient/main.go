// qatclient talks to a qatserver: submit one program, assemble remotely,
// poll health/buildinfo, or drive a synthetic load against the serving
// stack and record the measured throughput/latency distribution.
//
// Usage:
//
//	qatclient -server URL run [-mode M] [-ways N] [-stages N] [-const-regs]
//	          [-backend dense|re|auto] [-chunk-ways N] [-spill-runs N]
//	          [-timeout D] [-id ID] FILE.s     # or - for stdin
//	qatclient -server URL assemble FILE.s
//	qatclient -server URL health
//	qatclient -server URL buildinfo
//	qatclient -server URL submit [-tenant T] [-priority N] [-weight N]
//	          [-wait] [run flags] FILE.s       # async: POST /v1/jobs
//	qatclient -server URL status JOB-ID
//	qatclient -server URL wait JOB-ID          # poll until terminal
//	qatclient -server URL cancel JOB-ID
//	qatclient -server URL events [-since N] [-follow=false]
//	qatclient -server URL -load N [-concurrency C] [-batch-frac F]
//	          [-memo] [-saturate] [-out BENCH_server.json]
//
// Examples:
//
//	qatclient -server http://127.0.0.1:8080 run prog.s
//	echo 'lex $1,7' | qatclient -server http://127.0.0.1:8080 run -
//	qatclient -server http://127.0.0.1:8080 -load 200 -concurrency 16
//
// Load mode submits N requests (a mix of /v1/run and /v1/batch drawn from
// the shared random-program corpus) from C concurrent workers through the
// retrying client, then writes BENCH_server.json: request counts by
// status, throughput, and the client-observed latency distribution.
// -saturate adds a deliberate burst against a tiny admission queue to
// exercise the 429 path; those rejections are reported separately and do
// not count as failures. -memo skews the mix to ~90% repeats of a hot
// program set — the shape that exercises the server's execution cache —
// and the report's cached_results field counts how many results came back
// with the cached flag (tallied whether or not -memo is set).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tangled/internal/client"
	"tangled/internal/farm/farmtest"
	"tangled/internal/server"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8080", "qatserver base URL")
	load := flag.Int("load", 0, "load-generator mode: total requests to send")
	concurrency := flag.Int("concurrency", 8, "load mode: concurrent workers")
	batchFrac := flag.Float64("batch-frac", 0.25, "load mode: fraction of requests sent as /v1/batch")
	saturate := flag.Bool("saturate", false, "load mode: add a burst phase expecting 429 backpressure")
	memoMix := flag.Bool("memo", false, "load mode: ~90%-repeat mix that exercises the server's execution cache")
	out := flag.String("out", "BENCH_server.json", "load mode: report file (\"-\" for stdout)")
	mode := flag.String("mode", "functional", "run: execution mode (functional or pipelined)")
	ways := flag.Int("ways", 0, "run: entanglement degree (0 = full hardware)")
	stages := flag.Int("stages", 0, "run: pipeline depth for -mode pipelined (4 or 5)")
	constRegs := flag.Bool("const-regs", false, "run: constant-register Qat variant")
	backendName := flag.String("backend", "", "run: Qat register file (dense, re, or auto — the server's planner picks and reports its choice)")
	chunkWays := flag.Int("chunk-ways", 0, "run: re backend symbol chunk width (0 = server default)")
	spillRuns := flag.Int("spill-runs", 0, "run: re backend dense-spill run budget (0 = server default, negative disables)")
	timeout := flag.Duration("timeout", 0, "run: per-program execution deadline")
	reqID := flag.String("id", "", "run: explicit request/idempotency ID")
	tenant := flag.String("tenant", "", "submit: fair-queuing tenant (default \"default\")")
	priority := flag.Int("priority", 0, "submit: within-tenant priority (higher runs first)")
	weight := flag.Int("weight", 0, "submit: tenant fair-share weight (default 1)")
	wait := flag.Bool("wait", false, "submit: block until the job is terminal and print the final record")
	since := flag.Uint64("since", 0, "events: replay buffered events after this sequence number")
	follow := flag.Bool("follow", true, "events: keep streaming live events after the replay")
	flag.Parse()

	c := client.New(*serverURL)
	if *load > 0 {
		if err := runLoad(c, *load, *concurrency, *batchFrac, *memoMix, *saturate, *out, *serverURL); err != nil {
			fmt.Fprintf(os.Stderr, "qatclient: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "qatclient: need a command (run, assemble, health, buildinfo, submit, status, wait, cancel, events) or -load N; see -h")
		os.Exit(2)
	}
	ctx := context.Background()
	var err error
	rf := runFlags{
		mode: *mode, ways: *ways, stages: *stages, constRegs: *constRegs,
		backend: *backendName, chunkWays: *chunkWays, spillRuns: *spillRuns,
		timeout: *timeout, id: *reqID,
	}
	switch cmd := flag.Arg(0); cmd {
	case "run":
		err = cmdRun(ctx, c, flag.Args()[1:], rf)
	case "assemble":
		err = cmdAssemble(ctx, c, flag.Args()[1:])
	case "submit":
		err = cmdSubmit(ctx, c, flag.Args()[1:], rf, *tenant, *priority, *weight, *wait)
	case "status":
		err = cmdJobStatus(ctx, c, flag.Args()[1:])
	case "wait":
		err = cmdJobWait(ctx, c, flag.Args()[1:])
	case "cancel":
		err = cmdJobCancel(ctx, c, flag.Args()[1:])
	case "events":
		err = cmdEvents(ctx, c, *since, *follow)
	case "health":
		// The superset decoder works against worker and coordinator alike:
		// a plain worker simply has no node rows, so print the flat shape.
		var h server.ClusterHealth
		if h, err = c.ClusterHealth(ctx); err == nil {
			if len(h.Nodes) == 0 {
				err = printJSON(h.Health)
			} else {
				err = printJSON(h)
			}
		}
	case "buildinfo":
		var bi server.ClusterBuildInfo
		if bi, err = c.ClusterBuildInfo(ctx); err == nil {
			if len(bi.Nodes) == 0 {
				err = printJSON(bi.BuildInfo)
			} else {
				err = printJSON(bi)
			}
		}
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qatclient: %v\n", err)
		os.Exit(1)
	}
}

func readSource(args []string) (string, error) {
	if len(args) != 1 {
		return "", errors.New("need exactly one source file (or - for stdin)")
	}
	if args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

func printJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdRun(ctx context.Context, c *client.Client, args []string, rf runFlags) error {
	src, err := readSource(args)
	if err != nil {
		return err
	}
	res, err := c.Run(ctx, rf.request(src))
	if err != nil {
		return err
	}
	return printJSON(res)
}

func cmdAssemble(ctx context.Context, c *client.Client, args []string) error {
	src, err := readSource(args)
	if err != nil {
		return err
	}
	res, err := c.Assemble(ctx, src)
	if err != nil {
		return err
	}
	return printJSON(res)
}

// ---- load generator ----

// benchReport is the schema of BENCH_server.json.
type benchReport struct {
	Benchmark   string  `json:"benchmark"`
	Server      string  `json:"server"`
	Generated   string  `json:"generated"`
	GoVersion   string  `json:"go_version"`
	NumCPU      int     `json:"num_cpu"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	BatchFrac   float64 `json:"batch_frac"`

	OK        int64 `json:"ok"`
	Failed    int64 `json:"failed"`
	Programs  int64 `json:"programs"`
	Rejected  int64 `json:"saturation_429s"`
	Saturated bool  `json:"saturate_phase"`
	// MemoMix records whether -memo shaped the request stream; Cached
	// counts program results the server answered from its execution cache.
	MemoMix bool  `json:"memo_mix"`
	Cached  int64 `json:"cached_results"`

	WallSeconds float64 `json:"wall_seconds"`
	ReqPerSec   float64 `json:"req_per_sec"`
	ProgPerSec  float64 `json:"prog_per_sec"`

	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP90 float64 `json:"latency_ms_p90"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
	LatencyMsMax float64 `json:"latency_ms_max"`
}

// runLoad fires total requests from conc workers: a mixed stream of single
// runs and small batches over the shared corpus, every program's result
// checked for an execution error.
func runLoad(c *client.Client, total, conc int, batchFrac float64, memoMix, saturate bool, outPath, serverURL string) error {
	if conc < 1 {
		conc = 1
	}
	// Pre-generate the program mix so workers only do I/O under timing.
	// With -memo the hot set shrinks and every tenth request gets a program
	// no other request shares, approximating a 90%-repeat serving stream.
	hot := 32
	if memoMix {
		hot = 8
	}
	srcs := make([]string, hot)
	for i := range srcs {
		srcs[i] = farmtest.Generate(farmtest.Seed(i))
	}
	unique := func(i int) string { return farmtest.Generate(farmtest.Seed(10_000 + i)) }

	var ok, failed, programs, cached atomic.Int64
	latencies := make([]float64, total) // ms, indexed by request number
	var wg sync.WaitGroup
	next := make(chan int)

	ctx := context.Background()
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				err := doOne(ctx, c, i, srcs, unique, memoMix, batchFrac, &programs, &cached)
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
				if err != nil {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "qatclient: request %d: %v\n", i, err)
				} else {
					ok.Add(1)
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	var rejected int64
	if saturate {
		rejected = saturationBurst(ctx, serverURL, srcs[0])
	}

	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	report := benchReport{
		Benchmark:   "qatserver-load",
		Server:      serverURL,
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Requests:    total,
		Concurrency: conc,
		BatchFrac:   batchFrac,
		OK:          ok.Load(),
		Failed:      failed.Load(),
		Programs:    programs.Load(),
		Rejected:    rejected,
		Saturated:   saturate,
		MemoMix:     memoMix,
		Cached:      cached.Load(),
		WallSeconds: wall.Seconds(),
		ReqPerSec:   float64(total) / wall.Seconds(),
		ProgPerSec:  float64(programs.Load()) / wall.Seconds(),

		LatencyMsP50: pct(0.50),
		LatencyMsP90: pct(0.90),
		LatencyMsP99: pct(0.99),
		LatencyMsMax: pct(1.0),
	}

	var out io.Writer = os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"qatclient: %d ok, %d failed, %d programs (%d cached) in %.2fs (%.1f req/s, %.1f prog/s), p50 %.1fms p99 %.1fms\n",
		report.OK, report.Failed, report.Programs, report.Cached, report.WallSeconds,
		report.ReqPerSec, report.ProgPerSec, report.LatencyMsP50, report.LatencyMsP99)
	if failed.Load() > 0 {
		return fmt.Errorf("%d of %d requests failed", failed.Load(), total)
	}
	return nil
}

// doOne sends request i: mostly single runs, every 1/batchFrac-th a small
// batch, ways and source rotating through the corpus. With memoMix every
// tenth program slot draws a never-repeated source instead of the hot set.
func doOne(ctx context.Context, c *client.Client, i int, srcs []string, unique func(int) string,
	memoMix bool, batchFrac float64, programs, cached *atomic.Int64) error {
	src := func(k int) string {
		if memoMix && (i+k)%10 == 9 {
			return unique(i + k)
		}
		return srcs[(i+k)%len(srcs)]
	}
	isBatch := batchFrac > 0 && int(1/batchFrac) > 0 && i%int(1/batchFrac) == 0
	if !isBatch {
		res, err := c.Run(ctx, server.RunRequest{
			Src:  src(0),
			Ways: farmtest.Ways,
		})
		if err != nil {
			return err
		}
		programs.Add(1)
		if res.Cached {
			cached.Add(1)
		}
		if res.Error != "" {
			return fmt.Errorf("run result: %s", res.Error)
		}
		return nil
	}
	n := 2 + i%3
	batch := server.BatchRequest{Programs: make([]server.RunRequest, n)}
	for k := 0; k < n; k++ {
		batch.Programs[k] = server.RunRequest{
			Src:  src(k),
			Ways: farmtest.Ways,
		}
	}
	results, err := c.Batch(ctx, batch)
	if err != nil {
		return err
	}
	programs.Add(int64(len(results)))
	for _, r := range results {
		if r.Cached {
			cached.Add(1)
		}
		if r.Error != "" {
			return fmt.Errorf("batch result %d: %s", r.Index, r.Error)
		}
	}
	return nil
}

// saturationBurst fires a no-retry burst to provoke 429s and reports how
// many came back — evidence the admission control actually engages. Runs
// against whatever queue the server has; with a production-sized queue it
// may observe zero.
func saturationBurst(ctx context.Context, serverURL, src string) int64 {
	raw := client.NewWith(client.Config{BaseURL: serverURL, MaxRetries: -1})
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := raw.Run(ctx, server.RunRequest{Src: src, Ways: farmtest.Ways})
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.Status == 429 {
				rejected.Add(1)
			}
		}()
	}
	wg.Wait()
	return rejected.Load()
}
