package main

// Async job subcommands: submit / status / wait / cancel / events — the
// CLI face of POST /v1/jobs and GET /v1/events. submit prints the accepted
// record (or, with -wait, polls to the terminal one); events streams
// NDJSON lifecycle transitions to stdout, one JSON document per line, so
// the output pipes straight into jq or a log collector.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"tangled/internal/client"
	"tangled/internal/jobs"
	"tangled/internal/server"
)

// runFlags carries the shared run-shaped flags into run and submit.
type runFlags struct {
	mode      string
	ways      int
	stages    int
	constRegs bool
	backend   string
	chunkWays int
	spillRuns int
	timeout   time.Duration
	id        string
}

// request builds the RunRequest the flags describe for src.
func (rf runFlags) request(src string) server.RunRequest {
	req := server.RunRequest{
		ID: rf.id, Src: src, Mode: rf.mode,
		Ways: rf.ways, Stages: rf.stages, ConstRegs: rf.constRegs,
		Backend: rf.backend, ChunkWays: rf.chunkWays, SpillRuns: rf.spillRuns,
	}
	if rf.timeout > 0 {
		req.TimeoutMs = rf.timeout.Milliseconds()
	}
	return req
}

func cmdSubmit(ctx context.Context, c *client.Client, args []string,
	rf runFlags, tenant string, priority, weight int, wait bool) error {
	src, err := readSource(args)
	if err != nil {
		return err
	}
	req := server.JobRequest{
		RunRequest: rf.request(src),
		Tenant:     tenant,
		Priority:   priority,
		Weight:     weight,
	}
	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		return err
	}
	if !wait {
		return printJSON(st)
	}
	final, err := c.WaitJob(ctx, st.ID)
	if err != nil {
		return err
	}
	return printJSON(final)
}

func oneJobID(args []string) (string, error) {
	if len(args) != 1 {
		return "", errors.New("need exactly one job ID")
	}
	return args[0], nil
}

func cmdJobStatus(ctx context.Context, c *client.Client, args []string) error {
	id, err := oneJobID(args)
	if err != nil {
		return err
	}
	st, err := c.Job(ctx, id)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdJobWait(ctx context.Context, c *client.Client, args []string) error {
	id, err := oneJobID(args)
	if err != nil {
		return err
	}
	st, err := c.WaitJob(ctx, id)
	if err != nil {
		return err
	}
	if err := printJSON(st); err != nil {
		return err
	}
	if st.State != string(jobs.StateCompleted) {
		return fmt.Errorf("job %s ended %s: %s", id, st.State, st.Reason)
	}
	return nil
}

func cmdJobCancel(ctx context.Context, c *client.Client, args []string) error {
	id, err := oneJobID(args)
	if err != nil {
		return err
	}
	st, err := c.CancelJob(ctx, id)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdEvents(ctx context.Context, c *client.Client, since uint64, follow bool) error {
	enc := json.NewEncoder(os.Stdout)
	return c.Events(ctx, since, follow, func(ev jobs.Event) bool {
		enc.Encode(&ev)
		return true
	})
}
