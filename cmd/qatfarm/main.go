// qatfarm drives the concurrent batch-execution engine (internal/farm): it
// factors a list of semiprimes in parallel through the full Figure 10
// toolchain, fanning the generated programs across a bounded worker pool of
// recycled Tangled/Qat machines, and reports per-job results plus aggregate
// farm statistics.
//
// Usage:
//
//	qatfarm [-workers N] [-stages N] [-ways N] [-abits N] [-bbits N]
//	        [-reuse] [-const-regs] [-memo] [-timeout D]
//	        [-metrics FILE] [-http ADDR] [-trace FILE] n1 [n2 ...]
//	qatfarm -bench [-out BENCH_farm.json]
//	qatfarm -bench-memo [-workers N] [-out BENCH_memo.json]
//	qatfarm -bench-opt [-out BENCH_opt.json]
//
// Examples:
//
//	qatfarm 15 21 33 35 51 65 77 85 91 95      # factor ten semiprimes in parallel
//	qatfarm -workers 2 -timeout 5s 221 187     # bounded concurrency and deadline
//	qatfarm -bench                             # write the throughput sweep to BENCH_farm.json
//	qatfarm -metrics - 15 21 35                # dump Prometheus text to stdout after the run
//	qatfarm -http :8080 -trace out.jsonl 221   # live /metrics + expvar + pprof, JSONL cycle trace
//
// Observability (-metrics/-http/-trace) is off by default and costs nothing
// when off: the farm and the machine models carry nil metric handles. With
// -metrics FILE the registry is rendered as Prometheus text exposition
// format after the batch ("-" for stdout); with -http ADDR the same
// registry is served live at /metrics alongside expvar (/debug/vars) and
// pprof (/debug/pprof/) for the duration of the run; with -trace FILE the
// last cycles of the pipelined jobs are exported as versioned JSONL (see
// docs/TRACE.md).
//
// The -bench mode runs the same workloads as BenchmarkFarmThroughput (the
// Figure 10 factoring program on the pipelined machine and the subset-sum
// search on the functional machine) at worker counts 1/2/4/NumCPU, and
// writes jobs/s per worker count to a JSON file so future changes have a
// recorded perf trajectory.
//
// -memo attaches the content-addressed execution cache (internal/memo) to
// the engine, so resubmitting an identical program replays the recorded
// outcome instead of re-executing; the farm stats line reports the hits.
// The -bench-memo mode measures that: a 90%-repeat job mix (each distinct
// program submitted ten times) timed with the cache off and on, written to
// BENCH_memo.json with the off-vs-on speedup as the headline figure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"tangled/internal/asm"
	"tangled/internal/compile"
	"tangled/internal/farm"
	"tangled/internal/memo"
	"tangled/internal/obs"
	"tangled/internal/pipeline"
	"tangled/internal/qasm"
)

func main() {
	workers := flag.Int("workers", 0, "concurrent jobs (default GOMAXPROCS)")
	stages := flag.Int("stages", 5, "pipeline depth (4 or 5)")
	ways := flag.Int("ways", 0, "entanglement degree (default abits+bbits)")
	aBits := flag.Int("abits", 0, "first operand bits (default: fit the largest n)")
	bBits := flag.Int("bbits", 0, "second operand bits (default abits)")
	reuse := flag.Bool("reuse", true, "recycle Qat registers (needed beyond ~5x5 bits)")
	constRegs := flag.Bool("const-regs", false, "use the Section 5 constant-register bank")
	useMemo := flag.Bool("memo", false, "memoize executions in a content-addressed cache")
	timeout := flag.Duration("timeout", 0, "overall deadline for the batch (0 = none)")
	bench := flag.Bool("bench", false, "run the throughput sweep and write the regression file")
	benchMemo := flag.Bool("bench-memo", false, "benchmark the execution cache on a 90%-repeat mix")
	benchAoB := flag.Bool("bench-aob", false, "benchmark the SWAR AoB kernels against the definitional bit loops")
	benchOpt := flag.Bool("bench-opt", false, "measure the optimizing recompiler's static shrink on peephole-rich examples")
	out := flag.String("out", "", "output file for the -bench-* modes (defaults BENCH_<mode>.json)")
	metricsOut := flag.String("metrics", "", "write Prometheus text metrics to FILE after the run (- for stdout)")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on ADDR during the run")
	traceOut := flag.String("trace", "", "write the pipeline cycle trace as JSONL to FILE")
	flag.Parse()

	if *bench {
		if *out == "" {
			*out = "BENCH_farm.json"
		}
		if err := runBench(*out); err != nil {
			fatal(err)
		}
		return
	}
	if *benchMemo {
		if *out == "" {
			*out = "BENCH_memo.json"
		}
		if err := runBenchMemo(*out, *workers); err != nil {
			fatal(err)
		}
		return
	}
	if *benchAoB {
		if *out == "" {
			*out = "BENCH_aob.json"
		}
		if err := runBenchAoB(*out); err != nil {
			fatal(err)
		}
		return
	}
	if *benchOpt {
		if *out == "" {
			*out = "BENCH_opt.json"
		}
		if err := runBenchOpt(*out); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: qatfarm [flags] n1 [n2 ...]  (or qatfarm -bench)")
		os.Exit(2)
	}
	ns := make([]uint64, flag.NArg())
	var biggest uint64
	for i, arg := range flag.Args() {
		n, err := strconv.ParseUint(arg, 0, 16)
		if err != nil || n < 4 {
			fatal(fmt.Errorf("bad n %q (need a composite >= 4)", arg))
		}
		ns[i] = n
		if n > biggest {
			biggest = n
		}
	}

	ab := *aBits
	if ab == 0 {
		for uint64(1)<<uint(ab) <= biggest {
			ab++
		}
	}
	bb := *bBits
	if bb == 0 {
		bb = ab
	}
	w := *ways
	if w == 0 {
		w = ab + bb
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	copts := compile.Options{Reuse: *reuse, ConstantRegs: *constRegs}
	pcfg := pipeline.Config{Stages: *stages, Ways: w, Forwarding: true, MulLatency: 1, QatNextLatency: 1}

	engine := farm.New(*workers)
	var reg *obs.Registry
	var ring *obs.TraceRing
	if *metricsOut != "" || *httpAddr != "" || *traceOut != "" {
		reg = obs.NewRegistry()
		o := farm.NewObs(reg)
		if *traceOut != "" {
			ring = obs.NewTraceRing(0)
			o.Trace = ring
		}
		engine.SetObs(o)
	}
	if *useMemo {
		cache := memo.New(0)
		cache.SetObs(memo.NewObs(reg)) // nil registry: counters stay off
		engine.SetMemo(cache)
	}
	if *httpAddr != "" {
		srv, addr, err := obs.Serve(*httpAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "qatfarm: metrics at http://%s/metrics\n", addr)
		defer srv.Close()
	}

	reports, stats, err := qasm.FactorBatchOn(ctx, engine, ns, ab, bb, copts, pcfg)
	for i, n := range ns {
		rep := reports[i]
		if rep == nil {
			fmt.Printf("%d: FAILED\n", n)
			continue
		}
		line := fmt.Sprintf("%d = %d x %d", n, rep.Factors[0], rep.Factors[1])
		if s := rep.Result.Pipe; s != nil {
			line += fmt.Sprintf("   (%d qat insts, %d cycles, CPI %.3f)", rep.QatInsts, s.Cycles, s.CPI())
		}
		fmt.Println(line)
	}
	fmt.Println(stats)
	if *metricsOut != "" {
		if werr := writeMetrics(*metricsOut, reg); werr != nil {
			fatal(werr)
		}
	}
	if *traceOut != "" {
		if werr := writeTrace(*traceOut, ring); werr != nil {
			fatal(werr)
		}
	}
	if err != nil {
		fatal(err)
	}
}

// writeMetrics renders reg as Prometheus text to path ("-" for stdout).
func writeMetrics(path string, reg *obs.Registry) error {
	if path == "-" {
		reg.WritePrometheus(os.Stdout)
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	reg.WritePrometheus(f)
	return f.Close()
}

// writeTrace exports the trace ring as versioned JSONL to path.
func writeTrace(path string, ring *obs.TraceRing) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ring.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if n := ring.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "qatfarm: trace ring dropped %d oldest events (capacity %d)\n", n, obs.DefaultTraceCap)
	}
	return f.Close()
}

// benchReport is the schema of BENCH_farm.json.
type benchReport struct {
	Benchmark  string          `json:"benchmark"`
	Generated  string          `json:"generated"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	GoVersion  string          `json:"go_version"`
	Note       string          `json:"note"`
	Workloads  []benchWorkload `json:"workloads"`
}

type benchWorkload struct {
	Name         string       `json:"name"`
	JobsPerBatch int          `json:"jobs_per_batch"`
	Points       []benchPoint `json:"points"`
	// Speedup4v1 is jobs/s at 4 workers over jobs/s at 1 worker — the
	// headline scaling figure (meaningful only when num_cpu >= 4).
	Speedup4v1 float64 `json:"speedup_4_vs_1"`
}

type benchPoint struct {
	Workers     int     `json:"workers"`
	Jobs        uint64  `json:"jobs"`
	Seconds     float64 `json:"seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	PoolHitRate float64 `json:"pool_hit_rate"`
}

// benchWorkloads mirrors BenchmarkFarmThroughput's workload set.
func benchWorkloads() ([]struct {
	name string
	jobs []farm.Job
}, error) {
	const batch = 32
	factor, err := compile.FactorProgram(15, 8, 4, 4, compile.Options{})
	if err != nil {
		return nil, err
	}
	factorProg, err := asm.Assemble(factor.Asm)
	if err != nil {
		return nil, err
	}
	subset, err := compile.SubsetSumProgram([]uint64{3, 5, 9, 14, 20, 27, 33, 41}, 50, 8, compile.Options{Reuse: true})
	if err != nil {
		return nil, err
	}
	subsetProg, err := asm.Assemble(subset.Asm)
	if err != nil {
		return nil, err
	}
	mk := func(name string, prog *asm.Program, mode farm.Mode) []farm.Job {
		jobs := make([]farm.Job, batch)
		for i := range jobs {
			jobs[i] = farm.Job{Name: fmt.Sprintf("%s-%d", name, i), Prog: prog, Mode: mode,
				Ways: 8, Pipeline: pipeline.StudentConfig()}
		}
		return jobs
	}
	return []struct {
		name string
		jobs []farm.Job
	}{
		{"fig10-factor15-pipelined", mk("factor15", factorProg, farm.Pipelined)},
		{"subsetsum8-functional", mk("subset", subsetProg, farm.Functional)},
	}, nil
}

// measure runs batches at the given worker count until minDuration elapses
// and returns the aggregated point.
func measure(jobs []farm.Job, workers int, minDuration time.Duration) (benchPoint, error) {
	engine := farm.New(workers)
	if _, warm := engine.Run(context.Background(), jobs); warm.Errors > 0 {
		return benchPoint{}, fmt.Errorf("warmup batch had %d failures", warm.Errors)
	}
	var total farm.Stats
	start := time.Now()
	for time.Since(start) < minDuration {
		_, st := engine.Run(context.Background(), jobs)
		if st.Errors > 0 {
			return benchPoint{}, fmt.Errorf("batch had %d failures", st.Errors)
		}
		total.Jobs += st.Jobs
		total.PoolHits += st.PoolHits
		total.PoolMisses += st.PoolMisses
	}
	elapsed := time.Since(start)
	return benchPoint{
		Workers:     workers,
		Jobs:        total.Jobs,
		Seconds:     elapsed.Seconds(),
		JobsPerSec:  float64(total.Jobs) / elapsed.Seconds(),
		PoolHitRate: total.PoolHitRate(),
	}, nil
}

func runBench(path string) error {
	workloads, err := benchWorkloads()
	if err != nil {
		return err
	}
	sweep := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var workerCounts []int
	for w := range sweep {
		workerCounts = append(workerCounts, w)
	}
	sort.Ints(workerCounts)

	rep := benchReport{
		Benchmark:  "FarmThroughput",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "jobs/s per worker count on the Fig 10 factoring and subset-sum workloads; " +
			"speedup_4_vs_1 is the scaling headline and requires num_cpu >= 4 to be meaningful",
	}
	for _, wl := range workloads {
		w := benchWorkload{Name: wl.name, JobsPerBatch: len(wl.jobs)}
		var at1, at4 float64
		for _, workers := range workerCounts {
			pt, err := measure(wl.jobs, workers, 700*time.Millisecond)
			if err != nil {
				return fmt.Errorf("%s at %d workers: %w", wl.name, workers, err)
			}
			fmt.Printf("%-26s workers=%-3d %10.0f jobs/s (pool hit rate %.0f%%)\n",
				wl.name, workers, pt.JobsPerSec, 100*pt.PoolHitRate)
			w.Points = append(w.Points, pt)
			switch workers {
			case 1:
				at1 = pt.JobsPerSec
			case 4:
				at4 = pt.JobsPerSec
			}
		}
		if at1 > 0 {
			w.Speedup4v1 = at4 / at1
		}
		rep.Workloads = append(rep.Workloads, w)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qatfarm:", err)
	os.Exit(1)
}
