package main

// The -bench-memo mode: quantify what the content-addressed execution cache
// (internal/memo) buys on a repeated workload. The mix models a serving
// fleet's steady state — a hot set of programs resubmitted over and over
// with a trickle of fresh ones: 20 distinct programs from the shared random
// corpus, each submitted 10 times per batch (200 jobs, 90% repeats). The
// same mix is timed with the cache off and on; with it on, a fresh cache is
// installed before every batch so each timed iteration pays exactly the
// steady-state ratio (20 misses that execute, 180 hits that replay).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"tangled/internal/asm"
	"tangled/internal/compile"
	"tangled/internal/farm"
	"tangled/internal/memo"
)

// memoBenchReport is the schema of BENCH_memo.json.
type memoBenchReport struct {
	Benchmark  string `json:"benchmark"`
	Generated  string `json:"generated"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Note       string `json:"note"`

	Workers          int     `json:"workers"`
	DistinctPrograms int     `json:"distinct_programs"`
	JobsPerBatch     int     `json:"jobs_per_batch"`
	RepeatFraction   float64 `json:"repeat_fraction"`

	MemoOff memoBenchPoint `json:"memo_off"`
	MemoOn  memoBenchPoint `json:"memo_on"`
	// Speedup is memo-on jobs/s over memo-off jobs/s on the same mix — the
	// headline figure the CI bench guard gates on.
	Speedup float64 `json:"speedup"`
}

type memoBenchPoint struct {
	Jobs       uint64  `json:"jobs"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	HitRate    float64 `json:"hit_rate"`
}

// memoBenchJobs builds the 90%-repeat mix: distinct programs each submitted
// repeats times, interleaved so identical jobs land across the whole batch
// rather than back to back. The programs are subset-sum searches with
// distinct targets — a real Qat workload heavy enough that execution cost,
// not farm dispatch, is what the cache is up against.
func memoBenchJobs(distinct, repeats int) ([]farm.Job, error) {
	items := []uint64{3, 5, 9, 14, 20, 27, 33, 41, 52, 60, 71, 85}
	const ways = 12
	progs := make([]*asm.Program, distinct)
	for i := range progs {
		art, err := compile.SubsetSumProgram(items, uint64(40+i), ways, compile.Options{Reuse: true})
		if err != nil {
			return nil, fmt.Errorf("subset-sum target %d: %w", 40+i, err)
		}
		p, err := asm.Assemble(art.Asm)
		if err != nil {
			return nil, fmt.Errorf("subset-sum target %d: %w", 40+i, err)
		}
		progs[i] = p
	}
	jobs := make([]farm.Job, distinct*repeats)
	for i := range jobs {
		jobs[i] = farm.Job{
			Name: fmt.Sprintf("mix-%d", i),
			Prog: progs[i%distinct],
			Mode: farm.Functional,
			Ways: ways,
		}
	}
	return jobs, nil
}

// measureMemo loops the mix until minDuration elapses. With the cache
// enabled, a fresh cache per batch keeps every iteration at the same
// miss/hit ratio instead of converging to 100% hits.
func measureMemo(jobs []farm.Job, workers int, minDuration time.Duration, withMemo bool) (memoBenchPoint, error) {
	engine := farm.New(workers)
	if _, warm := engine.Run(context.Background(), jobs[:len(jobs)/10]); warm.Errors > 0 {
		return memoBenchPoint{}, fmt.Errorf("warmup batch had %d failures", warm.Errors)
	}
	var total farm.Stats
	start := time.Now()
	for time.Since(start) < minDuration {
		if withMemo {
			engine.SetMemo(memo.New(0))
		}
		_, st := engine.Run(context.Background(), jobs)
		if st.Errors > 0 {
			return memoBenchPoint{}, fmt.Errorf("batch had %d failures", st.Errors)
		}
		total.Jobs += st.Jobs
		total.MemoHits += st.MemoHits
	}
	elapsed := time.Since(start)
	return memoBenchPoint{
		Jobs:       total.Jobs,
		Seconds:    elapsed.Seconds(),
		JobsPerSec: float64(total.Jobs) / elapsed.Seconds(),
		HitRate:    float64(total.MemoHits) / float64(total.Jobs),
	}, nil
}

func runBenchMemo(path string, workers int) error {
	const (
		distinct = 20
		repeats  = 10
	)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs, err := memoBenchJobs(distinct, repeats)
	if err != nil {
		return err
	}

	off, err := measureMemo(jobs, workers, 700*time.Millisecond, false)
	if err != nil {
		return fmt.Errorf("memo off: %w", err)
	}
	fmt.Printf("memo off: %10.0f jobs/s\n", off.JobsPerSec)
	on, err := measureMemo(jobs, workers, 700*time.Millisecond, true)
	if err != nil {
		return fmt.Errorf("memo on: %w", err)
	}
	fmt.Printf("memo on:  %10.0f jobs/s (hit rate %.0f%%)\n", on.JobsPerSec, 100*on.HitRate)

	rep := memoBenchReport{
		Benchmark:  "MemoRepeatedWorkload",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "identical 90%-repeat job mix timed with the execution cache off and on; " +
			"a fresh cache per batch keeps each timed iteration at the steady-state miss/hit ratio",
		Workers:          workers,
		DistinctPrograms: distinct,
		JobsPerBatch:     len(jobs),
		RepeatFraction:   1 - float64(distinct)/float64(distinct*repeats),
		MemoOff:          off,
		MemoOn:           on,
		Speedup:          on.JobsPerSec / off.JobsPerSec,
	}
	fmt.Printf("speedup:  %.1fx\n", rep.Speedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
