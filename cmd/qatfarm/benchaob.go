package main

// The -bench-aob mode: quantify what the SWAR AoB kernels buy over the
// definitional semantics. Every Table 3 register operation is specified
// channel-at-a-time ("for each of the 2^E channels, ..."); the production
// kernels in internal/aob implement the same contract word-parallel — 64
// channels per logic op, precomputed period words for Had, batched popcounts
// for the reductions. This mode times both implementations on identical
// inputs at 8/12/16 ways and writes the per-kernel ratios to a JSON file,
// with the best ratio as the headline figure the CI bench guard gates on.
//
// The baseline is the bit-at-a-time loop over the public Get/Set interface —
// the same definitional model the aob test suite's reference uses — so the
// ratio measures exactly the word-parallelism, not allocator or dispatch
// differences (neither side allocates in the timed loop).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"tangled/internal/aob"
)

// aobBenchReport is the schema of BENCH_aob.json.
type aobBenchReport struct {
	Benchmark  string `json:"benchmark"`
	Generated  string `json:"generated"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Note       string `json:"note"`

	Kernels []aobKernelPoint `json:"kernels"`
	// Speedup is the best kernel ratio in the table — the headline figure
	// the CI bench guard gates on.
	Speedup float64 `json:"speedup"`
}

// aobKernelPoint is one (kernel, ways) measurement.
type aobKernelPoint struct {
	Kernel          string  `json:"kernel"`
	Ways            int     `json:"ways"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	SwarNsPerOp     float64 `json:"swar_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// benchSink defeats dead-code elimination of the measured loops.
var benchSink uint64

// randAoB fills a vector with a deterministic random pattern.
func randAoB(r *rand.Rand, ways int) *aob.Vector {
	v := aob.New(ways)
	for i := 0; i < v.NumWords(); i++ {
		v.SetWord(i, r.Uint64())
	}
	return v
}

// measureAoB times f in batches until minDuration elapses and returns ns/op.
func measureAoB(f func(), minDuration time.Duration) float64 {
	// One warm call outside the clock.
	f()
	const batch = 16
	var ops uint64
	start := time.Now()
	for time.Since(start) < minDuration {
		for i := 0; i < batch; i++ {
			f()
		}
		ops += batch
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// Definitional bit-at-a-time implementations over the public interface.

func naiveBinary(dst, a, b *aob.Vector, f func(x, y bool) bool) {
	for ch := uint64(0); ch < dst.Channels(); ch++ {
		dst.Set(ch, f(a.Get(ch), b.Get(ch)))
	}
}

func naiveNot(v *aob.Vector) {
	for ch := uint64(0); ch < v.Channels(); ch++ {
		v.Set(ch, !v.Get(ch))
	}
}

func naiveHad(v *aob.Vector, k int) {
	for ch := uint64(0); ch < v.Channels(); ch++ {
		v.Set(ch, ch>>uint(k)&1 == 1)
	}
}

func naiveNext(v *aob.Vector, ch uint64) uint64 {
	for c := ch + 1; c < v.Channels(); c++ {
		if v.Get(c) {
			return c
		}
	}
	return 0
}

func naivePopAfter(v *aob.Vector, ch uint64) uint64 {
	var n uint64
	for c := ch + 1; c < v.Channels(); c++ {
		if v.Get(c) {
			n++
		}
	}
	return n
}

func naivePop(v *aob.Vector) uint64 {
	var n uint64
	for c := uint64(0); c < v.Channels(); c++ {
		if v.Get(c) {
			n++
		}
	}
	return n
}

func naiveAll(v *aob.Vector) bool {
	for c := uint64(0); c < v.Channels(); c++ {
		if !v.Get(c) {
			return false
		}
	}
	return true
}

// aobKernels enumerates the measured operations as baseline/swar pairs over
// shared operands.
func aobKernels(ways int) []struct {
	name     string
	baseline func()
	swar     func()
} {
	r := rand.New(rand.NewSource(int64(ways) * 7919))
	a, b, c := randAoB(r, ways), randAoB(r, ways), randAoB(r, ways)
	dst := aob.New(ways)
	probe := a.Channels() / 3
	btou := func(x bool) uint64 {
		if x {
			return 1
		}
		return 0
	}
	return []struct {
		name     string
		baseline func()
		swar     func()
	}{
		{"And",
			func() { naiveBinary(dst, a, b, func(x, y bool) bool { return x && y }) },
			func() { dst.And(a, b) }},
		{"Or",
			func() { naiveBinary(dst, a, b, func(x, y bool) bool { return x || y }) },
			func() { dst.Or(a, b) }},
		{"Xor",
			func() { naiveBinary(dst, a, b, func(x, y bool) bool { return x != y }) },
			func() { dst.Xor(a, b) }},
		{"Not",
			func() { naiveNot(dst) },
			func() { dst.Not() }},
		{"CNot",
			func() { naiveBinary(dst, dst, a, func(x, y bool) bool { return x != y }) },
			func() { dst.CNot(a) }},
		{"CCNot",
			func() {
				for ch := uint64(0); ch < dst.Channels(); ch++ {
					dst.Set(ch, dst.Get(ch) != (b.Get(ch) && c.Get(ch)))
				}
			},
			func() { dst.CCNot(b, c) }},
		{"Had",
			func() { naiveHad(dst, ways-1) },
			func() { dst.Had(ways - 1) }},
		{"Next",
			func() { benchSink += naiveNext(a, probe) },
			func() { benchSink += a.Next(probe) }},
		{"PopAfter",
			func() { benchSink += naivePopAfter(a, probe) },
			func() { benchSink += a.PopAfter(probe) }},
		{"Pop",
			func() { benchSink += naivePop(a) },
			func() { benchSink += a.Pop() }},
		{"All",
			func() { benchSink += btou(naiveAll(a)) },
			func() { benchSink += btou(a.All()) }},
	}
}

func runBenchAoB(path string) error {
	rep := aobBenchReport{
		Benchmark:  "AoBKernelsVsDefinitional",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "word-parallel AoB kernels vs the definitional bit-at-a-time loops on identical " +
			"inputs; speedup is the best kernel ratio across 8/12/16 ways",
	}
	const minDur = 25 * time.Millisecond
	for _, ways := range []int{8, 12, 16} {
		for _, k := range aobKernels(ways) {
			base := measureAoB(k.baseline, minDur)
			swar := measureAoB(k.swar, minDur)
			pt := aobKernelPoint{
				Kernel:          k.name,
				Ways:            ways,
				BaselineNsPerOp: base,
				SwarNsPerOp:     swar,
				Speedup:         base / swar,
			}
			rep.Kernels = append(rep.Kernels, pt)
			fmt.Printf("%-9s ways=%-2d  baseline %10.1f ns/op  swar %8.1f ns/op  %8.1fx\n",
				k.name, ways, base, swar, pt.Speedup)
			if pt.Speedup > rep.Speedup {
				rep.Speedup = pt.Speedup
			}
		}
	}
	fmt.Printf("best kernel speedup: %.1fx\n", rep.Speedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
