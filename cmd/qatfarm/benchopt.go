package main

// The -bench-opt mode: quantify what the optimizing recompiler
// (internal/opt) removes. Two populations are measured. The embedded
// peephole-rich examples are the headline — hand-written programs dense in
// the patterns the passes target (overwritten stores, foldable constant
// chains, cancelling Qat inverters, energy-redundant re-inits), each
// verified behaviorally (original and rewrite run to the same registers and
// output) before its shrink is counted. The farmtest corpus is the sanity
// population: generated programs where most rewrites are refused as
// memory-unproven, reported as aggregate counts. CI gates on
// mean_inst_reduction_pct over the examples.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/farm/farmtest"
	"tangled/internal/opt"
)

// optBenchWays is the entanglement degree the example measurements assume.
const optBenchWays = 8

// optBenchBudget bounds each behavioral verification run.
const optBenchBudget = 1_000_000

// optExamples are the peephole-rich programs; each is lint-clean,
// load-free (so the rewrite is provable) and halts.
var optExamples = []struct{ name, src string }{
	{"dead-stores", `
	lex	$1, 11
	lex	$2, 22
	lex	$3, 33
	lex	$1, 1
	lex	$2, 2
	lex	$3, 3
	add	$1, $2
	add	$1, $3
	lex	$0, 1
	sys
	lex	$0, 0
	sys
`},
	{"const-chain", `
	lex	$4, 7
	lhi	$4, 0
	copy	$5, $4
	add	$5, $4
	mul	$5, $4
	lex	$6, 0
	add	$5, $6
	lex	$0, 1
	sys
	lex	$0, 0
	sys
`},
	{"qat-not-pairs", `
	one	@1
	not	@2
	not	@2
	cnot	@3, @1
	not	@4
	not	@4
	xor	@5, @1, @3
	pop	$1, @5
	pop	$2, @3
	lex	$0, 0
	sys
`},
	{"energy-reinit", `
	zero	@1
	zero	@2
	one	@3
	one	@3
	cnot	@4, @1
	ccnot	@5, @3, @3
	swap	@6, @7
	pop	$2, @5
	pop	$3, @3
	lex	$0, 0
	sys
`},
	{"mixed-loop", `
	lex	$1, 3
	lex	$5, -1
	lex	$7, 99
	lex	$7, 1
	not	$8
	not	$8
loop:	add	$2, $1
	add	$1, $5
	brt	$1, loop
	lex	$0, 0
	sys
`},
}

// optBenchReport is the schema of BENCH_opt.json.
type optBenchReport struct {
	Benchmark  string `json:"benchmark"`
	Generated  string `json:"generated"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Note       string `json:"note"`

	Ways     int              `json:"ways"`
	Examples []optBenchSample `json:"examples"`
	// MeanInstReductionPct is the headline figure the CI bench guard gates
	// on: the mean static-instruction reduction over the examples.
	MeanInstReductionPct float64 `json:"mean_inst_reduction_pct"`
	MeanWordReductionPct float64 `json:"mean_word_reduction_pct"`
	// SwitchedBitsSaved / ErasedBitsSaved sum the static energy-model
	// savings over the examples (must be nonzero for the run to count).
	SwitchedBitsSaved uint64 `json:"switched_bits_saved"`
	ErasedBitsSaved   uint64 `json:"erased_bits_saved"`

	Corpus optBenchCorpus `json:"corpus"`
}

// optBenchSample is one verified example rewrite.
type optBenchSample struct {
	Name             string  `json:"name"`
	Rounds           int     `json:"rounds"`
	WordsBefore      int     `json:"words_before"`
	WordsAfter       int     `json:"words_after"`
	InstsBefore      int     `json:"insts_before"`
	InstsAfter       int     `json:"insts_after"`
	InstReductionPct float64 `json:"inst_reduction_pct"`
	SwitchedSaved    uint64  `json:"switched_saved"`
	ErasedSaved      uint64  `json:"erased_saved"`
}

// optBenchCorpus aggregates the optimizer's behavior over the generated
// farmtest corpus (most of which it must refuse as memory-unproven).
type optBenchCorpus struct {
	Programs   int            `json:"programs"`
	Applied    int            `json:"applied"`
	Refusals   map[string]int `json:"refusals"`
	WordsSaved int            `json:"words_saved"`
	InstsSaved int            `json:"insts_saved"`
}

// runOnce executes p on the reference machine and returns its observable
// behavior: final registers plus everything printed through sys.
func runOnce(p *asm.Program, ways int) ([16]uint16, string, error) {
	m := cpu.New(ways)
	var out strings.Builder
	m.Out = &out
	if err := m.Load(p); err != nil {
		return [16]uint16{}, "", err
	}
	if err := m.Run(optBenchBudget); err != nil {
		return [16]uint16{}, "", err
	}
	return m.Regs, out.String(), nil
}

func runBenchOpt(path string) error {
	rep := optBenchReport{
		Benchmark:  "OptimizingRecompiler",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "static shrink of the optimizing recompiler on peephole-rich examples, each " +
			"behaviorally verified (identical registers and output) before counting; the " +
			"farmtest corpus aggregate shows the refusal discipline on generated programs",
		Ways: optBenchWays,
	}

	var sumInstPct, sumWordPct float64
	for _, ex := range optExamples {
		prog, err := asm.Assemble(ex.src)
		if err != nil {
			return fmt.Errorf("example %s: %w", ex.name, err)
		}
		optProg, orep := opt.Optimize(prog, opt.Options{Ways: optBenchWays})
		if !orep.Applied {
			return fmt.Errorf("example %s: optimizer refused (%s)", ex.name, orep.Reason)
		}
		wantRegs, wantOut, err := runOnce(prog, optBenchWays)
		if err != nil {
			return fmt.Errorf("example %s original: %w", ex.name, err)
		}
		gotRegs, gotOut, err := runOnce(optProg, optBenchWays)
		if err != nil {
			return fmt.Errorf("example %s optimized: %w", ex.name, err)
		}
		if wantRegs != gotRegs || wantOut != gotOut {
			return fmt.Errorf("example %s: rewrite diverged: regs %v vs %v, output %q vs %q",
				ex.name, wantRegs, gotRegs, wantOut, gotOut)
		}
		s := optBenchSample{
			Name:        ex.name,
			Rounds:      orep.Rounds,
			WordsBefore: orep.WordsBefore, WordsAfter: orep.WordsAfter,
			InstsBefore: orep.InstsBefore, InstsAfter: orep.InstsAfter,
			InstReductionPct: 100 * float64(orep.InstsBefore-orep.InstsAfter) / float64(orep.InstsBefore),
			SwitchedSaved:    orep.SwitchedBefore - orep.SwitchedAfter,
			ErasedSaved:      orep.ErasedBefore - orep.ErasedAfter,
		}
		rep.Examples = append(rep.Examples, s)
		rep.SwitchedBitsSaved += s.SwitchedSaved
		rep.ErasedBitsSaved += s.ErasedSaved
		sumInstPct += s.InstReductionPct
		sumWordPct += 100 * float64(orep.WordsBefore-orep.WordsAfter) / float64(orep.WordsBefore)
		fmt.Printf("%-14s insts %2d -> %2d (%5.1f%%), words %2d -> %2d, switched -%d, erased -%d\n",
			ex.name, s.InstsBefore, s.InstsAfter, s.InstReductionPct,
			s.WordsBefore, s.WordsAfter, s.SwitchedSaved, s.ErasedSaved)
	}
	rep.MeanInstReductionPct = sumInstPct / float64(len(optExamples))
	rep.MeanWordReductionPct = sumWordPct / float64(len(optExamples))
	if rep.SwitchedBitsSaved == 0 {
		return fmt.Errorf("examples saved zero switched bits: the bench is vacuous")
	}

	rep.Corpus.Programs = farmtest.Programs
	rep.Corpus.Refusals = map[string]int{}
	for i := 0; i < farmtest.Programs; i++ {
		prog, err := asm.Assemble(farmtest.Generate(farmtest.Seed(i)))
		if err != nil {
			return fmt.Errorf("corpus %d: %w", i, err)
		}
		_, orep := opt.Optimize(prog, opt.Options{Ways: farmtest.Ways})
		if orep.Applied {
			rep.Corpus.Applied++
			rep.Corpus.WordsSaved += orep.WordsBefore - orep.WordsAfter
			rep.Corpus.InstsSaved += orep.InstsBefore - orep.InstsAfter
		} else {
			rep.Corpus.Refusals[orep.Reason]++
		}
	}

	fmt.Printf("mean inst reduction: %.1f%% over %d examples\n",
		rep.MeanInstReductionPct, len(rep.Examples))
	fmt.Printf("corpus: %d/%d applied, %d words saved, refusals %v\n",
		rep.Corpus.Applied, rep.Corpus.Programs, rep.Corpus.WordsSaved, rep.Corpus.Refusals)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
