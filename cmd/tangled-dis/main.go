// tangled-dis disassembles a hex word image back to Tangled/Qat assembly.
//
// Usage:
//
//	tangled-dis image.hex      ("-" reads stdin)
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"tangled/internal/asm"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tangled-dis image.hex")
		os.Exit(2)
	}
	var data []byte
	var err error
	if os.Args[1] == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
	words, err := asm.ReadHex(strings.NewReader(string(data)))
	if err != nil {
		fatal(err)
	}
	for _, line := range asm.Disassemble(words) {
		fmt.Println(line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tangled-dis:", err)
	os.Exit(1)
}
