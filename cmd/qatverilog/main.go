// qatverilog emits the paper's Figure 7 (had) and Figure 8 (next) Verilog
// modules for a chosen entanglement degree — the same parametric designs
// the author published, backed here by the executable netlists of
// internal/netlist that are tested equivalent to the architectural
// semantics.
//
// Usage:
//
//	qatverilog [-ways N] [had|next|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"tangled/internal/netlist"
)

func main() {
	ways := flag.Int("ways", 16, "entanglement degree (1-16)")
	flag.Parse()
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	switch which {
	case "had":
		fmt.Print(netlist.HadVerilog(*ways))
	case "next":
		fmt.Print(netlist.NextVerilog(*ways))
	case "all":
		fmt.Print(netlist.HadVerilog(*ways))
		fmt.Println()
		fmt.Print(netlist.NextVerilog(*ways))
	default:
		fmt.Fprintln(os.Stderr, "usage: qatverilog [-ways N] [had|next|all]")
		os.Exit(2)
	}
}
