// tangled-run executes a Tangled/Qat program on the functional simulator or
// on the cycle-accurate pipelined model.
//
// Usage:
//
//	tangled-run [flags] prog.asm      (assembly source, by .asm suffix)
//	tangled-run [flags] image.hex     (hex word image otherwise)
//
// Flags select the machine organization; -stats prints retired-instruction
// and cycle accounting after the run, -regs dumps the final register file.
//
// Observability is off by default and free when off (nil metric handles on
// the hot path). With -metrics FILE the run's counters — per-opcode retire
// counts, Qat op and AoB word-operation totals, energy-model gauges, and in
// pipeline mode per-stage occupancy and the stall/flush breakdown — are
// rendered as Prometheus text exposition format after the run ("-" for
// stdout). With -http ADDR the same registry is served live at /metrics
// alongside expvar (/debug/vars) and pprof (/debug/pprof/). With
// -trace FILE the last cycles of the run are exported as versioned JSONL
// (schema in docs/TRACE.md); -itrace remains the human-readable
// instruction trace on stderr (functional mode).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tangled/internal/asm"
	"tangled/internal/backend"
	"tangled/internal/cpu"
	"tangled/internal/energy"
	"tangled/internal/isa"
	"tangled/internal/obs"
	"tangled/internal/pipeline"
	"tangled/internal/qat"
)

func main() {
	ways := flag.Int("ways", 16, "Qat entanglement degree (1-16)")
	pipe := flag.Bool("pipeline", false, "run on the cycle-accurate pipelined model")
	stages := flag.Int("stages", 5, "pipeline depth (4 or 5)")
	noFwd := flag.Bool("no-forwarding", false, "disable forwarding (pipeline mode)")
	narrow := flag.Bool("narrow-fetch", false, "charge an extra cycle for two-word fetches")
	mulLat := flag.Int("mul-latency", 1, "EX cycles for integer multiply")
	nextLat := flag.Int("next-latency", 1, "EX cycles for Qat next/pop")
	constRegs := flag.Bool("const-regs", false, "Section 5 constant-register Qat variant")
	backendName := flag.String("backend", "", "Qat register file: dense (default), re (run-encoded, functional mode; allows -ways up to 24), or auto (planner picks from the static profile)")
	chunkWays := flag.Int("chunk-ways", 0, "re backend: symbol chunk width (default min(ways,16))")
	spillRuns := flag.Int("spill-runs", 0, "re backend: dense-spill run budget (default 64, negative disables)")
	stats := flag.Bool("stats", false, "print execution statistics")
	regs := flag.Bool("regs", false, "dump final registers")
	itrace := flag.Bool("itrace", false, "trace every executed instruction on stderr (functional mode)")
	pipeTrace := flag.Bool("pipetrace", false, "print the per-cycle stage diagram (pipeline mode)")
	maxSteps := flag.Uint64("max-steps", 100_000_000, "execution budget")
	encName := flag.String("enc", "primary", "binary encoding of the image/program (primary or student)")
	metricsOut := flag.String("metrics", "", "write Prometheus text metrics to FILE after the run (- for stdout)")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on ADDR during the run")
	traceOut := flag.String("trace", "", "write the cycle trace as JSONL to FILE")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tangled-run [flags] prog.asm|image.hex")
		os.Exit(2)
	}
	enc, err := encodingByName(*encName)
	if err != nil {
		fatal(err)
	}
	prog, err := loadProgram(flag.Arg(0), enc)
	if err != nil {
		fatal(err)
	}

	var reg *obs.Registry
	if *metricsOut != "" || *httpAddr != "" {
		reg = obs.NewRegistry()
	}
	var ring *obs.TraceRing
	if *traceOut != "" {
		ring = obs.NewTraceRing(0)
	}
	if *httpAddr != "" {
		srv, addr, err := obs.Serve(*httpAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tangled-run: metrics at http://%s/metrics\n", addr)
		defer srv.Close()
	}
	dump := func() {
		if *metricsOut != "" {
			if err := writeMetrics(*metricsOut, reg); err != nil {
				fatal(err)
			}
		}
		if ring != nil {
			if err := writeTrace(*traceOut, ring); err != nil {
				fatal(err)
			}
		}
	}

	if *pipe {
		if *backendName != "" && *backendName != qat.BackendDense {
			fatal(fmt.Errorf("the pipelined model supports only the dense backend (got -backend %s)", *backendName))
		}
		cfg := pipeline.Config{
			Stages:              *stages,
			Ways:                *ways,
			Forwarding:          !*noFwd,
			TwoWordFetchPenalty: *narrow,
			MulLatency:          *mulLat,
			QatNextLatency:      *nextLat,
			ConstantRegs:        *constRegs,
		}
		p, err := pipeline.New(cfg)
		if err != nil {
			fatal(err)
		}
		p.SetOutput(os.Stdout)
		p.Machine().Enc = enc
		if *pipeTrace {
			p.SetTracer(p.WriteTracer(os.Stderr))
		}
		if reg != nil {
			p.SetMetrics(pipeline.NewMetrics(reg))
			p.Machine().AttachMetrics(cpu.NewMetrics(reg))
			meter := energy.NewMeter()
			p.Machine().Qat.Meter = meter
			qat.RegisterMeter(reg, meter)
		}
		p.SetTraceRing(ring)
		if err := p.Load(prog); err != nil {
			fatal(err)
		}
		runErr := p.Run(*maxSteps)
		dump()
		if runErr != nil {
			fatal(runErr)
		}
		if *stats {
			s := p.Stats
			fmt.Fprintf(os.Stderr, "cycles=%d insts=%d CPI=%.3f load-use=%d raw=%d exbusy=%d fetch=%d flushes=%d flush-cycles=%d\n",
				s.Cycles, s.Insts, s.CPI(), s.LoadUseStalls, s.RawStalls,
				s.ExBusyStalls, s.FetchStalls, s.BranchFlushes, s.FlushCycles)
		}
		if *regs {
			dumpRegs(p.Machine())
		}
		return
	}

	qcfg := qat.Config{
		Ways:         *ways,
		ConstantRegs: *constRegs,
		Backend:      *backendName,
		ChunkWays:    *chunkWays,
		SpillRuns:    *spillRuns,
	}
	if qcfg.Backend == backend.Auto {
		if *chunkWays != 0 || *spillRuns != 0 {
			fatal(fmt.Errorf("-chunk-ways/-spill-runs are chosen by the planner under -backend auto"))
		}
		plan, err := backend.PlanAuto(prog, qcfg, nil)
		if err != nil {
			fatal(err)
		}
		qcfg = plan.Config
		fmt.Fprintf(os.Stderr, "tangled-run: auto backend: %s (degree bound %d, compressibility %.2f)\n",
			qcfg.Backend, plan.Profile.DegreeBound, plan.Profile.Compressibility)
	}
	m, err := cpu.NewFromConfig(qcfg)
	if err != nil {
		fatal(err)
	}
	m.Out = os.Stdout
	m.Enc = enc
	if *itrace {
		m.Trace = func(pc uint16, inst isa.Inst) {
			fmt.Fprintf(os.Stderr, "%04x: %s\n", pc, inst)
		}
	}
	if reg != nil {
		m.AttachMetrics(cpu.NewMetrics(reg))
		meter := energy.NewMeter()
		m.Qat.Meter = meter
		qat.RegisterMeter(reg, meter)
	}
	if ring != nil {
		// The functional machine has no pipeline clock; the trace records
		// one event per retired instruction with the instruction ordinal as
		// the cycle column.
		prev := m.Trace
		m.Trace = func(pc uint16, inst isa.Inst) {
			if prev != nil {
				prev(pc, inst)
			}
			// The hook fires before Stats.Insts increments; +1 keeps the
			// ordinal 1-based like the pipeline's cycle column.
			ring.Append(obs.TraceEvent{Cycle: m.Stats.Insts + 1, PC: pc, Inst: inst.String(), Event: "retire"})
		}
	}
	if err := m.Load(prog); err != nil {
		fatal(err)
	}
	runErr := m.Run(*maxSteps)
	dump()
	if runErr != nil {
		fatal(runErr)
	}
	if *stats {
		s := m.Stats
		fmt.Fprintf(os.Stderr, "insts=%d tangled=%d qat=%d branches=%d taken=%d loads=%d stores=%d\n",
			s.Insts, s.TangledInsts, s.QatInsts, s.Branches, s.BranchesTaken,
			s.MemReads, s.MemWrites)
	}
	if *regs {
		dumpRegs(m)
	}
}

func encodingByName(name string) (isa.Encoding, error) {
	switch name {
	case "primary":
		return isa.Primary, nil
	case "student":
		return isa.Student, nil
	default:
		return nil, fmt.Errorf("unknown encoding %q (primary or student)", name)
	}
}

func loadProgram(path string, enc isa.Encoding) (*asm.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".asm") || strings.HasSuffix(path, ".s") {
		return asm.AssembleWith(string(data), enc)
	}
	words, err := asm.ReadHex(strings.NewReader(string(data)))
	if err != nil {
		return nil, err
	}
	return &asm.Program{Words: words}, nil
}

// writeMetrics renders reg as Prometheus text to path ("-" for stdout).
func writeMetrics(path string, reg *obs.Registry) error {
	if path == "-" {
		reg.WritePrometheus(os.Stdout)
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	reg.WritePrometheus(f)
	return f.Close()
}

// writeTrace exports the trace ring as versioned JSONL to path.
func writeTrace(path string, ring *obs.TraceRing) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ring.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if n := ring.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "tangled-run: trace ring dropped %d oldest events (capacity %d)\n", n, obs.DefaultTraceCap)
	}
	return f.Close()
}

func dumpRegs(m *cpu.Machine) {
	for i := 0; i < isa.NumRegs; i++ {
		fmt.Fprintf(os.Stderr, "%-4s %6d (%#04x)\n", isa.RegName(uint8(i)), int16(m.Regs[i]), m.Regs[i])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tangled-run:", err)
	os.Exit(1)
}
