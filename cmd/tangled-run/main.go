// tangled-run executes a Tangled/Qat program on the functional simulator or
// on the cycle-accurate pipelined model.
//
// Usage:
//
//	tangled-run [flags] prog.asm      (assembly source, by .asm suffix)
//	tangled-run [flags] image.hex     (hex word image otherwise)
//
// Flags select the machine organization; -stats prints retired-instruction
// and cycle accounting after the run, -regs dumps the final register file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/isa"
	"tangled/internal/pipeline"
)

func main() {
	ways := flag.Int("ways", 16, "Qat entanglement degree (1-16)")
	pipe := flag.Bool("pipeline", false, "run on the cycle-accurate pipelined model")
	stages := flag.Int("stages", 5, "pipeline depth (4 or 5)")
	noFwd := flag.Bool("no-forwarding", false, "disable forwarding (pipeline mode)")
	narrow := flag.Bool("narrow-fetch", false, "charge an extra cycle for two-word fetches")
	mulLat := flag.Int("mul-latency", 1, "EX cycles for integer multiply")
	nextLat := flag.Int("next-latency", 1, "EX cycles for Qat next/pop")
	constRegs := flag.Bool("const-regs", false, "Section 5 constant-register Qat variant")
	stats := flag.Bool("stats", false, "print execution statistics")
	regs := flag.Bool("regs", false, "dump final registers")
	trace := flag.Bool("trace", false, "trace every executed instruction (functional mode)")
	pipeTrace := flag.Bool("pipetrace", false, "print the per-cycle stage diagram (pipeline mode)")
	maxSteps := flag.Uint64("max-steps", 100_000_000, "execution budget")
	encName := flag.String("enc", "primary", "binary encoding of the image/program (primary or student)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tangled-run [flags] prog.asm|image.hex")
		os.Exit(2)
	}
	enc, err := encodingByName(*encName)
	if err != nil {
		fatal(err)
	}
	prog, err := loadProgram(flag.Arg(0), enc)
	if err != nil {
		fatal(err)
	}

	if *pipe {
		cfg := pipeline.Config{
			Stages:              *stages,
			Ways:                *ways,
			Forwarding:          !*noFwd,
			TwoWordFetchPenalty: *narrow,
			MulLatency:          *mulLat,
			QatNextLatency:      *nextLat,
			ConstantRegs:        *constRegs,
		}
		p, err := pipeline.New(cfg)
		if err != nil {
			fatal(err)
		}
		p.SetOutput(os.Stdout)
		p.Machine().Enc = enc
		if *pipeTrace {
			p.SetTracer(p.WriteTracer(os.Stderr))
		}
		if err := p.Load(prog); err != nil {
			fatal(err)
		}
		if err := p.Run(*maxSteps); err != nil {
			fatal(err)
		}
		if *stats {
			s := p.Stats
			fmt.Fprintf(os.Stderr, "cycles=%d insts=%d CPI=%.3f load-use=%d raw=%d exbusy=%d fetch=%d flushes=%d flush-cycles=%d\n",
				s.Cycles, s.Insts, s.CPI(), s.LoadUseStalls, s.RawStalls,
				s.ExBusyStalls, s.FetchStalls, s.BranchFlushes, s.FlushCycles)
		}
		if *regs {
			dumpRegs(p.Machine())
		}
		return
	}

	var m *cpu.Machine
	if *constRegs {
		m = cpu.NewWithConstants(*ways)
	} else {
		m = cpu.New(*ways)
	}
	m.Out = os.Stdout
	m.Enc = enc
	if *trace {
		m.Trace = func(pc uint16, inst isa.Inst) {
			fmt.Fprintf(os.Stderr, "%04x: %s\n", pc, inst)
		}
	}
	if err := m.Load(prog); err != nil {
		fatal(err)
	}
	if err := m.Run(*maxSteps); err != nil {
		fatal(err)
	}
	if *stats {
		s := m.Stats
		fmt.Fprintf(os.Stderr, "insts=%d tangled=%d qat=%d branches=%d taken=%d loads=%d stores=%d\n",
			s.Insts, s.TangledInsts, s.QatInsts, s.Branches, s.BranchesTaken,
			s.MemReads, s.MemWrites)
	}
	if *regs {
		dumpRegs(m)
	}
}

func encodingByName(name string) (isa.Encoding, error) {
	switch name {
	case "primary":
		return isa.Primary, nil
	case "student":
		return isa.Student, nil
	default:
		return nil, fmt.Errorf("unknown encoding %q (primary or student)", name)
	}
}

func loadProgram(path string, enc isa.Encoding) (*asm.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".asm") || strings.HasSuffix(path, ".s") {
		return asm.AssembleWith(string(data), enc)
	}
	words, err := asm.ReadHex(strings.NewReader(string(data)))
	if err != nil {
		return nil, err
	}
	return &asm.Program{Words: words}, nil
}

func dumpRegs(m *cpu.Machine) {
	for i := 0; i < isa.NumRegs; i++ {
		fmt.Fprintf(os.Stderr, "%-4s %6d (%#04x)\n", isa.RegName(uint8(i)), int16(m.Regs[i]), m.Regs[i])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tangled-run:", err)
	os.Exit(1)
}
