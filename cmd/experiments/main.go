// experiments regenerates every reproducible table/figure artifact of the
// paper and prints a paper-vs-measured report (the source of
// EXPERIMENTS.md). Each section is tagged with the experiment id from
// DESIGN.md.
//
// Run: go run ./cmd/experiments
package main

import (
	"fmt"
	"log"
	"strings"

	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/compile"
	"tangled/internal/core"
	"tangled/internal/cpu"
	"tangled/internal/energy"
	"tangled/internal/gates"
	"tangled/internal/netlist"
	"tangled/internal/pipeline"
	"tangled/internal/qasm"
	"tangled/internal/re"
	"tangled/internal/rex"
)

// cpuMachine builds a functional machine for metered runs.
func cpuMachine(ways int) *cpu.Machine { return cpu.New(ways) }

func main() {
	fig1()
	tables123()
	fig27("F2-F5 gate semantics spot checks")
	fig7()
	fig8()
	fig9()
	fig10()
	s31()
	multicycle()
	s12()
	rexScaling()
	s5()
	s5energy()
	x221()
}

func header(id, title string) {
	fmt.Printf("\n## %s — %s\n\n", id, title)
}

// F1: the AoB representation examples of Figure 1.
func fig1() {
	header("F1", "Figure 1: AoB representation")
	lo := aob.HadVector(2, 0)
	hi := aob.HadVector(2, 1)
	fmt.Printf("2-way pbit pair: lsb=%s msb=%s (paper: {0,1,0,1},{0,0,1,1})\n", lo, hi)
	vals := make([]uint64, 4)
	for ch := uint64(0); ch < 4; ch++ {
		vals[ch] = lo.Meas(ch) | hi.Meas(ch)<<1
	}
	fmt.Printf("encoded values per channel: %v (paper: {0,1,2,3}, each P=1/4)\n", vals)
	lo2, _ := aob.FromString(2, "0010")
	hi2, _ := aob.FromString(2, "0011")
	counts := map[uint64]int{}
	for ch := uint64(0); ch < 4; ch++ {
		counts[lo2.Meas(ch)|hi2.Meas(ch)<<1]++
	}
	fmt.Printf("{0,0,1,0},{0,0,1,1} encodes %v (paper: 50%% 0, 0%% 1, 25%% 2, 25%% 3)\n", counts)
}

// T1-T3: ISA conformance — statically verified by the test suite; report
// the coverage counts.
func tables123() {
	header("T1-T3", "Tables 1-3: instruction sets")
	fmt.Println("Table 1 base ISA:        24 instructions implemented (see internal/cpu tests)")
	fmt.Println("Table 2 macros:          br, jump, jumpf, jumpt, loadi (see internal/asm tests)")
	fmt.Println("Table 3 Qat ISA:         13 instructions + proposed pop (see internal/qat tests)")
	src := "and $1,$2\nand @1,@2,@3\n"
	p, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sigil disambiguation:    %q -> %v\n", strings.TrimSpace(src), asm.Disassemble(p.Words))
}

// F2-F5: gate semantics.
func fig27(title string) {
	header("F2-F5", title)
	a := aob.HadVector(4, 1)
	orig := a.Clone()
	a.Not()
	a.Not()
	fmt.Printf("not self-inverse: %v\n", a.Equal(orig))
	b := aob.HadVector(4, 2)
	a.CNot(b)
	a.CNot(b)
	fmt.Printf("cnot self-inverse: %v\n", a.Equal(orig))
	c := aob.HadVector(4, 3)
	x, y := a.Clone(), b.Clone()
	popBefore := x.Pop() + y.Pop()
	x.CSwap(y, c)
	fmt.Printf("cswap billiard-ball conservancy: %v (pop %d -> %d)\n",
		x.Pop()+y.Pop() == popBefore, popBefore, x.Pop()+y.Pop())
	fmt.Printf("meas non-destructive: %v\n", func() bool {
		v := aob.HadVector(8, 3)
		s := v.Clone()
		for i := uint64(0); i < 256; i++ {
			v.Meas(i)
		}
		return v.Equal(s)
	}())
}

// F7: had patterns and implementation alternatives.
func fig7() {
	header("F7", "Figure 7: had hardware")
	v := aob.HadVector(16, 15)
	fmt.Printf("had @a,15: %d zeros then %d ones (paper: 32,768 each): pop=%d, first 1 at %d\n",
		v.Next(0), 65536-int(v.Next(0)), v.Pop(), v.Next(0))
	fmt.Printf("had @a,0: channel0=%d channel1=%d (paper: even 0, odd 1)\n", v2(0).Meas(0), v2(0).Meas(1))
	mux := gates.HadMuxCost(16)
	fmt.Printf("mux-table implementation: %d gates, %d levels\n", mux.Gates, mux.Levels)
	fmt.Printf("constant-register bank:   0 gates, %d bits of storage (Section 5's preferred design)\n",
		gates.HadConstRegBits(16))
}

func v2(k int) *aob.Vector { return aob.HadVector(16, k) }

// F8: next — the worked example and the gate-delay scaling table.
func fig8() {
	header("F8", "Figure 8: next hardware")
	m, err := qasm.RunFunctional("had @123,4\nlex $8,42\nnext $8,@123\nlex $0,0\nsys\n", 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper's worked example (had @123,4; lex $8,42; next $8,@123): $8 = %d (paper: 48)\n", m.Regs[8])
	fmt.Println("\ngate-delay model (levels of logic), wide-OR vs 2-input-OR tree:")
	fmt.Println("  WAYS   wide-OR   2-in-OR")
	for _, w := range []int{4, 8, 12, 16} {
		fmt.Printf("  %4d   %7d   %7d\n", w, gates.NextCost(w, gates.WideOR).Levels, gates.NextCost(w, 2).Levels)
	}
	fmt.Println("shape: O(WAYS) with wide OR; approaches O(WAYS^2) with 2-input ORs (paper Section 3.3)")
	nl, err := netlist.NextCircuit(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstructural netlist (8-way, the student scale): %d gates, depth %d\n",
		nl.C.NumGates(), nl.C.Depth())
	fmt.Printf("analytic model:                                %d gates, depth %d\n",
		gates.NextCost(8, 2).Gates, gates.NextCost(8, 2).Levels)
}

// F9: word-level factoring of 15.
func fig9() {
	header("F9", "Figure 9: word-level prime factoring of 15")
	mach := core.NewAoB(8)
	a := core.Mk(mach, 4, 15)
	b := core.H(mach, 4, 0x0F)
	c := core.H(mach, 4, 0xF0)
	d := b.Mul(c)
	e := d.Eq(a)
	f := core.FromBits(mach, []*aob.Vector{e}).Mul(b)
	var vals []uint64
	for _, meas := range f.MeasureAll() {
		vals = append(vals, meas.Value)
	}
	fmt.Printf("pint_measure(f) prints: %v (paper: 0, 1, 3, 5, 15)\n", vals)
}

// F10: the complete Tangled/Qat program.
func fig10() {
	header("F10", "Figure 10: Tangled/Qat assembly factoring 15")
	res, err := compile.FactorProgram(15, 8, 4, 4, compile.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := qasm.Factor(15, 4, 4, compile.Options{}, pipeline.StudentConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated Qat instructions: %d (paper's listing: ~80)\n", res.QatInsts)
	fmt.Printf("Qat registers touched:      %d (paper: 81, @0..@80)\n", res.RegsUsed)
	fmt.Printf("factors measured:           %d and %d (paper: 5 in $0, 3 in $1)\n",
		rep.Factors[0], rep.Factors[1])
	fmt.Printf("pipeline execution:         %d cycles, CPI %.3f\n",
		rep.Result.Pipe.Cycles, rep.Result.Pipe.CPI())
}

// S31: pipeline feasibility sweep.
func s31() {
	header("S31", "Section 3.1: pipelined implementations")
	straight := strings.Repeat("lex $1,5\n", 2000) + "lex $0,0\nsys\n"
	mixed := `
	lex $1,100
	lex $3,-1
	had @1,3
	loop:
	and @2,@1,@1
	xor @3,@2,@1
	copy $2,$1
	next $2,@3
	add $1,$3
	brt $1,loop
	lex $0,0
	sys
	`
	fmt.Println("CPI by organization (paper: every team sustained 1 instr/cycle absent interlocks):")
	fmt.Println("  config                straight-line   mixed-hazard")
	for _, c := range []struct {
		name string
		cfg  pipeline.Config
	}{
		{"4-stage fwd", pipeline.Config{Stages: 4, Ways: 8, Forwarding: true, MulLatency: 1, QatNextLatency: 1}},
		{"5-stage fwd", pipeline.Config{Stages: 5, Ways: 8, Forwarding: true, MulLatency: 1, QatNextLatency: 1}},
		{"5-stage no-fwd", pipeline.Config{Stages: 5, Ways: 8, MulLatency: 1, QatNextLatency: 1}},
		{"5-stage narrow-fetch", pipeline.Config{Stages: 5, Ways: 8, Forwarding: true, TwoWordFetchPenalty: true, MulLatency: 1, QatNextLatency: 1}},
		{"5-stage next-lat-4", pipeline.Config{Stages: 5, Ways: 8, Forwarding: true, MulLatency: 1, QatNextLatency: 4}},
	} {
		s, err := qasm.RunPipelined(straight, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		m, err := qasm.RunPipelined(mixed, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-21s %12.3f   %12.3f\n", c.name, s.Pipe.CPI(), m.Pipe.CPI())
	}
}

// S12: RE compression.
func s12() {
	header("S12", "Section 1.2: RE-compressed representation")
	fmt.Println("run-length examples (1-bit chunks): {0,1,0,1} and {0,0,1,1}")
	s := re.MustSpace(2, 1)
	fmt.Printf("  %s (paper: (01)^2), %s (paper: 0^2 1^2)\n", s.Had(0), s.Had(1))
	fmt.Println("\ncompression of Hadamard pbits (4096-bit chunks, as the LCPC'20 prototype):")
	fmt.Println("  ways   channels        runs   compression")
	for _, w := range []int{16, 24, 32, 40} {
		sp := re.MustSpace(w, 12)
		p := sp.Had(w - 1)
		fmt.Printf("  %4d   %12d   %4d   %10.0fx\n", w, sp.Channels(), p.NumRuns(), p.CompressionRatio())
	}
	// Note the flat run-length encoding degrades for channel sets near the
	// chunk size (the run count grows toward 2^(ways-chunkWays)); high
	// channel sets — the common case when layering above AoB hardware —
	// stay maximally compressed.
	sp := re.MustSpace(40, 12)
	x := sp.Had(39).Xor(sp.Had(30)).And(sp.Had(35).Not())
	fmt.Printf("\n40-way gate ops stay symbolic: result has %d runs, pop=%d of %d channels\n",
		x.NumRuns(), x.Pop(), sp.Channels())
}

// S5: ISA simplification ablations.
func s5() {
	header("S5", "Section 5: design-simplification ablations")
	fmt.Println("factoring-15 program under each variant:")
	fmt.Println("  variant                        qat-insts   regs   cycles")
	for _, v := range []struct {
		name string
		opts compile.Options
	}{
		{"paper-faithful", compile.Options{}},
		{"register reuse", compile.Options{Reuse: true}},
		{"constant-register bank", compile.Options{ConstantRegs: true}},
		{"reversible gates only", compile.Options{Reversible: true}},
		{"reuse+constants", compile.Options{Reuse: true, ConstantRegs: true}},
	} {
		rep, err := qasm.Factor(15, 4, 4, v.opts, pipeline.StudentConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s %9d   %4d   %6d\n", v.name, rep.QatInsts, rep.RegsUsed, rep.Result.Pipe.Cycles)
	}
	fmt.Println("\nregister-file port demands (Section 5's hardware argument):")
	for _, cls := range []string{"and", "cnot", "ccnot", "swap", "cswap", "meas"} {
		pc, err := gates.PortsFor(cls)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %d read, %d write\n", cls, pc.ReadPorts, pc.WritePorts)
	}
}

// multicycle: the course-project progression, multi-cycle -> pipelined.
func multicycle() {
	header("SMC", "Section 3: multi-cycle vs pipelined implementation")
	src := strings.Repeat("add $1,$2\nxor $3,$4\nand @1,@2,@3\nlex $5,9\n", 400) + "lex $0,0\nsys\n"
	ref, err := qasm.RunFunctional(src, 8)
	if err != nil {
		log.Fatal(err)
	}
	// Recompute multi-cycle count via a fresh run (RunFunctional drops it).
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fm := cpuMachine(8)
	if err := fm.Load(prog); err != nil {
		log.Fatal(err)
	}
	if err := fm.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	p, err := qasm.RunPipelined(src, pipeline.Config{Stages: 5, Ways: 8, Forwarding: true, MulLatency: 1, QatNextLatency: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-cycle machine: %d cycles (%0.2f states/inst)\n",
		fm.Stats.MultiCycles, float64(fm.Stats.MultiCycles)/float64(fm.Stats.Insts))
	fmt.Printf("pipelined machine:   %d cycles (CPI %.3f)\n", p.Pipe.Cycles, p.Pipe.CPI())
	fmt.Printf("speedup: %.2fx (the gain the second class project delivered)\n",
		float64(fm.Stats.MultiCycles)/float64(p.Pipe.Cycles))
	_ = ref
}

// rexScaling: the nested (tree-compressed) RE representation.
func rexScaling() {
	header("SREX", "Conclusions: scaling regular patterns of AoB blocks (rex)")
	fmt.Println("hash-consed chunk trees keep EVERY Hadamard pattern at O(ways) nodes,")
	fmt.Println("including the flat-RLE worst case near the chunk size:")
	fmt.Println("  ways   k      flat-RLE runs   rex nodes")
	for _, c := range []struct{ ways, k int }{{24, 12}, {32, 12}, {40, 13}, {60, 12}} {
		flatRuns := "2^" + fmt.Sprint(c.ways-c.k)
		sx := rex.MustSpace(c.ways, 12)
		fmt.Printf("  %4d   %2d   %13s   %9d\n", c.ways, c.k, flatRuns, sx.Had(c.k).NumNodes())
	}
	s := rex.MustSpace(60, 12)
	x := s.Had(59).And(s.Had(13))
	fmt.Printf("\ncross-scale combine at 60 ways (2^60 channels): %d nodes, pop %d\n",
		x.NumNodes(), x.Pop())
	fmt.Printf("next(0) = %d (= 2^59 + 2^13, found by O(height) descent)\n", x.Next(0))
}

// s5energy: the adiabatic/power question from the conclusions.
func s5energy() {
	header("SE", "Section 5 / conclusions: switching-energy ablation")
	type row struct {
		name string
		opts compile.Options
	}
	fmt.Println("factoring-15 program, energy proxies (see internal/energy):")
	fmt.Println("  gate set       switched-bits   erased-bits   recoverable")
	for _, r := range []row{
		{"irreversible", compile.Options{}},
		{"reversible", compile.Options{Reversible: true}},
	} {
		res, err := compile.FactorProgram(15, 8, 4, 4, r.opts)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := asm.Assemble(res.Asm)
		if err != nil {
			log.Fatal(err)
		}
		m := cpuMachine(8)
		meter := energy.NewMeter()
		m.Qat.Meter = meter
		if err := m.Load(prog); err != nil {
			log.Fatal(err)
		}
		if err := m.Run(10_000_000); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %15d %13d %13d (%.0f%%)\n", r.name,
			meter.SwitchedBits, meter.ErasedBits, meter.AdiabaticRecoverable(),
			100*float64(meter.AdiabaticRecoverable())/float64(meter.SwitchedBits))
	}
	fmt.Println("shape: the reversible gate set switches more bits overall but nearly")
	fmt.Println("all of it is adiabatically recoverable — the paper's power argument.")
}

// X221: the original factoring problem at full hardware scale.
func x221() {
	header("X221", "Section 4.1: factoring 221 (the problem the paper scaled down)")
	rep, err := qasm.Factor(221, 8, 8, compile.Options{Reuse: true}, pipeline.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("221 = %d x %d on 16-way Qat (65,536-bit AoB registers)\n",
		rep.Factors[0], rep.Factors[1])
	fmt.Printf("%d Qat instructions, %d registers (reuse required; greedy allocation exhausts 256)\n",
		rep.QatInsts, rep.RegsUsed)
	fmt.Printf("pipeline: %d cycles, CPI %.3f\n", rep.Result.Pipe.Cycles, rep.Result.Pipe.CPI())
}
