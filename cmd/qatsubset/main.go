// qatsubset compiles and runs a subset-sum search on the simulated
// Tangled/Qat hardware: every subset of the weights is explored in one
// entangled superposition, and the solution count plus first solution come
// back through the pop/next measurement instructions.
//
// Usage:
//
//	qatsubset [-ways N] [-asm] target w1 w2 w3 ...
//
// Example:
//
//	qatsubset 100 3 34 4 12 5 2 17 29 8 21 6 11 41 9 14 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"tangled/internal/compile"
	"tangled/internal/pipeline"
	"tangled/internal/qasm"
)

func main() {
	ways := flag.Int("ways", 0, "entanglement degree (default: number of items)")
	showAsm := flag.Bool("asm", false, "print the generated assembly and exit")
	stages := flag.Int("stages", 5, "pipeline depth (4 or 5)")
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintln(os.Stderr, "usage: qatsubset [flags] target w1 w2 ...")
		os.Exit(2)
	}
	target, err := strconv.ParseUint(flag.Arg(0), 0, 32)
	if err != nil {
		fatal(fmt.Errorf("bad target %q", flag.Arg(0)))
	}
	var weights []uint64
	for _, arg := range flag.Args()[1:] {
		w, err := strconv.ParseUint(arg, 0, 32)
		if err != nil || w == 0 {
			fatal(fmt.Errorf("bad weight %q", arg))
		}
		weights = append(weights, w)
	}
	w := *ways
	if w == 0 {
		w = len(weights)
	}

	res, err := compile.SubsetSumProgram(weights, target, w, compile.Options{Reuse: true})
	if err != nil {
		fatal(err)
	}
	if *showAsm {
		fmt.Print(res.Asm)
		return
	}
	cfg := pipeline.Config{Stages: *stages, Ways: w, Forwarding: true,
		MulLatency: 1, QatNextLatency: 1}
	run, err := qasm.RunPipelined(res.Asm, cfg)
	if err != nil {
		fatal(err)
	}
	count := uint64(run.Regs[2])
	fmt.Printf("solutions: %d of %d subsets\n", count, uint64(1)<<uint(len(weights)))
	if count == 0 {
		return
	}
	first := uint64(run.Regs[1])
	if first == 0 && run.Regs[4] == 1 {
		fmt.Println("first solution: the empty subset")
	} else {
		var parts []uint64
		var sum uint64
		for i, wt := range weights {
			if first>>uint(i)&1 == 1 {
				parts = append(parts, wt)
				sum += wt
			}
		}
		fmt.Printf("first solution: mask %#x = %v (sum %d)\n", first, parts, sum)
	}
	fmt.Printf("%d Qat instructions, %d registers; %d pipeline cycles (CPI %.3f)\n",
		res.QatInsts, res.RegsUsed, run.Pipe.Cycles, run.Pipe.CPI())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qatsubset:", err)
	os.Exit(1)
}
