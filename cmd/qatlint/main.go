// qatlint is the static analyzer for Tangled/Qat assembly programs: it
// assembles each input, reconstructs the control-flow graph, and reports
// unreachable code, dead stores, reads of never-written registers
// (including measurements of never-prepared pbits), programs that cannot
// halt, inescapable loops, illegal instructions on reachable paths, and
// per-basic-block static energy estimates.
//
// With -optimize it is also the front end of the optimizing recompiler
// (internal/opt): lint-clean programs are rewritten — dead stores deleted,
// constants folded, Qat sequences peepholed, energy-redundant operations
// removed — and the rewritten assembly plus a per-pass delta report are
// emitted. Programs the optimizer cannot prove safe to rewrite come back
// unchanged with the refusal reason; programs with error-level findings are
// never rewritten and fail the run with exit status 2.
//
// With -profile it additionally runs the static entanglement/cost profiler
// (internal/profile) over each assemblable input: per-register degree
// bounds, entangled channel groups, run-length compressibility, energy
// bounds, and the backend auto-planner's decision for the requested width
// are reported per file (and embedded in the -json output as "profile" and
// "plan").
//
// Usage:
//
//	qatlint [-json] [-severity error|warning|info] [-ways N] [-hot N] [-optimize] [-profile] prog.s ...
//	qatlint -farmtest N          also lint the generated test corpus
//
// Input "-" (or no arguments) reads from stdin. The exit status is the CI
// contract: 0 when every input is below the -severity gate, 1 when any
// finding (or assembly failure) meets it, 2 on usage or I/O errors — and,
// under -optimize, on error-level findings, which make rewriting unsafe.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"tangled/internal/asm"
	"tangled/internal/backend"
	"tangled/internal/farm/farmtest"
	"tangled/internal/lint"
	"tangled/internal/opt"
	"tangled/internal/profile"
	"tangled/internal/qat"
)

// fileReport is one input's result in the JSON output.
type fileReport struct {
	File string `json:"file"`
	// AsmErrors carries assembler diagnostics when the input does not
	// assemble; Report is null in that case.
	AsmErrors []string     `json:"asm_errors,omitempty"`
	Report    *lint.Report `json:"report,omitempty"`
	// Opt is the optimizer's delta report (-optimize only); when it
	// applied, OptimizedWords and OptimizedAsm carry the rewritten program.
	Opt            *opt.Report `json:"opt,omitempty"`
	OptimizedWords []uint16    `json:"optimized_words,omitempty"`
	OptimizedAsm   []string    `json:"optimized_asm,omitempty"`
	// Profile is the static entanglement/cost profile (-profile only); Plan
	// is the backend the auto-planner resolves for the requested width, or
	// "unservable" when no backend can hold it.
	Profile *lint.Profile `json:"profile,omitempty"`
	Plan    string        `json:"plan,omitempty"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)) }

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qatlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the full JSON report to stdout")
	sevFlag := fs.String("severity", "error", "minimum severity that fails the run (info|warning|error)")
	ways := fs.Int("ways", 0, "assumed entanglement degree for energy estimates (0 = full hardware)")
	hot := fs.Uint64("hot", 0, "erased-bits-per-iteration budget for hot-block findings (0 = default)")
	nCorpus := fs.Int("farmtest", 0, "also lint the first N generated farmtest corpus programs")
	optimize := fs.Bool("optimize", false, "rewrite lint-clean programs through the optimizing recompiler")
	profileMode := fs.Bool("profile", false, "run the static entanglement/cost profiler and report the planner decision")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	gate, err := lint.ParseSeverity(*sevFlag)
	if err != nil {
		fmt.Fprintln(stderr, "qatlint:", err)
		return 2
	}
	opts := lint.Options{Ways: *ways, HotErasedBits: *hot}

	type input struct{ name, src string }
	var inputs []input
	if *nCorpus > 0 {
		if *nCorpus > farmtest.Programs {
			*nCorpus = farmtest.Programs
		}
		for i := 0; i < *nCorpus; i++ {
			inputs = append(inputs, input{
				name: fmt.Sprintf("farmtest/%03d", i),
				src:  farmtest.Generate(farmtest.Seed(i)),
			})
		}
		if opts.Ways == 0 {
			opts.Ways = farmtest.Ways
		}
	}
	if *nCorpus == 0 && fs.NArg() == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintln(stderr, "qatlint: stdin:", err)
			return 2
		}
		inputs = append(inputs, input{name: "<stdin>", src: string(src)})
	}
	for _, path := range fs.Args() {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(stdin)
			path = "<stdin>"
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintln(stderr, "qatlint:", err)
			return 2
		}
		inputs = append(inputs, input{name: path, src: string(src)})
	}

	failed, unsafe := false, false
	var results []fileReport
	for _, in := range inputs {
		fr := fileReport{File: in.name}
		prog, err := asm.Assemble(in.src)
		if err != nil {
			// Assembly failures always meet the gate: an unassemblable
			// program is at least as broken as an error finding.
			failed = true
			var list asm.ErrorList
			if errors.As(err, &list) {
				for _, e := range list {
					fr.AsmErrors = append(fr.AsmErrors, e.Error())
					if !*jsonOut {
						fmt.Fprintf(stdout, "%s: %s\n", in.name, e.Error())
					}
				}
			} else {
				fr.AsmErrors = append(fr.AsmErrors, err.Error())
				if !*jsonOut {
					fmt.Fprintf(stdout, "%s: %v\n", in.name, err)
				}
			}
			results = append(results, fr)
			continue
		}
		var r *lint.Report
		if *profileMode {
			var f *lint.Facts
			r, f = lint.AnalyzeWithFacts(prog, opts)
			// Profile at the requested width (which may exceed the dense
			// clamp lint applies), then ask the planner what backend an
			// "auto" request at that width would resolve to.
			planWays := *ways
			if planWays == 0 {
				planWays = opts.Ways
			}
			p := profile.Compute(f, profile.Options{Ways: planWays})
			fr.Profile = p
			if plan, perr := backend.Decide(p, qat.Config{Ways: planWays, Backend: backend.Auto}, nil); perr != nil {
				fr.Plan = "unservable"
			} else {
				fr.Plan = plan.Config.Backend
			}
			if !*jsonOut {
				printProfile(stdout, in.name, fr.Profile, fr.Plan)
			}
		} else {
			r = lint.Analyze(prog, opts)
		}
		fr.Report = r
		if r.CountAtLeast(gate) > 0 {
			failed = true
		}
		if !*jsonOut {
			for _, d := range r.Diags {
				fmt.Fprintf(stdout, "%s: %s\n", in.name, d)
			}
		}
		if *optimize {
			if r.Errors > 0 {
				// Error-level findings mean the program is broken; rewriting
				// a broken program is never safe, and silently skipping the
				// rewrite would hand the caller the wrong artifact. Usage
				// contract violation: exit 2.
				unsafe = true
				if !*jsonOut {
					fmt.Fprintf(stdout, "%s: optimize: refused (%s): error-level findings suppress rewriting\n",
						in.name, opt.ReasonLintErrors)
				}
			} else {
				optProg, orep := opt.Optimize(prog, opt.Options{Ways: opts.Ways})
				fr.Opt = orep
				if orep.Applied {
					fr.OptimizedWords = optProg.Words
					fr.OptimizedAsm = opt.Disassemble(optProg, opt.Options{})
				}
				if !*jsonOut {
					printOptSummary(stdout, in.name, orep, fr.OptimizedAsm)
				}
			}
		}
		results = append(results, fr)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Severity string       `json:"severity_gate"`
			Files    []fileReport `json:"files"`
		}{gate.String(), results}); err != nil {
			fmt.Fprintln(stderr, "qatlint:", err)
			return 2
		}
	}
	if unsafe {
		return 2
	}
	if failed {
		return 1
	}
	return 0
}

// printProfile renders the text-mode profile summary and planner decision.
func printProfile(w io.Writer, name string, p *lint.Profile, plan string) {
	mode := "precise"
	if p.Imprecise {
		mode = "imprecise"
	}
	fmt.Fprintf(w, "%s: profile: ways %d, degree bound %d, required ways %d (%s)\n",
		name, p.Ways, p.DegreeBound, p.RequiredWays, mode)
	fmt.Fprintf(w, "%s: profile: insts %d, qat ops %d, writes %d (structured %d), compressibility %.2f\n",
		name, p.Insts, p.QatOps, p.QatWrites, p.StructuredWrites, p.Compressibility)
	fmt.Fprintf(w, "%s: profile: energy bound: switched %d, erased %d, loop blocks %d\n",
		name, p.SwitchedBound, p.ErasedBound, p.LoopBlocks)
	for _, g := range p.Groups {
		fmt.Fprintf(w, "%s: profile:   entangled channels %v\n", name, g)
	}
	for _, b := range p.Blocks {
		fmt.Fprintf(w, "%s: profile:   block %d [%#04x,%#04x): degree %d, writes %d/%d, switched %d, erased %d\n",
			name, b.ID, b.Start, b.End, b.MaxDegree, b.StructuredWrites, b.QatWrites, b.SwitchedBits, b.ErasedBits)
	}
	fmt.Fprintf(w, "%s: profile: plan: %s\n", name, plan)
}

// printOptSummary renders the text-mode delta report and rewritten listing.
func printOptSummary(w io.Writer, name string, rep *opt.Report, asmLines []string) {
	if !rep.Applied {
		fmt.Fprintf(w, "%s: optimize: refused (%s): program returned unchanged\n", name, rep.Reason)
		return
	}
	fmt.Fprintf(w, "%s: optimize: applied in %d round(s): words %d -> %d, insts %d -> %d, switched bits %d -> %d, erased bits %d -> %d\n",
		name, rep.Rounds, rep.WordsBefore, rep.WordsAfter, rep.InstsBefore, rep.InstsAfter,
		rep.SwitchedBefore, rep.SwitchedAfter, rep.ErasedBefore, rep.ErasedAfter)
	for _, ps := range rep.Passes {
		if ps.Removed+ps.Rewritten > 0 {
			fmt.Fprintf(w, "%s: optimize:   %s: removed %d, rewrote %d\n", name, ps.Pass, ps.Removed, ps.Rewritten)
		}
	}
	for _, line := range asmLines {
		fmt.Fprintf(w, "%s: | %s\n", name, line)
	}
}
