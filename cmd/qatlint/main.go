// qatlint is the static analyzer for Tangled/Qat assembly programs: it
// assembles each input, reconstructs the control-flow graph, and reports
// unreachable code, dead stores, reads of never-written registers
// (including measurements of never-prepared pbits), programs that cannot
// halt, inescapable loops, illegal instructions on reachable paths, and
// per-basic-block static energy estimates.
//
// Usage:
//
//	qatlint [-json] [-severity error|warning|info] [-ways N] [-hot N] prog.s ...
//	qatlint -farmtest N          also lint the generated test corpus
//
// Input "-" (or no arguments) reads from stdin. The exit status is the CI
// contract: 0 when every input is below the -severity gate, 1 when any
// finding (or assembly failure) meets it, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"tangled/internal/asm"
	"tangled/internal/farm/farmtest"
	"tangled/internal/lint"
)

// fileReport is one input's result in the JSON output.
type fileReport struct {
	File string `json:"file"`
	// AsmErrors carries assembler diagnostics when the input does not
	// assemble; Report is null in that case.
	AsmErrors []string     `json:"asm_errors,omitempty"`
	Report    *lint.Report `json:"report,omitempty"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the full JSON report to stdout")
	sevFlag := flag.String("severity", "error", "minimum severity that fails the run (info|warning|error)")
	ways := flag.Int("ways", 0, "assumed entanglement degree for energy estimates (0 = full hardware)")
	hot := flag.Uint64("hot", 0, "erased-bits-per-iteration budget for hot-block findings (0 = default)")
	nCorpus := flag.Int("farmtest", 0, "also lint the first N generated farmtest corpus programs")
	flag.Parse()

	gate, err := lint.ParseSeverity(*sevFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qatlint:", err)
		os.Exit(2)
	}
	opts := lint.Options{Ways: *ways, HotErasedBits: *hot}

	type input struct{ name, src string }
	var inputs []input
	if *nCorpus > 0 {
		if *nCorpus > farmtest.Programs {
			*nCorpus = farmtest.Programs
		}
		for i := 0; i < *nCorpus; i++ {
			inputs = append(inputs, input{
				name: fmt.Sprintf("farmtest/%03d", i),
				src:  farmtest.Generate(farmtest.Seed(i)),
			})
		}
		if opts.Ways == 0 {
			opts.Ways = farmtest.Ways
		}
	}
	if *nCorpus == 0 && flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qatlint: stdin:", err)
			os.Exit(2)
		}
		inputs = append(inputs, input{name: "<stdin>", src: string(src)})
	}
	for _, path := range flag.Args() {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(os.Stdin)
			path = "<stdin>"
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qatlint:", err)
			os.Exit(2)
		}
		inputs = append(inputs, input{name: path, src: string(src)})
	}

	failed := false
	var results []fileReport
	for _, in := range inputs {
		fr := fileReport{File: in.name}
		r, err := lint.AnalyzeSource(in.src, opts)
		if err != nil {
			// Assembly failures always meet the gate: an unassemblable
			// program is at least as broken as an error finding.
			failed = true
			var list asm.ErrorList
			if errors.As(err, &list) {
				for _, e := range list {
					fr.AsmErrors = append(fr.AsmErrors, e.Error())
					if !*jsonOut {
						fmt.Printf("%s: %s\n", in.name, e.Error())
					}
				}
			} else {
				fr.AsmErrors = append(fr.AsmErrors, err.Error())
				if !*jsonOut {
					fmt.Printf("%s: %v\n", in.name, err)
				}
			}
			results = append(results, fr)
			continue
		}
		fr.Report = r
		results = append(results, fr)
		if r.CountAtLeast(gate) > 0 {
			failed = true
		}
		if !*jsonOut {
			for _, d := range r.Diags {
				fmt.Printf("%s: %s\n", in.name, d)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Severity string       `json:"severity_gate"`
			Files    []fileReport `json:"files"`
		}{gate.String(), results}); err != nil {
			fmt.Fprintln(os.Stderr, "qatlint:", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}
