package main

// Regression tests for the CLI contract, above all the -severity/-optimize
// interaction: error-level findings must suppress rewriting and fail the
// run with exit status 2, refusals must report their reason and change
// nothing, and accepted rewrites must round-trip through the emitted JSON.

import (
	"encoding/json"
	"strings"
	"testing"
)

type jsonOut struct {
	Severity string `json:"severity_gate"`
	Files    []struct {
		File           string   `json:"file"`
		AsmErrors      []string `json:"asm_errors"`
		OptimizedWords []uint16 `json:"optimized_words"`
		OptimizedAsm   []string `json:"optimized_asm"`
		Opt            *struct {
			Applied    bool   `json:"applied"`
			Reason     string `json:"reason"`
			WordsAfter int    `json:"words_after"`
		} `json:"opt"`
	} `json:"files"`
}

func runCLI(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const cleanSrc = "\tlex\t$1, 2\n\tlex\t$2, 3\n\tadd\t$1, $2\n\tlex\t$0, 1\n\tsys\n\tlex\t$0, 0\n\tsys\n"
const brokenSrc = "\tlex\t$1, 5\n" // falls off the end: error-level no-halt

func TestOptimizeCleanProgram(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-optimize"}, cleanSrc)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "optimize: applied") {
		t.Fatalf("no applied summary:\n%s", out)
	}
	if !strings.Contains(out, "| ") {
		t.Fatalf("no rewritten listing:\n%s", out)
	}
}

func TestOptimizeErrorFindingsExit2(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-optimize"}, brokenSrc)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (error findings suppress rewriting)\n%s", code, out)
	}
	if !strings.Contains(out, "error-level findings suppress rewriting") {
		t.Fatalf("no suppression notice:\n%s", out)
	}
	if strings.Contains(out, "optimize: applied") {
		t.Fatalf("broken program was rewritten:\n%s", out)
	}
}

func TestWithoutOptimizeErrorFindingsExit1(t *testing.T) {
	// The same broken program without -optimize keeps the historic exit 1.
	code, _, _ := runCLI(t, nil, brokenSrc)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestOptimizeRefusalIsNoOp(t *testing.T) {
	// A resolved jump is lint-clean but not rewritable: the CLI must report
	// the refusal, emit no rewritten program, and exit 0.
	src := "\tjump\tskip\n\tlex\t$4, 1\nskip:\tlex\t$0, 0\n\tsys\n"
	code, out, _ := runCLI(t, []string{"-optimize", "-severity", "error"}, src)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "optimize: refused") {
		t.Fatalf("no refusal notice:\n%s", out)
	}
	if strings.Contains(out, "| ") {
		t.Fatalf("refused program has a rewritten listing:\n%s", out)
	}
}

func TestOptimizeJSON(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-optimize", "-json"}, cleanSrc)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	var rep jsonOut
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(rep.Files) != 1 || rep.Files[0].Opt == nil {
		t.Fatalf("missing opt report: %+v", rep)
	}
	f := rep.Files[0]
	if !f.Opt.Applied {
		t.Fatalf("not applied: %+v", f.Opt)
	}
	if len(f.OptimizedWords) != f.Opt.WordsAfter || len(f.OptimizedAsm) == 0 {
		t.Fatalf("optimized artifacts inconsistent: %d words vs %d reported, %d asm lines",
			len(f.OptimizedWords), f.Opt.WordsAfter, len(f.OptimizedAsm))
	}
}

func TestOptimizeJSONBrokenExit2(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-optimize", "-json"}, brokenSrc)
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, out)
	}
	var rep jsonOut
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rep.Files) != 1 || rep.Files[0].Opt != nil || len(rep.Files[0].OptimizedWords) != 0 {
		t.Fatalf("broken program carries optimizer output: %+v", rep.Files[0])
	}
}

func TestFarmtestCorpusStillLints(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-farmtest", "5", "-optimize"}, "")
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
}

func TestBadSeverityExit2(t *testing.T) {
	code, _, errb := runCLI(t, []string{"-severity", "nonsense"}, cleanSrc)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (%s)", code, errb)
	}
}

const profileSrc = "\thad @1, 0\n\thad @2, 1\n\tcnot @1, @2\n\tmeas $3, @1\n\tlex $0, 0\n\tsys\n"

func TestProfileText(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-profile", "-ways", "6", "-severity", "error"}, profileSrc)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	for _, want := range []string{
		"profile: ways 6, degree bound 2, required ways 2 (precise)",
		"entangled channels [0 1]",
		"profile: plan: dense",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestProfileJSON(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-profile", "-json", "-ways", "20", "-severity", "error"}, profileSrc)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	var parsed struct {
		Files []struct {
			Plan    string `json:"plan"`
			Profile *struct {
				Ways        int `json:"ways"`
				DegreeBound int `json:"degree_bound"`
			} `json:"profile"`
		} `json:"files"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	f := parsed.Files[0]
	if f.Profile == nil || f.Profile.Ways != 20 || f.Profile.DegreeBound != 2 {
		t.Fatalf("profile = %+v", f.Profile)
	}
	// Ways 20 exceeds dense hardware: the planner must pick RE.
	if f.Plan != "re" {
		t.Fatalf("plan = %q, want re", f.Plan)
	}
}

func TestProfileFarmtestCorpus(t *testing.T) {
	code, out, _ := runCLI(t, []string{"-profile", "-farmtest", "25", "-severity", "error"}, "")
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "profile: plan:") {
		t.Fatalf("no planner decisions in corpus sweep:\n%s", out)
	}
}
