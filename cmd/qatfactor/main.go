// qatfactor runs the complete Figure 10 toolchain for an arbitrary
// composite: it compiles a word-level factoring program to gate-level
// Tangled/Qat assembly, executes it on the cycle-accurate pipeline, and
// reports the factors with instruction/cycle accounting.
//
// Usage:
//
//	qatfactor [-ways N] [-abits N] [-bbits N] [-reuse] [-asm] n
//
// Examples:
//
//	qatfactor 15                  # the paper's scaled-down problem
//	qatfactor -reuse 221          # the original LCPC'20 problem
//	qatfactor -asm 15             # print the generated assembly
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"tangled/internal/compile"
	"tangled/internal/pipeline"
	"tangled/internal/qasm"
)

func main() {
	ways := flag.Int("ways", 0, "entanglement degree (default abits+bbits)")
	aBits := flag.Int("abits", 0, "first operand bits (default: fit n)")
	bBits := flag.Int("bbits", 0, "second operand bits (default: abits)")
	reuse := flag.Bool("reuse", false, "recycle Qat registers (needed beyond ~5x5 bits)")
	constRegs := flag.Bool("const-regs", false, "use the Section 5 constant-register bank")
	reversible := flag.Bool("reversible", false, "restrict to reversible gates")
	showAsm := flag.Bool("asm", false, "print the generated assembly and exit")
	stages := flag.Int("stages", 5, "pipeline depth (4 or 5)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qatfactor [flags] n")
		os.Exit(2)
	}
	n, err := strconv.ParseUint(flag.Arg(0), 0, 16)
	if err != nil || n < 4 {
		fatal(fmt.Errorf("bad n %q (need a composite >= 4)", flag.Arg(0)))
	}

	ab := *aBits
	if ab == 0 {
		for uint64(1)<<uint(ab) <= n {
			ab++
		}
	}
	bb := *bBits
	if bb == 0 {
		bb = ab
	}
	w := *ways
	if w == 0 {
		w = ab + bb
	}

	opts := compile.Options{Reuse: *reuse, ConstantRegs: *constRegs, Reversible: *reversible}
	if *showAsm {
		res, err := compile.FactorProgram(n, w, ab, bb, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Asm)
		return
	}

	cfg := pipeline.Config{
		Stages: *stages, Ways: w, Forwarding: true,
		MulLatency: 1, QatNextLatency: 1,
	}
	rep, err := qasm.Factor(n, ab, bb, opts, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d = %d x %d\n", n, rep.Factors[0], rep.Factors[1])
	fmt.Printf("gate-level Qat instructions: %d\n", rep.QatInsts)
	fmt.Printf("Qat registers used:          %d\n", rep.RegsUsed)
	if s := rep.Result.Pipe; s != nil {
		fmt.Printf("pipeline: %d cycles, %d retired, CPI %.3f\n", s.Cycles, s.Insts, s.CPI())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qatfactor:", err)
	os.Exit(1)
}
