// tangled-recode transcodes a hex word image between instruction
// encodings, demonstrating the paper's point that the Tangled/Qat binary
// layout is a free choice ("students were permitted to change the
// instruction encoding for each project").
//
// Usage:
//
//	tangled-recode [-from primary|student] [-to primary|student] image.hex
package main

import (
	"fmt"
	"os"
	"strings"

	"flag"

	"tangled/internal/asm"
	"tangled/internal/isa"
)

func codec(name string) (isa.Encoding, error) {
	switch name {
	case "primary":
		return isa.Primary, nil
	case "student":
		return isa.Student, nil
	default:
		return nil, fmt.Errorf("unknown encoding %q (primary or student)", name)
	}
}

func main() {
	from := flag.String("from", "primary", "source encoding")
	to := flag.String("to", "student", "destination encoding")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tangled-recode [-from enc] [-to enc] image.hex")
		os.Exit(2)
	}
	src, err := codec(*from)
	if err != nil {
		fatal(err)
	}
	dst, err := codec(*to)
	if err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	words, err := asm.ReadHex(strings.NewReader(string(data)))
	if err != nil {
		fatal(err)
	}
	out, err := isa.Transcode(words, src, dst)
	if err != nil {
		fatal(err)
	}
	if err := asm.WriteHex(os.Stdout, out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tangled-recode:", err)
	os.Exit(1)
}
