package main

// Coordinator mode: qatserver -cluster-coordinator fronts a worker fleet
// (internal/cluster) instead of executing programs itself. The process
// lifecycle mirrors worker mode — -port-file as the "listening" signal,
// SIGINT/SIGTERM graceful drain (new work refused with 503 while in-flight
// forwards finish), metrics flushed at shutdown.

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tangled/internal/cluster"
	"tangled/internal/obs"
)

type coordinatorOpts struct {
	addr         string
	nodes        string
	heartbeat    time.Duration
	failAfter    int
	replicas     int
	metricsOut   string
	portFile     string
	drainTimeout time.Duration
	logf         func(string, ...interface{})
}

func runCoordinator(opts coordinatorOpts) {
	var urls []string
	for _, u := range strings.Split(opts.nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "qatserver: -cluster-coordinator needs -nodes URL,URL,...")
		os.Exit(2)
	}
	reg := obs.NewRegistry()
	co, err := cluster.New(cluster.Config{
		Nodes:             urls,
		Replicas:          opts.replicas,
		HeartbeatInterval: opts.heartbeat,
		FailAfter:         opts.failAfter,
		Registry:          reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qatserver: %v\n", err)
		os.Exit(1)
	}
	bound, err := co.Start(opts.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qatserver: %v\n", err)
		os.Exit(1)
	}
	opts.logf("coordinating %d worker nodes on http://%s", len(urls), bound)
	if opts.portFile != "" {
		if err := os.WriteFile(opts.portFile, []byte(bound.String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "qatserver: port-file: %v\n", err)
			os.Exit(1)
		}
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	opts.logf("received %v, draining (timeout %v)", sig, opts.drainTimeout)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "qatserver: second signal, aborting")
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	exitCode := 0
	if err := co.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qatserver: drain: %v\n", err)
		exitCode = 1
	}
	if opts.metricsOut != "" {
		if err := writeMetrics(opts.metricsOut, reg); err != nil {
			fmt.Fprintf(os.Stderr, "qatserver: metrics: %v\n", err)
			exitCode = 1
		}
	}
	opts.logf("drained cleanly")
	os.Exit(exitCode)
}
