// qatserver serves the Qat execution fleet over HTTP: the networked face of
// internal/server. It accepts Tangled/Qat assembly or pre-assembled word
// images on POST /v1/run and /v1/batch, executes them on the concurrent
// farm, and streams results back as JSON/NDJSON, with admission control
// (bounded queue, 429 + Retry-After beyond it), dynamic batching of single
// submissions, per-request deadlines, and a graceful drain on
// SIGINT/SIGTERM: intake stops (healthz flips to 503), every admitted job
// finishes and delivers its response, and only then are metrics and the
// cycle trace flushed to disk.
//
// Usage:
//
//	qatserver [-addr HOST:PORT] [-workers N] [-queue N]
//	          [-batch-window D] [-batch-max N] [-memo-cap N]
//	          [-metrics FILE] [-trace FILE] [-drain-timeout D] [-quiet]
//	qatserver -cluster-coordinator -nodes URL,URL,... [-addr HOST:PORT]
//	          [-heartbeat D] [-fail-after N] [-replicas N]
//
// Examples:
//
//	qatserver                          # serve on 127.0.0.1:8080
//	qatserver -addr :9090 -workers 4   # all interfaces, four workers
//	qatserver -metrics m.prom -trace t.jsonl   # flush both on drain
//	qatserver -cluster-coordinator -nodes http://10.0.0.1:8080,http://10.0.0.2:8080
//
// With -cluster-coordinator the process serves no programs itself: it
// fronts the listed worker fleet, routing /v1/run and /v1/batch by memo
// key on a consistent-hash ring, probing each worker's /v1/healthz on a
// heartbeat, and aggregating /v1/healthz and /v1/buildinfo (docs/CLUSTER.md).
//
// The metrics registry is always on (it also backs GET /metrics and the
// /debug/ face); -metrics FILE additionally writes the Prometheus text
// rendering at shutdown ("-" for stdout). -trace FILE exports the pipeline
// cycle-trace ring as versioned JSONL (docs/TRACE.md), each row stamped
// with the request ID that produced it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tangled/internal/obs"
	"tangled/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (default GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue limit (default 256)")
	batchWindow := flag.Duration("batch-window", 0, "coalescer latency window (default 2ms)")
	batchMax := flag.Int("batch-max", 0, "max jobs per coalesced/chunked batch (default 64)")
	memoCap := flag.Int("memo-cap", 0, "execution cache capacity in programs (default 4096, negative disables)")
	metricsOut := flag.String("metrics", "", "write Prometheus text to FILE at shutdown (\"-\" for stdout)")
	traceOut := flag.String("trace", "", "write the cycle trace as JSONL to FILE at shutdown")
	portFile := flag.String("port-file", "", "write the bound address to FILE once listening (for -addr :0 scripting)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight work on shutdown")
	strictLint := flag.Bool("strict-lint", false, "refuse statically broken programs (error-severity lint findings) with 422 before admission")
	jobsDir := flag.String("jobs-dir", "", "enable the async job API (POST /v1/jobs, GET /v1/events) with a durable WAL-backed store in DIR; queued jobs survive restarts")
	jobsQueue := flag.Int("jobs-queue", 0, "async job queue limit (default 1024; needs -jobs-dir)")
	jobWorkers := flag.Int("jobs-workers", 0, "concurrent async jobs (default half of -workers; needs -jobs-dir)")
	optAdmission := flag.Bool("opt-admission", false, "run the optimizing recompiler on async jobs at first admission (memo key stays the original program; needs -jobs-dir)")
	quiet := flag.Bool("quiet", false, "suppress startup/drain log lines")
	clusterMode := flag.Bool("cluster-coordinator", false, "serve as a cluster coordinator over -nodes instead of executing programs")
	nodes := flag.String("nodes", "", "comma-separated worker base URLs (needs -cluster-coordinator)")
	heartbeat := flag.Duration("heartbeat", 0, "coordinator health-probe interval (default 500ms; needs -cluster-coordinator)")
	failAfter := flag.Int("fail-after", 0, "consecutive missed heartbeats before a node is evicted (default 3; needs -cluster-coordinator)")
	replicas := flag.Int("replicas", 0, "virtual nodes per worker on the hash ring (default 128; needs -cluster-coordinator)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "qatserver: unexpected arguments; see -h")
		os.Exit(2)
	}

	logf := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "qatserver: "+format+"\n", args...)
		}
	}

	if *clusterMode {
		runCoordinator(coordinatorOpts{
			addr: *addr, nodes: *nodes, heartbeat: *heartbeat,
			failAfter: *failAfter, replicas: *replicas,
			metricsOut: *metricsOut, portFile: *portFile,
			drainTimeout: *drainTimeout, logf: logf,
		})
		return
	}
	if *nodes != "" {
		fmt.Fprintln(os.Stderr, "qatserver: -nodes needs -cluster-coordinator")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	var ring *obs.TraceRing
	if *traceOut != "" {
		ring = obs.NewTraceRing(0)
	}
	srv, err := server.New(server.Config{
		Workers:       *workers,
		QueueLimit:    *queue,
		BatchWindow:   *batchWindow,
		BatchMax:      *batchMax,
		MemoCap:       *memoCap,
		StrictLint:    *strictLint,
		JobsDir:       *jobsDir,
		JobQueueLimit: *jobsQueue,
		JobWorkers:    *jobWorkers,
		OptAdmission:  *optAdmission,
		Registry:      reg,
		Trace:         ring,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qatserver: %v\n", err)
		os.Exit(1)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qatserver: %v\n", err)
		os.Exit(1)
	}
	logf("serving on http://%s (%d workers, queue %d)",
		bound, srv.Engine().Workers(), srv.QueueLimit())
	if *portFile != "" {
		// The file appearing is the "listening" signal for scripts that
		// started us with -addr 127.0.0.1:0.
		if err := os.WriteFile(*portFile, []byte(bound.String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "qatserver: port-file: %v\n", err)
			os.Exit(1)
		}
	}

	// Graceful drain on SIGINT/SIGTERM: stop intake, finish admitted work,
	// then flush observability artifacts. A second signal aborts hard.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	logf("received %v, draining (timeout %v)", sig, *drainTimeout)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "qatserver: second signal, aborting")
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	exitCode := 0
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qatserver: drain: %v\n", err)
		exitCode = 1
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fmt.Fprintf(os.Stderr, "qatserver: metrics: %v\n", err)
			exitCode = 1
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, ring); err != nil {
			fmt.Fprintf(os.Stderr, "qatserver: trace: %v\n", err)
			exitCode = 1
		}
	}
	logf("drained cleanly")
	os.Exit(exitCode)
}

// writeMetrics renders the registry as Prometheus text exposition format.
func writeMetrics(path string, reg *obs.Registry) error {
	if path == "-" {
		reg.WritePrometheus(os.Stdout)
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	reg.WritePrometheus(f)
	return f.Close()
}

// writeTrace exports the trace ring as versioned JSONL.
func writeTrace(path string, ring *obs.TraceRing) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ring.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if n := ring.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "qatserver: trace ring dropped %d oldest events\n", n)
	}
	return f.Close()
}
