// Quickstart: the paper's Figure 9 word-level prime factoring of 15,
// written against the PBP programming layer (package core).
//
// Two four-bit pattern integers are Hadamard-initialized over disjoint
// entanglement channel sets, so their product simultaneously explores all
// 256 operand pairs. A single equality gate marks the channels where
// b*c == 15, and a non-destructive measurement reads out every factor at
// once — no repeated runs, no collapse.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"tangled/internal/aob"
	"tangled/internal/core"
)

func main() {
	// An 8-way entangled machine: 256 entanglement channels, the size the
	// student Qat implementations supported.
	m := core.NewAoB(8)

	a := core.Mk(m, 4, 15)  // pint a = pint_mk(4, 15)   a = 15
	b := core.H(m, 4, 0x0F) // pint b = pint_h(4, 0x0f)  b = 0..15
	c := core.H(m, 4, 0xF0) // pint c = pint_h(4, 0xf0)  c = 0..15
	d := b.Mul(c)           // pint d = pint_mul(b, c)   d = b*c
	e := d.Eq(a)            // pint e = pint_eq(d, a)    e = (d == 15)
	ep := core.FromBits(m, []*aob.Vector{e})
	f := ep.Mul(b) // pint f = pint_mul(e, b)   zero the non-factors

	// pint_measure(f): the paper prints 0, 1, 3, 5, 15.
	fmt.Println("pint_measure(f) — every value in the superposition:")
	for _, meas := range f.MeasureAll() {
		fmt.Printf("  value %3d  probability %d/256\n", meas.Value, meas.Count)
	}

	// The Tangled/Qat shortcut from Section 4.2: each 1 channel of e
	// directly encodes a factorization (channel%16) * (channel/16).
	fmt.Println("\nfactorizations encoded in e's entanglement channels:")
	core.ChannelsWhere[*aob.Vector](m, e, func(ch uint64) bool {
		fmt.Printf("  channel %3d: %2d x %2d\n", ch, ch%16, ch/16)
		return true
	})
}
