; pbit.s — prepare, entangle and measure Qat pbits.
;
; The linter's Qat dataflow follows the coprocessor registers: every pbit
; read here was prepared first (had/one), so the program is lint-clean —
; drop the `one @1` line and qatlint reports a use-before-def on @1.

	had	@0, 2		; @0 = superposed pbit over 4 channels
	one	@1		; @1 = |1>
	cnot	@1, @0		; @1 ^= @0: entangle the pair
	lex	$1, 0		; measurement channel
	meas	$1, @1		; collapse @1 into $1
	lex	$0, 1		; print the measured value
	sys
	lex	$0, 0		; halt
	sys
