; countdown.s — a conditional loop: print 5, 4, 3, 2, 1.
;
; Exercises the branch instructions the linter's CFG has to model: the
; brt back-edge forms a loop block, and the fall-through path reaches the
; halt epilogue.

	lex	$1, 5		; counter (printed each iteration)
	lex	$2, -1		; decrement
loop:	lex	$0, 1		; print $1
	sys
	add	$1, $2
	brt	$1, loop	; loop while the counter is nonzero
	lex	$0, 0		; halt
	sys
