; putint.s — smallest useful Tangled program: compute 5 + 7 and print it.
;
;   go run ./cmd/tangled-asm examples/asm/putint.s | go run ./cmd/tangled-run
;
; Lint-clean: qatlint examples/asm/putint.s

	lex	$1, 5
	lex	$2, 7
	add	$1, $2		; $1 = 12
	lex	$0, 1		; sys service 1: print $1 as an integer
	sys
	lex	$0, 0		; sys service 0: halt
	sys
