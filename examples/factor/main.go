// factor drives the complete Tangled/Qat toolchain end to end, exactly as
// Section 4.2 of the paper does for Figure 10: the word-level factoring
// program is compiled to gate-level Qat assembly, assembled to a binary
// image, and executed on the cycle-accurate pipelined processor model.
//
// It runs both the paper's scaled-down problem (15, 4x4 operand bits on
// 8-way entanglement — the student configuration) and the original LCPC'20
// problem (221, 8x8 bits on the full 16-way hardware, which requires
// register reuse — the paper notes its faithful greedy allocator wastes
// registers).
//
// Run: go run ./examples/factor
package main

import (
	"fmt"
	"log"

	"tangled/internal/compile"
	"tangled/internal/pipeline"
	"tangled/internal/qasm"
)

func main() {
	fmt.Println("== Figure 10: factor 15 on the 8-way student configuration ==")
	cfg := pipeline.StudentConfig()
	rep, err := qasm.Factor(15, 4, 4, compile.Options{}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report(rep)

	fmt.Println("\n== The original problem: factor 221 on 16-way Qat ==")
	cfg16 := pipeline.DefaultConfig()
	rep221, err := qasm.Factor(221, 8, 8, compile.Options{Reuse: true}, cfg16)
	if err != nil {
		log.Fatal(err)
	}
	report(rep221)

	fmt.Println("\n== Section 5 ablation: the same program under design variants ==")
	variants := []struct {
		name string
		opts compile.Options
	}{
		{"paper-faithful (greedy, instructions)", compile.Options{}},
		{"register reuse", compile.Options{Reuse: true}},
		{"constant-register bank", compile.Options{ConstantRegs: true}},
		{"reversible gates only", compile.Options{Reversible: true}},
	}
	for _, v := range variants {
		r, err := qasm.Factor(15, 4, 4, v.opts, pipeline.StudentConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-40s %4d qat insts, %3d regs, %5d cycles\n",
			v.name, r.QatInsts, r.RegsUsed, r.Result.Pipe.Cycles)
	}
}

func report(rep *qasm.FactorReport) {
	fmt.Printf("  %d = %d x %d\n", rep.N, rep.Factors[0], rep.Factors[1])
	fmt.Printf("  generated Qat instructions: %d (paper's Figure 10: ~80 for n=15)\n", rep.QatInsts)
	fmt.Printf("  Qat registers used:         %d (paper: 81 for n=15)\n", rep.RegsUsed)
	s := rep.Result.Pipe
	fmt.Printf("  pipeline: %d cycles / %d instructions = CPI %.3f\n",
		s.Cycles, s.Insts, s.CPI())
	fmt.Printf("  stalls: load-use %d, fetch %d, flushes %d\n",
		s.LoadUseStalls, s.FetchStalls, s.FlushCycles)
}
