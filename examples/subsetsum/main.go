// subsetsum solves subset-sum the PBP way: each item's inclusion is a
// Hadamard pbit on its own entanglement channel set, a gated ripple-carry
// accumulator forms the superposed sum of all 2^n subsets at once, and the
// non-destructive measurement idiom (next-chaining on the equality
// indicator) enumerates every solution — each channel number IS the subset
// bitmask.
//
// The 16-item instance matches the real Qat hardware exactly: 16-way
// entanglement, 65,536-channel AoB registers. The 28-item instance runs on
// the tree-compressed rex backend — 268 million channels, far beyond any
// AoB register.
//
// Run: go run ./examples/subsetsum
package main

import (
	"fmt"
	"math/bits"

	"tangled/internal/core"
	"tangled/internal/rex"
)

// subsetSum builds the indicator pbit for "the chosen subset of weights
// sums to target" and returns it with the sum's bit width.
func subsetSum[V any](m core.Machine[V], weights []uint64, target uint64) V {
	var total uint64
	for _, w := range weights {
		total += w
	}
	width := bits.Len64(total)
	acc := core.Mk(m, width, 0)
	zero := core.Mk(m, width, 0)
	for i, w := range weights {
		sel := m.Had(i) // include item i?
		gated := zero.Mux(core.Mk(m, width, w), sel)
		acc = acc.Add(gated).Truncate(width)
	}
	return acc.Eq(core.Mk(m, width, target))
}

func report[V any](m core.Machine[V], ind V, weights []uint64, maxShow int) {
	count := m.Pop(ind)
	fmt.Printf("solutions: %d of %d subsets\n", count, m.Channels())
	shown := 0
	core.ChannelsWhere(m, ind, func(ch uint64) bool {
		var parts []uint64
		var sum uint64
		for i, w := range weights {
			if ch>>uint(i)&1 == 1 {
				parts = append(parts, w)
				sum += w
			}
		}
		fmt.Printf("  subset %#07x: %v (sum %d)\n", ch, parts, sum)
		shown++
		return shown < maxShow
	})
}

func main() {
	weights := []uint64{3, 34, 4, 12, 5, 2, 17, 29, 8, 21, 6, 11, 41, 9, 14, 7}
	const target = 100
	fmt.Printf("subset-sum over %d items, target %d — AoB backend (exact Qat hardware scale)\n",
		len(weights), target)
	m := core.NewAoB(16)
	ind := subsetSum(m, weights, target)
	report(m, ind, weights, 5)

	// Beyond hardware: 28 items on the compressed backend.
	big := append(append([]uint64{}, weights...),
		19, 23, 31, 37, 13, 16, 18, 22, 26, 28, 32, 36)
	fmt.Printf("\nsame problem at %d items — rex backend (2^%d channels)\n",
		len(big), len(big))
	mr := core.NewRex(rex.MustSpace(len(big), 12))
	indBig := subsetSum(mr, big, target)
	fmt.Printf("solutions: %d of %d subsets\n", mr.Pop(indBig), mr.Channels())
	first := mr.Next(indBig, 0)
	fmt.Printf("first solution above channel 0: %#x\n", first)
}
