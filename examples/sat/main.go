// sat solves a 3-SAT instance the quantum-inspired way: every variable is a
// Hadamard-initialized pbit on its own entanglement channel set, so a
// single gate-level evaluation of the formula tests all 2^n assignments at
// once, and the PBP model's non-destructive measurement enumerates every
// satisfying assignment — something a quantum computer fundamentally cannot
// do (each run collapses to a single sample).
//
// The small instance runs on the AoB backend (direct Qat hardware scale);
// the larger 24-variable instance uses the run-length-compressed RE backend
// from Section 1.2, far beyond the 16-way AoB hardware limit.
//
// Run: go run ./examples/sat
package main

import (
	"fmt"
	"log"

	"tangled/internal/core"
	"tangled/internal/re"
)

// Lit is a literal: 1-based variable index, negative for negation.
type Lit int

// Clause is a disjunction of three literals.
type Clause [3]Lit

// evalCNF builds the indicator pbit of a CNF formula over Hadamard
// variables: the result is 1 exactly in the channels whose assignment
// satisfies every clause.
func evalCNF[V any](m core.Machine[V], nVars int, clauses []Clause) V {
	vars := make([]V, nVars)
	for i := range vars {
		vars[i] = m.Had(i) // variable i true on channel-bit i
	}
	lit := func(l Lit) V {
		v := vars[abs(int(l))-1]
		if l < 0 {
			return m.Not(v)
		}
		return v
	}
	acc := m.One()
	for _, cl := range clauses {
		c := m.Or(m.Or(lit(cl[0]), lit(cl[1])), lit(cl[2]))
		acc = m.And(acc, c)
	}
	return acc
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func main() {
	// (x1 | x2 | !x3) & (!x1 | x3 | x4) & (!x2 | !x4 | x5) &
	// (x3 | !x5 | x6) & (!x6 | x1 | !x4)
	clauses := []Clause{
		{1, 2, -3},
		{-1, 3, 4},
		{-2, -4, 5},
		{3, -5, 6},
		{-6, 1, -4},
	}
	const nVars = 6

	fmt.Printf("3-SAT over %d variables, %d clauses — AoB backend (2^%d channels)\n",
		nVars, len(clauses), nVars)
	m := core.NewAoB(nVars)
	ind := evalCNF(m, nVars, clauses)

	sat := core.Any(m, ind)
	count := m.Pop(ind)
	fmt.Printf("satisfiable: %v — %d of %d assignments satisfy (POP reduction)\n",
		sat, count, m.Channels())
	fmt.Println("first few satisfying assignments (channel number = assignment):")
	shown := 0
	core.ChannelsWhere(m, ind, func(ch uint64) bool {
		fmt.Printf("  ")
		for v := 0; v < nVars; v++ {
			fmt.Printf("x%d=%d ", v+1, ch>>uint(v)&1)
		}
		fmt.Println()
		shown++
		return shown < 5
	})

	// The same formula lifted to a 24-variable instance on the compressed
	// backend: 16.7M channels, representable in a handful of runs.
	fmt.Println("\nsame clauses padded to 24 variables — RE backend (2^24 channels)")
	sp, err := re.NewSpace(24, 12)
	if err != nil {
		log.Fatal(err)
	}
	mr := core.NewRE(sp)
	big := evalCNF(mr, 24, clauses)
	fmt.Printf("satisfying assignments: %d of %d\n", mr.Pop(big), mr.Channels())
	fmt.Printf("compressed to %d runs (%.0fx compression vs explicit AoB)\n",
		big.NumRuns(), big.CompressionRatio())
	first := mr.Next(big, 0)
	fmt.Printf("first satisfying assignment above channel 0: %d\n", first)
}
