// nqueens solves the N-queens puzzle by entangled superposition: each
// row's queen column is a Hadamard-initialized pattern integer on its own
// channel sets, the non-attacking constraints are word-level gate
// operations evaluated across every placement simultaneously, and the
// non-destructive measurement enumerates all solutions in one pass — a
// quantum computer would surrender one random solution per run; PBP reads
// them all (Section 2.7's "huge advantage in any computation that may
// produce more than one result").
//
// 4x4 and 5x5 run on AoB scale; 6x6 (18 pbits) runs on the rex backend.
//
// Run: go run ./examples/nqueens
package main

import (
	"fmt"
	"math/bits"

	"tangled/internal/core"
	"tangled/internal/rex"
)

// queensIndicator builds the pbit that is 1 exactly on channels encoding a
// valid placement (one queen per row, none attacking).
func queensIndicator[V any](m core.Machine[V], n int) V {
	colBits := bits.Len(uint(n - 1))
	cols := make([]core.Pint[V], n)
	for row := range cols {
		mask := (uint64(1)<<uint(colBits) - 1) << (uint(colBits) * uint(row))
		cols[row] = core.H(m, colBits, mask)
	}
	ok := m.One()
	limit := core.Mk(m, colBits, uint64(n))
	for row := range cols {
		if n != 1<<uint(colBits) {
			ok = m.And(ok, cols[row].Lt(limit)) // board edge
		}
	}
	w := colBits + 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := core.Mk(m, w, uint64(j-i))
			ci := cols[i].Extend(w)
			cj := cols[j].Extend(w)
			ok = m.And(ok, ci.Ne(cj))                  // same column
			ok = m.And(ok, m.Not(ci.AddMod(d).Eq(cj))) // one diagonal
			ok = m.And(ok, m.Not(cj.AddMod(d).Eq(ci))) // other diagonal
		}
	}
	return ok
}

func board(ch uint64, n, colBits int) string {
	s := ""
	for row := 0; row < n; row++ {
		col := ch >> (uint(colBits) * uint(row)) & (uint64(1)<<uint(colBits) - 1)
		for c := 0; c < n; c++ {
			if uint64(c) == col {
				s += "Q"
			} else {
				s += "."
			}
		}
		s += "\n"
	}
	return s
}

func main() {
	// 4-queens on an AoB machine: 8 pbits, 256 channels.
	m4 := core.NewAoB(8)
	ind4 := queensIndicator(m4, 4)
	fmt.Printf("4-queens: %d solutions (every one read from a single superposition)\n",
		m4.Pop(ind4))
	core.ChannelsWhere(m4, ind4, func(ch uint64) bool {
		fmt.Println(board(ch, 4, 2))
		return true
	})

	// 6-queens on the tree-compressed backend: 18 pbits, 262,144 channels.
	m6 := core.NewRex(rex.MustSpace(18, 10))
	ind6 := queensIndicator(m6, 6)
	fmt.Printf("6-queens (rex backend, 2^18 channels): %d solutions\n", m6.Pop(ind6))
	first := m6.Next(ind6, 0)
	fmt.Printf("first solution at channel %d:\n%s", first, board(first, 6, 3))
}
