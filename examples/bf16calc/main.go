// bf16calc exercises the Tangled host ISA on its own — no Qat — with the
// bfloat16 arithmetic the paper includes "primarily to better serve the
// goals of that course". The assembly program approximates sqrt(x) for
// several integers using Newton's method built purely from the Table 1
// float instructions (addf, mulf, negf, recip, float, int), then prints
// each result through sys.
//
// Run: go run ./examples/bf16calc
package main

import (
	"fmt"
	"log"
	"strings"

	"tangled/internal/pipeline"
	"tangled/internal/qasm"
)

// newtonSqrt emits assembly computing y = sqrt($2 as float) with k Newton
// iterations: y' = y - (y*y - x) / (2y) = y*(1 - 0.5) + x/(2y)... expressed
// with the available ops as y' = 0.5*(y + x*recip(y)).
func newtonSqrt(k int) string {
	var b strings.Builder
	b.WriteString(`
	float $2          ; x = (bfloat16) n
	copy $3,$2        ; y0 = x (crude seed)
	lex $4,1
	float $4          ; 1.0
	lex $5,2
	float $5
	recip $5          ; 0.5
`)
	for i := 0; i < k; i++ {
		b.WriteString(`
	copy $6,$3
	recip $6          ; 1/y
	mulf $6,$2        ; x/y
	addf $6,$3        ; y + x/y
	mulf $6,$5        ; 0.5*(y + x/y)
	copy $3,$6
`)
	}
	return b.String()
}

func main() {
	var prog strings.Builder
	for _, n := range []int{4, 9, 16, 25, 100, 144} {
		// loadi, not lex: lex sign-extends its 8-bit immediate, so values
		// above 127 (like 144) would arrive negative.
		fmt.Fprintf(&prog, "loadi $2,%d\n", n)
		prog.WriteString(newtonSqrt(8))
		// Print the rounded integer sqrt and the bfloat16 value.
		prog.WriteString(`
	copy $1,$3
	lex $0,3
	sys               ; print float
	copy $1,$3
	int $1
	lex $0,1
	sys               ; print int
`)
	}
	prog.WriteString("lex $0,0\nsys\n")

	res, err := qasm.RunPipelined(prog.String(), pipeline.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	fmt.Printf("\npipeline: %d instructions in %d cycles (CPI %.3f)\n",
		res.Pipe.Insts, res.Pipe.Cycles, res.Pipe.CPI())
	fmt.Printf("stalls from dependent float chains: raw=%d load-use=%d\n",
		res.Pipe.RawStalls, res.Pipe.LoadUseStalls)
}
