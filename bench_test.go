// Package tangled_test is the top-level benchmark harness: one benchmark
// per table and figure of the paper's presentation, as indexed in
// DESIGN.md. Each bench exercises the code path that reproduces that
// artifact and reports the figure-of-merit the paper discusses (CPI for
// the pipeline feasibility claims, gate-op counts for Figure 10,
// compression for Section 1.2, and so on).
//
// Run: go test -bench=. -benchmem .
package tangled_test

import (
	"fmt"
	"strings"
	"testing"

	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/compile"
	"tangled/internal/core"
	"tangled/internal/cpu"
	"tangled/internal/energy"
	"tangled/internal/gates"
	"tangled/internal/pipeline"
	"tangled/internal/qasm"
	"tangled/internal/re"
	"tangled/internal/rex"
)

// BenchmarkTable1TangledISA measures functional-simulator throughput over a
// loop touching every Table 1 instruction class (int ALU, float ALU,
// memory, control).
func BenchmarkTable1TangledISA(b *testing.B) {
	src := `
	loadi $1,200
	lex $2,-1
	lex $4,3
	float $4
	loop:
	copy $3,$1
	mul $3,$3
	shift $3,$2
	slt $5,$3
	xor $5,$3
	addf $4,$4
	recip $4
	loadi $6,0x4100
	store $3,$6
	load $7,$6
	add $1,$2
	brt $1,loop
	lex $0,0
	sys
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	m := cpu.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(qasm.MaxSteps); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Stats.Insts), "insts/run")
}

// BenchmarkTable2Macros measures assembly including every Table 2
// pseudo-instruction expansion.
func BenchmarkTable2Macros(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "br a%d\na%d: jump b%d\nb%d: jumpf $1,c%d\nc%d: jumpt $2,d%d\nd%d: loadi $3,0x1234\n",
			i, i, i, i, i, i, i, i)
	}
	src := sb.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3QatISA measures coprocessor instruction throughput at the
// full 16-way (65,536-bit register) width.
func BenchmarkTable3QatISA(b *testing.B) {
	src := `
	had @1,3
	had @2,9
	loop:
	and @3,@1,@2
	or @4,@3,@1
	xor @5,@4,@2
	cnot @5,@1
	ccnot @4,@3,@5
	swap @3,@4
	cswap @1,@2,@5
	lex $1,0
	next $1,@5
	br loop
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	m := cpu.New(16)
	if err := m.Load(prog); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1AoBEncoding measures construction and word-level read-out of
// the Figure 1 two-pbit entangled encoding at full hardware width.
func BenchmarkFig1AoBEncoding(b *testing.B) {
	m := core.NewAoB(16)
	p := core.H(m, 2, 0x3)
	for i := 0; i < b.N; i++ {
		_ = p.ValueAt(uint64(i) & 65535)
	}
}

// BenchmarkFig6FunctionalMachine is the single-cycle (functional)
// organization of Figure 6 running a mixed Tangled+Qat workload.
func BenchmarkFig6FunctionalMachine(b *testing.B) {
	res, err := compile.FactorProgram(15, 8, 4, 4, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(res.Asm)
	if err != nil {
		b.Fatal(err)
	}
	m := cpu.New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(qasm.MaxSteps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Had compares the had instruction (pattern generation) with
// the Section 5 constant-register alternative (a register copy).
func BenchmarkFig7Had(b *testing.B) {
	b.Run("instruction", func(b *testing.B) {
		v := aob.New(16)
		for i := 0; i < b.N; i++ {
			v.Had(i % 16)
		}
	})
	b.Run("const-copy", func(b *testing.B) {
		bank := make([]*aob.Vector, 16)
		for k := range bank {
			bank[k] = aob.HadVector(16, k)
		}
		v := aob.New(16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.CopyFrom(bank[i%16])
		}
	})
}

// BenchmarkFig8Next compares the three next implementations: the
// word-scanning architectural model, the Figure 8 hardware decomposition,
// and a naive per-bit scan — the software analog of the gate-delay
// argument.
func BenchmarkFig8Next(b *testing.B) {
	v := aob.HadVector(16, 15)
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = v.Next(uint64(i) & 32767)
		}
	})
	b.Run("hw-model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = v.NextHW(uint64(i) & 32767)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := uint64(i) & 32767
			var r uint64
			for ch := s + 1; ch < 65536; ch++ {
				if v.Get(ch) {
					r = ch
					break
				}
			}
			_ = r
		}
	})
	// The gate-level figure of merit: levels of logic, wide vs narrow OR.
	b.Run("gate-model", func(b *testing.B) {
		var wide, narrow int
		for i := 0; i < b.N; i++ {
			wide = gates.NextCost(16, gates.WideOR).Levels
			narrow = gates.NextCost(16, 2).Levels
		}
		b.ReportMetric(float64(wide), "levels-wideOR")
		b.ReportMetric(float64(narrow), "levels-2inOR")
	})
}

// BenchmarkFig9WordLevelFactor is the Figure 9 program on the PBP software
// model, both backends.
func BenchmarkFig9WordLevelFactor(b *testing.B) {
	b.Run("aob", func(b *testing.B) {
		m := core.NewAoB(8)
		for i := 0; i < b.N; i++ {
			e := core.H(m, 4, 0x0F).Mul(core.H(m, 4, 0xF0)).Eq(core.Mk(m, 8, 15))
			if !core.Any(m, e) {
				b.Fatal("lost the factors")
			}
		}
	})
	b.Run("re", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := core.NewRE(re.MustSpace(8, 4))
			e := core.H(m, 4, 0x0F).Mul(core.H(m, 4, 0xF0)).Eq(core.Mk(m, 8, 15))
			if !core.Any(m, e) {
				b.Fatal("lost the factors")
			}
		}
	})
}

// BenchmarkFig10PipelineFactor runs the generated Figure 10 program on the
// cycle-accurate pipeline; the CPI metric reproduces the paper's
// sustained-throughput claim on real generated code.
func BenchmarkFig10PipelineFactor(b *testing.B) {
	res, err := compile.FactorProgram(15, 8, 4, 4, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(res.Asm)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.StudentConfig()
	p, err := pipeline.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := p.Run(qasm.MaxSteps); err != nil {
			b.Fatal(err)
		}
		if p.Machine().Regs[4] != 5 || p.Machine().Regs[1] != 3 {
			b.Fatal("wrong factors")
		}
	}
	b.ReportMetric(p.Stats.CPI(), "CPI")
	b.ReportMetric(float64(res.QatInsts), "qat-insts")
	b.ReportMetric(float64(res.RegsUsed), "qat-regs")
}

// BenchmarkS31PipelineOrganizations sweeps the Section 3.1 design space:
// 4-stage vs 5-stage, with and without the two-word fetch penalty, on a
// hazard-rich workload.
func BenchmarkS31PipelineOrganizations(b *testing.B) {
	src := `
	lex $1,100
	lex $3,-1
	had @1,3
	loop:
	and @2,@1,@1
	xor @3,@2,@1
	copy $2,$1
	next $2,@3
	add $1,$3
	brt $1,loop
	lex $0,0
	sys
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		c    pipeline.Config
	}{
		{"5stage", pipeline.Config{Stages: 5, Ways: 8, Forwarding: true, MulLatency: 1, QatNextLatency: 1}},
		{"4stage", pipeline.Config{Stages: 4, Ways: 8, Forwarding: true, MulLatency: 1, QatNextLatency: 1}},
		{"5stage-noFwd", pipeline.Config{Stages: 5, Ways: 8, MulLatency: 1, QatNextLatency: 1}},
		{"5stage-narrowFetch", pipeline.Config{Stages: 5, Ways: 8, Forwarding: true, TwoWordFetchPenalty: true, MulLatency: 1, QatNextLatency: 1}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p, err := pipeline.New(cfg.c)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if err := p.Load(prog); err != nil {
					b.Fatal(err)
				}
				if err := p.Run(qasm.MaxSteps); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.Stats.CPI(), "CPI")
		})
	}
}

// BenchmarkS12RECompression compares a 16-way logic op on the compressed RE
// form vs the explicit 65,536-bit AoB form, plus a beyond-hardware 32-way
// case only RE can represent.
func BenchmarkS12RECompression(b *testing.B) {
	b.Run("aob-16way", func(b *testing.B) {
		x, y := aob.HadVector(16, 15), aob.HadVector(16, 3)
		d := aob.New(16)
		for i := 0; i < b.N; i++ {
			d.And(x, y)
		}
	})
	b.Run("re-16way", func(b *testing.B) {
		s := re.MustSpace(16, 12)
		x, y := s.Had(15), s.Had(3)
		for i := 0; i < b.N; i++ {
			_ = x.And(y)
		}
	})
	b.Run("re-32way", func(b *testing.B) {
		s := re.MustSpace(32, 12)
		x, y := s.Had(31), s.Had(3)
		for i := 0; i < b.N; i++ {
			_ = x.And(y)
		}
		b.ReportMetric(x.CompressionRatio(), "compression")
	})
}

// BenchmarkS5Ablations generates the factoring program under each Section 5
// design variant and reports the instruction-count metric.
func BenchmarkS5Ablations(b *testing.B) {
	for _, v := range []struct {
		name string
		opts compile.Options
	}{
		{"faithful", compile.Options{}},
		{"reuse", compile.Options{Reuse: true}},
		{"const-regs", compile.Options{ConstantRegs: true}},
		{"reversible", compile.Options{Reversible: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			var insts, regs int
			for i := 0; i < b.N; i++ {
				res, err := compile.FactorProgram(15, 8, 4, 4, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				insts, regs = res.QatInsts, res.RegsUsed
			}
			b.ReportMetric(float64(insts), "qat-insts")
			b.ReportMetric(float64(regs), "qat-regs")
		})
	}
}

// BenchmarkX221FullProblem is the complete 221 toolchain on 16-way Qat.
func BenchmarkX221FullProblem(b *testing.B) {
	res, err := compile.FactorProgram(221, 16, 8, 8, compile.Options{Reuse: true})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(res.Asm)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := p.Run(qasm.MaxSteps); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.Stats.CPI(), "CPI")
	b.ReportMetric(float64(p.Stats.Cycles), "cycles")
}

// BenchmarkSMCMultiCycleVsPipeline measures the course-project progression:
// the same workload timed on the multi-cycle model and the pipeline.
func BenchmarkSMCMultiCycleVsPipeline(b *testing.B) {
	src := strings.Repeat("add $1,$2\nxor $3,$4\nlex $5,9\n", 300) + "lex $0,0\nsys\n"
	prog, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	m := cpu.New(4)
	p, err := pipeline.New(pipeline.Config{Stages: 5, Ways: 4, Forwarding: true, MulLatency: 1, QatNextLatency: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(qasm.MaxSteps); err != nil {
			b.Fatal(err)
		}
		if err := p.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := p.Run(qasm.MaxSteps); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Stats.MultiCycles)/float64(p.Stats.Cycles), "speedup")
}

// BenchmarkSRexNestedRepresentation: the tree-compressed backend on the
// flat representation's worst case and at beyond-hardware scale.
func BenchmarkSRexNestedRepresentation(b *testing.B) {
	b.Run("flat-worst-case-16way", func(b *testing.B) {
		s := rex.MustSpace(16, 12)
		x, y := s.Had(12), s.Had(13)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = x.And(y)
		}
	})
	b.Run("60way-cross-scale", func(b *testing.B) {
		s := rex.MustSpace(60, 12)
		x, y := s.Had(59), s.Had(13)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = x.And(y)
		}
		b.ReportMetric(float64(x.And(y).NumNodes()), "nodes")
	})
}

// BenchmarkSEEnergyMeter measures the metered-execution overhead and
// reports the erased fraction of the factoring workload.
func BenchmarkSEEnergyMeter(b *testing.B) {
	res, err := compile.FactorProgram(15, 8, 4, 4, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(res.Asm)
	if err != nil {
		b.Fatal(err)
	}
	m := cpu.New(8)
	meter := energy.NewMeter()
	m.Qat.Meter = meter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meter.Reset()
		if err := m.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(qasm.MaxSteps); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(meter.ErasedBits)/float64(meter.SwitchedBits), "erased-frac")
}
