// Integration tests: complete assembly programs exercising the Tangled/Qat
// toolchain end to end — assembler, functional machine, and the pipelined
// machine, which must agree instruction-for-instruction with the
// functional one on every program here.
package tangled_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/pipeline"
)

// runBoth executes src on the functional machine and on every pipeline
// organization, checks they agree on architectural state, and returns the
// functional machine plus its output.
func runBoth(t *testing.T, src string, ways int) (*cpu.Machine, string) {
	t.Helper()
	var out bytes.Buffer
	ref, err := cpu.RunProgram(src, ways, 10_000_000, &out)
	if err != nil {
		t.Fatalf("functional: %v", err)
	}
	for _, stages := range []int{4, 5} {
		cfg := pipeline.Config{Stages: stages, Ways: ways, Forwarding: true,
			MulLatency: 1, QatNextLatency: 1}
		var pout bytes.Buffer
		p, err := pipeline.RunProgram(src, cfg, 100_000_000, &pout)
		if err != nil {
			t.Fatalf("%d-stage: %v", stages, err)
		}
		if p.Machine().Regs != ref.Regs {
			t.Fatalf("%d-stage register mismatch:\n%v\n%v", stages, p.Machine().Regs, ref.Regs)
		}
		if pout.String() != out.String() {
			t.Fatalf("%d-stage output mismatch: %q vs %q", stages, pout.String(), out.String())
		}
		if p.Stats.Insts != ref.Stats.Insts {
			t.Fatalf("%d-stage retired %d vs functional %d", stages, p.Stats.Insts, ref.Stats.Insts)
		}
	}
	return ref, out.String()
}

// TestIntegrationFibonacci computes fib(20) iteratively.
func TestIntegrationFibonacci(t *testing.T) {
	src := `
	lex $1,0          ; a
	lex $2,1          ; b
	lex $3,20         ; n
	lex $4,-1
	loop:
	copy $5,$2
	add $2,$1         ; b = a+b
	copy $1,$5        ; a = old b
	add $3,$4
	brt $3,loop
	copy $1,$1
	lex $0,1
	sys               ; print fib(20)
	lex $0,0
	sys
	`
	m, out := runBoth(t, src, 4)
	if int16(m.Regs[1]) != 6765 {
		t.Errorf("fib(20) = %d", int16(m.Regs[1]))
	}
	if out != "6765\n" {
		t.Errorf("output %q", out)
	}
}

// TestIntegrationFactorialRecursive uses the calling convention the
// register set implies: $sp stack, $ra return address, $rv return value.
func TestIntegrationFactorialRecursive(t *testing.T) {
	src := `
	loadi $sp,0x7F00  ; stack top
	lex $1,7          ; n = 7
	loadi $ra,back
	jump fact
	back:
	copy $1,$rv
	lex $0,1
	sys               ; print 5040
	lex $0,0
	sys

	; fact(n in $1) -> $rv, clobbers $2,$3
	fact:
	brt $1,recurse
	lex $rv,1         ; fact(0) = 1
	jumpr $ra
	recurse:
	lex $2,-1
	store $1,$sp      ; push n
	add $sp,$2
	store $ra,$sp     ; push ra
	add $sp,$2
	add $1,$2         ; n-1
	loadi $ra,ret
	jump fact
	ret:
	lex $2,1
	add $sp,$2
	load $ra,$sp      ; pop ra
	add $sp,$2
	load $1,$sp       ; pop n
	mul $rv,$1        ; careful: rv = fact(n-1); want rv *= n
	jumpr $ra
	`
	_, out := runBoth(t, src, 4)
	if out != "5040\n" {
		t.Errorf("output %q", out)
	}
}

// TestIntegrationMemset fills and verifies a memory region.
func TestIntegrationMemset(t *testing.T) {
	src := `
	loadi $1,0x4000   ; base
	lex $2,50         ; count
	loadi $3,0xBEEF
	lex $4,-1
	lex $5,1
	fill:
	store $3,$1
	add $1,$5
	add $2,$4
	brt $2,fill
	` + "\nlex $0,0\nsys\n"
	m, _ := runBoth(t, src, 4)
	for a := 0x4000; a < 0x4000+50; a++ {
		if m.Mem[a] != 0xBEEF {
			t.Fatalf("mem[%#x] = %#x", a, m.Mem[a])
		}
	}
	if m.Mem[0x4000+50] != 0 {
		t.Fatal("overran the region")
	}
}

// TestIntegrationHelloString walks a .word string and prints it char by
// char via sys.
func TestIntegrationHelloString(t *testing.T) {
	var data strings.Builder
	for _, c := range "hello qat\n" {
		fmt.Fprintf(&data, ".word %d\n", c)
	}
	src := `
	jump start
	msg:
	` + data.String() + `
	.word 0
	start:
	loadi $2,msg
	lex $3,1
	lex $0,2
	loop:
	load $1,$2
	brf $1,done
	sys
	add $2,$3
	br loop
	done:
	lex $0,0
	sys
	`
	_, out := runBoth(t, src, 4)
	if out != "hello qat\n" {
		t.Errorf("output %q", out)
	}
}

// TestIntegrationQatSearch uses superposition to find which 4-bit x
// satisfies x*3 == 12 (i.e. x=4), entirely in assembly: build x over
// channel sets 0-3, compute 3x with shift-add gates, compare to 12, and
// read the channel number.
func TestIntegrationQatSearch(t *testing.T) {
	src := `
	; x bits: H0..H3 in @1..@4
	had @1,0
	had @2,1
	had @3,2
	had @4,3
	; 3x = x + 2x: 2x bits are (0,x0,x1,x2,x3) -> 5-bit sum needed; compare
	; against constant 12 = 01100b on 5 bits of result (x<=15 -> 3x<=45,
	; need 6 bits; compare only to 12 so bits 4,5 must be 0).
	; s0 = x0
	; s1 = x1 XOR x0 ; c1 = x1 AND x0
	xor @10,@2,@1
	and @20,@2,@1
	; s2 = x2 XOR x1 XOR c1 ; c2 = majority(x2,x1,c1)
	xor @11,@3,@2
	xor @12,@11,@20
	and @21,@3,@2
	and @22,@11,@20
	or  @23,@21,@22
	; s3 = x3 XOR x2 XOR c2 ; c3 = majority
	xor @13,@4,@3
	xor @14,@13,@23
	and @24,@4,@3
	and @25,@13,@23
	or  @26,@24,@25
	; s4 = x3 XOR c3 ; c4 = x3 AND c3
	xor @15,@4,@26
	and @27,@4,@26
	; want 3x == 12 = b01100: s0=0 s1=0 s2=1 s3=1 s4=0 c4=0
	not @1            ; reuse @1 as NOT s0... wait @1 is x0 = s0
	; indicator: NOT s0 AND NOT s1 AND s2 AND s3 AND NOT s4 AND NOT c4
	not @10
	not @15
	not @27
	and @30,@1,@10
	and @31,@30,@12
	and @32,@31,@14
	and @33,@32,@15
	and @34,@33,@27
	lex $1,0
	next $1,@34       ; the only satisfying channel
	lex $0,1
	sys               ; print it (x=4 -> channel 4)
	lex $0,0
	sys
	`
	m, out := runBoth(t, src, 8)
	if out != "4\n" {
		t.Errorf("search found %q, want 4", out)
	}
	_ = m
}

// TestIntegrationBf16Polynomial evaluates 2x^2 - 3x + 1 at x=4 in bfloat16:
// 32 - 12 + 1 = 21.
func TestIntegrationBf16Polynomial(t *testing.T) {
	src := `
	lex $1,4
	float $1          ; x
	copy $2,$1
	mulf $2,$1        ; x^2
	lex $3,2
	float $3
	mulf $2,$3        ; 2x^2
	lex $4,3
	float $4
	mulf $4,$1        ; 3x
	negf $4
	addf $2,$4        ; 2x^2 - 3x
	lex $5,1
	float $5
	addf $2,$5        ; +1
	copy $1,$2
	int $1
	lex $0,1
	sys
	lex $0,0
	sys
	`
	_, out := runBoth(t, src, 4)
	if out != "21\n" {
		t.Errorf("polynomial = %q, want 21", out)
	}
}

// TestIntegrationHexImageRoundTrip assembles, serializes to the hex image
// format, reloads, and re-runs with identical results.
func TestIntegrationHexImageRoundTrip(t *testing.T) {
	src := "lex $1,21\nadd $1,$1\nlex $0,1\nsys\nlex $0,0\nsys\n"
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := asm.WriteHex(&img, prog.Words); err != nil {
		t.Fatal(err)
	}
	words, err := asm.ReadHex(&img)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(4)
	var out bytes.Buffer
	m.Out = &out
	if err := m.Load(&asm.Program{Words: words}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if out.String() != "42\n" {
		t.Errorf("round-tripped image printed %q", out.String())
	}
}

// TestIntegrationMultiCycleVsPipelineSpeedup quantifies the course-project
// progression: the pipelined machine beats the multi-cycle one by roughly
// the average state count per instruction.
func TestIntegrationMultiCycleVsPipelineSpeedup(t *testing.T) {
	src := strings.Repeat("add $1,$2\nxor $3,$4\nlex $5,9\n", 500) + "lex $0,0\nsys\n"
	ref, err := cpu.RunProgram(src, 4, 10_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{Stages: 5, Ways: 4, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	p, err := pipeline.RunProgram(src, cfg, 10_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(ref.Stats.MultiCycles) / float64(p.Stats.Cycles)
	// ALU instructions take 4 multi-cycle states; pipelined CPI ~1.
	if speedup < 3.5 || speedup > 4.5 {
		t.Errorf("pipeline speedup = %.2f, want ~4", speedup)
	}
	t.Logf("multi-cycle %d cycles vs pipelined %d cycles: speedup %.2fx",
		ref.Stats.MultiCycles, p.Stats.Cycles, speedup)
}

// TestIntegrationBubbleSort sorts eight words in memory in place.
func TestIntegrationBubbleSort(t *testing.T) {
	src := `
	.equ BASE 0x4000
	.equ N 8
	jump start
	data:
	.word 42
	.word 7
	.word -3
	.word 100
	.word 0
	.word -100
	.word 13
	.word 13
	start:
	; copy data to BASE
	loadi $1,data
	loadi $2,BASE
	lex $3,N
	lex $4,-1
	lex $5,1
	copyloop:
	load $6,$1
	store $6,$2
	add $1,$5
	add $2,$5
	add $3,$4
	brt $3,copyloop
	; bubble sort BASE..BASE+N-1 (signed)
	lex $7,N          ; outer counter
	outer:
	loadi $2,BASE
	lex $3,N
	add $3,$4         ; N-1 comparisons
	inner:
	load $6,$2        ; a = mem[p]
	copy $8,$2
	add $8,$5
	load $9,$8        ; b = mem[p+1]
	copy $10,$9
	slt $10,$6        ; b < a ?
	brf $10,noswap
	store $9,$2       ; swap
	store $6,$8
	noswap:
	add $2,$5
	add $3,$4
	brt $3,inner
	add $7,$4
	brt $7,outer
	lex $0,0
	sys
	`
	m, _ := runBoth(t, src, 4)
	want := []int16{-100, -3, 0, 7, 13, 13, 42, 100}
	for i, w := range want {
		if got := int16(m.Mem[0x4000+i]); got != w {
			t.Errorf("sorted[%d] = %d, want %d", i, got, w)
		}
	}
}

// TestIntegrationGCD computes gcd(462, 1071) = 21 with subtraction.
func TestIntegrationGCD(t *testing.T) {
	src := `
	loadi $1,462
	loadi $2,1071
	loop:
	copy $3,$1
	xor $3,$2
	brf $3,done       ; a == b
	copy $3,$1
	slt $3,$2         ; a < b ?
	brt $3,bless
	; a > b: a -= b
	copy $3,$2
	neg $3
	add $1,$3
	br loop
	bless:
	copy $3,$1
	neg $3
	add $2,$3         ; b -= a
	br loop
	done:
	copy $1,$1
	lex $0,1
	sys
	lex $0,0
	sys
	`
	m, out := runBoth(t, src, 4)
	if int16(m.Regs[1]) != 21 || out != "21\n" {
		t.Errorf("gcd = %d, out %q", int16(m.Regs[1]), out)
	}
}

// TestIntegrationUserMacroProgram drives the AIK-style macros through a
// full pipelined run.
func TestIntegrationUserMacroProgram(t *testing.T) {
	src := `
	.macro printint r
	copy $1,\r
	lex $0,1
	sys
	.endm
	.macro sumto r n
	lex \r,0
	lex $at,\n
	lex $9,-1
	loop$:
	add \r,$at
	add $at,$9
	brt $at,loop$
	.endm
	sumto $2,10
	printint $2
	lex $0,0
	sys
	`
	_, out := runBoth(t, src, 4)
	if out != "55\n" {
		t.Errorf("sum 1..10 printed %q", out)
	}
}

// TestIntegrationQatMacroPipeline runs the Section 5 reversible macros on
// the pipelined machine against native instructions.
func TestIntegrationQatMacroPipeline(t *testing.T) {
	prologue := "had @1,0\nhad @2,1\nhad @3,2\n"
	epilogue := "lex $1,0\npop $1,@1\nlex $2,0\npop $2,@2\nlex $0,0\nsys\n"
	native := prologue + "cswap @1,@2,@3\nccnot @2,@1,@3\n" + epilogue
	macro := prologue + "mcswap @1,@2,@3\nmccnot @2,@1,@3\n" + epilogue
	mn, _ := runBoth(t, native, 8)
	mm, _ := runBoth(t, macro, 8)
	if mn.Regs[1] != mm.Regs[1] || mn.Regs[2] != mm.Regs[2] {
		t.Error("macro and native forms disagree on the pipeline")
	}
}
