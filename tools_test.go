// Command-line tool tests: build each cmd/ binary and drive it the way a
// user would, checking the documented contracts (exit codes, outputs,
// cross-tool composition).
package tangled_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"tangled/internal/farm/farmtest"
	"tangled/internal/obs"
	"tangled/internal/server"
)

// buildTool compiles one command into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, stdin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.String(), errb.String(), err
}

func TestToolchainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	asmBin := buildTool(t, dir, "tangled-asm")
	runBin := buildTool(t, dir, "tangled-run")
	disBin := buildTool(t, dir, "tangled-dis")
	recodeBin := buildTool(t, dir, "tangled-recode")

	src := filepath.Join(dir, "prog.asm")
	if err := os.WriteFile(src, []byte(`
	had @123,4
	lex $8,42
	next $8,@123
	copy $1,$8
	lex $0,1
	sys
	lex $0,0
	sys
	`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Assemble to a hex image.
	hex := filepath.Join(dir, "prog.hex")
	if _, stderr, err := runTool(t, asmBin, "", "-o", hex, src); err != nil {
		t.Fatalf("tangled-asm: %v\n%s", err, stderr)
	}

	// Run the source directly (functional).
	out, _, err := runTool(t, runBin, "", src)
	if err != nil || out != "48\n" {
		t.Fatalf("tangled-run source: %q %v", out, err)
	}
	// Run the hex image on the pipeline with stats.
	out, stderr, err := runTool(t, runBin, "", "-pipeline", "-stats", hex)
	if err != nil || out != "48\n" {
		t.Fatalf("tangled-run pipeline: %q %v", out, err)
	}
	if !strings.Contains(stderr, "CPI=") {
		t.Errorf("missing stats: %q", stderr)
	}

	// Disassemble and check the worked example survives.
	out, _, err = runTool(t, disBin, "", hex)
	if err != nil || !strings.Contains(out, "had @123,4") || !strings.Contains(out, "next $8,@123") {
		t.Fatalf("tangled-dis: %q %v", out, err)
	}

	// Transcode to the student encoding and run under -enc student.
	stHex := filepath.Join(dir, "prog-student.hex")
	out, _, err = runTool(t, recodeBin, "", hex)
	if err != nil {
		t.Fatalf("tangled-recode: %v", err)
	}
	if err := os.WriteFile(stHex, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err = runTool(t, runBin, "", "-enc", "student", stHex)
	if err != nil || out != "48\n" {
		t.Fatalf("student-encoded run: %q %v", out, err)
	}
	// The student image must NOT run under the primary decoder.
	if _, _, err = runTool(t, runBin, "", stHex); err == nil {
		t.Fatal("cross-encoding image ran without error")
	}
}

func TestQatFactorTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "qatfactor")
	out, _, err := runTool(t, bin, "", "15")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "15 = 5 x 3") {
		t.Errorf("qatfactor 15: %q", out)
	}
	out, _, err = runTool(t, bin, "", "-reuse", "221")
	if err != nil || !strings.Contains(out, "221 = 17 x 13") {
		t.Errorf("qatfactor 221: %q %v", out, err)
	}
	// -asm emits assembly that reassembles.
	out, _, err = runTool(t, bin, "", "-asm", "15")
	if err != nil || !strings.Contains(out, "had @0,0") {
		t.Errorf("qatfactor -asm: %v", err)
	}
	// A prime fails with a diagnostic.
	if _, _, err = runTool(t, bin, "", "13"); err == nil {
		t.Error("factoring a prime succeeded")
	}
}

func TestQatSubsetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "qatsubset")
	out, _, err := runTool(t, bin, "", "10", "2", "3", "5", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "solutions: 2 of 16") {
		t.Errorf("qatsubset: %q", out)
	}
	if !strings.Contains(out, "(sum 10)") {
		t.Errorf("first solution line missing: %q", out)
	}
}

// promSample matches one Prometheus text-format sample line:
// name{optional labels} value.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// checkPromFile asserts the file is parseable Prometheus text exposition
// format and returns its contents.
func checkPromFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("unparseable Prometheus line: %q", line)
		}
	}
	return string(data)
}

// checkTraceFile asserts the file is a valid versioned JSONL cycle trace
// and returns its events.
func checkTraceFile(t *testing.T, path string) []obs.TraceEvent {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("trace %s: %v", path, err)
	}
	if len(events) == 0 {
		t.Fatalf("trace %s has no events", path)
	}
	return events
}

func TestObservabilityFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	farmBin := buildTool(t, dir, "qatfarm")
	runBin := buildTool(t, dir, "tangled-run")

	// qatfarm -metrics/-trace: factor three semiprimes and check both exports.
	metrics := filepath.Join(dir, "farm.prom")
	trace := filepath.Join(dir, "farm.jsonl")
	out, stderr, err := runTool(t, farmBin, "", "-metrics", metrics, "-trace", trace, "15", "21", "35")
	if err != nil {
		t.Fatalf("qatfarm: %v\n%s", err, stderr)
	}
	if !strings.Contains(out, "15 = 5 x 3") {
		t.Errorf("qatfarm output: %q", out)
	}
	text := checkPromFile(t, metrics)
	for _, frag := range []string{
		"farm_jobs_done_total 3",
		"farm_job_errors_total 0",
		"# TYPE cpu_op_retired_total counter",
		"# TYPE pipeline_cycles_total counter",
		"# TYPE farm_job_seconds histogram",
		`farm_job_seconds_bucket{le="+Inf"} 3`,
		"qat_aob_word_ops_total",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("qatfarm metrics missing %q", frag)
		}
	}
	for _, ev := range checkTraceFile(t, trace) {
		if len(ev.Stages) == 0 && ev.Event == "" {
			t.Errorf("pipeline trace event with neither stages nor event: %+v", ev)
			break
		}
	}

	// tangled-run, functional and pipelined, same flags.
	src := filepath.Join(dir, "prog.asm")
	if err := os.WriteFile(src, []byte(`
	had @3,4
	lex $8,42
	next $8,@3
	copy $1,$8
	lex $0,1
	sys
	lex $0,0
	sys
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"functional", "pipeline"} {
		metrics := filepath.Join(dir, mode+".prom")
		trace := filepath.Join(dir, mode+".jsonl")
		args := []string{"-metrics", metrics, "-trace", trace}
		if mode == "pipeline" {
			args = append(args, "-pipeline")
		}
		out, stderr, err := runTool(t, runBin, "", append(args, src)...)
		if err != nil || out != "48\n" {
			t.Fatalf("tangled-run %s: %q %v\n%s", mode, out, err, stderr)
		}
		text := checkPromFile(t, metrics)
		for _, frag := range []string{
			"# TYPE cpu_op_retired_total counter",
			`cpu_op_retired_total{op="sys"} 2`,
			`qat_op_executed_total{op="had"} 1`,
			"qat_energy_switched_bits",
		} {
			if !strings.Contains(text, frag) {
				t.Errorf("tangled-run %s metrics missing %q", mode, frag)
			}
		}
		events := checkTraceFile(t, trace)
		if mode == "functional" {
			// One retire event per executed instruction, in program order.
			if events[0].Event != "retire" || events[0].Inst == "" {
				t.Errorf("functional trace head: %+v", events[0])
			}
			if len(events) != 8 {
				t.Errorf("functional trace: %d events, want 8", len(events))
			}
		}
	}
}

func TestExperimentsToolRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "experiments")
	out, _, err := runTool(t, bin, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"pint_measure(f) prints: [0 1 3 5 15]",
		"$8 = 48 (paper: 48)",
		"factors measured:           5 and 3",
		"221 = 17 x 13",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("experiments output missing %q", frag)
		}
	}
}

// TestQatServerClientEndToEnd drives the serving pair the way an operator
// would: start qatserver on an ephemeral port (127.0.0.1:0 + -port-file, so
// parallel test runs never collide), run a program and a load burst through
// qatclient, then SIGTERM the server and check the graceful drain flushed
// its observability artifacts.
func TestQatServerClientEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	serverBin := buildTool(t, dir, "qatserver")
	clientBin := buildTool(t, dir, "qatclient")

	portFile := filepath.Join(dir, "port.txt")
	metricsFile := filepath.Join(dir, "metrics.prom")
	traceFile := filepath.Join(dir, "trace.jsonl")
	srv := exec.Command(serverBin,
		"-addr", "127.0.0.1:0", "-port-file", portFile,
		"-metrics", metricsFile, "-trace", traceFile)
	var srvLog strings.Builder
	srv.Stderr = &srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The port file appearing is the "listening" signal.
	var addr string
	for i := 0; i < 100; i++ {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote its port file\n%s", srvLog.String())
	}
	base := "http://" + addr

	// One pipelined program through the run subcommand (stdin form).
	out, stderr, err := runTool(t, clientBin,
		"had @9,3\nlex $8,5\nnext $8,@9\ncopy $1,$8\nlex $0,0\nsys\n",
		"-server", base, "-mode", "pipelined", "run", "-")
	if err != nil {
		t.Fatalf("qatclient run: %v\n%s", err, stderr)
	}
	if !strings.Contains(out, `"insts"`) || strings.Contains(out, `"error"`) {
		t.Fatalf("run output: %s", out)
	}

	// Health via the client.
	out, stderr, err = runTool(t, clientBin, "", "-server", base, "health")
	if err != nil || !strings.Contains(out, `"status": "ok"`) {
		t.Fatalf("qatclient health: %v %s\n%s", err, out, stderr)
	}

	// A load burst, with the saturation phase, writing the bench report.
	benchFile := filepath.Join(dir, "BENCH_server.json")
	_, stderr, err = runTool(t, clientBin, "",
		"-server", base, "-load", "40", "-concurrency", "8", "-saturate", "-out", benchFile)
	if err != nil {
		t.Fatalf("qatclient -load: %v\n%s", err, stderr)
	}
	bench, err := os.ReadFile(benchFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"ok": 40`, `"failed": 0`, `"req_per_sec"`} {
		if !strings.Contains(string(bench), frag) {
			t.Fatalf("bench report missing %s:\n%s", frag, bench)
		}
	}

	// Graceful drain: SIGTERM, clean exit, artifacts flushed.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("server exit after SIGTERM: %v\n%s", err, srvLog.String())
	}
	metrics, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatalf("metrics not flushed on drain: %v", err)
	}
	if !strings.Contains(string(metrics), "server_requests_total") {
		t.Fatal("flushed metrics lack the serving counter set")
	}
	trace, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace not flushed on drain: %v", err)
	}
	header := strings.SplitN(string(trace), "\n", 2)[0]
	want := fmt.Sprintf(`{"schema":%q,"version":%d}`, obs.TraceSchema, obs.TraceSchemaVersion)
	if header != want {
		t.Fatalf("trace header %q, want %q", header, want)
	}
	if !strings.Contains(srvLog.String(), "drained cleanly") {
		t.Fatalf("server log lacks drain confirmation:\n%s", srvLog.String())
	}
}

// TestJobsCrashResumeEndToEnd is the durability proof against real
// processes: submit async jobs through qatclient, SIGKILL qatserver while
// some are queued behind a long-running job, restart it on the same store
// directory, and verify the WAL replay contract — queued jobs re-run
// exactly once to completion (marked resumed, results byte-identical to a
// synchronous run of the same program), the job that was mid-execution is
// failed with the resume reason, and the event stream carries the resumed
// transitions.
func TestJobsCrashResumeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	serverBin := buildTool(t, dir, "qatserver")
	clientBin := buildTool(t, dir, "qatclient")
	jobsDir := filepath.Join(dir, "jobs")

	startServer := func(portFile string) (*exec.Cmd, string) {
		srv := exec.Command(serverBin,
			"-addr", "127.0.0.1:0", "-port-file", portFile,
			"-jobs-dir", jobsDir, "-jobs-workers", "1", "-quiet")
		var srvLog strings.Builder
		srv.Stderr = &srvLog
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		var addr string
		for i := 0; i < 100; i++ {
			if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
				addr = strings.TrimSpace(string(b))
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if addr == "" {
			srv.Process.Kill()
			t.Fatalf("server never wrote its port file\n%s", srvLog.String())
		}
		return srv, "http://" + addr
	}

	srv1, base1 := startServer(filepath.Join(dir, "port1.txt"))
	defer srv1.Process.Kill()

	// The holder occupies the single job worker (a spin bounded only by its
	// generous timeout), so everything submitted after it stays queued.
	const spin = "lex $1,1\nL:\nbrt $1,L\n"
	if _, stderr, err := runTool(t, clientBin, spin,
		"-server", base1, "-id", "holder", "-timeout", "30s", "submit", "-"); err != nil {
		t.Fatalf("submit holder: %v\n%s", err, stderr)
	}
	const queued = 4
	srcs := make([]string, queued)
	for i := 0; i < queued; i++ {
		srcs[i] = farmtest.Generate(farmtest.Seed(100 + i))
		if _, stderr, err := runTool(t, clientBin, srcs[i],
			"-server", base1, "-id", fmt.Sprintf("q%d", i), "-ways", fmt.Sprint(farmtest.Ways),
			"submit", "-"); err != nil {
			t.Fatalf("submit q%d: %v\n%s", i, err, stderr)
		}
	}

	// SIGKILL: no drain, no compaction — the WAL alone carries the state.
	if err := srv1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	srv1.Wait()

	srv2, base2 := startServer(filepath.Join(dir, "port2.txt"))
	defer func() {
		srv2.Process.Signal(syscall.SIGTERM)
		srv2.Wait()
	}()

	// The mid-execution holder was conservatively failed, never re-run.
	out, stderr, err := runTool(t, clientBin, "", "-server", base2, "status", "holder")
	if err != nil {
		t.Fatalf("status holder: %v\n%s", err, stderr)
	}
	var holder server.JobStatus
	if err := json.Unmarshal([]byte(out), &holder); err != nil {
		t.Fatalf("holder status decode: %v\n%s", err, out)
	}
	if holder.State != "failed" || !strings.Contains(holder.Reason, "restarted") || !holder.Resumed {
		t.Fatalf("holder after restart: %+v", holder)
	}

	// Every queued job re-runs to completion, marked resumed, its result
	// byte-identical to a synchronous run of the same program.
	for i := 0; i < queued; i++ {
		id := fmt.Sprintf("q%d", i)
		out, stderr, err := runTool(t, clientBin, "", "-server", base2, "wait", id)
		if err != nil {
			t.Fatalf("wait %s: %v\n%s", id, err, stderr)
		}
		var st server.JobStatus
		if err := json.Unmarshal([]byte(out), &st); err != nil {
			t.Fatalf("wait %s decode: %v\n%s", id, err, out)
		}
		if st.State != "completed" || !st.Resumed || st.Result == nil {
			t.Fatalf("resumed job %s: %+v", id, st)
		}
		out, stderr, err = runTool(t, clientBin, srcs[i],
			"-server", base2, "-id", id+"-sync", "-ways", fmt.Sprint(farmtest.Ways), "run", "-")
		if err != nil {
			t.Fatalf("sync run %s: %v\n%s", id, err, stderr)
		}
		var sync server.RunResult
		if err := json.Unmarshal([]byte(out), &sync); err != nil {
			t.Fatalf("sync run %s decode: %v\n%s", id, err, out)
		}
		if sync.Regs != st.Result.Regs || sync.Output != st.Result.Output || sync.Insts != st.Result.Insts {
			t.Fatalf("job %s result diverged from sync run:\nasync: %+v\nsync:  %+v", id, st.Result, sync)
		}
	}

	// The restarted server's event stream replays the resume transitions.
	out, stderr, err = runTool(t, clientBin, "", "-server", base2, "-follow=false", "events")
	if err != nil {
		t.Fatalf("events: %v\n%s", err, stderr)
	}
	for _, frag := range []string{`"type":"resumed"`, `"type":"completed"`, `"job":"q0"`} {
		if !strings.Contains(out, frag) {
			t.Fatalf("event replay missing %s:\n%s", frag, out)
		}
	}
}
