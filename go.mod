module tangled

go 1.22
