package qasm

import (
	"testing"

	"tangled/internal/compile"
	"tangled/internal/pipeline"
)

func TestRunFunctional(t *testing.T) {
	r, err := RunFunctional("lex $1,21\nadd $1,$1\nlex $0,1\nsys\nlex $0,0\nsys\n", 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Regs[1] != 42 {
		t.Errorf("$1 = %d", r.Regs[1])
	}
	if r.Output != "42\n" {
		t.Errorf("output %q", r.Output)
	}
	if r.Insts != 6 {
		t.Errorf("insts = %d", r.Insts)
	}
}

func TestRunPipelinedAgreesWithFunctional(t *testing.T) {
	src := `
	had @1,2
	lex $1,0
	next $1,@1
	lex $2,7
	mul $2,$1
	lex $0,0
	sys
	`
	f, err := RunFunctional(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunPipelined(src, pipeline.StudentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Regs != p.Regs {
		t.Fatalf("register files differ: %v vs %v", f.Regs, p.Regs)
	}
	if p.Pipe == nil || p.Pipe.Cycles < p.Insts {
		t.Error("missing or bogus pipeline stats")
	}
}

func TestFactorToolchain(t *testing.T) {
	cfg := pipeline.StudentConfig()
	rep, err := Factor(15, 4, 4, compile.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Factors[0] != 5 || rep.Factors[1] != 3 {
		t.Fatalf("factors %v", rep.Factors)
	}
	if rep.QatInsts == 0 || rep.RegsUsed == 0 || rep.Result.Pipe.Cycles == 0 {
		t.Error("missing metrics")
	}
}

func TestFactorToolchain221(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	rep, err := Factor(221, 8, 8, compile.Options{Reuse: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, q := uint64(rep.Factors[0]), uint64(rep.Factors[1])
	if p*q != 221 {
		t.Fatalf("factors %v", rep.Factors)
	}
}

func TestFactorRejectsComposite(t *testing.T) {
	// 7 is prime: no nontrivial factorization channels exist after the
	// trivial-skip, so the measured "factors" cannot multiply to 7.
	if _, err := Factor(7, 4, 4, compile.Options{}, pipeline.StudentConfig()); err == nil {
		t.Fatal("factoring a prime reported success")
	}
}

func TestAssembleReexport(t *testing.T) {
	if _, err := Assemble("sys\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble("bogus\n"); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestRunFunctionalErrors(t *testing.T) {
	if _, err := RunFunctional("bogus\n", 4); err == nil {
		t.Error("assembly error not propagated")
	}
	if _, err := RunFunctional("spin: br spin\n", 4); err == nil {
		t.Error("non-halting program not reported")
	}
}

func TestRunPipelinedErrors(t *testing.T) {
	cfg := pipeline.StudentConfig()
	if _, err := RunPipelined("bogus\n", cfg); err == nil {
		t.Error("assembly error not propagated")
	}
	bad := cfg
	bad.Stages = 7
	if _, err := RunPipelined("sys\n", bad); err == nil {
		t.Error("bad config not rejected")
	}
}

func TestFactorErrors(t *testing.T) {
	cfg := pipeline.StudentConfig()
	// Operand bits exceeding ways fail at generation.
	if _, err := Factor(15, 9, 9, compile.Options{}, cfg); err == nil {
		t.Error("oversized operands accepted")
	}
}
