package qasm

import (
	"context"
	"strings"
	"testing"

	"tangled/internal/compile"
	"tangled/internal/pipeline"
)

func TestRunFunctionalBatch(t *testing.T) {
	srcs := []string{
		"lex $0,1\nlex $1,11\nsys\nlex $0,0\nsys\n",
		"lex $0,1\nlex $1,22\nsys\nlex $0,0\nsys\n",
		"lex $0,1\nlex $1,33\nsys\nlex $0,0\nsys\n",
	}
	results, stats, err := RunFunctionalBatch(context.Background(), srcs, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"11\n", "22\n", "33\n"} {
		if results[i] == nil || results[i].Output != want {
			t.Fatalf("result %d = %+v, want output %q", i, results[i], want)
		}
	}
	if stats.Jobs != 3 || stats.Errors != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestRunPipelinedBatchReportsPerJobErrors(t *testing.T) {
	srcs := []string{
		"lex $0,1\nlex $1,7\nsys\nlex $0,0\nsys\n",
		"bogus $9\n", // does not assemble
	}
	cfg := pipeline.Config{Stages: 4, Ways: 4, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	results, stats, err := RunPipelinedBatch(context.Background(), srcs, cfg, 2)
	if err == nil {
		t.Fatal("expected a joined error for the malformed program")
	}
	if results[0] == nil || results[0].Output != "7\n" || results[0].Pipe == nil {
		t.Fatalf("good program result: %+v", results[0])
	}
	if results[1] != nil {
		t.Fatalf("failed program should leave a nil slot, got %+v", results[1])
	}
	if stats.Errors != 1 {
		t.Fatalf("stats.Errors = %d, want 1", stats.Errors)
	}
}

func TestFactorBatch(t *testing.T) {
	ns := []uint64{15, 21, 35}
	pcfg := pipeline.Config{Stages: 5, Ways: 12, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	reports, stats, err := FactorBatch(context.Background(), ns, 6, 6, compile.Options{Reuse: true}, pcfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		rep := reports[i]
		if rep == nil {
			t.Fatalf("no report for %d", n)
		}
		if p, q := uint64(rep.Factors[0]), uint64(rep.Factors[1]); p*q != n || p == 1 || q == 1 {
			t.Fatalf("%d factored as %d x %d", n, p, q)
		}
		if rep.Result == nil || rep.Result.Pipe == nil || rep.Result.Pipe.Cycles == 0 {
			t.Fatalf("%d: missing pipeline accounting: %+v", n, rep.Result)
		}
	}
	if stats.Jobs != 3 || stats.Errors != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestFactorBatchReportsGenerationErrors(t *testing.T) {
	// 255 does not fit the 6-bit first operand; 15 still succeeds.
	ns := []uint64{255, 15}
	pcfg := pipeline.Config{Stages: 4, Ways: 12, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	reports, _, err := FactorBatch(context.Background(), ns, 6, 6, compile.Options{Reuse: true}, pcfg, 1)
	if err == nil || !strings.Contains(err.Error(), "255") {
		t.Fatalf("expected a generation error naming 255, got %v", err)
	}
	if reports[0] != nil {
		t.Fatalf("failed slot should be nil, got %+v", reports[0])
	}
	if reports[1] == nil || uint64(reports[1].Factors[0])*uint64(reports[1].Factors[1]) != 15 {
		t.Fatalf("15 should still factor: %+v", reports[1])
	}
}
