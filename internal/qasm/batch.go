package qasm

import (
	"context"
	"errors"
	"fmt"

	"tangled/internal/asm"
	"tangled/internal/compile"
	"tangled/internal/farm"
	"tangled/internal/pipeline"
)

// This file is the batch face of the toolchain: the same one-call helpers as
// RunFunctional/RunPipelined/Factor, fanned out over the farm worker pool.
// Results always come back in input order; per-program failures are joined
// into the returned error while the surviving results stay usable.

// resultFrom converts a farm result into the facade's Result type.
func resultFrom(fr *farm.Result) *Result {
	return &Result{Regs: fr.Regs, Output: fr.Output, Insts: fr.Insts, Pipe: fr.Pipe}
}

// collect converts a farm batch into facade results plus a joined error.
// Failed slots are nil in the returned slice.
func collect(frs []farm.Result) ([]*Result, error) {
	out := make([]*Result, len(frs))
	var errs []error
	for i := range frs {
		if err := frs[i].Err; err != nil {
			errs = append(errs, fmt.Errorf("qasm: job %d (%s): %w", i, frs[i].Name, err))
			continue
		}
		out[i] = resultFrom(&frs[i])
	}
	return out, errors.Join(errs...)
}

// RunFunctionalBatch assembles and executes each source on the functional
// machine, fanning the programs across workers concurrent machines
// (workers <= 0 means GOMAXPROCS). Results are in input order; failed
// programs leave a nil slot and contribute to the joined error.
func RunFunctionalBatch(ctx context.Context, srcs []string, ways, workers int) ([]*Result, farm.Stats, error) {
	return RunFunctionalBatchOn(ctx, farm.New(workers), srcs, ways)
}

// RunFunctionalBatchOn is RunFunctionalBatch on a caller-supplied engine,
// so the caller keeps the engine's pools warm across batches and can attach
// observability (farm.Engine.SetObs) before running.
func RunFunctionalBatchOn(ctx context.Context, e *farm.Engine, srcs []string, ways int) ([]*Result, farm.Stats, error) {
	jobs := make([]farm.Job, len(srcs))
	for i, src := range srcs {
		jobs[i] = farm.Job{Name: fmt.Sprintf("func-%d", i), Src: src, Mode: farm.Functional, Ways: ways, MaxSteps: MaxSteps}
	}
	frs, stats := e.Run(ctx, jobs)
	res, err := collect(frs)
	return res, stats, err
}

// RunPipelinedBatch is RunFunctionalBatch on the cycle-accurate pipeline.
func RunPipelinedBatch(ctx context.Context, srcs []string, cfg pipeline.Config, workers int) ([]*Result, farm.Stats, error) {
	return RunPipelinedBatchOn(ctx, farm.New(workers), srcs, cfg)
}

// RunPipelinedBatchOn is RunPipelinedBatch on a caller-supplied engine.
func RunPipelinedBatchOn(ctx context.Context, e *farm.Engine, srcs []string, cfg pipeline.Config) ([]*Result, farm.Stats, error) {
	jobs := make([]farm.Job, len(srcs))
	for i, src := range srcs {
		jobs[i] = farm.Job{Name: fmt.Sprintf("pipe-%d", i), Src: src, Mode: farm.Pipelined, Pipeline: cfg, MaxSteps: MaxSteps}
	}
	frs, stats := e.Run(ctx, jobs)
	res, err := collect(frs)
	return res, stats, err
}

// FactorBatch runs the Figure 10 factoring toolchain for every composite in
// ns concurrently: programs are generated and assembled up front (reporting
// any generation error in that slot), then executed on workers pooled
// pipelines. Reports are in input order with nil slots for failures.
func FactorBatch(ctx context.Context, ns []uint64, aBits, bBits int, copts compile.Options, pcfg pipeline.Config, workers int) ([]*FactorReport, farm.Stats, error) {
	return FactorBatchOn(ctx, farm.New(workers), ns, aBits, bBits, copts, pcfg)
}

// FactorBatchOn is FactorBatch on a caller-supplied engine (see
// RunFunctionalBatchOn for why a caller would supply one).
func FactorBatchOn(ctx context.Context, e *farm.Engine, ns []uint64, aBits, bBits int, copts compile.Options, pcfg pipeline.Config) ([]*FactorReport, farm.Stats, error) {
	pcfg.ConstantRegs = copts.ConstantRegs
	jobs := make([]farm.Job, 0, len(ns))
	type slot struct {
		n    uint64
		job  int // index into jobs, -1 when generation failed
		gen  *compile.FactorResult
		genE error
	}
	slots := make([]slot, len(ns))
	for i, n := range ns {
		slots[i] = slot{n: n, job: -1}
		gen, err := compile.FactorProgram(n, pcfg.Ways, aBits, bBits, copts)
		if err != nil {
			slots[i].genE = err
			continue
		}
		prog, err := asm.Assemble(gen.Asm)
		if err != nil {
			slots[i].genE = err
			continue
		}
		slots[i].gen = gen
		slots[i].job = len(jobs)
		jobs = append(jobs, farm.Job{
			Name: fmt.Sprintf("factor-%d", n), Prog: prog,
			Mode: farm.Pipelined, Pipeline: pcfg, MaxSteps: MaxSteps,
		})
	}
	frs, stats := e.Run(ctx, jobs)

	reports := make([]*FactorReport, len(ns))
	var errs []error
	for i := range slots {
		s := &slots[i]
		if s.genE != nil {
			errs = append(errs, fmt.Errorf("qasm: factoring %d: %w", s.n, s.genE))
			continue
		}
		fr := &frs[s.job]
		if fr.Err != nil {
			errs = append(errs, fmt.Errorf("qasm: factoring %d failed: %w", s.n, fr.Err))
			continue
		}
		rep := &FactorReport{
			N:        s.n,
			Factors:  [2]uint16{fr.Regs[4], fr.Regs[1]},
			QatInsts: s.gen.QatInsts,
			RegsUsed: s.gen.RegsUsed,
			Result:   resultFrom(fr),
		}
		if p, q := uint64(rep.Factors[0]), uint64(rep.Factors[1]); p*q != s.n {
			errs = append(errs, fmt.Errorf("qasm: measured factors %d x %d != %d", p, q, s.n))
			continue
		}
		reports[i] = rep
	}
	return reports, stats, errors.Join(errs...)
}
