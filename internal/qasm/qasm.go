// Package qasm is the toolchain facade: one-call helpers that chain the
// compiler, assembler and the functional or pipelined machines, used by the
// command-line tools, the examples and the top-level benchmark harness.
package qasm

import (
	"bytes"
	"fmt"

	"tangled/internal/asm"
	"tangled/internal/compile"
	"tangled/internal/cpu"
	"tangled/internal/pipeline"
)

// Result captures one program execution.
type Result struct {
	// Regs is the final Tangled register file.
	Regs [16]uint16
	// Output is everything the program printed through sys.
	Output string
	// Insts is the retired instruction count.
	Insts uint64
	// Pipe holds cycle accounting when run on the pipelined machine.
	Pipe *pipeline.Stats
}

// MaxSteps bounds all helper executions.
const MaxSteps = 50_000_000

// RunFunctional assembles src and executes it on the functional machine.
func RunFunctional(src string, ways int) (*Result, error) {
	var out bytes.Buffer
	m, err := cpu.RunProgram(src, ways, MaxSteps, &out)
	if err != nil {
		return nil, err
	}
	return &Result{Regs: m.Regs, Output: out.String(), Insts: m.Stats.Insts}, nil
}

// RunPipelined assembles src and executes it on a pipelined machine.
func RunPipelined(src string, cfg pipeline.Config) (*Result, error) {
	var out bytes.Buffer
	p, err := pipeline.RunProgram(src, cfg, MaxSteps, &out)
	if err != nil {
		return nil, err
	}
	stats := p.Stats
	return &Result{
		Regs:   p.Machine().Regs,
		Output: out.String(),
		Insts:  stats.Insts,
		Pipe:   &stats,
	}, nil
}

// FactorReport is the outcome of a full factoring toolchain run.
type FactorReport struct {
	N        uint64
	Factors  [2]uint16
	QatInsts int
	RegsUsed int
	Result   *Result
}

// Factor generates, assembles and runs the Figure 10-style factoring
// program for n on the given pipeline configuration, returning the two
// nontrivial factors.
func Factor(n uint64, aBits, bBits int, copts compile.Options, pcfg pipeline.Config) (*FactorReport, error) {
	res, err := compile.FactorProgram(n, pcfg.Ways, aBits, bBits, copts)
	if err != nil {
		return nil, err
	}
	pcfg.ConstantRegs = copts.ConstantRegs
	run, err := RunPipelined(res.Asm, pcfg)
	if err != nil {
		return nil, fmt.Errorf("qasm: factoring program failed: %w", err)
	}
	rep := &FactorReport{
		N:        n,
		Factors:  [2]uint16{run.Regs[4], run.Regs[1]},
		QatInsts: res.QatInsts,
		RegsUsed: res.RegsUsed,
		Result:   run,
	}
	if p, q := uint64(rep.Factors[0]), uint64(rep.Factors[1]); p*q != n {
		return rep, fmt.Errorf("qasm: measured factors %d x %d != %d", p, q, n)
	}
	return rep, nil
}

// Assemble is a re-export so tools only import this package.
func Assemble(src string) (*asm.Program, error) { return asm.Assemble(src) }
