package cluster

// Routing-key derivation: the coordinator keys each run on the same memo
// ExecKey the worker will compute, so a repeated program consistently lands
// on the node whose cache already holds the entry. The derivation mirrors
// farm.jobKey / server.buildJob — assemble src, canonicalize the Qat
// config, clamp the step budget — with one deliberate divergence: a
// backend:"auto" request is keyed under a router-only pseudo-backend
// instead of being planned here. Planning needs the per-node profile and
// memo probe; the router only needs *stability* (same request → same
// node), and the chosen node's own planner then resolves and memoizes it.

import (
	"tangled/internal/asm"
	"tangled/internal/backend"
	"tangled/internal/memo"
	"tangled/internal/pipeline"
	"tangled/internal/qasm"
	"tangled/internal/qat"
	"tangled/internal/server"
)

// routeAutoBackend marks backend:"auto" route keys. Worker memo keys only
// ever use 0 (dense) and 1 (run-encoded), so the marker cannot collide
// with a real entry's key — it exists purely to give auto requests their
// own stable ring position.
const routeAutoBackend = 0xFF

// RouteKey derives the consistent-hash coordinate for one run request.
// ok=false means the request has no stable execution identity here — it
// fails validation, or its source doesn't assemble — and should fall back
// to least-in-flight routing (the worker then owns the error report).
func RouteKey(req *server.RunRequest) (uint64, bool) {
	if err := req.Validate(); err != nil {
		return 0, false
	}
	var words []uint16
	if req.Src != "" {
		p, err := asm.Assemble(req.Src)
		if err != nil {
			return 0, false
		}
		words = p.Words
	} else {
		words = req.Words
	}
	// Clamp against the default ceiling. A worker running with a custom
	// -max-steps may key under a different budget than we route on; that
	// costs locality for over-budget requests, never correctness.
	ek := memo.ExecKey{MaxSteps: clampSteps(req.MaxSteps), Words: words}
	if req.Mode == "pipelined" {
		ek.Pipelined = true
		cfg := pipeline.DefaultConfig()
		if req.Stages != 0 {
			cfg.Stages = req.Stages
		}
		if req.Ways != 0 {
			cfg.Ways = req.Ways
		}
		cfg.ConstantRegs = req.ConstRegs
		ek.Pipeline = cfg
		return ek.Sum().Uint64(), true
	}
	if req.Backend == backend.Auto {
		ek.Backend = routeAutoBackend
		ek.Ways = req.Ways
		ek.ConstantRegs = req.ConstRegs
		return ek.Sum().Uint64(), true
	}
	cfg, err := backend.Canonicalize(qat.Config{Ways: req.Ways, ConstantRegs: req.ConstRegs,
		Backend: req.Backend, ChunkWays: req.ChunkWays, SpillRuns: req.SpillRuns})
	if err != nil {
		return 0, false
	}
	ek.Ways = cfg.Ways
	ek.ConstantRegs = cfg.ConstantRegs
	if cfg.Backend == qat.BackendRE {
		ek.Backend = 1
		ek.REChunkWays = uint8(cfg.ChunkWays)
		ek.RESpillRuns = int32(cfg.SpillRuns)
	}
	return ek.Sum().Uint64(), true
}

// clampSteps resolves a request budget against the default qasm ceiling,
// like RunRequest.maxSteps does server-side with a zero cap.
func clampSteps(steps uint64) uint64 {
	if steps == 0 || steps > qasm.MaxSteps {
		return qasm.MaxSteps
	}
	return steps
}
