package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tangled/internal/client"
	"tangled/internal/obs"
	"tangled/internal/server"
)

// Config parameterizes a Coordinator; the zero value plus Nodes is a
// sensible production router.
type Config struct {
	// Nodes are the worker base URLs (e.g. "http://10.0.0.1:8080").
	Nodes []string
	// Replicas is the virtual-node count per worker on the hash ring;
	// <=0 means DefaultReplicas.
	Replicas int
	// HeartbeatInterval paces health probing; <=0 means 500ms. Each probe
	// is bounded by the interval, so a hung worker costs one beat, not a
	// stalled loop.
	HeartbeatInterval time.Duration
	// FailAfter is how many consecutive missed beats evict a node;
	// <=0 means 3.
	FailAfter int
	// DemoteDefault is the demotion window for a 429 without a
	// Retry-After hint; <=0 means 1s. DemoteMax caps hinted windows;
	// <=0 means 30s.
	DemoteDefault time.Duration
	DemoteMax     time.Duration
	// MaxBodyBytes bounds request bodies; <=0 means 8MiB.
	MaxBodyBytes int64
	// Registry receives the cluster_* metric family; nil disables it.
	Registry *obs.Registry
}

// Coordinator fronts a fleet of qatserver workers, routing /v1/run and
// /v1/batch by memo key and aggregating /v1/healthz and /v1/buildinfo.
type Coordinator struct {
	cfg   Config
	ring  *Ring
	nodes map[string]*node
	order []*node // registration order, for stable iteration
	mux   *http.ServeMux
	obs   *clusterObs

	// stateMu serializes node state transitions against ring membership,
	// so a probe and a run-path 503 can't interleave a remove/add pair.
	stateMu sync.Mutex

	draining atomic.Bool
	started  atomic.Bool
	inFlight atomic.Int64
	rr       atomic.Uint64 // rotates least-in-flight ties

	ln      net.Listener
	httpSrv *http.Server
	serveWG sync.WaitGroup
	hbStop  chan struct{}
	hbDone  chan struct{}
}

// New builds a coordinator over cfg.Nodes; every node starts healthy and
// on the ring (the first heartbeat sweep corrects optimism, and the
// forward path fails over meanwhile).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no worker nodes configured")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.DemoteDefault <= 0 {
		cfg.DemoteDefault = time.Second
	}
	if cfg.DemoteMax <= 0 {
		cfg.DemoteMax = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	co := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(cfg.Replicas),
		nodes:  make(map[string]*node),
		obs:    newClusterObs(cfg.Registry),
		hbStop: make(chan struct{}),
		hbDone: make(chan struct{}),
	}
	for _, raw := range cfg.Nodes {
		n := newNode(raw)
		if _, dup := co.nodes[n.id]; dup {
			return nil, fmt.Errorf("cluster: node %q configured twice", n.id)
		}
		co.nodes[n.id] = n
		co.order = append(co.order, n)
		co.ring.Add(n.id)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", co.methodOnly(http.MethodPost, co.handleRun))
	mux.HandleFunc("/v1/batch", co.methodOnly(http.MethodPost, co.handleBatch))
	mux.HandleFunc("/v1/assemble", co.methodOnly(http.MethodPost, co.handleAssemble))
	mux.HandleFunc("/v1/healthz", co.methodOnly(http.MethodGet, co.handleHealthz))
	mux.HandleFunc("/v1/buildinfo", co.methodOnly(http.MethodGet, co.handleBuildinfo))
	if cfg.Registry != nil {
		mux.Handle("/metrics", obs.Handler(cfg.Registry))
		mux.Handle("/debug/", obs.Handler(cfg.Registry))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		co.writeError(w, http.StatusNotFound, server.ErrorResponse{
			Error: "no such route (the coordinator serves /v1/run, /v1/batch, /v1/assemble, /v1/healthz, /v1/buildinfo; async jobs are per-node)"})
	})
	co.mux = mux
	return co, nil
}

// Handler exposes the coordinator's mux (tests mount it directly).
func (co *Coordinator) Handler() http.Handler { return co.mux }

// Start listens on addr, serves in a background goroutine, and starts the
// heartbeat loop, returning the bound address (pass "127.0.0.1:0" to let
// the OS pick).
func (co *Coordinator) Start(addr string) (net.Addr, error) {
	if !co.started.CompareAndSwap(false, true) {
		return nil, errors.New("cluster: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	co.ln = ln
	co.httpSrv = &http.Server{Handler: co.mux}
	co.serveWG.Add(1)
	go func() {
		defer co.serveWG.Done()
		co.httpSrv.Serve(ln)
	}()
	go co.heartbeatLoop()
	return ln.Addr(), nil
}

// StartLocal is Start("127.0.0.1:0") returning the base URL.
func (co *Coordinator) StartLocal() (string, error) {
	addr, err := co.Start("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	return "http://" + addr.String(), nil
}

// Draining reports whether Drain has begun.
func (co *Coordinator) Draining() bool { return co.draining.Load() }

// Drain gracefully stops the coordinator: new work is refused with 503,
// in-flight forwards finish, the heartbeat stops, and the listener closes.
// ctx bounds the wait. The workers themselves are not touched — they have
// their own drain protocol.
func (co *Coordinator) Drain(ctx context.Context) error {
	co.draining.Store(true)
	co.stopHeartbeat()
	var err error
	if co.httpSrv != nil {
		err = co.httpSrv.Shutdown(ctx)
		if err != nil {
			co.httpSrv.Close()
		}
		co.serveWG.Wait()
	}
	return err
}

// Close shuts down immediately without waiting for in-flight forwards.
func (co *Coordinator) Close() error {
	co.draining.Store(true)
	co.stopHeartbeat()
	if co.httpSrv != nil {
		co.httpSrv.Close()
		co.serveWG.Wait()
	}
	return nil
}

func (co *Coordinator) stopHeartbeat() {
	select {
	case <-co.hbStop:
	default:
		close(co.hbStop)
	}
	if co.started.Load() {
		<-co.hbDone
	}
}

// ---- heartbeat ----

func (co *Coordinator) heartbeatLoop() {
	defer close(co.hbDone)
	t := time.NewTicker(co.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-co.hbStop:
			return
		case <-t.C:
			co.probeAll()
		}
	}
}

// probeAll sweeps every node in parallel; one beat costs at most one
// interval regardless of how many nodes hang.
func (co *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, n := range co.order {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			co.probeNode(n)
		}(n)
	}
	wg.Wait()
	co.obs.observe(co.order)
}

func (co *Coordinator) probeNode(n *node) {
	co.obs.probes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), co.cfg.HeartbeatInterval)
	defer cancel()
	h, err := n.probe.Health(ctx)
	if err == nil {
		n.setLastHealth(h)
		co.markHealthy(n)
		return
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
		// The node answered: it is alive but leaving (graceful drain).
		co.markDraining(n)
		return
	}
	co.obs.probeFails.Inc()
	co.markMissed(n)
}

// markHealthy records a successful probe: missed beats reset, and a
// draining or dead node re-enters the ring (rejoin).
func (co *Coordinator) markHealthy(n *node) {
	co.stateMu.Lock()
	defer co.stateMu.Unlock()
	n.missed.Store(0)
	was := n.getState()
	if was == nodeHealthy {
		return
	}
	n.state.Store(int32(nodeHealthy))
	co.ring.Add(n.id)
	if was == nodeDead {
		co.obs.rejoins.Inc()
	}
}

// markDraining steers traffic away and reassigns the node's hash arcs to
// its ring successors — the node-leave protocol, triggered by the worker's
// own SIGTERM drain while its listener still answers.
func (co *Coordinator) markDraining(n *node) {
	co.stateMu.Lock()
	defer co.stateMu.Unlock()
	n.missed.Store(0)
	if n.getState() == nodeDraining {
		return
	}
	n.state.Store(int32(nodeDraining))
	co.ring.Remove(n.id)
}

// markMissed counts a failed probe; FailAfter consecutive misses evict.
func (co *Coordinator) markMissed(n *node) {
	co.stateMu.Lock()
	defer co.stateMu.Unlock()
	missed := n.missed.Add(1)
	if int(missed) < co.cfg.FailAfter || n.getState() == nodeDead {
		return
	}
	n.state.Store(int32(nodeDead))
	co.ring.Remove(n.id)
	co.obs.evictions.Inc()
}

// ---- routing ----

// candidates returns the failover-ordered eligible nodes for one request:
// ring-successor order for keyed requests (cache locality first),
// least-in-flight with rotating ties for unkeyed ones.
func (co *Coordinator) candidates(key uint64, keyed bool) []*node {
	now := time.Now()
	if keyed {
		var out []*node
		for _, id := range co.ring.Successors(key, len(co.nodes)) {
			if n := co.nodes[id]; n != nil && n.eligible(now) {
				out = append(out, n)
			}
		}
		if len(out) > 0 {
			return out
		}
		// Every ring member is demoted or the ring is empty: fall through
		// to the unkeyed walk so a fully-backpressured ring still reports
		// the aggregate 429 instead of an empty candidate list.
	}
	var out []*node
	rot := int(co.rr.Add(1))
	for i := range co.order {
		n := co.order[(i+rot)%len(co.order)]
		if n.eligible(now) {
			out = append(out, n)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].inFlight.Load() < out[b].inFlight.Load()
	})
	return out
}

// refusal builds the response for a request no node can take: 429 with the
// smallest remaining demotion window when backpressure is the only reason,
// 503 otherwise.
func (co *Coordinator) refusal() (int, server.ErrorResponse) {
	co.obs.noNode.Inc()
	now := time.Now()
	minUntil := int64(0)
	for _, n := range co.order {
		if n.getState() != nodeHealthy {
			continue
		}
		if until := n.demotedUntil.Load(); until > now.UnixNano() && (minUntil == 0 || until < minUntil) {
			minUntil = until
		}
	}
	if minUntil > 0 {
		ms := (minUntil - now.UnixNano()) / int64(time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		return http.StatusTooManyRequests, server.ErrorResponse{
			Error:        "every node is backpressured; retry after the hinted window",
			RetryAfterMs: ms,
		}
	}
	return http.StatusServiceUnavailable, server.ErrorResponse{
		Error: "no healthy worker node",
	}
}

// noteForwardFailure classifies one failed forward and updates the node:
// 429 opens a demotion window sized by the worker's hint, 503 marks the
// node draining, transport errors leave state to the heartbeat. It returns
// true when the request should fail over to the next candidate, false when
// the worker's answer is authoritative and must be relayed.
func (co *Coordinator) noteForwardFailure(n *node, err error) (failover bool, relay *client.APIError) {
	co.obs.nodeRetry.With(n.id).Inc()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		return true, nil // transport error
	}
	switch apiErr.Status {
	case http.StatusTooManyRequests:
		d := co.cfg.DemoteDefault
		if ms := apiErr.Resp.RetryAfterMs; ms > 0 {
			d = time.Duration(ms) * time.Millisecond
			if d > co.cfg.DemoteMax {
				d = co.cfg.DemoteMax
			}
		}
		n.demote(time.Now(), d)
		co.obs.demotions.Inc()
		return true, nil
	case http.StatusServiceUnavailable:
		co.markDraining(n)
		return true, nil
	case http.StatusInternalServerError, http.StatusBadGateway:
		// Transient worker fault; execution is deterministic and the
		// request ID idempotent, so re-running elsewhere is safe.
		return true, nil
	}
	return false, apiErr
}

// ---- handlers ----

func (co *Coordinator) methodOnly(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			co.writeError(w, http.StatusMethodNotAllowed, server.ErrorResponse{
				Error: fmt.Sprintf("method %s not allowed", r.Method)})
			return
		}
		if co.draining.Load() {
			co.writeError(w, http.StatusServiceUnavailable, server.ErrorResponse{
				Error: "coordinator is draining", RetryAfterMs: 1000})
			return
		}
		co.inFlight.Add(1)
		defer co.inFlight.Add(-1)
		h(w, r)
	}
}

func (co *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	body := http.MaxBytesReader(w, r.Body, co.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (co *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	var req server.RunRequest
	if err := co.decodeBody(w, r, &req); err != nil {
		co.writeError(w, http.StatusBadRequest, server.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	// Mint the idempotency key here, before the first forward, so a
	// failover replays the same ID (and a node that already executed it
	// serves its idempotency cache instead of re-running).
	if req.ID == "" {
		req.ID = client.NewRequestID()
	}
	key, keyed := RouteKey(&req)
	if keyed {
		co.obs.keyed.Inc()
	} else {
		co.obs.unkeyed.Inc()
	}
	tried := make(map[*node]bool)
	for {
		n := co.nextCandidate(key, keyed, tried)
		if n == nil {
			status, resp := co.refusal()
			co.writeError(w, status, resp)
			return
		}
		tried[n] = true
		n.inFlight.Add(1)
		res, err := n.fwd.Run(r.Context(), req)
		n.inFlight.Add(-1)
		if err == nil {
			n.routed.Add(1)
			co.obs.routed.Inc()
			co.obs.nodeRouted.With(n.id).Inc()
			w.Header().Set("X-Request-ID", req.ID)
			w.Header().Set("X-Cluster-Node", n.id)
			co.writeJSON(w, statusOfResult(&res), res)
			return
		}
		if r.Context().Err() != nil {
			co.writeError(w, server.StatusClientClosedRequest, server.ErrorResponse{Error: "client disconnected"})
			return
		}
		failover, relay := co.noteForwardFailure(n, err)
		if !failover {
			co.relayAPIError(w, relay)
			return
		}
		co.obs.failovers.Inc()
	}
}

// nextCandidate returns the best untried eligible node, nil when none.
func (co *Coordinator) nextCandidate(key uint64, keyed bool, tried map[*node]bool) *node {
	for _, n := range co.candidates(key, keyed) {
		if !tried[n] {
			return n
		}
	}
	return nil
}

// statusOfResult mirrors the worker's finishRun: per-run failure records
// (499 cancelled, 504 deadline) carry their Code as the HTTP status.
func statusOfResult(res *server.RunResult) int {
	if res.Code >= 400 && res.Code != http.StatusInternalServerError {
		return res.Code
	}
	return http.StatusOK
}

func (co *Coordinator) relayAPIError(w http.ResponseWriter, apiErr *client.APIError) {
	co.writeError(w, apiErr.Status, apiErr.Resp)
}

func (co *Coordinator) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (co *Coordinator) writeError(w http.ResponseWriter, status int, resp server.ErrorResponse) {
	if resp.RetryAfterMs > 0 {
		secs := (resp.RetryAfterMs + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	co.writeJSON(w, status, resp)
}

// ---- aggregation ----

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	agg := co.clusterHealth()
	status := http.StatusOK
	if agg.Draining || agg.NodesHealthy == 0 {
		status = http.StatusServiceUnavailable
	}
	co.writeJSON(w, status, agg)
}

func (co *Coordinator) clusterHealth() server.ClusterHealth {
	now := time.Now()
	agg := server.ClusterHealth{}
	agg.Status = "ok"
	agg.Draining = co.draining.Load()
	if agg.Draining {
		agg.Status = "draining"
	}
	agg.InFlight = co.inFlight.Load()
	for _, n := range co.order {
		row := n.row(now)
		agg.Nodes = append(agg.Nodes, row)
		if n.getState() == nodeHealthy {
			if n.eligible(now) {
				agg.NodesHealthy++
			}
			h := n.health()
			agg.QueueDepth += h.QueueDepth
			agg.QueueLimit += h.QueueLimit
			agg.Workers += h.Workers
			agg.JobsDone += h.JobsDone
			agg.JobsQueued += h.JobsQueued
			agg.JobsRunning += h.JobsRunning
		}
	}
	if !agg.Draining && agg.NodesHealthy == 0 {
		agg.Status = "degraded"
	}
	return agg
}

func (co *Coordinator) handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	type probeResult struct {
		n    *node
		info server.BuildInfo
		err  error
	}
	results := make([]probeResult, len(co.order))
	var wg sync.WaitGroup
	for i, n := range co.order {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			info, err := n.probe.BuildInfo(r.Context())
			results[i] = probeResult{n, info, err}
		}(i, n)
	}
	wg.Wait()

	agg := server.ClusterBuildInfo{}
	agg.GoVersion = runtime.Version()
	agg.NumCPU = runtime.NumCPU()
	agg.ResultsSchema = server.ResultsSchema
	agg.ResultsVer = server.ResultsSchemaVersion
	var caps map[string]int
	reachable := 0
	for _, pr := range results {
		row := server.NodeBuildInfo{ID: pr.n.id, URL: pr.n.url}
		if pr.err != nil {
			row.Err = pr.err.Error()
			agg.Nodes = append(agg.Nodes, row)
			continue
		}
		row.Info = pr.info
		agg.Nodes = append(agg.Nodes, row)
		reachable++
		agg.Workers += pr.info.Workers
		// Conservative fleet ceilings: the minimum across reachable nodes
		// is what every routed request can rely on.
		if reachable == 1 || pr.info.MaxWays < agg.MaxWays {
			agg.MaxWays = pr.info.MaxWays
		}
		if reachable == 1 || pr.info.MaxREWays < agg.MaxREWays {
			agg.MaxREWays = pr.info.MaxREWays
		}
		if reachable == 1 || pr.info.MaxSteps < agg.MaxSteps {
			agg.MaxSteps = pr.info.MaxSteps
		}
		if caps == nil {
			caps = make(map[string]int)
		}
		for _, c := range pr.info.Capabilities {
			caps[c]++
		}
		if agg.Backends == nil {
			agg.Backends = pr.info.Backends
		} else {
			agg.Backends = intersect(agg.Backends, pr.info.Backends)
		}
	}
	for c, cnt := range caps {
		if cnt == reachable {
			agg.Capabilities = append(agg.Capabilities, c)
		}
	}
	agg.Capabilities = append(agg.Capabilities, "cluster")
	sort.Strings(agg.Capabilities)
	status := http.StatusOK
	if reachable == 0 {
		status = http.StatusServiceUnavailable
	}
	co.writeJSON(w, status, agg)
}

func intersect(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if in[s] {
			out = append(out, s)
		}
	}
	return out
}

func (co *Coordinator) handleAssemble(w http.ResponseWriter, r *http.Request) {
	var req server.AssembleRequest
	if err := co.decodeBody(w, r, &req); err != nil {
		co.writeError(w, http.StatusBadRequest, server.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	tried := make(map[*node]bool)
	for {
		n := co.nextCandidate(0, false, tried)
		if n == nil {
			status, resp := co.refusal()
			co.writeError(w, status, resp)
			return
		}
		tried[n] = true
		resp, err := n.fwd.AssembleWith(r.Context(), req)
		if err == nil {
			co.writeJSON(w, http.StatusOK, resp)
			return
		}
		if r.Context().Err() != nil {
			co.writeError(w, server.StatusClientClosedRequest, server.ErrorResponse{Error: "client disconnected"})
			return
		}
		failover, relay := co.noteForwardFailure(n, err)
		if !failover {
			co.relayAPIError(w, relay)
			return
		}
		co.obs.failovers.Inc()
	}
}
