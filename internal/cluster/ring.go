// Package cluster shards the farm across a fleet of qatserver workers: a
// coordinator that fronts N nodes and routes POST /v1/run and /v1/batch
// across them. Routing is keyed on the memo ExecKey over a consistent-hash
// ring, so a repeated program lands on the node whose memo cache already
// holds its entry; node membership follows each worker's own lifecycle —
// heartbeat health probing, draining workers steered away (SIGTERM
// graceful-drain is the node-leave protocol), dead workers evicted after K
// missed beats and re-admitted when they answer again, and 429/Retry-After
// backpressure demoting a node for exactly the hinted window.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// ringPoint is one virtual node: a position on the 64-bit hash circle owned
// by a physical node.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. A key is owned by the
// first point clockwise from its hash, so adding a node moves only the keys
// that fall into the new node's arcs (~keys/nodes of them) and removing it
// moves exactly those keys back — never a mod-N reshuffle. Safe for
// concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	nodes    map[string]bool
}

// DefaultReplicas is the virtual-node count per physical node: enough that
// per-node load stays within a few tens of percent of even, cheap enough
// that membership changes stay microseconds.
const DefaultReplicas = 128

// NewRing builds an empty ring; replicas <= 0 means DefaultReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// pointHash places virtual node i of a node ID on the circle. SHA-256
// (keyed like the memo keys it must spread) rather than a weak string hash:
// point placement runs only on membership changes, and uniformity is what
// bounds the rebalance volume.
func pointHash(node string, i int) uint64 {
	h := sha256.Sum256([]byte(node + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(h[:8])
}

// Add inserts a node's virtual points (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{pointHash(node, i), node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node's virtual points (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Contains reports node membership.
func (r *Ring) Contains(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[node]
}

// Nodes returns the member IDs, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Lookup returns the node owning key (false on an empty ring).
func (r *Ring) Lookup(key uint64) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.ownerIdx(key)].node, true
}

// Successors returns up to n distinct nodes in ring order starting at the
// key's owner — the failover sequence for a keyed request: if the owner is
// unavailable the key's traffic concentrates on the next arc over, instead
// of scattering.
func (r *Ring) Successors(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.ownerIdx(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// ownerIdx finds the first point at or clockwise of key. Callers hold mu.
func (r *Ring) ownerIdx(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return i
}
