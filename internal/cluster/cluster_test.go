package cluster

// Coordinator integration tests over in-process workers. The two
// acceptance lenses live here: the 200-program corpus must come back
// byte-identical routed across a 3-node fleet vs a single direct worker,
// and a repeat-heavy mix must keep the fleet's memo hit ratio within 10%
// of a single node's even across a node join (the ring moves only the
// joining node's arcs, so warm caches stay warm). The lifecycle tests use
// stub workers whose failure behavior is scripted.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tangled/internal/client"
	"tangled/internal/farm/farmtest"
	"tangled/internal/obs"
	"tangled/internal/qasm"
	"tangled/internal/server"
)

func startWorker(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := srv.StartLocal()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, base
}

func startCoordinator(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := co.StartLocal()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return co, base
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterDifferentialCorpus is the serving-equivalence acceptance: the
// full shared corpus routed across three workers — as one batch and as
// individual runs — must match direct in-process execution byte for byte.
func TestClusterDifferentialCorpus(t *testing.T) {
	srcs := make([]string, farmtest.Programs)
	for i := range srcs {
		srcs[i] = farmtest.Generate(farmtest.Seed(i))
	}
	direct, _, err := qasm.RunFunctionalBatch(context.Background(), srcs, farmtest.Ways, 0)
	if err != nil {
		t.Fatal(err)
	}

	var urls []string
	for i := 0; i < 3; i++ {
		_, base := startWorker(t, server.Config{Workers: 2, BatchMax: 16})
		urls = append(urls, base)
	}
	co, base := startCoordinator(t, Config{Nodes: urls})
	cl := client.NewWith(client.Config{BaseURL: base, MaxRetries: -1})

	req := server.BatchRequest{ID: "cluster-diff", Programs: make([]server.RunRequest, len(srcs))}
	for i, src := range srcs {
		req.Programs[i] = server.RunRequest{Src: src, Ways: farmtest.Ways}
	}
	results, err := cl.Batch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(srcs) {
		t.Fatalf("got %d results, want %d", len(results), len(srcs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d arrived at position %d: merge order broken", r.Index, i)
		}
		if r.Error != "" {
			t.Fatalf("program %d failed through the cluster: %s\n%s", i, r.Error, srcs[i])
		}
		d := direct[i]
		if r.Regs != d.Regs || r.Output != d.Output || r.Insts != d.Insts {
			t.Fatalf("program %d diverged through the cluster:\nrouted: regs=%v output=%q insts=%d\ndirect: regs=%v output=%q insts=%d\n%s",
				i, r.Regs, r.Output, r.Insts, d.Regs, d.Output, d.Insts, srcs[i])
		}
	}
	// Consistent hashing over 200 distinct keys must have spread the batch.
	for _, n := range co.order {
		if n.routed.Load() == 0 {
			t.Fatalf("node %s routed nothing out of %d programs: ring is not spreading", n.id, len(srcs))
		}
	}

	// A sample of individual runs takes the /v1/run failover path.
	for i := 0; i < 10; i++ {
		r, err := cl.Run(context.Background(), server.RunRequest{Src: srcs[i], Ways: farmtest.Ways})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		d := direct[i]
		if r.Regs != d.Regs || r.Output != d.Output || r.Insts != d.Insts {
			t.Fatalf("single run %d diverged through the cluster", i)
		}
	}
}

// TestMemoHotRouting is the cache-locality acceptance: a repeat-heavy mix
// keyed onto the ring keeps the fleet-wide memo hit ratio within 10% of a
// single node's, even when a node joins mid-mix (only the joining node's
// arcs go cold).
func TestMemoHotRouting(t *testing.T) {
	const distinct, reps = 20, 10
	progs := make([]string, distinct)
	for i := range progs {
		progs[i] = farmtest.Generate(farmtest.Seed(1000 + i))
	}
	runMix := func(cl *client.Client, repFrom, repTo int) {
		t.Helper()
		for rep := repFrom; rep < repTo; rep++ {
			for _, src := range progs {
				if _, err := cl.Run(context.Background(), server.RunRequest{Src: src, Ways: farmtest.Ways}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	ratioOf := func(srvs ...*server.Server) float64 {
		var hits, misses uint64
		for _, s := range srvs {
			st := s.Engine().Memo().Stats()
			hits += st.Hits
			misses += st.Misses
		}
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	}

	// Baseline: the whole mix against one direct worker.
	soloSrv, soloBase := startWorker(t, server.Config{Workers: 2})
	runMix(client.NewWith(client.Config{BaseURL: soloBase, MaxRetries: -1}), 0, reps)
	baseline := ratioOf(soloSrv)

	// Fleet: three live workers plus one configured-but-down slot. The
	// coordinator starts optimistic, so wait for the heartbeat to evict the
	// empty slot before measuring.
	var srvs []*server.Server
	var urls []string
	for i := 0; i < 3; i++ {
		s, base := startWorker(t, server.Config{Workers: 2})
		srvs = append(srvs, s)
		urls = append(urls, base)
	}
	spare, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	spareAddr := spare.Addr().String()
	spare.Close()
	urls = append(urls, "http://"+spareAddr)

	co, base := startCoordinator(t, Config{Nodes: urls, HeartbeatInterval: 20 * time.Millisecond, FailAfter: 2})
	waitFor(t, "empty slot eviction", func() bool { return co.clusterHealth().NodesHealthy == 3 })
	cl := client.NewWith(client.Config{BaseURL: base, MaxRetries: -1})

	runMix(cl, 0, reps/2)

	// Join: bring the fourth worker up on its reserved address; the
	// heartbeat readmits it and its arcs move over.
	srv4, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv4.Start(spareAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv4.Close() })
	srvs = append(srvs, srv4)
	waitFor(t, "node join", func() bool { return co.clusterHealth().NodesHealthy == 4 })

	runMix(cl, reps/2, reps)

	fleet := ratioOf(srvs...)
	t.Logf("memo hit ratio: single-node %.3f, 3→4-node fleet %.3f", baseline, fleet)
	if fleet < baseline*0.9 {
		t.Fatalf("fleet memo hit ratio %.3f fell more than 10%% below single-node %.3f: hot routing is not keeping caches warm",
			fleet, baseline)
	}
}

// ---- scripted stub workers for lifecycle tests ----

type stubWorker struct {
	srv   *httptest.Server
	runs  atomic.Int64
	onRun atomic.Value // func(http.ResponseWriter, *http.Request)
}

func newStubWorker(t *testing.T) *stubWorker {
	t.Helper()
	s := &stubWorker{}
	s.onRun.Store(func(w http.ResponseWriter, r *http.Request) {
		var req server.RunRequest
		json.NewDecoder(r.Body).Decode(&req)
		stubJSON(w, http.StatusOK, server.RunResult{ID: req.ID, Insts: 7})
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		stubJSON(w, http.StatusOK, server.Health{Status: "ok", Workers: 1})
	})
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		s.runs.Add(1)
		s.onRun.Load().(func(http.ResponseWriter, *http.Request))(w, r)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func (s *stubWorker) id() string { return strings.TrimPrefix(s.srv.URL, "http://") }

func stubJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// keyedReqOwnedBy crafts a run request whose ring owner is the wanted node.
func keyedReqOwnedBy(t *testing.T, co *Coordinator, owner string) server.RunRequest {
	t.Helper()
	for i := 0; i < 4096; i++ {
		req := server.RunRequest{Src: fmt.Sprintf("lex $1,%d\nlex $2,%d\n", i%128, i/128), Ways: 2}
		key, keyed := RouteKey(&req)
		if !keyed {
			t.Fatal("probe request failed to key")
		}
		if got, _ := co.ring.Lookup(key); got == owner {
			return req
		}
	}
	t.Fatalf("no probe request hashed to node %s", owner)
	return server.RunRequest{}
}

// TestBackpressureDemotion covers admission-feedback routing: a worker 429
// opens a demotion window sized by its Retry-After hint (capped), traffic
// skips the node for the window without dropping its ring arcs, and a
// fully backpressured fleet surfaces an aggregate 429 with the smallest
// remaining window.
func TestBackpressureDemotion(t *testing.T) {
	a, b := newStubWorker(t), newStubWorker(t)
	co, err := New(Config{Nodes: []string{a.srv.URL, b.srv.URL}, DemoteMax: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)
	cl := client.NewWith(client.Config{BaseURL: front.URL, MaxRetries: -1})

	req := keyedReqOwnedBy(t, co, a.id())
	busy := func(w http.ResponseWriter, r *http.Request) {
		stubJSON(w, http.StatusTooManyRequests, server.ErrorResponse{Error: "queue full", RetryAfterMs: 60_000})
	}
	a.onRun.Store(busy)

	// Owner 429s → demoted, request fails over to b and succeeds.
	if _, err := cl.Run(context.Background(), req); err != nil {
		t.Fatalf("failover run: %v", err)
	}
	if a.runs.Load() != 1 || b.runs.Load() != 1 {
		t.Fatalf("runs a=%d b=%d, want 1 and 1 (one refusal, one failover)", a.runs.Load(), b.runs.Load())
	}
	nodeA := co.nodes[a.id()]
	now := time.Now()
	if !nodeA.demoted(now) {
		t.Fatal("429 did not open a demotion window")
	}
	if win := time.Duration(nodeA.demotedUntil.Load() - now.UnixNano()); win > 5*time.Second {
		t.Fatalf("demotion window %v exceeds DemoteMax cap", win)
	}
	if !co.ring.Contains(a.id()) {
		t.Fatal("demotion must not drop ring membership (backpressure is transient, locality is not)")
	}
	if st := nodeA.row(now).State; st != "demoted" {
		t.Fatalf("health row state %q, want demoted", st)
	}

	// While demoted the owner is skipped outright.
	if _, err := cl.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if a.runs.Load() != 1 {
		t.Fatalf("demoted node was routed to again (runs=%d)", a.runs.Load())
	}

	// Demote b too: no candidate remains → aggregate 429 with a hint.
	b.onRun.Store(busy)
	_, err = cl.Run(context.Background(), req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("fully backpressured fleet returned %v, want aggregate 429", err)
	}
	if apiErr.Resp.RetryAfterMs <= 0 {
		t.Fatal("aggregate 429 carries no retry hint")
	}
}

// TestDrainSteering503 covers the node-leave protocol on the forward path:
// a worker answering 503 (its own graceful drain) is marked draining, its
// arcs reassign immediately, and the in-flight request fails over.
func TestDrainSteering503(t *testing.T) {
	a, b := newStubWorker(t), newStubWorker(t)
	co, err := New(Config{Nodes: []string{a.srv.URL, b.srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)
	cl := client.NewWith(client.Config{BaseURL: front.URL, MaxRetries: -1})

	req := keyedReqOwnedBy(t, co, a.id())
	a.onRun.Store(func(w http.ResponseWriter, r *http.Request) {
		stubJSON(w, http.StatusServiceUnavailable, server.ErrorResponse{Error: "server is draining", RetryAfterMs: 1000})
	})
	if _, err := cl.Run(context.Background(), req); err != nil {
		t.Fatalf("failover run: %v", err)
	}
	if co.nodes[a.id()].getState() != nodeDraining {
		t.Fatal("503 on the forward path did not mark the node draining")
	}
	if co.ring.Contains(a.id()) {
		t.Fatal("draining node kept its ring arcs")
	}
	if _, err := cl.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if a.runs.Load() != 1 {
		t.Fatalf("draining node was routed to again (runs=%d)", a.runs.Load())
	}
}

// TestHeartbeatEvictionAndRejoin runs the probe state machine against a
// worker that dies (listener gone) and later comes back on the same
// address: FailAfter consecutive missed beats evict it, a successful probe
// readmits it.
func TestHeartbeatEvictionAndRejoin(t *testing.T) {
	stay := newStubWorker(t)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		stubJSON(w, http.StatusOK, server.Health{Status: "ok", Workers: 1})
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)

	co, _ := startCoordinator(t, Config{
		Nodes:             []string{stay.srv.URL, "http://" + addr},
		HeartbeatInterval: 20 * time.Millisecond,
		FailAfter:         2,
		Registry:          obs.NewRegistry(),
	})
	flaky := co.nodes[addr]
	waitFor(t, "initial health", func() bool { return co.clusterHealth().NodesHealthy == 2 })

	hs.Close()
	waitFor(t, "eviction", func() bool { return flaky.getState() == nodeDead })
	if co.ring.Contains(addr) {
		t.Fatal("dead node kept its ring arcs")
	}
	if co.clusterHealth().NodesHealthy != 1 {
		t.Fatalf("healthz aggregation did not converge after eviction")
	}

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: mux}
	go hs2.Serve(ln2)
	t.Cleanup(func() { hs2.Close() })

	waitFor(t, "rejoin", func() bool { return flaky.getState() == nodeHealthy })
	if !co.ring.Contains(addr) {
		t.Fatal("rejoined node did not get its ring arcs back")
	}
	if got := co.obs.rejoins.Value(); got == 0 {
		t.Fatal("rejoin not counted")
	}
}

// TestWorkerDrainMidLoad is the in-process version of the CI smoke: two
// real workers under continuous mixed load through the coordinator, one
// drained mid-stream. With client retries disabled, zero failures proves
// the router's own failover absorbs the leave.
func TestWorkerDrainMidLoad(t *testing.T) {
	w1, base1 := startWorker(t, server.Config{Workers: 2})
	_, base2 := startWorker(t, server.Config{Workers: 2})
	_, base := startCoordinator(t, Config{
		Nodes:             []string{base1, base2},
		HeartbeatInterval: 25 * time.Millisecond,
	})

	progs := make([]string, 5)
	for i := range progs {
		progs[i] = farmtest.Generate(farmtest.Seed(2000 + i))
	}
	const loaders, perLoader = 4, 25
	var done atomic.Int64
	var errMu sync.Mutex
	var errs []error
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		// Let some load land first, then gracefully drain worker 1.
		for done.Load() < 20 {
			time.Sleep(time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		w1.Drain(ctx)
	}()
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			cl := client.NewWith(client.Config{BaseURL: base, MaxRetries: -1})
			for i := 0; i < perLoader; i++ {
				_, err := cl.Run(context.Background(), server.RunRequest{Src: progs[(l+i)%len(progs)], Ways: farmtest.Ways})
				if err != nil {
					errMu.Lock()
					errs = append(errs, err)
					errMu.Unlock()
				}
				done.Add(1)
			}
		}(l)
	}
	wg.Wait()
	<-drained
	if len(errs) != 0 {
		t.Fatalf("%d of %d requests failed across a graceful worker drain (first: %v)",
			len(errs), loaders*perLoader, errs[0])
	}
}

// TestAggregation exercises the fleet-facing read endpoints through the
// client superset decoders.
func TestAggregation(t *testing.T) {
	_, base1 := startWorker(t, server.Config{Workers: 2})
	_, base2 := startWorker(t, server.Config{Workers: 3})
	_, base := startCoordinator(t, Config{
		Nodes:             []string{base1, base2},
		HeartbeatInterval: 20 * time.Millisecond,
	})
	cl := client.NewWith(client.Config{BaseURL: base, MaxRetries: -1})

	waitFor(t, "health aggregation", func() bool {
		h, err := cl.ClusterHealth(context.Background())
		return err == nil && h.NodesHealthy == 2 && h.Workers == 5
	})
	h, err := cl.ClusterHealth(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Nodes) != 2 || h.Status != "ok" {
		t.Fatalf("cluster health %+v, want 2 node rows and status ok", h)
	}
	for _, row := range h.Nodes {
		if row.State != "healthy" || row.Workers == 0 {
			t.Fatalf("node row %+v, want healthy with probed worker count", row)
		}
	}

	bi, err := cl.ClusterBuildInfo(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bi.Workers != 5 {
		t.Fatalf("aggregate workers %d, want 5", bi.Workers)
	}
	if len(bi.Nodes) != 2 || bi.Nodes[0].Err != "" || bi.Nodes[1].Err != "" {
		t.Fatalf("build info rows %+v, want 2 reachable", bi.Nodes)
	}
	hasCluster := false
	for _, c := range bi.Capabilities {
		if c == "cluster" {
			hasCluster = true
		}
	}
	if !hasCluster {
		t.Fatalf("capabilities %v missing \"cluster\"", bi.Capabilities)
	}
	if bi.MaxWays == 0 || len(bi.Backends) == 0 {
		t.Fatalf("fleet ceilings not aggregated: %+v", bi)
	}
}

// TestRouteKeyStability pins the routing key's contract: deterministic,
// config-sensitive, and source/words-equivalent — the properties that make
// memo-hot routing work.
func TestRouteKeyStability(t *testing.T) {
	base := server.RunRequest{Src: "lex $1,7\nlex $2,9\n", Ways: 2}
	k1, ok1 := RouteKey(&base)
	again := base
	k2, ok2 := RouteKey(&again)
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("identical requests keyed differently: %x/%v vs %x/%v", k1, ok1, k2, ok2)
	}

	other := server.RunRequest{Src: "lex $1,8\nlex $2,9\n", Ways: 2}
	if k3, _ := RouteKey(&other); k3 == k1 {
		t.Fatal("different programs share a key")
	}
	wider := base
	wider.Ways = 3
	if k4, _ := RouteKey(&wider); k4 == k1 {
		t.Fatal("different configs share a key")
	}
	auto := base
	auto.Backend = "auto"
	if k5, _ := RouteKey(&auto); k5 == k1 {
		t.Fatal("auto-backend requests must key separately from dense ones")
	}
	piped := base
	piped.Mode = "pipelined"
	if k6, ok := RouteKey(&piped); !ok || k6 == k1 {
		t.Fatal("pipelined requests must key separately from scalar ones")
	}

	bad := server.RunRequest{Src: "bogus $9\n", Ways: 2}
	if _, ok := RouteKey(&bad); ok {
		t.Fatal("unassemblable source must fall back to unkeyed routing")
	}
	empty := server.RunRequest{}
	if _, ok := RouteKey(&empty); ok {
		t.Fatal("invalid request must fall back to unkeyed routing")
	}
}
