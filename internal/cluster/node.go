package cluster

// Node registry and lifecycle. Each worker is probed over its own
// /v1/healthz; the answer (or its absence) drives a small state machine:
//
//	healthy  — answering 200; in the ring, eligible for routing
//	draining — answering 503 (graceful SIGTERM drain in progress); removed
//	           from the ring so its hash arcs reassign to the successors
//	           before its listener closes, never routed new work
//	dead     — FailAfter consecutive probes failed outright; evicted from
//	           the ring until it answers again (rejoin restores its arcs)
//
// Demotion is orthogonal to the state: a healthy node that answered 429
// keeps its ring membership (the backpressure is transient, the cache
// locality is not) but is skipped by the candidate walk until the
// Retry-After window passes.

import (
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tangled/internal/client"
	"tangled/internal/server"
)

type nodeState int32

const (
	nodeHealthy nodeState = iota
	nodeDraining
	nodeDead
)

func (s nodeState) String() string {
	switch s {
	case nodeHealthy:
		return "healthy"
	case nodeDraining:
		return "draining"
	case nodeDead:
		return "dead"
	}
	return "unknown"
}

// node is one registered worker.
type node struct {
	id  string // URL sans scheme: the metrics label and health-row key
	url string

	// fwd forwards run/batch/assemble traffic with client-level retries
	// disabled: the router owns failure policy (failover to another node),
	// and a per-node retry against a saturated worker is exactly the
	// hot-loop the demotion window exists to prevent.
	fwd *client.Client
	// probe carries heartbeat and aggregation GETs with one client-level
	// retry, so a single transport flake doesn't consume a whole beat.
	// Both clients share one transport, hence one keep-alive pool.
	probe *client.Client

	inFlight     atomic.Int64  // requests this coordinator has on the node
	routed       atomic.Uint64 // requests answered by the node
	state        atomic.Int32  // nodeState
	missed       atomic.Int32  // consecutive failed probes
	demotedUntil atomic.Int64  // unixnano; 0 = not demoted

	mu         sync.Mutex
	lastHealth server.Health // most recent successful probe body
}

func newNode(rawURL string) *node {
	u := strings.TrimRight(rawURL, "/")
	id := strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://")
	h := &http.Client{}
	return &node{
		id:    id,
		url:   u,
		fwd:   client.NewWith(client.Config{BaseURL: u, HTTPClient: h, MaxRetries: -1}),
		probe: client.NewWith(client.Config{BaseURL: u, HTTPClient: h, MaxRetries: 1, BaseBackoff: 10 * time.Millisecond}),
	}
}

func (n *node) getState() nodeState { return nodeState(n.state.Load()) }

// demoted reports whether the node is inside a backpressure window.
func (n *node) demoted(now time.Time) bool {
	return n.demotedUntil.Load() > now.UnixNano()
}

// demote opens (or extends) the backpressure window.
func (n *node) demote(now time.Time, d time.Duration) {
	until := now.Add(d).UnixNano()
	for {
		cur := n.demotedUntil.Load()
		if cur >= until || n.demotedUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// eligible reports whether the candidate walk may route to the node.
func (n *node) eligible(now time.Time) bool {
	return n.getState() == nodeHealthy && !n.demoted(now)
}

func (n *node) setLastHealth(h server.Health) {
	n.mu.Lock()
	n.lastHealth = h
	n.mu.Unlock()
}

func (n *node) health() server.Health {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastHealth
}

// row renders the node's health aggregate entry.
func (n *node) row(now time.Time) server.NodeHealth {
	h := n.health()
	state := n.getState().String()
	var demotedMs int64
	if until := n.demotedUntil.Load(); until > now.UnixNano() {
		demotedMs = (until - now.UnixNano()) / int64(time.Millisecond)
		if state == "healthy" {
			state = "demoted"
		}
	}
	return server.NodeHealth{
		ID:          n.id,
		URL:         n.url,
		State:       state,
		MissedBeats: int(n.missed.Load()),
		DemotedMs:   demotedMs,
		InFlight:    n.inFlight.Load(),
		Routed:      n.routed.Load(),
		QueueDepth:  h.QueueDepth,
		Workers:     h.Workers,
		JobsDone:    h.JobsDone,
	}
}
