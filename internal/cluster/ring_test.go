package cluster

// Deterministic consistent-hashing properties. The rebalance-bounds test
// is the satellite's 3→4→3 pin: adding a node moves only the keys the new
// node now owns (≈ keys/nodes, bounded below ceil(keys/nodes)+slack —
// never a mod-N reshuffle), and removing it restores the original
// assignment exactly. Keys are derived the same way production keys are:
// memo ExecKeys folded to ring coordinates.

import (
	"testing"

	"tangled/internal/memo"
)

// testKeys derives n distinct memo-key ring coordinates deterministically.
func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		ek := memo.ExecKey{MaxSteps: 1000, Words: []uint16{uint16(i), uint16(i >> 16), 0x9}}
		keys[i] = ek.Sum().Uint64()
	}
	return keys
}

func assignAll(r *Ring, keys []uint64) map[uint64]string {
	out := make(map[uint64]string, len(keys))
	for _, k := range keys {
		n, ok := r.Lookup(k)
		if !ok {
			panic("empty ring")
		}
		out[k] = n
	}
	return out
}

func TestRingRebalanceBounds3to4to3(t *testing.T) {
	const K = 10_000
	keys := testKeys(K)
	r := NewRing(0)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	before := assignAll(r, keys)

	// Join: node d takes over only its own arcs.
	r.Add("d")
	after := assignAll(r, keys)
	moved := 0
	for _, k := range keys {
		if after[k] != before[k] {
			if after[k] != "d" {
				t.Fatalf("key %x moved %s→%s on join: only moves TO the new node are allowed",
					k, before[k], after[k])
			}
			moved++
		}
	}
	// Expected share is K/4; virtual-node variance bounds it well inside
	// ±50% of ceil(K/nodes). A mod-N reshuffle would move ~3/4 of keys.
	ideal := (K + 3) / 4
	if moved > ideal+ideal/2 {
		t.Fatalf("join moved %d keys, want ≤ %d (ceil(K/4)+50%% slack)", moved, ideal+ideal/2)
	}
	if moved < ideal/2 {
		t.Fatalf("join moved %d keys, want ≥ %d (new node must take a real share)", moved, ideal/2)
	}

	// Leave: the exact original assignment comes back — consistent
	// hashing is memoryless in membership.
	r.Remove("d")
	restored := assignAll(r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %x owned by %s after leave, was %s before join", k, restored[k], before[k])
		}
	}
}

func TestRingBalance(t *testing.T) {
	const K = 30_000
	keys := testKeys(K)
	r := NewRing(0)
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := make(map[string]int)
	for _, k := range keys {
		n, _ := r.Lookup(k)
		counts[n]++
	}
	ideal := K / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < ideal/2 || c > ideal*2 {
			t.Fatalf("node %s owns %d keys, want within [%d,%d] of ideal %d", n, c, ideal/2, ideal*2, ideal)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	r := NewRing(16)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	keys := testKeys(64)
	for _, k := range keys {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("successors(%x) = %v, want 3 distinct nodes", k, succ)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("successors(%x) = %v has a duplicate", k, succ)
			}
			seen[s] = true
		}
		owner, _ := r.Lookup(k)
		if succ[0] != owner {
			t.Fatalf("successors(%x)[0] = %s, owner = %s", k, succ[0], owner)
		}
	}
	if got := r.Successors(keys[0], 10); len(got) != 3 {
		t.Fatalf("successors capped at membership: got %v", got)
	}
	r.Remove("a")
	r.Remove("b")
	r.Remove("c")
	if got := r.Successors(keys[0], 2); got != nil {
		t.Fatalf("empty ring successors = %v, want nil", got)
	}
	if _, ok := r.Lookup(keys[0]); ok {
		t.Fatal("empty ring Lookup must report !ok")
	}
}
