package cluster

// The cluster_* metric family. Per-node series carry the node ID as a
// dynamic label (obs.CounterSet / obs.GaugeVec — node sets are a serving-
// time population); fleet-wide totals are plain counters. All handles are
// nil-safe, so a coordinator without a registry pays nothing.

import "tangled/internal/obs"

type clusterObs struct {
	routed     *obs.Counter    // requests answered by some node
	keyed      *obs.Counter    // routed by memo-key ring lookup
	unkeyed    *obs.Counter    // routed by least-in-flight fallback
	failovers  *obs.Counter    // forwards retried on another node
	noNode     *obs.Counter    // requests refused: no eligible node
	demotions  *obs.Counter    // 429/Retry-After backpressure windows opened
	evictions  *obs.Counter    // nodes marked dead after missed beats
	rejoins    *obs.Counter    // dead nodes re-admitted
	probes     *obs.Counter    // heartbeat probes sent
	probeFails *obs.Counter    // heartbeat probes that failed outright
	nodeRouted *obs.CounterSet // per-node requests answered
	nodeRetry  *obs.CounterSet // per-node forward failures (failed over)
	nodeInFly  *obs.GaugeVec   // per-node in-flight (coordinator view)
	nodeUp     *obs.GaugeVec   // per-node health: 2 healthy, 1 draining, 0 dead
	healthyN   *obs.Gauge      // nodes currently eligible for routing
}

func newClusterObs(r *obs.Registry) *clusterObs {
	return &clusterObs{
		routed:     r.Counter("cluster_routed_total", "requests answered by a worker node"),
		keyed:      r.Counter("cluster_keyed_routes_total", "requests routed by memo-key ring lookup"),
		unkeyed:    r.Counter("cluster_unkeyed_routes_total", "requests routed by least-in-flight fallback"),
		failovers:  r.Counter("cluster_failovers_total", "forwards retried on another node"),
		noNode:     r.Counter("cluster_no_node_total", "requests refused with no eligible node"),
		demotions:  r.Counter("cluster_demotions_total", "backpressure demotion windows opened"),
		evictions:  r.Counter("cluster_evictions_total", "nodes evicted after missed heartbeats"),
		rejoins:    r.Counter("cluster_rejoins_total", "evicted nodes re-admitted"),
		probes:     r.Counter("cluster_heartbeat_probes_total", "heartbeat probes sent"),
		probeFails: r.Counter("cluster_heartbeat_failures_total", "heartbeat probes failed"),
		nodeRouted: r.CounterSet("cluster_node_routed_total", "requests answered, per node", "node"),
		nodeRetry:  r.CounterSet("cluster_node_retried_total", "forward failures failed over, per node", "node"),
		nodeInFly:  r.GaugeVec("cluster_node_in_flight", "coordinator-side in-flight requests, per node", "node"),
		nodeUp:     r.GaugeVec("cluster_node_health", "node health: 2 healthy, 1 draining, 0 dead", "node"),
		healthyN:   r.Gauge("cluster_nodes_healthy", "nodes currently eligible for routing"),
	}
}

// observe refreshes the per-node gauges from the registry's state.
func (o *clusterObs) observe(nodes []*node) {
	healthy := 0
	for _, n := range nodes {
		st := n.getState()
		var v int64
		switch st {
		case nodeHealthy:
			v = 2
			healthy++
		case nodeDraining:
			v = 1
		}
		o.nodeUp.With(n.id).Set(v)
		o.nodeInFly.With(n.id).Set(n.inFlight.Load())
	}
	o.healthyN.Set(int64(healthy))
}
