package cluster

// Batch routing: a batch is split per owning node (each program keyed like
// a single run), the sub-batches execute in parallel, and the merged
// stream comes back in input order under the same versioned results
// header a single server writes — so a client cannot tell a routed batch
// from a direct one. A sub-batch whose node fails mid-flight fails over as
// a unit to the next candidate; only when a program exhausts every node
// does the merged stream carry a synthesized per-program failure record.

import (
	"encoding/json"
	"net/http"
	"sync"

	"tangled/internal/client"
	"tangled/internal/server"
)

// batchItem is one program with its original position.
type batchItem struct {
	idx int
	req server.RunRequest
	key uint64
	ok  bool // keyed
}

func (co *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq server.BatchRequest
	if err := co.decodeBody(w, r, &breq); err != nil {
		co.writeError(w, http.StatusBadRequest, server.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(breq.Programs) == 0 {
		co.writeError(w, http.StatusBadRequest, server.ErrorResponse{Error: "batch has no programs"})
		return
	}
	if breq.ID == "" {
		breq.ID = client.NewRequestID()
	}
	items := make([]*batchItem, len(breq.Programs))
	for i := range breq.Programs {
		it := &batchItem{idx: i, req: breq.Programs[i]}
		// Derive per-program IDs the way a worker would, but here at the
		// router — so a failed-over sub-batch replays identical IDs.
		if it.req.ID == "" {
			it.req.ID = server.DeriveBatchProgramID(breq.ID, it.idx)
		}
		it.key, it.ok = RouteKey(&it.req)
		if it.ok {
			co.obs.keyed.Inc()
		} else {
			co.obs.unkeyed.Inc()
		}
		items[i] = it
	}

	results := make([]server.RunResult, len(items))
	var wg sync.WaitGroup
	for _, group := range co.groupByNode(items, nil) {
		wg.Add(1)
		go func(n *node, group []*batchItem) {
			defer wg.Done()
			co.forwardGroup(r, breq.ID, n, group, results, map[*node]bool{})
		}(group.n, group.items)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Request-ID", breq.ID)
	enc := json.NewEncoder(w)
	enc.Encode(server.ResultsHeader{Schema: server.ResultsSchema, Version: server.ResultsSchemaVersion, Count: len(results)})
	for i := range results {
		results[i].Index = i
		enc.Encode(&results[i])
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// nodeGroup is one node's share of a batch.
type nodeGroup struct {
	n     *node
	items []*batchItem
}

// groupByNode assigns each program to its best candidate not in excluded:
// ring owner for keyed programs, least-in-flight rotation for the rest.
// Programs with no available node get a synthesized refusal later.
func (co *Coordinator) groupByNode(items []*batchItem, excluded map[*node]bool) []nodeGroup {
	byNode := make(map[*node][]*batchItem)
	var order []*node
	for _, it := range items {
		var target *node
		for _, n := range co.candidates(it.key, it.ok) {
			if !excluded[n] {
				target = n
				break
			}
		}
		if target == nil {
			continue
		}
		if _, seen := byNode[target]; !seen {
			order = append(order, target)
		}
		byNode[target] = append(byNode[target], it)
	}
	out := make([]nodeGroup, 0, len(order))
	for _, n := range order {
		out = append(out, nodeGroup{n, byNode[n]})
	}
	return out
}

// forwardGroup sends one node's sub-batch and scatters its results back to
// the original indices. On a node-level failure it reassigns the whole
// group (minus that node) and recurses; programs that run out of nodes get
// per-program failure records so the merged stream still carries one line
// per program.
func (co *Coordinator) forwardGroup(r *http.Request, batchID string, n *node, group []*batchItem, results []server.RunResult, tried map[*node]bool) {
	tried[n] = true
	sub := server.BatchRequest{ID: batchID, Programs: make([]server.RunRequest, len(group))}
	for i, it := range group {
		sub.Programs[i] = it.req
	}
	n.inFlight.Add(int64(len(group)))
	subResults, err := n.fwd.Batch(r.Context(), sub)
	n.inFlight.Add(-int64(len(group)))
	if err == nil && len(subResults) == len(group) {
		n.routed.Add(uint64(len(group)))
		co.obs.routed.Add(uint64(len(group)))
		co.obs.nodeRouted.With(n.id).Add(uint64(len(group)))
		for i, it := range group {
			results[it.idx] = subResults[i]
		}
		return
	}
	if r.Context().Err() != nil {
		co.failGroup(group, results, server.StatusClientClosedRequest, "client disconnected")
		return
	}
	if err == nil {
		// A worker answering with the wrong result count is a protocol
		// fault; don't re-execute (some programs may have run) — report.
		co.failGroup(group, results, http.StatusBadGateway, "worker returned mismatched batch result count")
		return
	}
	failover, relay := co.noteForwardFailure(n, err)
	if !failover {
		// Authoritative per-batch refusal (bad program, strict-lint 422):
		// surface it on every program of this group, like the worker's own
		// whole-batch error but without losing the other groups' results.
		co.failGroup(group, results, relay.Status, relay.Resp.Error)
		return
	}
	co.obs.failovers.Inc()
	regrouped := co.groupByNode(group, tried)
	assigned := make(map[*batchItem]bool)
	var wg sync.WaitGroup
	for _, g := range regrouped {
		for _, it := range g.items {
			assigned[it] = true
		}
		wg.Add(1)
		go func(g nodeGroup) {
			defer wg.Done()
			co.forwardGroup(r, batchID, g.n, g.items, results, tried)
		}(g)
	}
	wg.Wait()
	var exhausted []*batchItem
	for _, it := range group {
		if !assigned[it] {
			exhausted = append(exhausted, it)
		}
	}
	if len(exhausted) > 0 {
		status, resp := co.refusal()
		co.failGroup(exhausted, results, status, resp.Error)
	}
}

// failGroup synthesizes failure records for programs that could not be
// served, in the worker's own per-record error form.
func (co *Coordinator) failGroup(group []*batchItem, results []server.RunResult, code int, msg string) {
	for _, it := range group {
		results[it.idx] = server.RunResult{ID: it.req.ID, Error: msg, Code: code}
	}
}
