package lint

// Structural checks over the CFG (decode failures, reachability, halting,
// inescapable loops) and the static energy estimate.

import (
	"fmt"

	"tangled/internal/energy"
	"tangled/internal/isa"
)

// checkDecode reports reachable control transfers into words that are not
// instructions: undecodable words and entries into the middle of a two-word
// instruction. (Transfers past the end and into data are halting problems,
// handled by checkHalt.)
func (g *cfg) checkDecode(r *Report) {
	for _, e := range dedupEdges(g.badEdges) {
		if e.to >= g.n {
			continue
		}
		if msg, ok := g.bad[e.to]; ok {
			r.add(Diagnostic{Check: CheckIllegalInst, Severity: Error,
				Addr: e.from.addr, Line: e.from.line,
				Msg: fmt.Sprintf("control reaches word %#04x, which does not decode (%s)", e.to, msg)})
			continue
		}
		if !g.data[e.to] && !g.markedData(e.to) {
			r.add(Diagnostic{Check: CheckIllegalInst, Severity: Error,
				Addr: e.from.addr, Line: e.from.line,
				Msg: fmt.Sprintf("control transfers into the middle of the two-word instruction at %#04x", e.to)})
		}
	}
}

// checkHalt reports paths that certainly fail to halt cleanly: falling off
// the end of the image, running into data, and programs where no sys
// instruction is reachable at all.
func (g *cfg) checkHalt(r *Report) {
	for _, e := range dedupEdges(g.badEdges) {
		switch {
		case e.to >= g.n:
			verb := "branches"
			if e.fall {
				verb = "falls off the end of the program"
				r.add(Diagnostic{Check: CheckNoHalt, Severity: Error,
					Addr: e.from.addr, Line: e.from.line,
					Msg: "execution " + verb + " into zeroed memory and cannot halt"})
				continue
			}
			r.add(Diagnostic{Check: CheckNoHalt, Severity: Error,
				Addr: e.from.addr, Line: e.from.line,
				Msg: fmt.Sprintf("%s past the end of the program (target %#04x)", verb, e.to)})
		case g.data[e.to] || g.markedData(e.to):
			if _, bad := g.bad[e.to]; bad {
				continue // reported by checkDecode
			}
			verb := "jumps into"
			if e.fall {
				verb = "falls through into"
			}
			r.add(Diagnostic{Check: CheckNoHalt, Severity: Error,
				Addr: e.from.addr, Line: e.from.line,
				Msg: fmt.Sprintf("execution %s the data word at %#04x", verb, e.to)})
		}
	}
	for _, addr := range g.order {
		if g.reach[addr] && g.insts[addr].eff.MayHalt {
			return
		}
	}
	// No reachable sys. On an imprecise graph a sys that merely exists
	// might still be reached through an unresolved jumpr, so only report
	// when none exists at all.
	if g.imprecise {
		for _, addr := range g.order {
			if g.insts[addr].eff.MayHalt {
				return
			}
		}
	}
	r.add(Diagnostic{Check: CheckNoHalt, Severity: Error, Addr: 0, Line: g.lineOf(0),
		Msg: "no sys instruction is reachable: the program cannot halt"})
}

// dedupEdges collapses duplicate (from, to) bad edges, preserving order.
func dedupEdges(edges []badEdge) []badEdge {
	type key struct{ from, to uint16 }
	seen := make(map[key]bool, len(edges))
	out := edges[:0:0]
	for _, e := range edges {
		k := key{e.from.addr, e.to}
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

// checkReachability reports maximal runs of instructions no execution can
// reach. When the image carries no assembler code/data marks an unreached
// region may simply be data the sweep happened to decode, so the finding is
// downgraded to Info.
func (g *cfg) checkReachability(r *Report) {
	sev := Warning
	if len(g.p.Data) != len(g.p.Words) {
		sev = Info
	}
	var start, end, count int = -1, 0, 0
	flush := func() {
		if start < 0 {
			return
		}
		first := g.insts[g.order[start]]
		last := g.insts[g.order[end]]
		r.add(Diagnostic{Check: CheckUnreachable, Severity: sev,
			Addr: first.addr, Line: first.line,
			Msg: fmt.Sprintf("unreachable code: %d instruction(s) at %#04x..%#04x are never executed",
				count, first.addr, last.addr+last.words-1)})
		start, count = -1, 0
	}
	for i, addr := range g.order {
		if g.reach[addr] {
			flush()
			continue
		}
		in := g.insts[addr]
		contiguous := start >= 0 && in.prevOK && in.prev == g.order[end]
		if !contiguous {
			flush()
			start = i
		}
		end = i
		count++
	}
	flush()
}

// checkSelfLoops reports reachable cycles control flow cannot leave: every
// edge stays inside the strongly connected component, no member can halt,
// and no member has an unknown (indirect) exit.
func (g *cfg) checkSelfLoops(r *Report) {
	if len(g.blocks) == 0 {
		return
	}
	nSCC := 0
	for _, b := range g.blocks {
		if b.sccID >= nSCC {
			nSCC = b.sccID + 1
		}
	}
	type sccInfo struct {
		blocks  []*block
		cyclic  bool
		escapes bool
		halts   bool
	}
	sccs := make([]sccInfo, nSCC)
	for _, b := range g.blocks {
		s := &sccs[b.sccID]
		s.blocks = append(s.blocks, b)
		if b.inLoop {
			s.cyclic = true
		}
		if b.mayHalt {
			s.halts = true
		}
		if b.exitsUnknown {
			s.escapes = true
		}
		for _, succ := range b.succs {
			if g.blocks[succ].sccID != b.sccID {
				s.escapes = true
			}
		}
	}
	for _, s := range sccs {
		if !s.cyclic || s.escapes || s.halts {
			continue
		}
		first := s.blocks[0]
		for _, b := range s.blocks[1:] {
			if b.start() < first.start() {
				first = b
			}
		}
		msg := "unconditional self-jump: the instruction loops forever"
		if len(s.blocks) > 1 || len(first.insts) > 1 {
			msg = fmt.Sprintf("control flow cannot leave the loop at %#04x (no exit edge, no sys)", first.start())
		}
		r.add(Diagnostic{Check: CheckSelfLoop, Severity: Error,
			Addr: first.start(), Line: first.insts[0].line, Msg: msg})
	}
}

// checkHadRange reports reachable had instructions whose pattern index is
// out of range for the assumed entanglement degree: at run time qat.Exec
// fails such an instruction, stopping the machine mid-program. At the
// default full-hardware assumption (16 ways) the 4-bit pattern field cannot
// exceed the range, so the check only fires when the caller pins a smaller
// degree.
func (g *cfg) checkHadRange(r *Report) {
	for _, addr := range g.order {
		if !g.reach[addr] {
			continue
		}
		in := g.insts[addr]
		if in.inst.Op == isa.OpQHad && int(in.inst.K) >= g.opts.Ways {
			r.add(Diagnostic{Check: CheckHadRange, Severity: Warning,
				Addr: addr, Line: in.line,
				Msg: fmt.Sprintf("had pattern %d requires at least %d ways but the analysis assumes %d: the instruction faults at run time",
					in.inst.K, int(in.inst.K)+1, g.opts.Ways)})
		}
	}
}

// checkCosts computes per-block static energy bounds via energy.StaticCost
// and flags loop blocks whose per-iteration erasure exceeds the configured
// budget — statically visible Landauer cost, the lint-time analogue of the
// paper's adiabatic-power argument.
func (g *cfg) checkCosts(r *Report, opts Options) {
	for _, b := range g.blocks {
		var bc BlockCost
		bc.Start, bc.End = b.start(), b.end()
		bc.Line = b.insts[0].line
		bc.InLoop = b.inLoop
		for _, ins := range b.insts {
			op := ins.inst.Op
			if !op.IsQat() {
				continue
			}
			bc.QatOps++
			switch energy.Classify(op) {
			case energy.Reversible:
				bc.ReversibleOps++
			case energy.Irreversible:
				bc.IrreversibleOps++
			}
			sw, er := energy.StaticCost(op, opts.Ways)
			bc.SwitchedBitsMax += sw
			bc.ErasedBitsMax += er
		}
		if bc.QatOps == 0 {
			continue
		}
		r.Blocks = append(r.Blocks, bc)
		if b.inLoop && bc.ErasedBitsMax > opts.HotErasedBits {
			r.add(Diagnostic{Check: CheckHotBlock, Severity: Info,
				Addr: bc.Start, Line: bc.Line,
				Msg: fmt.Sprintf("loop block erases up to %d bits per iteration (budget %d): consider the reversible compilation",
					bc.ErasedBitsMax, opts.HotErasedBits)})
		}
	}
}
