package lint

// Control-flow graph reconstruction from an assembled word image.
//
// Instructions are recovered by a linear sweep that respects the
// assembler's code/data marks when present (asm.Program.Data) and falls
// back to treating undecodable words as data for bare word images. On top
// of the instruction stream:
//
//   - branch successors follow the execute semantics of package cpu
//     (target = addr + length + imm);
//   - the brf/brt complementary pair the assembler's br pseudo emits is
//     recognized as a single unconditional transfer, so code after it is
//     not spuriously considered reachable;
//   - jumpr targets are resolved by constant propagation over lex/lhi
//     (the jump pseudo's expansion), restarted at every join point (label,
//     branch target, run break); a jumpr whose register is not a known
//     constant is an indirect exit, which makes the graph imprecise and
//     widens reachability roots to every labeled instruction.

import (
	"fmt"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/isa"
)

// instNode is one decoded instruction.
type instNode struct {
	addr  uint16
	inst  isa.Inst
	words uint16
	line  int
	eff   isa.Effects
	// prevOK/prev locate the instruction immediately before this one in
	// the same linear run, for the brf/brt pair peephole.
	prevOK bool
	prev   uint16
	// pairBr marks both halves of the complementary brf/brt pair the br
	// pseudo emits: together they transfer unconditionally, so neither
	// half's behavior observably depends on the condition register.
	pairBr bool
}

// block is one basic block over reachable instructions.
type block struct {
	id    int
	insts []*instNode
	succs []int
	preds []int
	// exitsUnknown marks conservative exits: an unresolved jumpr, or a
	// control transfer into a non-instruction word (already diagnosed).
	exitsUnknown bool
	mayHalt      bool
	inLoop       bool
	sccID        int
}

func (b *block) start() uint16 { return b.insts[0].addr }
func (b *block) end() uint16 {
	last := b.insts[len(b.insts)-1]
	return last.addr + last.words
}

// badEdge is a control transfer from a reachable instruction to a word that
// is not an instruction.
type badEdge struct {
	from *instNode
	to   uint16
	fall bool // fall-through rather than branch/jump
}

type cfg struct {
	p    *asm.Program
	opts Options
	n    uint16 // program length in words

	insts map[uint16]*instNode
	order []uint16 // sorted instruction addresses

	data map[uint16]bool   // words known or assumed to be data
	bad  map[uint16]string // words that failed to decode (unknown-layout images)

	jumprTo  map[uint16]uint16 // resolved jumpr targets by instruction addr
	indirect map[uint16]bool   // unresolved jumpr instruction addrs
	haltAt   map[uint16]bool   // sys instructions that certainly halt ($0 == SysHalt)

	reach     map[uint16]bool
	badEdges  []badEdge
	imprecise bool

	blocks  []*block
	blockOf map[uint16]int // instruction addr -> block id (reachable only)
}

// buildCFG decodes, resolves jump targets, computes reachability and forms
// basic blocks.
func buildCFG(p *asm.Program, opts Options) *cfg {
	g := &cfg{
		p:        p,
		opts:     opts,
		n:        uint16(len(p.Words)),
		insts:    make(map[uint16]*instNode),
		data:     make(map[uint16]bool),
		bad:      make(map[uint16]string),
		jumprTo:  make(map[uint16]uint16),
		indirect: make(map[uint16]bool),
		haltAt:   make(map[uint16]bool),
		reach:    make(map[uint16]bool),
		blockOf:  make(map[uint16]int),
	}
	g.decode()
	g.markPairs()
	g.resolveJumpr()
	g.computeReach()
	g.formBlocks()
	return g
}

// markPairs flags the brf/brt complementary pairs emitted by the br pseudo.
func (g *cfg) markPairs() {
	for _, addr := range g.order {
		in := g.insts[addr]
		if in.inst.Op != isa.OpBrt || !in.prevOK {
			continue
		}
		if p, ok := g.insts[in.prev]; ok && p.inst.Op == isa.OpBrf &&
			p.inst.RD == in.inst.RD && branchTarget(p) == branchTarget(in) {
			p.pairBr, in.pairBr = true, true
		}
	}
}

// markedData reports the assembler's code/data verdict for word addr, when
// the program carries one.
func (g *cfg) markedData(addr uint16) bool {
	return len(g.p.Data) == len(g.p.Words) && g.p.Data[addr]
}

// dataSymbol reports that label address a points into a data region by any
// evidence the image carries: the sweep's own classification (marked data,
// undecodable words), or a data mark in a partial-length Data slice. The
// sweep only trusts full-length marks for stream breaking (markedData), so
// in a partial-marks image a data word that happens to decode still enters
// g.insts — such an address must never become a reachability root, or the
// imprecise-mode widening decodes garbage blocks and poisons liveness.
func (g *cfg) dataSymbol(a uint16) bool {
	if g.data[a] {
		return true
	}
	return int(a) < len(g.p.Data) && g.p.Data[a]
}

// lineOf maps a word address to its 1-based source line (0 when unknown).
func (g *cfg) lineOf(addr uint16) int {
	if int(addr) < len(g.p.Source) {
		return g.p.Source[addr]
	}
	return 0
}

// decode performs the linear sweep. Words marked as data by the assembler
// break the instruction stream; in unmarked images an undecodable word is
// recorded in g.bad, treated as data, and the sweep resumes at the next
// word.
func (g *cfg) decode() {
	var prev *instNode
	for addr := uint16(0); addr < g.n; {
		if g.markedData(addr) {
			g.data[addr] = true
			prev = nil
			addr++
			continue
		}
		w0 := g.p.Words[addr]
		var w1 uint16
		if addr+1 < g.n && !g.markedData(addr+1) {
			w1 = g.p.Words[addr+1]
		}
		inst, n, err := g.opts.Enc.Decode(w0, w1)
		if err == nil && n == 2 && (addr+1 >= g.n || g.markedData(addr+1)) {
			err = fmt.Errorf("two-word instruction truncated at %#04x", addr)
		}
		if err != nil {
			g.bad[addr] = err.Error()
			g.data[addr] = true
			prev = nil
			addr++
			continue
		}
		in := &instNode{
			addr:  addr,
			inst:  inst,
			words: uint16(n),
			line:  g.lineOf(addr),
			eff:   isa.InstEffects(inst),
		}
		if prev != nil {
			in.prevOK, in.prev = true, prev.addr
		}
		g.insts[addr] = in
		g.order = append(g.order, addr)
		prev = in
		addr += uint16(n)
	}
}

// branchTarget computes a brf/brt target following cpu.Step: the PC has
// already advanced past the instruction when the offset is applied.
func branchTarget(in *instNode) uint16 {
	return in.addr + in.words + uint16(int16(in.inst.Imm))
}

// resolveJumpr propagates lex/lhi constants to jumpr instructions. The
// propagation restarts at every join point: run breaks, labels, static
// branch targets, and (iteratively) already-resolved jumpr targets — so a
// constant is only trusted when every path to the jumpr agrees trivially.
func (g *cfg) resolveJumpr() {
	joins := make(map[uint16]bool)
	for _, a := range g.p.Symbols {
		joins[a] = true
	}
	for _, addr := range g.order {
		in := g.insts[addr]
		switch in.inst.Op {
		case isa.OpBrf, isa.OpBrt:
			joins[branchTarget(in)] = true
			joins[in.addr+in.words] = true
		}
	}
	for iter := 0; iter < 4; iter++ {
		resolved := g.constPass(joins)
		changed := false
		for _, t := range resolved {
			if !joins[t] {
				joins[t] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// constPass runs one constant-propagation sweep, filling g.jumprTo and
// g.indirect, and returns the targets resolved this pass.
func (g *cfg) constPass(joins map[uint16]bool) []uint16 {
	var known uint16 // bitmask of registers with known constants
	var vals [isa.NumRegs]uint16
	var targets []uint16
	var prev *instNode
	for _, addr := range g.order {
		in := g.insts[addr]
		if joins[addr] || prev == nil || !in.prevOK || in.prev != prev.addr {
			known = 0
			// The loader zeroes every register, so at the true entry —
			// unless address 0 is also a join target — all constants are
			// known to be zero.
			if addr == 0 && !joins[0] {
				known = 1<<isa.NumRegs - 1
				vals = [isa.NumRegs]uint16{}
			}
		}
		switch in.inst.Op {
		case isa.OpLex:
			vals[in.inst.RD] = uint16(int16(in.inst.Imm))
			known |= 1 << in.inst.RD
		case isa.OpLhi:
			if known&(1<<in.inst.RD) != 0 {
				vals[in.inst.RD] = vals[in.inst.RD]&0x00FF | uint16(uint8(in.inst.Imm))<<8
			}
		case isa.OpJumpr:
			delete(g.jumprTo, addr)
			delete(g.indirect, addr)
			if known&(1<<in.inst.RD) != 0 {
				g.jumprTo[addr] = vals[in.inst.RD]
				targets = append(targets, vals[in.inst.RD])
			} else {
				g.indirect[addr] = true
			}
		case isa.OpSys:
			delete(g.haltAt, addr)
			if known&1 != 0 && vals[0] == cpu.SysHalt {
				g.haltAt[addr] = true
			}
		default:
			known &^= in.eff.WriteRegs
		}
		prev = in
	}
	return targets
}

// succInfo describes where control can go after one instruction.
type succInfo struct {
	targets []uint16
	unknown bool // unresolved indirect jump
}

// succsOf computes an instruction's successor addresses (which may point at
// non-instruction words — the caller classifies those).
func (g *cfg) succsOf(in *instNode) succInfo {
	next := in.addr + in.words
	switch in.inst.Op {
	case isa.OpJumpr:
		if t, ok := g.jumprTo[in.addr]; ok {
			return succInfo{targets: []uint16{t}}
		}
		return succInfo{unknown: true}
	case isa.OpBrf:
		return succInfo{targets: dedup(next, branchTarget(in))}
	case isa.OpBrt:
		t := branchTarget(in)
		// The second half of a br pair transfers unconditionally: whatever
		// the register holds, either the brf already fired or this fires.
		if in.pairBr {
			return succInfo{targets: []uint16{t}}
		}
		return succInfo{targets: dedup(next, t)}
	case isa.OpSys:
		// A sys whose $0 is the known constant SysHalt certainly stops the
		// machine: the canonical `lex $0, 0; sys` epilogue does not fall
		// through off the end of the image.
		if g.haltAt[in.addr] {
			return succInfo{}
		}
		return succInfo{targets: []uint16{next}}
	default:
		return succInfo{targets: []uint16{next}}
	}
}

func dedup(a, b uint16) []uint16 {
	if a == b {
		return []uint16{a}
	}
	return []uint16{a, b}
}

// computeReach runs BFS from address 0; when an unresolved indirect jump is
// reachable the graph is imprecise, so every labeled instruction is added
// as a root (functions invoked through computed addresses) and the sweep
// repeats. Control transfers into non-instruction words are collected as
// badEdges for the halt/illegal checks.
func (g *cfg) computeReach() {
	roots := []uint16{0}
	for pass := 0; pass < 2; pass++ {
		g.reach = make(map[uint16]bool)
		g.badEdges = nil
		g.imprecise = false
		work := append([]uint16(nil), roots...)
		for len(work) > 0 {
			addr := work[len(work)-1]
			work = work[:len(work)-1]
			in, ok := g.insts[addr]
			if !ok || g.reach[addr] {
				continue
			}
			g.reach[addr] = true
			si := g.succsOf(in)
			if si.unknown {
				g.imprecise = true
				continue
			}
			for _, t := range si.targets {
				if _, ok := g.insts[t]; ok {
					if !g.reach[t] {
						work = append(work, t)
					}
				} else {
					g.badEdges = append(g.badEdges, badEdge{from: in, to: t, fall: t == in.addr+in.words && in.inst.Op != isa.OpJumpr})
				}
			}
		}
		if !g.imprecise {
			return
		}
		// Imprecise graph: widen the roots to every labeled instruction
		// and redo the sweep once.
		if pass == 0 {
			for _, a := range g.p.Symbols {
				// Only labels on decoded instructions outside data regions
				// qualify: a label into a data-marked word (a jump table,
				// say) is not an entry point even when the word decodes.
				if _, ok := g.insts[a]; ok && !g.dataSymbol(a) {
					roots = append(roots, a)
				}
			}
		}
	}
}

// formBlocks groups reachable instructions into basic blocks and wires
// block-level successor/predecessor edges.
func (g *cfg) formBlocks() {
	leaders := map[uint16]bool{0: true}
	for _, a := range g.p.Symbols {
		if g.reach[a] {
			leaders[a] = true
		}
	}
	for _, addr := range g.order {
		if !g.reach[addr] {
			continue
		}
		in := g.insts[addr]
		si := g.succsOf(in)
		isTransfer := in.eff.Control
		for _, t := range si.targets {
			if isTransfer && g.reach[t] {
				leaders[t] = true
			}
		}
		if isTransfer {
			leaders[in.addr+in.words] = true
		}
	}
	var cur *block
	var prevIn *instNode
	for _, addr := range g.order {
		if !g.reach[addr] {
			prevIn = nil
			continue
		}
		in := g.insts[addr]
		brk := cur == nil || leaders[addr] || prevIn == nil || !in.prevOK || in.prev != prevIn.addr
		if brk {
			cur = &block{id: len(g.blocks)}
			g.blocks = append(g.blocks, cur)
		}
		cur.insts = append(cur.insts, in)
		g.blockOf[addr] = cur.id
		if in.eff.MayHalt {
			cur.mayHalt = true
		}
		prevIn = in
	}
	for _, b := range g.blocks {
		last := b.insts[len(b.insts)-1]
		si := g.succsOf(last)
		if si.unknown {
			b.exitsUnknown = true
			continue
		}
		seen := map[int]bool{}
		for _, t := range si.targets {
			if id, ok := g.blockOf[t]; ok {
				if !seen[id] {
					seen[id] = true
					b.succs = append(b.succs, id)
					g.blocks[id].preds = append(g.blocks[id].preds, b.id)
				}
			} else {
				// Transfer into a non-instruction word: diagnosed via
				// badEdges; conservatively an unknown exit.
				b.exitsUnknown = true
			}
		}
	}
	g.markLoops()
}

// markLoops runs an iterative Tarjan SCC pass and marks every block on a
// cycle (an SCC of size > 1, or a self-edge).
func (g *cfg) markLoops() {
	n := len(g.blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	sccN := 0

	type frame struct{ v, ei int }
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{start, 0}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(g.blocks[v].succs) {
				w := g.blocks[v].succs[f.ei]
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				for _, w := range comp {
					g.blocks[w].sccID = sccN
				}
				if len(comp) > 1 {
					for _, w := range comp {
						g.blocks[w].inLoop = true
					}
				} else {
					b := g.blocks[comp[0]]
					for _, s := range b.succs {
						if s == b.id {
							b.inLoop = true
						}
					}
				}
				sccN++
			}
		}
	}
}
