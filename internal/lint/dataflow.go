package lint

// Register dataflow over the reachable CFG: definite assignment (a forward
// must-analysis, for use-before-def) and liveness (a backward may-analysis,
// for dead stores). Both treat the 16 Tangled registers and the 256 Qat
// registers uniformly through regset.

import (
	"fmt"

	"tangled/internal/isa"
)

// regset is a bitset over the 16 Tangled registers and 256 Qat registers.
type regset struct {
	cpu uint16
	qat [4]uint64
}

var fullSet = regset{
	cpu: 0xFFFF,
	qat: [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
}

var allCPUSet = regset{cpu: 0xFFFF}

func (s *regset) addCPU(r uint8)     { s.cpu |= 1 << (r & 0xF) }
func (s regset) hasCPU(r uint8) bool { return s.cpu&(1<<(r&0xF)) != 0 }
func (s *regset) addQat(q uint8)     { s.qat[q>>6] |= 1 << (q & 63) }
func (s regset) hasQat(q uint8) bool { return s.qat[q>>6]&(1<<(q&63)) != 0 }

func (s regset) union(o regset) regset {
	s.cpu |= o.cpu
	for i := range s.qat {
		s.qat[i] |= o.qat[i]
	}
	return s
}

func (s regset) intersect(o regset) regset {
	s.cpu &= o.cpu
	for i := range s.qat {
		s.qat[i] &= o.qat[i]
	}
	return s
}

// diff removes o's members from s.
func (s regset) diff(o regset) regset {
	s.cpu &^= o.cpu
	for i := range s.qat {
		s.qat[i] &^= o.qat[i]
	}
	return s
}

func (s regset) eq(o regset) bool { return s == o }

// defSet returns the registers an instruction writes.
func defSet(in *instNode) regset {
	var s regset
	s.cpu = in.eff.WriteRegs
	for i := uint8(0); i < in.eff.NQWrites; i++ {
		s.addQat(in.eff.QWrites[i])
	}
	return s
}

// daUseSet returns the registers whose prior value the instruction's
// behavior depends on, for definite assignment. sys is narrowed to $0 (the
// service selector): flagging the halt idiom `lex $0,0; sys` for an unused
// argument register would be noise.
func daUseSet(in *instNode) regset {
	var s regset
	if in.inst.Op == isa.OpSys {
		s.addCPU(0)
		return s
	}
	s.cpu = in.eff.ReadRegs
	if in.pairBr {
		// Either half of a br pair lands at the same target whatever the
		// condition register holds, so the pair does not observe it.
		s.cpu &^= 1 << in.inst.RD
	}
	for i := uint8(0); i < in.eff.NQReads; i++ {
		s.addQat(in.eff.QReads[i])
	}
	return s
}

// liveUseSet returns the registers an instruction may expose, for liveness.
// sys conservatively uses every Tangled register: it may halt, and the final
// register file is the run's observable output.
func liveUseSet(in *instNode) regset {
	s := daUseSet(in)
	if in.inst.Op == isa.OpSys {
		return s.union(allCPUSet)
	}
	return s
}

func regName(cpu bool, r uint8) string {
	if cpu {
		return fmt.Sprintf("$%d", r)
	}
	return fmt.Sprintf("@%d", r)
}

// forEachMember calls f(true, r) per CPU member and f(false, q) per Qat
// member, in ascending register order.
func (s regset) forEachMember(f func(cpu bool, r uint8)) {
	for r := uint8(0); r < uint8(isa.NumRegs); r++ {
		if s.hasCPU(r) {
			f(true, r)
		}
	}
	for w := 0; w < 4; w++ {
		if s.qat[w] == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if s.qat[w]&(1<<b) != 0 {
				f(false, uint8(w*64+b))
			}
		}
	}
}

// entryID returns the block holding address 0 (-1 when none is reachable).
func (g *cfg) entryID() int {
	if id, ok := g.blockOf[0]; ok {
		return id
	}
	return -1
}

// definiteAssignment computes, per reachable block, the set of registers
// written on every path from entry to the block's start. The machine zeroes
// registers at load, so "unassigned" means "reads as zero" — suspicious, not
// fatal. On an imprecise graph, label-rooted blocks (possible indirect-call
// targets) start from the full set so unknowable callers cause no false
// positives; the real entry at address 0 starts empty.
func (g *cfg) definiteAssignment() []regset {
	n := len(g.blocks)
	in := make([]regset, n)
	out := make([]regset, n)
	gen := make([]regset, n)
	for i, b := range g.blocks {
		in[i] = fullSet
		for _, ins := range b.insts {
			gen[i] = gen[i].union(defSet(ins))
		}
	}
	entry := g.entryID()
	if entry >= 0 {
		in[entry] = regset{}
	}
	for i := range out {
		out[i] = in[i].union(gen[i])
	}
	changed := true
	for changed {
		changed = false
		for i, b := range g.blocks {
			ni := fullSet
			if i == entry {
				ni = regset{}
			}
			for _, p := range b.preds {
				ni = ni.intersect(out[p])
			}
			if i == entry {
				ni = regset{}
			}
			no := ni.union(gen[i])
			if !ni.eq(in[i]) || !no.eq(out[i]) {
				in[i], out[i] = ni, no
				changed = true
			}
		}
	}
	return in
}

// checkUseBeforeDef reports reads of registers no path has written: a read
// Tangled register observes the loader's zero, and a measured Qat register
// is a never-prepared pbit.
func (g *cfg) checkUseBeforeDef(r *Report) {
	if len(g.blocks) == 0 {
		return
	}
	in := g.definiteAssignment()
	for i, b := range g.blocks {
		state := in[i]
		for _, ins := range b.insts {
			missing := daUseSet(ins).diff(state)
			missing.forEachMember(func(cpuReg bool, reg uint8) {
				var msg string
				if cpuReg {
					msg = fmt.Sprintf("%s reads %s before any write (the loader zeroes it)",
						ins.inst.Op.Name(), regName(true, reg))
				} else {
					msg = fmt.Sprintf("%s uses %s but no instruction has prepared that pbit",
						ins.inst.Op.Name(), regName(false, reg))
				}
				r.add(Diagnostic{Check: CheckUseBeforeDef, Severity: Warning,
					Addr: ins.addr, Line: ins.line, Msg: msg})
			})
			state = state.union(defSet(ins))
		}
	}
}

// liveness computes per-block live-out sets. Exits the analysis cannot
// follow (unresolved jumpr, transfers into non-instruction words) and the
// corresponding blocks conservatively keep everything live.
func (g *cfg) liveness() []regset {
	n := len(g.blocks)
	use := make([]regset, n)
	def := make([]regset, n)
	for i, b := range g.blocks {
		for k := len(b.insts) - 1; k >= 0; k-- {
			ins := b.insts[k]
			d := defSet(ins)
			use[i] = use[i].diff(d).union(liveUseSet(ins))
			def[i] = def[i].union(d)
		}
	}
	liveOut := make([]regset, n)
	liveIn := make([]regset, n)
	for i, b := range g.blocks {
		last := b.insts[len(b.insts)-1]
		switch {
		case !b.exitsUnknown && g.haltAt[last.addr]:
			// Certain halt: the Tangled register file is the run's output
			// surface, but Qat state dies with the machine.
			liveOut[i] = allCPUSet
		case b.exitsUnknown || len(b.succs) == 0:
			liveOut[i] = fullSet
		}
		liveIn[i] = use[i].union(liveOut[i].diff(def[i]))
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := g.blocks[i]
			no := liveOut[i]
			for _, s := range b.succs {
				no = no.union(liveIn[s])
			}
			ni := use[i].union(no.diff(def[i]))
			if !no.eq(liveOut[i]) || !ni.eq(liveIn[i]) {
				liveOut[i], liveIn[i] = no, ni
				changed = true
			}
		}
	}
	return liveOut
}

// checkDeadStores reports register writes whose value is overwritten before
// any instruction reads it.
func (g *cfg) checkDeadStores(r *Report) {
	if len(g.blocks) == 0 {
		return
	}
	liveOut := g.liveness()
	for i, b := range g.blocks {
		live := liveOut[i]
		for k := len(b.insts) - 1; k >= 0; k-- {
			ins := b.insts[k]
			d := defSet(ins)
			dead := d.diff(live)
			dead.forEachMember(func(cpuReg bool, reg uint8) {
				r.add(Diagnostic{Check: CheckDeadStore, Severity: Warning,
					Addr: ins.addr, Line: ins.line,
					Msg: fmt.Sprintf("value %s writes to %s is overwritten before any read",
						ins.inst.Op.Name(), regName(cpuReg, reg))})
			})
			live = live.diff(d).union(liveUseSet(ins))
		}
	}
}
