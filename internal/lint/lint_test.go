package lint_test

// Golden-diagnostic tests: one fixture per check class, pinning the exact
// (severity, check, address) triples the analyzer reports.

import (
	"fmt"
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/lint"
)

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// keys flattens a report into deterministic "severity check addr" strings.
func keys(r *lint.Report) []string {
	out := make([]string, 0, len(r.Diags))
	for _, d := range r.Diags {
		out = append(out, fmt.Sprintf("%s %s %#04x", d.Severity, d.Check, d.Addr))
	}
	return out
}

func wantKeys(t *testing.T, r *lint.Report, want ...string) {
	t.Helper()
	got := keys(r)
	if len(got) != len(want) {
		t.Fatalf("diagnostics:\n  got  %v\n  want %v\nfull: %v", got, want, r.Diags)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("diagnostic %d:\n  got  %v\n  want %v\nfull: %v", i, got, want, r.Diags)
		}
	}
}

func TestCleanProgram(t *testing.T) {
	r, err := lint.AnalyzeSource(`
	lex $1, 5
	lex $2, 7
	add $1, $2
	lex $0, 1
	sys
	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r)
	if sev, any := r.Max(); any {
		t.Errorf("Max = %v, %v on a clean program", sev, any)
	}
}

func TestUseBeforeDefCPU(t *testing.T) {
	r, err := lint.AnalyzeSource(`
	lex $0, 1
	copy $1, $2
	sys
	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "warning use-before-def 0x0001")
	if d := r.Diags[0]; d.Line != 3 || !strings.Contains(d.Msg, "$2") {
		t.Errorf("diag = %+v, want line 3 about $2", d)
	}
}

func TestUseBeforeDefQat(t *testing.T) {
	r, err := lint.AnalyzeSource(`
	lex $2, 0
	meas $2, @5
	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "warning use-before-def 0x0001")
	if d := r.Diags[0]; !strings.Contains(d.Msg, "@5") || !strings.Contains(d.Msg, "pbit") {
		t.Errorf("diag = %+v, want never-prepared pbit about @5", d)
	}
}

func TestDeadStoreCPU(t *testing.T) {
	r, err := lint.AnalyzeSource(`
	lex $1, 5
	lex $1, 7
	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "warning dead-store 0x0000")
	if !strings.Contains(r.Diags[0].Msg, "$1") {
		t.Errorf("diag = %+v, want about $1", r.Diags[0])
	}
}

func TestDeadStoreQat(t *testing.T) {
	// The first write is overwritten; the second is never observed before
	// the certain halt, after which Qat state is unreachable.
	r, err := lint.AnalyzeSource(`
	one @3
	zero @3
	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "warning dead-store 0x0000", "warning dead-store 0x0001")
}

func TestUnreachableAfterBrPair(t *testing.T) {
	// br expands to a complementary brf/brt pair on $at: the pair must be
	// understood as unconditional (making the next line unreachable) and
	// must not count as a read of the never-written $at.
	r, err := lint.AnalyzeSource(`
	br end
	lex $1, 1
end:	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "warning unreachable 0x0002")
}

func TestUnreachableAfterResolvedJump(t *testing.T) {
	// jump expands to lex/lhi/jumpr on $at; constant propagation must
	// resolve the target so the skipped line is provably unreachable.
	r, err := lint.AnalyzeSource(`
	jump end
	lex $1, 1
end:	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "warning unreachable 0x0003")
}

func TestIndirectJumpImprecise(t *testing.T) {
	// A jumpr through a computed value cannot be resolved: labeled code
	// must then count as reachable (no false unreachable/no-halt findings)
	// and dataflow must stay conservative (no false dead stores).
	r, err := lint.AnalyzeSource(`
	lex $1, 2
	lex $2, 4
	add $1, $2
	jumpr $1
end:	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r)
}

func TestNoHaltFallsOffEnd(t *testing.T) {
	r, err := lint.AnalyzeSource("\tlex $1, 2\n", lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "error no-halt 0x0000", "error no-halt 0x0000")
	var sawFall, sawNoSys bool
	for _, d := range r.Diags {
		sawFall = sawFall || strings.Contains(d.Msg, "falls off the end")
		sawNoSys = sawNoSys || strings.Contains(d.Msg, "no sys instruction")
	}
	if !sawFall || !sawNoSys {
		t.Errorf("diags = %v, want fall-off-end and no-reachable-sys", r.Diags)
	}
}

func TestSelfLoop(t *testing.T) {
	r, err := lint.AnalyzeSource(`
loop:	br loop
	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r,
		"error no-halt 0x0000",
		"error self-loop 0x0000",
		"warning unreachable 0x0002")
}

func TestBranchIntoData(t *testing.T) {
	r, err := lint.AnalyzeSource(`
	lex $1, 1
	brt $1, data
	lex $0, 0
	sys
data:	.word 7
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "error no-halt 0x0001")
	if !strings.Contains(r.Diags[0].Msg, "data word at 0x0004") {
		t.Errorf("diag = %+v, want jump-into-data at 0x0004", r.Diags[0])
	}
}

func TestFallThroughIntoData(t *testing.T) {
	// sys with $0 = 1 (PutInt) does not halt, so execution continues into
	// the data word that follows.
	r, err := lint.AnalyzeSource(`
	lex $0, 1
	sys
	.word 9
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "error no-halt 0x0001")
	if !strings.Contains(r.Diags[0].Msg, "falls through into") {
		t.Errorf("diag = %+v, want falls-through-into-data", r.Diags[0])
	}
}

func TestIllegalInstWordImage(t *testing.T) {
	// A raw word image (no assembler code/data marks) whose reachable path
	// runs into an undecodable word.
	p := mustAssemble(t, "\tlex $0, 1\n\tsys\n")
	p.Words = append(p.Words, 0xA000) // illegal major opcode
	r := lint.Analyze(p, lint.Options{})
	wantKeys(t, r, "error illegal-inst 0x0001")
	if !strings.Contains(r.Diags[0].Msg, "does not decode") {
		t.Errorf("diag = %+v, want does-not-decode", r.Diags[0])
	}
}

func TestSysOnlyProgramHalts(t *testing.T) {
	// The loader zeroes registers, so a bare sys is a certain halt (no
	// fall-off-the-end finding) — but it does read the implicit zero.
	r, err := lint.AnalyzeSource("\tsys\n", lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r, "warning use-before-def 0x0000")
}

func TestEmptyProgram(t *testing.T) {
	r := lint.Analyze(&asm.Program{}, lint.Options{})
	wantKeys(t, r, "error no-halt 0x0000")
}

func TestHotBlockAndCosts(t *testing.T) {
	src := `
	lex $1, 10
	lex $3, -1
loop:	had @0, 3
	xor @1, @0, @0
	add $1, $3
	brt $1, loop
	lex $0, 0
	sys
`
	r, err := lint.AnalyzeSource(src, lint.Options{Ways: 4, HotErasedBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r,
		"info hot-block 0x0002",
		"warning dead-store 0x0003")
	var loop *lint.BlockCost
	for i := range r.Blocks {
		if r.Blocks[i].Start == 2 {
			loop = &r.Blocks[i]
		}
	}
	if loop == nil {
		t.Fatalf("no loop block cost in %+v", r.Blocks)
	}
	if !loop.InLoop || loop.QatOps != 2 || loop.IrreversibleOps != 2 ||
		loop.ErasedBitsMax != 32 || loop.SwitchedBitsMax != 32 {
		t.Errorf("loop cost = %+v", *loop)
	}
	// A bigger erasure budget silences the advisory but keeps the costs.
	r2, err := lint.AnalyzeSource(src, lint.Options{Ways: 4, HotErasedBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys(t, r2, "warning dead-store 0x0003")
}

func TestReportCounts(t *testing.T) {
	r, err := lint.AnalyzeSource(`
loop:	br loop
	lex $0, 0
	sys
`, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Errors != 2 || r.Warnings != 1 || r.Infos != 0 {
		t.Errorf("counts = %d/%d/%d, want 2/1/0", r.Errors, r.Warnings, r.Infos)
	}
	if sev, any := r.Max(); sev != lint.Error || !any {
		t.Errorf("Max = %v, %v", sev, any)
	}
	if n := r.CountAtLeast(lint.Warning); n != 3 {
		t.Errorf("CountAtLeast(Warning) = %d, want 3", n)
	}
	if n := r.CountAtLeast(lint.Error); n != 2 {
		t.Errorf("CountAtLeast(Error) = %d, want 2", n)
	}
}

func TestSeverityRoundTrip(t *testing.T) {
	for _, s := range []lint.Severity{lint.Info, lint.Warning, lint.Error} {
		got, err := lint.ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := lint.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal) succeeded")
	}
	var s lint.Severity
	if err := s.UnmarshalJSON([]byte(`"error"`)); err != nil || s != lint.Error {
		t.Errorf("UnmarshalJSON = %v, %v", s, err)
	}
}

func TestImpreciseLabelIntoPartialDataNotRoot(t *testing.T) {
	// Regression: under imprecise mode the analyzer widens reachability to
	// every labeled instruction. A label pointing into a data region (a jump
	// table, say) must not qualify even when (a) the data word happens to
	// decode as an instruction and (b) the image carries only a
	// partial-length Data slice, which the stream sweep cannot use for
	// code/data breaking. Previously such a label became a CFG root and the
	// decoded garbage poisoned reachability and liveness.
	p := mustAssemble(t, `
	lex $1, 2
	lex $2, 4
	add $1, $2
	jumpr $1
end:	lex $0, 0
	sys
tbl:	.word 4096
`)
	tbl, ok := p.Symbols["tbl"]
	if !ok {
		t.Fatal("no tbl symbol")
	}
	if !p.Data[tbl] {
		t.Fatalf("word %#04x not data-marked", tbl)
	}
	// Truncate the marks to a partial-length slice (still covering tbl) by
	// appending an unmarked word, so markedData cannot break the stream and
	// the data word — which decodes as an instruction — enters the sweep.
	p.Words = append(p.Words, p.Words[0])
	_, f := lint.AnalyzeWithFacts(p, lint.Options{})
	if !f.Imprecise {
		t.Fatal("analysis not imprecise — fixture no longer exercises widening")
	}
	i, ok := f.ByAddr[tbl]
	if !ok {
		t.Fatalf("data word at %#04x did not decode; fixture needs a decodable word", tbl)
	}
	if f.Insts[i].Reachable || f.Insts[i].Block != -1 {
		t.Errorf("labeled data word at %#04x became a reachability root (reachable=%v block=%d)",
			tbl, f.Insts[i].Reachable, f.Insts[i].Block)
	}
	for _, b := range f.Blocks {
		for _, ii := range b.Insts {
			if f.Insts[ii].Addr == tbl {
				t.Errorf("block %d contains the data word at %#04x", b.ID, tbl)
			}
		}
	}
}
