// Package lint is a dataflow-based static analyzer for assembled Tangled/Qat
// programs: the front door of the serving stack, catching malformed guest
// programs before the simulator, farm, or HTTP server burns cycles on them.
//
// The analyzer reconstructs a basic-block control-flow graph from the word
// image (branch/jump/halt aware, with constant propagation to resolve the
// jumpr targets the assembler's jump pseudo-instruction produces), then runs
// classical compiler analyses over it:
//
//   - reachability: code no execution can reach ("unreachable"), reachable
//     words that do not decode ("illegal-inst"), paths that run past the end
//     of the program or into data ("no-halt"), and unconditional self-jumps
//     ("self-loop");
//   - definite assignment (a forward must-analysis): reads of Tangled
//     registers and of Qat coprocessor registers that no path has written —
//     measuring a never-prepared pbit — surface as "use-before-def";
//   - liveness (a backward may-analysis): register writes that are
//     overwritten before any read surface as "dead-store";
//   - a per-basic-block gate-cost/energy estimate via energy.StaticCost:
//     loop blocks that erase many bits per iteration surface as "hot-block",
//     the static analogue of the paper's adiabatic-power argument.
//
// Diagnostics are deterministic (sorted by address, then check, then
// message) and carry the 1-based source line when the program was assembled
// in-process. Severity error means the program is certainly broken — the
// server's strict mode refuses such programs before admission; warnings are
// suspicious-but-runnable; info is advisory.
//
// docs/LINT.md documents every check and the JSON schema.
package lint

import (
	"fmt"
	"sort"

	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/isa"
)

// Severity ranks a diagnostic. The zero value is Info.
type Severity uint8

const (
	// Info findings are advisory (cost estimates, style).
	Info Severity = iota
	// Warning findings are suspicious but executable (reads of
	// never-written registers, dead stores, unreachable code).
	Warning
	// Error findings mean the program is certainly broken (cannot halt,
	// runs off the end, decodes illegally on a reachable path).
	Error
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	v, err := ParseSeverity(string(b))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity maps a name (quoted or bare) to its Severity.
func ParseSeverity(name string) (Severity, error) {
	if len(name) == 0 {
		return Info, fmt.Errorf("lint: empty severity")
	}
	if len(name) >= 2 && name[0] == '"' && name[len(name)-1] == '"' {
		name = name[1 : len(name)-1]
	}
	switch name {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("lint: unknown severity %q", name)
}

// Check identifiers, one per analysis class.
const (
	CheckIllegalInst  = "illegal-inst"   // reachable word does not decode
	CheckUnreachable  = "unreachable"    // code no execution reaches
	CheckNoHalt       = "no-halt"        // falls off the end / no reachable sys
	CheckSelfLoop     = "self-loop"      // unconditional self-jump
	CheckUseBeforeDef = "use-before-def" // read of a never-written register
	CheckDeadStore    = "dead-store"     // write overwritten before any read
	CheckHotBlock     = "hot-block"      // loop block with high erasure cost
	CheckHadRange     = "had-range"      // had pattern >= assumed entanglement degree
)

// Diagnostic is one finding, tied to a word address (and source line when
// the program carries a source map).
type Diagnostic struct {
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	// Addr is the word address of the offending instruction.
	Addr uint16 `json:"addr"`
	// Line is the 1-based source line, 0 when unknown (word-image input).
	Line int    `json:"line,omitempty"`
	Msg  string `json:"msg"`
}

func (d Diagnostic) String() string {
	if d.Line > 0 {
		return fmt.Sprintf("line %d (%#04x): %s: [%s] %s", d.Line, d.Addr, d.Severity, d.Check, d.Msg)
	}
	return fmt.Sprintf("%#04x: %s: [%s] %s", d.Addr, d.Severity, d.Check, d.Msg)
}

// BlockCost is the static energy estimate of one reachable basic block,
// computed with energy.StaticCost upper bounds.
type BlockCost struct {
	// Start and End delimit the block's word addresses (End exclusive).
	Start uint16 `json:"start"`
	End   uint16 `json:"end"`
	// Line is the source line of the block's first instruction, when known.
	Line int `json:"line,omitempty"`
	// Qat instruction counts by thermodynamic class.
	QatOps          int `json:"qat_ops"`
	ReversibleOps   int `json:"reversible_ops"`
	IrreversibleOps int `json:"irreversible_ops"`
	// SwitchedBitsMax and ErasedBitsMax bound the energy proxies of one
	// pass through the block.
	SwitchedBitsMax uint64 `json:"switched_bits_max"`
	ErasedBitsMax   uint64 `json:"erased_bits_max"`
	// InLoop reports the block lies on a CFG cycle, so its cost repeats.
	InLoop bool `json:"in_loop"`
}

// Report is the analyzer's output for one program.
type Report struct {
	// Diags are the findings, sorted by (Addr, Check, Msg).
	Diags []Diagnostic `json:"diagnostics"`
	// Blocks are the per-basic-block cost estimates for reachable blocks
	// containing Qat instructions.
	Blocks []BlockCost `json:"blocks,omitempty"`
	// Errors, Warnings and Infos count findings by severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
}

// Max returns the highest severity present, or (Info, false) when the
// report is empty.
func (r *Report) Max() (Severity, bool) {
	if r.Errors > 0 {
		return Error, true
	}
	if r.Warnings > 0 {
		return Warning, true
	}
	return Info, len(r.Diags) > 0
}

// CountAtLeast returns how many findings are at or above min.
func (r *Report) CountAtLeast(min Severity) int {
	switch min {
	case Error:
		return r.Errors
	case Warning:
		return r.Errors + r.Warnings
	default:
		return len(r.Diags)
	}
}

// Options parameterizes an analysis; the zero value uses the Primary
// encoding and the paper's 16-way hardware.
type Options struct {
	// Enc is the binary instruction codec; nil means isa.Primary.
	Enc isa.Encoding
	// Ways is the Qat entanglement degree assumed by the cost estimates;
	// 0 means the full 16-way hardware.
	Ways int
	// HotErasedBits is the per-iteration erased-bit bound above which a
	// loop block is flagged "hot-block"; 0 means two full registers'
	// worth (2 << ways bits).
	HotErasedBits uint64
}

func (o Options) withDefaults() Options {
	if o.Enc == nil {
		o.Enc = isa.Primary
	}
	if o.Ways <= 0 || o.Ways > aob.MaxWays {
		o.Ways = aob.MaxWays
	}
	if o.HotErasedBits == 0 {
		o.HotErasedBits = 2 << uint(o.Ways)
	}
	return o
}

// Analyze lints an assembled program. It never fails: an unanalyzable image
// is itself a (maximal-severity) finding. The returned report is
// deterministic for identical input.
func Analyze(p *asm.Program, opts Options) *Report {
	opts = opts.withDefaults()
	r := &Report{}
	if len(p.Words) == 0 {
		r.add(Diagnostic{Check: CheckNoHalt, Severity: Error, Addr: 0,
			Msg: "empty program: execution begins in zeroed memory and never halts"})
		r.finish()
		return r
	}
	g := buildCFG(p, opts)
	runChecks(g, r, opts)
	r.finish()
	return r
}

// AnalyzeSource assembles src and lints the result; assembly failures are
// returned as the assembler's ErrorList.
func AnalyzeSource(src string, opts Options) (*Report, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return Analyze(p, opts), nil
}

// add records one finding.
func (r *Report) add(d Diagnostic) {
	r.Diags = append(r.Diags, d)
}

// finish sorts diagnostics into the canonical deterministic order and
// computes the severity tallies.
func (r *Report) finish() {
	sort.Slice(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	sort.Slice(r.Blocks, func(i, j int) bool { return r.Blocks[i].Start < r.Blocks[j].Start })
	r.Errors, r.Warnings, r.Infos = 0, 0, 0
	for _, d := range r.Diags {
		switch d.Severity {
		case Error:
			r.Errors++
		case Warning:
			r.Warnings++
		default:
			r.Infos++
		}
	}
}
