package lint

// The exported analysis surface consumed by the optimizing recompiler
// (package opt). The analyzer's internal CFG, dataflow sets, and constant
// resolution stay private; Facts is the read-only projection of everything a
// transform layer needs to rewrite a program without re-deriving (and
// possibly contradicting) the analysis: decoded instructions with their
// effect sets and br-pair marks, reachable basic blocks with edges and
// backward-liveness results, resolved jumpr targets, certain-halt sys
// addresses, and the imprecision verdict that gates unsafe rewrites.

import (
	"tangled/internal/isa"

	"tangled/internal/asm"
)

// RegSet is an exported bitset over the 16 Tangled registers and the 256
// Qat registers, the currency of the liveness facts.
type RegSet struct {
	// CPU has bit r set for Tangled register $r.
	CPU uint16
	// Qat has bit (q mod 64) of word (q div 64) set for Qat register @q.
	Qat [4]uint64
}

// HasCPU reports membership of Tangled register $r.
func (s RegSet) HasCPU(r uint8) bool { return s.CPU&(1<<(r&0xF)) != 0 }

// HasQat reports membership of Qat register @q.
func (s RegSet) HasQat(q uint8) bool { return s.Qat[q>>6]&(1<<(q&63)) != 0 }

// Empty reports whether the set has no members.
func (s RegSet) Empty() bool {
	return s.CPU == 0 && s.Qat[0] == 0 && s.Qat[1] == 0 && s.Qat[2] == 0 && s.Qat[3] == 0
}

// Union returns s ∪ o.
func (s RegSet) Union(o RegSet) RegSet {
	s.CPU |= o.CPU
	for i := range s.Qat {
		s.Qat[i] |= o.Qat[i]
	}
	return s
}

// Diff returns s with o's members removed.
func (s RegSet) Diff(o RegSet) RegSet {
	s.CPU &^= o.CPU
	for i := range s.Qat {
		s.Qat[i] &^= o.Qat[i]
	}
	return s
}

// Intersects reports whether s and o share any member.
func (s RegSet) Intersects(o RegSet) bool {
	if s.CPU&o.CPU != 0 {
		return true
	}
	for i := range s.Qat {
		if s.Qat[i]&o.Qat[i] != 0 {
			return true
		}
	}
	return false
}

func exportSet(s regset) RegSet { return RegSet{CPU: s.cpu, Qat: s.qat} }

// DefSet returns the registers instruction in writes.
func DefSet(in isa.Inst) RegSet {
	return exportSet(defSet(&instNode{inst: in, eff: isa.InstEffects(in)}))
}

// UseSet returns the registers whose prior value the instruction's behavior
// depends on. pairBr marks the halves of a complementary brf/brt pair, whose
// combined transfer does not observe the condition register.
func UseSet(in isa.Inst, pairBr bool) RegSet {
	return exportSet(daUseSet(&instNode{inst: in, eff: isa.InstEffects(in), pairBr: pairBr}))
}

// LiveUseSet returns the registers the instruction may expose, for liveness:
// like UseSet, except sys keeps every Tangled register live (it may halt, and
// the final register file is the run's observable output).
func LiveUseSet(in isa.Inst, pairBr bool) RegSet {
	return exportSet(liveUseSet(&instNode{inst: in, eff: isa.InstEffects(in), pairBr: pairBr}))
}

// InstFact describes one decoded instruction.
type InstFact struct {
	// Index is this fact's position in Facts.Insts (== decode order).
	Index int
	// Addr is the word address; Words the encoded length.
	Addr  uint16
	Words int
	// Line is the 1-based source line, 0 when unknown.
	Line int
	Inst isa.Inst
	Eff  isa.Effects
	// PairBr marks both halves of the brf/brt pair the br pseudo emits.
	PairBr bool
	// Reachable reports some execution can reach this instruction; Block is
	// the containing basic block's index, -1 when unreachable.
	Reachable bool
	Block     int
}

// BlockFact is one reachable basic block.
type BlockFact struct {
	ID int
	// Insts indexes Facts.Insts, in address order.
	Insts []int
	// Succs and Preds are block-level CFG edges.
	Succs, Preds []int
	// ExitsUnknown marks conservative exits (unresolved jumpr, transfers
	// into non-instruction words).
	ExitsUnknown bool
	// MayHalt reports the block contains a sys.
	MayHalt bool
	// InLoop reports the block lies on a CFG cycle.
	InLoop bool
	// LiveOut is the backward-liveness result at the block's exit.
	LiveOut RegSet
}

// Facts is the exported analysis result a transform layer builds on.
type Facts struct {
	// Prog is the analyzed program; Len its image length in words.
	Prog *asm.Program
	Len  int
	// Ways is the resolved entanglement degree the analysis assumed.
	Ways int
	// Insts lists every decoded instruction in address order.
	Insts []InstFact
	// ByAddr maps a word address to its index in Insts.
	ByAddr map[uint16]int
	// Blocks lists the reachable basic blocks.
	Blocks []BlockFact
	// DataWords counts words that are data or failed to decode.
	DataWords int
	// Imprecise reports an unresolved indirect jump widened reachability to
	// every labeled instruction; liveness and reachability are then
	// conservative, not exact.
	Imprecise bool
	// HaltAt marks sys instructions proven to halt ($0 == SysHalt).
	HaltAt map[uint16]bool
	// JumprTargets maps resolved jumpr addresses to their targets.
	JumprTargets map[uint16]uint16
	// Profile is the static entanglement/cost profile, attached by
	// profile.Compute — nil until a profiler pass has run over these facts.
	Profile *Profile
}

// AnalyzeWithFacts lints p like Analyze and additionally returns the Facts
// projection of the CFG and dataflow results. For an empty image the facts
// are empty but non-nil.
func AnalyzeWithFacts(p *asm.Program, opts Options) (*Report, *Facts) {
	opts = opts.withDefaults()
	r := &Report{}
	f := &Facts{
		Prog:         p,
		Len:          len(p.Words),
		Ways:         opts.Ways,
		ByAddr:       make(map[uint16]int),
		HaltAt:       make(map[uint16]bool),
		JumprTargets: make(map[uint16]uint16),
	}
	if len(p.Words) == 0 {
		r.add(Diagnostic{Check: CheckNoHalt, Severity: Error, Addr: 0,
			Msg: "empty program: execution begins in zeroed memory and never halts"})
		r.finish()
		return r, f
	}
	g := buildCFG(p, opts)
	runChecks(g, r, opts)
	r.finish()
	g.fillFacts(f)
	return r, f
}

// runChecks is the shared check sequence of Analyze and AnalyzeWithFacts.
func runChecks(g *cfg, r *Report, opts Options) {
	g.checkDecode(r)
	g.checkReachability(r)
	g.checkSelfLoops(r)
	g.checkHalt(r)
	g.checkHadRange(r)
	g.checkUseBeforeDef(r)
	g.checkDeadStores(r)
	g.checkCosts(r, opts)
}

// fillFacts projects the CFG into f.
func (g *cfg) fillFacts(f *Facts) {
	f.Imprecise = g.imprecise
	f.DataWords = len(g.data)
	for a := range g.haltAt {
		f.HaltAt[a] = true
	}
	for a, t := range g.jumprTo {
		f.JumprTargets[a] = t
	}
	for i, addr := range g.order {
		in := g.insts[addr]
		fi := InstFact{
			Index:  i,
			Addr:   addr,
			Words:  int(in.words),
			Line:   in.line,
			Inst:   in.inst,
			Eff:    in.eff,
			PairBr: in.pairBr,
			Block:  -1,
		}
		if g.reach[addr] {
			fi.Reachable = true
			fi.Block = g.blockOf[addr]
		}
		f.ByAddr[addr] = i
		f.Insts = append(f.Insts, fi)
	}
	var liveOut []regset
	if len(g.blocks) > 0 {
		liveOut = g.liveness()
	}
	for i, b := range g.blocks {
		bf := BlockFact{
			ID:           b.id,
			Succs:        append([]int(nil), b.succs...),
			Preds:        append([]int(nil), b.preds...),
			ExitsUnknown: b.exitsUnknown,
			MayHalt:      b.mayHalt,
			InLoop:       b.inLoop,
			LiveOut:      exportSet(liveOut[i]),
		}
		for _, ins := range b.insts {
			bf.Insts = append(bf.Insts, f.ByAddr[ins.addr])
		}
		f.Blocks = append(f.Blocks, bf)
	}
}
