package lint

// Tests for the exported Facts projection (the optimizer's analysis surface)
// and the had-range check it gates on.

import (
	"testing"

	"tangled/internal/asm"
	"tangled/internal/isa"
)

func factsFor(t *testing.T, src string, opts Options) (*Report, *Facts) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return AnalyzeWithFacts(p, opts)
}

func TestFactsBasicShape(t *testing.T) {
	rep, f := factsFor(t, `
	lex	$1, 3
	lex	$2, -1
loop:	add	$1, $2
	brt	$1, loop
	lex	$0, 0
	sys
`, Options{})
	if rep.Errors > 0 {
		t.Fatalf("unexpected errors: %+v", rep.Diags)
	}
	if f.Len != 6 || len(f.Insts) != 6 {
		t.Fatalf("len=%d insts=%d, want 6/6", f.Len, len(f.Insts))
	}
	if f.Imprecise || f.DataWords != 0 {
		t.Fatalf("imprecise=%v datawords=%d on a precise program", f.Imprecise, f.DataWords)
	}
	// Three blocks: prologue, loop body, epilogue.
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks=%d, want 3", len(f.Blocks))
	}
	for i := range f.Insts {
		fi := &f.Insts[i]
		if fi.Index != i {
			t.Fatalf("inst %d: index=%d", i, fi.Index)
		}
		if !fi.Reachable || fi.Block < 0 {
			t.Fatalf("inst %d unexpectedly unreachable", i)
		}
		if j, ok := f.ByAddr[fi.Addr]; !ok || j != i {
			t.Fatalf("ByAddr[%#04x]=%d, want %d", fi.Addr, j, i)
		}
	}
	// The loop block must carry InLoop and a loop-carried live-out: $1 and
	// $2 are read on the next iteration.
	loopBlock := f.Blocks[f.Insts[2].Block]
	if !loopBlock.InLoop {
		t.Fatal("loop body not marked InLoop")
	}
	if !loopBlock.LiveOut.HasCPU(1) || !loopBlock.LiveOut.HasCPU(2) {
		t.Fatalf("loop live-out %+v misses the loop-carried registers", loopBlock.LiveOut)
	}
	// The final block contains a certain halt.
	last := f.Blocks[f.Insts[5].Block]
	if !last.MayHalt {
		t.Fatal("epilogue block not marked MayHalt")
	}
	if !f.HaltAt[f.Insts[5].Addr] {
		t.Fatalf("HaltAt misses the certain halt at %#04x", f.Insts[5].Addr)
	}
}

func TestFactsUnreachableBlock(t *testing.T) {
	_, f := factsFor(t, `
	lex	$0, 0
	sys
	lex	$5, 9
`, Options{})
	fi := &f.Insts[2]
	if fi.Reachable || fi.Block != -1 {
		t.Fatalf("dead tail: reachable=%v block=%d, want false/-1", fi.Reachable, fi.Block)
	}
}

func TestFactsImpreciseJumpr(t *testing.T) {
	// A jumpr whose target register the constant pass cannot resolve.
	_, f := factsFor(t, `
	had	@0, 2
	meas	$1, @0
	jumpr	$1
	lex	$0, 0
	sys
`, Options{})
	if !f.Imprecise {
		t.Fatal("unresolved jumpr did not mark the facts imprecise")
	}
}

func TestFactsResolvedJumpr(t *testing.T) {
	// The jump pseudo resolves: precise facts, target recorded.
	_, f := factsFor(t, `
	jump	skip
	lex	$4, 1
skip:	lex	$0, 0
	sys
`, Options{})
	if f.Imprecise {
		t.Fatal("resolved jump marked imprecise")
	}
	if len(f.JumprTargets) == 0 {
		t.Fatal("resolved jumpr target not recorded")
	}
}

func TestRegSetOps(t *testing.T) {
	var a, b RegSet
	a.CPU = 1<<3 | 1<<5
	a.Qat[1] = 1 << 2 // @66
	b.CPU = 1 << 5
	if !a.HasCPU(3) || !a.HasCPU(5) || a.HasCPU(4) {
		t.Fatal("HasCPU wrong")
	}
	if !a.HasQat(66) || a.HasQat(65) {
		t.Fatal("HasQat wrong")
	}
	if !a.Intersects(b) || b.Intersects(RegSet{}) {
		t.Fatal("Intersects wrong")
	}
	d := a.Diff(b)
	if d.HasCPU(5) || !d.HasCPU(3) || !d.HasQat(66) {
		t.Fatal("Diff wrong")
	}
	u := d.Union(b)
	if u != a {
		t.Fatal("Union wrong")
	}
	if !(RegSet{}).Empty() || a.Empty() {
		t.Fatal("Empty wrong")
	}
}

func TestDefUseSets(t *testing.T) {
	// lhi reads and writes its register.
	lhi := isa.Inst{Op: isa.OpLhi, RD: 4, Imm: 1}
	if d := DefSet(lhi); !d.HasCPU(4) || d.CPU != 1<<4 {
		t.Fatalf("lhi def = %+v", d)
	}
	if u := UseSet(lhi, false); !u.HasCPU(4) {
		t.Fatalf("lhi use = %+v", u)
	}
	// sys: UseSet narrows to the service selector, LiveUseSet all 16.
	sys := isa.Inst{Op: isa.OpSys}
	if u := UseSet(sys, false); u.CPU != 1<<0 {
		t.Fatalf("sys use = %+v", u)
	}
	if l := LiveUseSet(sys, false); l.CPU != 0xFFFF {
		t.Fatalf("sys live-use = %+v", l)
	}
	// A paired branch does not observe its condition register.
	br := isa.Inst{Op: isa.OpBrf, RD: 7, Imm: 2}
	if u := UseSet(br, true); u.HasCPU(7) {
		t.Fatalf("paired brf observes the condition: %+v", u)
	}
	if u := UseSet(br, false); !u.HasCPU(7) {
		t.Fatalf("unpaired brf misses the condition: %+v", u)
	}
	// swap writes both Qat registers.
	sw := isa.Inst{Op: isa.OpQSwap, QA: 3, QB: 200}
	if d := DefSet(sw); !d.HasQat(3) || !d.HasQat(200) {
		t.Fatalf("swap def = %+v", d)
	}
}

func TestCheckHadRange(t *testing.T) {
	src := `
	had	@0, 5
	lex	$0, 0
	sys
`
	// Within range at the default 16 ways: silent.
	rep, _ := factsFor(t, src, Options{})
	for _, d := range rep.Diags {
		if d.Check == CheckHadRange {
			t.Fatalf("had-range fired at 16 ways: %+v", d)
		}
	}
	// Out of range at 4 ways: a warning on the had's address.
	rep, _ = factsFor(t, src, Options{Ways: 4})
	found := false
	for _, d := range rep.Diags {
		if d.Check == CheckHadRange {
			found = true
			if d.Severity != Warning {
				t.Fatalf("had-range severity = %v, want warning", d.Severity)
			}
		}
	}
	if !found {
		t.Fatalf("had-range missing at 4 ways: %+v", rep.Diags)
	}
	// Unreachable had: silent even out of range.
	rep, _ = factsFor(t, `
	lex	$0, 0
	sys
	had	@0, 5
`, Options{Ways: 4})
	for _, d := range rep.Diags {
		if d.Check == CheckHadRange {
			t.Fatalf("had-range fired on unreachable code: %+v", d)
		}
	}
}

func TestFactsMatchAnalyze(t *testing.T) {
	// AnalyzeWithFacts must report exactly what Analyze reports.
	src := `
	lex	$1, 1
	lex	$1, 2
	lex	$0, 0
	sys
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	plain := Analyze(p, Options{})
	withFacts, _ := AnalyzeWithFacts(p, Options{})
	if len(plain.Diags) != len(withFacts.Diags) {
		t.Fatalf("diag count diverges: %d vs %d", len(plain.Diags), len(withFacts.Diags))
	}
	for i := range plain.Diags {
		if plain.Diags[i] != withFacts.Diags[i] {
			t.Fatalf("diag %d diverges: %+v vs %+v", i, plain.Diags[i], withFacts.Diags[i])
		}
	}
}
