package lint

// The static profile fact: the entanglement/cost summary the profiler
// (internal/profile) derives from a Facts projection and attaches back as
// Facts.Profile. The data types live here, next to the facts they annotate,
// so consumers (the backend auto-planner, qatlint -profile, the server's 422
// responses) need only the lint surface; the abstract interpretation that
// fills them lives in internal/profile, which builds on these facts without
// creating an import cycle.
//
// docs/LINT.md ("Profile facts") documents the JSON schema and the planner
// decision table driven by these numbers.

// RegEntanglement is the per-register entanglement summary: the largest
// channel-dependence set register Reg is proven to carry at any reachable
// program point.
type RegEntanglement struct {
	// Reg is the Qat register number.
	Reg int `json:"reg"`
	// Degree is |Channels|: a sound upper bound on the register's dynamic
	// entanglement degree (the number of channel bits its value depends on).
	Degree int `json:"degree"`
	// Channels lists the channel bits in the dependence set, ascending.
	Channels []int `json:"channels"`
}

// BlockProfile is the per-basic-block slice of the profile: degree and cost
// bounds for one pass through the block, aligned with Facts.Blocks by ID.
type BlockProfile struct {
	// ID indexes Facts.Blocks; Start/End delimit word addresses (End
	// exclusive).
	ID    int    `json:"id"`
	Start uint16 `json:"start"`
	End   uint16 `json:"end"`
	// MaxDegree is the largest per-register degree bound reached inside the
	// block.
	MaxDegree int `json:"max_degree"`
	// QatWrites counts Qat-register-writing instructions; StructuredWrites
	// those whose written value the pbit state lattice proves structured
	// (constant or Hadamard-derived), i.e. run-length compressible.
	QatWrites        int `json:"qat_writes"`
	StructuredWrites int `json:"structured_writes"`
	// SwitchedBits/ErasedBits bound the energy proxies of one pass through
	// the block (energy.StaticCost); loop blocks repeat them per iteration.
	SwitchedBits uint64 `json:"switched_bits"`
	ErasedBits   uint64 `json:"erased_bits"`
	// InLoop mirrors BlockFact.InLoop.
	InLoop bool `json:"in_loop,omitempty"`
}

// Profile is the whole-program static profile: a sound entanglement-degree
// bound, a compressibility estimate, and cycle/energy bounds — the signals
// the backend planner resolves "auto" requests from.
type Profile struct {
	// Ways is the channel width the analysis assumed. It is the requested
	// execution width, which may exceed the dense-hardware clamp Facts.Ways
	// carries (the RE backend runs up to qat.MaxREWays).
	Ways int `json:"ways"`
	// DegreeBound is a sound upper bound on the entanglement degree any Qat
	// register reaches on any execution: max over registers and reachable
	// program points of the dependence-set size. Never below the dynamically
	// observed degree (the differential soundness suite pins this).
	DegreeBound int `json:"degree_bound"`
	// RequiredWays is 1 + the highest had channel bit on a reachable path
	// (0 when no reachable had): the minimum width the program can run at.
	RequiredWays int `json:"required_ways"`
	// Groups partitions the channel bits into entangled groups: channels in
	// the same group flow into a common register value somewhere in the
	// program (union-find over dependence sets). Only groups of size > 1 are
	// listed, each sorted ascending, ordered by first channel.
	Groups [][]int `json:"groups,omitempty"`
	// Regs lists per-register bounds for registers whose dependence set is
	// ever non-empty, ascending by register.
	Regs []RegEntanglement `json:"regs,omitempty"`
	// Insts counts reachable instructions; QatOps the reachable Qat subset;
	// QatWrites the Qat-register-writing subset of those.
	Insts     int `json:"insts"`
	QatOps    int `json:"qat_ops"`
	QatWrites int `json:"qat_writes"`
	// StructuredWrites counts Qat writes whose value the pbit state lattice
	// proves structured; Compressibility is StructuredWrites/QatWrites
	// (1 when the program performs no Qat writes) — the static estimate of
	// how well the RE backend's run-length compression will hold up.
	StructuredWrites int     `json:"structured_writes"`
	Compressibility  float64 `json:"compressibility"`
	// SwitchedBound/ErasedBound sum the per-block energy bounds over every
	// reachable block, one pass each; LoopBlocks counts blocks whose cost
	// repeats per iteration (the bounds are per-visit, not per-execution).
	SwitchedBound uint64 `json:"switched_bits_bound"`
	ErasedBound   uint64 `json:"erased_bits_bound"`
	LoopBlocks    int    `json:"loop_blocks"`
	// Imprecise mirrors Facts.Imprecise: an unresolved indirect jump widened
	// every dependence set to the full width, so DegreeBound == Ways.
	Imprecise bool `json:"imprecise,omitempty"`
	// Blocks carries the per-block slices, ascending by start address.
	Blocks []BlockProfile `json:"blocks,omitempty"`
}

// MaxReg returns the per-register degree bound for Qat register q (0 when q
// never carries a channel-dependent value).
func (p *Profile) MaxReg(q int) int {
	for _, r := range p.Regs {
		if r.Reg == q {
			return r.Degree
		}
	}
	return 0
}
