package lint_test

// FuzzLint feeds arbitrary word images through the analyzer: it must never
// panic, must terminate, and must be deterministic (two runs over the same
// image produce identical reports).

import (
	"encoding/json"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/lint"
)

func FuzzLint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x10})                         // lex $0, 16... truncated odd images are padded below
	f.Add([]byte{0x12, 0xE0, 0x00, 0x00})             // sys-ish then zeros
	f.Add([]byte{0x00, 0xA0})                         // illegal major opcode
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // all ones
	f.Add([]byte{0x01, 0x80, 0x03, 0x02})             // two-word qat form
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 1<<12 {
			raw = raw[:1<<12]
		}
		words := make([]uint16, len(raw)/2)
		for i := range words {
			words[i] = uint16(raw[2*i]) | uint16(raw[2*i+1])<<8
		}
		p := &asm.Program{Words: words}
		r1 := lint.Analyze(p, lint.Options{})
		r2 := lint.Analyze(p, lint.Options{})
		b1, err1 := json.Marshal(r1)
		b2, err2 := json.Marshal(r2)
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal: %v / %v", err1, err2)
		}
		if string(b1) != string(b2) {
			t.Fatalf("nondeterministic report:\n%s\n%s", b1, b2)
		}
		if len(words) == 0 && r1.Errors == 0 {
			t.Fatal("empty image must be an error")
		}
	})
}
