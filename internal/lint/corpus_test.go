package lint_test

// Corpus tests: the farmtest generator's 200 programs and every checked-in
// assembly example must pass the analyzer at the CI gate (-severity error),
// and the examples must be fully clean.

import (
	"os"
	"path/filepath"
	"testing"

	"tangled/internal/farm/farmtest"
	"tangled/internal/lint"
)

func TestFarmtestCorpusErrorFree(t *testing.T) {
	for i := 0; i < farmtest.Programs; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		r, err := lint.AnalyzeSource(src, lint.Options{Ways: farmtest.Ways})
		if err != nil {
			t.Fatalf("program %d: assemble: %v", i, err)
		}
		if r.Errors > 0 {
			for _, d := range r.Diags {
				if d.Severity == lint.Error {
					t.Errorf("program %d: %s", i, d)
				}
			}
			t.Fatalf("program %d has %d lint errors; source:\n%s", i, r.Errors, src)
		}
	}
}

func TestExamplesLintClean(t *testing.T) {
	files, err := filepath.Glob("../../examples/asm/*.s")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no assembly examples found under examples/asm")
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		r, aerr := lint.AnalyzeSource(string(src), lint.Options{})
		if aerr != nil {
			t.Errorf("%s: assemble: %v", f, aerr)
			continue
		}
		for _, d := range r.Diags {
			t.Errorf("%s: %s", filepath.Base(f), d)
		}
	}
}
