package memo

// A true least-recently-used bounded map: lookups refresh recency, so a hot
// entry survives arbitrarily many insertions while cold entries age out.
// This is deliberately not a FIFO — the serving layer's original
// idempotency cache was one, and a hot request ID was evicted as readily as
// a cold one (see internal/server). Both the execution cache and the
// idempotency cache are built on this core.
//
// The zero value is not usable; construct with NewLRU. An LRU is not
// goroutine-safe — callers hold their own lock, which lets them batch a
// lookup and an inflight-map update under one critical section.

import "container/list"

// lruItem is the payload of one list element.
type lruItem[K comparable, V any] struct {
	key K
	val V
}

// LRU is a bounded map with least-recently-used eviction.
type LRU[K comparable, V any] struct {
	capacity int
	ll       *list.List // front = most recent
	items    map[K]*list.Element
	onEvict  func(K, V) // optional eviction hook (metrics)
}

// NewLRU returns an LRU holding at most capacity entries; onEvict, when
// non-nil, observes every evicted entry. Capacity must be positive.
func NewLRU[K comparable, V any](capacity int, onEvict func(K, V)) *LRU[K, V] {
	if capacity <= 0 {
		panic("memo: LRU capacity must be positive")
	}
	return &LRU[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element),
		onEvict:  onEvict,
	}
}

// Get returns the value for key and marks it most recently used.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	if el, ok := l.items[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruItem[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Peek returns the value for key without refreshing its recency — the
// put-if-absent probe.
func (l *LRU[K, V]) Peek(key K) (V, bool) {
	if el, ok := l.items[key]; ok {
		return el.Value.(*lruItem[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts (or updates) key as the most recently used entry, evicting the
// least recently used one when the cache is full.
func (l *LRU[K, V]) Add(key K, val V) {
	if el, ok := l.items[key]; ok {
		el.Value.(*lruItem[K, V]).val = val
		l.ll.MoveToFront(el)
		return
	}
	l.items[key] = l.ll.PushFront(&lruItem[K, V]{key: key, val: val})
	if l.ll.Len() > l.capacity {
		oldest := l.ll.Back()
		it := oldest.Value.(*lruItem[K, V])
		l.ll.Remove(oldest)
		delete(l.items, it.key)
		if l.onEvict != nil {
			l.onEvict(it.key, it.val)
		}
	}
}

// Len returns the number of live entries.
func (l *LRU[K, V]) Len() int { return l.ll.Len() }

// Cap returns the configured bound.
func (l *LRU[K, V]) Cap() int { return l.capacity }
