package memo

// Cache observability: traffic counters plus hit- and miss-latency
// histograms, registered on the shared obs.Registry so memo metrics export
// next to the farm and serving sets. The histograms make the cache's value
// legible at a glance — hits cluster in microseconds (a lock, a map probe,
// a copy) while misses carry the full execution time.

import "tangled/internal/obs"

// hitLatencyBuckets spans lock-and-copy hit times; missLatencyBuckets spans
// real executions, matching the farm's per-job latency range.
var (
	hitLatencyBuckets  = []float64{1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01}
	missLatencyBuckets = []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30}
)

// Obs is the cache's metric set; construct with NewObs and attach with
// Cache.SetObs. A nil Obs disables everything.
type Obs struct {
	// Hits counts results served from the store, Misses executions that
	// populated it, Evictions entries aged out by the LRU bound, and Dedup
	// callers collapsed onto another caller's in-flight execution.
	Hits, Misses, Evictions, Dedup *obs.Counter
	// HitSeconds and MissSeconds split the serve-latency distribution by
	// outcome.
	HitSeconds, MissSeconds *obs.Histogram
}

// NewObs registers the memo metric set on r, or returns nil when r is nil.
func NewObs(r *obs.Registry) *Obs {
	if r == nil {
		return nil
	}
	return &Obs{
		Hits:        r.Counter("memo_hits_total", "executions served from the memo cache"),
		Misses:      r.Counter("memo_misses_total", "executions that ran and populated the memo cache"),
		Evictions:   r.Counter("memo_evictions_total", "memo entries evicted by the LRU bound"),
		Dedup:       r.Counter("memo_inflight_dedup_total", "callers collapsed onto an identical in-flight execution"),
		HitSeconds:  r.Histogram("memo_hit_seconds", "serve latency of memo hits", hitLatencyBuckets),
		MissSeconds: r.Histogram("memo_miss_seconds", "serve latency of memo misses (includes execution)", missLatencyBuckets),
	}
}
