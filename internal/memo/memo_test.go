package memo

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tangled/internal/obs"
	"tangled/internal/pipeline"
)

// --- LRU core ---

func TestLRUEvictionOrder(t *testing.T) {
	var evicted []string
	l := NewLRU[string, int](3, func(k string, _ int) { evicted = append(evicted, k) })
	l.Add("a", 1)
	l.Add("b", 2)
	l.Add("c", 3)

	// Touch "a": it must now outlive "b" even though it was inserted first.
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	l.Add("d", 4)
	if _, ok := l.Peek("b"); ok {
		t.Fatalf("b should have been evicted (a was refreshed)")
	}
	if _, ok := l.Peek("a"); !ok {
		t.Fatalf("a was refreshed and must survive")
	}
	if want := []string{"b"}; !reflect.DeepEqual(evicted, want) {
		t.Fatalf("evicted = %v, want %v", evicted, want)
	}

	// Peek must NOT refresh: peeking "c" then inserting must still evict "c".
	l.Peek("c")
	l.Add("e", 5)
	if _, ok := l.Peek("c"); ok {
		t.Fatalf("c should have been evicted; Peek must not refresh recency")
	}
	if l.Len() != 3 || l.Cap() != 3 {
		t.Fatalf("Len=%d Cap=%d, want 3/3", l.Len(), l.Cap())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	l := NewLRU[string, int](2, nil)
	l.Add("a", 1)
	l.Add("b", 2)
	l.Add("a", 10) // update, not insert: nothing evicted, "a" refreshed
	if l.Len() != 2 {
		t.Fatalf("Len = %d after update, want 2", l.Len())
	}
	l.Add("c", 3)
	if _, ok := l.Peek("b"); ok {
		t.Fatalf("b should have been evicted (a was refreshed by update)")
	}
	if v, _ := l.Get("a"); v != 10 {
		t.Fatalf("a = %d, want updated value 10", v)
	}
}

func TestLRUCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewLRU(0) must panic")
		}
	}()
	NewLRU[int, int](0, nil)
}

// --- Key derivation ---

func TestKeyDeterministic(t *testing.T) {
	k := ExecKey{
		Pipelined: true,
		Pipeline:  pipeline.DefaultConfig(),
		MaxSteps:  1 << 20,
		Words:     []uint16{0x1234, 0xBEEF, 0},
	}
	if k.Sum() != k.Sum() {
		t.Fatalf("Sum is not deterministic")
	}
	// A semantically identical copy (fresh slice, same contents) must agree.
	k2 := k
	k2.Words = append([]uint16(nil), k.Words...)
	if k.Sum() != k2.Sum() {
		t.Fatalf("equal ExecKeys hash differently")
	}
}

func TestKeySensitivity(t *testing.T) {
	base := ExecKey{
		Pipelined: true,
		Pipeline:  pipeline.DefaultConfig(),
		MaxSteps:  1000,
		Words:     []uint16{1, 2, 3},
	}
	seen := map[Key]string{base.Sum(): "base"}
	variants := map[string]ExecKey{}

	v := base
	v.Pipelined = false
	variants["pipelined"] = v

	v = base
	v.Ways = 4
	variants["ways"] = v

	v = base
	v.ConstantRegs = true
	variants["constRegs"] = v

	v = base
	v.Pipeline.Stages = 4
	variants["stages"] = v

	v = base
	v.Pipeline.Forwarding = !v.Pipeline.Forwarding
	variants["forwarding"] = v

	v = base
	v.Pipeline.MulLatency++
	variants["mulLatency"] = v

	v = base
	v.Pipeline.QatNextLatency++
	variants["qatNextLatency"] = v

	v = base
	v.Pipeline.TwoWordFetchPenalty = !v.Pipeline.TwoWordFetchPenalty
	variants["twoWordFetch"] = v

	v = base
	v.Pipeline.ConstantRegs = !v.Pipeline.ConstantRegs
	variants["pipeConstRegs"] = v

	v = base
	v.MaxSteps++
	variants["maxSteps"] = v

	v = base
	v.Words = []uint16{1, 2, 4}
	variants["words"] = v

	v = base
	v.Words = []uint16{1, 2, 3, 0}
	variants["wordsLen"] = v

	for name, vk := range variants {
		sum := vk.Sum()
		if prev, dup := seen[sum]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[sum] = name
	}
}

// TestKeyCoversPipelineConfig pins the field count of pipeline.Config: if a
// field is added there without teaching ExecKey.Sum about it, two
// executions differing only in that field would share a key and the cache
// would serve wrong results. Update Sum (and bump keySchema) before
// updating this count.
func TestKeyCoversPipelineConfig(t *testing.T) {
	const covered = 7 // Stages, Ways, Forwarding, TwoWordFetchPenalty, MulLatency, QatNextLatency, ConstantRegs
	if n := reflect.TypeOf(pipeline.Config{}).NumField(); n != covered {
		t.Fatalf("pipeline.Config has %d fields but ExecKey.Sum covers %d — extend the key derivation and bump keySchema", n, covered)
	}
}

// --- Cache / singleflight ---

func testKey(i int) Key {
	return ExecKey{MaxSteps: uint64(i), Words: []uint16{uint16(i)}}.Sum()
}

func TestCacheHitMiss(t *testing.T) {
	c := New(8)
	var execs atomic.Int64
	exec := func() Entry {
		execs.Add(1)
		return Entry{Output: "out", Insts: 42, Pipe: &pipeline.Stats{Cycles: 7}}
	}

	e1, cached, err := c.Do(context.Background(), testKey(1), exec)
	if err != nil || cached {
		t.Fatalf("first Do: cached=%v err=%v", cached, err)
	}
	e2, cached, err := c.Do(context.Background(), testKey(1), exec)
	if err != nil || !cached {
		t.Fatalf("second Do: cached=%v err=%v", cached, err)
	}
	if execs.Load() != 1 {
		t.Fatalf("execs = %d, want 1", execs.Load())
	}
	if e1.Output != e2.Output || e1.Insts != e2.Insts || *e1.Pipe != *e2.Pipe {
		t.Fatalf("hit differs from fresh: %+v vs %+v", e2, e1)
	}
	// Clones must not alias: mutating one caller's stats can't corrupt the
	// store or another caller.
	e2.Pipe.Cycles = 999
	e3, _ := c.Get(testKey(1))
	if e3.Pipe.Cycles != 7 {
		t.Fatalf("stored entry mutated through a returned clone")
	}
	if s := c.Stats(); s.Hits != 2 || s.Misses != 1 { // Do-hit + Get-hit
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", s)
	}
}

func TestCacheGetDoesNotCountMiss(t *testing.T) {
	c := New(8)
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatalf("unexpected hit")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("probe miss must be silent, stats = %+v", s)
	}
}

func TestSingleflight(t *testing.T) {
	c := New(8)
	const callers = 16
	var execs atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	exec := func() Entry {
		close(started)
		execs.Add(1)
		<-gate // hold every follower in the wait path
		return Entry{Output: "once"}
	}

	var wg sync.WaitGroup
	results := make([]Entry, callers)
	cachedFlags := make([]bool, callers)
	errs := make([]error, callers)

	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], cachedFlags[0], errs[0] = c.Do(context.Background(), testKey(7), exec)
	}()
	<-started // leader is inside exec before any follower arrives

	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], cachedFlags[i], errs[i] = c.Do(context.Background(), testKey(7), func() Entry {
				t.Errorf("follower %d executed", i)
				return Entry{}
			})
		}(i)
	}

	// Wait for every follower to register as a dedup waiter, then release.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Dedup < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never queued: dedup = %d", c.Stats().Dedup)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if execs.Load() != 1 {
		t.Fatalf("execs = %d, want exactly 1 for %d concurrent identical requests", execs.Load(), callers)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: err = %v", i, errs[i])
		}
		if results[i].Output != "once" {
			t.Fatalf("caller %d: output = %q", i, results[i].Output)
		}
		if i > 0 && !cachedFlags[i] {
			t.Fatalf("follower %d not flagged cached", i)
		}
	}
	if cachedFlags[0] {
		t.Fatalf("leader flagged cached")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Dedup != callers-1 || s.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss, %d dedup, %d hits", s, callers-1, callers-1)
	}
}

func TestDoWaiterHonorsContext(t *testing.T) {
	c := New(8)
	gate := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), testKey(3), func() Entry {
		close(started)
		<-gate
		return Entry{}
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, testKey(3), func() Entry { return Entry{} })
		done <- err
	}()
	// Give the waiter time to park on the flight, then cancel it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("waiter did not honor ctx cancellation")
	}
	close(gate)
}

func TestDeterministicErrorsAreCached(t *testing.T) {
	c := New(8)
	detErr := errors.New("qat: write to constant register")
	var execs atomic.Int64
	exec := func() Entry {
		execs.Add(1)
		return Entry{Err: detErr}
	}
	e, _, _ := c.Do(context.Background(), testKey(5), exec)
	if e.Err != detErr {
		t.Fatalf("err = %v", e.Err)
	}
	e, cached, _ := c.Do(context.Background(), testKey(5), exec)
	if !cached || !errors.Is(e.Err, detErr) || execs.Load() != 1 {
		t.Fatalf("deterministic failure not cached: cached=%v err=%v execs=%d", cached, e.Err, execs.Load())
	}
}

func TestContextErrorsAreNotCached(t *testing.T) {
	c := New(8)
	var execs atomic.Int64
	for _, werr := range []error{
		context.Canceled,
		context.DeadlineExceeded,
		fmt.Errorf("run: %w", context.Canceled), // wrapped, as cpu.RunContext returns
	} {
		execs.Store(0)
		k := testKey(100)
		for i := 0; i < 2; i++ {
			e, cached, err := c.Do(context.Background(), k, func() Entry {
				execs.Add(1)
				return Entry{Err: werr}
			})
			if err != nil || cached || !errors.Is(e.Err, werr) {
				t.Fatalf("attempt %d (%v): cached=%v err=%v entryErr=%v", i, werr, cached, err, e.Err)
			}
		}
		if execs.Load() != 2 {
			t.Fatalf("%v: execs = %d, want 2 (uncacheable outcomes must re-execute)", werr, execs.Load())
		}
		if c.Len() != 0 {
			t.Fatalf("%v: uncacheable entry was stored", werr)
		}
	}
}

// TestWaiterRetriesAfterUncacheableLeader: the leader's outcome is
// caller-dependent (ctx error), so the parked follower must not inherit it —
// it loops and executes for itself.
func TestWaiterRetriesAfterUncacheableLeader(t *testing.T) {
	c := New(8)
	k := testKey(9)
	gate := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), k, func() Entry {
		close(started)
		<-gate
		return Entry{Err: context.Canceled}
	})
	<-started

	done := make(chan Entry, 1)
	go func() {
		e, _, _ := c.Do(context.Background(), k, func() Entry {
			return Entry{Output: "retried"}
		})
		done <- e
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Dedup < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never parked")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	select {
	case e := <-done:
		if e.Output != "retried" {
			t.Fatalf("follower entry = %+v, want its own retried execution", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("follower deadlocked after uncacheable leader")
	}
}

// TestPanicReleasesFlight: a panicking exec must release the in-flight slot
// (no deadlocked waiters, no cached garbage) and still propagate.
func TestPanicReleasesFlight(t *testing.T) {
	c := New(8)
	k := testKey(11)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("panic did not propagate")
			}
		}()
		c.Do(context.Background(), k, func() Entry { panic("boom") })
	}()
	if c.Len() != 0 {
		t.Fatalf("panicked execution was cached")
	}
	// The key must be executable again (flight released).
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, cached, err := c.Do(context.Background(), k, func() Entry { return Entry{} }); cached || err != nil {
			t.Errorf("post-panic Do: cached=%v err=%v", cached, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("flight leaked after panic; subsequent Do deadlocked")
	}
}

func TestCacheEvictionCountsAndObs(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(2)
	c.SetObs(NewObs(reg))
	for i := 0; i < 3; i++ {
		c.Do(context.Background(), testKey(i), func() Entry { return Entry{} })
	}
	c.Get(testKey(2)) // hit
	s := c.Stats()
	if s.Evictions != 1 || s.Misses != 3 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 misses / 1 hit", s)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", c.Len())
	}
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"memo_hits_total":           1,
		"memo_misses_total":         3,
		"memo_evictions_total":      1,
		"memo_inflight_dedup_total": 0,
	} {
		if got, ok := snap[name].(uint64); !ok || got != want {
			t.Errorf("%s = %v, want %v", name, snap[name], want)
		}
	}
}

func TestNewDefaultCap(t *testing.T) {
	if got := New(0).lru.Cap(); got != DefaultCap {
		t.Fatalf("New(0) cap = %d, want %d", got, DefaultCap)
	}
	if got := New(-5).lru.Cap(); got != DefaultCap {
		t.Fatalf("New(-5) cap = %d, want %d", got, DefaultCap)
	}
}
