// Package memo is a content-addressed execution cache for Tangled/Qat
// runs. Qat execution is fully deterministic — the PBP model has no
// decoherence and measurement is non-destructive, and the host machine is
// zero-initialized by Load — so an execution's outcome is a pure function
// of the assembled program image and the machine configuration. The single
// biggest perf lever for repeated traffic is therefore never re-executing
// an identical (program, configuration) pair: the host/coprocessor dispatch
// boundary that dominates hybrid designs is removed entirely on a hit.
//
// The cache is keyed by a canonical SHA-256 (ExecKey.Sum) over the program
// words, the machine configuration, and the step budget; the store is a
// true LRU (lru.go), and concurrent identical requests collapse through a
// singleflight: the first caller executes, the rest wait for its result, so
// N simultaneous identical submissions cost one execution.
//
// Cacheability is an outcome property, not just a key property: results
// that depend on the caller (context cancellation, deadline expiry) are
// returned but never stored, while deterministic failures (step-budget
// exhaustion, Qat write-to-constant faults) are cached exactly like
// successes — a repeat would fail identically. Callers that need a real
// execution (cycle tracing, machine inspection) bypass the cache at the
// call site; see internal/farm.
package memo

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"tangled/internal/pipeline"
)

// keySchema versions the key derivation. It covers everything implicit in
// an execution that the explicit fields do not: the zero-initialized
// machine state after Load (registers, memory, pbit/AoB register file) and
// the result layout. Bump it whenever execution semantics or Entry change
// meaning, and every old key misses harmlessly.
const keySchema = "tangled-memo-v1"

// DefaultCap is the entry bound used when New is given a non-positive
// capacity.
const DefaultCap = 4096

// Key is the canonical content address of one execution.
type Key [sha256.Size]byte

// Uint64 folds the key to a 64-bit ring coordinate (its first 8 bytes,
// big-endian). SHA-256 output is uniform, so any 8 bytes place keys evenly
// on a consistent-hash ring; the cluster router uses this to land repeat
// programs on the node whose memo cache already holds the entry.
func (k Key) Uint64() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// ExecKey describes one deterministic execution for hashing. Callers
// normalize defaults before hashing (farm resolves ways 0 to the full
// hardware and an all-zero pipeline config to pipeline.DefaultConfig), so
// two spellings of the same execution share a key.
type ExecKey struct {
	// Pipelined selects the cycle-accurate model; false is the functional
	// machine.
	Pipelined bool
	// Ways and ConstantRegs configure the functional machine's coprocessor
	// (zero/false for pipelined executions, whose Pipeline carries both).
	Ways         int
	ConstantRegs bool
	// Pipeline is the pipelined organization (the zero value for
	// functional executions).
	Pipeline pipeline.Config
	// Backend selects the functional coprocessor's register-file
	// representation: 0 dense, 1 run-encoded. REChunkWays and RESpillRuns
	// only apply to the run-encoded backend and must be the canonical
	// post-default values (dense executions leave all three zero, keeping
	// their keys byte-identical to the pre-backend schema).
	Backend     uint8
	REChunkWays uint8
	RESpillRuns int32
	// MaxSteps is the instruction (functional) or cycle (pipelined)
	// budget. It is part of the key because budget exhaustion is a
	// deterministic, cacheable outcome that depends on it.
	MaxSteps uint64
	// Words is the assembled program image loaded at address 0.
	Words []uint16
}

// Sum derives the canonical SHA-256 key. Every field is serialized at a
// fixed width in a fixed order, so the mapping is injective and
// insensitive to struct layout.
func (k ExecKey) Sum() Key {
	h := sha256.New()
	io.WriteString(h, keySchema)
	var flags byte
	if k.Pipelined {
		flags |= 1 << 0
	}
	if k.ConstantRegs {
		flags |= 1 << 1
	}
	if k.Pipeline.Forwarding {
		flags |= 1 << 2
	}
	if k.Pipeline.TwoWordFetchPenalty {
		flags |= 1 << 3
	}
	if k.Pipeline.ConstantRegs {
		flags |= 1 << 4
	}
	var hdr [45]byte
	hdr[0] = flags
	binary.LittleEndian.PutUint32(hdr[1:], uint32(k.Ways))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(k.Pipeline.Stages))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(k.Pipeline.Ways))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(k.Pipeline.MulLatency))
	binary.LittleEndian.PutUint32(hdr[17:], uint32(k.Pipeline.QatNextLatency))
	binary.LittleEndian.PutUint64(hdr[21:], k.MaxSteps)
	binary.LittleEndian.PutUint64(hdr[29:], uint64(len(k.Words)))
	hdr[37] = k.Backend
	hdr[38] = k.REChunkWays
	binary.LittleEndian.PutUint32(hdr[39:], uint32(k.RESpillRuns))
	// hdr[43:45] reserved (zero): room for future fields without reflowing
	// the layout.
	h.Write(hdr[:])
	buf := make([]byte, 2*len(k.Words))
	for i, w := range k.Words {
		binary.LittleEndian.PutUint16(buf[2*i:], w)
	}
	h.Write(buf)
	var out Key
	h.Sum(out[:0])
	return out
}

// Entry is one cached execution outcome — the deterministic slice of a
// farm.Result.
type Entry struct {
	// Regs is the final Tangled register file.
	Regs [16]uint16
	// Output is everything the program printed through sys.
	Output string
	// Insts is the retired instruction count.
	Insts uint64
	// Pipe holds the cycle accounting of pipelined executions (nil for
	// functional ones).
	Pipe *pipeline.Stats
	// Err is the execution's deterministic failure, if any (nil entries
	// with context-derived errors are never stored; see Cacheable).
	Err error
}

// clone returns a copy safe to hand to a caller: the Pipe stats are
// duplicated so no two results alias one mutable struct.
func (e Entry) clone() Entry {
	if e.Pipe != nil {
		p := *e.Pipe
		e.Pipe = &p
	}
	return e
}

// Cacheable reports whether an execution outcome is a pure function of its
// key. Context-derived failures depend on the caller's deadline or
// disconnect, not on the program, so they are returned but never stored.
func Cacheable(err error) bool {
	return err == nil ||
		!(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Stats is a snapshot of the cache's traffic counters.
type Stats struct {
	// Hits counts results served from the store; Misses counts executions
	// that ran through Do and populated it.
	Hits, Misses uint64
	// Evictions counts entries aged out by the LRU bound.
	Evictions uint64
	// Dedup counts callers that waited on another caller's identical
	// in-flight execution instead of running their own.
	Dedup uint64
}

// flight is one in-progress execution other callers can wait on.
type flight struct {
	done  chan struct{}
	entry Entry
	ok    bool // entry is valid and was cached
}

// Cache is a bounded, content-addressed execution cache with singleflight
// collapsing of concurrent identical requests. Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	lru      *LRU[Key, Entry]
	inflight map[Key]*flight

	hits, misses, evictions, dedup atomic.Uint64

	obs atomic.Pointer[Obs]
}

// New returns a cache bounded to capacity entries (<= 0 means DefaultCap).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	c := &Cache{inflight: make(map[Key]*flight)}
	c.lru = NewLRU[Key, Entry](capacity, func(Key, Entry) {
		c.evictions.Add(1)
		if o := c.obs.Load(); o != nil {
			o.Evictions.Inc()
		}
	})
	return c
}

// SetObs attaches (or with nil detaches) the metric set; see NewObs. Safe
// to call concurrently with cache traffic.
func (c *Cache) SetObs(o *Obs) { c.obs.Store(o) }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Dedup:     c.dedup.Load(),
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Get probes the store, refreshing the entry's recency and counting a hit
// when present. A miss is silent — Get is the cheap pre-admission probe
// (internal/server); only Do, which commits to executing, counts misses.
func (c *Cache) Get(k Key) (Entry, bool) {
	start := time.Now()
	c.mu.Lock()
	e, ok := c.lru.Get(k)
	c.mu.Unlock()
	if !ok {
		return Entry{}, false
	}
	c.hit(start)
	return e.clone(), true
}

// Do returns the cached entry for k, or executes exec to produce it. The
// returned flag reports whether the entry came from the cache (a stored
// entry or another caller's just-finished identical execution) rather than
// this caller's own exec. Concurrent Do calls with the same key run exec
// once: the first caller executes while the rest wait; ctx bounds only the
// wait (the returned error is ctx.Err() then), never the execution, which
// manages its own cancellation and reports it through Entry.Err. Outcomes
// that fail Cacheable are returned to their caller but not stored, and any
// waiters retry.
func (c *Cache) Do(ctx context.Context, k Key, exec func() Entry) (Entry, bool, error) {
	start := time.Now()
	var f *flight
	for {
		c.mu.Lock()
		if e, ok := c.lru.Get(k); ok {
			c.mu.Unlock()
			c.hit(start)
			return e.clone(), true, nil
		}
		waiter, ok := c.inflight[k]
		if !ok {
			f = &flight{done: make(chan struct{})}
			c.inflight[k] = f
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		c.dedup.Add(1)
		if o := c.obs.Load(); o != nil {
			o.Dedup.Inc()
		}
		select {
		case <-waiter.done:
			if waiter.ok {
				c.hit(start)
				return waiter.entry.clone(), true, nil
			}
			// The leader's outcome was caller-dependent and uncacheable;
			// loop and execute (or wait on a newer leader).
		case <-ctx.Done():
			return Entry{}, false, ctx.Err()
		}
	}

	// Leader path. completed distinguishes a normal return from a panic
	// unwinding through exec: a panic must release the flight without
	// caching the half-built entry, or every waiter deadlocks.
	var entry Entry
	completed := false
	defer func() {
		c.mu.Lock()
		delete(c.inflight, k)
		if completed && Cacheable(entry.Err) {
			// Store a clone: the leader keeps (and may mutate) its own
			// entry, so the cached copy must not alias its Pipe stats.
			c.lru.Add(k, entry.clone())
			f.entry, f.ok = entry.clone(), true
		}
		c.mu.Unlock()
		close(f.done)
	}()
	entry = exec()
	completed = true
	c.miss(start)
	return entry, false, nil
}

func (c *Cache) hit(start time.Time) {
	c.hits.Add(1)
	if o := c.obs.Load(); o != nil {
		o.Hits.Inc()
		o.HitSeconds.Observe(time.Since(start).Seconds())
	}
}

func (c *Cache) miss(start time.Time) {
	c.misses.Add(1)
	if o := c.obs.Load(); o != nil {
		o.Misses.Inc()
		o.MissSeconds.Observe(time.Since(start).Seconds())
	}
}
