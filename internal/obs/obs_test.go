package obs

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1})
	v := r.CounterVec("v", "", "k", []string{"a"})
	r.GaugeFunc("f", "", func() float64 { return 1 })
	if c != nil || g != nil || h != nil || v != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// None of these may panic, and all reads must be zero.
	c.Inc()
	c.Add(3)
	g.Set(5)
	g.Add(-2)
	h.Observe(0.5)
	v.At(0).Inc()
	v.At(99).Add(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		v.Total() != 0 || v.Len() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil registry must export nothing")
	}
}

func TestCounterGaugeHistogramVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got != want {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
	v := r.CounterVec("ops", "per-op", "op", []string{"add", "mul"})
	v.At(0).Add(2)
	v.At(1).Inc()
	v.At(7).Inc() // out of range: ignored
	if v.Total() != 3 || v.At(0).Value() != 2 || v.At(1).Value() != 1 {
		t.Fatalf("vec values: total=%d at0=%d at1=%d", v.Total(), v.At(0).Value(), v.At(1).Value())
	}
}

func TestRegistryDedupAndTypeClash(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "")
	b := r.Counter("x", "")
	if a != b {
		t.Fatal("same-name same-type registration must return the existing handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name as a different type must panic")
		}
	}()
	r.Gauge("x", "")
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// checkPrometheusText validates every line of a text exposition dump: each
// is a HELP comment, a TYPE comment with a known type, or a sample line.
func checkPrometheusText(t *testing.T, text string) (samples int) {
	t.Helper()
	typed := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			typed[f[2]] = f[3]
		default:
			if !promLine.MatchString(line) {
				t.Fatalf("line %d: unparseable sample %q", ln+1, line)
			}
			samples++
		}
	}
	if len(typed) == 0 {
		t.Fatal("no TYPE lines in exposition")
	}
	return samples
}

func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter").Add(3)
	r.Gauge("b", "a gauge").Set(-2)
	r.GaugeFunc("c", "a gauge func", func() float64 { return 1.5 })
	h := r.Histogram("d_seconds", "a histogram", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(3)
	v := r.CounterVec("e_total", "a vec", "op", []string{"add", `quo"te`})
	v.At(0).Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if n := checkPrometheusText(t, sb.String()); n < 9 {
		t.Fatalf("expected >= 9 sample lines, got %d:\n%s", n, sb.String())
	}
	// Histogram buckets must be cumulative and end at +Inf == count.
	out := sb.String()
	for _, want := range []string{
		`d_seconds_bucket{le="0.001"} 1`,
		`d_seconds_bucket{le="0.1"} 1`,
		`d_seconds_bucket{le="+Inf"} 2`,
		`d_seconds_count 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	v := r.CounterVec("vec", "", "k", []string{"a", "b"})
	h := r.Histogram("h", "", []float64{1, 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				v.At(w % 2).Inc()
				h.Observe(float64(i % 20))
			}
		}(w)
	}
	// Concurrent scrapes must be safe too.
	for i := 0; i < 10; i++ {
		r.WritePrometheus(io.Discard)
	}
	wg.Wait()
	if c.Value() != 8000 || v.Total() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d vec=%d h=%d", c.Value(), v.Total(), h.Count())
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "").Add(42)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" {
			if !strings.Contains(string(body), "served_total 42") {
				t.Fatalf("metrics body missing counter:\n%s", body)
			}
			checkPrometheusText(t, string(body))
		}
	}
}

func TestCounterSet(t *testing.T) {
	r := NewRegistry()
	cs := r.CounterSet("node_routed_total", "requests routed per node", "node")
	cs.With("n1").Inc()
	cs.With("n1").Add(2)
	cs.With("n2").Inc()
	if got := cs.With("n1").Value(); got != 3 {
		t.Fatalf("n1 = %d, want 3", got)
	}
	if got := cs.Total(); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	if vals := cs.Values(); len(vals) != 2 || vals[0] != "n1" || vals[1] != "n2" {
		t.Fatalf("values = %v", vals)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE node_routed_total counter",
		`node_routed_total{node="n1"} 3`,
		`node_routed_total{node="n2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	snap := r.Snapshot()
	if snap[`node_routed_total{node="n1"}`] != uint64(3) {
		t.Fatalf("snapshot = %v", snap)
	}

	// Nil-safety, like every other handle.
	var nilSet *CounterSet
	nilSet.With("x").Inc()
	if nilSet.Total() != 0 || nilSet.Values() != nil {
		t.Fatal("nil CounterSet must be a no-op")
	}
	var nilReg *Registry
	if nilReg.CounterSet("x", "", "k") != nil {
		t.Fatal("nil registry must hand out nil CounterSet")
	}
}
