// Package obs is the observability spine of the simulator stack: a
// zero-dependency, allocation-conscious metrics registry (counters, gauges,
// fixed-bucket histograms) plus a bounded cycle-trace ring buffer with JSONL
// export (trace.go) and an HTTP face exposing Prometheus text, expvar and
// pprof (http.go).
//
// The design follows the same philosophy as hardware performance counters:
// instrumentation points are compiled into the machine models (cpu, qat,
// pipeline, farm) but cost one nil check when disabled. Every metric handle
// (*Counter, *Gauge, *Histogram, *CounterVec) is safe to use with a nil
// receiver, and a nil *Registry hands out nil handles, so the idiomatic
// wiring is
//
//	met := cpu.NewMetrics(reg) // reg == nil -> met == nil -> all no-ops
//
// and the hot path stays clean unless an operator opts in (qatfarm/
// tangled-run -metrics).
//
// Handles are updated with atomics and registries are mutex-guarded, so one
// registry may be shared by every worker of a farm batch: per-opcode counts
// aggregate across pooled machines exactly because the handles are shared.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// usable; all methods are nil-receiver safe no-ops.
type Counter struct {
	name, help string
	n          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.n.Add(delta)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a settable int64 metric (queue depths, in-flight jobs). All
// methods are nil-receiver safe.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bucket upper bounds are chosen at
// registration (an implicit +Inf bucket is appended) and observations are
// recorded with atomics, so concurrent Observe calls never allocate.
type Histogram struct {
	name, help string
	bounds     []float64 // sorted upper bounds, exclusive of +Inf
	counts     []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// CounterVec is a dense family of counters over one label with a fixed,
// registration-time value set — sized for per-opcode or per-stage counting,
// where the index is already a small integer and a map lookup per event
// would dominate the cost of the event itself.
type CounterVec struct {
	name, help, label string
	values            []string
	counters          []Counter
}

// At returns the counter for label-value index i. Out-of-range indices and
// nil vecs return nil, which is safe to use.
func (v *CounterVec) At(i int) *Counter {
	if v == nil || i < 0 || i >= len(v.counters) {
		return nil
	}
	return &v.counters[i]
}

// Len returns the number of label values (0 for nil).
func (v *CounterVec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.counters)
}

// Total sums the whole family.
func (v *CounterVec) Total() uint64 {
	if v == nil {
		return 0
	}
	var n uint64
	for i := range v.counters {
		n += v.counters[i].Value()
	}
	return n
}

// GaugeVec is a gauge family over one label with a dynamic value set:
// children are created on first use (With), unlike CounterVec's fixed
// registration-time values. Built for per-tenant gauges, where the label
// population (tenant names) is only known at serving time. Children are
// never removed; a serving layer's tenant set is assumed to be bounded by
// its own admission policy.
type GaugeVec struct {
	name, help, label string
	mu                sync.Mutex
	gauges            map[string]*Gauge
}

// With returns the child gauge for the label value, creating it on first
// use. Nil vecs return nil, which every Gauge method accepts.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.gauges[value]
	if !ok {
		g = &Gauge{name: v.name}
		v.gauges[value] = g
	}
	return g
}

// Values returns the current label values, sorted (empty for nil).
func (v *GaugeVec) Values() []string {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.gauges))
	for k := range v.gauges {
		vals = append(vals, k)
	}
	sort.Strings(vals)
	return vals
}

// CounterSet is a counter family over one label with a dynamic value set —
// the counter analog of GaugeVec, for populations only known at serving
// time (cluster node IDs, tenant names). Children are created on first use
// and never removed; the label population is assumed bounded by the owning
// layer (a cluster's node set, an admission policy's tenant set).
type CounterSet struct {
	name, help, label string
	mu                sync.Mutex
	counters          map[string]*Counter
}

// With returns the child counter for the label value, creating it on first
// use. Nil sets return nil, which every Counter method accepts.
func (v *CounterSet) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.counters[value]
	if !ok {
		c = &Counter{name: v.name}
		v.counters[value] = c
	}
	return c
}

// Values returns the current label values, sorted (empty for nil).
func (v *CounterSet) Values() []string {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.counters))
	for k := range v.counters {
		vals = append(vals, k)
	}
	sort.Strings(vals)
	return vals
}

// Total sums the whole family (0 for nil).
func (v *CounterSet) Total() uint64 {
	if v == nil {
		return 0
	}
	var n uint64
	for _, val := range v.Values() {
		n += v.With(val).Value()
	}
	return n
}

// gaugeFunc is a scrape-time gauge: the function is called during export.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// metric is anything the registry can export.
type metric interface {
	metricName() string
	metricType() string
	write(w io.Writer)
}

// Registry holds named metrics and renders them in Prometheus text format.
// A nil *Registry is valid and hands out nil (no-op) handles, which is how
// instrumentation is disabled.
type Registry struct {
	mu      sync.Mutex
	ordered []metric
	byName  map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// add registers m under its name, or returns the existing metric when one
// with the same name and concrete type is already present (so layered
// wiring is idempotent). Re-registering a name as a different type panics:
// that is a programming error, like a duplicate flag.
func (r *Registry) add(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[m.metricName()]; ok {
		if fmt.Sprintf("%T", old) != fmt.Sprintf("%T", m) {
			panic("obs: metric " + m.metricName() + " re-registered as a different type")
		}
		return old
	}
	r.byName[m.metricName()] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter registers (or fetches) a counter. Nil registries return nil.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.add(&Counter{name: name, help: help}).(*Counter)
}

// Gauge registers (or fetches) a gauge. Nil registries return nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.add(&Gauge{name: name, help: help}).(*Gauge)
}

// GaugeFunc registers a scrape-time gauge computed by fn. Nil registries
// ignore the call.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.add(&gaugeFunc{name: name, help: help, fn: fn})
}

// Histogram registers (or fetches) a histogram with the given upper bucket
// bounds (sorted ascending; +Inf is implicit). Nil registries return nil.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	return r.add(h).(*Histogram)
}

// GaugeVec registers (or fetches) a dynamic-label gauge family. Nil
// registries return nil.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	v := &GaugeVec{name: name, help: help, label: label, gauges: make(map[string]*Gauge)}
	return r.add(v).(*GaugeVec)
}

// CounterVec registers (or fetches) a counter family over one label with the
// given fixed value set. Nil registries return nil.
func (r *Registry) CounterVec(name, help, label string, values []string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{name: name, help: help, label: label,
		values: append([]string(nil), values...), counters: make([]Counter, len(values))}
	return r.add(v).(*CounterVec)
}

// CounterSet registers (or fetches) a dynamic-label counter family. Nil
// registries return nil.
func (r *Registry) CounterSet(name, help, label string) *CounterSet {
	if r == nil {
		return nil
	}
	v := &CounterSet{name: name, help: help, label: label, counters: make(map[string]*Counter)}
	return r.add(v).(*CounterSet)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ms := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	for _, m := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n", m.metricName(), escapeHelp(helpOf(m)))
		fmt.Fprintf(w, "# TYPE %s %s\n", m.metricName(), m.metricType())
		m.write(w)
	}
}

// Snapshot returns a name -> value map of every metric, for expvar export.
// Vectors flatten to name{label="value"} keys; histograms to _count/_sum.
func (r *Registry) Snapshot() map[string]interface{} {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	out := make(map[string]interface{})
	for _, m := range ms {
		switch m := m.(type) {
		case *Counter:
			out[m.name] = m.Value()
		case *Gauge:
			out[m.name] = m.Value()
		case *gaugeFunc:
			out[m.name] = m.fn()
		case *Histogram:
			out[m.name+"_count"] = m.Count()
			out[m.name+"_sum"] = m.Sum()
		case *CounterVec:
			for i, v := range m.values {
				out[m.name+"{"+m.label+"="+strconv.Quote(v)+"}"] = m.counters[i].Value()
			}
		case *GaugeVec:
			for _, v := range m.Values() {
				out[m.name+"{"+m.label+"="+strconv.Quote(v)+"}"] = m.With(v).Value()
			}
		case *CounterSet:
			for _, v := range m.Values() {
				out[m.name+"{"+m.label+"="+strconv.Quote(v)+"}"] = m.With(v).Value()
			}
		}
	}
	return out
}

func helpOf(m metric) string {
	switch m := m.(type) {
	case *Counter:
		return m.help
	case *Gauge:
		return m.help
	case *gaugeFunc:
		return m.help
	case *Histogram:
		return m.help
	case *CounterVec:
		return m.help
	case *GaugeVec:
		return m.help
	case *CounterSet:
		return m.help
	}
	return ""
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
}

func (f *gaugeFunc) metricName() string { return f.name }
func (f *gaugeFunc) metricType() string { return "gauge" }
func (f *gaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn()))
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) write(w io.Writer) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.Count())
}

func (v *CounterVec) metricName() string { return v.name }
func (v *CounterVec) metricType() string { return "counter" }
func (v *CounterVec) write(w io.Writer) {
	for i, val := range v.values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, escapeLabel(val), v.counters[i].Value())
	}
}

func (v *GaugeVec) metricName() string { return v.name }
func (v *GaugeVec) metricType() string { return "gauge" }
func (v *GaugeVec) write(w io.Writer) {
	for _, val := range v.Values() {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, escapeLabel(val), v.With(val).Value())
	}
}

func (v *CounterSet) metricName() string { return v.name }
func (v *CounterSet) metricType() string { return "counter" }
func (v *CounterSet) write(w io.Writer) {
	for _, val := range v.Values() {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, escapeLabel(val), v.With(val).Value())
	}
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format; %q in the
// writers above adds the surrounding quotes and escapes quotes/backslashes,
// so this only normalizes newlines (which %q would render as \n already —
// kept for values built outside the writers).
func escapeLabel(s string) string {
	return strings.NewReplacer("\n", " ").Replace(s)
}

func escapeHelp(s string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(s)
}
