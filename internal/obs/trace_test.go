package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func ev(c uint64) TraceEvent {
	return TraceEvent{Cycle: c, PC: uint16(c * 2), Stages: []string{"IF", "--"}, Event: "load-use"}
}

func TestTraceRingBounds(t *testing.T) {
	r := NewTraceRing(4)
	for c := uint64(1); c <= 10; c++ {
		r.Append(ev(c))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	got := r.Events()
	for i, want := range []uint64{7, 8, 9, 10} {
		if got[i].Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (evictions must keep the newest)", i, got[i].Cycle, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset must empty the ring")
	}
}

func TestTraceRingPartiallyFull(t *testing.T) {
	r := NewTraceRing(8)
	r.Append(ev(1))
	r.Append(ev(2))
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	if got := r.Events(); len(got) != 2 || got[0].Cycle != 1 || got[1].Cycle != 2 {
		t.Fatalf("events = %+v", got)
	}
}

func TestNilTraceRing(t *testing.T) {
	var r *TraceRing
	r.Append(ev(1)) // must not panic
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil ring must read as empty")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []TraceEvent{
		{Cycle: 1, PC: 0, Stages: []string{"lex $1,3", "--", "--", "--"}},
		{Cycle: 2, PC: 1, Stages: []string{"add $1,$2", "lex $1,3", "--", "--"}, Event: "load-use"},
		{Cycle: 3, PC: 4, Inst: "sys", Event: "halt"},
		{Cycle: 4, PC: 0xFFFF},
		{Cycle: 5, PC: 7, Inst: "sys", Event: "retire", Req: "req-42"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(events)+1 {
		t.Fatalf("wrote %d lines, want %d (header + events)", got, len(events)+1)
	}
	if !strings.HasPrefix(buf.String(), fmt.Sprintf(`{"schema":"tangled-cycle-trace","version":%d}`, TraceSchemaVersion)) {
		t.Fatalf("missing header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, events)
	}
}

func TestReadJSONLRejectsBadHeaders(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"not json":      "cycle trace\n",
		"wrong schema":  `{"schema":"other","version":1}` + "\n",
		"wrong version": fmt.Sprintf(`{"schema":%q,"version":%d}`+"\n", TraceSchema, TraceSchemaVersion+1),
		"bad event":     fmt.Sprintf(`{"schema":%q,"version":%d}`+"\n{bad}\n", TraceSchema, TraceSchemaVersion),
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestRingWriteJSONL(t *testing.T) {
	r := NewTraceRing(2)
	for c := uint64(1); c <= 3; c++ {
		r.Append(ev(c))
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Cycle != 2 || back[1].Cycle != 3 {
		t.Fatalf("ring export = %+v", back)
	}
}

func TestTraceRingConcurrentAppend(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Append(ev(uint64(i)))
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 || r.Dropped() != 4*500-64 {
		t.Fatalf("Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
}

func TestTagTrace(t *testing.T) {
	r := NewTraceRing(8)
	tagged := TagTrace(r, "req-7")
	tagged.Append(TraceEvent{Cycle: 1, PC: 2})
	tagged.Append(TraceEvent{Cycle: 2, PC: 3, Req: "overwritten"})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for i, e := range evs {
		if e.Req != "req-7" {
			t.Errorf("event %d: Req = %q, want %q", i, e.Req, "req-7")
		}
	}
	if TagTrace(nil, "x") != nil {
		t.Fatal("TagTrace(nil) must be nil so detached tracing stays free")
	}
}
