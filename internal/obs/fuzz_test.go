package obs

// FuzzTraceRoundTrip feeds arbitrary bytes to the JSONL trace decoder and
// pins two properties on whatever decodes successfully:
//
//  1. re-encoding is always possible, and
//  2. encode -> decode -> encode is a fixed point (byte-identical), i.e.
//     normalized events survive the codec exactly.
//
// The seeds cover the header, every TraceEvent field, eviction-shaped
// streams, and near-miss headers. Run under CI alongside the asm/isa
// fuzzers (see .github/workflows/ci.yml).

import (
	"bytes"
	"reflect"
	"testing"
)

func FuzzTraceRoundTrip(f *testing.F) {
	seed := func(events []TraceEvent) {
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, events); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(nil)
	seed([]TraceEvent{{Cycle: 1, PC: 2, Stages: []string{"IF", "ID", "EXM", "WB"}}})
	seed([]TraceEvent{
		{Cycle: 1, PC: 0, Inst: "lex $1,-5"},
		{Cycle: 2, PC: 1, Event: "load-use;fetch"},
		{Cycle: 3, PC: 0xFFFF, Stages: []string{"--"}, Event: "halt"},
	})
	f.Add([]byte(`{"schema":"tangled-cycle-trace","version":1}` + "\n" +
		`{"cycle":18446744073709551615,"pc":65535,"stages":[],"event":"flush"}` + "\n"))
	f.Add([]byte(`{"schema":"tangled-cycle-trace","version":2}` + "\n"))
	f.Add([]byte(`{"schema":"bogus","version":1}` + "\n"))
	f.Add([]byte("not json at all\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, never panic
		}
		var enc1 bytes.Buffer
		if err := WriteJSONL(&enc1, events); err != nil {
			t.Fatalf("decoded events failed to re-encode: %v", err)
		}
		back, err := ReadJSONL(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("own encoding failed to decode: %v\n%s", err, enc1.Bytes())
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(back))
		}
		var enc2 bytes.Buffer
		if err := WriteJSONL(&enc2, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("encode is not a fixed point:\n%s\nvs\n%s", enc1.Bytes(), enc2.Bytes())
		}
		// Field-level equality (not just encoding equality) for the fields
		// the golden-trace differ relies on.
		for i := range events {
			if events[i].Cycle != back[i].Cycle || events[i].PC != back[i].PC ||
				events[i].Inst != back[i].Inst || events[i].Event != back[i].Event ||
				!reflect.DeepEqual(events[i].Stages, back[i].Stages) {
				t.Fatalf("event %d changed: %+v -> %+v", i, events[i], back[i])
			}
		}
	})
}
