package obs

// The operational face: one handler serving the registry as Prometheus
// text at /metrics, the standard expvar JSON at /debug/vars (with the
// registry published alongside the runtime's memstats), and the pprof
// endpoints under /debug/pprof/. cmd/qatfarm and cmd/tangled-run mount it
// with -http.

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the process-wide expvar name; expvar.Publish panics on
// duplicates, and tests may build several handlers.
var expvarOnce sync.Once

// Handler returns an http.Handler exposing r at /metrics plus the expvar
// and pprof debug endpoints.
func Handler(r *Registry) http.Handler {
	expvarOnce.Do(func() {
		expvar.Publish("tangled_metrics", expvar.Func(func() interface{} {
			return r.Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts Handler(r) on addr in a background goroutine and returns the
// server (Close/Shutdown to stop) and its bound address — useful when addr
// ends in :0.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
