package obs

// Cycle tracing: a bounded ring of per-cycle (or per-instruction) events
// with a line-oriented JSON export, the machine-readable counterpart of the
// textual pipeline diagram in internal/pipeline/trace.go. The ring bounds
// memory no matter how long a run is — a trace of the last N cycles is what
// an operator wants from a misbehaving long job, and it is what a golden
// regression test wants from a short one (pick N larger than the run).
//
// The JSONL stream is versioned: the first line is a header record naming
// the schema and version (see docs/TRACE.md), every following line is one
// TraceEvent. Encode and decode are exact inverses over normalized events,
// a property pinned by FuzzTraceRoundTrip.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceSchema names the JSONL trace stream format.
const TraceSchema = "tangled-cycle-trace"

// TraceSchemaVersion is bumped whenever a TraceEvent field changes meaning;
// docs/TRACE.md records the history.
const TraceSchemaVersion = 2

// TraceEvent is one row of a cycle trace. Pipelined runs emit one event per
// clock with the start-of-cycle stage occupancy and the hazard causes the
// cycle incurred; functional runs emit one event per retired instruction
// with its disassembly.
type TraceEvent struct {
	// Cycle is the clock cycle (pipelined) or retired-instruction ordinal
	// (functional), 1-based.
	Cycle uint64 `json:"cycle"`
	// PC is the program counter of the instruction in EX (pipelined, or the
	// fetch PC when EX is empty) or of the retired instruction (functional).
	PC uint16 `json:"pc"`
	// Inst is the instruction disassembly (functional traces only).
	Inst string `json:"inst,omitempty"`
	// Stages is the stage occupancy at the start of the cycle, in pipeline
	// order ("--" marks a bubble); pipelined traces only.
	Stages []string `json:"stages,omitempty"`
	// Event names what the cycle lost or resolved, as semicolon-joined
	// causes in fixed order: load-use, raw, ex-busy, fetch, flush, halt.
	// Empty for a cycle that just advanced.
	Event string `json:"event,omitempty"`
	// Req is the serving-layer request ID of the job that produced this
	// event (schema version 2). Empty outside a serving context; in a ring
	// shared by concurrent jobs it is what separates the interleaved rows.
	Req string `json:"req,omitempty"`
}

// normalize folds semantically empty values to their canonical form so
// encode/decode round-trips are exact.
func (e *TraceEvent) normalize() {
	if len(e.Stages) == 0 {
		e.Stages = nil
	}
}

// TraceSink receives trace events; *TraceRing is the canonical
// implementation. Wrappers like TagTrace decorate events on the way in.
type TraceSink interface {
	Append(TraceEvent)
}

// tagSink stamps a request ID into every event before forwarding.
type tagSink struct {
	sink TraceSink
	req  string
}

func (t tagSink) Append(e TraceEvent) {
	e.Req = t.req
	t.sink.Append(e)
}

// TagTrace returns a sink that stamps req into the Req field of every event
// it forwards to s — how a serving layer correlates the interleaved rows of
// a shared ring back to individual requests. A nil s returns nil.
func TagTrace(s TraceSink, req string) TraceSink {
	if s == nil {
		return nil
	}
	return tagSink{sink: s, req: req}
}

// TraceRing is a bounded, goroutine-safe event buffer: appends beyond the
// capacity overwrite the oldest events and are tallied in Dropped. A nil
// ring ignores appends, so machines can call Append unconditionally.
type TraceRing struct {
	mu      sync.Mutex
	buf     []TraceEvent
	next    int
	full    bool
	dropped uint64
}

// DefaultTraceCap is the ring capacity used when none is given: deep enough
// for every program in this repository's test corpus, ~1.5 MB at the zero
// Stages/Inst footprint.
const DefaultTraceCap = 16384

// NewTraceRing returns a ring holding the last capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceRing{buf: make([]TraceEvent, capacity)}
}

// Append records one event, evicting the oldest when full.
func (t *TraceRing) Append(e TraceEvent) {
	if t == nil {
		return
	}
	e.normalize()
	t.mu.Lock()
	if t.full {
		t.dropped++
	}
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *TraceRing) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Dropped returns how many events were evicted by later appends.
func (t *TraceRing) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the buffered events, oldest first, as a copy.
func (t *TraceRing) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]TraceEvent(nil), t.buf[:t.next]...)
	}
	out := make([]TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// Reset empties the ring without shrinking its buffer.
func (t *TraceRing) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.next, t.full, t.dropped = 0, false, 0
	t.mu.Unlock()
}

// WriteJSONL exports the ring's events; see the package-level WriteJSONL.
func (t *TraceRing) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Events())
}

// traceHeader is the first line of a JSONL trace stream.
type traceHeader struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
}

// WriteJSONL writes the versioned header line followed by one JSON object
// per event.
func WriteJSONL(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Schema: TraceSchema, Version: TraceSchemaVersion}); err != nil {
		return err
	}
	for i := range events {
		e := events[i]
		e.normalize()
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxTraceLine bounds one JSONL line; stage occupancy rows are far below
// this even with every stage holding a worst-case disassembly.
const maxTraceLine = 1 << 20

// ReadJSONL decodes a stream produced by WriteJSONL, validating the header.
// Events are returned normalized, so ReadJSONL(WriteJSONL(evs)) == evs for
// normalized evs.
func ReadJSONL(r io.Reader) ([]TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxTraceLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("obs: trace stream is empty (missing header)")
	}
	var h traceHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("obs: bad trace header: %w", err)
	}
	if h.Schema != TraceSchema {
		return nil, fmt.Errorf("obs: trace schema %q, want %q", h.Schema, TraceSchema)
	}
	if h.Version != TraceSchemaVersion {
		return nil, fmt.Errorf("obs: trace schema version %d, this build reads %d", h.Version, TraceSchemaVersion)
	}
	var events []TraceEvent
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue // tolerate trailing blank lines
		}
		var e TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		e.normalize()
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
