package pipeline

import (
	"math/rand"
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/isa"
)

const halt = "\nlex $0,0\nsys\n"

func mustRun(t *testing.T, src string, cfg Config) *Pipeline {
	t.Helper()
	p, err := RunProgram(src, cfg, 10_000_000, nil)
	if err != nil {
		t.Fatalf("run: %v\nstats: %+v", err, p)
	}
	return p
}

// TestS31PipelineIPCStraightLine: with no hazards the pipelines sustain one
// instruction per cycle — the paper's headline feasibility claim ("All
// implementations were capable of sustaining completion of one instruction
// every clock cycle, provided there were no pipeline interlocks").
func TestS31PipelineIPCStraightLine(t *testing.T) {
	var b strings.Builder
	const n = 2000
	for i := 0; i < n; i++ {
		b.WriteString("lex $1,5\n") // no dependences between lex's
	}
	b.WriteString(halt)
	for _, stages := range []int{4, 5} {
		cfg := DefaultConfig()
		cfg.Stages = stages
		cfg.Ways = 4
		p := mustRun(t, b.String(), cfg)
		if p.Stats.Insts != n+2 {
			t.Fatalf("%d-stage: retired %d, want %d", stages, p.Stats.Insts, n+2)
		}
		// Cycles = insts + pipeline fill; CPI must approach 1.
		fill := uint64(stages + 1)
		if p.Stats.Cycles > p.Stats.Insts+fill {
			t.Errorf("%d-stage: %d cycles for %d insts (expected <= insts+%d)",
				stages, p.Stats.Cycles, p.Stats.Insts, fill)
		}
		if cpi := p.Stats.CPI(); cpi > 1.01 {
			t.Errorf("%d-stage: CPI %.4f, want ~1", stages, cpi)
		}
	}
}

// TestS31ForwardingCoversALUChains: back-to-back dependent ALU ops need no
// stalls when forwarding is on.
func TestS31ForwardingCoversALUChains(t *testing.T) {
	var b strings.Builder
	b.WriteString("lex $1,1\n")
	for i := 0; i < 500; i++ {
		b.WriteString("add $1,$1\nxor $2,$1\nand $3,$2\n")
	}
	b.WriteString(halt)
	for _, stages := range []int{4, 5} {
		cfg := DefaultConfig()
		cfg.Stages = stages
		cfg.Ways = 4
		p := mustRun(t, b.String(), cfg)
		if p.Stats.LoadUseStalls != 0 || p.Stats.RawStalls != 0 {
			t.Errorf("%d-stage: unexpected stalls %+v", stages, p.Stats)
		}
		if cpi := p.Stats.CPI(); cpi > 1.01 {
			t.Errorf("%d-stage: CPI %.4f with full forwarding", stages, cpi)
		}
	}
}

// TestLoadUseStall: the canonical 5-stage load-use hazard costs exactly one
// bubble; the 4-stage EXM organization hides it entirely.
func TestLoadUseStall(t *testing.T) {
	src := `
	lex $2,100
	loadi $1,0x1234
	store $1,$2
	load $3,$2       ; load...
	add $3,$3        ; ...immediately used
	` + halt
	cfg5 := DefaultConfig()
	cfg5.Ways = 4
	p5 := mustRun(t, src, cfg5)
	if p5.Stats.LoadUseStalls != 1 {
		t.Errorf("5-stage load-use stalls = %d, want 1", p5.Stats.LoadUseStalls)
	}
	cfg4 := cfg5
	cfg4.Stages = 4
	p4 := mustRun(t, src, cfg4)
	if p4.Stats.LoadUseStalls != 0 {
		t.Errorf("4-stage load-use stalls = %d, want 0", p4.Stats.LoadUseStalls)
	}
	if int16(p5.Machine().Regs[3]) != 0x2468 || int16(p4.Machine().Regs[3]) != 0x2468 {
		t.Error("load-use value wrong")
	}
}

func TestLoadWithGapNoStall(t *testing.T) {
	src := `
	lex $2,100
	loadi $1,0x1234
	store $1,$2
	load $3,$2
	lex $4,7         ; independent gap instruction
	add $3,$3
	` + halt
	cfg := DefaultConfig()
	cfg.Ways = 4
	p := mustRun(t, src, cfg)
	if p.Stats.LoadUseStalls != 0 {
		t.Errorf("gapped load stalled: %+v", p.Stats)
	}
}

// TestS31NoForwardingStalls: disabling forwarding makes dependent pairs pay
// the classic 2-cycle (5-stage) / 1-cycle (4-stage) penalty.
func TestS31NoForwardingStalls(t *testing.T) {
	src := "lex $1,1\nadd $1,$1\n" + halt
	for _, c := range []struct {
		stages int
		want   uint64
	}{{5, 2}, {4, 1}} {
		cfg := DefaultConfig()
		cfg.Stages = c.stages
		cfg.Ways = 4
		cfg.Forwarding = false
		p := mustRun(t, src, cfg)
		// add depends on lex; the sys epilogue depends on the final lex $0.
		// Count only the first dependence by construction: lex $0,0 then
		// sys is also a RAW pair, so expect exactly 2 dependent pairs.
		if p.Stats.RawStalls != 2*c.want {
			t.Errorf("%d-stage no-forwarding: RawStalls=%d, want %d",
				c.stages, p.Stats.RawStalls, 2*c.want)
		}
	}
}

// TestBranchPenalty: a taken branch squashes the two younger instructions
// (EX resolution, predict not-taken); untaken branches are free.
func TestBranchPenalty(t *testing.T) {
	taken := `
	lex $1,1
	brt $1,skip
	lex $2,99
	lex $2,98
	skip: lex $3,5
	` + halt
	cfg := DefaultConfig()
	cfg.Ways = 4
	p := mustRun(t, taken, cfg)
	if p.Stats.BranchFlushes != 1 {
		t.Errorf("flushes = %d, want 1", p.Stats.BranchFlushes)
	}
	if p.Stats.FlushCycles != 2 {
		t.Errorf("flush cycles = %d, want 2", p.Stats.FlushCycles)
	}
	if p.Machine().Regs[2] != 0 || p.Machine().Regs[3] != 5 {
		t.Error("wrong-path instruction retired")
	}

	untaken := `
	lex $1,0
	brt $1,skip
	lex $2,42
	skip: lex $3,5
	` + halt
	p2 := mustRun(t, untaken, cfg)
	if p2.Stats.BranchFlushes != 0 {
		t.Errorf("untaken branch flushed: %+v", p2.Stats)
	}
	if p2.Machine().Regs[2] != 42 {
		t.Error("fall-through path lost")
	}
}

// TestBranchPenaltyCycleCount measures the 2-cycle cost directly by
// comparing a taken-branch loop against its straight-line equivalent.
func TestBranchPenaltyCycleCount(t *testing.T) {
	loop := `
	lex $1,100
	lex $2,-1
	loop: add $1,$2
	brt $1,loop
	` + halt
	cfg := DefaultConfig()
	cfg.Ways = 4
	p := mustRun(t, loop, cfg)
	// 99 taken branches x 2 bubbles each.
	if p.Stats.FlushCycles != 198 {
		t.Errorf("flush cycles = %d, want 198", p.Stats.FlushCycles)
	}
}

// TestTwoWordFetchPenalty: the variable-length Qat instructions cost an
// extra fetch cycle when the fetch path is one word wide.
func TestTwoWordFetchPenalty(t *testing.T) {
	var b strings.Builder
	const n = 500
	for i := 0; i < n; i++ {
		b.WriteString("and @1,@2,@3\n")
	}
	b.WriteString(halt)
	cfg := DefaultConfig()
	cfg.Ways = 4
	fast := mustRun(t, b.String(), cfg)
	cfg.TwoWordFetchPenalty = true
	slow := mustRun(t, b.String(), cfg)
	if fast.Stats.FetchStalls != 0 {
		t.Errorf("wide fetch saw %d fetch stalls", fast.Stats.FetchStalls)
	}
	if slow.Stats.FetchStalls < n {
		t.Errorf("narrow fetch saw %d fetch stalls, want >= %d", slow.Stats.FetchStalls, n)
	}
	if slow.Stats.Cycles <= fast.Stats.Cycles+uint64(n)-10 {
		t.Errorf("narrow fetch cycles %d vs wide %d: penalty missing",
			slow.Stats.Cycles, fast.Stats.Cycles)
	}
}

// TestQatTangledInterlock: meas/next results forward into dependent
// Tangled instructions — "processor pipeline interlocks and forwarding are
// determined in part by coprocessor operations".
func TestQatTangledInterlock(t *testing.T) {
	src := `
	had @5,3
	lex $1,5
	next $1,@5       ; $1 = 8
	add $1,$1        ; consumes the coprocessor result immediately
	copy $2,$1
	meas $3,@5       ; uses $3=0: channel 0 -> 0
	` + halt
	cfg := DefaultConfig()
	cfg.Ways = 8
	p := mustRun(t, src, cfg)
	if p.Machine().Regs[2] != 16 {
		t.Errorf("$2 = %d, want 16", p.Machine().Regs[2])
	}
	if p.Stats.LoadUseStalls != 0 || p.Stats.RawStalls != 0 {
		t.Errorf("coprocessor results must forward: %+v", p.Stats)
	}
}

// TestS31NextLatencyAblation: splitting next across EX cycles (the Figure 8
// OR-tree discussion) costs ExBusy stalls but preserves results.
func TestS31NextLatencyAblation(t *testing.T) {
	var b strings.Builder
	b.WriteString("had @5,3\nlex $1,0\n")
	for i := 0; i < 100; i++ {
		b.WriteString("next $1,@5\nlex $1,0\n")
	}
	b.WriteString(halt)
	cfg := DefaultConfig()
	cfg.Ways = 8
	base := mustRun(t, b.String(), cfg)
	cfg.QatNextLatency = 4
	slow := mustRun(t, b.String(), cfg)
	if slow.Stats.ExBusyStalls != 300 { // 100 nexts x 3 extra cycles
		t.Errorf("ExBusyStalls = %d, want 300", slow.Stats.ExBusyStalls)
	}
	if slow.Stats.Cycles <= base.Stats.Cycles {
		t.Error("latency 4 not slower than latency 1")
	}
	if slow.Machine().Regs[1] != base.Machine().Regs[1] {
		t.Error("latency changed semantics")
	}
}

func TestMulLatencyAblation(t *testing.T) {
	src := "lex $1,3\nlex $2,5\nmul $1,$2\nmul $1,$2\nmul $1,$2" + halt
	cfg := DefaultConfig()
	cfg.Ways = 4
	cfg.MulLatency = 3
	p := mustRun(t, src, cfg)
	if p.Stats.ExBusyStalls != 6 {
		t.Errorf("ExBusyStalls = %d, want 6", p.Stats.ExBusyStalls)
	}
	if int16(p.Machine().Regs[1]) != 375 {
		t.Errorf("$1 = %d, want 375", int16(p.Machine().Regs[1]))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Stages: 3, Ways: 4, MulLatency: 1, QatNextLatency: 1}); err == nil {
		t.Error("3-stage accepted")
	}
	if _, err := New(Config{Stages: 5, Ways: 4, MulLatency: 0, QatNextLatency: 1}); err == nil {
		t.Error("0 latency accepted")
	}
}

func TestIllegalInstructionAtEXFaults(t *testing.T) {
	prog := &asm.Program{Words: []uint16{0xA000}}
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err == nil {
		t.Fatal("illegal instruction did not fault")
	}
}

func TestWrongPathGarbageIsSquashed(t *testing.T) {
	// A taken branch jumps over a word that does not decode; the pipeline
	// fetches it speculatively but must squash it without faulting.
	src := `
	lex $1,1
	brt $1,ok
	.word 0xA000     ; illegal on the wrong path
	ok: lex $2,7
	` + halt
	cfg := DefaultConfig()
	cfg.Ways = 4
	p := mustRun(t, src, cfg)
	if p.Machine().Regs[2] != 7 {
		t.Error("did not reach ok")
	}
}

// TestDifferentialVsFunctional cross-validates the pipelined machine
// against the functional simulator on randomized programs across all
// configurations: same retired instruction count, same final register
// file, same memory effects, same Qat state.
func TestDifferentialVsFunctional(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	cfgs := []Config{
		{Stages: 5, Ways: 6, Forwarding: true, MulLatency: 1, QatNextLatency: 1},
		{Stages: 4, Ways: 6, Forwarding: true, MulLatency: 1, QatNextLatency: 1},
		{Stages: 5, Ways: 6, Forwarding: false, MulLatency: 1, QatNextLatency: 1},
		{Stages: 4, Ways: 6, Forwarding: false, MulLatency: 3, QatNextLatency: 2},
		{Stages: 5, Ways: 6, Forwarding: true, TwoWordFetchPenalty: true, MulLatency: 2, QatNextLatency: 4},
	}
	for trial := 0; trial < 60; trial++ {
		prog := randomProgram(r, 120)
		ref := cpu.New(6)
		if err := ref.Load(prog); err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(100_000); err != nil {
			t.Fatalf("trial %d: functional run: %v", trial, err)
		}
		cfg := cfgs[trial%len(cfgs)]
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Load(prog); err != nil {
			t.Fatal(err)
		}
		if err := p.Run(1_000_000); err != nil {
			t.Fatalf("trial %d cfg %+v: pipeline run: %v", trial, cfg, err)
		}
		if p.Stats.Insts != ref.Stats.Insts {
			t.Fatalf("trial %d: retired %d, functional executed %d",
				trial, p.Stats.Insts, ref.Stats.Insts)
		}
		if p.Stats.Cycles < p.Stats.Insts {
			t.Fatalf("trial %d: IPC > 1 on a scalar pipeline", trial)
		}
		for i := 0; i < isa.NumRegs; i++ {
			if p.Machine().Regs[i] != ref.Regs[i] {
				t.Fatalf("trial %d: $%d = %#x, functional %#x",
					trial, i, p.Machine().Regs[i], ref.Regs[i])
			}
		}
		for q := 0; q < 16; q++ {
			if !p.Machine().Qat.Reg(uint8(q)).Equal(ref.Qat.Reg(uint8(q))) {
				t.Fatalf("trial %d: @%d differs", trial, q)
			}
		}
		for a := 0x4000; a < 0x4010; a++ {
			if p.Machine().Mem[a] != ref.Mem[a] {
				t.Fatalf("trial %d: mem[%#x] differs", trial, a)
			}
		}
	}
}

// randomProgram generates a halting program exercising the whole ISA. All
// generated control flow is forward, so termination is guaranteed.
func randomProgram(r *rand.Rand, n int) *asm.Program {
	var insts []isa.Inst
	treg := func() uint8 { return uint8(1 + r.Intn(10)) } // avoid $0 (sys selector)
	qreg := func() uint8 { return uint8(r.Intn(16)) }
	emit := func(in isa.Inst) { insts = append(insts, in) }
	for len(insts) < n {
		switch r.Intn(20) {
		case 0:
			emit(isa.Inst{Op: isa.OpLex, RD: treg(), Imm: int8(r.Intn(256) - 128)})
		case 1:
			emit(isa.Inst{Op: isa.OpLhi, RD: treg(), Imm: int8(r.Intn(256) - 128)})
		case 2:
			emit(isa.Inst{Op: isa.OpAdd, RD: treg(), RS: treg()})
		case 3:
			emit(isa.Inst{Op: isa.OpMul, RD: treg(), RS: treg()})
		case 4:
			emit(isa.Inst{Op: isa.OpSlt, RD: treg(), RS: treg()})
		case 5:
			emit(isa.Inst{Op: isa.OpXor, RD: treg(), RS: treg()})
		case 6:
			emit(isa.Inst{Op: isa.OpNot, RD: treg()})
		case 7:
			emit(isa.Inst{Op: isa.OpShift, RD: treg(), RS: treg()})
		case 8:
			// Safe load/store: force the address into 0x40xx data space.
			a := treg()
			emit(isa.Inst{Op: isa.OpLex, RD: a, Imm: int8(r.Intn(16))})
			emit(isa.Inst{Op: isa.OpLhi, RD: a, Imm: 0x40})
			if r.Intn(2) == 0 {
				emit(isa.Inst{Op: isa.OpStore, RD: treg(), RS: a})
			} else {
				emit(isa.Inst{Op: isa.OpLoad, RD: treg(), RS: a})
			}
		case 9:
			emit(isa.Inst{Op: isa.OpQHad, QA: qreg(), K: uint8(r.Intn(6))})
		case 10:
			emit(isa.Inst{Op: isa.OpQZero, QA: qreg()})
		case 11:
			emit(isa.Inst{Op: isa.OpQOne, QA: qreg()})
		case 12:
			emit(isa.Inst{Op: isa.OpQAnd, QA: qreg(), QB: qreg(), QC: qreg()})
		case 13:
			emit(isa.Inst{Op: isa.OpQXor, QA: qreg(), QB: qreg(), QC: qreg()})
		case 14:
			emit(isa.Inst{Op: isa.OpQCcnot, QA: qreg(), QB: qreg(), QC: qreg()})
		case 15:
			emit(isa.Inst{Op: isa.OpQCswap, QA: qreg(), QB: qreg(), QC: qreg()})
		case 16:
			emit(isa.Inst{Op: isa.OpQMeas, RD: treg(), QA: qreg()})
		case 17:
			emit(isa.Inst{Op: isa.OpQNext, RD: treg(), QA: qreg()})
		case 18:
			emit(isa.Inst{Op: isa.OpQPop, RD: treg(), QA: qreg()})
		case 19:
			// Forward branch over 1-3 single-word instructions.
			k := 1 + r.Intn(3)
			op := isa.OpBrt
			if r.Intn(2) == 0 {
				op = isa.OpBrf
			}
			emit(isa.Inst{Op: op, RD: treg(), Imm: int8(k)})
			for j := 0; j < k; j++ {
				emit(isa.Inst{Op: isa.OpLex, RD: treg(), Imm: int8(r.Intn(100))})
			}
		}
	}
	// Halt epilogue.
	emit(isa.Inst{Op: isa.OpLex, RD: 0, Imm: 0})
	emit(isa.Inst{Op: isa.OpSys})
	var words []uint16
	for _, in := range insts {
		w, err := isa.Encode(in)
		if err != nil {
			panic(err)
		}
		words = append(words, w...)
	}
	return &asm.Program{Words: words}
}

// TestFig10StyleProgramOnPipeline runs the paper's measurement tail pattern
// through the pipeline and compares with the functional machine.
func TestFig10StyleProgramOnPipeline(t *testing.T) {
	src := `
	had @0,3
	had @1,5
	and @2,@0,@1
	or @80,@2,@2
	not @80
	lex $1,31
	next $1,@80
	copy $2,$1
	next $2,@80
	` + halt
	cfg := DefaultConfig()
	cfg.Ways = 8
	p := mustRun(t, src, cfg)
	var ref *cpu.Machine
	ref, err := cpu.RunProgram(src, 8, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine().Regs[1] != ref.Regs[1] || p.Machine().Regs[2] != ref.Regs[2] {
		t.Error("pipeline disagrees with functional machine")
	}
}

func TestConstantRegsPipeline(t *testing.T) {
	src := `
	xor @100,@0,@4   ; H2 from the constant bank
	lex $1,4
	meas $1,@100
	` + halt
	cfg := DefaultConfig()
	cfg.Ways = 8
	cfg.ConstantRegs = true
	p := mustRun(t, src, cfg)
	if p.Machine().Regs[1] != 1 {
		t.Errorf("meas = %d, want 1", p.Machine().Regs[1])
	}
}

func BenchmarkS31Pipeline5Stage(b *testing.B) {
	benchmarkPipeline(b, 5)
}

func BenchmarkS31Pipeline4Stage(b *testing.B) {
	benchmarkPipeline(b, 4)
}

func benchmarkPipeline(b *testing.B, stages int) {
	src := `
	lex $1,100
	lex $3,-1
	had @1,3
	loop: and @2,@1,@1
	xor @3,@2,@1
	copy $2,$1
	next $2,@3
	add $1,$3
	brt $1,loop
	` + halt
	prog, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Stages = stages
	p, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := p.Run(100_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.Stats.CPI(), "CPI")
}

// TestRetireOrderInvariant: on random programs, instructions leave WB in
// exactly the order the functional machine executed them — no instruction
// is lost, duplicated, or reordered by stalls, flushes, or multi-cycle
// occupancy.
func TestRetireOrderInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 20; trial++ {
		prog := randomProgram(r, 80)
		ref := cpu.New(6)
		if err := ref.Load(prog); err != nil {
			t.Fatal(err)
		}
		var want []uint16
		ref.Trace = func(pc uint16, _ isa.Inst) { want = append(want, pc) }
		if err := ref.Run(1_000_000); err != nil {
			t.Fatal(err)
		}

		cfg := Config{Stages: 5, Ways: 6, Forwarding: true,
			TwoWordFetchPenalty: trial%2 == 0, MulLatency: 1 + trial%3, QatNextLatency: 1 + trial%2}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []uint16
		wb := p.wbIdx()
		p.SetTracer(func(cycle uint64, stages []string) {
			if p.lat[wb].valid {
				got = append(got, p.lat[wb].pc)
			}
		})
		if err := p.Load(prog); err != nil {
			t.Fatal(err)
		}
		if err := p.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: retired %d, executed %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: retire %d at pc %#x, functional pc %#x",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestPipelineStudentEncoding: the pipelined machine is encoding-agnostic —
// a transcoded image under the student codec produces identical
// architectural results and timing.
func TestPipelineStudentEncoding(t *testing.T) {
	src := `
	had @1,3
	lex $1,0
	next $1,@1
	and @2,@1,@1
	lex $2,100
	lex $3,-1
	loop: add $2,$3
	brt $2,loop
	` + halt
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Ways = 8
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	words, err := isa.Transcode(prog.Words, isa.Primary, isa.Student)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Machine().Enc = isa.Student
	if err := p.Load(&asm.Program{Words: words}); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Machine().Regs != ref.Machine().Regs {
		t.Fatal("registers differ across encodings")
	}
	if p.Stats.Cycles != ref.Stats.Cycles || p.Stats.Insts != ref.Stats.Insts {
		t.Fatalf("timing differs across encodings: %+v vs %+v", p.Stats, ref.Stats)
	}
}
