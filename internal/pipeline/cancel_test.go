package pipeline

// Cancel-latency pin for the pipelined model, mirroring the cpu-side test:
// the cancel is injected synchronously through the output writer while the
// program runs, and the cycle count after it must stay within one
// checkpoint window.

import (
	"context"
	"errors"
	"testing"

	"tangled/internal/asm"
)

type cancelOnWrite struct {
	cancel context.CancelFunc
}

func (w *cancelOnWrite) Write(p []byte) (int, error) {
	w.cancel()
	return len(p), nil
}

func TestCancelCheckpointLatency(t *testing.T) {
	prog, err := asm.Assemble(`
	lex $0,2
	lex $1,65
	sys
loop:
	add $2,$3
	br loop
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.SetOutput(&cancelOnWrite{cancel: cancel})
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	err = p.RunContext(ctx, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The sys retires within the first dozen cycles (fill + stalls); after
	// the cancel lands the pipeline may clock only to the next checkpoint.
	const setupSlack = 32
	if got, max := p.Stats.Cycles, uint64(setupSlack+ctxCheckInterval); got > max {
		t.Fatalf("clocked %d cycles, want ≤ %d (checkpoint every %d)", got, max, ctxCheckInterval)
	}
}
