package pipeline

// Golden-trace regression tests: the per-cycle JSONL trace of two fixed
// workloads on the 4-stage pipeline is pinned under testdata/. Any change to
// hazard detection, stall timing, flush behaviour or trace encoding shows up
// as a field-level diff against the golden file, with the cycle number and
// field named — far more localized than a final-state mismatch. Regenerate
// deliberately with:
//
//	go test ./internal/pipeline -run TestGoldenTrace -update
//
// and review the golden diff like any other code change.

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/compile"
	"tangled/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files under testdata/")

// goldenConfig is the organization the goldens pin: the paper's 4-stage
// S3-1-style machine with forwarding and single-cycle EX.
func goldenConfig(ways int) Config {
	return Config{Stages: 4, Ways: ways, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
}

// captureTrace runs prog to completion on cfg and returns the full cycle
// trace (the test fails if the ring would have dropped events).
func captureTrace(t *testing.T, prog *asm.Program, cfg Config) []obs.TraceEvent {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewTraceRing(0)
	p.SetTraceRing(ring)
	p.SetOutput(io.Discard)
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if n := ring.Dropped(); n > 0 {
		t.Fatalf("trace ring dropped %d events; golden workloads must fit %d cycles", n, obs.DefaultTraceCap)
	}
	return ring.Events()
}

// checkGolden compares got against testdata/<name>.trace.jsonl field by
// field, or rewrites the file under -update.
func checkGolden(t *testing.T, name string, got []obs.TraceEvent) {
	t.Helper()
	path := filepath.Join("testdata", name+".trace.jsonl")
	if *updateGolden {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteJSONL(f, got); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d events)", path, len(got))
		return
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	defer f.Close()
	want, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("golden %s: %v", path, err)
	}
	if len(got) != len(want) {
		t.Errorf("%s: %d events, golden has %d", name, len(got), len(want))
	}
	for i := 0; i < len(got) && i < len(want); i++ {
		g, w := got[i], want[i]
		diff := func(field string, gv, wv interface{}) {
			t.Errorf("%s: event %d (cycle %d) %s = %v, golden %v", name, i, w.Cycle, field, gv, wv)
		}
		if g.Cycle != w.Cycle {
			diff("cycle", g.Cycle, w.Cycle)
		}
		if g.PC != w.PC {
			diff("pc", g.PC, w.PC)
		}
		if g.Inst != w.Inst {
			diff("inst", g.Inst, w.Inst)
		}
		if gs, ws := strings.Join(g.Stages, "|"), strings.Join(w.Stages, "|"); gs != ws {
			diff("stages", gs, ws)
		}
		if g.Event != w.Event {
			diff("event", g.Event, w.Event)
		}
		if t.Failed() {
			t.Fatalf("%s: first trace divergence at event %d; stopping", name, i)
		}
	}
}

// TestGoldenTraceFactor15 pins the paper's worked example: the Figure 10
// factoring program for n=15 on the 4-stage pipeline.
func TestGoldenTraceFactor15(t *testing.T) {
	gen, err := compile.FactorProgram(15, 8, 4, 4, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(gen.Asm)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "factor15-4stage", captureTrace(t, prog, goldenConfig(8)))
}

// goldenRandomSource emits a deterministic pseudo-random hazard-rich program:
// ALU chains (RAW), loads feeding consumers (load-use), stores to high
// memory, Qat traffic (EX-busy interlock) and bounded backward branches
// (flushes). The generator is seeded and self-contained so the program — and
// therefore the golden — never changes unless this file does.
func goldenRandomSource() string {
	r := rand.New(rand.NewSource(0x600D))
	var b strings.Builder
	emit := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }
	reg := func() int { return 1 + r.Intn(7) }
	for d := 1; d <= 7; d++ {
		emit("lex $%d,%d", d, r.Intn(256)-128)
	}
	emit("had @1,3")
	emit("had @2,2")
	for i := 0; i < 30; i++ {
		switch r.Intn(8) {
		case 0:
			emit("add $%d,$%d", reg(), reg())
		case 1:
			emit("mul $%d,$%d", reg(), reg())
		case 2:
			d := reg()
			emit("load $%d,$%d", d, reg())
			emit("add $%d,$%d", reg(), d) // immediate consumer: load-use bait
		case 3:
			s := reg()
			emit("lhi $%d,0x7F", s)
			emit("store $%d,$%d", reg(), s)
		case 4:
			emit("xor @3,@1,@2")
			emit("next $%d,@3", reg())
		case 5:
			emit("cnot @%d,@%d", 1+r.Intn(3), 1+r.Intn(3))
		case 6:
			emit("slt $%d,$%d", reg(), reg())
		case 7:
			lbl := fmt.Sprintf("L%d", i)
			emit("brt $%d,%s", reg(), lbl)
			emit("not $%d", reg())
			emit("%s:", lbl)
		}
	}
	emit("lex $9,3")
	emit("lex $8,-1")
	emit("Lloop:")
	emit("add $1,$9")
	emit("add $9,$8")
	emit("brt $9,Lloop")
	emit("lex $0,0")
	emit("sys")
	return b.String()
}

// TestGoldenTraceRandom pins a seeded random program covering the hazard
// classes the factoring demo misses (load-use, backward-branch loops).
func TestGoldenTraceRandom(t *testing.T) {
	prog, err := asm.Assemble(goldenRandomSource())
	if err != nil {
		t.Fatalf("golden random program does not assemble: %v\n%s", err, goldenRandomSource())
	}
	checkGolden(t, "random-600d-4stage", captureTrace(t, prog, goldenConfig(6)))
}
