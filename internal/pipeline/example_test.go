package pipeline_test

import (
	"fmt"

	"tangled/internal/pipeline"
)

// Run a Qat program on the cycle-accurate pipeline and inspect the
// measured factors and cycle accounting.
func ExampleRunProgram() {
	src := `
	had @1,4
	lex $8,42
	next $8,@1
	lex $0,0
	sys
	`
	p, err := pipeline.RunProgram(src, pipeline.StudentConfig(), 10000, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("$8 =", p.Machine().Regs[8])
	fmt.Println("retired =", p.Stats.Insts)
	// Output:
	// $8 = 48
	// retired = 5
}
