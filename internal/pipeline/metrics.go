package pipeline

// Pipeline performance counters and machine-readable cycle tracing. The
// counter set refines the coarse Stats struct into labelled families — the
// stall/flush breakdown by cause and per-stage occupancy — and the trace
// ring captures the per-cycle stage diagram as obs.TraceEvent rows, the
// JSONL counterpart of the textual WriteTracer diagram.
//
// Both are host attachments costing one nil check per cycle when disabled,
// and both observe the pipeline without touching its logic: occupancy is
// read at the start of the cycle (matching the textual tracer and the
// latch view a waveform viewer would show) and hazard causes are derived
// from the Stats deltas the cycle produced, so the counters cannot drift
// from the Stats they refine.

import (
	"strings"

	"tangled/internal/obs"
)

// Canonical stage labels across both organizations; each Pipeline indexes
// into this set via its own stage list.
var stageLabels = []string{"IF", "ID", "EX", "EXM", "MEM", "WB"}

// stallCauses label the Stalls counter family, in Stats field order.
var stallCauses = []string{"load-use", "raw", "ex-busy", "fetch", "flush"}

const (
	stallLoadUse = iota
	stallRaw
	stallExBusy
	stallFetch
	stallFlush
)

// Metrics is the pipeline counter set; construct with NewMetrics (nil
// registry -> nil, instrumentation off). One set may be shared by many
// pipelines (farm workers), including mixed 4- and 5-stage configurations.
type Metrics struct {
	// Cycles counts clock cycles; Retired counts instructions leaving WB.
	Cycles, Retired *obs.Counter
	// StageOccupancy counts, per stage label, the cycles the stage held a
	// valid instruction at the start of the cycle.
	StageOccupancy *obs.CounterVec
	// Stalls breaks lost cycles down by cause, replacing the single
	// TotalStalls figure: load-use, raw, ex-busy, fetch, flush.
	Stalls *obs.CounterVec
	// BranchFlushes counts taken-branch redirects (the events whose
	// squashed slots the "flush" stall cause tallies).
	BranchFlushes *obs.Counter
}

// NewMetrics registers the pipeline counters on r, or returns nil when r is
// nil.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Cycles:  r.Counter("pipeline_cycles_total", "pipeline clock cycles"),
		Retired: r.Counter("pipeline_insts_retired_total", "instructions retired from WB"),
		StageOccupancy: r.CounterVec("pipeline_stage_occupied_cycles_total",
			"cycles each stage held a valid instruction", "stage", stageLabels),
		Stalls: r.CounterVec("pipeline_stall_cycles_total",
			"cycles lost to hazards, by cause", "cause", stallCauses),
		BranchFlushes: r.Counter("pipeline_branch_flushes_total",
			"taken-branch redirects (each squashes the wrong-path IF/ID slots)"),
	}
}

// SetMetrics attaches (or with nil detaches) a counter set. Load preserves
// the attachment, like SetOutput and SetTracer: it describes the host's
// view, not the program's state.
func (p *Pipeline) SetMetrics(mm *Metrics) {
	p.met = mm
	p.stageLabelIdx = p.stageLabelIdx[:0]
	if mm == nil {
		return
	}
	for _, name := range p.StageNames() {
		for li, label := range stageLabels {
			if name == label {
				p.stageLabelIdx = append(p.stageLabelIdx, li)
				break
			}
		}
	}
}

// SetTraceRing attaches (or with nil detaches) a bounded cycle-trace ring;
// every Cycle appends one obs.TraceEvent. Rings may be shared across
// pipelines (they are goroutine-safe), at the cost of interleaved rows.
func (p *Pipeline) SetTraceRing(r *obs.TraceRing) {
	if r == nil {
		p.ring = nil
		return
	}
	p.ring = r
}

// SetTraceSink is SetTraceRing for decorated sinks (obs.TagTrace): the
// serving layer uses it to stamp the request ID into every event of a
// shared ring. Pass nil to detach.
func (p *Pipeline) SetTraceSink(s obs.TraceSink) { p.ring = s }

// observe folds one completed cycle into the counters and the trace ring.
// pre is the Stats snapshot from before the cycle, occupied the start-of-
// cycle validity of each stage, and stages the start-of-cycle occupancy
// rendering (nil unless tracing).
func (p *Pipeline) observe(pre Stats, occupied []bool, stages []string, pc uint16, done bool) {
	d := struct{ loadUse, raw, exBusy, fetch, flush, flushes, retired uint64 }{
		loadUse: p.Stats.LoadUseStalls - pre.LoadUseStalls,
		raw:     p.Stats.RawStalls - pre.RawStalls,
		exBusy:  p.Stats.ExBusyStalls - pre.ExBusyStalls,
		fetch:   p.Stats.FetchStalls - pre.FetchStalls,
		flush:   p.Stats.FlushCycles - pre.FlushCycles,
		flushes: p.Stats.BranchFlushes - pre.BranchFlushes,
		retired: p.Stats.Insts - pre.Insts,
	}
	if mm := p.met; mm != nil {
		mm.Cycles.Inc()
		mm.Retired.Add(d.retired)
		for st, v := range occupied {
			if v {
				mm.StageOccupancy.At(p.stageLabelIdx[st]).Inc()
			}
		}
		mm.Stalls.At(stallLoadUse).Add(d.loadUse)
		mm.Stalls.At(stallRaw).Add(d.raw)
		mm.Stalls.At(stallExBusy).Add(d.exBusy)
		mm.Stalls.At(stallFetch).Add(d.fetch)
		mm.Stalls.At(stallFlush).Add(d.flush)
		mm.BranchFlushes.Add(d.flushes)
	}
	if p.ring != nil {
		var causes []string
		if d.loadUse > 0 {
			causes = append(causes, "load-use")
		}
		if d.raw > 0 {
			causes = append(causes, "raw")
		}
		if d.exBusy > 0 {
			causes = append(causes, "ex-busy")
		}
		if d.fetch > 0 {
			causes = append(causes, "fetch")
		}
		if d.flush > 0 {
			causes = append(causes, "flush")
		}
		if done {
			causes = append(causes, "halt")
		}
		p.ring.Append(obs.TraceEvent{
			Cycle:  p.Stats.Cycles,
			PC:     pc,
			Stages: stages,
			Event:  strings.Join(causes, ";"),
		})
	}
}
