package pipeline

// Table-driven coverage of Config.validate's error paths, plus exact stall
// accounting on programs constructed to trigger one known hazard each: the
// Stats fields (and their TotalStalls sum) are the contract both the metrics
// counter family and the farm's aggregate statistics are built on.

import (
	"io"
	"strings"
	"testing"

	"tangled/internal/aob"
	"tangled/internal/asm"
)

func TestConfigValidate(t *testing.T) {
	base := Config{Stages: 5, Ways: 8, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring of the New error, "" for success
	}{
		{"default-config", func(c *Config) { *c = DefaultConfig() }, ""},
		{"student-config", func(c *Config) { *c = StudentConfig() }, ""},
		{"four-stage", func(c *Config) { c.Stages = 4 }, ""},
		{"zero-stages", func(c *Config) { c.Stages = 0 }, "stages unsupported"},
		{"three-stages", func(c *Config) { c.Stages = 3 }, "stages unsupported"},
		{"six-stages", func(c *Config) { c.Stages = 6 }, "stages unsupported"},
		{"zero-mul-latency", func(c *Config) { c.MulLatency = 0 }, "latencies must be >= 1"},
		{"negative-mul-latency", func(c *Config) { c.MulLatency = -2 }, "latencies must be >= 1"},
		{"zero-next-latency", func(c *Config) { c.QatNextLatency = 0 }, "latencies must be >= 1"},
		{"negative-ways", func(c *Config) { c.Ways = -1 }, "ways -1 out of range"},
		{"too-many-ways", func(c *Config) { c.Ways = aob.MaxWays + 1 }, "out of range"},
		{"zero-ways-means-max", func(c *Config) { c.Ways = 0 }, ""},
		{"max-ways", func(c *Config) { c.Ways = aob.MaxWays }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			p, err := New(cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New(%+v): %v", cfg, err)
				}
				if p == nil {
					t.Fatal("New returned nil pipeline without error")
				}
				return
			}
			if err == nil {
				t.Fatalf("New(%+v) succeeded, want error containing %q", cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("New(%+v) error %q, want substring %q", cfg, err, tc.wantErr)
			}
		})
	}
}

// runStats assembles src, runs it on cfg and returns the Stats.
func runStats(t *testing.T, src string, cfg Config) Stats {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.SetOutput(io.Discard)
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100_000); err != nil {
		t.Fatal(err)
	}
	return p.Stats
}

// TestStallAccountingKnownHazards runs one program per hazard class and
// checks the exact Stats breakdown plus the TotalStalls invariant.
func TestStallAccountingKnownHazards(t *testing.T) {
	fwd5 := Config{Stages: 5, Ways: 4, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	cases := []struct {
		name string
		src  string
		cfg  Config
		// want holds the expected non-zero stall fields; unlisted stall
		// fields must be zero.
		want Stats
	}{
		{
			// load feeding the very next instruction: one bubble with
			// forwarding on a 5-stage machine, and nothing else.
			name: "load-use",
			src: `
			lex $1,16
			load $2,$1
			add $3,$2
			lex $0,0
			sys`,
			cfg:  fwd5,
			want: Stats{LoadUseStalls: 1},
		},
		{
			// the same consumer one slot later needs no stall at all.
			name: "load-with-gap",
			src: `
			lex $1,16
			load $2,$1
			lex $4,7
			add $3,$2
			lex $0,0
			sys`,
			cfg:  fwd5,
			want: Stats{},
		},
		{
			// forwarding off: the add waits for the lex chain to write back.
			name: "raw-no-forwarding",
			src: `
			lex $1,5
			add $2,$1
			lex $0,0
			sys`,
			cfg:  Config{Stages: 5, Ways: 4, Forwarding: false, MulLatency: 1, QatNextLatency: 1},
			want: Stats{RawStalls: 4},
		},
		{
			// a 3-cycle multiply occupies EX for two extra cycles.
			name: "ex-busy-mul",
			src: `
			lex $1,3
			lex $2,4
			mul $1,$2
			lex $0,0
			sys`,
			cfg:  Config{Stages: 5, Ways: 4, Forwarding: true, MulLatency: 3, QatNextLatency: 1},
			want: Stats{ExBusyStalls: 2},
		},
		{
			// every two-word instruction charges one fetch bubble when the
			// narrow-fetch penalty is on; the three-operand Qat ops are the
			// two-word encodings.
			name: "fetch-penalty",
			src: `
			and @1,@2,@3
			lex $0,0
			sys`,
			cfg:  Config{Stages: 5, Ways: 4, Forwarding: true, TwoWordFetchPenalty: true, MulLatency: 1, QatNextLatency: 1},
			want: Stats{FetchStalls: 1},
		},
		{
			// a taken forward branch squashes the wrong-path slots behind it.
			name: "taken-branch-flush",
			src: `
			lex $1,1
			brt $1,skip
			not $2
			not $3
			skip:
			lex $0,0
			sys`,
			cfg:  fwd5,
			want: Stats{BranchFlushes: 1, FlushCycles: 2},
		},
		{
			// a not-taken branch costs nothing on this static-not-taken frontend.
			name: "untaken-branch",
			src: `
			lex $1,0
			brt $1,skip
			not $2
			skip:
			lex $0,0
			sys`,
			cfg:  fwd5,
			want: Stats{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := runStats(t, tc.src, tc.cfg)
			got := Stats{
				LoadUseStalls: s.LoadUseStalls,
				RawStalls:     s.RawStalls,
				ExBusyStalls:  s.ExBusyStalls,
				FetchStalls:   s.FetchStalls,
				BranchFlushes: s.BranchFlushes,
				FlushCycles:   s.FlushCycles,
			}
			want := tc.want
			if got != want {
				t.Errorf("stall breakdown = %+v, want %+v", got, want)
			}
			if sum := s.LoadUseStalls + s.RawStalls + s.ExBusyStalls + s.FetchStalls + s.FlushCycles; s.TotalStalls() != sum {
				t.Errorf("TotalStalls() = %d, field sum %d", s.TotalStalls(), sum)
			}
		})
	}
}
