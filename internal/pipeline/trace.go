package pipeline

import (
	"fmt"
	"io"
	"strings"
)

// Stage occupancy tracing: the textbook pipeline diagram, one row per
// cycle, one column per stage. This is the software analog of watching the
// Verilog pipeline latches in a waveform viewer — the debugging view the
// students leaned on for "pipeline handling of conditional control and
// data dependences", the difficulties the paper reports.

// StageNames returns the stage labels for this configuration.
func (p *Pipeline) StageNames() []string {
	if p.cfg.Stages == 4 {
		return []string{"IF", "ID", "EXM", "WB"}
	}
	return []string{"IF", "ID", "EX", "MEM", "WB"}
}

// Occupancy renders the start-of-cycle contents of each stage: the
// instruction's disassembly, "--" for a bubble, and a "*" suffix while a
// multi-cycle operation holds EX.
func (p *Pipeline) Occupancy() []string {
	out := make([]string, len(p.lat))
	for i, s := range p.lat {
		switch {
		case !s.valid:
			out[i] = "--"
		case s.decodeErr != nil:
			out[i] = "<bad>"
		default:
			text := s.inst.String()
			if i == p.exIdx() && s.remaining > 1 {
				text += " *"
			}
			out[i] = text
		}
	}
	return out
}

// Tracer receives the stage occupancy at the start of every cycle.
type Tracer func(cycle uint64, stages []string)

// SetTracer installs (or clears, with nil) a per-cycle occupancy hook.
func (p *Pipeline) SetTracer(t Tracer) { p.tracer = t }

// WriteTracer returns a Tracer that renders an aligned text diagram to w,
// emitting a header row on the first cycle.
func (p *Pipeline) WriteTracer(w io.Writer) Tracer {
	names := p.StageNames()
	const col = 18
	wrote := false
	return func(cycle uint64, stages []string) {
		if !wrote {
			wrote = true
			fmt.Fprintf(w, "%6s", "cycle")
			for _, n := range names {
				fmt.Fprintf(w, "  %-*s", col, n)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%6d", cycle)
		for _, s := range stages {
			if len(s) > col {
				s = s[:col]
			}
			fmt.Fprintf(w, "  %-*s", col, s)
		}
		fmt.Fprintln(w)
	}
}

// trimTraceLine is a test helper: collapse runs of spaces.
func trimTraceLine(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
