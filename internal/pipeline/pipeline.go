// Package pipeline is a cycle-accurate model of the pipelined Tangled/Qat
// designs from Section 3 of the paper: in-order, single-issue pipelines of
// four stages (IF ID EXM WB — six of the eight student teams) or five
// stages (IF ID EX MEM WB — the other two), with data forwarding, hazard
// interlocks that span the Tangled and Qat register files, predict-not-taken
// control flow resolved in EX, and the two-word Qat instruction fetch that
// the paper reports was the students' most common difficulty.
//
// The model is timing-directed: instruction semantics come from the
// functional machine (package cpu) stepped exactly when an instruction
// reaches EX — which an in-order pipeline reaches in program order — while
// this package accounts for cycles, stalls and squashes. The invariant that
// the functional machine's PC always matches the instruction entering EX is
// checked every cycle, so any disagreement between the timing and
// functional views fails loudly.
//
// Configurable latencies reproduce the paper's design discussion: the
// Tangled mul is "the only operation for which purely combinatorial
// execution might be problematic", and the 16-way Qat next "might more
// appropriately be split into several pipeline stages" if OR-reduction is
// inefficient (Section 3.3). Both default to a single cycle, matching the
// students' implementations, which "were capable of sustaining completion
// of one instruction every clock cycle, provided there were no pipeline
// interlocks encountered".
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"

	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/isa"
	"tangled/internal/obs"
)

// Config selects a pipeline organization.
type Config struct {
	// Stages is 4 (IF ID EXM WB) or 5 (IF ID EX MEM WB).
	Stages int
	// Ways is the Qat entanglement degree (8 for student builds, 16 full).
	Ways int
	// Forwarding enables EX/MEM result bypassing into EX. When false, a
	// consumer waits in ID until the producer reaches WB (write-through
	// register file: WB writes in the first half cycle, ID reads in the
	// second).
	Forwarding bool
	// TwoWordFetchPenalty charges an extra IF cycle for the two-word Qat
	// instruction forms instead of assuming a double-wide fetch path.
	TwoWordFetchPenalty bool
	// MulLatency is the EX occupancy of the integer multiply (>= 1).
	MulLatency int
	// QatNextLatency is the EX occupancy of the Qat next/pop instructions
	// (>= 1), modeling the pipelined OR-reduction tree of Figure 8.
	QatNextLatency int
	// ConstantRegs selects the Section 5 Qat variant with @0/@1/@2..
	// hard-wired constants instead of zero/one/had instructions.
	ConstantRegs bool
}

// DefaultConfig is the paper's primary design point: a 5-stage fully
// forwarded pipeline over 16-way Qat with single-cycle operations.
func DefaultConfig() Config {
	return Config{Stages: 5, Ways: 16, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
}

// StudentConfig mirrors the class-project constraints: 8-way Qat (students
// "were permitted to restrict the AoB values to 256 bits") and the 4-stage
// organization six of the eight teams chose.
func StudentConfig() Config {
	return Config{Stages: 4, Ways: 8, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
}

func (c Config) validate() error {
	if c.Stages != 4 && c.Stages != 5 {
		return fmt.Errorf("pipeline: %d stages unsupported (4 or 5)", c.Stages)
	}
	if c.MulLatency < 1 || c.QatNextLatency < 1 {
		return errors.New("pipeline: latencies must be >= 1")
	}
	if c.Ways < 0 || c.Ways > aob.MaxWays {
		return fmt.Errorf("pipeline: ways %d out of range [0,%d]", c.Ways, aob.MaxWays)
	}
	return nil
}

// Stats reports the cycle accounting of a run.
type Stats struct {
	Cycles        uint64
	Insts         uint64 // retired instructions
	LoadUseStalls uint64 // forwarding on: load feeding the next instruction
	RawStalls     uint64 // forwarding off: any in-flight producer
	ExBusyStalls  uint64 // multi-cycle EX occupancy (mul / next latency)
	FetchStalls   uint64 // two-word instruction fetch penalty
	BranchFlushes uint64 // taken-branch redirects
	FlushCycles   uint64 // wrong-path slots squashed by redirects
}

// TotalStalls sums every cycle the pipeline lost to hazards: data stalls,
// multi-cycle EX occupancy, fetch penalties, and squashed wrong-path slots.
func (s Stats) TotalStalls() uint64 {
	return s.LoadUseStalls + s.RawStalls + s.ExBusyStalls + s.FetchStalls + s.FlushCycles
}

// CPI returns cycles per retired instruction.
func (s Stats) CPI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Insts)
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// ErrNoHalt is returned when the cycle budget expires before sys-halt.
var ErrNoHalt = errors.New("pipeline: cycle budget exhausted without halt")

// slot is one pipeline latch entry.
type slot struct {
	valid bool
	pc    uint16
	inst  isa.Inst
	// remaining is the EX occupancy left (set on EX entry).
	remaining int
	// fetchDelay models the extra IF cycle(s) of a multi-word fetch.
	fetchDelay int
	// decodeErr defers illegal-instruction faults until the slot reaches
	// EX; wrong-path garbage gets squashed instead of faulting.
	decodeErr error
}

// Pipeline is one pipelined Tangled/Qat machine instance.
type Pipeline struct {
	cfg    Config
	oracle *cpu.Machine

	// Latches in stage order: [IF, ID, EX, MEM, WB] (5-stage) or
	// [IF, ID, EXM, WB] (4-stage). Index 0 is the fetch buffer.
	lat []slot

	fetchPC   uint16
	stopFetch bool // halt observed; drain

	tracer Tracer

	// Observability attachments (see metrics.go); nil when disabled.
	met           *Metrics
	stageLabelIdx []int
	ring          obs.TraceSink

	Stats Stats
}

// New builds a pipeline; see Config.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var m *cpu.Machine
	if cfg.ConstantRegs {
		m = cpu.NewWithConstants(cfg.Ways)
	} else {
		m = cpu.New(cfg.Ways)
	}
	return &Pipeline{cfg: cfg, oracle: m, lat: make([]slot, cfg.Stages)}, nil
}

// Machine exposes the architectural state (registers, memory, Qat).
func (p *Pipeline) Machine() *cpu.Machine { return p.oracle }

// SetOutput directs sys service output.
func (p *Pipeline) SetOutput(w io.Writer) { p.oracle.Out = w }

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Load installs a program image and resets the pipeline.
func (p *Pipeline) Load(prog *asm.Program) error {
	if err := p.oracle.Load(prog); err != nil {
		return err
	}
	for i := range p.lat {
		p.lat[i] = slot{}
	}
	p.fetchPC = 0
	p.stopFetch = false
	p.Stats = Stats{}
	return nil
}

// Stage indices within p.lat.
func (p *Pipeline) ifIdx() int { return 0 }
func (p *Pipeline) idIdx() int { return 1 }
func (p *Pipeline) exIdx() int { return 2 }
func (p *Pipeline) wbIdx() int { return p.cfg.Stages - 1 }

// regsRead returns the Tangled registers an instruction reads.
func regsRead(inst isa.Inst) []uint8 {
	switch inst.Op {
	case isa.OpLex:
		return nil
	case isa.OpSys:
		// sys reads the service selector in $0 and the argument in $1.
		return []uint8{0, 1}
	case isa.OpLhi:
		return []uint8{inst.RD} // merges into the existing low byte
	case isa.OpBrf, isa.OpBrt, isa.OpJumpr:
		return []uint8{inst.RD}
	case isa.OpLoad:
		return []uint8{inst.RS}
	case isa.OpStore:
		return []uint8{inst.RD, inst.RS}
	case isa.OpQMeas, isa.OpQNext, isa.OpQPop:
		return []uint8{inst.RD} // the channel index input
	case isa.OpFloat, isa.OpInt, isa.OpNeg, isa.OpNegf, isa.OpNot, isa.OpRecip:
		return []uint8{inst.RD}
	case isa.OpCopy:
		return []uint8{inst.RS}
	default:
		if inst.Op.IsQat() {
			return nil // pure coprocessor op touches no Tangled registers
		}
		// Two-operand ALU forms read both.
		return []uint8{inst.RD, inst.RS}
	}
}

// regWritten returns the Tangled register an instruction writes, if any.
func regWritten(inst isa.Inst) (uint8, bool) {
	if inst.Op.WritesTangledReg() {
		return inst.RD, true
	}
	return 0, false
}

// exLatency returns the EX-stage occupancy for inst under the config.
func (p *Pipeline) exLatency(inst isa.Inst) int {
	switch inst.Op {
	case isa.OpMul:
		return p.cfg.MulLatency
	case isa.OpQNext, isa.OpQPop:
		return p.cfg.QatNextLatency
	default:
		return 1
	}
}

// hazardStall inspects start-of-cycle state and decides whether the
// instruction in ID must hold. loadUse distinguishes the forwarding-enabled
// load-use case from the forwarding-disabled general RAW case.
func (p *Pipeline) hazardStall() (stall, loadUse bool) {
	id := p.lat[p.idIdx()]
	if !id.valid || id.decodeErr != nil {
		return false, false
	}
	srcs := regsRead(id.inst)
	if len(srcs) == 0 {
		return false, false
	}
	// Producers between EX and the stage before WB cannot yet be read from
	// the register file; WB occupants can (split-phase write/read).
	for st := p.exIdx(); st < p.wbIdx(); st++ {
		prod := p.lat[st]
		if !prod.valid || prod.decodeErr != nil {
			continue
		}
		rd, writes := regWritten(prod.inst)
		if !writes {
			continue
		}
		hit := false
		for _, s := range srcs {
			if s == rd {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if !p.cfg.Forwarding {
			return true, false
		}
		// With forwarding, the only un-bypassable case is a load sitting
		// in EX of a 5-stage pipeline: its data arrives at the end of MEM,
		// one cycle too late for a back-to-back consumer.
		if prod.inst.Op == isa.OpLoad && st == p.exIdx() && p.cfg.Stages == 5 {
			return true, true
		}
	}
	return false, false
}

// Cycle advances the machine by one clock. It returns (done, error); done
// becomes true once the pipeline has fully drained after a halt.
func (p *Pipeline) Cycle() (bool, error) {
	if p.met == nil && p.ring == nil {
		return p.cycle()
	}
	// Capture the start-of-cycle view (the latch state a waveform viewer
	// would show), run the clock, then account what the cycle did.
	pre := p.Stats
	occupied := make([]bool, len(p.lat))
	for i := range p.lat {
		occupied[i] = p.lat[i].valid
	}
	var stages []string
	pc := p.fetchPC
	if ex := p.lat[p.exIdx()]; ex.valid {
		pc = ex.pc
	}
	if p.ring != nil {
		stages = p.Occupancy()
	}
	done, err := p.cycle()
	p.observe(pre, occupied, stages, pc, done)
	return done, err
}

// cycle is the uninstrumented clock: the hot path when no metrics or trace
// ring are attached.
func (p *Pipeline) cycle() (bool, error) {
	p.Stats.Cycles++
	if p.tracer != nil {
		p.tracer(p.Stats.Cycles, p.Occupancy())
	}
	ifi, idi, exi, wbi := p.ifIdx(), p.idIdx(), p.exIdx(), p.wbIdx()

	// Data-hazard decision is made on start-of-cycle state.
	stall, loadUse := p.hazardStall()

	// Retire WB.
	if p.lat[wbi].valid {
		p.Stats.Insts++
		p.lat[wbi] = slot{}
	}

	// Advance post-EX latches toward WB (5-stage MEM->WB; no-op 4-stage).
	for st := wbi; st > exi+1; st-- {
		if !p.lat[st].valid && p.lat[st-1].valid {
			p.lat[st] = p.lat[st-1]
			p.lat[st-1] = slot{}
		}
	}

	// EX: hold multi-cycle occupants, else execute and move on.
	redirect := false
	var redirectPC uint16
	if ex := &p.lat[exi]; ex.valid {
		if ex.remaining > 1 {
			ex.remaining--
			p.Stats.ExBusyStalls++
		} else {
			if ex.decodeErr != nil {
				return false, fmt.Errorf("pipeline: at %#04x: %w", ex.pc, ex.decodeErr)
			}
			if p.oracle.PC != ex.pc {
				return false, fmt.Errorf("pipeline: timing/functional divergence: EX pc %#04x, oracle pc %#04x", ex.pc, p.oracle.PC)
			}
			if err := p.oracle.Step(); err != nil {
				return false, err
			}
			fallthroughPC := ex.pc + uint16(ex.inst.Words())
			if p.oracle.Halted {
				// Squash everything younger than the halting sys; those
				// slots were fetched down a path that no longer exists.
				p.stopFetch = true
				p.lat[ifi] = slot{}
				p.lat[idi] = slot{}
			} else if p.oracle.PC != fallthroughPC {
				redirect = true
				redirectPC = p.oracle.PC
			}
			p.lat[exi+1] = *ex // the slot after EX was vacated above
			p.lat[exi] = slot{}
		}
	}

	switch {
	case redirect:
		// Squash wrong-path IF and ID and restart fetch at the target. The
		// fetch below fills IF this cycle, so the target occupies IF next
		// cycle: a 2-cycle taken-branch penalty, matching EX resolution.
		p.Stats.BranchFlushes++
		for st := ifi; st <= idi; st++ {
			if p.lat[st].valid {
				p.Stats.FlushCycles++
			}
			p.lat[st] = slot{}
		}
		p.fetchPC = redirectPC
	case stall:
		if loadUse {
			p.Stats.LoadUseStalls++
		} else {
			p.Stats.RawStalls++
		}
		// ID and IF hold; EX keeps the bubble created above.
	default:
		// ID -> EX.
		if p.lat[idi].valid && !p.lat[exi].valid {
			p.lat[exi] = p.lat[idi]
			p.lat[exi].remaining = p.exLatency(p.lat[exi].inst)
			p.lat[idi] = slot{}
		}
		// IF -> ID, honoring multi-word fetch occupancy.
		if f := &p.lat[ifi]; f.valid && !p.lat[idi].valid {
			if f.fetchDelay > 0 {
				f.fetchDelay--
				p.Stats.FetchStalls++
			} else {
				p.lat[idi] = *f
				p.lat[ifi] = slot{}
			}
		}
	}

	// Fetch into IF.
	if !p.stopFetch && !p.lat[ifi].valid {
		inst, n, err := p.oracle.Fetch(p.fetchPC)
		s := slot{valid: true, pc: p.fetchPC, inst: inst, decodeErr: err}
		if err != nil {
			n = 1
		}
		if p.cfg.TwoWordFetchPenalty && err == nil && n == 2 {
			s.fetchDelay = 1
		}
		p.lat[ifi] = s
		p.fetchPC += uint16(n)
	}

	return p.drained(), nil
}

func (p *Pipeline) drained() bool {
	if !p.stopFetch {
		return false
	}
	for _, s := range p.lat {
		if s.valid {
			return false
		}
	}
	return true
}

// Run clocks the pipeline until the program halts and drains, an error
// occurs, or maxCycles elapse.
func (p *Pipeline) Run(maxCycles uint64) error {
	for i := uint64(0); i < maxCycles; i++ {
		done, err := p.Cycle()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return ErrNoHalt
}

// ctxCheckInterval is how many cycles RunContext clocks between cancellation
// polls; see the identical constant in package cpu for the sizing rationale.
const ctxCheckInterval = 256

// RunContext clocks like Run but honors context cancellation, polling ctx
// every ctxCheckInterval cycles. On cancellation the returned error wraps
// ctx.Err().
func (p *Pipeline) RunContext(ctx context.Context, maxCycles uint64) error {
	if ctx == nil || ctx.Done() == nil {
		return p.Run(maxCycles)
	}
	done := ctx.Done()
	for executed := uint64(0); executed < maxCycles; {
		n := maxCycles - executed
		if n > ctxCheckInterval {
			n = ctxCheckInterval
		}
		for i := uint64(0); i < n; i++ {
			finished, err := p.Cycle()
			if err != nil {
				return err
			}
			if finished {
				return nil
			}
		}
		executed += n
		select {
		case <-done:
			return fmt.Errorf("pipeline: run cancelled after %d cycles: %w", p.Stats.Cycles, ctx.Err())
		default:
		}
	}
	return ErrNoHalt
}

// RunProgram assembles src and runs it to completion on a fresh pipeline,
// returning the pipeline for state and stats inspection.
func RunProgram(src string, cfg Config, maxCycles uint64, out io.Writer) (*Pipeline, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	p.SetOutput(out)
	if err := p.Load(prog); err != nil {
		return nil, err
	}
	if err := p.Run(maxCycles); err != nil {
		return p, err
	}
	return p, nil
}
