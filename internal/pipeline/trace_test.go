package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"tangled/internal/asm"
)

func asmMust(src string) (*asm.Program, error) { return asm.Assemble(src) }

func TestStageNames(t *testing.T) {
	p5, _ := New(DefaultConfig())
	if got := p5.StageNames(); len(got) != 5 || got[2] != "EX" {
		t.Errorf("5-stage names: %v", got)
	}
	p4, _ := New(StudentConfig())
	if got := p4.StageNames(); len(got) != 4 || got[2] != "EXM" {
		t.Errorf("4-stage names: %v", got)
	}
}

// TestTraceDiagonalFlow: an instruction appears in successive stages on
// successive cycles — the diagonal of the textbook diagram.
func TestTraceDiagonalFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]string
	p.SetTracer(func(cycle uint64, stages []string) {
		cp := make([]string, len(stages))
		copy(cp, stages)
		rows = append(rows, cp)
	})
	prog, err := asmMust("lex $1,5\nlex $2,6\nlex $0,0\nsys\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	// "lex $1,5" occupies IF during cycle 2 (rows index 1: the IF latch is
	// filled at the end of cycle 1) and then marches one stage per cycle.
	for i := 0; i < 5; i++ {
		row := rows[1+i]
		if row[i] != "lex $1,5" {
			t.Errorf("cycle %d stage %d = %q, want lex $1,5", 2+i, i, row[i])
		}
	}
	// Its successor rides one stage behind.
	if rows[3][1] != "lex $2,6" {
		t.Errorf("successor misplaced: %v", rows[3])
	}
}

func TestTraceShowsBubbles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sawBubbleAfterEX bool
	p.SetTracer(func(cycle uint64, stages []string) {
		if stages[2] == "--" && cycle > 3 && stages[4] != "--" {
			sawBubbleAfterEX = true
		}
	})
	// Load-use hazard injects a bubble into EX.
	prog, err := asmMust(`
	lex $2,100
	store $2,$2
	load $3,$2
	add $3,$3
	lex $0,0
	sys
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	if p.Stats.LoadUseStalls != 1 {
		t.Fatalf("expected one load-use stall, got %+v", p.Stats)
	}
	if !sawBubbleAfterEX {
		t.Error("bubble never visible in trace")
	}
}

func TestWriteTracerFormatting(t *testing.T) {
	cfg := StudentConfig()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p.SetTracer(p.WriteTracer(&buf))
	prog, err := asmMust("and @1,@2,@3\nlex $0,0\nsys\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("trace too short:\n%s", out)
	}
	if trimTraceLine(lines[0]) != "cycle IF ID EXM WB" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "qand @1,@2,@3") {
		t.Errorf("instruction text missing:\n%s", out)
	}
}

// TestTraceMultiCycleMarker: the EX-busy star shows while next holds EX.
func TestTraceMultiCycleMarker(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 8
	cfg.QatNextLatency = 3
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var starred int
	p.SetTracer(func(cycle uint64, stages []string) {
		if strings.HasSuffix(stages[2], "*") {
			starred++
		}
	})
	prog, err := asmMust("had @1,3\nlex $1,0\nnext $1,@1\nlex $0,0\nsys\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	if starred != 2 { // latency 3 = 2 held cycles with the marker
		t.Errorf("busy marker shown %d times, want 2", starred)
	}
}
