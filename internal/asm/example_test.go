package asm_test

import (
	"fmt"

	"tangled/internal/asm"
)

// Assemble the paper's Section 2.7 worked example and disassemble the
// image back.
func ExampleAssemble() {
	p, err := asm.Assemble(`
	had @123,4
	lex $8,42
	next $8,@123   ; leaves 48 in $8
	`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, line := range asm.Disassemble(p.Words) {
		fmt.Println(line)
	}
	// Output:
	// had @123,4
	// lex $8,42
	// next $8,@123
}

// Table 2 macros expand to base instructions transparently.
func ExampleAssemble_macros() {
	p, _ := asm.Assemble("jump end\nend: sys\n")
	for _, line := range asm.Disassemble(p.Words) {
		fmt.Println(line)
	}
	// Output:
	// lex $at,3
	// lhi $at,0
	// jumpr $at
	// sys
}
