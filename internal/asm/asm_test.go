package asm

import (
	"strings"
	"testing"

	"tangled/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble failed:\n%v", err)
	}
	return p
}

// decodeAll decodes a word image back into instructions.
func decodeAll(t *testing.T, words []uint16) []isa.Inst {
	t.Helper()
	var out []isa.Inst
	for i := 0; i < len(words); {
		var w1 uint16
		if i+1 < len(words) {
			w1 = words[i+1]
		}
		inst, n, err := isa.Decode(words[i], w1)
		if err != nil {
			t.Fatalf("decode at %d: %v", i, err)
		}
		out = append(out, inst)
		i += n
	}
	return out
}

// TestTable1ISAAllMnemonics assembles one instance of every Table 1
// instruction and checks the decoded form.
func TestTable1ISAAllMnemonics(t *testing.T) {
	src := `
	add $1,$2
	addf $3,$4
	and $5,$6
	brf $7,2
	brt $8,-3
	copy $9,$10
	float $0
	int $1
	jumpr $ra
	lex $2,-100
	lhi $3,0x7F
	load $4,$5
	mul $6,$7
	mulf $8,$9
	neg $0
	negf $1
	not $2
	or $3,$4
	recip $5
	shift $6,$7
	slt $8,$9
	store $10,$0
	sys
	xor $1,$2
	`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words)
	wantOps := []isa.Op{
		isa.OpAdd, isa.OpAddf, isa.OpAnd, isa.OpBrf, isa.OpBrt, isa.OpCopy,
		isa.OpFloat, isa.OpInt, isa.OpJumpr, isa.OpLex, isa.OpLhi, isa.OpLoad,
		isa.OpMul, isa.OpMulf, isa.OpNeg, isa.OpNegf, isa.OpNot, isa.OpOr,
		isa.OpRecip, isa.OpShift, isa.OpSlt, isa.OpStore, isa.OpSys, isa.OpXor,
	}
	if len(insts) != len(wantOps) {
		t.Fatalf("assembled %d instructions, want %d", len(insts), len(wantOps))
	}
	for i, want := range wantOps {
		if insts[i].Op != want {
			t.Errorf("inst %d: op %s, want %s", i, insts[i].Op.Name(), want.Name())
		}
	}
	if insts[9].Imm != -100 {
		t.Errorf("lex imm = %d", insts[9].Imm)
	}
	if insts[8].RD != isa.RegRA {
		t.Errorf("jumpr reg = %d", insts[8].RD)
	}
}

// TestTable3QatMnemonics assembles every Qat instruction, including the
// sigil-disambiguated and/or/xor/not forms.
func TestTable3QatMnemonics(t *testing.T) {
	src := `
	and @1,@2,@3
	ccnot @4,@5,@6
	cnot @7,@8
	cswap @9,@10,@11
	had @12,13
	meas $1,@14
	next $2,@15
	not @16
	or @17,@18,@19
	one @20
	swap @21,@22
	xor @23,@24,@25
	zero @26
	pop $3,@27
	`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words)
	wantOps := []isa.Op{
		isa.OpQAnd, isa.OpQCcnot, isa.OpQCnot, isa.OpQCswap, isa.OpQHad,
		isa.OpQMeas, isa.OpQNext, isa.OpQNot, isa.OpQOr, isa.OpQOne,
		isa.OpQSwap, isa.OpQXor, isa.OpQZero, isa.OpQPop,
	}
	if len(insts) != len(wantOps) {
		t.Fatalf("assembled %d instructions, want %d", len(insts), len(wantOps))
	}
	for i, want := range wantOps {
		if insts[i].Op != want {
			t.Errorf("inst %d: op %s, want %s", i, insts[i].Op.Name(), want.Name())
		}
	}
	if insts[0].QA != 1 || insts[0].QB != 2 || insts[0].QC != 3 {
		t.Errorf("qand operands wrong: %+v", insts[0])
	}
	if insts[4].QA != 12 || insts[4].K != 13 {
		t.Errorf("had operands wrong: %+v", insts[4])
	}
}

func TestSigilDisambiguation(t *testing.T) {
	p := mustAssemble(t, "and $0,$1\nand @0,@1,@2\nnot $3\nnot @4\n")
	insts := decodeAll(t, p.Words)
	want := []isa.Op{isa.OpAnd, isa.OpQAnd, isa.OpNot, isa.OpQNot}
	for i, w := range want {
		if insts[i].Op != w {
			t.Errorf("inst %d = %s, want %s", i, insts[i].Op.Name(), w.Name())
		}
	}
}

func TestBranchOffsets(t *testing.T) {
	src := `
	top: lex $0,0
	brt $0,top
	brf $0,done
	lex $1,1
	done: sys
	`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words)
	// brt at address 1, target 0: offset = 0 - 2 = -2.
	if insts[1].Imm != -2 {
		t.Errorf("backward branch offset = %d, want -2", insts[1].Imm)
	}
	// brf at address 2, target 4: offset = 4 - 3 = 1.
	if insts[2].Imm != 1 {
		t.Errorf("forward branch offset = %d, want 1", insts[2].Imm)
	}
	if p.Symbols["top"] != 0 || p.Symbols["done"] != 4 {
		t.Errorf("symbols: %v", p.Symbols)
	}
}

func TestBranchOutOfRange(t *testing.T) {
	var b strings.Builder
	b.WriteString("brt $0,far\n")
	for i := 0; i < 200; i++ {
		b.WriteString("lex $0,0\n")
	}
	b.WriteString("far: sys\n")
	if _, err := Assemble(b.String()); err == nil {
		t.Fatal("out-of-range branch assembled")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("wrong error: %v", err)
	}
}

// TestTable2MacroBr: br expands to the brf/brt pair on $at.
func TestTable2MacroBr(t *testing.T) {
	p := mustAssemble(t, "br skip\nlex $0,1\nskip: sys\n")
	insts := decodeAll(t, p.Words)
	if insts[0].Op != isa.OpBrf || insts[0].RD != isa.RegAT {
		t.Errorf("br word 0: %+v", insts[0])
	}
	if insts[1].Op != isa.OpBrt || insts[1].RD != isa.RegAT {
		t.Errorf("br word 1: %+v", insts[1])
	}
	// Both target address 3: offsets 2 and 1.
	if insts[0].Imm != 2 || insts[1].Imm != 1 {
		t.Errorf("br offsets = %d,%d want 2,1", insts[0].Imm, insts[1].Imm)
	}
}

// TestTable2MacroJump: jump expands to lex/lhi/jumpr via $at.
func TestTable2MacroJump(t *testing.T) {
	src := ".space 300\ntarget: sys\nentry: jump target\n"
	p := mustAssemble(t, src)
	if p.Symbols["target"] != 300 {
		t.Fatalf("target at %d", p.Symbols["target"])
	}
	insts := decodeAll(t, p.Words[301:])
	if len(insts) != 3 {
		t.Fatalf("jump expanded to %d instructions", len(insts))
	}
	if insts[0].Op != isa.OpLex || insts[1].Op != isa.OpLhi || insts[2].Op != isa.OpJumpr {
		t.Fatalf("jump expansion: %v %v %v", insts[0].Op.Name(), insts[1].Op.Name(), insts[2].Op.Name())
	}
	// 300 = 0x012C: lex loads 0x2C, lhi loads 0x01.
	if uint8(insts[0].Imm) != 0x2C || uint8(insts[1].Imm) != 0x01 {
		t.Fatalf("jump immediate bytes %#x %#x", uint8(insts[0].Imm), uint8(insts[1].Imm))
	}
	if insts[2].RD != isa.RegAT {
		t.Error("jumpr must use $at")
	}
}

// TestTable2MacroJumpfJumpt: conditional jumps skip a fixed 3-word window.
func TestTable2MacroJumpfJumpt(t *testing.T) {
	p := mustAssemble(t, "jumpf $3,away\nsys\naway: sys\n")
	insts := decodeAll(t, p.Words)
	if insts[0].Op != isa.OpBrt || insts[0].RD != 3 || insts[0].Imm != 3 {
		t.Errorf("jumpf guard: %+v", insts[0])
	}
	p2 := mustAssemble(t, "jumpt $4,away\nsys\naway: sys\n")
	insts2 := decodeAll(t, p2.Words)
	if insts2[0].Op != isa.OpBrf || insts2[0].RD != 4 || insts2[0].Imm != 3 {
		t.Errorf("jumpt guard: %+v", insts2[0])
	}
}

// TestTable2MacroLoadi covers the short and long forms.
func TestTable2MacroLoadi(t *testing.T) {
	p := mustAssemble(t, "loadi $1,42\nloadi $2,-1\nloadi $3,1000\nloadi $4,0xABCD\n")
	insts := decodeAll(t, p.Words)
	if len(insts) != 6 {
		t.Fatalf("loadi expansion count = %d, want 6", len(insts))
	}
	if insts[0].Op != isa.OpLex || insts[0].Imm != 42 {
		t.Errorf("loadi 42: %+v", insts[0])
	}
	if insts[1].Op != isa.OpLex || insts[1].Imm != -1 {
		t.Errorf("loadi -1: %+v", insts[1])
	}
	// 1000 = 0x03E8.
	if insts[2].Op != isa.OpLex || uint8(insts[2].Imm) != 0xE8 {
		t.Errorf("loadi 1000 low: %+v", insts[2])
	}
	if insts[3].Op != isa.OpLhi || uint8(insts[3].Imm) != 0x03 {
		t.Errorf("loadi 1000 high: %+v", insts[3])
	}
	if uint8(insts[4].Imm) != 0xCD || uint8(insts[5].Imm) != 0xAB {
		t.Errorf("loadi 0xABCD: %+v %+v", insts[4], insts[5])
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "  lex $0,31 ; initial channel\n\t\n; whole-line comment\nnext $0,@80 ; find factor\n"
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words)
	if len(insts) != 2 || insts[0].Op != isa.OpLex || insts[1].Op != isa.OpQNext {
		t.Fatalf("unexpected: %v", insts)
	}
}

// TestPaperFig10Fragment assembles the measurement tail of Figure 10
// verbatim (comments included).
func TestPaperFig10Fragment(t *testing.T) {
	src := `
	or @80,@79,@79
	not @80
	lex $0,31
	next $0,@80
	copy $1,$0
	next $1,@80
	lex $2,15
	and $0,$2 ;5
	and $1,$2 ;3
	`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words)
	if len(insts) != 9 {
		t.Fatalf("got %d instructions", len(insts))
	}
	if insts[0].Op != isa.OpQOr || insts[0].QA != 80 || insts[0].QB != 79 || insts[0].QC != 79 {
		t.Errorf("or @80,@79,@79: %+v", insts[0])
	}
	if insts[1].Op != isa.OpQNot || insts[1].QA != 80 {
		t.Errorf("not @80: %+v", insts[1])
	}
	if insts[7].Op != isa.OpAnd || insts[7].RD != 0 || insts[7].RS != 2 {
		t.Errorf("and $0,$2: %+v", insts[7])
	}
}

func TestDataDirectives(t *testing.T) {
	src := "v: .word 0x1234\n.word -2\n.space 3\nlab: .word lab\n"
	p := mustAssemble(t, src)
	if len(p.Words) != 6 {
		t.Fatalf("image length %d", len(p.Words))
	}
	if p.Words[0] != 0x1234 {
		t.Errorf("word 0 = %#x", p.Words[0])
	}
	if p.Words[1] != 0xFFFE {
		t.Errorf("word 1 = %#x", p.Words[1])
	}
	if p.Words[2]|p.Words[3]|p.Words[4] != 0 {
		t.Error("space not zeroed")
	}
	if p.Words[5] != 5 {
		t.Errorf(".word lab = %d, want 5", p.Words[5])
	}
}

func TestCharLiterals(t *testing.T) {
	p := mustAssemble(t, "lex $0,'A'\nlex $1,'\\n'\n")
	insts := decodeAll(t, p.Words)
	if insts[0].Imm != 'A' || insts[1].Imm != '\n' {
		t.Errorf("char literals: %d %d", insts[0].Imm, insts[1].Imm)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"frob $1,$2", "unknown mnemonic"},
		{"add $1", "wants 2 operand"},
		{"add $1,$77", "bad register"},
		{"add $1,@2", "expected Tangled register"},
		{"meas @1,@2", "expected Tangled register"},
		{"zero $1", "expected Qat register"},
		{"had @1,16", "bad hadamard"},
		{"lex $0,300", "does not fit"},
		{"brt $0,nowhere", "undefined label"},
		{"x: sys\nx: sys", "duplicate label"},
		{"zero @256", "bad Qat register"},
		{"lex $0,zzz", "undefined constant"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%q assembled without error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q lacks %q", c.src, err.Error(), c.frag)
		}
	}
}

func TestErrorListAggregates(t *testing.T) {
	_, err := Assemble("frob\nfrob2\nadd $1\n")
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(el) != 3 {
		t.Fatalf("got %d errors, want 3", len(el))
	}
	if el[1].Line != 2 {
		t.Errorf("second error line = %d", el[1].Line)
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	p := mustAssemble(t, "a: b: sys\n")
	if p.Symbols["a"] != 0 || p.Symbols["b"] != 0 {
		t.Errorf("symbols: %v", p.Symbols)
	}
	if names := p.SymbolsByAddr(); len(names) != 2 || names[0] != "a" {
		t.Errorf("SymbolsByAddr = %v", names)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := "had @0,3\nccnot @1,@2,@3\nlex $0,31\nnext $0,@80\nsys\n"
	p := mustAssemble(t, src)
	dis := Disassemble(p.Words)
	want := []string{"had @0,3", "ccnot @1,@2,@3", "lex $0,31", "next $0,@80", "sys"}
	if len(dis) != len(want) {
		t.Fatalf("disassembly: %v", dis)
	}
	for i := range want {
		if dis[i] != want[i] {
			t.Errorf("line %d: %q want %q", i, dis[i], want[i])
		}
	}
	// Reassembling the disassembly yields the identical image.
	p2 := mustAssemble(t, strings.Join(dis, "\n"))
	if len(p2.Words) != len(p.Words) {
		t.Fatal("reassembly length differs")
	}
	for i := range p.Words {
		if p.Words[i] != p2.Words[i] {
			t.Errorf("word %d differs", i)
		}
	}
}

func TestDisassembleIllegalAsData(t *testing.T) {
	out := Disassemble([]uint16{0xA000})
	if len(out) != 1 || !strings.HasPrefix(out[0], ".word") {
		t.Errorf("illegal word rendered as %v", out)
	}
}

func TestSourceMap(t *testing.T) {
	p := mustAssemble(t, "lex $0,1\nand @1,@2,@3\nsys\n")
	if len(p.Source) != 4 {
		t.Fatalf("source map length %d", len(p.Source))
	}
	if p.Source[0] != 1 || p.Source[1] != 2 || p.Source[2] != 2 || p.Source[3] != 3 {
		t.Errorf("source map %v", p.Source)
	}
}

func BenchmarkTable2MacroExpansion(b *testing.B) {
	src := strings.Repeat("jumpf $1,end\nloadi $2,0x1234\n", 50) + "end: sys\n"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssembleLarge(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString("and @1,@2,@3\nxor @4,@5,@6\nlex $0,5\n")
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEquConstants(t *testing.T) {
	src := `
	.equ NVAL 42
	.equ BIG 0x1234
	.equ OFFS 2
	lex $1,NVAL
	loadi $2,BIG
	brt $1,OFFS       ; literal offset from a constant
	lex $3,1          ; skipped when $1 != 0
	lex $3,2          ; skipped when $1 != 0
	lex $4,NVAL
	.word NVAL
	`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words[:len(p.Words)-1])
	if insts[0].Op != isa.OpLex || insts[0].Imm != 42 {
		t.Errorf("lex with const: %+v", insts[0])
	}
	if uint8(insts[1].Imm) != 0x34 || uint8(insts[2].Imm) != 0x12 {
		t.Errorf("loadi with const: %+v %+v", insts[1], insts[2])
	}
	if insts[3].Op != isa.OpBrt || insts[3].Imm != 2 {
		t.Errorf("brt with const offset: %+v", insts[3])
	}
	if p.Words[len(p.Words)-1] != 42 {
		t.Errorf(".word with const = %d", p.Words[len(p.Words)-1])
	}
}

func TestEquForwardReference(t *testing.T) {
	// Constants may be defined after use (resolved in pass 2)...
	p := mustAssemble(t, "lex $1,LATER\n.equ LATER 7\n")
	insts := decodeAll(t, p.Words)
	if insts[0].Imm != 7 {
		t.Errorf("forward .equ: %+v", insts[0])
	}
	// ...except in .space, whose size fixes addresses in pass 1.
	if _, err := Assemble(".space LATER\n.equ LATER 3\n"); err == nil {
		t.Error("forward .equ in .space accepted")
	}
}

func TestEquSpaceSize(t *testing.T) {
	p := mustAssemble(t, ".equ N 5\n.space N\nend: sys\n")
	if p.Symbols["end"] != 5 {
		t.Errorf("end at %d", p.Symbols["end"])
	}
}

func TestEquErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{".equ X 1\n.equ X 2\n", "redefinition"},
		{".equ X 1\nX: sys\n", "collides"},
		{"X: sys\n.equ X 1\n", "collides"},
		{".equ 9bad 1\n", "invalid name"},
		{".equ X 99999\n", "does not fit"},
		{".equ HUGE 300\nlex $1,HUGE\n", "does not fit in 8 bits"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: err %v lacks %q", c.src, err, c.frag)
		}
	}
}

func TestAsciiDirective(t *testing.T) {
	p := mustAssemble(t, `.ascii "hi;\n"`+"\n")
	want := []uint16{'h', 'i', ';', '\n'}
	if len(p.Words) != len(want) {
		t.Fatalf("emitted %d words: %v", len(p.Words), p.Words)
	}
	for i, w := range want {
		if p.Words[i] != w {
			t.Errorf("word %d = %d, want %d", i, p.Words[i], w)
		}
	}
}

func TestAsciiWithCommaAndEscapes(t *testing.T) {
	p := mustAssemble(t, `.ascii "a,b\"\\\t\0"`+"\n")
	want := []uint16{'a', ',', 'b', '"', '\\', '\t', 0}
	if len(p.Words) != len(want) {
		t.Fatalf("emitted %v", p.Words)
	}
	for i, w := range want {
		if p.Words[i] != w {
			t.Errorf("word %d = %d, want %d", i, p.Words[i], w)
		}
	}
}

func TestAsciiErrors(t *testing.T) {
	for _, src := range []string{".ascii hello\n", `.ascii "bad\q"` + "\n", `.ascii "unterminated` + "\n"} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestCommentInsideCharLiteral(t *testing.T) {
	p := mustAssemble(t, "lex $1,';'\n")
	insts := decodeAll(t, p.Words)
	if insts[0].Imm != ';' {
		t.Errorf("char ';' = %d", insts[0].Imm)
	}
}

// TestS5QatMacros: the reversible-gate macros behave identically to the
// native instructions — the Section 5 "implement as assembler macros"
// claim, executed.
func TestS5QatMacros(t *testing.T) {
	native := `
	had @1,0
	had @2,1
	had @3,2
	cnot @1,@2
	ccnot @2,@1,@3
	swap @1,@2
	cswap @1,@2,@3
	`
	macro := `
	had @1,0
	had @2,1
	had @3,2
	mcnot @1,@2
	mccnot @2,@1,@3
	mswap @1,@2
	mcswap @1,@2,@3
	`
	pn := mustAssemble(t, native)
	pm := mustAssemble(t, macro)
	// The macro version must be longer (it trades ports for instructions).
	if len(pm.Words) <= len(pn.Words) {
		t.Errorf("macro image %d words <= native %d", len(pm.Words), len(pn.Words))
	}
	// Semantics are checked in the cpu integration test (needs a machine).
}

func TestQatMacroExpansion(t *testing.T) {
	p := mustAssemble(t, "mcnot @1,@2\n")
	insts := decodeAll(t, p.Words)
	if len(insts) != 1 || insts[0].Op != isa.OpQXor ||
		insts[0].QA != 1 || insts[0].QB != 1 || insts[0].QC != 2 {
		t.Errorf("mcnot expansion: %v", insts)
	}
	p2 := mustAssemble(t, "mccnot @1,@2,@3\n")
	insts2 := decodeAll(t, p2.Words)
	if len(insts2) != 2 || insts2[0].Op != isa.OpQAnd || insts2[0].QA != QatAT {
		t.Errorf("mccnot expansion: %v", insts2)
	}
	p3 := mustAssemble(t, "mswap @1,@2\n")
	if len(decodeAll(t, p3.Words)) != 3 {
		t.Error("mswap should expand to 3 xors")
	}
	p4 := mustAssemble(t, "mcswap @1,@2,@3\n")
	if len(decodeAll(t, p4.Words)) != 4 {
		t.Error("mcswap should expand to 4 instructions")
	}
}

func TestQatMacroReservedTemp(t *testing.T) {
	if _, err := Assemble("mccnot @255,@1,@2\n"); err == nil ||
		!strings.Contains(err.Error(), "reserved") {
		t.Errorf("reserved temp accepted: %v", err)
	}
}

func TestQatMacroSelfSwap(t *testing.T) {
	// mswap @a,@a must not emit the xor-swap (it would zero the register).
	p := mustAssemble(t, "mswap @7,@7\nsys\n")
	insts := decodeAll(t, p.Words)
	if len(insts) != 1 || insts[0].Op != isa.OpSys {
		t.Errorf("self mswap emitted %v", insts)
	}
}

// TestUserMacros covers the AIK-style .macro facility: parameters, local
// labels, nesting, and diagnostics.
func TestUserMacros(t *testing.T) {
	src := `
	.macro inc r
	lex $at,1
	add \r,$at
	.endm
	lex $1,41
	inc $1
	`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words)
	if len(insts) != 3 {
		t.Fatalf("expanded to %d instructions", len(insts))
	}
	if insts[2].Op != isa.OpAdd || insts[2].RD != 1 || insts[2].RS != isa.RegAT {
		t.Errorf("macro body: %+v", insts[2])
	}
}

func TestUserMacroLocalLabels(t *testing.T) {
	// A countdown macro used twice: its loop label must not collide.
	src := `
	.macro countdown r n
	lex \r,\n
	lex $at,-1
	loop$: add \r,$at
	brt \r,loop$
	.endm
	countdown $1,5
	countdown $2,3
	`
	p := mustAssemble(t, src)
	if len(p.Words) != 8 {
		t.Fatalf("image %d words", len(p.Words))
	}
	// Both expansions carry their own backward branch.
	insts := decodeAll(t, p.Words)
	if insts[3].Op != isa.OpBrt || insts[3].Imm != -2 {
		t.Errorf("first loop branch: %+v", insts[3])
	}
	if insts[7].Op != isa.OpBrt || insts[7].Imm != -2 {
		t.Errorf("second loop branch: %+v", insts[7])
	}
}

func TestUserMacroNesting(t *testing.T) {
	src := `
	.macro double r
	add \r,\r
	.endm
	.macro quad r
	double \r
	double \r
	.endm
	quad $3
	`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words)
	if len(insts) != 2 || insts[0].Op != isa.OpAdd || insts[1].Op != isa.OpAdd {
		t.Fatalf("nested expansion: %v", insts)
	}
}

func TestUserMacroParamPrefixes(t *testing.T) {
	// \count must not be clobbered by substituting \c first.
	src := `
	.macro both c count
	lex \c,1
	lex \count,2
	.endm
	both $1,$2
	`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words)
	if insts[0].RD != 1 || insts[0].Imm != 1 || insts[1].RD != 2 || insts[1].Imm != 2 {
		t.Errorf("prefix clash: %+v %+v", insts[0], insts[1])
	}
}

func TestUserMacroErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{".macro add x\n.endm\n", "shadows"},
		{".macro br x\n.endm\n", "shadows"},
		{".macro m\n.endm\n.macro m\n.endm\n", "redefinition"},
		{".macro m x\nlex \\x,1\n.endm\nm $1,$2\n", "wants 1 argument"},
		{".macro m\nsys\n", "unterminated"},
		{".endm\n", ".endm without"},
		{".macro m\nm\n.endm\nm\n", "too deep"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: err %v lacks %q", c.src, err, c.frag)
		}
	}
}

// TestUserMacroQatSearch builds a reusable measurement macro — the style
// of helper the class projects would define with AIK.
func TestUserMacroQatSearch(t *testing.T) {
	src := `
	.macro firstone dst qreg
	lex \dst,0
	next \dst,\qreg
	.endm
	had @5,3
	firstone $1,@5
	lex $0,0
	sys
	`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p.Words)
	if insts[2].Op != isa.OpQNext || insts[2].RD != 1 || insts[2].QA != 5 {
		t.Errorf("macro with mixed sigils: %+v", insts[2])
	}
}

// TestAssembleWithStudentEncoding: the same source assembles under both
// codecs; images differ bit-for-bit but transcode into each other.
func TestAssembleWithStudentEncoding(t *testing.T) {
	src := "had @1,3\nlex $1,0\nnext $1,@1\nand @2,@1,@1\nlex $0,0\nsys\n"
	pp, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := AssembleWith(src, isa.Student)
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Words) != len(ps.Words) {
		t.Fatalf("lengths differ: %d vs %d", len(pp.Words), len(ps.Words))
	}
	same := 0
	for i := range pp.Words {
		if pp.Words[i] == ps.Words[i] {
			same++
		}
	}
	if same == len(pp.Words) {
		t.Fatal("encodings produced identical images")
	}
	tc, err := isa.Transcode(pp.Words, isa.Primary, isa.Student)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tc {
		if tc[i] != ps.Words[i] {
			t.Fatalf("word %d: transcode %04x != direct %04x", i, tc[i], ps.Words[i])
		}
	}
	// Student-encoded disassembly round trip.
	dis := DisassembleWith(ps.Words, isa.Student)
	ps2, err := AssembleWith(strings.Join(dis, "\n"), isa.Student)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps.Words {
		if ps2.Words[i] != ps.Words[i] {
			t.Fatalf("student reassembly word %d differs", i)
		}
	}
}

// TestFormatErrorPaths drives the remaining operand-validation branches of
// every instruction format.
func TestFormatErrorPaths(t *testing.T) {
	cases := []string{
		"copy $1",        // FmtRR arity
		"copy @1,$2",     // FmtRR wrong sigil
		"copy $1,@2",     // FmtRR wrong sigil (source)
		"neg",            // FmtR arity
		"neg @1",         // FmtR sigil
		"lex $1",         // FmtRI arity
		"lex @1,5",       // FmtRI sigil
		"brt $1",         // FmtBr arity
		"brt @1,x",       // FmtBr sigil
		"sys $1",         // FmtNone arity
		"zero",           // FmtQ1 arity
		"had @1",         // FmtQHad arity
		"had $1,3",       // FmtQHad sigil
		"meas $1",        // FmtQMeas arity
		"meas $1,$2",     // FmtQMeas sigil
		"cnot @1",        // FmtQ2 arity
		"cnot @1,$2",     // FmtQ2 sigil
		"ccnot @1,@2",    // FmtQ3 arity
		"ccnot @1,@2,$3", // FmtQ3 sigil
		"cswap $1,@2,@3", // FmtQ3 sigil (first)
		"brt $1,300",     // branch literal out of range
		".word",          // directive arity
		".word 99999",    // directive range
		".space -1",      // negative size
		".ascii",         // arity
	}
	for _, src := range cases {
		if _, err := Assemble(src + "\n"); err == nil {
			t.Errorf("%q assembled", src)
		}
	}
}

// TestQatRegisterNumericRange: @255 is the highest register; larger values
// and junk are rejected everywhere a Qat register is parsed.
func TestQatRegisterNumericRange(t *testing.T) {
	if _, err := Assemble("zero @255\n"); err != nil {
		t.Errorf("@255 rejected: %v", err)
	}
	for _, src := range []string{"zero @256\n", "zero @-1\n", "zero @x\n"} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%q assembled", src)
		}
	}
}

// TestErrorColumns checks that diagnostics carry 1-based line and column
// info pointing at the offending token — the contract /v1/assemble's 400
// body and qatlint's text output both depend on.
func TestErrorColumns(t *testing.T) {
	cases := []struct {
		src       string
		line, col int
		frag      string
	}{
		{"x: sys\nx: sys", 2, 1, "duplicate label"},
		{"  add $1,$77", 1, 10, "bad register"},
		{"lex $0,300", 1, 8, "does not fit"},
		{"brt $0,nowhere", 1, 8, "undefined label"},
		{"frob $1,$2", 1, 1, "unknown mnemonic"},
		{"zero @256", 1, 6, "bad Qat register"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%q assembled without error", c.src)
			continue
		}
		el, ok := err.(ErrorList)
		if !ok || len(el) == 0 {
			t.Errorf("%q: error type %T", c.src, err)
			continue
		}
		e := el[0]
		if e.Line != c.line || e.Col != c.col || !strings.Contains(e.Msg, c.frag) {
			t.Errorf("%q: got line %d col %d msg %q, want line %d col %d msg containing %q",
				c.src, e.Line, e.Col, e.Msg, c.line, c.col, c.frag)
		}
	}
}

// TestBranchOutOfRangeColumn checks the pass-2 out-of-range diagnostic
// points at the branch target token.
func TestBranchOutOfRangeColumn(t *testing.T) {
	src := "brt $0,far\n"
	for i := 0; i < 200; i++ {
		src += "sys\n"
	}
	src += "far: sys\n"
	_, err := Assemble(src)
	el, ok := err.(ErrorList)
	if !ok || len(el) == 0 {
		t.Fatalf("error type %T (%v)", err, err)
	}
	if el[0].Line != 1 || el[0].Col != 8 || !strings.Contains(el[0].Msg, "out of range") {
		t.Errorf("got %+v, want line 1 col 8 out-of-range", el[0])
	}
}

// TestProgramDataMarks checks Data marks exactly the directive-emitted words.
func TestProgramDataMarks(t *testing.T) {
	p := mustAssemble(t, "lex $0,0\nsys\ntab: .word 7\n.space 2\n.ascii \"ab\"\n")
	if len(p.Data) != len(p.Words) {
		t.Fatalf("Data length %d != Words length %d", len(p.Data), len(p.Words))
	}
	want := []bool{false, false, true, true, true, true, true}
	if len(p.Words) != len(want) {
		t.Fatalf("got %d words, want %d", len(p.Words), len(want))
	}
	for i, w := range want {
		if p.Data[i] != w {
			t.Errorf("Data[%d] = %v, want %v", i, p.Data[i], w)
		}
	}
}
