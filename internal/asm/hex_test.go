package asm

import (
	"bytes"
	"strings"
	"testing"
)

func TestHexRoundTrip(t *testing.T) {
	words := []uint16{0x0000, 0xFFFF, 0x1234, 0xA0B1}
	var buf bytes.Buffer
	if err := WriteHex(&buf, words); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(words) {
		t.Fatalf("got %d words", len(got))
	}
	for i := range words {
		if got[i] != words[i] {
			t.Errorf("word %d: %04x != %04x", i, got[i], words[i])
		}
	}
}

func TestReadHexComments(t *testing.T) {
	src := "// header comment\n1234 abcd // trailing\n\n00ff\n"
	words, err := ReadHex(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{0x1234, 0xABCD, 0x00FF}
	if len(words) != len(want) {
		t.Fatalf("words: %v", words)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Errorf("word %d = %04x", i, words[i])
		}
	}
}

func TestReadHexErrors(t *testing.T) {
	for _, src := range []string{"zzzz\n", "12345\n", "12 potato\n"} {
		if _, err := ReadHex(strings.NewReader(src)); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestReadHexEmpty(t *testing.T) {
	words, err := ReadHex(strings.NewReader("// nothing\n"))
	if err != nil || len(words) != 0 {
		t.Errorf("empty image: %v %v", words, err)
	}
}
