package asm

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteHex emits a word image in the Verilog $readmemh-compatible format
// the course toolflow used: one four-digit hex word per line, '//'
// comments allowed.
func WriteHex(w io.Writer, words []uint16) error {
	bw := bufio.NewWriter(w)
	for _, word := range words {
		if _, err := fmt.Fprintf(bw, "%04x\n", word); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHex parses a $readmemh-style word image: whitespace-separated hex
// words, with '//' line comments.
func ReadHex(r io.Reader) ([]uint16, error) {
	var words []uint16
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.Index(text, "//"); i >= 0 {
			text = text[:i]
		}
		for _, tok := range strings.Fields(text) {
			var w uint16
			if _, err := fmt.Sscanf(tok, "%x", &w); err != nil || len(tok) > 4 {
				return nil, fmt.Errorf("asm: line %d: bad hex word %q", line, tok)
			}
			words = append(words, w)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return words, nil
}
