package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble: arbitrary source must produce a program or a diagnostic,
// never a panic; successful assemblies must disassemble and reassemble to
// the identical image (modulo data words, which disassemble as .word).
func FuzzAssemble(f *testing.F) {
	f.Add("add $1,$2\n")
	f.Add("lab: br lab\n")
	f.Add(".equ X 4\nlex $1,X\n.word X\n")
	f.Add("and @1,@2,@3\nnext $0,@80\n")
	f.Add(`.ascii "hi"` + "\n")
	f.Add("loadi $3,0xABCD\njumpf $1,done\ndone: sys\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		dis := Disassemble(p.Words)
		p2, err := Assemble(strings.Join(dis, "\n"))
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%v", err, dis)
		}
		if len(p2.Words) != len(p.Words) {
			t.Fatalf("round trip length %d != %d", len(p2.Words), len(p.Words))
		}
		for i := range p.Words {
			if p.Words[i] != p2.Words[i] {
				t.Fatalf("round trip word %d: %04x != %04x", i, p2.Words[i], p.Words[i])
			}
		}
	})
}
