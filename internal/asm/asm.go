// Package asm implements a two-pass assembler and a disassembler for the
// Tangled/Qat instruction set.
//
// The paper's students generated their assemblers with AIK (the Assembler
// Interpreter from Kentucky); this package is a hand-written equivalent
// covering the same surface: the Table 1 base instructions, the Table 3 Qat
// coprocessor instructions, and the Table 2 pseudo-instructions (macros).
//
// Syntax, following the paper's listings:
//
//	label:  op  operand,operand   ; comment
//
// Tangled registers are $0..$10, $at, $rv, $ra, $fp, $sp (numeric aliases
// $11..$15 accepted); Qat registers are @0..@255. Immediates may be
// decimal, 0x hex, 0b binary, or a character literal 'c'. The and/or/xor/
// not mnemonics are shared between Tangled and Qat in the paper's tables;
// the assembler disambiguates by the operand sigils, exactly as the
// listings do (compare "and @2,@0,@1" with "and $0,$2").
//
// Pseudo-instructions (Table 2):
//
//	br lab          unconditional branch: brf $at,lab ; brt $at,lab
//	jump lab        absolute jump via $at: lex/lhi $at,lab ; jumpr $at
//	jumpf $c,lab    brt $c,+skip ; jump lab
//	jumpt $c,lab    brf $c,+skip ; jump lab
//	loadi $d,imm16  lex $d,low ; lhi $d,high (single lex when it suffices)
//
// Section 5 of the paper concludes that the reversible Qat instructions
// (cnot, ccnot, swap, cswap) "easily could be implemented as assembler
// macros" over the irreversible base set, freeing the register file's
// third read port and second write port. Those macros are provided with an
// m prefix, using @255 as a designated Qat assembler temporary (the AoB
// analog of $at):
//
//	mcnot @a,@b       xor @a,@a,@b
//	mccnot @a,@b,@c   and @255,@b,@c ; xor @a,@a,@255
//	mswap @a,@b       xor-swap triple (no temporary)
//	mcswap @a,@b,@c   masked xor-swap via @255
//
// Directives: ".word expr" emits a literal word, ".space n" emits n zero
// words, ".ascii "text"" emits one word per character (with \n, \t, \0 and
// \\ escapes), and ".equ name value" defines an assembly-time constant
// usable wherever an immediate or address is expected.
//
// User-defined macros — the signature capability of the AIK tool the class
// used — are written as
//
//	.macro name p1 p2 ...
//	  op \p1,\p2
//	  ...
//	.endm
//
// and invoked like instructions: "name $1,@2". Parameters substitute
// textually (backslash-prefixed), macros may invoke other macros (depth
// limited to catch recursion), and each expansion's labels are made unique
// by rewriting a trailing "$" in label-like identifiers (write "loop$:"
// inside a macro body for a per-expansion local label).
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tangled/internal/isa"
)

// Program is the output of assembly: a flat word image plus metadata.
type Program struct {
	// Words is the binary image, loaded at address 0.
	Words []uint16
	// Symbols maps labels to word addresses.
	Symbols map[string]uint16
	// Source maps each word address to the 1-based source line that
	// produced it (0 when none, e.g. .space padding).
	Source []int
	// Data marks the word addresses emitted by data directives (.word,
	// .space, .ascii) rather than instructions, so downstream consumers
	// (the disassembler listing, the static analyzer in package lint) can
	// tell code from data without guessing from bit patterns. Always the
	// same length as Words.
	Data []bool
}

// Error is an assembly diagnostic tied to a source position. Line is always
// 1-based; Col is the 1-based byte column of the offending token within that
// line, or 0 when no single token is to blame (for lines produced by macro
// expansion the column refers to the expanded text).
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e Error) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// ErrorList collects all diagnostics from one assembly run.
type ErrorList []Error

func (el ErrorList) Error() string {
	if len(el) == 0 {
		return "no errors"
	}
	msgs := make([]string, len(el))
	for i, e := range el {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "\n")
}

// refKind says how a pending label reference patches its instruction.
type refKind uint8

const (
	refNone   refKind = iota
	refBranch         // signed word offset from the following instruction
	refLow            // low 8 bits of the absolute address (for lex)
	refHigh           // high 8 bits of the absolute address (for lhi)
	refWord           // full address as a data word (.word lab)
	refImm8           // 8-bit immediate from a .equ constant (lex/lhi)
)

// item is one concrete output unit after macro expansion.
type item struct {
	line int
	col  int // column of the ref operand, for pass-2 diagnostics
	addr uint16
	inst isa.Inst
	ref  string
	kind refKind
	// raw data word (when isData)
	isData bool
	data   uint16
}

// macroDef is one user-defined macro.
type macroDef struct {
	params []string
	body   []string
}

type assembler struct {
	items  []item
	labels map[string]uint16
	consts map[string]int64
	macros map[string]*macroDef
	enc    isa.Encoding
	errs   ErrorList
	pc     uint16
	line   int
	// rawLine is the text currently being processed (the expanded text
	// inside macro bodies), used to recover token columns for diagnostics.
	rawLine string

	// defining is non-nil while between .macro and .endm.
	defining     *macroDef
	definingName string
	// expandDepth guards against recursive macros; expandID uniquifies
	// local labels per expansion.
	expandDepth int
	expandID    int
}

// maxMacroDepth bounds nested macro expansion.
const maxMacroDepth = 16

// Assemble translates source text into a Program using the Primary binary
// encoding. On failure it returns an ErrorList describing every diagnosed
// problem.
func Assemble(src string) (*Program, error) {
	return AssembleWith(src, isa.Primary)
}

// AssembleWith assembles for an explicit binary encoding — instruction
// lengths are encoding-independent in both provided codecs, so label
// arithmetic is unaffected.
func AssembleWith(src string, enc isa.Encoding) (*Program, error) {
	a := &assembler{
		labels: make(map[string]uint16),
		consts: make(map[string]int64),
		macros: make(map[string]*macroDef),
		enc:    enc,
	}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		a.doLine(raw)
	}
	if a.defining != nil {
		a.errorf("unterminated .macro %q", a.definingName)
	}
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	// Pass 2: resolve references and encode.
	p := &Program{Symbols: a.labels}
	for _, it := range a.items {
		words, err := a.resolve(it)
		if err != nil {
			a.errs = append(a.errs, Error{Line: it.line, Col: it.col, Msg: err.Error()})
			continue
		}
		for _, w := range words {
			p.Words = append(p.Words, w)
			p.Source = append(p.Source, it.line)
			p.Data = append(p.Data, it.isData)
		}
	}
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	return p, nil
}

func (a *assembler) errorf(format string, args ...interface{}) {
	a.errs = append(a.errs, Error{Line: a.line, Msg: fmt.Sprintf(format, args...)})
}

// errorfTok is errorf with the column of tok within the current line.
func (a *assembler) errorfTok(tok, format string, args ...interface{}) {
	a.errs = append(a.errs, Error{Line: a.line, Col: a.colOf(tok), Msg: fmt.Sprintf(format, args...)})
}

// colOf recovers the 1-based byte column of the first occurrence of tok in
// the line being processed, or 0 when it cannot be located (empty token, or
// text rewritten beyond recognition by macro substitution).
func (a *assembler) colOf(tok string) int {
	if tok == "" {
		return 0
	}
	if i := strings.Index(a.rawLine, tok); i >= 0 {
		return i + 1
	}
	return 0
}

// doLine handles labels, directives and (macro-)instructions on one line.
func (a *assembler) doLine(raw string) {
	a.rawLine = raw
	s := strings.TrimSpace(stripComment(raw))
	if a.defining != nil {
		// Collecting a macro body: only .endm is interpreted.
		if strings.EqualFold(s, ".endm") {
			a.macros[a.definingName] = a.defining
			a.defining = nil
			return
		}
		a.defining.body = append(a.defining.body, s)
		return
	}
	for {
		colon := strings.IndexByte(s, ':')
		if colon < 0 {
			break
		}
		label := strings.TrimSpace(s[:colon])
		if !isIdent(label) {
			// Not a label (e.g. a ':' inside a character literal); treat
			// the whole text as a statement.
			break
		}
		if _, dup := a.labels[label]; dup {
			a.errorfTok(label, "duplicate label %q", label)
			return
		}
		if _, dup := a.consts[label]; dup {
			a.errorfTok(label, "label %q collides with a .equ constant", label)
			return
		}
		a.labels[label] = a.pc
		s = strings.TrimSpace(s[colon+1:])
	}
	if s == "" {
		return
	}
	mnemonic := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)
	if mnemonic == ".ascii" {
		// String literals may contain commas; keep the rest intact.
		a.doStatement(mnemonic, []string{rest})
		return
	}
	var operands []string
	if rest != "" {
		for _, op := range strings.Split(rest, ",") {
			operands = append(operands, strings.TrimSpace(op))
		}
	}
	a.doStatement(mnemonic, operands)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// emit appends a concrete instruction, advancing the location counter. The
// column of the ref operand (if any) is captured now so pass-2 resolution
// failures can point at the token.
func (a *assembler) emit(inst isa.Inst, ref string, kind refKind) {
	it := item{line: a.line, col: a.colOf(ref), addr: a.pc, inst: inst, ref: ref, kind: kind}
	a.items = append(a.items, it)
	a.pc += uint16(inst.Words())
}

func (a *assembler) emitData(w uint16, ref string) {
	kind := refNone
	if ref != "" {
		kind = refWord
	}
	a.items = append(a.items, item{line: a.line, col: a.colOf(ref), addr: a.pc, isData: true, data: w, ref: ref, kind: kind})
	a.pc++
}

func (a *assembler) doStatement(mnemonic string, ops []string) {
	switch mnemonic {
	case ".equ":
		// Accept both ".equ NAME VALUE" and ".equ NAME,VALUE".
		if len(ops) == 1 {
			ops = strings.Fields(ops[0])
		}
		if !a.wantOps(mnemonic, ops, 2) {
			return
		}
		name := ops[0]
		if !isIdent(name) || isNumber(name) {
			a.errorf(".equ: invalid name %q", name)
			return
		}
		if _, dup := a.consts[name]; dup {
			a.errorf(".equ: redefinition of %q", name)
			return
		}
		if _, dup := a.labels[name]; dup {
			a.errorf(".equ: %q collides with a label", name)
			return
		}
		v, err := parseImm(ops[1], 16)
		if err != nil {
			a.errorf(".equ %s: %v", name, err)
			return
		}
		a.consts[name] = v
	case ".ascii":
		if !a.wantOps(mnemonic, ops, 1) {
			return
		}
		text, err := parseStringLit(ops[0])
		if err != nil {
			a.errorf(".ascii: %v", err)
			return
		}
		for _, ch := range text {
			a.emitData(uint16(ch), "")
		}
	case ".word":
		if len(ops) != 1 {
			a.errorf(".word wants one operand")
			return
		}
		if isIdent(ops[0]) && !isNumber(ops[0]) {
			a.emitData(0, ops[0])
			return
		}
		v, err := parseImm(ops[0], 16)
		if err != nil {
			a.errorf(".word: %v", err)
			return
		}
		a.emitData(uint16(v), "")
	case ".space":
		if len(ops) != 1 {
			a.errorf(".space wants one operand")
			return
		}
		var n int64
		var err error
		if v, ok := a.consts[ops[0]]; ok {
			// .space sizes affect addresses, so a constant must already be
			// defined at this point in the source.
			n = v
		} else {
			n, err = parseImm(ops[0], 16)
		}
		if err != nil || n < 0 {
			a.errorf(".space: bad size %q", ops[0])
			return
		}
		for i := int64(0); i < n; i++ {
			a.emitData(0, "")
		}
	case "br":
		if !a.wantOps(mnemonic, ops, 1) {
			return
		}
		// Unconditional branch from two complementary conditionals on $at:
		// whatever $at holds, one of them fires.
		a.emit(isa.Inst{Op: isa.OpBrf, RD: isa.RegAT}, ops[0], refBranch)
		a.emit(isa.Inst{Op: isa.OpBrt, RD: isa.RegAT}, ops[0], refBranch)
	case "jump":
		if !a.wantOps(mnemonic, ops, 1) {
			return
		}
		a.expandJump(ops[0])
	case "jumpf", "jumpt":
		if !a.wantOps(mnemonic, ops, 2) {
			return
		}
		c, err := parseReg(ops[0])
		if err != nil {
			a.errorfTok(ops[0], "%s: %v", mnemonic, err)
			return
		}
		// Skip over the 3-word jump expansion when the condition does not
		// call for it.
		inv := isa.OpBrt
		if mnemonic == "jumpt" {
			inv = isa.OpBrf
		}
		a.emit(isa.Inst{Op: inv, RD: c, Imm: 3}, "", refNone)
		a.expandJump(ops[1])
	case ".macro":
		if len(ops) == 1 {
			ops = strings.Fields(ops[0])
		}
		if len(ops) < 1 {
			a.errorf(".macro wants a name")
			return
		}
		name := strings.ToLower(ops[0])
		if !isIdent(name) || isNumber(name) {
			a.errorf(".macro: invalid name %q", name)
			return
		}
		if _, builtin := mnemonicOp(name, nil); builtin || name == "br" || name == "jump" ||
			name == "jumpf" || name == "jumpt" || name == "loadi" {
			a.errorf(".macro: %q shadows a built-in mnemonic", name)
			return
		}
		if _, dup := a.macros[name]; dup {
			a.errorf(".macro: redefinition of %q", name)
			return
		}
		a.defining = &macroDef{params: ops[1:]}
		a.definingName = name
	case ".endm":
		a.errorf(".endm without .macro")
	case "mcnot", "mccnot", "mswap", "mcswap":
		a.doQatMacro(mnemonic, ops)
	case "loadi":
		if !a.wantOps(mnemonic, ops, 2) {
			return
		}
		d, err := parseReg(ops[0])
		if err != nil {
			a.errorfTok(ops[0], "loadi: %v", err)
			return
		}
		if isIdent(ops[1]) && !isNumber(ops[1]) {
			a.emit(isa.Inst{Op: isa.OpLex, RD: d}, ops[1], refLow)
			a.emit(isa.Inst{Op: isa.OpLhi, RD: d}, ops[1], refHigh)
			return
		}
		v, err := parseImm(ops[1], 16)
		if err != nil {
			a.errorfTok(ops[1], "loadi: %v", err)
			return
		}
		if v >= -128 && v <= 127 {
			a.emit(isa.Inst{Op: isa.OpLex, RD: d, Imm: int8(v)}, "", refNone)
			return
		}
		a.emit(isa.Inst{Op: isa.OpLex, RD: d, Imm: int8(uint16(v) & 0xFF)}, "", refNone)
		a.emit(isa.Inst{Op: isa.OpLhi, RD: d, Imm: int8(uint16(v) >> 8)}, "", refNone)
	default:
		if def, ok := a.macros[mnemonic]; ok {
			a.expandMacro(mnemonic, def, ops)
			return
		}
		a.doInstruction(mnemonic, ops)
	}
}

// expandMacro substitutes arguments and local labels, then re-feeds each
// body line through the normal line path.
func (a *assembler) expandMacro(name string, def *macroDef, args []string) {
	if len(args) != len(def.params) {
		a.errorf("macro %s wants %d argument(s), got %d", name, len(def.params), len(args))
		return
	}
	if a.expandDepth >= maxMacroDepth {
		a.errorf("macro %s: expansion too deep (recursive?)", name)
		return
	}
	a.expandDepth++
	a.expandID++
	id := a.expandID
	// Longest parameter names first so \count is not clobbered by \c.
	order := make([]int, len(def.params))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return len(def.params[order[x]]) > len(def.params[order[y]])
	})
	for _, line := range def.body {
		text := line
		for _, pi := range order {
			text = strings.ReplaceAll(text, "\\"+def.params[pi], args[pi])
		}
		text = uniquifyLocals(text, id)
		a.doLine(text)
	}
	a.expandDepth--
}

// uniquifyLocals rewrites identifier-trailing '$' markers (per-expansion
// local labels) into a unique suffix. Register sigils are untouched: their
// '$' is never preceded by an identifier character.
func uniquifyLocals(s string, id int) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '$' && i > 0 && isIdentChar(s[i-1]) {
			fmt.Fprintf(&b, "__m%d", id)
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.'
}

// QatAT is the Qat register reserved as the macro scratch temporary.
const QatAT = 255

// doQatMacro expands the Section 5 reversible-operation macros over the
// irreversible base instructions.
func (a *assembler) doQatMacro(mnemonic string, ops []string) {
	want := 2
	if mnemonic == "mccnot" || mnemonic == "mcswap" {
		want = 3
	}
	if !a.wantOps(mnemonic, ops, want) {
		return
	}
	regs := make([]uint8, len(ops))
	for i, op := range ops {
		r, err := parseQReg(op)
		if err != nil {
			a.errorfTok(op, "%s: %v", mnemonic, err)
			return
		}
		if r == QatAT {
			a.errorfTok(op, "%s: @%d is reserved as the Qat macro temporary", mnemonic, QatAT)
			return
		}
		regs[i] = r
	}
	qxor := func(d, s1, s2 uint8) {
		a.emit(isa.Inst{Op: isa.OpQXor, QA: d, QB: s1, QC: s2}, "", refNone)
	}
	qand := func(d, s1, s2 uint8) {
		a.emit(isa.Inst{Op: isa.OpQAnd, QA: d, QB: s1, QC: s2}, "", refNone)
	}
	switch mnemonic {
	case "mcnot": // @a ^= @b
		qxor(regs[0], regs[0], regs[1])
	case "mccnot": // @a ^= @b & @c
		qand(QatAT, regs[1], regs[2])
		qxor(regs[0], regs[0], QatAT)
	case "mswap": // xor-swap; degenerates safely when @a == @b
		if regs[0] == regs[1] {
			return
		}
		qxor(regs[0], regs[0], regs[1])
		qxor(regs[1], regs[0], regs[1])
		qxor(regs[0], regs[0], regs[1])
	case "mcswap": // exchange where @c is 1, via masked difference
		if regs[0] == regs[1] {
			return
		}
		qxor(QatAT, regs[0], regs[1])
		qand(QatAT, QatAT, regs[2])
		qxor(regs[0], regs[0], QatAT)
		qxor(regs[1], regs[1], QatAT)
	}
}

func (a *assembler) expandJump(target string) {
	a.emit(isa.Inst{Op: isa.OpLex, RD: isa.RegAT}, target, refLow)
	a.emit(isa.Inst{Op: isa.OpLhi, RD: isa.RegAT}, target, refHigh)
	a.emit(isa.Inst{Op: isa.OpJumpr, RD: isa.RegAT}, "", refNone)
}

func (a *assembler) wantOps(mnemonic string, ops []string, n int) bool {
	if len(ops) != n {
		a.errorfTok(mnemonic, "%s wants %d operand(s), got %d", mnemonic, n, len(ops))
		return false
	}
	return true
}

// mnemonicOp resolves a mnemonic (with operand-sigil disambiguation for the
// shared and/or/xor/not names) to an Op.
func mnemonicOp(mnemonic string, ops []string) (isa.Op, bool) {
	qat := len(ops) > 0 && strings.HasPrefix(ops[0], "@")
	switch mnemonic {
	case "and":
		if qat {
			return isa.OpQAnd, true
		}
		return isa.OpAnd, true
	case "or":
		if qat {
			return isa.OpQOr, true
		}
		return isa.OpOr, true
	case "xor":
		if qat {
			return isa.OpQXor, true
		}
		return isa.OpXor, true
	case "not":
		if qat {
			return isa.OpQNot, true
		}
		return isa.OpNot, true
	case "qand":
		return isa.OpQAnd, true
	case "qor":
		return isa.OpQOr, true
	case "qxor":
		return isa.OpQXor, true
	case "qnot":
		return isa.OpQNot, true
	case "add":
		return isa.OpAdd, true
	case "addf":
		return isa.OpAddf, true
	case "brf":
		return isa.OpBrf, true
	case "brt":
		return isa.OpBrt, true
	case "copy":
		return isa.OpCopy, true
	case "float":
		return isa.OpFloat, true
	case "int":
		return isa.OpInt, true
	case "jumpr":
		return isa.OpJumpr, true
	case "lex":
		return isa.OpLex, true
	case "lhi":
		return isa.OpLhi, true
	case "load":
		return isa.OpLoad, true
	case "mul":
		return isa.OpMul, true
	case "mulf":
		return isa.OpMulf, true
	case "neg":
		return isa.OpNeg, true
	case "negf":
		return isa.OpNegf, true
	case "recip":
		return isa.OpRecip, true
	case "shift":
		return isa.OpShift, true
	case "slt":
		return isa.OpSlt, true
	case "store":
		return isa.OpStore, true
	case "sys":
		return isa.OpSys, true
	case "zero":
		return isa.OpQZero, true
	case "one":
		return isa.OpQOne, true
	case "had":
		return isa.OpQHad, true
	case "meas":
		return isa.OpQMeas, true
	case "next":
		return isa.OpQNext, true
	case "pop":
		return isa.OpQPop, true
	case "cnot":
		return isa.OpQCnot, true
	case "ccnot":
		return isa.OpQCcnot, true
	case "swap":
		return isa.OpQSwap, true
	case "cswap":
		return isa.OpQCswap, true
	}
	return 0, false
}

func (a *assembler) doInstruction(mnemonic string, ops []string) {
	op, ok := mnemonicOp(mnemonic, ops)
	if !ok {
		a.errorfTok(mnemonic, "unknown mnemonic %q", mnemonic)
		return
	}
	inst := isa.Inst{Op: op}
	var ref string
	kind := refNone
	fail := func(tok string, err error) { a.errorfTok(tok, "%s: %v", mnemonic, err) }
	switch op.Fmt() {
	case isa.FmtRR:
		if !a.wantOps(mnemonic, ops, 2) {
			return
		}
		d, err := parseReg(ops[0])
		if err != nil {
			fail(ops[0], err)
			return
		}
		s, err := parseReg(ops[1])
		if err != nil {
			fail(ops[1], err)
			return
		}
		inst.RD, inst.RS = d, s
	case isa.FmtR:
		if !a.wantOps(mnemonic, ops, 1) {
			return
		}
		d, err := parseReg(ops[0])
		if err != nil {
			fail(ops[0], err)
			return
		}
		inst.RD = d
	case isa.FmtRI:
		if !a.wantOps(mnemonic, ops, 2) {
			return
		}
		d, err := parseReg(ops[0])
		if err != nil {
			fail(ops[0], err)
			return
		}
		inst.RD = d
		if isIdent(ops[1]) && !isNumber(ops[1]) {
			ref, kind = ops[1], refImm8
			break
		}
		v, err := parseImm(ops[1], 8)
		if err != nil {
			fail(ops[1], err)
			return
		}
		inst.Imm = int8(v)
	case isa.FmtBr:
		if !a.wantOps(mnemonic, ops, 2) {
			return
		}
		c, err := parseReg(ops[0])
		if err != nil {
			fail(ops[0], err)
			return
		}
		inst.RD = c
		if isIdent(ops[1]) && !isNumber(ops[1]) {
			ref, kind = ops[1], refBranch
		} else {
			v, err := parseImm(ops[1], 8)
			if err != nil {
				fail(ops[1], err)
				return
			}
			inst.Imm = int8(v)
		}
	case isa.FmtNone:
		if !a.wantOps(mnemonic, ops, 0) {
			return
		}
	case isa.FmtQ1:
		if !a.wantOps(mnemonic, ops, 1) {
			return
		}
		qa, err := parseQReg(ops[0])
		if err != nil {
			fail(ops[0], err)
			return
		}
		inst.QA = qa
	case isa.FmtQHad:
		if !a.wantOps(mnemonic, ops, 2) {
			return
		}
		qa, err := parseQReg(ops[0])
		if err != nil {
			fail(ops[0], err)
			return
		}
		k, err := parseImm(ops[1], 8)
		if err != nil || k < 0 || k > 15 {
			fail(ops[1], fmt.Errorf("bad hadamard index %q", ops[1]))
			return
		}
		inst.QA, inst.K = qa, uint8(k)
	case isa.FmtQMeas:
		if !a.wantOps(mnemonic, ops, 2) {
			return
		}
		d, err := parseReg(ops[0])
		if err != nil {
			fail(ops[0], err)
			return
		}
		qa, err := parseQReg(ops[1])
		if err != nil {
			fail(ops[1], err)
			return
		}
		inst.RD, inst.QA = d, qa
	case isa.FmtQ2:
		if !a.wantOps(mnemonic, ops, 2) {
			return
		}
		qa, err := parseQReg(ops[0])
		if err != nil {
			fail(ops[0], err)
			return
		}
		qb, err := parseQReg(ops[1])
		if err != nil {
			fail(ops[1], err)
			return
		}
		inst.QA, inst.QB = qa, qb
	case isa.FmtQ3:
		if !a.wantOps(mnemonic, ops, 3) {
			return
		}
		qa, err := parseQReg(ops[0])
		if err != nil {
			fail(ops[0], err)
			return
		}
		qb, err := parseQReg(ops[1])
		if err != nil {
			fail(ops[1], err)
			return
		}
		qc, err := parseQReg(ops[2])
		if err != nil {
			fail(ops[2], err)
			return
		}
		inst.QA, inst.QB, inst.QC = qa, qb, qc
	}
	a.emit(inst, ref, kind)
}

// resolve patches label references and encodes one item to words.
func (a *assembler) resolve(it item) ([]uint16, error) {
	if it.isData {
		w := it.data
		if it.kind == refWord {
			v, err := a.symbolValue(it.ref)
			if err != nil {
				return nil, err
			}
			w = uint16(v)
		}
		return []uint16{w}, nil
	}
	inst := it.inst
	if it.kind != refNone {
		if it.kind == refImm8 {
			v, ok := a.consts[it.ref]
			if !ok {
				return nil, fmt.Errorf("undefined constant %q", it.ref)
			}
			if v < -128 || v > 255 {
				return nil, fmt.Errorf("constant %q = %d does not fit in 8 bits", it.ref, v)
			}
			inst.Imm = int8(uint16(v) & 0xFF)
			return a.enc.Encode(inst)
		}
		v, err := a.symbolValue(it.ref)
		if err != nil {
			return nil, err
		}
		switch it.kind {
		case refBranch:
			off := int32(v) - int32(it.addr) - 1
			if _, isConst := a.consts[it.ref]; isConst {
				// A constant branch operand is a literal offset, not a
				// target address.
				off = int32(int16(v))
			}
			if off < -128 || off > 127 {
				return nil, fmt.Errorf("branch to %q out of range (%d words); use jump", it.ref, off)
			}
			inst.Imm = int8(off)
		case refLow:
			inst.Imm = int8(v & 0xFF)
		case refHigh:
			inst.Imm = int8(v >> 8)
		}
	}
	return a.enc.Encode(inst)
}

// symbolValue resolves a symbol: labels first, then .equ constants.
func (a *assembler) symbolValue(name string) (uint16, error) {
	if addr, ok := a.labels[name]; ok {
		return addr, nil
	}
	if v, ok := a.consts[name]; ok {
		return uint16(v), nil
	}
	return 0, fmt.Errorf("undefined label or constant %q", name)
}

// stripComment removes a ';' comment, ignoring semicolons inside quoted
// string or character literals.
func stripComment(s string) string {
	var inStr, inChar, esc bool
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && (inStr || inChar):
			esc = true
		case c == '"' && !inChar:
			inStr = !inStr
		case c == '\'' && !inStr:
			inChar = !inChar
		case c == ';' && !inStr && !inChar:
			return s[:i]
		}
	}
	return s
}

// parseStringLit parses a double-quoted string with \n, \t, \0, \\ and \"
// escapes.
func parseStringLit(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash in %q", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

var numberPrefixes = []string{"0x", "0X", "0b", "0B", "-", "+"}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	if s[0] >= '0' && s[0] <= '9' {
		return true
	}
	for _, p := range numberPrefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// parseImm parses an immediate literal of the given bit width; both signed
// and unsigned spellings of the same bit pattern are accepted (e.g. for 8
// bits, -1 and 255 both encode 0xFF).
func parseImm(s string, bits int) (int64, error) {
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if len(body) == 1 {
			return int64(body[0]), nil
		}
		if len(body) == 2 && body[0] == '\\' {
			switch body[1] {
			case 'n':
				return '\n', nil
			case 't':
				return '\t', nil
			case '0':
				return 0, nil
			case '\\':
				return '\\', nil
			}
		}
		return 0, fmt.Errorf("bad character literal %s", s)
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	lo := int64(-1) << uint(bits-1)
	hi := int64(1)<<uint(bits) - 1
	if v < lo || v > hi {
		return 0, fmt.Errorf("immediate %d does not fit in %d bits", v, bits)
	}
	return v, nil
}

// parseReg parses a Tangled register: $0..$15 or a symbolic name.
func parseReg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "$") {
		return 0, fmt.Errorf("expected Tangled register, got %q", s)
	}
	switch strings.ToLower(s) {
	case "$at":
		return isa.RegAT, nil
	case "$rv":
		return isa.RegRV, nil
	case "$ra":
		return isa.RegRA, nil
	case "$fp":
		return isa.RegFP, nil
	case "$sp":
		return isa.RegSP, nil
	}
	n, err := strconv.ParseUint(s[1:], 10, 8)
	if err != nil || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

// parseQReg parses a Qat register @0..@255.
func parseQReg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "@") {
		return 0, fmt.Errorf("expected Qat register, got %q", s)
	}
	n, err := strconv.ParseUint(s[1:], 10, 16)
	if err != nil || n >= isa.NumQRegs {
		return 0, fmt.Errorf("bad Qat register %q", s)
	}
	return uint8(n), nil
}

// Disassemble renders a Primary-encoded word image back to assembly, one
// string per instruction (or per data word it cannot decode, rendered as
// .word).
func Disassemble(words []uint16) []string { return DisassembleWith(words, isa.Primary) }

// DisassembleWith disassembles under an explicit encoding.
func DisassembleWith(words []uint16, enc isa.Encoding) []string {
	var out []string
	for i := 0; i < len(words); {
		var w1 uint16
		if i+1 < len(words) {
			w1 = words[i+1]
		}
		inst, n, err := enc.Decode(words[i], w1)
		if err != nil || i+n > len(words) {
			out = append(out, fmt.Sprintf(".word %#04x", words[i]))
			i++
			continue
		}
		out = append(out, inst.String())
		i += n
	}
	return out
}

// SymbolsByAddr returns label names sorted by address, for listings.
func (p *Program) SymbolsByAddr() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
