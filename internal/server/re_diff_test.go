package server

// The wire-level differential lens extended to the RE backend: the shared
// random corpus submitted over HTTP with backend "re" must come back
// byte-identical to direct dense in-process execution. Divergence here is
// either a serving-layer bug or an RE-backend bug; either way the corpus
// program is attached.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"tangled/internal/farm/farmtest"
	"tangled/internal/qasm"
)

func TestDifferentialHTTPREBackend(t *testing.T) {
	srcs := make([]string, farmtest.Programs)
	for i := range srcs {
		srcs[i] = farmtest.Generate(farmtest.Seed(i))
	}
	direct, _, err := qasm.RunFunctionalBatch(context.Background(), srcs, farmtest.Ways, 0)
	if err != nil {
		t.Fatal(err)
	}

	_, base := startTestServer(t, Config{BatchMax: 32})
	req := BatchRequest{ID: "re-diff", Programs: make([]RunRequest, len(srcs))}
	for i, src := range srcs {
		req.Programs[i] = RunRequest{Src: src, Ways: farmtest.Ways, Backend: "re"}
		if i%2 == 1 {
			// Odd programs get real run structure and a tight spill budget, so
			// both representation regimes see half the corpus.
			req.Programs[i].ChunkWays = farmtest.Ways / 2
			req.Programs[i].SpillRuns = 1
		}
	}
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	if !sc.Scan() {
		t.Fatal("no header")
	}
	var hdr ResultsHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Count != len(srcs) {
		t.Fatalf("header count %d, want %d", hdr.Count, len(srcs))
	}
	n := 0
	for sc.Scan() {
		var r RunResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if r.Error != "" {
			t.Fatalf("program %d failed on the re backend: %s\n%s", n, r.Error, srcs[n])
		}
		d := direct[n]
		if r.Regs != d.Regs || r.Output != d.Output || r.Insts != d.Insts {
			t.Fatalf("program %d diverged on the re backend:\nre:    regs=%v output=%q insts=%d\ndense: regs=%v output=%q insts=%d\n%s",
				n, r.Regs, r.Output, r.Insts, d.Regs, d.Output, d.Insts, srcs[n])
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(srcs) {
		t.Fatalf("stream delivered %d of %d results", n, len(srcs))
	}
}

// TestREBackendValidation pins the 400-level refusals of the new request
// fields: unknown backends, dense runs carrying RE tuning knobs, pipelined
// RE runs, and out-of-range geometry.
func TestREBackendValidation(t *testing.T) {
	cases := []RunRequest{
		{Src: "sys", Backend: "zstd"},
		{Src: "sys", ChunkWays: 4},                         // dense + RE knob
		{Src: "sys", SpillRuns: 8},                         // dense + RE knob
		{Src: "sys", Backend: "re", Mode: "pipelined"},     // no pipelined RE
		{Src: "sys", Backend: "re", Ways: 25},              // above MaxREWays
		{Src: "sys", Backend: "re", Ways: 8, ChunkWays: 9}, // chunk > ways
		{Src: "sys", Backend: "re", ChunkWays: 17},         // chunk > dense wall
		{Src: "sys", Ways: 17},                             // dense above the wall
	}
	_, base := startTestServer(t, Config{})
	for i, rq := range cases {
		body, err := json.Marshal(&rq)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d (%+v): status %d, want 400", i, rq, resp.StatusCode)
		}
	}

	// And the happy path: an RE run above the dense wall is accepted.
	body, _ := json.Marshal(&RunRequest{Src: "sys", Backend: "re", Ways: 20})
	resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re ways=20 run: status %d, want 200", resp.StatusCode)
	}
}
