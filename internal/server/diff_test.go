package server

// The differential lens over the wire: every program in the shared random
// corpus (internal/farm/farmtest) must come back byte-identical through the
// HTTP serving stack — request decode, admission, chunked batch execution,
// NDJSON encode — as from direct in-process batch execution
// (qasm.RunFunctionalBatch). This is the internal/farm diff harness
// extended across the serialization boundary: any divergence is a bug in
// the serving layer, since both sides share the machine models.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"tangled/internal/farm/farmtest"
	"tangled/internal/qasm"
)

func TestDifferentialHTTPvsDirect(t *testing.T) {
	srcs := make([]string, farmtest.Programs)
	for i := range srcs {
		srcs[i] = farmtest.Generate(farmtest.Seed(i))
	}
	direct, _, err := qasm.RunFunctionalBatch(context.Background(), srcs, farmtest.Ways, 0)
	if err != nil {
		t.Fatal(err)
	}

	// BatchMax below the corpus size so the server's chunked streaming path
	// is the one under test, not a single engine call.
	_, base := startTestServer(t, Config{BatchMax: 32})
	req := BatchRequest{ID: "diff", Programs: make([]RunRequest, len(srcs))}
	for i, src := range srcs {
		req.Programs[i] = RunRequest{Src: src, Ways: farmtest.Ways}
	}
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	if !sc.Scan() {
		t.Fatal("no header")
	}
	var hdr ResultsHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Count != len(srcs) {
		t.Fatalf("header count %d, want %d", hdr.Count, len(srcs))
	}
	n := 0
	for sc.Scan() {
		var r RunResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if r.Index != n {
			t.Fatalf("result %d arrived at position %d: order broken", r.Index, n)
		}
		if r.Error != "" {
			t.Fatalf("program %d failed over HTTP: %s\n%s", n, r.Error, srcs[n])
		}
		d := direct[n]
		if r.Regs != d.Regs || r.Output != d.Output || r.Insts != d.Insts {
			t.Fatalf("program %d diverged over HTTP:\nhttp:   regs=%v output=%q insts=%d\ndirect: regs=%v output=%q insts=%d\n%s",
				n, r.Regs, r.Output, r.Insts, d.Regs, d.Output, d.Insts, srcs[n])
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(srcs) {
		t.Fatalf("stream delivered %d of %d results", n, len(srcs))
	}
}
