package server

// Serving-layer memoization: /v1/run and /v1/batch consult the
// content-addressed execution cache before admission control. These tests
// pin the wire-visible contract — the cached field, byte-identical replays
// over the full shared corpus, hits sailing past a full admission queue —
// and the idempotency cache's LRU eviction order (the FIFO regression).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"tangled/internal/farm/farmtest"
	"tangled/internal/obs"
)

// runOnce posts one /v1/run and decodes the result, failing on non-200.
func runOnce(t *testing.T, base string, req RunRequest) RunResult {
	t.Helper()
	resp := postJSON(t, base+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		resp.Body.Close()
		t.Fatalf("status %d: %s", resp.StatusCode, b.String())
	}
	var res RunResult
	decodeInto(t, resp, &res)
	return res
}

// sameRunResult compares the execution-determined fields of two results
// (IDs and indexes legitimately differ between a fresh run and its replay).
func sameRunResult(a, b RunResult) error {
	if a.Regs != b.Regs {
		return fmt.Errorf("regs %v != %v", a.Regs, b.Regs)
	}
	if a.Output != b.Output {
		return fmt.Errorf("output %q != %q", a.Output, b.Output)
	}
	if a.Insts != b.Insts {
		return fmt.Errorf("insts %d != %d", a.Insts, b.Insts)
	}
	if a.Cycles != b.Cycles || a.Stalls != b.Stalls {
		return fmt.Errorf("cycles/stalls %d/%d != %d/%d", a.Cycles, a.Stalls, b.Cycles, b.Stalls)
	}
	if a.Error != b.Error || a.Code != b.Code {
		return fmt.Errorf("error %q(%d) != %q(%d)", a.Error, a.Code, b.Error, b.Code)
	}
	return nil
}

// TestRunMemoizedDifferential repeats every corpus program through /v1/run
// (distinct request IDs, so the idempotency cache stays out of the way) and
// requires the cached replay to be byte-identical to the fresh execution.
func TestRunMemoizedDifferential(t *testing.T) {
	reg := obs.NewRegistry()
	_, base := startTestServer(t, Config{Registry: reg})
	for i := 0; i < farmtest.Programs; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		fresh := runOnce(t, base, RunRequest{ID: fmt.Sprintf("fresh-%d", i), Src: src, Ways: farmtest.Ways})
		if fresh.Cached {
			t.Fatalf("program %d: first run flagged cached", i)
		}
		replay := runOnce(t, base, RunRequest{ID: fmt.Sprintf("replay-%d", i), Src: src, Ways: farmtest.Ways})
		if !replay.Cached {
			t.Fatalf("program %d: repeat run not served from the memo", i)
		}
		if err := sameRunResult(fresh, replay); err != nil {
			t.Fatalf("program %d: cached replay differs: %v\n%s", i, err, src)
		}
	}
	snap := reg.Snapshot()
	if hits, _ := snap["memo_hits_total"].(uint64); hits < farmtest.Programs {
		t.Fatalf("memo_hits_total = %v, want >= %d", snap["memo_hits_total"], farmtest.Programs)
	}
	if misses, _ := snap["memo_misses_total"].(uint64); misses < farmtest.Programs {
		t.Fatalf("memo_misses_total = %v, want >= %d", snap["memo_misses_total"], farmtest.Programs)
	}
}

// TestRunMemoizedPipelined covers the pipelined wire path (cycles/stalls
// must replay exactly) — possible because this server attaches no trace
// ring, so pipelined programs are cacheable.
func TestRunMemoizedPipelined(t *testing.T) {
	_, base := startTestServer(t, Config{})
	src := farmtest.Generate(farmtest.Seed(3))
	fresh := runOnce(t, base, RunRequest{ID: "p-1", Src: src, Mode: "pipelined", Ways: farmtest.Ways})
	replay := runOnce(t, base, RunRequest{ID: "p-2", Src: src, Mode: "pipelined", Ways: farmtest.Ways})
	if fresh.Cached || !replay.Cached {
		t.Fatalf("cached flags: fresh=%v replay=%v", fresh.Cached, replay.Cached)
	}
	if fresh.Cycles == 0 {
		t.Fatalf("pipelined run reported no cycles")
	}
	if err := sameRunResult(fresh, replay); err != nil {
		t.Fatalf("pipelined replay differs: %v", err)
	}
}

// TestMemoTracePreventsPipelinedCaching: with a trace ring attached,
// pipelined repeats must execute for real (their rows are the product),
// while functional repeats still memoize.
func TestMemoTracePreventsPipelinedCaching(t *testing.T) {
	// Trace rides the farm Obs hook-up, which requires a registry.
	_, base := startTestServer(t, Config{Registry: obs.NewRegistry(), Trace: obs.NewTraceRing(1 << 12)})
	src := farmtest.Generate(farmtest.Seed(4))
	runOnce(t, base, RunRequest{ID: "tp-1", Src: src, Mode: "pipelined", Ways: farmtest.Ways})
	if res := runOnce(t, base, RunRequest{ID: "tp-2", Src: src, Mode: "pipelined", Ways: farmtest.Ways}); res.Cached {
		t.Fatalf("pipelined repeat served from cache while tracing")
	}
	runOnce(t, base, RunRequest{ID: "tf-1", Src: src, Ways: farmtest.Ways})
	if res := runOnce(t, base, RunRequest{ID: "tf-2", Src: src, Ways: farmtest.Ways}); !res.Cached {
		t.Fatalf("functional repeat not memoized on a tracing server")
	}
}

// TestMemoDisabled: MemoCap < 0 turns the cache off entirely.
func TestMemoDisabled(t *testing.T) {
	_, base := startTestServer(t, Config{MemoCap: -1})
	src := farmtest.Generate(farmtest.Seed(5))
	runOnce(t, base, RunRequest{ID: "d-1", Src: src, Ways: farmtest.Ways})
	if res := runOnce(t, base, RunRequest{ID: "d-2", Src: src, Ways: farmtest.Ways}); res.Cached {
		t.Fatalf("memo-disabled server served a cached result")
	}
}

// TestMemoHitBypassesAdmission: a memoized result is delivered even while
// the admission queue is completely full — hits must not consume a slot.
func TestMemoHitBypassesAdmission(t *testing.T) {
	s, base := startTestServer(t, Config{QueueLimit: 4})
	src := farmtest.Generate(farmtest.Seed(6))
	runOnce(t, base, RunRequest{ID: "warm", Src: src, Ways: farmtest.Ways})

	// Saturate the admission counter directly: every slot appears taken.
	s.queue.Store(int64(s.cfg.QueueLimit))
	defer s.queue.Store(0)

	// A fresh program cannot get in...
	resp := postJSON(t, base+"/v1/run", RunRequest{ID: "cold", Src: farmtest.Generate(farmtest.Seed(7)), Ways: farmtest.Ways})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fresh program got %d with a full queue, want 429", resp.StatusCode)
	}
	// ...but the memoized repeat is served regardless.
	res := runOnce(t, base, RunRequest{ID: "hot", Src: src, Ways: farmtest.Ways})
	if !res.Cached {
		t.Fatalf("repeat with a full queue was not served from the memo")
	}
}

// TestBatchMemoized: a batch mixing cached repeats with a fresh program
// streams complete, input-ordered results with the cached flags set on
// exactly the repeats — and a batch of pure repeats is admitted even when
// the queue is full.
func TestBatchMemoized(t *testing.T) {
	s, base := startTestServer(t, Config{BatchMax: 2})
	warm := []string{
		farmtest.Generate(farmtest.Seed(8)),
		farmtest.Generate(farmtest.Seed(9)),
	}
	for i, src := range warm {
		runOnce(t, base, RunRequest{ID: fmt.Sprintf("warm-%d", i), Src: src, Ways: farmtest.Ways})
	}
	fresh := farmtest.Generate(farmtest.Seed(10))

	results := postBatch(t, base, BatchRequest{ID: "mix", Programs: []RunRequest{
		{Src: warm[0], Ways: farmtest.Ways},
		{Src: fresh, Ways: farmtest.Ways},
		{Src: warm[1], Ways: farmtest.Ways},
	}})
	wantCached := []bool{true, false, true}
	for i, res := range results {
		if res.Error != "" {
			t.Fatalf("program %d: %s", i, res.Error)
		}
		if res.Cached != wantCached[i] {
			t.Fatalf("program %d: cached=%v, want %v", i, res.Cached, wantCached[i])
		}
	}

	// Pure-repeat batch with a saturated queue: no admission needed.
	s.queue.Store(int64(s.cfg.QueueLimit))
	defer s.queue.Store(0)
	results = postBatch(t, base, BatchRequest{ID: "repeats", Programs: []RunRequest{
		{Src: warm[0], Ways: farmtest.Ways},
		{Src: warm[1], Ways: farmtest.Ways},
	}})
	for i, res := range results {
		if res.Error != "" || !res.Cached {
			t.Fatalf("repeat %d with a full queue: cached=%v err=%q", i, res.Cached, res.Error)
		}
	}
}

// postBatch posts a /v1/batch and decodes the full NDJSON stream, checking
// header schema and input ordering.
func postBatch(t *testing.T, base string, req BatchRequest) []RunResult {
	t.Helper()
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		t.Fatalf("batch status %d: %s", resp.StatusCode, b.String())
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	if !sc.Scan() {
		t.Fatal("no batch header")
	}
	var hdr ResultsHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != ResultsSchema || hdr.Count != len(req.Programs) {
		t.Fatalf("header %+v, want schema %q count %d", hdr, ResultsSchema, len(req.Programs))
	}
	var out []RunResult
	for sc.Scan() {
		var r RunResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if r.Index != len(out) {
			t.Fatalf("result %d arrived at position %d: order broken", r.Index, len(out))
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(req.Programs) {
		t.Fatalf("stream delivered %d of %d results", len(out), len(req.Programs))
	}
	return out
}

// TestIdempCacheLRUEvictionOrder is the regression for the FIFO bug: a
// request ID that keeps being replayed must survive unrelated traffic, and
// eviction must target the least recently *used* entry, not the oldest
// insertion.
func TestIdempCacheLRUEvictionOrder(t *testing.T) {
	c := newIdempCache(3)
	c.put("a", RunResult{ID: "a"})
	c.put("b", RunResult{ID: "b"})
	c.put("c", RunResult{ID: "c"})

	// "a" is hot: a client keeps retrying it.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	// New traffic must evict cold "b", not hot "a" (a FIFO would drop "a").
	c.put("d", RunResult{ID: "d"})
	if _, ok := c.get("a"); !ok {
		t.Fatal("hot entry a was evicted; idempotency cache is still FIFO")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("cold entry b survived over hot a")
	}

	// First write wins even after eviction churn.
	c.put("a", RunResult{ID: "a2"})
	if r, _ := c.get("a"); r.ID != "a" {
		t.Fatalf("replayed entry was overwritten: %q", r.ID)
	}

	// Disabled cache (nil) is inert.
	var nilCache *idempCache
	nilCache.put("x", RunResult{})
	if _, ok := nilCache.get("x"); ok {
		t.Fatal("nil cache returned a value")
	}
}
