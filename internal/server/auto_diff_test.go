package server

// The auto-backend planner through the HTTP surface: a backend:"auto"
// request must resolve to a concrete backend, report the choice in the
// result record, match the explicit spelling byte-for-byte (including the
// width regime dense cannot serve), and refuse unservable widths with a
// 422 carrying the static profile.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"tangled/internal/farm/farmtest"
	"tangled/internal/qat"
)

func postRunJSON(t *testing.T, base string, rq *RunRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(rq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// autoWideSrc entangles all 16 seedable channels into @1 and reduces.
func autoWideSrc() string {
	var b strings.Builder
	for k := 0; k < 16; k++ {
		fmt.Fprintf(&b, "\thad\t@%d, %d\n", k+1, k)
	}
	for k := 1; k < 16; k++ {
		fmt.Fprintf(&b, "\tcnot\t@1, @%d\n", k+1)
	}
	b.WriteString("\tmeas\t$1, @1\n\tpop\t$2, @1\n\tlex\t$0, 0\n\tsys\n")
	return b.String()
}

// TestDifferentialHTTPAutoBackend proves the acceptance path end to end:
// at 20 ways (past the dense wall) an auto request must serve on RE,
// byte-identical to the explicit RE spelling, and say so in the record.
func TestDifferentialHTTPAutoBackend(t *testing.T) {
	_, base := startTestServer(t, Config{})
	src := autoWideSrc()

	resp, body := postRunJSON(t, base, &RunRequest{Src: src, Ways: 20, Backend: "auto"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto run: status %d: %s", resp.StatusCode, body)
	}
	var auto RunResult
	if err := json.Unmarshal(body, &auto); err != nil {
		t.Fatal(err)
	}
	if auto.Backend != qat.BackendRE {
		t.Fatalf("auto resolved to %q, want re", auto.Backend)
	}

	resp, body = postRunJSON(t, base, &RunRequest{Src: src, Ways: 20, Backend: "re"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re run: status %d: %s", resp.StatusCode, body)
	}
	var re RunResult
	if err := json.Unmarshal(body, &re); err != nil {
		t.Fatal(err)
	}
	if auto.Regs != re.Regs || auto.Output != re.Output || auto.Insts != re.Insts {
		t.Fatalf("auto diverged from explicit re:\nauto %v %q %d\nre   %v %q %d",
			auto.Regs, auto.Output, auto.Insts, re.Regs, re.Output, re.Insts)
	}

	// Dense refuses the width outright, so auto really had one servable
	// choice.
	resp, _ = postRunJSON(t, base, &RunRequest{Src: src, Ways: 20, Backend: "dense"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dense at 20 ways: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPAutoBatchDifferential submits a corpus slice twice per program
// (auto and dense) in one batch at a dense width: records must agree
// byte-for-byte and each auto record must name its backend.
func TestHTTPAutoBatchDifferential(t *testing.T) {
	const programs = 12
	_, base := startTestServer(t, Config{BatchMax: 32})
	req := BatchRequest{ID: "auto-diff"}
	for i := 0; i < programs; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		req.Programs = append(req.Programs,
			RunRequest{Src: src, Ways: farmtest.Ways, Backend: "auto"},
			RunRequest{Src: src, Ways: farmtest.Ways})
	}
	body, _ := json.Marshal(&req)
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var hdr ResultsHeader
	if err := dec.Decode(&hdr); err != nil {
		t.Fatal(err)
	}
	results := make([]RunResult, hdr.Count)
	for i := range results {
		if err := dec.Decode(&results[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	for i := 0; i < len(results); i += 2 {
		auto, dense := results[i], results[i+1]
		if auto.Error != "" || dense.Error != "" {
			t.Fatalf("pair %d failed: auto=%q dense=%q", i/2, auto.Error, dense.Error)
		}
		if auto.Backend == "" {
			t.Fatalf("pair %d: auto record does not name its backend", i/2)
		}
		if auto.Regs != dense.Regs || auto.Output != dense.Output || auto.Insts != dense.Insts {
			t.Fatalf("pair %d: auto (%s) diverged from dense", i/2, auto.Backend)
		}
	}
}

// TestHTTPAutoUnservable asks for a width past every backend: 422 with
// the static profile attached, so the client learns both the verdict and
// the reason.
func TestHTTPAutoUnservable(t *testing.T) {
	_, base := startTestServer(t, Config{})
	resp, body := postRunJSON(t, base, &RunRequest{Src: autoWideSrc(), Ways: qat.MaxREWays + 1, Backend: "auto"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Profile == nil {
		t.Fatalf("422 body carries no profile: %s", body)
	}
	if er.Profile.Ways != qat.MaxREWays {
		t.Fatalf("profile ways=%d, want clamped to %d", er.Profile.Ways, qat.MaxREWays)
	}
	if er.Profile.DegreeBound == 0 {
		t.Fatal("profile degree bound is zero for an entangling program")
	}
}

// TestBuildinfoBackends pins the backend advertisement: registered names
// plus the auto capability.
func TestBuildinfoBackends(t *testing.T) {
	_, base := startTestServer(t, Config{})
	resp, err := http.Get(base + "/v1/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bi BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	want := []string{qat.BackendDense, qat.BackendRE}
	if len(bi.Backends) != len(want) || bi.Backends[0] != want[0] || bi.Backends[1] != want[1] {
		t.Fatalf("backends=%v, want %v", bi.Backends, want)
	}
	seen := map[string]bool{}
	for _, c := range bi.Capabilities {
		seen[c] = true
	}
	if !seen["backend:auto"] || !seen["backend:re"] {
		t.Fatalf("capabilities %v missing backend:auto/backend:re", bi.Capabilities)
	}
}
