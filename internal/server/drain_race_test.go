package server

// Regression test for snapshot consistency under concurrent readers during
// drain (the audit behind it: farm.Stats/Totals are mutex-guarded, obs
// gauges and the server's admission counter are atomics, and the
// coalescer's WaitGroup gives drain a happens-before edge over every
// result delivery — this test pins those properties under -race while
// shutdown races live traffic and metric scrapes).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tangled/internal/farm/farmtest"
	"tangled/internal/obs"
)

func TestDrainUnderConcurrentReaders(t *testing.T) {
	reg := obs.NewRegistry()
	s, base := startTestServer(t, Config{
		Registry:    reg,
		BatchWindow: time.Millisecond,
		// The accounting below equates delivered responses with engine
		// jobs, so the execution cache (which answers repeats without an
		// engine run) must be off.
		MemoCap: -1,
	})

	var accepted, drained atomic.Int64
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup

	// Reader goroutines hammer every snapshot surface while traffic flows
	// and then while drain tears the server down: healthz (farm totals +
	// gauges), the Prometheus rendering (every registered metric), and the
	// in-process accessors.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				if resp, err := http.Get(base + "/v1/healthz"); err == nil {
					var h Health
					json.NewDecoder(resp.Body).Decode(&h)
					resp.Body.Close()
					if h.QueueDepth < 0 || h.QueueDepth > h.QueueLimit {
						t.Errorf("torn queue snapshot: %+v", h)
						return
					}
					if h.Status == "draining" {
						drained.Add(1)
					}
				}
				if resp, err := http.Get(base + "/metrics"); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				_ = s.Engine().Totals()
				_ = s.QueueDepth()
			}
		}()
	}

	// Writer goroutines submit single runs until drain refuses them.
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; ; i++ {
				err := postJSONErr(base+"/v1/run", RunRequest{
					Src: farmtest.Generate(farmtest.Seed((w*7 + i) % 20)), Ways: farmtest.Ways,
				})
				if err != nil {
					return // drain refused or connection closed: done
				}
				accepted.Add(1)
			}
		}()
	}

	time.Sleep(100 * time.Millisecond) // let traffic and scrapes overlap
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	writers.Wait()
	close(stopReaders)
	readers.Wait()

	// Drain's contract: every admitted job finished and was accounted.
	if depth := s.QueueDepth(); depth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", depth)
	}
	if got, want := s.Engine().Totals().Jobs, uint64(accepted.Load()); got < want {
		t.Fatalf("engine completed %d jobs, but %d responses were delivered", got, want)
	}
	if accepted.Load() == 0 {
		t.Fatal("no traffic was accepted before drain; the race window never opened")
	}
}
