package server

// Async job endpoints: the durable-queue face of the serving API.
//
//	POST   /v1/jobs       submit a program, get a job ID back immediately
//	GET    /v1/jobs/{id}  lifecycle status + result once terminal
//	DELETE /v1/jobs/{id}  cancel (queued: immediate; running: ctx cancel)
//	GET    /v1/events     NDJSON lifecycle stream with `since` replay
//
// The job manager (internal/jobs) owns durability, fairness and the FSM;
// this file owns the wire schema and the execution bridge: a job's spec is
// its fully resolved RunRequest (source already assembled to words, step
// budget already clamped), so replaying it after a crash cannot depend on
// the submitting process's config, and executing it reuses the exact
// synchronous /v1/run machinery — memo probe before admission, the shared
// admission queue (waited on, never jumped), the dynamic-batching
// coalescer — which is what makes the async differential guarantee hold:
// a job's result is byte-identical to a synchronous run of the same
// program.
//
// Optimize-at-first-admission rides here: on a memo miss, when the
// optimizing recompiler applies cleanly, the shrunk image executes but the
// memo entry is stored under the *original* program's key — later
// identical submissions (sync or async) hit the cache without ever seeing
// the optimizer, and the rewrite happens once per distinct program.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"tangled/internal/farm"
	"tangled/internal/jobs"
	"tangled/internal/memo"
	"tangled/internal/opt"
)

// jobSpec is the durable execution description stored in the WAL: the
// resolved RunRequest under a "run" envelope so the format can grow
// without re-versioning the WAL itself.
type jobSpec struct {
	Run RunRequest `json:"run"`
}

// handleJobSubmit admits one program into the async queue. The program is
// validated, assembled and (on strict servers) linted exactly like a
// synchronous run, so a 202 means it will execute. Status: 202 accepted,
// 200 for an idempotent resubmission of an existing job ID, 400/422 for
// bad programs, 429 when the job queue is full, 503 while draining.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if s.draining.Load() {
		s.writeUnavailable(w)
		return
	}
	id := s.requestID(req.ID, r)
	w.Header().Set("X-Request-ID", id)
	built, failStatus, errResp := s.buildJob(&req.RunRequest, id, r.Context())
	if errResp != nil {
		s.writeError(w, failStatus, *errResp)
		return
	}
	// Freeze the request into its durable, process-independent form: the
	// assembled word image and the clamped step budget, so a crash-resumed
	// replay executes exactly what was admitted.
	spec := req.RunRequest
	spec.ID = id
	spec.Src = ""
	spec.Words = built.Prog.Words
	spec.MaxSteps = req.maxSteps(s.cfg.MaxSteps)
	raw, err := json.Marshal(jobSpec{Run: spec})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, ErrorResponse{Error: "encode job spec: " + err.Error()})
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	rec, existed, err := s.jobs.Submit(jobs.Job{
		ID:       id,
		Tenant:   tenant,
		Priority: req.Priority,
		Weight:   req.Weight,
		Spec:     raw,
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.write429(w)
		return
	case errors.Is(err, jobs.ErrDraining):
		s.writeUnavailable(w)
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if existed {
		// Idempotent resubmission: the existing record, not a new job.
		code = http.StatusOK
	}
	s.writeJSON(w, code, jobStatusFrom(rec))
}

// handleJobByID serves GET (status+result) and DELETE (cancel).
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		j, ok := s.jobs.Get(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no job %q", id)})
			return
		}
		s.writeJSON(w, http.StatusOK, jobStatusFrom(j))
	case http.MethodDelete:
		j, err := s.jobs.Cancel(id)
		if err != nil {
			s.writeError(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no job %q", id)})
			return
		}
		s.writeJSON(w, http.StatusOK, jobStatusFrom(j))
	default:
		w.Header().Set("Allow", "GET, DELETE")
		s.writeError(w, http.StatusMethodNotAllowed,
			ErrorResponse{Error: r.URL.Path + " requires GET or DELETE"})
	}
}

// handleEvents streams lifecycle events as NDJSON after a versioned header
// line. `since=<seq>` replays buffered events past that sequence number
// first; `follow=false` returns after the replay instead of streaming
// (pagination for pollers and the post-restart verification path). The
// stream ends on client disconnect or server drain.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad since: " + err.Error()})
			return
		}
		since = n
	}
	follow := true
	if v := q.Get("follow"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad follow: " + err.Error()})
			return
		}
		follow = b
	}
	replay, ch, cancel := s.jobs.Subscribe(since)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.Encode(EventsHeader{Schema: jobs.EventsSchema, Version: jobs.EventsSchemaVersion})
	for i := range replay {
		enc.Encode(&replay[i])
	}
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	if !follow {
		return
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return // manager closed: drain in progress
			}
			enc.Encode(&ev)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// execJob is the jobs.Exec bridge: it rebuilds the farm job from the
// durable spec and runs it through the same serving path a synchronous
// /v1/run takes. The returned document is a RunResult; the returned error
// is the execution error (the manager classifies it into failed/canceled).
func (s *Server) execJob(ctx context.Context, j jobs.Job) (json.RawMessage, error) {
	var spec jobSpec
	if err := json.Unmarshal(j.Spec, &spec); err != nil {
		return nil, fmt.Errorf("corrupt job spec: %w", err)
	}
	job, _, errResp := s.buildJob(&spec.Run, j.ID, ctx)
	if errResp != nil {
		// Cannot normally happen — the spec was validated at submission —
		// but a WAL written by a stricter future config could re-lint
		// differently; classify as a failed job, not a crash.
		return nil, errors.New(errResp.Error)
	}

	// Memo probe first, mirroring the sync path: hits never wait on
	// admission or the batching window.
	if fr, ok := s.engine.MemoProbe(&job); ok {
		return marshalJobResult(j.ID, &fr)
	}
	// The original program's content address, captured before any rewrite:
	// whatever executes below is stored under this key.
	origKey, keyOK := s.engine.MemoKey(&job)

	if err := s.admitWait(ctx, 1); err != nil {
		return nil, err
	}
	defer s.release(1)

	if s.cfg.OptAdmission {
		if optProg, rep := opt.Optimize(job.Prog, opt.Options{Ways: spec.Run.Ways}); rep.Applied {
			job.Prog = optProg
			s.obs.optAdmission.Inc()
		}
	}

	var fr farm.Result
	if cache := s.engine.Memo(); cache != nil && keyOK {
		// Execute with the farm's own memoization off (it would key the
		// possibly-rewritten image) and store under the original key here;
		// concurrent identical jobs collapse onto one execution.
		job.NoMemo = true
		ent, cached, err := cache.Do(ctx, origKey, func() memo.Entry {
			r := s.runJobThroughCoalescer(job)
			return memo.Entry{Regs: r.Regs, Output: r.Output, Insts: r.Insts, Pipe: r.Pipe, Err: r.Err}
		})
		if err != nil {
			return nil, err
		}
		fr = farm.Result{Name: j.ID, Regs: ent.Regs, Output: ent.Output, Insts: ent.Insts, Pipe: ent.Pipe, Err: ent.Err, Cached: cached}
	} else {
		fr = s.runJobThroughCoalescer(job)
	}
	return marshalJobResult(j.ID, &fr)
}

// runJobThroughCoalescer submits one job to the dynamic batcher and waits;
// if the coalescer has already stopped (hard close), it runs the job
// directly so the manager can still record a truthful terminal state.
func (s *Server) runJobThroughCoalescer(job farm.Job) farm.Result {
	if done, ok := s.coal.submit(job); ok {
		return <-done
	}
	rs, _ := s.engine.Run(job.Ctx, []farm.Job{job})
	if len(rs) == 0 {
		return farm.Result{Name: job.Name, Err: errors.New("no result")}
	}
	return rs[0]
}

// marshalJobResult renders the job's result document and forwards the
// execution error for FSM classification.
func marshalJobResult(id string, fr *farm.Result) (json.RawMessage, error) {
	rr := resultFrom(fr, id, 0)
	raw, err := json.Marshal(rr)
	if err != nil {
		return nil, err
	}
	return raw, fr.Err
}

// jobStatusFrom converts a manager record into its wire form.
func jobStatusFrom(j jobs.Job) JobStatus {
	st := JobStatus{
		ID:        j.ID,
		Tenant:    j.Tenant,
		State:     string(j.State),
		Reason:    j.Reason,
		Priority:  j.Priority,
		Resumed:   j.Resumed,
		Submitted: j.Submitted,
	}
	if !j.Started.IsZero() {
		t := j.Started
		st.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		st.Finished = &t
	}
	if len(j.Result) > 0 {
		var rr RunResult
		if json.Unmarshal(j.Result, &rr) == nil {
			st.Result = &rr
		}
	}
	return st
}
