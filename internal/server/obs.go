package server

// Serving-layer observability: request counters by route and by status,
// queue-depth/in-flight gauges, end-to-end latency histograms, and the
// coalescer's batch-size distribution — layered on the same registry as the
// farm/cpu/qat/pipeline counter sets, so one /metrics scrape shows the
// whole stack from HTTP ingress down to per-opcode retire counts. As
// everywhere else, a nil registry hands out nil handles and the serving hot
// path pays one nil check.

import (
	"strconv"

	"tangled/internal/obs"
)

// routes label the per-route request counter; "other" collects 404 traffic.
var routeLabels = []string{"run", "batch", "assemble", "healthz", "buildinfo", "jobs", "events", "other"}

const (
	routeRun = iota
	routeBatch
	routeAssemble
	routeHealthz
	routeBuildinfo
	routeJobs
	routeEvents
	routeOther
)

// statusLabels are the statuses the server can produce; unexpected codes
// fold onto their class ("2xx".."5xx" would lose 429 vs 400, so the known
// set is explicit).
var statusLabels = []string{"200", "202", "400", "404", "405", "409", "413", "422", "429", "499", "500", "503", "504"}

// requestLatencyBuckets span HTTP round-trips from sub-millisecond cached
// replies to multi-second deep batches.
var requestLatencyBuckets = []float64{
	1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30,
}

// batchSizeBuckets span the coalescer's output: 1 means the window closed
// with a lone request, larger values are amortization wins.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// serverObs is the serving-layer metric set; nil when metrics are off.
type serverObs struct {
	requests  *obs.CounterVec // by route
	responses *obs.CounterVec // by status

	queueDepth *obs.Gauge // admitted jobs not yet finished
	inFlight   *obs.Gauge // HTTP requests currently being served

	latency   *obs.Histogram // end-to-end request seconds
	batchSize *obs.Histogram // jobs per coalesced farm batch

	rejected429 *obs.Counter // admissions refused for a full queue
	idempHits   *obs.Counter // /v1/run responses replayed from the ID cache
	lintRejects *obs.Counter // programs refused by strict lint before admission

	optRequests   *obs.Counter // /v1/assemble requests that asked for optimize
	optApplied    *obs.Counter // optimize requests that produced a rewrite
	optRefused    *obs.Counter // optimize requests refused (unproven or lint errors)
	optWordsSaved *obs.Counter // total words removed by applied rewrites
	optInstsSaved *obs.Counter // total instructions removed by applied rewrites

	// optAdmission counts async jobs whose program was rewritten by the
	// optimize-at-first-admission path (memo miss, recompiler applied
	// cleanly, shrunk image executed under the original memo key).
	optAdmission *obs.Counter

	// autoPlanned counts "auto" requests the static planner resolved to a
	// concrete backend; unservable those it refused with 422 because the
	// requested width exceeds every backend.
	autoPlanned *obs.Counter
	unservable  *obs.Counter
}

// newServerObs registers the serving metric set on r. A nil registry yields
// a set of nil handles, which every obs method accepts as a no-op — the
// same off-by-default contract as the machine-level instrumentation.
func newServerObs(r *obs.Registry) *serverObs {
	if r == nil {
		return &serverObs{}
	}
	return &serverObs{
		requests: r.CounterVec("server_requests_total",
			"HTTP requests received, by route", "route", routeLabels),
		responses: r.CounterVec("server_responses_total",
			"HTTP responses sent, by status", "status", statusLabels),
		queueDepth: r.Gauge("server_queue_depth",
			"admitted jobs not yet finished (the admission-control gauge)"),
		inFlight: r.Gauge("server_inflight_requests",
			"HTTP requests currently being served"),
		latency: r.Histogram("server_request_seconds",
			"end-to-end request latency", requestLatencyBuckets),
		batchSize: r.Histogram("server_coalesced_batch_jobs",
			"jobs per farm batch formed by the dynamic coalescer", batchSizeBuckets),
		rejected429: r.Counter("server_admission_rejects_total",
			"requests refused with 429 because the queue was full"),
		idempHits: r.Counter("server_idempotent_replays_total",
			"/v1/run responses replayed from the request-ID cache"),
		lintRejects: r.Counter("server_lint_rejects_total",
			"programs refused with 422 by strict lint before admission"),
		optRequests: r.Counter("server_opt_requests_total",
			"/v1/assemble requests that asked for the optimizing recompiler"),
		optApplied: r.Counter("server_opt_applied_total",
			"optimize requests where the recompiler rewrote the program"),
		optRefused: r.Counter("server_opt_refused_total",
			"optimize requests the recompiler refused (program returned unchanged)"),
		optWordsSaved: r.Counter("server_opt_words_saved_total",
			"program words removed by applied rewrites, summed over requests"),
		optInstsSaved: r.Counter("server_opt_insts_saved_total",
			"instructions removed by applied rewrites, summed over requests"),
		optAdmission: r.Counter("server_opt_admission_applied_total",
			"async jobs executed through an optimize-at-admission rewrite"),
		autoPlanned: r.Counter("server_backend_auto_planned_total",
			"\"auto\" requests the static planner resolved to a concrete backend"),
		unservable: r.Counter("server_backend_unservable_total",
			"\"auto\" requests refused with 422: width exceeds every backend"),
	}
}

// observeStatus counts a response status; unknown codes land on "500".
func (so *serverObs) observeStatus(code int) {
	s := strconv.Itoa(code)
	for i, l := range statusLabels {
		if l == s {
			so.responses.At(i).Inc()
			return
		}
	}
	so.responses.At(statusFallback).Inc()
}

// statusFallback indexes "500" in statusLabels.
var statusFallback = func() int {
	for i, l := range statusLabels {
		if l == "500" {
			return i
		}
	}
	panic("statusLabels lacks 500")
}()
