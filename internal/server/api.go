package server

// Wire types of the JSON/NDJSON serving API, shared with internal/client.
// The schema is versioned the same way the cycle-trace stream is: batch
// responses open with a header record naming ResultsSchema and
// ResultsSchemaVersion, and both sides reject a mismatch.

import (
	"fmt"
	"time"

	"tangled/internal/aob"
	"tangled/internal/backend"
	"tangled/internal/farm"
	"tangled/internal/lint"
	"tangled/internal/opt"
	"tangled/internal/pipeline"
	"tangled/internal/qasm"
	"tangled/internal/qat"
)

// ResultsSchema names the NDJSON result stream written by POST /v1/batch.
const ResultsSchema = "tangled-run-results"

// ResultsSchemaVersion is bumped whenever a RunResult field changes
// meaning; README.md ("Serving") records the schema.
const ResultsSchemaVersion = 1

// RunRequest is one program submission: the body of POST /v1/run and one
// element of BatchRequest.Programs. Exactly one of Src (Tangled/Qat
// assembly) or Words (a pre-assembled word image, the hex-file form) must
// be set.
type RunRequest struct {
	// ID is the caller's idempotency key for this program; the server
	// generates one when empty. It comes back in RunResult.ID, in the
	// X-Request-ID response header, and as the req field of cycle-trace
	// rows the run contributes.
	ID string `json:"id,omitempty"`

	// Src is Tangled/Qat assembly source.
	Src string `json:"src,omitempty"`
	// Words is a pre-assembled word image loaded at address 0 — the
	// word-level submission path, equivalent to a $readmemh hex file.
	Words []uint16 `json:"words,omitempty"`

	// Mode is "functional" (default) or "pipelined".
	Mode string `json:"mode,omitempty"`
	// Ways is the Qat entanglement degree; 0 means the full 16-way
	// hardware.
	Ways int `json:"ways,omitempty"`
	// ConstRegs selects the Section 5 constant-register Qat variant.
	ConstRegs bool `json:"const_regs,omitempty"`
	// Backend selects the Qat register-file representation for functional
	// runs: "" or "dense" is the paper's bit-parallel file, "re" the
	// run-encoded compressed file, which also unlocks Ways beyond the
	// dense wall (up to qat.MaxREWays), and "auto" lets the server's
	// static planner pick from the program's profile (the choice comes
	// back in RunResult.Backend). Pipelined runs are dense-only.
	Backend string `json:"backend,omitempty"`
	// ChunkWays and SpillRuns tune the "re" backend (0 means the backend
	// defaults; negative SpillRuns disables spilling). Rejected for dense
	// and "auto" runs so every accepted request has one canonical
	// spelling (the planner owns the geometry it plans).
	ChunkWays int `json:"chunk_ways,omitempty"`
	SpillRuns int `json:"spill_runs,omitempty"`
	// Stages picks the pipeline organization for pipelined runs (4 or 5;
	// 0 means 5).
	Stages int `json:"stages,omitempty"`

	// MaxSteps bounds retired instructions (functional) or cycles
	// (pipelined); 0 means the server's default budget. The server caps it
	// at its configured ceiling either way.
	MaxSteps uint64 `json:"max_steps,omitempty"`
	// TimeoutMs bounds the program's wall-clock execution in milliseconds;
	// it is combined with the request context's own deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// ID labels the batch; per-program IDs are derived as "<ID>/<index>"
	// for programs that do not carry their own.
	ID string `json:"id,omitempty"`
	// Programs are executed as one farm batch; results stream back in
	// this order.
	Programs []RunRequest `json:"programs"`
}

// DeriveBatchProgramID names program i of a batch that did not carry its
// own ID. Exported because the cluster coordinator derives the same IDs
// before splitting a batch across nodes, so failover replays are
// idempotent per program.
func DeriveBatchProgramID(batchID string, i int) string {
	return fmt.Sprintf("%s/%d", batchID, i)
}

// ResultsHeader is the first NDJSON line of a batch response.
type ResultsHeader struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Count   int    `json:"count"`
}

// RunResult is one program outcome: the body of a /v1/run response and one
// NDJSON line of a /v1/batch response.
type RunResult struct {
	// ID echoes (or supplies) the program's request ID.
	ID string `json:"id,omitempty"`
	// Index is the program's position in its batch (0 for single runs).
	Index int `json:"index"`

	// Regs is the final Tangled register file.
	Regs [16]uint16 `json:"regs"`
	// Output is everything the program printed through sys.
	Output string `json:"output,omitempty"`
	// Insts is the retired instruction count.
	Insts uint64 `json:"insts"`
	// Cycles and Stalls carry the pipeline accounting of pipelined runs.
	Cycles uint64 `json:"cycles,omitempty"`
	Stalls uint64 `json:"stalls,omitempty"`

	// Error is the program's failure, empty on success. Code carries the
	// HTTP-style status of this record: 0/200 ok, 400 bad program, 499
	// cancelled, 504 deadline exceeded, 500 other execution failure. For
	// single runs the HTTP response status matches Code.
	Error string `json:"error,omitempty"`
	Code  int    `json:"code,omitempty"`

	// Cached reports that the result was served from the server's
	// content-addressed execution cache instead of being executed for this
	// request. (Additive field; the schema version is unchanged.)
	Cached bool `json:"cached,omitempty"`

	// Backend is the canonical register file that served a functional run
	// ("dense"/"re"), reporting in particular what a "auto" request
	// resolved to. (Additive field; the schema version is unchanged.)
	Backend string `json:"backend,omitempty"`
}

// JobRequest is the body of POST /v1/jobs: one program submission plus the
// async-queue placement fields. The embedded RunRequest is validated (and
// strict-linted) exactly like a synchronous run before the job is admitted,
// so a 202 means the program will execute.
type JobRequest struct {
	RunRequest
	// Tenant names the fair-queuing principal; empty means "default". Each
	// tenant receives service proportional to its weight under saturation.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders this tenant's own jobs (higher first, ties in submit
	// order); it never preempts other tenants.
	Priority int `json:"priority,omitempty"`
	// Weight sets the tenant's fair-share weight (<= 0 means 1).
	Weight int `json:"weight,omitempty"`
}

// JobStatus is the body of POST/GET/DELETE /v1/jobs responses: the job's
// lifecycle record, with the result attached once terminal.
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// State is queued/running/completed/failed/canceled; Reason explains
	// failed and canceled states.
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
	// Priority echoes the submission's placement.
	Priority int `json:"priority,omitempty"`
	// Resumed marks a job re-admitted from the WAL after a server restart.
	Resumed bool `json:"resumed,omitempty"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	// Result is the program outcome, present on terminal jobs that
	// executed (completed always; failed when execution produced a
	// classified record before erroring).
	Result *RunResult `json:"result,omitempty"`
}

// EventsHeader is the first NDJSON line of a GET /v1/events stream,
// versioned like the batch results header and the cycle-trace stream.
type EventsHeader struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
}

// LineError is one assembler diagnostic in an ErrorResponse.
type LineError struct {
	Line int `json:"line"`
	// Col is the 1-based byte column of the offending token, 0 when the
	// assembler could not attribute the failure to one token.
	Col int    `json:"col,omitempty"`
	Msg string `json:"msg"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Lines carries assembler diagnostics with 1-based source lines when
	// the failure was an assembly error (HTTP 400).
	Lines []LineError `json:"lines,omitempty"`
	// Lint carries the static-analysis findings when a strict-mode server
	// refused the program (HTTP 422) before admission.
	Lint []lint.Diagnostic `json:"lint,omitempty"`
	// Profile carries the static entanglement/cost profile when the auto
	// planner refused the program as unservable (HTTP 422: the requested
	// width exceeds every backend), documenting why.
	Profile *lint.Profile `json:"profile,omitempty"`
	// RetryAfterMs hints when to retry a 429/503; the Retry-After header
	// carries the same figure in whole seconds.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// Health is the body of GET /v1/healthz.
type Health struct {
	// Status is "ok", or "draining" once shutdown has begun (the HTTP
	// status is 503 then, so load balancers stop routing here).
	Status string `json:"status"`
	// QueueDepth is the number of admitted jobs not yet finished and
	// QueueLimit the admission bound that produces 429s.
	QueueDepth int64 `json:"queue_depth"`
	QueueLimit int64 `json:"queue_limit"`
	// InFlight is the number of HTTP requests currently being served.
	InFlight int64 `json:"in_flight"`
	// Workers is the farm's concurrency bound.
	Workers int `json:"workers"`
	// JobsDone counts jobs completed over the server's lifetime.
	JobsDone uint64 `json:"jobs_done"`
	// Draining mirrors Status == "draining" as a boolean, so pollers and
	// routers branch without string comparison.
	Draining bool `json:"draining"`
	// JobsQueued/JobsRunning describe the async job subsystem's queue (both
	// zero when the server runs without one).
	JobsQueued  int `json:"jobs_queued"`
	JobsRunning int `json:"jobs_running"`
}

// BuildInfo is the body of GET /v1/buildinfo.
type BuildInfo struct {
	GoVersion     string `json:"go_version"`
	Module        string `json:"module,omitempty"`
	Revision      string `json:"revision,omitempty"`
	NumCPU        int    `json:"num_cpu"`
	Workers       int    `json:"workers"`
	MaxWays       int    `json:"max_ways"`
	MaxREWays     int    `json:"max_re_ways"`
	MaxSteps      uint64 `json:"max_steps"`
	ResultsSchema string `json:"results_schema"`
	ResultsVer    int    `json:"results_version"`
	TraceSchema   string `json:"trace_schema"`
	TraceVer      int    `json:"trace_version"`
	// Capabilities lists the server's feature set ("jobs", "events",
	// "memo", "opt", "opt-admission", "backend:re", "backend:auto") so
	// clients feature-detect from one probe instead of poking endpoints.
	Capabilities []string `json:"capabilities,omitempty"`
	// Backends lists the registered register-file backends by name
	// (sorted); "auto" is a planner pseudo-backend, advertised through the
	// "backend:auto" capability instead.
	Backends []string `json:"backends,omitempty"`
	// EventsSchema/EventsVer version the /v1/events lifecycle stream,
	// present when the jobs subsystem is enabled.
	EventsSchema string `json:"events_schema,omitempty"`
	EventsVer    int    `json:"events_version,omitempty"`
}

// AssembleRequest is the body of POST /v1/assemble.
type AssembleRequest struct {
	Src string `json:"src"`
	// Lint asks the server to run the static analyzer on the assembled
	// program and attach the report to the response.
	Lint bool `json:"lint,omitempty"`
	// Ways is the entanglement degree the lint energy estimates assume;
	// 0 means the full hardware.
	Ways int `json:"ways,omitempty"`
	// Optimize asks the server to rewrite the program through the
	// optimizing recompiler (internal/opt) and attach the delta report.
	// Programs with error-level lint findings are never rewritten: the
	// report comes back refused with reason "lint-errors".
	Optimize bool `json:"optimize,omitempty"`
}

// AssembleResponse is the success body of POST /v1/assemble.
type AssembleResponse struct {
	// Words is the assembled image, loadable back through
	// RunRequest.Words.
	Words []uint16 `json:"words"`
	// Symbols maps labels to word addresses.
	Symbols map[string]uint16 `json:"symbols,omitempty"`
	// Lint is the static-analysis report, present when the request set
	// Lint.
	Lint *lint.Report `json:"lint,omitempty"`
	// Opt is the optimizer's per-pass delta report, present when the
	// request set Optimize. When Opt.Applied, OptimizedWords carries the
	// rewritten image (loadable through RunRequest.Words exactly like
	// Words); on refusal OptimizedWords is absent and Words is the only
	// artifact, unchanged.
	Opt            *opt.Report `json:"opt,omitempty"`
	OptimizedWords []uint16    `json:"optimized_words,omitempty"`
}

// validate checks a RunRequest and resolves it into a farm job skeleton
// (program assembly happens separately so assembler diagnostics can surface
// with line info).
// Validate checks the request's schema without touching a server: the
// cluster coordinator runs it before deriving a routing key, so requests
// that no worker could accept skip keyed routing.
func (r *RunRequest) Validate() error { return r.validate() }

func (r *RunRequest) validate() error {
	if r.Src == "" && len(r.Words) == 0 {
		return fmt.Errorf("program %q has neither src nor words", r.ID)
	}
	if r.Src != "" && len(r.Words) > 0 {
		return fmt.Errorf("program %q has both src and words", r.ID)
	}
	switch r.Mode {
	case "", "functional", "pipelined":
	default:
		return fmt.Errorf("program %q: mode %q is not \"functional\" or \"pipelined\"", r.ID, r.Mode)
	}
	switch r.Backend {
	case "", qat.BackendDense:
		if r.Ways < 0 || r.Ways > aob.MaxWays {
			return fmt.Errorf("program %q: ways %d out of range [0,%d]", r.ID, r.Ways, aob.MaxWays)
		}
		if r.ChunkWays != 0 || r.SpillRuns != 0 {
			return fmt.Errorf("program %q: chunk_ways/spill_runs apply only to the \"re\" backend", r.ID)
		}
	case qat.BackendRE:
		if r.Mode == "pipelined" {
			return fmt.Errorf("program %q: pipelined runs support only the dense backend", r.ID)
		}
		if r.Ways < 0 || r.Ways > qat.MaxREWays {
			return fmt.Errorf("program %q: ways %d out of range [0,%d] for backend \"re\"", r.ID, r.Ways, qat.MaxREWays)
		}
		ways := r.Ways
		if ways == 0 {
			ways = aob.MaxWays
		}
		if r.ChunkWays < 0 || r.ChunkWays > aob.MaxWays || r.ChunkWays > ways {
			return fmt.Errorf("program %q: chunk_ways %d out of range [0,min(%d,ways)]",
				r.ID, r.ChunkWays, aob.MaxWays)
		}
	case backend.Auto:
		if r.Mode == "pipelined" {
			return fmt.Errorf("program %q: pipelined runs support only the dense backend", r.ID)
		}
		// Widths past every backend pass validation and fail at planning
		// time as a 422 with the profile attached — the planner, not the
		// request schema, owns that verdict.
		if r.Ways < 0 {
			return fmt.Errorf("program %q: negative ways %d", r.ID, r.Ways)
		}
		if r.ChunkWays != 0 || r.SpillRuns != 0 {
			return fmt.Errorf("program %q: chunk_ways/spill_runs apply only to the \"re\" backend", r.ID)
		}
	default:
		return fmt.Errorf("program %q: backend %q is not \"dense\", \"re\", or \"auto\"", r.ID, r.Backend)
	}
	if r.Stages != 0 && r.Stages != 4 && r.Stages != 5 {
		return fmt.Errorf("program %q: stages %d is not 4 or 5", r.ID, r.Stages)
	}
	if r.Stages != 0 && r.Mode != "pipelined" {
		return fmt.Errorf("program %q: stages applies only to pipelined runs", r.ID)
	}
	if r.TimeoutMs < 0 {
		return fmt.Errorf("program %q: negative timeout_ms", r.ID)
	}
	return nil
}

// pipelineConfig builds the pipeline organization a pipelined RunRequest
// asked for, on the paper's default timing.
func (r *RunRequest) pipelineConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	if r.Stages != 0 {
		cfg.Stages = r.Stages
	}
	if r.Ways != 0 {
		cfg.Ways = r.Ways
	}
	cfg.ConstantRegs = r.ConstRegs
	return cfg
}

// maxSteps resolves the request's budget against the server's ceiling.
func (r *RunRequest) maxSteps(cap uint64) uint64 {
	if cap == 0 {
		cap = qasm.MaxSteps
	}
	if r.MaxSteps == 0 || r.MaxSteps > cap {
		return cap
	}
	return r.MaxSteps
}

// resultFrom converts one farm result into its wire form. Execution errors
// are classified into the record's Code.
func resultFrom(fr *farm.Result, id string, index int) RunResult {
	out := RunResult{
		ID:     id,
		Index:  index,
		Regs:   fr.Regs,
		Output: fr.Output,
		Insts:  fr.Insts,
		Cached: fr.Cached,
	}
	out.Backend = fr.Backend
	if fr.Pipe != nil {
		out.Cycles = fr.Pipe.Cycles
		out.Stalls = fr.Pipe.TotalStalls()
	}
	if fr.Err != nil {
		out.Error = fr.Err.Error()
		out.Code = codeForRunError(fr.Err)
	}
	return out
}

// ClusterHealth is the body of GET /v1/healthz served by a cluster
// coordinator: the fleet aggregate in the same top-level fields a single
// server reports (so existing pollers keep working unmodified), plus the
// per-node detail.
type ClusterHealth struct {
	Health
	// NodesHealthy counts nodes currently eligible for routing.
	NodesHealthy int `json:"nodes_healthy"`
	// Nodes describes every registered worker, healthy or not.
	Nodes []NodeHealth `json:"nodes,omitempty"`
}

// NodeHealth is one worker's row in the coordinator's health aggregate.
type NodeHealth struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// State is "healthy", "draining", "demoted", or "dead".
	State string `json:"state"`
	// MissedBeats counts consecutive failed heartbeat probes.
	MissedBeats int `json:"missed_beats,omitempty"`
	// DemotedMs is the remaining backpressure-demotion window.
	DemotedMs int64 `json:"demoted_ms,omitempty"`
	// InFlight is the coordinator's count of requests on this node.
	InFlight int64 `json:"in_flight"`
	// Routed counts requests this coordinator sent to the node.
	Routed uint64 `json:"routed"`
	// QueueDepth/Workers/JobsDone echo the node's last health report.
	QueueDepth int64  `json:"queue_depth"`
	Workers    int    `json:"workers"`
	JobsDone   uint64 `json:"jobs_done"`
}

// ClusterBuildInfo is the body of GET /v1/buildinfo served by a cluster
// coordinator: fleet-wide conservative aggregates (minimum ceilings,
// capability intersection) in the single-server fields, plus per-node
// detail.
type ClusterBuildInfo struct {
	BuildInfo
	Nodes []NodeBuildInfo `json:"nodes,omitempty"`
}

// NodeBuildInfo is one worker's buildinfo row; Err is set (and Info zero)
// when the node could not be probed.
type NodeBuildInfo struct {
	ID   string    `json:"id"`
	URL  string    `json:"url"`
	Info BuildInfo `json:"info,omitempty"`
	Err  string    `json:"err,omitempty"`
}
