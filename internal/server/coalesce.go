package server

// The dynamic-batching coalescer: single-program submissions (POST /v1/run)
// are grouped into farm batches under a latency window, so a storm of
// independent HTTP requests amortizes worker scheduling and machine-pool
// traffic the same way an explicit /v1/batch does. The rule is the standard
// inference-serving one: the first submission opens a window; the batch is
// flushed when the window elapses or the batch reaches its size cap,
// whichever comes first. Each submission still carries its own context
// (farm.Job.Ctx), so one slow or disconnected client never holds back the
// rest of its batch.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"tangled/internal/farm"
)

// submission is one coalesced job and the channel its result goes back on.
type submission struct {
	job  farm.Job
	done chan farm.Result // buffered; receives exactly one result
}

// coalescer owns the batching loop. Submissions enter through submit;
// stop() closes the intake and waits for every accepted submission's batch
// to finish, which is the serving layer's drain barrier.
type coalescer struct {
	engine *farm.Engine
	window time.Duration
	max    int
	obs    *serverObs

	in      chan *submission
	stopped chan struct{}
	flushes sync.WaitGroup
	batches atomic.Uint64 // farm batches formed (observability for tests)

	stopOnce sync.Once
}

func newCoalescer(engine *farm.Engine, window time.Duration, max int, so *serverObs) *coalescer {
	c := &coalescer{
		engine:  engine,
		window:  window,
		max:     max,
		obs:     so,
		in:      make(chan *submission),
		stopped: make(chan struct{}),
	}
	go c.loop()
	return c
}

// submit hands one job to the coalescer and returns the channel its result
// will arrive on. It returns false when the coalescer has been stopped.
func (c *coalescer) submit(job farm.Job) (<-chan farm.Result, bool) {
	sub := &submission{job: job, done: make(chan farm.Result, 1)}
	select {
	case c.in <- sub:
		return sub.done, true
	case <-c.stopped:
		return nil, false
	}
}

// loop is the batching state machine.
func (c *coalescer) loop() {
	var batch []*submission
	var timer *time.Timer
	var window <-chan time.Time
	flush := func() {
		if len(batch) == 0 {
			return
		}
		c.run(batch)
		batch = nil
		if timer != nil {
			timer.Stop()
			timer, window = nil, nil
		}
	}
	for {
		select {
		case sub := <-c.in:
			batch = append(batch, sub)
			if len(batch) >= c.max {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(c.window)
				window = timer.C
			}
		case <-window:
			timer, window = nil, nil
			flush()
		case <-c.stopped:
			flush()
			return
		}
	}
}

// run executes one formed batch on the engine, asynchronously so the loop
// keeps forming the next batch while this one runs.
func (c *coalescer) run(batch []*submission) {
	jobs := make([]farm.Job, len(batch))
	for i, sub := range batch {
		jobs[i] = sub.job
	}
	c.obs.batchSize.Observe(float64(len(batch)))
	c.batches.Add(1)
	c.flushes.Add(1)
	go func() {
		defer c.flushes.Done()
		// The batch context is Background: per-request deadlines and
		// disconnects ride each job's own Ctx, and drain never abandons
		// admitted work.
		results, _ := c.engine.Run(context.Background(), jobs)
		for i, sub := range batch {
			sub.done <- results[i]
		}
	}()
}

// stop closes the intake, flushes the pending batch, and waits for every
// in-flight batch to deliver its results.
func (c *coalescer) stop() {
	c.stopOnce.Do(func() { close(c.stopped) })
	c.flushes.Wait()
}
