// Package server is the Qat-as-a-service layer: a stdlib-only net/http
// JSON/NDJSON API that accepts Tangled assembly or pre-assembled word
// images, executes them on a shared internal/farm fleet, and streams
// per-program results back. It is the host/accelerator boundary of the
// paper made remotely callable — a classical front-end dispatching programs
// to the quantum-inspired execution unit over the network — with the
// serving machinery a production deployment needs:
//
//   - admission control: a bounded job queue; requests beyond it are
//     refused with 429 and a Retry-After hint instead of queuing without
//     bound (backpressure, not collapse);
//   - dynamic batching: single /v1/run submissions are coalesced into farm
//     batches under a configurable latency window (coalesce.go);
//   - deadline propagation: per-request deadlines and client disconnects
//     ride context into farm.Job.Ctx and down to cpu/pipeline RunContext;
//   - graceful drain: Drain stops intake (healthz flips to 503 so load
//     balancers steer away), finishes every admitted job, and only then
//     returns so the operator can flush metrics and traces;
//   - idempotent resubmission: /v1/run responses are cached by request ID,
//     so a client retrying a lost response replays the original result
//     instead of re-executing (execution is deterministic, so this is an
//     optimization, not a correctness requirement);
//   - observability: request/status counters, queue and in-flight gauges,
//     latency histograms (obs.go), and the request ID stamped into every
//     cycle-trace row the run contributes (obs.TagTrace).
//
// Routes: POST /v1/run, /v1/batch, /v1/assemble; GET /v1/healthz,
// /v1/buildinfo; plus the obs debug face (/metrics, /debug/...) when a
// registry is attached. README.md ("Serving") documents the wire schema.
package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/backend"
	"tangled/internal/farm"
	"tangled/internal/jobs"
	"tangled/internal/lint"
	"tangled/internal/memo"
	"tangled/internal/obs"
	"tangled/internal/opt"
	"tangled/internal/qasm"
	"tangled/internal/qat"
)

// StatusClientClosedRequest is the 499 pseudo-status (from the nginx
// convention) recorded when a request's client went away before its result
// was ready.
const StatusClientClosedRequest = 499

// Config parameterizes a Server; the zero value serves with the defaults
// noted per field.
type Config struct {
	// Workers bounds the farm's concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// QueueLimit bounds admitted jobs (queued + running) across all
	// requests; beyond it submissions get 429. <= 0 means 256.
	QueueLimit int
	// BatchWindow is the coalescer's latency window for /v1/run
	// submissions; <= 0 means 2ms.
	BatchWindow time.Duration
	// BatchMax caps a coalesced batch; <= 0 means 64.
	BatchMax int
	// MaxBodyBytes bounds request bodies; <= 0 means 8 MiB.
	MaxBodyBytes int64
	// MaxSteps caps client-supplied step budgets; 0 means qasm.MaxSteps.
	MaxSteps uint64
	// IdempotencyCap bounds the /v1/run response replay cache; <= 0 means
	// 1024 entries, < 0 after normalization disables it.
	IdempotencyCap int
	// MemoCap bounds the content-addressed execution cache shared by every
	// run and batch program (internal/memo): identical (program,
	// configuration, budget) submissions are answered from it before
	// admission control, so hits never consume a queue slot or batching
	// latency, and concurrent identical misses collapse onto one
	// execution. 0 means 4096 entries, < 0 disables memoization. Pipelined
	// programs are not memoized while Trace is attached (their rows must
	// be emitted by a real execution).
	MemoCap int

	// JobsDir enables the async job subsystem (POST /v1/jobs, GET
	// /v1/events): the durable WAL-backed store lives here and queued jobs
	// survive restarts. Empty disables the endpoints entirely — the
	// synchronous API is unchanged either way.
	JobsDir string
	// JobsEphemeral enables the job endpoints without persistence (tests
	// and memory-only deployments); ignored when JobsDir is set.
	JobsEphemeral bool
	// JobQueueLimit bounds queued+running async jobs; <= 0 means 1024.
	JobQueueLimit int
	// JobWorkers bounds concurrently executing async jobs; <= 0 means
	// half the farm's workers (min 1), so synchronous traffic keeps farm
	// capacity even under a saturated job queue.
	JobWorkers int
	// JobRetention bounds retained terminal job records; <= 0 means 4096.
	JobRetention int
	// OptAdmission runs the optimizing recompiler on async jobs that miss
	// the memo cache: when it applies cleanly the shrunk image executes
	// (byte-identical results, proven by the opt differential suite) and
	// the memo entry is stored under the *original* program's key, so the
	// rewrite happens once per distinct program, at first admission.
	OptAdmission bool

	// StrictLint runs the static analyzer over every submitted program and
	// refuses those with error-severity findings (cannot halt, illegal
	// instructions, inescapable loops) with 422 before admission, so
	// certainly-broken programs never consume a farm slot or a step
	// budget. The findings come back in ErrorResponse.Lint.
	StrictLint bool

	// Registry, when non-nil, receives the serving metric set and the farm
	// fleet's counters, and mounts the obs debug face on the server's mux.
	Registry *obs.Registry
	// Trace, when non-nil, receives the cycle trace of every pipelined
	// job, each row stamped with its request ID.
	Trace *obs.TraceRing
}

func (c Config) withDefaults() Config {
	if c.QueueLimit <= 0 {
		c.QueueLimit = 256
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = qasm.MaxSteps
	}
	if c.IdempotencyCap == 0 {
		c.IdempotencyCap = 1024
	}
	if c.MemoCap == 0 {
		c.MemoCap = memo.DefaultCap
	}
	return c
}

// Server executes Tangled/Qat programs over HTTP on a shared farm fleet.
// Construct with New, serve with Start (or mount Handler on your own
// listener), stop with Drain.
type Server struct {
	cfg    Config
	engine *farm.Engine
	obs    *serverObs
	mux    *http.ServeMux

	queue    atomic.Int64 // admitted jobs not yet finished
	jobsDone atomic.Uint64
	draining atomic.Bool
	reqSeq   atomic.Uint64
	reqSalt  string

	coal  *coalescer
	idemp *idempCache
	jobs  *jobs.Manager // nil unless the async job subsystem is enabled

	httpSrv *http.Server
	ln      net.Listener
	started atomic.Bool
	serveWG sync.WaitGroup
}

// New builds a Server over a fresh farm engine. The error is non-nil only
// when the async job store could not be opened (bad JobsDir, corrupt WAL
// header); servers without a job subsystem cannot fail to construct.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	engine := farm.New(cfg.Workers)
	so := newServerObs(cfg.Registry)
	if cfg.Registry != nil {
		fo := farm.NewObs(cfg.Registry)
		fo.Trace = cfg.Trace
		engine.SetObs(fo)
	}
	if cfg.MemoCap > 0 {
		cache := memo.New(cfg.MemoCap)
		cache.SetObs(memo.NewObs(cfg.Registry))
		engine.SetMemo(cache)
	}
	s := &Server{
		cfg:     cfg,
		engine:  engine,
		obs:     so,
		idemp:   newIdempCache(cfg.IdempotencyCap),
		reqSalt: randomSalt(),
	}
	s.coal = newCoalescer(engine, cfg.BatchWindow, cfg.BatchMax, so)

	if cfg.JobsDir != "" || cfg.JobsEphemeral {
		jw := cfg.JobWorkers
		if jw <= 0 {
			jw = engine.Workers() / 2
			if jw < 1 {
				jw = 1
			}
		}
		var jo *jobs.Obs
		if cfg.Registry != nil {
			jo = jobs.NewObs(cfg.Registry)
		}
		mgr, err := jobs.New(jobs.Config{
			Dir:        cfg.JobsDir,
			Workers:    jw,
			QueueLimit: cfg.JobQueueLimit,
			Retention:  cfg.JobRetention,
			Obs:        jo,
		}, s.execJob)
		if err != nil {
			return nil, err
		}
		s.jobs = mgr
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.route(routeRun, http.MethodPost, s.handleRun))
	mux.HandleFunc("/v1/batch", s.route(routeBatch, http.MethodPost, s.handleBatch))
	mux.HandleFunc("/v1/assemble", s.route(routeAssemble, http.MethodPost, s.handleAssemble))
	mux.HandleFunc("/v1/healthz", s.route(routeHealthz, http.MethodGet, s.handleHealthz))
	mux.HandleFunc("/v1/buildinfo", s.route(routeBuildinfo, http.MethodGet, s.handleBuildinfo))
	if s.jobs != nil {
		mux.HandleFunc("/v1/jobs", s.route(routeJobs, http.MethodPost, s.handleJobSubmit))
		mux.HandleFunc("/v1/jobs/{id}", s.route(routeJobs, "", s.handleJobByID))
		mux.HandleFunc("/v1/events", s.route(routeEvents, http.MethodGet, s.handleEvents))
	}
	if cfg.Registry != nil {
		mux.Handle("/metrics", obs.Handler(cfg.Registry))
		mux.Handle("/debug/", obs.Handler(cfg.Registry))
	}
	mux.HandleFunc("/", s.route(routeOther, "", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, ErrorResponse{Error: "no such route: " + r.URL.Path})
	}))
	s.mux = mux
	return s, nil
}

// Engine exposes the underlying farm (its Totals feed healthz and tests).
func (s *Server) Engine() *farm.Engine { return s.engine }

// Handler returns the server's HTTP handler, for callers that manage their
// own listener (tests mount it on httptest servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr and serves in a background goroutine, returning the
// bound address. Tests and CLIs that must avoid port collisions pass
// "127.0.0.1:0" and read the port back from the returned address — the one
// shared helper every server-shaped test in this repository uses.
func (s *Server) Start(addr string) (net.Addr, error) {
	if !s.started.CompareAndSwap(false, true) {
		return nil, errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	s.serveWG.Add(1)
	go func() {
		defer s.serveWG.Done()
		s.httpSrv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// StartLocal is Start("127.0.0.1:0") returning the base URL — the test
// helper that makes port collisions impossible.
func (s *Server) StartLocal() (string, error) {
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	return "http://" + addr.String(), nil
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server: new work is refused with 503 (and
// healthz flips to draining so load balancers steer away), every admitted
// job runs to completion and delivers its response, and the listener shuts
// down. ctx bounds the wait; on expiry the remaining connections are closed
// hard and ctx.Err() is returned. Safe to call on a server that was never
// started (it just stops the coalescer).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.jobs != nil {
		// The job manager drains first: running jobs finish (they still
		// need the coalescer and listener-independent farm below), queued
		// jobs are persisted by the closing compaction and resume on the
		// next start, and the event stream closes — which ends any
		// long-lived /v1/events handlers so Shutdown can complete.
		err = s.jobs.Close(ctx)
	}
	if s.httpSrv != nil {
		// Shutdown stops accepting and waits for in-flight handlers —
		// each of which is waiting on its jobs' results — so admitted work
		// finishes before this returns.
		serr := s.httpSrv.Shutdown(ctx)
		if serr != nil {
			s.httpSrv.Close()
			if err == nil {
				err = serr
			}
		}
		s.serveWG.Wait()
	}
	s.coal.stop()
	return err
}

// Close shuts the server down immediately without waiting for in-flight
// work (tests; production uses Drain).
func (s *Server) Close() error {
	s.draining.Store(true)
	if s.jobs != nil {
		// An already-expired context: running jobs are canceled rather than
		// awaited, then the store compacts and closes.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		s.jobs.Close(ctx)
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
		s.serveWG.Wait()
	}
	s.coal.stop()
	return nil
}

// route wraps a handler with the cross-cutting serving concerns: method
// check, body bound, request counting, in-flight gauge, latency histogram
// and status accounting.
func (s *Server) route(ri int, method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.obs.requests.At(ri).Inc()
		s.obs.inFlight.Add(1)
		defer s.obs.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		if method != "" && r.Method != method {
			sw.Header().Set("Allow", method)
			s.writeError(sw, http.StatusMethodNotAllowed,
				ErrorResponse{Error: fmt.Sprintf("%s requires %s", r.URL.Path, method)})
		} else {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
			}
			h(sw, r)
		}
		s.obs.observeStatus(sw.status())
		s.obs.latency.Observe(time.Since(start).Seconds())
	}
}

// statusWriter records the status code for the response counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// Flush forwards to the underlying writer so NDJSON streaming works.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// admit reserves n queue slots, or reports the refusal the caller must turn
// into a 429. The corresponding release is mandatory.
func (s *Server) admit(n int) bool {
	if !s.tryAdmit(n) {
		s.obs.rejected429.Inc()
		return false
	}
	return true
}

// tryAdmit is admit without the rejection counter — the primitive the
// async dispatcher's blocking wait is built on, where a full queue is a
// normal condition to wait out, not a refusal to count.
func (s *Server) tryAdmit(n int) bool {
	limit := int64(s.cfg.QueueLimit)
	for {
		cur := s.queue.Load()
		if cur+int64(n) > limit {
			return false
		}
		if s.queue.CompareAndSwap(cur, cur+int64(n)) {
			s.obs.queueDepth.Set(cur + int64(n))
			return true
		}
	}
}

// admitWait blocks until n slots are reserved or ctx ends. Async jobs use
// it to share the one admission queue with synchronous traffic: a job
// never jumps the bound, it waits its turn behind it.
func (s *Server) admitWait(ctx context.Context, n int) error {
	if s.tryAdmit(n) {
		return nil
	}
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if s.tryAdmit(n) {
				return nil
			}
		}
	}
}

// release returns n queue slots and counts the finished jobs.
func (s *Server) release(n int) {
	s.obs.queueDepth.Set(s.queue.Add(-int64(n)))
	s.jobsDone.Add(uint64(n))
}

// QueueDepth reports the admitted-but-unfinished job count.
func (s *Server) QueueDepth() int64 { return s.queue.Load() }

// QueueLimit reports the admission bound beyond which submissions get 429.
func (s *Server) QueueLimit() int { return s.cfg.QueueLimit }

// requestID returns the caller's ID for a program, falling back to the
// header and then to a generated "req-<seq>-<salt>".
func (s *Server) requestID(given string, r *http.Request) string {
	if given != "" {
		return given
	}
	if h := r.Header.Get("X-Request-ID"); h != "" {
		return h
	}
	return fmt.Sprintf("req-%d-%s", s.reqSeq.Add(1), s.reqSalt)
}

// randomSalt distinguishes generated request IDs across server restarts,
// so a replayed trace never aliases two different processes' requests.
func randomSalt() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0"
	}
	return fmt.Sprintf("%08x", binary.BigEndian.Uint32(b[:]))
}

// ---- handlers ----

// handleRun executes one program through the dynamic-batching coalescer and
// returns its result as a single JSON object. Status: 200 (including runs
// whose program failed at runtime — see RunResult.Code for per-record
// classification of budget exhaustion), 400 for malformed bodies and
// assembly errors (with line diagnostics), 429 when the queue is full, 503
// while draining, 499/504 for cancelled/deadline-exceeded runs.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	id := s.requestID(req.ID, r)
	w.Header().Set("X-Request-ID", id)
	if cached, ok := s.idemp.get(id); ok {
		s.obs.idempHits.Inc()
		w.Header().Set("X-Idempotent-Replay", "true")
		s.writeJSON(w, http.StatusOK, cached)
		return
	}
	if s.draining.Load() {
		s.writeUnavailable(w)
		return
	}
	job, failStatus, errResp := s.buildJob(&req, id, r.Context())
	if errResp != nil {
		s.writeError(w, failStatus, *errResp)
		return
	}
	// Memoized result? Answered before admission control, so a hit never
	// consumes a queue slot or the coalescer's batching window.
	if fr, ok := s.engine.MemoProbe(&job); ok {
		s.finishRun(w, id, resultFrom(&fr, id, 0))
		return
	}
	if !s.admit(1) {
		s.write429(w)
		return
	}
	defer s.release(1)
	done, ok := s.coal.submit(job)
	if !ok {
		s.writeUnavailable(w)
		return
	}
	fr := <-done
	s.finishRun(w, id, resultFrom(&fr, id, 0))
}

// finishRun delivers a completed /v1/run result: caller-dependent failures
// (deadline/cancel) surface as the HTTP status and are never replayable;
// everything else is cached for idempotent resubmission and returned 200.
func (s *Server) finishRun(w http.ResponseWriter, id string, res RunResult) {
	if res.Code >= 400 && res.Code != http.StatusInternalServerError {
		s.writeJSON(w, res.Code, res)
		return
	}
	s.idemp.put(id, res)
	s.writeJSON(w, http.StatusOK, res)
}

// handleBatch executes a program list as farm batches and streams one
// NDJSON result line per program, in input order, after a header line. The
// whole batch is admitted (or 429ed) atomically; results stream as each
// engine chunk completes, so a long batch delivers early lines while later
// chunks still run.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Programs) == 0 {
		s.writeError(w, http.StatusBadRequest, ErrorResponse{Error: "batch has no programs"})
		return
	}
	if s.draining.Load() {
		s.writeUnavailable(w)
		return
	}
	batchID := s.requestID(req.ID, r)
	w.Header().Set("X-Request-ID", batchID)

	// Build every job up front so malformed programs fail the request
	// before any execution: a batch is admitted whole or not at all.
	ids := make([]string, len(req.Programs))
	jobs := make([]farm.Job, len(req.Programs))
	for i := range req.Programs {
		p := &req.Programs[i]
		ids[i] = p.ID
		if ids[i] == "" {
			ids[i] = DeriveBatchProgramID(batchID, i)
		}
		job, failStatus, errResp := s.buildJob(p, ids[i], r.Context())
		if errResp != nil {
			errResp.Error = fmt.Sprintf("program %d: %s", i, errResp.Error)
			s.writeError(w, failStatus, *errResp)
			return
		}
		jobs[i] = job
	}
	// Probe the memo for every program first: hits are already-finished
	// results, so only the misses ask for admission slots — a batch of
	// repeats sails through even when the queue is otherwise full.
	results := make([]*RunResult, len(jobs))
	var missJobs []farm.Job
	var missIdx []int
	for i := range jobs {
		if fr, ok := s.engine.MemoProbe(&jobs[i]); ok {
			rr := resultFrom(&fr, ids[i], i)
			results[i] = &rr
		} else {
			missJobs = append(missJobs, jobs[i])
			missIdx = append(missIdx, i)
		}
	}
	if len(missJobs) > 0 {
		if !s.admit(len(missJobs)) {
			s.write429(w)
			return
		}
		defer s.release(len(missJobs))
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.Encode(ResultsHeader{Schema: ResultsSchema, Version: ResultsSchemaVersion, Count: len(jobs)})
	flusher, _ := w.(http.Flusher)

	// Stream results in input order as they become available: the
	// contiguous finished prefix flushes after the header (cached results
	// ahead of the first miss go out immediately) and again after each
	// executed chunk fills in its slots.
	next := 0
	flush := func() {
		for next < len(results) && results[next] != nil {
			enc.Encode(results[next])
			next++
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	// Chunked execution of the misses: each chunk is one farm batch.
	for off := 0; off < len(missJobs); off += s.cfg.BatchMax {
		end := off + s.cfg.BatchMax
		if end > len(missJobs) {
			end = len(missJobs)
		}
		chunk := missJobs[off:end]
		s.obs.batchSize.Observe(float64(len(chunk)))
		rs, _ := s.engine.Run(context.Background(), chunk)
		for i := range rs {
			gi := missIdx[off+i]
			rr := resultFrom(&rs[i], ids[gi], gi)
			results[gi] = &rr
		}
		flush()
	}
}

// handleAssemble assembles source and returns the word image, or 400 with
// per-line diagnostics.
func (s *Server) handleAssemble(w http.ResponseWriter, r *http.Request) {
	var req AssembleRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Src == "" {
		s.writeError(w, http.StatusBadRequest, ErrorResponse{Error: "empty src"})
		return
	}
	prog, err := asm.Assemble(req.Src)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, assembleErrorResponse(err))
		return
	}
	resp := AssembleResponse{Words: prog.Words, Symbols: prog.Symbols}
	if req.Lint {
		resp.Lint = lint.Analyze(prog, lint.Options{Ways: req.Ways})
	}
	if req.Optimize {
		s.obs.optRequests.Inc()
		// The optimizer re-lints internally and refuses programs with
		// error-level findings (reason "lint-errors"), so the lenient
		// assemble endpoint stays a 200 either way: callers read
		// Opt.Applied, mirroring the qatlint -optimize contract without
		// turning a diagnostic into a transport failure.
		optProg, orep := opt.Optimize(prog, opt.Options{Ways: req.Ways})
		resp.Opt = orep
		if orep.Applied {
			resp.OptimizedWords = optProg.Words
			s.obs.optApplied.Inc()
			s.obs.optWordsSaved.Add(uint64(orep.WordsBefore - orep.WordsAfter))
			s.obs.optInstsSaved.Add(uint64(orep.InstsBefore - orep.InstsAfter))
		} else {
			s.obs.optRefused.Inc()
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness and the admission picture; 503 while
// draining so load balancers stop routing here before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:     "ok",
		QueueDepth: s.queue.Load(),
		QueueLimit: int64(s.cfg.QueueLimit),
		InFlight:   s.obs.inFlight.Value(),
		Workers:    s.engine.Workers(),
		JobsDone:   s.jobsDone.Load(),
	}
	if s.jobs != nil {
		h.JobsQueued, h.JobsRunning = s.jobs.Depths()
	}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		h.Draining = true
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

// handleBuildinfo reports the build and the server's execution envelope.
func (s *Server) handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	info := BuildInfo{
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Workers:       s.engine.Workers(),
		MaxWays:       aob.MaxWays,
		MaxREWays:     qat.MaxREWays,
		MaxSteps:      s.cfg.MaxSteps,
		ResultsSchema: ResultsSchema,
		ResultsVer:    ResultsSchemaVersion,
		TraceSchema:   obs.TraceSchema,
		TraceVer:      obs.TraceSchemaVersion,
	}
	info.Capabilities = []string{"opt", "backend:re", "backend:auto"}
	info.Backends = backend.Names()
	if s.cfg.MemoCap > 0 {
		info.Capabilities = append(info.Capabilities, "memo")
	}
	if s.jobs != nil {
		info.Capabilities = append(info.Capabilities, "jobs", "events")
		info.EventsSchema = jobs.EventsSchema
		info.EventsVer = jobs.EventsSchemaVersion
		if s.cfg.OptAdmission {
			info.Capabilities = append(info.Capabilities, "opt-admission")
		}
	}
	sort.Strings(info.Capabilities)
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				info.Revision = kv.Value
			}
		}
	}
	s.writeJSON(w, http.StatusOK, info)
}

// ---- request plumbing ----

// buildJob resolves one RunRequest into a farm job, assembling source here
// so diagnostics surface as a 400 with line info instead of a failed job.
// On failure the returned status is 400, or 422 when a strict-lint server
// refused a statically broken program.
func (s *Server) buildJob(req *RunRequest, id string, reqCtx context.Context) (farm.Job, int, *ErrorResponse) {
	if err := req.validate(); err != nil {
		return farm.Job{}, http.StatusBadRequest, &ErrorResponse{Error: err.Error()}
	}
	var prog *asm.Program
	if req.Src != "" {
		p, err := asm.Assemble(req.Src)
		if err != nil {
			resp := assembleErrorResponse(err)
			return farm.Job{}, http.StatusBadRequest, &resp
		}
		prog = p
	} else {
		prog = &asm.Program{Words: append([]uint16(nil), req.Words...)}
	}
	if s.cfg.StrictLint {
		report := lint.Analyze(prog, lint.Options{Ways: req.Ways})
		if report.Errors > 0 {
			s.obs.lintRejects.Inc()
			var diags []lint.Diagnostic
			for _, d := range report.Diags {
				if d.Severity == lint.Error {
					diags = append(diags, d)
				}
			}
			return farm.Job{}, http.StatusUnprocessableEntity, &ErrorResponse{
				Error: fmt.Sprintf("program %q rejected by strict lint: %d error finding(s)", id, report.Errors),
				Lint:  diags,
			}
		}
	}
	job := farm.Job{
		Name:     id,
		Prog:     prog,
		MaxSteps: req.maxSteps(s.cfg.MaxSteps),
		Ctx:      reqCtx,
		TraceTag: id,
	}
	if req.TimeoutMs > 0 {
		job.Timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if req.Mode == "pipelined" {
		job.Mode = farm.Pipelined
		job.Pipeline = req.pipelineConfig()
	} else {
		job.Mode = farm.Functional
		job.Ways = req.Ways
		job.ConstantRegs = req.ConstRegs
		job.Backend = req.Backend
		job.REChunkWays = req.ChunkWays
		job.RESpillRuns = req.SpillRuns
	}
	if job.Backend == backend.Auto && job.Mode == farm.Functional {
		// Resolve the pseudo-backend here, before the memo probe and
		// admission, so every downstream identity (idempotency replay,
		// coalescing, memo keys) is over the concrete backend. The probe
		// prefers a backend that already has this exact run memoized.
		probe := func(cfg qat.Config) bool {
			t := job
			t.Ways, t.ConstantRegs = cfg.Ways, cfg.ConstantRegs
			t.Backend, t.REChunkWays, t.RESpillRuns = cfg.Backend, cfg.ChunkWays, cfg.SpillRuns
			_, hit := s.engine.MemoProbe(&t)
			return hit
		}
		plan, err := backend.PlanAuto(prog,
			qat.Config{Ways: job.Ways, ConstantRegs: job.ConstantRegs, Backend: backend.Auto}, probe)
		if err != nil {
			var ue *backend.UnservableError
			if errors.As(err, &ue) {
				s.obs.unservable.Inc()
				return farm.Job{}, http.StatusUnprocessableEntity, &ErrorResponse{
					Error:   fmt.Sprintf("program %q: %s", id, err),
					Profile: ue.Profile,
				}
			}
			return farm.Job{}, http.StatusBadRequest, &ErrorResponse{
				Error: fmt.Sprintf("program %q: %s", id, err),
			}
		}
		s.obs.autoPlanned.Inc()
		job.Backend = plan.Config.Backend
		job.REChunkWays = plan.Config.ChunkWays
		job.RESpillRuns = plan.Config.SpillRuns
	}
	return job, 0, nil
}

// codeForRunError classifies an execution failure into a record code.
func codeForRunError(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// assembleErrorResponse flattens an assembler error into line diagnostics.
func assembleErrorResponse(err error) ErrorResponse {
	resp := ErrorResponse{Error: "assembly failed: " + err.Error()}
	var list asm.ErrorList
	if errors.As(err, &list) {
		for _, e := range list {
			resp.Lines = append(resp.Lines, LineError{Line: e.Line, Col: e.Col, Msg: e.Msg})
		}
	} else {
		var one asm.Error
		if errors.As(err, &one) {
			resp.Lines = []LineError{{Line: one.Line, Col: one.Col, Msg: one.Msg}}
		}
	}
	return resp
}

// decodeBody decodes a JSON body, writing the 400/413 on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				ErrorResponse{Error: fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit)})
		} else {
			s.writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		}
		return false
	}
	// Tolerate (and require no more than) one JSON value.
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, ErrorResponse{Error: "trailing data after JSON body"})
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, resp ErrorResponse) {
	s.writeJSON(w, code, resp)
}

// write429 is the backpressure response: queue full, retry shortly.
func (s *Server) write429(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	s.writeError(w, http.StatusTooManyRequests, ErrorResponse{
		Error:        fmt.Sprintf("admission queue full (%d jobs)", s.cfg.QueueLimit),
		RetryAfterMs: 1000,
	})
}

// writeUnavailable is the draining response.
func (s *Server) writeUnavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	s.writeError(w, http.StatusServiceUnavailable, ErrorResponse{
		Error:        "server is draining",
		RetryAfterMs: 1000,
	})
}

// ---- idempotency cache ----

// idempCache is a bounded LRU map of completed /v1/run responses keyed by
// request ID. Deterministic execution makes replays exact; the bound keeps
// a chatty client from growing server memory. Lookups refresh recency, so
// a request ID being actively retried stays replayable while cold entries
// age out. (The original implementation was a FIFO over a slice: a hot ID
// was evicted as readily as a cold one, and slicing the order queue's head
// off retained the dead prefix of its backing array.)
type idempCache struct {
	mu  sync.Mutex
	lru *memo.LRU[string, RunResult]
}

func newIdempCache(capacity int) *idempCache {
	if capacity <= 0 {
		return nil
	}
	return &idempCache{lru: memo.NewLRU[string, RunResult](capacity, nil)}
}

func (c *idempCache) get(id string) (RunResult, bool) {
	if c == nil {
		return RunResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Get(id)
}

func (c *idempCache) put(id string, r RunResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// First write wins: a replayed request must keep returning the
	// response its first execution produced.
	if _, ok := c.lru.Peek(id); ok {
		return
	}
	c.lru.Add(id, r)
}
