package server

// Tests of the opt-in optimizing recompiler on POST /v1/assemble: the
// delta report and rewritten image must ride the response, error-level
// findings must suppress rewriting (reason "lint-errors") without turning
// the lenient endpoint into a transport failure, the server_opt_* counters
// must account every decision — and, the serving-path differential proof,
// every accepted corpus rewrite must behave byte-identically to its
// original when both are executed through /v1/run.

import (
	"net/http"
	"testing"

	"tangled/internal/farm/farmtest"
	"tangled/internal/obs"
	"tangled/internal/opt"
)

func TestAssembleOptimizeApplied(t *testing.T) {
	reg := obs.NewRegistry()
	s, base := startTestServer(t, Config{Registry: reg})

	// sloppySrc carries a dead store; the rewrite must shrink the image.
	resp := postJSON(t, base+"/v1/assemble", AssembleRequest{Src: sloppySrc, Optimize: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ar AssembleResponse
	decodeInto(t, resp, &ar)
	if ar.Opt == nil || !ar.Opt.Applied {
		t.Fatalf("optimizer did not apply: %+v", ar.Opt)
	}
	if len(ar.OptimizedWords) != ar.Opt.WordsAfter || len(ar.OptimizedWords) >= len(ar.Words) {
		t.Fatalf("optimized image inconsistent: %d words vs %d reported, original %d",
			len(ar.OptimizedWords), ar.Opt.WordsAfter, len(ar.Words))
	}
	if got := s.obs.optRequests.Value(); got != 1 {
		t.Errorf("server_opt_requests_total = %d, want 1", got)
	}
	if got := s.obs.optApplied.Value(); got != 1 {
		t.Errorf("server_opt_applied_total = %d, want 1", got)
	}
	if got := s.obs.optWordsSaved.Value(); got == 0 {
		t.Error("server_opt_words_saved_total = 0 after an applied shrink")
	}
}

func TestAssembleOptimizeLintErrorsRefused(t *testing.T) {
	reg := obs.NewRegistry()
	s, base := startTestServer(t, Config{Registry: reg})

	resp := postJSON(t, base+"/v1/assemble", AssembleRequest{Src: brokenSrc, Optimize: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (lenient endpoint)", resp.StatusCode)
	}
	var ar AssembleResponse
	decodeInto(t, resp, &ar)
	if ar.Opt == nil || ar.Opt.Applied {
		t.Fatalf("broken program was rewritten: %+v", ar.Opt)
	}
	if ar.Opt.Reason != opt.ReasonLintErrors {
		t.Fatalf("refusal reason %q, want %q", ar.Opt.Reason, opt.ReasonLintErrors)
	}
	if len(ar.OptimizedWords) != 0 {
		t.Fatalf("refused response carries %d optimized words", len(ar.OptimizedWords))
	}
	if got := s.obs.optRefused.Value(); got != 1 {
		t.Errorf("server_opt_refused_total = %d, want 1", got)
	}
	if got := s.obs.optApplied.Value(); got != 0 {
		t.Errorf("server_opt_applied_total = %d, want 0", got)
	}
}

func TestAssembleOptimizeOffByDefault(t *testing.T) {
	_, base := startTestServer(t, Config{})
	var ar AssembleResponse
	decodeInto(t, postJSON(t, base+"/v1/assemble", AssembleRequest{Src: sloppySrc}), &ar)
	if ar.Opt != nil || len(ar.OptimizedWords) != 0 {
		t.Fatalf("optimizer output present without opt-in: %+v", ar)
	}
}

// TestHTTPCorpusDifferential is the serving-path leg of the optimizer's
// differential proof: every farmtest program is assembled with
// optimize=true, and wherever the recompiler applied, the original source
// and the rewritten word image are both executed through /v1/run — final
// registers and sys output must match exactly.
func TestHTTPCorpusDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is not a -short test")
	}
	_, base := startTestServer(t, Config{})

	applied, refused := 0, 0
	for i := 0; i < farmtest.Programs; i++ {
		src := farmtest.Generate(farmtest.Seed(i))

		resp := postJSON(t, base+"/v1/assemble",
			AssembleRequest{Src: src, Optimize: true, Ways: farmtest.Ways})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("program %d: assemble status %d", i, resp.StatusCode)
		}
		var ar AssembleResponse
		decodeInto(t, resp, &ar)
		if ar.Opt == nil {
			t.Fatalf("program %d: no opt report", i)
		}
		if !ar.Opt.Applied {
			refused++
			if len(ar.OptimizedWords) != 0 {
				t.Fatalf("program %d: refused but carries optimized words", i)
			}
			continue
		}
		applied++
		if len(ar.OptimizedWords) > len(ar.Words) {
			t.Fatalf("program %d: optimized image grew: %d -> %d words",
				i, len(ar.Words), len(ar.OptimizedWords))
		}

		var orig, rec RunResult
		decodeInto(t, postJSON(t, base+"/v1/run",
			RunRequest{Src: src, Ways: farmtest.Ways, MaxSteps: farmtest.Budget}), &orig)
		decodeInto(t, postJSON(t, base+"/v1/run",
			RunRequest{Words: ar.OptimizedWords, Ways: farmtest.Ways, MaxSteps: farmtest.Budget}), &rec)
		if orig.Error != "" || rec.Error != "" {
			t.Fatalf("program %d: run errors: original=%q optimized=%q", i, orig.Error, rec.Error)
		}
		if orig.Regs != rec.Regs {
			t.Fatalf("program %d: registers diverged over HTTP:\n%v\n%v", i, orig.Regs, rec.Regs)
		}
		if orig.Output != rec.Output {
			t.Fatalf("program %d: output diverged over HTTP:\n%q\n%q", i, orig.Output, rec.Output)
		}
		if rec.Insts > orig.Insts {
			t.Fatalf("program %d: optimized program retired more instructions: %d > %d",
				i, rec.Insts, orig.Insts)
		}
	}
	if applied == 0 {
		t.Fatal("optimizer applied to no corpus program over HTTP: differential is vacuous")
	}
	t.Logf("HTTP corpus: %d applied, %d refused", applied, refused)
}
