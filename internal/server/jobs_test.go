package server

// Tests of the async job subsystem's HTTP face: submission/status/cancel
// wire semantics, the NDJSON lifecycle stream with since-replay, the
// durable store across server instances, and the async differential proof —
// a job's result must be byte-identical to a synchronous /v1/run of the
// same program, with optimize-at-first-admission enabled, over a corpus
// subset. The SIGKILL crash-resume path is exercised end-to-end against
// real processes in the repository root's tools_test.go.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tangled/internal/farm/farmtest"
	"tangled/internal/jobs"
	"tangled/internal/obs"
	"tangled/internal/qasm"
)

// jsonBody marshals v into a reader for httptest requests.
func jsonBody(t *testing.T, v interface{}) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// getJSON GETs url and decodes the body into v, returning the status code.
func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitJobHTTP polls the status endpoint until the job is terminal.
func waitJobHTTP(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status poll for %s: HTTP %d", id, code)
		}
		if jobs.State(st.State).Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func TestJobSubmitAndCompleteOverHTTP(t *testing.T) {
	_, base := startTestServer(t, Config{JobsEphemeral: true})
	src := farmtest.Generate(farmtest.Seed(3))
	want, err := qasm.RunFunctional(src, farmtest.Ways)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, base+"/v1/jobs", JobRequest{
		RunRequest: RunRequest{ID: "j1", Src: src, Ways: farmtest.Ways},
		Tenant:     "acme",
		Priority:   3,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "j1" {
		t.Fatalf("X-Request-ID %q", got)
	}
	var st JobStatus
	decodeInto(t, resp, &st)
	if st.ID != "j1" || st.Tenant != "acme" || st.Priority != 3 {
		t.Fatalf("accepted record %+v", st)
	}

	fin := waitJobHTTP(t, base, "j1")
	if fin.State != string(jobs.StateCompleted) {
		t.Fatalf("job ended %s (%s)", fin.State, fin.Reason)
	}
	if fin.Result == nil {
		t.Fatal("completed job has no result")
	}
	if fin.Result.Regs != want.Regs || fin.Result.Output != want.Output || fin.Result.Insts != want.Insts {
		t.Fatalf("async result diverged from direct: %+v vs regs=%v output=%q insts=%d",
			fin.Result, want.Regs, want.Output, want.Insts)
	}
	if fin.Started == nil || fin.Finished == nil {
		t.Fatalf("terminal job missing timestamps: %+v", fin)
	}
}

func TestJobSubmitIdempotent(t *testing.T) {
	_, base := startTestServer(t, Config{JobsEphemeral: true})
	src := farmtest.Generate(farmtest.Seed(4))
	req := JobRequest{RunRequest: RunRequest{ID: "dup", Src: src, Ways: farmtest.Ways}}
	if resp := postJSON(t, base+"/v1/jobs", req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	waitJobHTTP(t, base, "dup")
	// Resubmitting the same ID returns the existing (already terminal)
	// record with 200, not a new execution.
	resp := postJSON(t, base+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d, want 200", resp.StatusCode)
	}
	var st JobStatus
	decodeInto(t, resp, &st)
	if st.State != string(jobs.StateCompleted) {
		t.Fatalf("resubmit returned state %s", st.State)
	}
}

func TestJobValidationAndRouting(t *testing.T) {
	_, base := startTestServer(t, Config{JobsEphemeral: true})

	// A malformed program is refused at submission, not turned into a job.
	resp := postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: RunRequest{ID: "bad", Src: "not an opcode\n"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad program: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	if code := getJSON(t, base+"/v1/jobs/bad", nil); code != http.StatusNotFound {
		t.Fatalf("refused submission created a job: %d", code)
	}
	if code := getJSON(t, base+"/v1/jobs/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}
	// Unknown method on the ID route.
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/jobs/ghost", nil)
	pr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT on job: %d, want 405", pr.StatusCode)
	}
}

func TestJobEndpointsAbsentWithoutSubsystem(t *testing.T) {
	_, base := startTestServer(t, Config{})
	resp := postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: RunRequest{Src: spinSrc}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("jobs route on a sync-only server: %d, want 404", resp.StatusCode)
	}
}

func TestJobCancelQueuedAndQueueFull(t *testing.T) {
	// One job worker, queue bound 2: a long-running job occupies the worker,
	// a queued victim can be canceled, and a third submission is refused.
	_, base := startTestServer(t, Config{JobsEphemeral: true, JobWorkers: 1, JobQueueLimit: 2})
	spin := RunRequest{Src: spinSrc, TimeoutMs: 30_000}

	spin.ID = "holder"
	postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: spin}).Body.Close()
	spin.ID = "victim"
	postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: spin}).Body.Close()

	spin.ID = "overflow"
	resp := postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: spin})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()

	// Cancel the queued victim: immediate terminal state.
	dreq, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/victim", nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	decodeInto(t, dresp, &st)
	if st.State != string(jobs.StateCanceled) {
		t.Fatalf("canceled queued job state %s", st.State)
	}

	// Cancel the running holder: ctx cancel, terminal once exec unwinds.
	dreq, _ = http.NewRequest(http.MethodDelete, base+"/v1/jobs/holder", nil)
	dresp, err = http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	fin := waitJobHTTP(t, base, "holder")
	if fin.State != string(jobs.StateCanceled) {
		t.Fatalf("canceled running job ended %s (%s)", fin.State, fin.Reason)
	}
}

func TestJobSubmitWhileDrainingIs503(t *testing.T) {
	s, err := New(Config{JobsEphemeral: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs",
		jsonBody(t, JobRequest{RunRequest: RunRequest{Src: spinSrc}}))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", rec.Code)
	}

	// Healthz reports the drain state and the (empty) job queue.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", rec.Code)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Draining || h.Status != "draining" {
		t.Fatalf("healthz body %+v", h)
	}
}

func TestHealthzReportsJobDepths(t *testing.T) {
	s, base := startTestServer(t, Config{JobsEphemeral: true, JobWorkers: 1})
	spin := RunRequest{Src: spinSrc, TimeoutMs: 30_000}
	spin.ID = "h1"
	postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: spin}).Body.Close()
	spin.ID = "h2"
	postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: spin}).Body.Close()

	// One running, one queued — poll briefly (dispatch is asynchronous).
	deadline := time.Now().Add(5 * time.Second)
	for {
		var h Health
		getJSON(t, base+"/v1/healthz", &h)
		if h.JobsRunning == 1 && h.JobsQueued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never showed 1 running + 1 queued: %+v", h)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close()
}

func TestBuildinfoCapabilities(t *testing.T) {
	_, base := startTestServer(t, Config{JobsEphemeral: true, OptAdmission: true})
	var bi BuildInfo
	getJSON(t, base+"/v1/buildinfo", &bi)
	caps := map[string]bool{}
	for _, c := range bi.Capabilities {
		caps[c] = true
	}
	for _, want := range []string{"jobs", "events", "memo", "opt", "opt-admission", "backend:re"} {
		if !caps[want] {
			t.Fatalf("capabilities %v missing %q", bi.Capabilities, want)
		}
	}
	if bi.EventsSchema != jobs.EventsSchema || bi.EventsVer != jobs.EventsSchemaVersion {
		t.Fatalf("events schema %s/%d", bi.EventsSchema, bi.EventsVer)
	}

	_, syncBase := startTestServer(t, Config{})
	var syncBi BuildInfo
	getJSON(t, syncBase+"/v1/buildinfo", &syncBi)
	for _, c := range syncBi.Capabilities {
		if c == "jobs" || c == "events" {
			t.Fatalf("sync-only server advertises %q", c)
		}
	}
}

func TestEventsStreamOverHTTP(t *testing.T) {
	_, base := startTestServer(t, Config{JobsEphemeral: true})
	src := farmtest.Generate(farmtest.Seed(5))

	// Open the stream first, then submit: the live channel must carry the
	// full lifecycle in order after the versioned header.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr EventsHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != jobs.EventsSchema || hdr.Version != jobs.EventsSchemaVersion {
		t.Fatalf("stream header %+v", hdr)
	}

	postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: RunRequest{ID: "ev", Src: src, Ways: farmtest.Ways}}).Body.Close()
	want := []string{jobs.EventSubmitted, jobs.EventStarted, jobs.EventCompleted}
	var got []jobs.Event
	for len(got) < len(want) && sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	for i, ev := range got {
		if ev.Type != want[i] || ev.Job != "ev" {
			t.Fatalf("event %d = %+v, want type %s for job ev", i, ev, want[i])
		}
		if i > 0 && ev.Seq <= got[i-1].Seq {
			t.Fatalf("event seq not increasing: %d then %d", got[i-1].Seq, ev.Seq)
		}
	}
}

func TestEventsSinceReplayOverHTTP(t *testing.T) {
	_, base := startTestServer(t, Config{JobsEphemeral: true})
	src := farmtest.Generate(farmtest.Seed(6))
	postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: RunRequest{ID: "rp", Src: src, Ways: farmtest.Ways}}).Body.Close()
	waitJobHTTP(t, base, "rp")

	// follow=false: the replay is returned whole and the stream ends.
	readEvents := func(url string) []jobs.Event {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		if !sc.Scan() {
			t.Fatal("no header")
		}
		var evs []jobs.Event
		for sc.Scan() {
			var ev jobs.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatal(err)
			}
			evs = append(evs, ev)
		}
		return evs
	}
	all := readEvents(base + "/v1/events?follow=false")
	if len(all) != 3 {
		t.Fatalf("replayed %d events, want 3: %+v", len(all), all)
	}
	// Resume past the first event: only the later two come back.
	rest := readEvents(fmt.Sprintf("%s/v1/events?follow=false&since=%d", base, all[0].Seq))
	if len(rest) != 2 || rest[0].Seq != all[1].Seq {
		t.Fatalf("since-replay returned %+v", rest)
	}
	// Bad query parameters are 400s.
	if code := getJSON(t, base+"/v1/events?since=nope", nil); code != http.StatusBadRequest {
		t.Fatalf("bad since: %d", code)
	}
	if code := getJSON(t, base+"/v1/events?follow=maybe", nil); code != http.StatusBadRequest {
		t.Fatalf("bad follow: %d", code)
	}
}

func TestJobStorePersistsAcrossServers(t *testing.T) {
	dir := t.TempDir()
	s1, base1 := startTestServer(t, Config{JobsDir: dir})
	src := farmtest.Generate(farmtest.Seed(7))
	postJSON(t, base1+"/v1/jobs", JobRequest{RunRequest: RunRequest{ID: "persist", Src: src, Ways: farmtest.Ways}}).Body.Close()
	first := waitJobHTTP(t, base1, "persist")
	if first.State != string(jobs.StateCompleted) {
		t.Fatalf("job ended %s", first.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	_, base2 := startTestServer(t, Config{JobsDir: dir})
	var again JobStatus
	if code := getJSON(t, base2+"/v1/jobs/persist", &again); code != http.StatusOK {
		t.Fatalf("restarted server: HTTP %d", code)
	}
	if again.State != string(jobs.StateCompleted) || again.Result == nil {
		t.Fatalf("restored job %+v", again)
	}
	if again.Result.Regs != first.Result.Regs || again.Result.Output != first.Result.Output ||
		again.Result.Insts != first.Result.Insts {
		t.Fatalf("result changed across restart: %+v vs %+v", again.Result, first.Result)
	}
}

// TestDifferentialAsyncVsSync is the async acceptance proof: over a corpus
// subset, a job's result — executed through admission, the optimizing
// recompiler (OptAdmission on), the memo cache and the coalescer — must be
// byte-identical to the direct in-process execution of the same program.
func TestDifferentialAsyncVsSync(t *testing.T) {
	const n = 32
	reg := obs.NewRegistry()
	s, base := startTestServer(t, Config{JobsEphemeral: true, OptAdmission: true, Registry: reg})

	srcs := make([]string, n)
	for i := range srcs {
		srcs[i] = farmtest.Generate(farmtest.Seed(i))
	}
	direct, _, err := qasm.RunFunctionalBatch(context.Background(), srcs, farmtest.Ways, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range srcs {
		id := fmt.Sprintf("diff-%d", i)
		resp := postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: RunRequest{ID: id, Src: src, Ways: farmtest.Ways}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	for i := range srcs {
		id := fmt.Sprintf("diff-%d", i)
		fin := waitJobHTTP(t, base, id)
		if fin.State != string(jobs.StateCompleted) {
			t.Fatalf("job %d ended %s: %s", i, fin.State, fin.Reason)
		}
		// Observable state must match direct execution exactly. Insts may
		// legitimately shrink when the admission-time optimizer applied —
		// that delta is the optimizer's proven-equivalent rewrite, not a
		// serving-layer divergence.
		d := direct[i]
		if fin.Result.Regs != d.Regs || fin.Result.Output != d.Output {
			t.Fatalf("program %d diverged async vs direct:\nasync:  regs=%v output=%q\ndirect: regs=%v output=%q\n%s",
				i, fin.Result.Regs, fin.Result.Output, d.Regs, d.Output, srcs[i])
		}
		if fin.Result.Insts > d.Insts {
			t.Fatalf("program %d retired more instructions async (%d) than direct (%d)",
				i, fin.Result.Insts, d.Insts)
		}
		// The acceptance criterion proper: a synchronous /v1/run of the same
		// program returns the byte-identical document (served from the memo
		// entry the job stored under the original program's key).
		var sync RunResult
		decodeInto(t, postJSON(t, base+"/v1/run", RunRequest{ID: id + "-sync", Src: srcs[i], Ways: farmtest.Ways}), &sync)
		if sync.Regs != fin.Result.Regs || sync.Output != fin.Result.Output || sync.Insts != fin.Result.Insts {
			t.Fatalf("program %d: sync run diverged from its async job: %+v vs %+v", i, sync, fin.Result)
		}
	}
	// The corpus is peephole-rich enough that the admission-time optimizer
	// must have applied at least once; the counter proves the path ran.
	if got := s.obs.optAdmission.Value(); got == 0 {
		t.Error("server_opt_admission_applied_total = 0 over the corpus subset")
	}
}

// TestOptAdmissionMemoKeyIsOriginalProgram proves the memo-key discipline:
// after an async job executes a rewritten image, a synchronous /v1/run of
// the *original* program must hit the cache (the entry is stored under the
// original program's content address, not the shrunk image's).
func TestOptAdmissionMemoKeyIsOriginalProgram(t *testing.T) {
	_, base := startTestServer(t, Config{JobsEphemeral: true, OptAdmission: true})

	// sloppySrc is rewritten by the optimizer (dead store), so the job
	// executes a different image than the submitted program.
	resp := postJSON(t, base+"/v1/jobs", JobRequest{RunRequest: RunRequest{ID: "mk", Src: sloppySrc}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	resp.Body.Close()
	fin := waitJobHTTP(t, base, "mk")
	if fin.State != string(jobs.StateCompleted) {
		t.Fatalf("job ended %s: %s", fin.State, fin.Reason)
	}

	var sync RunResult
	decodeInto(t, postJSON(t, base+"/v1/run", RunRequest{ID: "mk-sync", Src: sloppySrc}), &sync)
	if !sync.Cached {
		t.Fatal("sync run of the original program missed the memo cache")
	}
	if sync.Regs != fin.Result.Regs || sync.Output != fin.Result.Output || sync.Insts != fin.Result.Insts {
		t.Fatalf("cached sync result diverged from the async job: %+v vs %+v", sync, fin.Result)
	}
}
