package server

// Endpoint tests for the serving layer. Every test that needs a real
// listener goes through startTestServer → StartLocal, which binds
// 127.0.0.1:0 — the one pattern this repository allows for server-shaped
// tests, so parallel packages never collide on a port. Handler-level tests
// (no network) drive the mux directly with httptest.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tangled/internal/farm/farmtest"
	"tangled/internal/obs"
	"tangled/internal/qasm"
)

// spinSrc never halts on its own; paired with TimeoutMs or a cancelled
// context it exercises the deadline/disconnect paths.
const spinSrc = "lex $1,1\nL:\nbrt $1,L\n"

// startTestServer is the shared listener helper: a server on 127.0.0.1:0,
// shut down with the test. Tests that need special admission/batching
// behavior pass a non-zero Config.
func startTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.StartLocal()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, base
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

func TestRunFunctionalMatchesDirect(t *testing.T) {
	_, base := startTestServer(t, Config{})
	src := farmtest.Generate(farmtest.Seed(0))
	want, err := qasm.RunFunctional(src, farmtest.Ways)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, base+"/v1/run", RunRequest{ID: "r0", Src: src, Ways: farmtest.Ways})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "r0" {
		t.Fatalf("X-Request-ID %q, want r0", got)
	}
	var res RunResult
	decodeInto(t, resp, &res)
	if res.Error != "" {
		t.Fatalf("unexpected error: %s", res.Error)
	}
	if res.Regs != want.Regs || res.Output != want.Output || res.Insts != want.Insts {
		t.Fatalf("HTTP result diverged from direct: %+v vs regs=%v output=%q insts=%d",
			res, want.Regs, want.Output, want.Insts)
	}
}

func TestRunPipelinedReportsCycles(t *testing.T) {
	_, base := startTestServer(t, Config{})
	resp := postJSON(t, base+"/v1/run", RunRequest{
		Src: farmtest.Generate(farmtest.Seed(1)), Mode: "pipelined", Stages: 4, Ways: farmtest.Ways,
	})
	var res RunResult
	decodeInto(t, resp, &res)
	if res.Error != "" || res.Cycles == 0 {
		t.Fatalf("pipelined run: error=%q cycles=%d", res.Error, res.Cycles)
	}
}

func TestRunWordsEqualsSrc(t *testing.T) {
	_, base := startTestServer(t, Config{})
	src := farmtest.Generate(farmtest.Seed(2))

	var asmRes AssembleResponse
	decodeInto(t, postJSON(t, base+"/v1/assemble", AssembleRequest{Src: src}), &asmRes)
	if len(asmRes.Words) == 0 {
		t.Fatal("assemble returned no words")
	}

	var bySrc, byWords RunResult
	decodeInto(t, postJSON(t, base+"/v1/run", RunRequest{Src: src, Ways: farmtest.Ways}), &bySrc)
	decodeInto(t, postJSON(t, base+"/v1/run", RunRequest{Words: asmRes.Words, Ways: farmtest.Ways}), &byWords)
	if bySrc.Regs != byWords.Regs || bySrc.Output != byWords.Output || bySrc.Insts != byWords.Insts {
		t.Fatalf("word-image submission diverged from source submission:\n%+v\n%+v", bySrc, byWords)
	}
}

func TestAssemblyError400WithLineInfo(t *testing.T) {
	_, base := startTestServer(t, Config{})
	for _, route := range []string{"/v1/run", "/v1/assemble"} {
		var body interface{} = RunRequest{Src: "lex $1,7\nbogus $2\n"}
		if route == "/v1/assemble" {
			body = AssembleRequest{Src: "lex $1,7\nbogus $2\n"}
		}
		resp := postJSON(t, base+route, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", route, resp.StatusCode)
		}
		var er ErrorResponse
		decodeInto(t, resp, &er)
		if len(er.Lines) == 0 || er.Lines[0].Line != 2 {
			t.Fatalf("%s: diagnostics %+v, want line 2", route, er.Lines)
		}
	}
}

func TestValidation400(t *testing.T) {
	_, base := startTestServer(t, Config{})
	bad := []RunRequest{
		{},                                      // neither src nor words
		{Src: "lex $1,1\n", Words: []uint16{1}}, // both
		{Src: "lex $1,1\n", Mode: "quantum"},    // unknown mode
		{Src: "lex $1,1\n", Stages: 4},          // stages without pipelined
		{Src: "lex $1,1\n", Ways: 99},           // ways out of range
	}
	for i, req := range bad {
		resp := postJSON(t, base+"/v1/run", req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}

func TestBatchStreamsNDJSONInOrder(t *testing.T) {
	_, base := startTestServer(t, Config{BatchMax: 4}) // force chunking
	const n = 10
	req := BatchRequest{ID: "b1", Programs: make([]RunRequest, n)}
	for i := range req.Programs {
		req.Programs[i] = RunRequest{Src: farmtest.Generate(farmtest.Seed(i)), Ways: farmtest.Ways}
	}
	resp := postJSON(t, base+"/v1/batch", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr ResultsHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != ResultsSchema || hdr.Version != ResultsSchemaVersion || hdr.Count != n {
		t.Fatalf("header %+v", hdr)
	}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended at result %d", i)
		}
		var r RunResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if r.Index != i || r.ID != fmt.Sprintf("b1/%d", i) {
			t.Fatalf("result %d out of order: index=%d id=%q", i, r.Index, r.ID)
		}
		if r.Error != "" {
			t.Fatalf("result %d failed: %s", i, r.Error)
		}
	}
	if sc.Scan() {
		t.Fatalf("trailing data after %d results: %s", n, sc.Text())
	}
}

func TestIdempotentReplay(t *testing.T) {
	s, base := startTestServer(t, Config{})
	req := RunRequest{ID: "idem-1", Src: farmtest.Generate(farmtest.Seed(3)), Ways: farmtest.Ways}

	var first RunResult
	decodeInto(t, postJSON(t, base+"/v1/run", req), &first)

	resp := postJSON(t, base+"/v1/run", req)
	if resp.Header.Get("X-Idempotent-Replay") != "true" {
		t.Fatal("second submission was not replayed from the cache")
	}
	var second RunResult
	decodeInto(t, resp, &second)
	if first != second {
		t.Fatalf("replay diverged: %+v vs %+v", first, second)
	}
	// The replay must not have executed anything new.
	if done := s.Engine().Totals().Jobs; done != 1 {
		t.Fatalf("engine ran %d jobs, want 1", done)
	}
}

func TestQueueFull429(t *testing.T) {
	_, base := startTestServer(t, Config{QueueLimit: 2})
	req := BatchRequest{Programs: make([]RunRequest, 3)}
	for i := range req.Programs {
		req.Programs[i] = RunRequest{Src: "lex $1,1\n"}
	}
	resp := postJSON(t, base+"/v1/batch", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er ErrorResponse
	decodeInto(t, resp, &er)
	if er.RetryAfterMs <= 0 {
		t.Fatalf("429 body %+v lacks retry_after_ms", er)
	}
}

func TestDeadline504(t *testing.T) {
	_, base := startTestServer(t, Config{})
	resp := postJSON(t, base+"/v1/run", RunRequest{Src: spinSrc, TimeoutMs: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var res RunResult
	decodeInto(t, resp, &res)
	if res.Code != http.StatusGatewayTimeout || res.Error == "" {
		t.Fatalf("result %+v, want code 504 with error", res)
	}
}

func TestDeadlineMidBatch(t *testing.T) {
	_, base := startTestServer(t, Config{})
	fine := farmtest.Generate(farmtest.Seed(4))
	req := BatchRequest{ID: "mb", Programs: []RunRequest{
		{Src: fine, Ways: farmtest.Ways},
		{Src: spinSrc, TimeoutMs: 30},
		{Src: fine, Ways: farmtest.Ways},
	}}
	resp := postJSON(t, base+"/v1/batch", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: a per-program deadline must not fail the batch", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	sc.Scan() // header
	var results []RunResult
	for sc.Scan() {
		var r RunResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	if results[0].Error != "" || results[2].Error != "" {
		t.Fatalf("healthy programs failed: %q / %q", results[0].Error, results[2].Error)
	}
	if results[1].Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline program code %d (%q), want 504", results[1].Code, results[1].Error)
	}
}

func TestClientDisconnect499(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(RunRequest{Src: spinSrc})
	req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	time.AfterFunc(50*time.Millisecond, cancel)
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want 499", rec.Code)
	}
	var res RunResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Code != StatusClientClosedRequest {
		t.Fatalf("record code %d, want 499", res.Code)
	}
}

func TestDrainFlips503(t *testing.T) {
	s, base := startTestServer(t, Config{})
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	decodeInto(t, resp, &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("pre-drain healthz: %d %q", resp.StatusCode, h.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The listener is gone; the handler itself must now refuse work and
	// report draining (what a request racing the shutdown would see).
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil || h.Status != "draining" {
		t.Fatalf("draining healthz body %s", rec.Body.Bytes())
	}

	body, _ := json.Marshal(RunRequest{Src: "lex $1,1\n"})
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining run status %d, want 503", rec.Code)
	}
}

func TestTraceRowsCarryRequestID(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(0)
	_, base := startTestServer(t, Config{Registry: reg, Trace: ring})
	resp := postJSON(t, base+"/v1/run", RunRequest{
		ID: "trace-me", Src: farmtest.Generate(farmtest.Seed(5)), Mode: "pipelined", Ways: farmtest.Ways,
	})
	var res RunResult
	decodeInto(t, resp, &res)
	if res.Error != "" {
		t.Fatal(res.Error)
	}
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("pipelined run produced no trace events")
	}
	for _, e := range events {
		if e.Req != "trace-me" {
			t.Fatalf("trace event %+v lacks the request ID", e)
		}
	}
}

func TestHealthzAndBuildinfo(t *testing.T) {
	s, base := startTestServer(t, Config{})
	var res RunResult
	decodeInto(t, postJSON(t, base+"/v1/run", RunRequest{Src: "lex $1,1\nlex $0,0\nsys\n"}), &res)

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	decodeInto(t, resp, &h)
	if h.JobsDone != 1 || h.QueueDepth != 0 || h.Workers != s.Engine().Workers() {
		t.Fatalf("healthz %+v", h)
	}

	resp, err = http.Get(base + "/v1/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	var bi BuildInfo
	decodeInto(t, resp, &bi)
	if bi.ResultsSchema != ResultsSchema || bi.TraceVer != obs.TraceSchemaVersion || bi.MaxSteps == 0 {
		t.Fatalf("buildinfo %+v", bi)
	}
}

func TestRoutingErrors(t *testing.T) {
	_, base := startTestServer(t, Config{})
	resp, err := http.Get(base + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET /v1/run: %d Allow=%q, want 405 POST", resp.StatusCode, resp.Header.Get("Allow"))
	}

	r, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"src":"lex $1,1\n"} trailing`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing data: %d, want 400", r.StatusCode)
	}
}

func TestBodyLimit413(t *testing.T) {
	_, base := startTestServer(t, Config{MaxBodyBytes: 512})
	big := RunRequest{Src: "lex $1,1\n" + strings.Repeat("; padding comment\n", 200)}
	resp := postJSON(t, base+"/v1/run", big)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestCoalescerGroupsSingles(t *testing.T) {
	// A wide window plus concurrent singles must form at least one
	// multi-job farm batch (fewer engine batches than jobs).
	s, _ := startTestServer(t, Config{BatchWindow: 30 * time.Millisecond})
	base := "http://" + s.ln.Addr().String()
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			resp := postJSONErr(base+"/v1/run", RunRequest{
				Src: farmtest.Generate(farmtest.Seed(i)), Ways: farmtest.Ways,
			})
			errs <- resp
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if batches := s.coal.batches.Load(); batches >= n {
		t.Fatalf("%d farm batches for %d singles: coalescer never grouped", batches, n)
	}
}

// postJSONErr is the goroutine-safe flavor (no *testing.T methods off the
// test goroutine).
func postJSONErr(url string, body interface{}) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	var res RunResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return err
	}
	if res.Error != "" {
		return fmt.Errorf("run error: %s", res.Error)
	}
	return nil
}
