package server

// Strict-lint admission tests: a statically broken program must be refused
// with 422 before it consumes a farm slot, the refusal must be counted, and
// the opt-in lint report must ride the /v1/assemble response.

import (
	"net/http"
	"testing"

	"tangled/internal/lint"
	"tangled/internal/obs"
)

// brokenSrc cannot leave its first block and can never halt: two
// error-severity findings (self-loop, no reachable sys).
const brokenSrc = "loop:\tbr loop\n\tlex $0, 0\n\tsys\n"

// cleanSrc halts after printing; lint-clean at every severity.
const cleanSrc = "\tlex $1, 5\n\tlex $0, 1\n\tsys\n\tlex $0, 0\n\tsys\n"

// sloppySrc has a warning-severity finding (dead store) but no errors, so
// strict mode must still run it.
const sloppySrc = "\tlex $1, 5\n\tlex $1, 7\n\tlex $0, 0\n\tsys\n"

func TestStrictLintRejectsBeforeAdmission(t *testing.T) {
	reg := obs.NewRegistry()
	s, base := startTestServer(t, Config{StrictLint: true, Registry: reg})

	resp := postJSON(t, base+"/v1/run", RunRequest{ID: "bad", Src: brokenSrc})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var er ErrorResponse
	decodeInto(t, resp, &er)
	if len(er.Lint) == 0 {
		t.Fatalf("422 body carries no lint findings: %+v", er)
	}
	for _, d := range er.Lint {
		if d.Severity != lint.Error {
			t.Errorf("non-error finding in rejection body: %+v", d)
		}
	}
	// The job must have been refused before admission: nothing queued,
	// nothing executed, and the refusal counted.
	if got := s.jobsDone.Load(); got != 0 {
		t.Errorf("jobsDone = %d after a lint rejection", got)
	}
	if got := s.queue.Load(); got != 0 {
		t.Errorf("queue depth = %d after a lint rejection", got)
	}
	if got := s.obs.lintRejects.Value(); got != 1 {
		t.Errorf("server_lint_rejects_total = %d, want 1", got)
	}
}

func TestStrictLintAllowsCleanAndWarningPrograms(t *testing.T) {
	s, base := startTestServer(t, Config{StrictLint: true})
	for _, src := range []string{cleanSrc, sloppySrc} {
		resp := postJSON(t, base+"/v1/run", RunRequest{Src: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d for runnable program, want 200", resp.StatusCode)
		}
		var res RunResult
		decodeInto(t, resp, &res)
		if res.Error != "" {
			t.Fatalf("run error: %s", res.Error)
		}
	}
	if got := s.jobsDone.Load(); got == 0 {
		t.Error("no jobs executed")
	}
}

func TestStrictLintRejectsBatchMember(t *testing.T) {
	_, base := startTestServer(t, Config{StrictLint: true})
	resp := postJSON(t, base+"/v1/batch", BatchRequest{Programs: []RunRequest{
		{Src: cleanSrc},
		{Src: brokenSrc},
	}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var er ErrorResponse
	decodeInto(t, resp, &er)
	if len(er.Lint) == 0 || er.Error == "" {
		t.Fatalf("batch rejection body: %+v", er)
	}
}

func TestLintOffByDefault(t *testing.T) {
	// Without StrictLint the broken program is admitted and burns its step
	// budget like before — lint is opt-in, not a behavior change.
	_, base := startTestServer(t, Config{MaxSteps: 10_000})
	resp := postJSON(t, base+"/v1/run", RunRequest{Src: brokenSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var res RunResult
	decodeInto(t, resp, &res)
	if res.Error == "" {
		t.Fatal("spin program finished without a budget error")
	}
}

func TestAssembleLintReport(t *testing.T) {
	_, base := startTestServer(t, Config{})

	resp := postJSON(t, base+"/v1/assemble", AssembleRequest{Src: brokenSrc, Lint: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ar AssembleResponse
	decodeInto(t, resp, &ar)
	if ar.Lint == nil || ar.Lint.Errors == 0 {
		t.Fatalf("lint report missing or empty: %+v", ar.Lint)
	}
	found := false
	for _, d := range ar.Lint.Diags {
		if d.Check == lint.CheckSelfLoop {
			found = true
		}
	}
	if !found {
		t.Errorf("no self-loop finding in %+v", ar.Lint.Diags)
	}

	// Without the opt-in the response shape is unchanged.
	resp = postJSON(t, base+"/v1/assemble", AssembleRequest{Src: brokenSrc})
	var plain AssembleResponse
	decodeInto(t, resp, &plain)
	if plain.Lint != nil {
		t.Errorf("lint report present without opt-in")
	}
}

func TestAssembleErrorsCarryColumns(t *testing.T) {
	_, base := startTestServer(t, Config{})
	resp := postJSON(t, base+"/v1/assemble", AssembleRequest{Src: "\tlex $77, 1\n"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var er ErrorResponse
	decodeInto(t, resp, &er)
	if len(er.Lines) == 0 {
		t.Fatalf("no line diagnostics: %+v", er)
	}
	if er.Lines[0].Line != 1 || er.Lines[0].Col == 0 {
		t.Errorf("diagnostic position = %d:%d, want 1:<nonzero>", er.Lines[0].Line, er.Lines[0].Col)
	}
}
