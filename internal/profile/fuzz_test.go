package profile_test

// FuzzProfile feeds arbitrary word images through the static profiler: it
// must never panic, must be deterministic (identical JSON across two
// computations over the same facts), and must stay sound — the dynamic
// entanglement degree a real dense execution reaches can never exceed the
// static bound, not even on garbage programs that fault mid-run.

import (
	"encoding/json"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/lint"
	"tangled/internal/oracle"
	"tangled/internal/profile"
)

func FuzzProfile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x10})                         // lex $0, 16
	f.Add([]byte{0x01, 0x50, 0x02, 0x51, 0x12, 0xE0}) // had-ish then sys-ish
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})             // all ones
	f.Add([]byte{0x01, 0x80, 0x03, 0x02})             // two-word qat form
	f.Fuzz(func(t *testing.T, raw []byte) {
		const ways = 6
		if len(raw) > 1<<12 {
			raw = raw[:1<<12]
		}
		words := make([]uint16, len(raw)/2)
		for i := range words {
			words[i] = uint16(raw[2*i]) | uint16(raw[2*i+1])<<8
		}
		p := &asm.Program{Words: words}
		_, f1 := lint.AnalyzeWithFacts(p, lint.Options{Ways: ways})
		_, f2 := lint.AnalyzeWithFacts(p, lint.Options{Ways: ways})
		p1 := profile.Compute(f1, profile.Options{Ways: ways})
		p2 := profile.Compute(f2, profile.Options{Ways: ways})
		b1, err1 := json.Marshal(p1)
		b2, err2 := json.Marshal(p2)
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal: %v / %v", err1, err2)
		}
		if string(b1) != string(b2) {
			t.Fatalf("nondeterministic profile:\n%s\n%s", b1, b2)
		}
		if p1.DegreeBound > ways || p1.DegreeBound < 0 {
			t.Fatalf("DegreeBound %d out of [0,%d]", p1.DegreeBound, ways)
		}

		// Soundness against a real run, bounded tightly: garbage programs
		// mostly fault or spin, and partial observations must be bounded too.
		dyn, _ := oracle.MaxEntanglementDegree(p, ways, 4096)
		for q, d := range dyn {
			if got := p1.MaxReg(q); d > got {
				t.Fatalf("register @%d dynamic degree %d exceeds static bound %d\nwords=%v",
					q, d, got, words)
			}
		}
	})
}
