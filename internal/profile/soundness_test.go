package profile

// The differential soundness suite: the static degree bound must dominate
// the dynamically observed entanglement degree on every program of the
// shared random corpus, per register and globally. This is the profiler's
// acceptance gate — an unsound bound would let the auto-planner route a
// high-degree program onto a representation that cannot hold it.

import (
	"testing"

	"tangled/internal/asm"
	"tangled/internal/farm/farmtest"
	"tangled/internal/lint"
	"tangled/internal/oracle"
)

func TestDifferentialDegreeSoundness(t *testing.T) {
	for i := 0; i < farmtest.Programs; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("program %d does not assemble: %v", i, err)
		}
		_, f := lint.AnalyzeWithFacts(prog, lint.Options{Ways: farmtest.Ways})
		p := Compute(f, Options{Ways: farmtest.Ways})

		dyn, _ := oracle.MaxEntanglementDegree(prog, farmtest.Ways, farmtest.Budget)
		dynMax := 0
		for q, d := range dyn {
			if d > dynMax {
				dynMax = d
			}
			if got := p.MaxReg(q); d > got {
				t.Fatalf("program %d: register @%d dynamic degree %d exceeds static bound %d\n%s",
					i, q, d, got, src)
			}
		}
		if dynMax > p.DegreeBound {
			t.Fatalf("program %d: dynamic max %d exceeds DegreeBound %d\n%s",
				i, dynMax, p.DegreeBound, src)
		}
	}
}
