package profile

// Unit tests for the static profiler: dependence-set transfer rules,
// CFG joins, re-initialization splits, imprecise-mode widening, channel
// groups, compressibility, and the energy bounds.

import (
	"encoding/json"
	"reflect"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/lint"
)

func profileFor(t *testing.T, src string, ways int) *lint.Profile {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	_, f := lint.AnalyzeWithFacts(p, lint.Options{Ways: ways})
	prof := Compute(f, Options{Ways: ways})
	if f.Profile != prof {
		t.Fatal("Compute did not attach the profile to the facts")
	}
	return prof
}

func TestStraightLineDegrees(t *testing.T) {
	// had 0 and had 1 merged by cnot: degree 2 in @2's chain; @3 re-derived
	// from a single had: degree 1.
	p := profileFor(t, `
	had	@1, 0
	had	@2, 1
	cnot	@2, @1
	had	@3, 2
	not	@3
	lex	$0, 0
	sys
`, 4)
	if p.DegreeBound != 2 {
		t.Fatalf("DegreeBound=%d, want 2", p.DegreeBound)
	}
	if got := p.MaxReg(2); got != 2 {
		t.Fatalf("MaxReg(2)=%d, want 2", got)
	}
	if got := p.MaxReg(1); got != 1 {
		t.Fatalf("MaxReg(1)=%d, want 1", got)
	}
	if got := p.MaxReg(3); got != 1 {
		t.Fatalf("MaxReg(3)=%d, want 1 (not preserves the set)", got)
	}
	if p.RequiredWays != 3 {
		t.Fatalf("RequiredWays=%d, want 3 (had @3,2)", p.RequiredWays)
	}
	// Channels 0 and 1 entangle; channel 2 stays alone; channel 3 unused.
	want := [][]int{{0, 1}}
	if !reflect.DeepEqual(p.Groups, want) {
		t.Fatalf("Groups=%v, want %v", p.Groups, want)
	}
	if p.Imprecise {
		t.Fatal("precise program marked imprecise")
	}
}

func TestReinitSplits(t *testing.T) {
	// After merging 0,1 into @1, zero @1 resets its set; the later degree
	// never exceeds 1, but the bound keeps the historical max.
	p := profileFor(t, `
	had	@1, 0
	had	@2, 1
	ccnot	@1, @2, @1
	zero	@1
	had	@1, 2
	lex	$0, 0
	sys
`, 4)
	if got := p.MaxReg(1); got != 2 {
		t.Fatalf("MaxReg(1)=%d, want 2 (historical max before re-init)", got)
	}
	// The union of channels @1 ever depended on includes all three.
	var ch []int
	for _, r := range p.Regs {
		if r.Reg == 1 {
			ch = r.Channels
		}
	}
	if !reflect.DeepEqual(ch, []int{0, 1, 2}) {
		t.Fatalf("channels(@1)=%v, want [0 1 2]", ch)
	}
}

func TestJoinAtMerge(t *testing.T) {
	// Two branches give @1 dependence {0} or {1}; after the merge the join
	// is {0,1} even though neither path alone entangles them — the bound is
	// path-insensitive by design.
	p := profileFor(t, `
	brt	$1, alt
	had	@1, 0
	jump	out
alt:	had	@1, 1
out:	cnot	@2, @1
	lex	$0, 0
	sys
`, 4)
	if got := p.MaxReg(2); got != 2 {
		t.Fatalf("MaxReg(2)=%d, want 2 (join of {0} and {1})", got)
	}
}

func TestSwapExchanges(t *testing.T) {
	p := profileFor(t, `
	had	@1, 0
	had	@2, 1
	cnot	@2, @1
	swap	@1, @2
	zero	@2
	cnot	@3, @1
	lex	$0, 0
	sys
`, 4)
	// After swap, @1 carries the merged {0,1} set; @2 the single {0} then
	// zeroed; @3 inherits the merged set via cnot.
	if got := p.MaxReg(3); got != 2 {
		t.Fatalf("MaxReg(3)=%d, want 2 (swap moved merged set into @1)", got)
	}
}

func TestImpreciseWidens(t *testing.T) {
	p := profileFor(t, `
	lex	$1, 2
	lex	$2, 3
	add	$1, $2
	jumpr	$1
L:	had	@1, 0
	lex	$0, 0
	sys
`, 6)
	if !p.Imprecise {
		t.Skip("program unexpectedly resolved precisely")
	}
	if p.DegreeBound != 6 {
		t.Fatalf("DegreeBound=%d, want ways=6 under imprecision", p.DegreeBound)
	}
	if got := p.MaxReg(1); got != 6 {
		t.Fatalf("MaxReg(1)=%d, want 6 (widened)", got)
	}
}

func TestCompressibilityAndCosts(t *testing.T) {
	// All writes derivable from the lattice: compressibility 1.
	p := profileFor(t, `
	zero	@1
	one	@2
	had	@3, 1
	xor	@4, @1, @2
	lex	$0, 0
	sys
`, 4)
	if p.QatWrites != 4 || p.StructuredWrites != 4 {
		t.Fatalf("writes=%d structured=%d, want 4/4", p.QatWrites, p.StructuredWrites)
	}
	if p.Compressibility != 1 {
		t.Fatalf("Compressibility=%v, want 1", p.Compressibility)
	}
	if p.SwitchedBound == 0 {
		t.Fatal("SwitchedBound=0 despite Qat writes")
	}
	if p.QatOps != 4 || p.Insts != 6 {
		t.Fatalf("QatOps=%d Insts=%d, want 4/6", p.QatOps, p.Insts)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := profileFor(t, `
	had	@1, 0
	cnot	@2, @1
	lex	$0, 0
	sys
`, 4)
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back lint.Profile
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.DegreeBound != p.DegreeBound || back.Ways != p.Ways {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, p)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
	had	@1, 0
	had	@2, 1
	had	@3, 2
	ccnot	@4, @1, @2
	cswap	@3, @4, @1
	or	@5, @3, @4
	lex	$0, 0
	sys
`
	a := profileFor(t, src, 6)
	b := profileFor(t, src, 6)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("profiles differ across runs:\n%s\n%s", ja, jb)
	}
}
