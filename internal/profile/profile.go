// Package profile is the static entanglement and cost profiler: an abstract
// interpretation over the lint CFG (lint.AnalyzeWithFacts) that computes,
// per program, a sound upper bound on the entanglement degree every Qat
// register can reach, a run-length-compressibility estimate from the pbit
// state lattice shared with the optimizer (opt.QState), and static
// switched/erased-bit energy bounds via energy.StaticCost.
//
// The degree analysis tracks, for each Qat register, the set of channel
// bits its value can depend on — a bitmask over the 2^ways solution
// channels' index bits. The loader zeroes the register file, so every set
// starts empty; `had k` creates dependence {k}; the binary gates union
// their operands' sets; `zero`/`one` re-initialization splits a register
// back to the empty set; CFG merge points join by set union; and an
// unresolved indirect jump (lint's imprecise mode) widens everything to the
// full width, because control may enter any block — even mid-block — with
// arbitrary register state. The bound is sound: the dynamically observed
// degree (the number of channel bits a register's dense vector actually
// varies over, see oracle.MaxEntanglementDegree) never exceeds it — the
// differential suite proves this over the whole farmtest corpus.
//
// The profile is attached to the originating lint.Facts as Facts.Profile
// and drives the backend auto-planner (internal/backend): degree and
// compressibility decide dense vs RE execution before a machine is built.
package profile

import (
	"math/bits"

	"tangled/internal/energy"
	"tangled/internal/isa"
	"tangled/internal/lint"
	"tangled/internal/opt"
	"tangled/internal/qat"
)

// Options parameterizes a profile computation.
type Options struct {
	// Ways is the execution width the profile assumes; 0 means the width the
	// facts were analyzed at (Facts.Ways). It may exceed Facts.Ways: lint
	// clamps its cost model to dense hardware, but the RE backend executes
	// up to qat.MaxREWays, and the planner profiles at the requested width.
	Ways int
	// ConstantRegs assumes the Section 5 constant-register variant: the
	// entry state seeds @1 = one and @(2+k) = had k instead of all-zero.
	ConstantRegs bool
}

// depset is the channel-dependence set of one register: bit k set means the
// register's value may depend on channel index bit k. qat.MaxREWays <= 32.
type depset = uint32

// Compute derives the static profile from f and attaches it as f.Profile.
// It never fails: an empty or imprecise program yields a conservative
// profile (degree widened to the full width).
func Compute(f *lint.Facts, opts Options) *lint.Profile {
	ways := opts.Ways
	if ways <= 0 {
		ways = f.Ways
	}
	if ways > qat.MaxREWays {
		ways = qat.MaxREWays
	}
	p := &lint.Profile{Ways: ways, Imprecise: f.Imprecise}
	top := depset(1)<<uint(ways) - 1

	c := &computer{f: f, opts: opts, ways: ways, top: top, p: p}
	for k := range c.uf {
		c.uf[k] = k
	}
	c.countOps()
	if f.Imprecise {
		c.widenAll()
	} else {
		c.fixpoint()
	}
	c.walkBlocks()
	c.finish()
	f.Profile = p
	return p
}

type computer struct {
	f    *lint.Facts
	opts Options
	ways int
	top  depset
	p    *lint.Profile

	// in holds the per-block entry dependence states once fixpoint runs.
	in [][isa.NumQRegs]depset
	// regMax/regunion accumulate the per-register degree bound and the union
	// of channels it ever depends on.
	regMax   [isa.NumQRegs]int
	regUnion [isa.NumQRegs]depset
	// uf is the union-find parent array over channel bits.
	uf [qat.MaxREWays]int
	// touched marks registers referenced by any reachable Qat instruction.
	touched [isa.NumQRegs]bool
}

// countOps tallies reachable instructions and marks Qat-touched registers.
func (c *computer) countOps() {
	for i := range c.f.Insts {
		fi := &c.f.Insts[i]
		if !fi.Reachable {
			continue
		}
		c.p.Insts++
		if !fi.Inst.Op.IsQat() {
			continue
		}
		c.p.QatOps++
		in := fi.Inst
		switch in.Op {
		case isa.OpQZero, isa.OpQOne, isa.OpQNot:
			c.touch(in.QA)
		case isa.OpQHad:
			c.touch(in.QA)
			if k := int(in.K) + 1; k <= c.ways && k > c.p.RequiredWays {
				c.p.RequiredWays = k
			}
		case isa.OpQAnd, isa.OpQOr, isa.OpQXor, isa.OpQCcnot, isa.OpQCswap:
			c.touch(in.QA, in.QB, in.QC)
		case isa.OpQCnot, isa.OpQSwap:
			c.touch(in.QA, in.QB)
		case isa.OpQMeas, isa.OpQNext, isa.OpQPop:
			c.touch(in.QA)
		}
	}
}

func (c *computer) touch(qs ...uint8) {
	for _, q := range qs {
		c.touched[q] = true
	}
}

// entrySeed is the loader's state: all-zero registers (empty sets), or the
// constant-register variant's had seeds.
func (c *computer) entrySeed() [isa.NumQRegs]depset {
	var s [isa.NumQRegs]depset
	if c.opts.ConstantRegs {
		for k := 0; k < c.ways && 2+k < isa.NumQRegs; k++ {
			s[2+k] = 1 << uint(k)
		}
	}
	return s
}

// entryBlock locates the block executing first (contains address 0), -1
// when address 0 decodes to nothing.
func (c *computer) entryBlock() int {
	i, ok := c.f.ByAddr[0]
	if !ok {
		return -1
	}
	return c.f.Insts[i].Block
}

// fixpoint runs the forward dataflow to a fixed point: block entry states
// join predecessors by union, transfer walks each block, and the finite
// union lattice guarantees termination.
func (c *computer) fixpoint() {
	n := len(c.f.Blocks)
	c.in = make([][isa.NumQRegs]depset, n)
	entry := c.entryBlock()
	for b := 0; b < n; b++ {
		if b == entry {
			c.in[b] = c.entrySeed()
		} else if len(c.f.Blocks[b].Preds) == 0 {
			// A reachable block no edge enters (defensive: precise graphs
			// reach every non-entry block through an edge): assume the worst.
			for q := range c.in[b] {
				c.in[b][q] = c.top
			}
		}
	}
	work := make([]int, 0, n)
	queued := make([]bool, n)
	for b := 0; b < n; b++ {
		work = append(work, b)
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := c.in[b]
		for _, ii := range c.f.Blocks[b].Insts {
			c.transfer(&out, c.f.Insts[ii].Inst)
		}
		for _, s := range c.f.Blocks[b].Succs {
			changed := false
			for q := range out {
				if c.in[s][q]|out[q] != c.in[s][q] {
					c.in[s][q] |= out[q]
					changed = true
				}
			}
			if changed && !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
}

// transfer applies one instruction's dependence-set semantics in place.
func (c *computer) transfer(st *[isa.NumQRegs]depset, in isa.Inst) {
	a, b, cc := in.QA, in.QB, in.QC
	switch in.Op {
	case isa.OpQZero, isa.OpQOne:
		st[a] = 0
	case isa.OpQHad:
		st[a] = (1 << uint(in.K)) & c.top
	case isa.OpQNot:
		// complement: same dependence set
	case isa.OpQAnd, isa.OpQOr, isa.OpQXor:
		st[a] = st[b] | st[cc]
	case isa.OpQCnot:
		st[a] |= st[b]
	case isa.OpQCcnot:
		st[a] |= st[b] | st[cc]
	case isa.OpQSwap:
		st[a], st[b] = st[b], st[a]
	case isa.OpQCswap:
		u := st[a] | st[b] | st[cc]
		st[a], st[b] = u, u
	case isa.OpQMeas, isa.OpQNext, isa.OpQPop:
		// pure reductions: Qat state is read, never written
	default:
		// Defensive against future Qat-writing ops this switch does not
		// model: widen whatever the instruction writes.
		d := lint.DefSet(in)
		for q := 0; q < isa.NumQRegs; q++ {
			if d.HasQat(uint8(q)) {
				st[q] = c.top
			}
		}
	}
}

// widenAll is the imprecise-mode result: an unresolved indirect jump may
// transfer control anywhere (including mid-block) with arbitrary register
// state, so every touched register is bound by the full width.
func (c *computer) widenAll() {
	for q := range c.touched {
		if c.touched[q] {
			c.regMax[q] = c.ways
			c.regUnion[q] = c.top
		}
	}
}

// walkBlocks produces the per-block profile rows — degree maxima on the
// precise path, compressibility from the opt pbit lattice, and the
// energy.StaticCost bounds — and accumulates the program totals.
func (c *computer) walkBlocks() {
	entry := -1
	if e := c.entryBlock(); e >= 0 && len(c.f.Blocks) > e && len(c.f.Blocks[e].Preds) == 0 {
		entry = e // only a pred-less entry block may assume the loader seed
	}
	for b := range c.f.Blocks {
		bf := &c.f.Blocks[b]
		bp := lint.BlockProfile{ID: b, InLoop: bf.InLoop}
		if bf.InLoop {
			c.p.LoopBlocks++
		}
		if len(bf.Insts) > 0 {
			first := &c.f.Insts[bf.Insts[0]]
			last := &c.f.Insts[bf.Insts[len(bf.Insts)-1]]
			bp.Start = first.Addr
			bp.End = last.Addr + uint16(last.Words)
		}

		// Degree walk (precise path): record maxima and union-find merges at
		// the block entry and after every instruction.
		var st [isa.NumQRegs]depset
		if !c.f.Imprecise {
			st = c.in[b]
			bp.MaxDegree = c.observe(&st)
		} else {
			bp.MaxDegree = c.ways
		}

		// Compressibility walk: the opt pbit lattice, seeded with the
		// loader's all-zero state in the entry block, unknown elsewhere
		// (block-local, exactly as the optimizer's energy pass seeds it).
		var qs [isa.NumQRegs]opt.QState
		if b == entry && !c.f.Imprecise {
			for q := range qs {
				qs[q] = opt.QState{Kind: opt.QZero}
			}
			if c.opts.ConstantRegs {
				qs[1] = opt.QState{Kind: opt.QOne}
				for k := 0; k < c.ways && 2+k < isa.NumQRegs; k++ {
					qs[2+k] = opt.QState{Kind: opt.QHad, K: uint8(k)}
				}
			}
		}

		for _, ii := range bf.Insts {
			in := c.f.Insts[ii].Inst
			if !c.f.Imprecise {
				c.transfer(&st, in)
				if d := c.observe(&st); d > bp.MaxDegree {
					bp.MaxDegree = d
				}
			}
			if in.Op.IsQat() {
				sw, er := energy.StaticCost(in.Op, c.ways)
				bp.SwitchedBits += sw
				bp.ErasedBits += er
			}
			if written, structured := qTransfer(&qs, in); written {
				bp.QatWrites++
				if structured {
					bp.StructuredWrites++
				}
			}
		}
		c.p.QatWrites += bp.QatWrites
		c.p.StructuredWrites += bp.StructuredWrites
		c.p.SwitchedBound += bp.SwitchedBits
		c.p.ErasedBound += bp.ErasedBits
		c.p.Blocks = append(c.p.Blocks, bp)
	}
}

// observe folds the current state into the per-register accumulators and
// the channel union-find, returning the largest degree present.
func (c *computer) observe(st *[isa.NumQRegs]depset) int {
	max := 0
	for q := range st {
		d := st[q]
		if d == 0 {
			continue
		}
		n := bits.OnesCount32(d)
		if n > c.regMax[q] {
			c.regMax[q] = n
		}
		c.regUnion[q] |= d
		if n > max {
			max = n
		}
		if n > 1 {
			c.union(d)
		}
	}
	return max
}

// union merges every channel bit of d into one union-find component.
func (c *computer) union(d depset) {
	first := -1
	for k := 0; k < c.ways; k++ {
		if d&(1<<uint(k)) == 0 {
			continue
		}
		if first < 0 {
			first = k
			continue
		}
		ra, rb := c.find(first), c.find(k)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			c.uf[rb] = ra
		}
	}
}

func (c *computer) find(k int) int {
	for c.uf[k] != k {
		k = c.uf[k]
	}
	return k
}

// qTransfer applies one instruction to the pbit state lattice, reporting
// whether it writes Qat registers and whether every written value is proven
// structured (non-unknown). Mirrors the optimizer's energy-pass semantics.
func qTransfer(st *[isa.NumQRegs]opt.QState, in isa.Inst) (written, structured bool) {
	a, b, c := in.QA, in.QB, in.QC
	known := func(s opt.QState) bool { return s.Kind != opt.QUnknown }
	switch in.Op {
	case isa.OpQZero:
		st[a] = opt.QState{Kind: opt.QZero}
		return true, true
	case isa.OpQOne:
		st[a] = opt.QState{Kind: opt.QOne}
		return true, true
	case isa.OpQHad:
		st[a] = opt.QState{Kind: opt.QHad, K: in.K}
		return true, true
	case isa.OpQNot:
		st[a] = opt.QInvert(st[a])
		return true, known(st[a])
	case isa.OpQAnd:
		st[a] = opt.QAnd(st[b], st[c])
		return true, known(st[a])
	case isa.OpQOr:
		st[a] = opt.QOr(st[b], st[c])
		return true, known(st[a])
	case isa.OpQXor:
		st[a] = opt.QXor(st[b], st[c])
		return true, known(st[a])
	case isa.OpQCnot:
		st[a] = opt.QXor(st[a], st[b])
		return true, known(st[a])
	case isa.OpQCcnot:
		st[a] = opt.QXor(st[a], opt.QAnd(st[b], st[c]))
		return true, known(st[a])
	case isa.OpQSwap:
		st[a], st[b] = st[b], st[a]
		return true, known(st[a]) && known(st[b])
	case isa.OpQCswap:
		switch {
		case st[c].Kind == opt.QZero:
			// control never set: no-op
		case st[c].Kind == opt.QOne:
			st[a], st[b] = st[b], st[a]
		default:
			st[a], st[b] = opt.QState{}, opt.QState{}
		}
		return true, known(st[a]) && known(st[b])
	}
	return false, false
}

// finish assembles the register list, the channel groups, the degree bound
// and the compressibility ratio.
func (c *computer) finish() {
	for q := 0; q < isa.NumQRegs; q++ {
		if c.regMax[q] == 0 {
			continue
		}
		re := lint.RegEntanglement{Reg: q, Degree: c.regMax[q]}
		for k := 0; k < c.ways; k++ {
			if c.regUnion[q]&(1<<uint(k)) != 0 {
				re.Channels = append(re.Channels, k)
			}
		}
		c.p.Regs = append(c.p.Regs, re)
		if c.regMax[q] > c.p.DegreeBound {
			c.p.DegreeBound = c.regMax[q]
		}
	}
	if c.f.Imprecise {
		// All channels entangled as far as the analysis can tell.
		if c.ways > 1 && c.p.QatOps > 0 {
			all := make([]int, c.ways)
			for k := range all {
				all[k] = k
			}
			c.p.Groups = [][]int{all}
		}
	} else {
		members := make(map[int][]int)
		for k := 0; k < c.ways; k++ {
			r := c.find(k)
			members[r] = append(members[r], k)
		}
		for k := 0; k < c.ways; k++ {
			if g := members[k]; len(g) > 1 {
				c.p.Groups = append(c.p.Groups, g)
			}
		}
	}
	if c.p.QatWrites == 0 {
		c.p.Compressibility = 1
	} else {
		c.p.Compressibility = float64(c.p.StructuredWrites) / float64(c.p.QatWrites)
	}
}
