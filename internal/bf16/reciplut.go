package bf16

// The course's Verilog float library computed reciprocals with "a small
// VMEM file initializing a lookup table for computing fraction
// reciprocals". RecipLUT reproduces that hardware structure: a 128-entry
// ROM indexed by the 7-bit fraction delivers the reciprocal significand
// directly, with no iterative refinement. It trades correct rounding (which
// Recip provides via long division) for a single table access — the
// FPGA-friendly design — and lands within one ulp of the rounded result.

// recipROM[f] holds round(2^15 / (0x80|f)), a 9-bit-significant fixed-point
// reciprocal of the normalized significand 1.f — the contents of the VMEM
// file.
var recipROM [128]uint32

func init() {
	for f := 0; f < 128; f++ {
		den := uint32(0x80 | f)
		recipROM[f] = (uint32(1)<<15 + den/2) / den
	}
}

// RecipLUT computes 1/f with the table-lookup datapath. Special values
// follow the same rules as Recip; results may differ from the correctly
// rounded reciprocal by at most one unit in the last place (exhaustively
// verified in the tests).
func RecipLUT(f Float) Float {
	if f.IsNaN() {
		return NaN
	}
	sign := uint16(f) & signMask
	if f.IsInf() {
		return Float(sign)
	}
	if f.IsZero() {
		return Float(sign) | PosInf
	}
	_, fe, fm := unpack(f)
	if fe == 0 {
		fe = 1
		for fm < 0x80 {
			fm <<= 1
			fe--
		}
	}
	// fm in [0x80, 0xFF]; the ROM returns q ~= 2^15/fm in [0x100, 0x200].
	q := recipROM[fm&0x7F]
	// 1/f = q * 2^(-15) * 2^7 * 2^(bias - fe): same scale derivation as
	// Recip with numShift = 15. No sticky information survives the ROM, so
	// rounding is whatever the table baked in.
	e := int32(2*expBias+10+7-15) - fe
	return roundPack(sign, q, e, false)
}
