// Package bf16 is a bit-level bfloat16 arithmetic library mirroring the
// Verilog floating-point library used by the Tangled processor (Dietz, ICPP
// Workshops 2021). Tangled adopts bfloat16 because a 16-bit value becomes a
// standard IEEE-754 float32 by catenating sixteen zero bits, and because all
// the basic operations fit in a single FPGA pipeline stage.
//
// All operations are implemented with integer bit manipulation — the same
// alignment/normalization/round-to-nearest-even datapaths a hardware ALU
// uses — rather than by deferring to the host FPU; the float32 round trip is
// provided only for interop and is used by the tests as an independent
// reference.
package bf16

import "math"

// Float is a bfloat16 value: 1 sign bit, 8 exponent bits (bias 127), and 7
// fraction bits — exactly the top half of an IEEE-754 float32.
type Float uint16

// Interesting constants, by bit pattern.
const (
	PosZero Float = 0x0000
	NegZero Float = 0x8000
	One     Float = 0x3F80
	NegOne  Float = 0xBF80
	PosInf  Float = 0x7F80
	NegInf  Float = 0xFF80
	NaN     Float = 0x7FC0 // canonical quiet NaN
)

const (
	signMask = 0x8000
	expMask  = 0x7F80
	fracMask = 0x007F
	expBias  = 127
	expMax   = 0xFF
)

// IsNaN reports whether f is any NaN encoding.
func (f Float) IsNaN() bool {
	return f&expMask == expMask && f&fracMask != 0
}

// IsInf reports whether f is +Inf or -Inf.
func (f Float) IsInf() bool {
	return f&expMask == expMask && f&fracMask == 0
}

// IsZero reports whether f is +0 or -0.
func (f Float) IsZero() bool { return f&^signMask == 0 }

// Sign returns 1 if the sign bit is set, else 0.
func (f Float) Sign() uint16 {
	return uint16(f) >> 15
}

// Neg implements the Tangled "negf" instruction: flip the sign bit. Like
// hardware, it negates even NaN and zero encodings.
func (f Float) Neg() Float { return f ^ signMask }

// Abs clears the sign bit.
func (f Float) Abs() Float { return f &^ signMask }

// Float32 widens f to float32 exactly (catenate 16 zero bits, as the paper
// describes).
func (f Float) Float32() float32 {
	return math.Float32frombits(uint32(f) << 16)
}

// Float64 widens f exactly to float64.
func (f Float) Float64() float64 { return float64(f.Float32()) }

// FromFloat32 rounds a float32 to the nearest bfloat16, ties to even.
// NaNs are canonicalized (quiet bit forced) so a payload is never silently
// truncated to an infinity encoding.
func FromFloat32(x float32) Float {
	b := math.Float32bits(x)
	if b&0x7FFFFFFF > 0x7F800000 { // NaN
		return Float(b>>16) | 0x0040
	}
	// Round to nearest even on bit 16.
	lsb := (b >> 16) & 1
	b += 0x7FFF + lsb
	return Float(b >> 16)
}

// unpack splits f into sign, unbiased-ish fields: exp is the raw biased
// exponent and sig the 8-bit significand with the implicit leading 1 made
// explicit for normals. Subnormals keep exp = 0 and no implicit bit.
func unpack(f Float) (sign uint16, exp int32, sig uint32) {
	sign = uint16(f) & signMask
	exp = int32(f>>7) & 0xFF
	sig = uint32(f) & fracMask
	if exp != 0 {
		sig |= 0x80
	}
	return
}

// roundPack assembles the nearest bfloat16 for the exact value
// (-1)^sign * sig * 2^(exp), where exp is the weight of sig's bit 0 relative
// to a biased-exponent/fraction pair such that a normal number 1.f*2^E has
// sig = 0x80|f and exp = E - 7 + bias... Concretely: callers present sig as
// an arbitrary-width integer and exp such that value = sig * 2^(exp-bias-7)
// in real terms is NOT the contract; instead exp is pre-biased: a normal
// result with 8-bit significand s (0x80..0xFF) and biased exponent be is
// represented by sig = s, exp = be. roundPack first normalizes sig to the
// 8-bit window (adjusting exp), then applies RNE including subnormal and
// overflow handling. sticky records nonzero bits already discarded below
// sig's LSB.
func roundPack(sign uint16, sig uint32, exp int32, sticky bool) Float {
	if sig == 0 {
		if sticky {
			// Magnitude entirely below sig's LSB: underflow toward zero.
			return Float(sign)
		}
		return Float(sign)
	}
	// Normalize so the leading 1 of sig sits at bit 10: 8 significand bits
	// plus 3 guard/round/sticky bits.
	for sig >= 1<<11 {
		if sig&1 != 0 {
			sticky = true
		}
		sig >>= 1
		exp++
	}
	for sig < 1<<10 {
		sig <<= 1
		exp--
	}
	// Here value = (sig/2^10) * 2^(exp-bias) in the 1.x sense when exp is
	// the biased exponent.
	if exp <= 0 {
		// Subnormal (or total underflow): shift right so the encoding's
		// implicit exponent of 1 applies, folding shifted-out bits into
		// sticky.
		shift := uint32(1 - exp)
		if shift > 12 {
			shift = 12
		}
		if sig&((1<<shift)-1) != 0 {
			sticky = true
		}
		sig >>= shift
		exp = 0
	}
	if exp >= expMax {
		return Float(sign) | PosInf
	}
	// Round to nearest even on the 3 GRS bits.
	grs := sig & 7
	sig >>= 3
	roundUp := false
	if grs > 4 || (grs == 4 && sticky) {
		roundUp = true
	} else if grs == 4 && !sticky {
		roundUp = sig&1 == 1 // tie: to even
	}
	var n uint32
	if exp == 0 {
		n = sig // subnormal: no implicit bit to strip
	} else {
		n = uint32(exp)<<7 | (sig & fracMask)
	}
	if roundUp {
		// Integer increment correctly carries fraction→exponent, promotes
		// subnormal→normal, and saturates 0x7F7F→0x7F80 (infinity).
		n++
	}
	return Float(sign) | Float(n)
}

// Add implements the Tangled "addf" instruction: f + g with round to
// nearest even, full subnormal support, and IEEE special-value rules.
func Add(f, g Float) Float {
	if f.IsNaN() || g.IsNaN() {
		return NaN
	}
	if f.IsInf() || g.IsInf() {
		switch {
		case f.IsInf() && g.IsInf():
			if f.Sign() != g.Sign() {
				return NaN // Inf + -Inf
			}
			return f
		case f.IsInf():
			return f
		default:
			return g
		}
	}
	fs, fe, fm := unpack(f)
	gs, ge, gm := unpack(g)
	// Give subnormals the working exponent of 1 (their true scale).
	if fe == 0 {
		fe = 1
	}
	if ge == 0 {
		ge = 1
	}
	// Ensure |f| >= |g| so alignment shifts g.
	if fe < ge || (fe == ge && fm < gm) {
		fs, gs = gs, fs
		fe, ge = ge, fe
		fm, gm = gm, fm
	}
	// Pre-shift by 3 for GRS precision.
	fm <<= 3
	gm <<= 3
	sticky := false
	if d := uint32(fe - ge); d > 0 {
		if d >= 12 {
			if gm != 0 {
				sticky = true
			}
			gm = 0
		} else {
			if gm&((1<<d)-1) != 0 {
				sticky = true
			}
			gm >>= d
		}
	}
	var sig uint32
	sign := fs
	if fs == gs {
		sig = fm + gm
	} else {
		sig = fm - gm
		if sig == 0 && !sticky {
			// Exact cancellation: IEEE says +0 under RNE.
			return PosZero
		}
		if sticky {
			// The discarded bits of gm make the true magnitude slightly
			// smaller than sig; borrow one sticky-weighted unit so rounding
			// sees value = sig - epsilon.
			sig--
		}
	}
	// sig currently carries value sig * 2^(fe) / 2^10-scale: unpacked sig had
	// the leading 1 at bit 7; after <<3 it sits at bit 10, matching
	// roundPack's normalized window with biased exponent fe.
	return roundPack(sign, sig, fe, sticky)
}

// Sub returns f - g.
func Sub(f, g Float) Float { return Add(f, g.Neg()) }

// Mul implements the Tangled "mulf" instruction: f * g with round to
// nearest even.
func Mul(f, g Float) Float {
	sign := (uint16(f) ^ uint16(g)) & signMask
	if f.IsNaN() || g.IsNaN() {
		return NaN
	}
	if f.IsInf() || g.IsInf() {
		if f.IsZero() || g.IsZero() {
			return NaN // 0 * Inf
		}
		return Float(sign) | PosInf
	}
	if f.IsZero() || g.IsZero() {
		return Float(sign)
	}
	_, fe, fm := unpack(f)
	_, ge, gm := unpack(g)
	// Normalize subnormal inputs into the 8-bit significand window.
	if fe == 0 {
		fe = 1
		for fm < 0x80 {
			fm <<= 1
			fe--
		}
	}
	if ge == 0 {
		ge = 1
		for gm < 0x80 {
			gm <<= 1
			ge--
		}
	}
	// 8x8 -> 16-bit product; leading 1 at bit 14 or 15. Scale so roundPack's
	// bit-10 window corresponds to biased exponent e.
	prod := fm * gm
	e := fe + ge - expBias
	// fm*gm has weight 2^-14 relative to 1.0 (each significand is s/2^7).
	// roundPack wants the leading 1 at bit 10 meaning value s/2^10 * 2^e.
	// prod/2^14 * 2^e == (prod>>4)/2^10 * 2^e; defer the shift to roundPack
	// by adjusting exp: value = prod/2^10 * 2^(e-4).
	return roundPack(sign, prod, e-4, false)
}

// Recip implements the Tangled "recip" instruction: 1/f with round to
// nearest even. The hardware used a fraction-reciprocal lookup table; here
// the table entries are generated by the same long division, retaining a
// remainder-based sticky bit so results are correctly rounded.
func Recip(f Float) Float {
	if f.IsNaN() {
		return NaN
	}
	sign := uint16(f) & signMask
	if f.IsInf() {
		return Float(sign) // 1/±Inf = ±0
	}
	if f.IsZero() {
		return Float(sign) | PosInf // 1/±0 = ±Inf
	}
	_, fe, fm := unpack(f)
	if fe == 0 {
		fe = 1
		for fm < 0x80 {
			fm <<= 1
			fe--
		}
	}
	// f = (fm/2^7) * 2^(fe-bias). 1/f = (2^7/fm) * 2^(bias-fe).
	// Compute q = 2^25/fm: fm in [128,256) so q in (2^17, 2^18], giving a
	// significand with the leading 1 at bit 17 (or 18 for fm=128).
	const numShift = 25
	num := uint32(1) << numShift
	q := num / fm
	sticky := num%fm != 0
	// 1/f = q * 2^(7-numShift) * 2^(bias-fe); matching roundPack's
	// sig/2^10 * 2^(e-bias) form gives e = 2*bias + 10 + 7 - numShift - fe.
	e := int32(2*expBias+10+7-numShift) - fe
	return roundPack(sign, q, e, sticky)
}

// Div returns f/g, composed as f * recip(g) — exactly what Tangled code must
// do, since the ISA has no divide. Note this is NOT correctly rounded
// division; it inherits the two-rounding error of the instruction sequence.
func Div(f, g Float) Float { return Mul(f, Recip(g)) }

// FromInt implements the Tangled "float" instruction: convert a 16-bit
// two's-complement integer to bfloat16 with round to nearest even.
func FromInt(x int16) Float {
	if x == 0 {
		return PosZero
	}
	var sign uint16
	v := uint32(int32(x))
	if x < 0 {
		sign = signMask
		v = uint32(-int32(x))
	}
	// value = v * 2^0; present to roundPack with its bit-10 window meaning
	// v/2^10 * 2^e = v  =>  biased e = bias + 10.
	return roundPack(sign, v, expBias+10, false)
}

// ToInt implements the Tangled "int" instruction: truncate a bfloat16
// toward zero to a 16-bit two's-complement integer. Out-of-range values
// saturate; NaN converts to 0 (a common hardware choice).
func ToInt(f Float) int16 {
	if f.IsNaN() {
		return 0
	}
	sign, fe, fm := unpack(f)
	if fe == 0 {
		return 0 // subnormals are all < 1
	}
	e := fe - expBias // value = (fm/2^7) * 2^e
	if e < 0 {
		return 0
	}
	if e > 15 { // includes Inf
		if sign != 0 {
			return math.MinInt16
		}
		return math.MaxInt16
	}
	var mag uint32
	if e >= 7 {
		mag = fm << uint(e-7)
	} else {
		mag = fm >> uint(7-e)
	}
	if sign != 0 {
		if mag > 1<<15 {
			return math.MinInt16
		}
		return int16(-int32(mag))
	}
	if mag > math.MaxInt16 {
		return math.MaxInt16
	}
	return int16(mag)
}

// Less reports f < g under IEEE ordering (NaN unordered: always false).
func Less(f, g Float) bool {
	if f.IsNaN() || g.IsNaN() {
		return false
	}
	if f.IsZero() && g.IsZero() {
		return false
	}
	fneg, gneg := f.Sign() == 1, g.Sign() == 1
	switch {
	case fneg && !gneg:
		return true
	case !fneg && gneg:
		return false
	case !fneg:
		return uint16(f) < uint16(g)
	default:
		return uint16(f.Abs()) > uint16(g.Abs())
	}
}

// Eq reports f == g under IEEE rules: NaN compares unequal to everything,
// +0 equals -0.
func Eq(f, g Float) bool {
	if f.IsNaN() || g.IsNaN() {
		return false
	}
	if f.IsZero() && g.IsZero() {
		return true
	}
	return f == g
}
