package bf16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refRound rounds a float32 to bfloat16 via the independent "shift and RNE
// on the raw bits" path, used as the oracle for operation results. Sums and
// products of bfloat16 values are exact in float32 (8-bit significands, 16
// spare bits), so rounding the float32 result is the correctly rounded
// bfloat16 result.
func refRound(x float32) Float {
	return FromFloat32(x)
}

func refAdd(a, b Float) Float {
	fa, fb := a.Float32(), b.Float32()
	s := fa + fb
	if s == 0 && !math.IsNaN(float64(fa)) && !math.IsNaN(float64(fb)) {
		// Keep IEEE signed-zero semantics from the host FPU.
		return refRound(s)
	}
	return refRound(s)
}

func refMul(a, b Float) Float {
	return refRound(a.Float32() * b.Float32())
}

// sameValue compares results treating all NaNs as equivalent.
func sameValue(a, b Float) bool {
	if a.IsNaN() && b.IsNaN() {
		return true
	}
	return a == b
}

// interestingValues is a corpus hitting every special class and boundary.
var interestingValues = []Float{
	PosZero, NegZero, One, NegOne, PosInf, NegInf, NaN,
	0x0001,         // min subnormal
	0x007F,         // max subnormal
	0x0080,         // min normal
	0x0081,         // min normal + 1 ulp
	0x00FF,         // min normal, max frac
	0x3F7F,         // just below 1.0
	0x3F81,         // just above 1.0
	0x4000,         // 2.0
	0x4049,         // ~3.14
	0x7F7F,         // max finite
	0x7F00,         // large
	0xFF7F,         // -max finite
	0x8001,         // -min subnormal
	0x42FE,         // 127.0
	0xC2FE,         // -127.0
	0x7FC0, 0x7FFF, // NaNs
	0x3C00, 0x3800, // random-ish mid-range values
	0x4780, // 65536.0 (beyond int16)
	0xC780, // -65536.0
	0x4700, // 32768.0
	0x46FF, // 32640.0
}

func TestAddAgainstReference(t *testing.T) {
	for _, a := range interestingValues {
		for _, b := range interestingValues {
			got := Add(a, b)
			want := refAdd(a, b)
			if !sameValue(got, want) {
				t.Errorf("Add(%#04x, %#04x) = %#04x, want %#04x (%g + %g)",
					uint16(a), uint16(b), uint16(got), uint16(want),
					a.Float64(), b.Float64())
			}
		}
	}
}

func TestAddRandomExhaustiveSlice(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		a, b := Float(r.Uint32()), Float(r.Uint32())
		got, want := Add(a, b), refAdd(a, b)
		if !sameValue(got, want) {
			t.Fatalf("Add(%#04x, %#04x) = %#04x, want %#04x",
				uint16(a), uint16(b), uint16(got), uint16(want))
		}
	}
}

func TestMulAgainstReference(t *testing.T) {
	for _, a := range interestingValues {
		for _, b := range interestingValues {
			got := Mul(a, b)
			want := refMul(a, b)
			if !sameValue(got, want) {
				t.Errorf("Mul(%#04x, %#04x) = %#04x, want %#04x (%g * %g)",
					uint16(a), uint16(b), uint16(got), uint16(want),
					a.Float64(), b.Float64())
			}
		}
	}
}

func TestMulRandom(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		a, b := Float(r.Uint32()), Float(r.Uint32())
		got, want := Mul(a, b), refMul(a, b)
		if !sameValue(got, want) {
			t.Fatalf("Mul(%#04x, %#04x) = %#04x, want %#04x",
				uint16(a), uint16(b), uint16(got), uint16(want))
		}
	}
}

func TestRecipExhaustive(t *testing.T) {
	// All 65536 encodings. Oracle: float64 reciprocal rounded to bfloat16
	// (double rounding is safe here; see package tests note — 1/x never
	// falls within float64 epsilon of a bfloat16 rounding boundary except
	// when exact).
	for i := 0; i < 1<<16; i++ {
		f := Float(i)
		got := Recip(f)
		want := FromFloat32(float32(1.0 / f.Float64()))
		if f.IsZero() {
			want = Float(uint16(f)&signMask) | PosInf
		}
		if !sameValue(got, want) {
			t.Fatalf("Recip(%#04x=%g) = %#04x (%g), want %#04x (%g)",
				uint16(f), f.Float64(), uint16(got), got.Float64(),
				uint16(want), want.Float64())
		}
	}
}

func TestFromIntExhaustive(t *testing.T) {
	for i := math.MinInt16; i <= math.MaxInt16; i++ {
		got := FromInt(int16(i))
		want := FromFloat32(float32(i))
		if got != want {
			t.Fatalf("FromInt(%d) = %#04x, want %#04x", i, uint16(got), uint16(want))
		}
	}
}

func TestToIntExhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		f := Float(i)
		got := ToInt(f)
		var want int16
		switch {
		case f.IsNaN():
			want = 0
		default:
			v := math.Trunc(f.Float64())
			switch {
			case v > math.MaxInt16:
				want = math.MaxInt16
			case v < math.MinInt16:
				want = math.MinInt16
			default:
				want = int16(v)
			}
		}
		if got != want {
			t.Fatalf("ToInt(%#04x=%g) = %d, want %d", i, f.Float64(), got, want)
		}
	}
}

func TestFloatIntRoundTrip(t *testing.T) {
	// int -> float -> int is exact for all integers with <= 8 significant
	// bits; this is the class CPE480 sanity test.
	for _, v := range []int16{0, 1, -1, 2, 100, -100, 127, -128, 255, -255, 256} {
		if got := ToInt(FromInt(v)); got != v {
			t.Errorf("round trip %d -> %d", v, got)
		}
	}
}

func TestNegAbs(t *testing.T) {
	if One.Neg() != NegOne {
		t.Error("neg 1.0 != -1.0")
	}
	if NegOne.Neg() != One {
		t.Error("neg -1.0 != 1.0")
	}
	if NegInf.Abs() != PosInf {
		t.Error("abs -inf != inf")
	}
	if PosZero.Neg() != NegZero {
		t.Error("neg +0 != -0")
	}
}

func TestSpecialValueRules(t *testing.T) {
	cases := []struct {
		name string
		got  Float
		nan  bool
		want Float
	}{
		{"inf+inf", Add(PosInf, PosInf), false, PosInf},
		{"inf+-inf", Add(PosInf, NegInf), true, 0},
		{"inf*0", Mul(PosInf, PosZero), true, 0},
		{"inf*-1", Mul(PosInf, NegOne), false, NegInf},
		{"nan+1", Add(NaN, One), true, 0},
		{"nan*1", Mul(NaN, One), true, 0},
		{"recip nan", Recip(NaN), true, 0},
		{"recip inf", Recip(PosInf), false, PosZero},
		{"recip -inf", Recip(NegInf), false, NegZero},
		{"recip +0", Recip(PosZero), false, PosInf},
		{"recip -0", Recip(NegZero), false, NegInf},
		{"1+-1", Add(One, NegOne), false, PosZero},
	}
	for _, c := range cases {
		if c.nan {
			if !c.got.IsNaN() {
				t.Errorf("%s: got %#04x, want NaN", c.name, uint16(c.got))
			}
		} else if c.got != c.want {
			t.Errorf("%s: got %#04x, want %#04x", c.name, uint16(c.got), uint16(c.want))
		}
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		return sameValue(Add(Float(a), Float(b)), Add(Float(b), Float(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestMulCommutativeProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		return sameValue(Mul(Float(a), Float(b)), Mul(Float(b), Float(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestAddIdentityProperty(t *testing.T) {
	f := func(a uint16) bool {
		x := Float(a)
		if x.IsNaN() {
			return Add(x, PosZero).IsNaN()
		}
		if x.IsZero() {
			return Add(x, PosZero).IsZero()
		}
		return Add(x, PosZero) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(a uint16) bool {
		x := Float(a)
		if x.IsNaN() {
			return Mul(x, One).IsNaN()
		}
		return Mul(x, One) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestXPlusNegXIsZero(t *testing.T) {
	f := func(a uint16) bool {
		x := Float(a)
		if x.IsNaN() || x.IsInf() {
			return true
		}
		return Add(x, x.Neg()).IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestLess(t *testing.T) {
	cases := []struct {
		a, b Float
		want bool
	}{
		{One, Float(0x4000), true},           // 1 < 2
		{NegOne, One, true},                  // -1 < 1
		{NegOne, NegZero, true},              // -1 < -0
		{PosZero, NegZero, false},            // +0 == -0
		{NegZero, PosZero, false},            // -0 == +0
		{NegInf, NegOne, true},               // -inf < -1
		{Float(0xC000), NegOne, true},        // -2 < -1
		{One, One, false},                    // equal
		{NaN, One, false},                    // unordered
		{One, NaN, false},                    // unordered
		{Float(0x7F7F), PosInf, true},        // max finite < inf
		{Float(0x0001), Float(0x0002), true}, // subnormal ordering
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%g,%g) = %v, want %v", c.a.Float64(), c.b.Float64(), got, c.want)
		}
	}
}

func TestLessMatchesFloat64Property(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Float(a), Float(b)
		return Less(x, y) == (x.Float64() < y.Float64())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50000}); err != nil {
		t.Error(err)
	}
}

func TestEq(t *testing.T) {
	if !Eq(PosZero, NegZero) {
		t.Error("+0 must equal -0")
	}
	if Eq(NaN, NaN) {
		t.Error("NaN must not equal NaN")
	}
	if !Eq(One, One) {
		t.Error("1 must equal 1")
	}
}

func TestDivBehaves(t *testing.T) {
	// Div is mul-by-reciprocal (the only division Tangled can express);
	// check it is within 1 ulp of true division on normal values.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		a, b := Float(r.Uint32()), Float(r.Uint32())
		if a.IsNaN() || b.IsNaN() || b.IsZero() || a.IsInf() || b.IsInf() {
			continue
		}
		if Recip(b)&expMask == 0 {
			// Subnormal reciprocal: the intermediate has only a few
			// significand bits, so mul-by-recip legitimately diverges.
			continue
		}
		got := Div(a, b)
		want := FromFloat32(float32(a.Float64() / b.Float64()))
		if got.IsInf() || want.IsInf() || got.IsZero() || want.IsZero() {
			continue // range edges can legitimately differ by rounding path
		}
		diff := int32(uint16(got.Abs())) - int32(uint16(want.Abs()))
		if got.Sign() != want.Sign() || diff < -1 || diff > 1 {
			t.Fatalf("Div(%g,%g) = %g, true %g", a.Float64(), b.Float64(),
				got.Float64(), want.Float64())
		}
	}
}

func TestFromFloat32NaNPreserved(t *testing.T) {
	n := FromFloat32(float32(math.NaN()))
	if !n.IsNaN() {
		t.Fatal("NaN lost in conversion")
	}
}

func TestPaperIdentityWiden(t *testing.T) {
	// "values can be treated as standard 32-bit float values by simply
	// catenating a 16-bit value of 0" — widening then re-narrowing is exact
	// for every encoding.
	for i := 0; i < 1<<16; i++ {
		f := Float(i)
		back := FromFloat32(f.Float32())
		if f.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("%#04x: NaN not preserved", i)
			}
			continue
		}
		if back != f {
			t.Fatalf("%#04x -> float32 -> %#04x not exact", i, uint16(back))
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := FromFloat32(1.5), FromFloat32(2.25)
	for i := 0; i < b.N; i++ {
		x = Add(x, y)
		if x.IsInf() {
			x = One
		}
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := FromFloat32(1.0001), FromFloat32(1.5)
	for i := 0; i < b.N; i++ {
		_ = Mul(x, y)
	}
}

func BenchmarkRecip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Recip(Float(i&0x7FFF | 0x100))
	}
}

// TestRecipLUTWithinOneUlp: the table-lookup datapath (the course's VMEM
// ROM design) agrees with the correctly rounded reciprocal to within one
// ulp on every encoding, and exactly on the large majority.
func TestRecipLUTWithinOneUlp(t *testing.T) {
	exact := 0
	finite := 0
	for i := 0; i < 1<<16; i++ {
		f := Float(i)
		got := RecipLUT(f)
		want := Recip(f)
		if want.IsNaN() {
			if !got.IsNaN() {
				t.Fatalf("RecipLUT(%#04x) = %#04x, want NaN", i, uint16(got))
			}
			continue
		}
		if got == want {
			if !f.IsZero() && !f.IsInf() {
				exact++
				finite++
			}
			continue
		}
		finite++
		if got.Sign() != want.Sign() {
			t.Fatalf("RecipLUT(%#04x): sign differs", i)
		}
		diff := int32(uint16(got.Abs())) - int32(uint16(want.Abs()))
		if diff < -1 || diff > 1 {
			t.Fatalf("RecipLUT(%#04x) = %#04x, correctly rounded %#04x (off by %d ulp)",
				i, uint16(got), uint16(want), diff)
		}
	}
	if frac := float64(exact) / float64(finite); frac < 0.85 {
		t.Errorf("only %.1f%% of reciprocals exact; ROM precision too low", 100*frac)
	}
}

func TestRecipLUTSpecials(t *testing.T) {
	if RecipLUT(PosZero) != PosInf || RecipLUT(NegZero) != NegInf {
		t.Error("1/±0")
	}
	if RecipLUT(PosInf) != PosZero || RecipLUT(NegInf) != NegZero {
		t.Error("1/±inf")
	}
	if !RecipLUT(NaN).IsNaN() {
		t.Error("1/NaN")
	}
	if RecipLUT(One) != One {
		t.Error("1/1")
	}
}

func BenchmarkRecipLUT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RecipLUT(Float(i&0x7FFF | 0x100))
	}
}
