package farm

// Auto-backend resolution: a Job may name backend.Auto instead of a
// concrete register file, and the farm resolves it here — before pool
// keys, memo keys, or machines exist — through the static planner
// (internal/backend), with a memo probe so a previously executed identity
// under either concrete backend wins over the static prediction. The
// resolution happens at every entry point that derives a job identity
// (runJob, MemoProbe, MemoKey), because a key computed on the unresolved
// pseudo-name would silently alias the dense spelling.

import (
	"tangled/internal/asm"
	"tangled/internal/backend"
	"tangled/internal/lint"
	"tangled/internal/qat"
)

// resolveAuto resolves the backend.Auto pseudo-backend in place on j,
// returning the static profile that drove the decision (nil when j did not
// ask for auto). Pipelined jobs resolve to dense — the pipeline models the
// paper's dense hardware, so auto has exactly one answer there. The
// planner may fail with backend.UnservableError when the requested width
// exceeds every backend; the profile rides on that error.
func (e *Engine) resolveAuto(j *Job, prog *asm.Program, maxSteps uint64, o *Obs) (*lint.Profile, error) {
	if j.Backend != backend.Auto {
		return nil, nil
	}
	if j.Mode == Pipelined {
		j.Backend = qat.BackendDense
		return nil, nil
	}
	cache := e.jobCache(j, o)
	probe := func(cfg qat.Config) bool {
		if cache == nil {
			return false
		}
		t := *j
		t.Ways, t.ConstantRegs = cfg.Ways, cfg.ConstantRegs
		t.Backend, t.REChunkWays, t.RESpillRuns = cfg.Backend, cfg.ChunkWays, cfg.SpillRuns
		_, ok := cache.Get(jobKey(&t, prog, maxSteps))
		return ok
	}
	plan, err := backend.PlanAuto(prog,
		qat.Config{Ways: j.Ways, ConstantRegs: j.ConstantRegs, Backend: backend.Auto}, probe)
	if err != nil {
		return nil, err
	}
	// The plan is canonical; width is untouched by design (the planner only
	// picks the file the requested width runs on).
	j.Backend = plan.Config.Backend
	j.REChunkWays = plan.Config.ChunkWays
	j.RESpillRuns = plan.Config.SpillRuns
	return plan.Profile, nil
}
