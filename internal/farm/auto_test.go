package farm_test

// The auto-backend planner through the farm: resolution to a concrete
// backend before pool/memo identity, byte-identical execution against the
// explicit spelling (including the width regime dense cannot serve), memo
// probe stickiness, and the unservable error surface.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/backend"
	"tangled/internal/farm"
	"tangled/internal/farm/farmtest"
	"tangled/internal/memo"
	"tangled/internal/qat"
)

// wideEntangleSrc builds a program whose one register accumulates
// dependence on `chans` distinct channels (chans <= 16: the had index is a
// 4-bit immediate): seed @1..@chans with one had each, then cnot-fold them
// all into @1.
func wideEntangleSrc(chans int) string {
	var b strings.Builder
	for k := 0; k < chans; k++ {
		fmt.Fprintf(&b, "\thad\t@%d, %d\n", k+1, k)
	}
	for k := 1; k < chans; k++ {
		fmt.Fprintf(&b, "\tcnot\t@1, @%d\n", k+1)
	}
	// Observable reductions so divergence would show in the register file.
	b.WriteString("\tmeas\t$1, @1\n")
	b.WriteString("\tpop\t$2, @1\n")
	b.WriteString("\tnext\t$3, @1\n")
	b.WriteString("\tlex\t$0, 0\n\tsys\n")
	return b.String()
}

// TestAutoPicksREBeyondDense is the acceptance case: at a width dense
// hardware cannot hold, auto must resolve to the RE backend and produce
// the same bytes as the explicit RE spelling, while the profile records a
// degree bound past the dense wall.
func TestAutoPicksREBeyondDense(t *testing.T) {
	const ways = 20
	src := wideEntangleSrc(16)
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	engine := farm.New(0)
	results, _ := engine.Run(nil, []farm.Job{
		{Name: "auto", Prog: prog, Ways: ways, Backend: backend.Auto},
		{Name: "re", Prog: prog, Ways: ways, Backend: qat.BackendRE},
		{Name: "dense", Prog: prog, Ways: ways, Backend: qat.BackendDense},
	})
	auto, re, dense := results[0], results[1], results[2]
	if auto.Err != nil || re.Err != nil {
		t.Fatalf("auto err=%v re err=%v", auto.Err, re.Err)
	}
	if dense.Err == nil {
		t.Fatal("dense accepted 20 ways: the width must be past the dense wall")
	}
	if auto.Backend != qat.BackendRE {
		t.Fatalf("auto resolved to %q, want re", auto.Backend)
	}
	if auto.Profile == nil {
		t.Fatal("auto result carries no profile")
	}
	if auto.Profile.DegreeBound != 16 {
		t.Fatalf("DegreeBound=%d, want 16 (all seedable channels folded)", auto.Profile.DegreeBound)
	}
	if auto.Regs != re.Regs || auto.Output != re.Output || auto.Insts != re.Insts {
		t.Fatalf("auto diverged from explicit re:\nauto %v %q %d\nre   %v %q %d",
			auto.Regs, auto.Output, auto.Insts, re.Regs, re.Output, re.Insts)
	}
	if auto.Regs[1] == 0 && auto.Regs[2] == 0 && auto.Regs[3] == 0 {
		t.Fatal("reductions all zero: the program observed nothing")
	}
}

// TestAutoPicksREOnWideDegreeBound covers the degree > 16 regime: the had
// index is a 4-bit immediate, so a precise program tops out at degree 16 —
// past that the bound comes from imprecise-mode widening (an unresolved
// indirect jump widens every dependence set to the full width). At 20 ways
// the profile reports DegreeBound 20 > 16, dense cannot serve, and auto
// must land on RE with bytes identical to the explicit spelling.
func TestAutoPicksREOnWideDegreeBound(t *testing.T) {
	const ways = 20
	src := `
	lex	$1, 1
	lex	$2, 3
	add	$1, $2
	jumpr	$1
L:	had	@1, 0
	meas	$4, @1
	pop	$5, @1
	lex	$0, 0
	sys
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	engine := farm.New(0)
	results, _ := engine.Run(nil, []farm.Job{
		{Name: "auto", Prog: prog, Ways: ways, Backend: backend.Auto},
		{Name: "re", Prog: prog, Ways: ways, Backend: qat.BackendRE},
		{Name: "dense", Prog: prog, Ways: ways, Backend: qat.BackendDense},
	})
	auto, re, dense := results[0], results[1], results[2]
	if auto.Err != nil || re.Err != nil {
		t.Fatalf("auto err=%v re err=%v", auto.Err, re.Err)
	}
	if dense.Err == nil {
		t.Fatal("dense accepted 20 ways")
	}
	if auto.Backend != qat.BackendRE {
		t.Fatalf("auto resolved to %q, want re", auto.Backend)
	}
	if auto.Profile == nil || !auto.Profile.Imprecise || auto.Profile.DegreeBound != ways {
		t.Fatalf("profile=%+v, want imprecise with DegreeBound %d", auto.Profile, ways)
	}
	if auto.Regs != re.Regs || auto.Output != re.Output || auto.Insts != re.Insts {
		t.Fatal("auto diverged from explicit re")
	}
}

// TestAutoPlannerDifferential sweeps a corpus slice at a dense-servable
// width: whatever the planner picks must match the dense reference
// byte-for-byte, and the choice must be reported.
func TestAutoPlannerDifferential(t *testing.T) {
	const programs = 40
	engine := farm.New(0)
	for i := 0; i < programs; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("program %d does not assemble: %v", i, err)
		}
		results, _ := engine.Run(nil, []farm.Job{
			{Name: "auto", Prog: prog, Ways: diffWays, Backend: backend.Auto},
			{Name: "dense", Prog: prog, Ways: diffWays, Backend: qat.BackendDense},
		})
		auto, dense := results[0], results[1]
		if auto.Err != nil || dense.Err != nil {
			t.Fatalf("program %d: auto err=%v dense err=%v\n%s", i, auto.Err, dense.Err, src)
		}
		if auto.Backend != qat.BackendDense && auto.Backend != qat.BackendRE {
			t.Fatalf("program %d: auto resolved to %q", i, auto.Backend)
		}
		if auto.Regs != dense.Regs || auto.Output != dense.Output || auto.Insts != dense.Insts {
			t.Fatalf("program %d: auto (%s) diverged from dense\n%s", i, auto.Backend, src)
		}
	}
}

// TestAutoMemoProbeSticky seeds the memo under the explicit RE identity;
// a later auto job for the same program must find it and resolve to RE
// (served from cache) even though the static rules would pick dense.
func TestAutoMemoProbeSticky(t *testing.T) {
	src := wideEntangleSrc(4) // small and low-degree: statically dense
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	engine := farm.New(0)
	engine.SetMemo(memo.New(64))

	// Statically the program prefers dense.
	plan, err := backend.PlanAuto(prog, qat.Config{Ways: 6, Backend: backend.Auto}, nil)
	if err != nil || plan.Config.Backend != qat.BackendDense {
		t.Fatalf("static plan=%+v err=%v, want dense", plan.Config, err)
	}

	seed, _ := engine.Run(nil, []farm.Job{{Prog: prog, Ways: 6, Backend: qat.BackendRE}})
	if seed[0].Err != nil {
		t.Fatal(seed[0].Err)
	}
	j := farm.Job{Prog: prog, Ways: 6, Backend: backend.Auto}
	res, hit := engine.MemoProbe(&j)
	if !hit {
		t.Fatal("auto probe missed the seeded RE entry")
	}
	if j.Backend != qat.BackendRE || res.Backend != qat.BackendRE {
		t.Fatalf("auto resolved to job=%q result=%q, want re (memoized)", j.Backend, res.Backend)
	}
	if res.Regs != seed[0].Regs || res.Output != seed[0].Output {
		t.Fatal("probe result differs from the seeded run")
	}
}

// TestAutoUnservable asks for a width past every backend: the job must
// fail with backend.UnservableError carrying the profile.
func TestAutoUnservable(t *testing.T) {
	engine := farm.New(0)
	results, _ := engine.Run(nil, []farm.Job{
		{Src: wideEntangleSrc(4), Ways: qat.MaxREWays + 1, Backend: backend.Auto},
	})
	var ue *backend.UnservableError
	if !errors.As(results[0].Err, &ue) {
		t.Fatalf("err=%v, want UnservableError", results[0].Err)
	}
	if ue.Profile == nil || ue.Ways != qat.MaxREWays+1 {
		t.Fatalf("unservable detail: ways=%d profile=%v", ue.Ways, ue.Profile)
	}
}

// TestAutoPipelinedResolvesDense: the pipeline models dense hardware, so
// auto has exactly one answer there and must not be rejected.
func TestAutoPipelinedResolvesDense(t *testing.T) {
	engine := farm.New(0)
	results, _ := engine.Run(nil, []farm.Job{
		{Src: "\tlex $0, 0\n\tsys\n", Mode: farm.Pipelined, Backend: backend.Auto},
	})
	if results[0].Err != nil {
		t.Fatalf("pipelined auto: %v", results[0].Err)
	}
}
