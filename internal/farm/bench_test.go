package farm_test

// BenchmarkFarmThroughput is the farm's reported artifact: jobs/s on the
// paper's two generated workloads (the Figure 10 factoring program and the
// subset-sum search), swept over worker counts 1/2/4/NumCPU. cmd/qatfarm
// -bench runs the same sweep outside the test binary and records it in
// BENCH_farm.json so future changes have a perf trajectory to compare
// against.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/compile"
	"tangled/internal/farm"
	"tangled/internal/obs"
	"tangled/internal/pipeline"
)

// benchBatch is the number of jobs per Engine.Run call: large enough that
// fan-out cost amortizes, small enough that b.N batches stay quick.
const benchBatch = 32

func fig10Jobs(tb testing.TB) []farm.Job {
	res, err := compile.FactorProgram(15, 8, 4, 4, compile.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := asm.Assemble(res.Asm)
	if err != nil {
		tb.Fatal(err)
	}
	jobs := make([]farm.Job, benchBatch)
	for i := range jobs {
		jobs[i] = farm.Job{Name: fmt.Sprintf("factor15-%d", i), Prog: prog,
			Mode: farm.Pipelined, Pipeline: pipeline.StudentConfig()}
	}
	return jobs
}

func subsetSumJobs(tb testing.TB) []farm.Job {
	res, err := compile.SubsetSumProgram([]uint64{3, 5, 9, 14, 20, 27, 33, 41}, 50, 8, compile.Options{Reuse: true})
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := asm.Assemble(res.Asm)
	if err != nil {
		tb.Fatal(err)
	}
	jobs := make([]farm.Job, benchBatch)
	for i := range jobs {
		jobs[i] = farm.Job{Name: fmt.Sprintf("subset-%d", i), Prog: prog,
			Mode: farm.Functional, Ways: 8}
	}
	return jobs
}

func checkFig10(tb testing.TB, results []farm.Result) {
	for i := range results {
		if results[i].Err != nil {
			tb.Fatal(results[i].Err)
		}
		if results[i].Regs[4] != 5 || results[i].Regs[1] != 3 {
			tb.Fatalf("job %d factored 15 as %d x %d", i, results[i].Regs[4], results[i].Regs[1])
		}
	}
}

func workerSweep() []int {
	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		sweep = append(sweep, n)
	}
	return sweep
}

func BenchmarkFarmThroughput(b *testing.B) {
	workloads := []struct {
		name  string
		jobs  []farm.Job
		check func(testing.TB, []farm.Result)
	}{
		{"fig10-factor15", fig10Jobs(b), checkFig10},
		{"subsetsum8", subsetSumJobs(b), nil},
	}
	for _, wl := range workloads {
		for _, workers := range workerSweep() {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.name, workers), func(b *testing.B) {
				engine := farm.New(workers)
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				jobs := 0
				for i := 0; i < b.N; i++ {
					results, _ := engine.Run(ctx, wl.jobs)
					jobs += len(results)
					if wl.check != nil && i == 0 {
						b.StopTimer()
						wl.check(b, results)
						b.StartTimer()
					}
				}
				b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/s")
			})
		}
	}
}

// BenchmarkFarmThroughputObs is BenchmarkFarmThroughput's fig10 workload
// with the full observability hook-up attached (registry, farm Obs, shared
// cpu/qat/pipeline counters). Comparing the two benchmarks measures the
// instrumentation tax; the tentpole's budget is ~5% on throughput with
// metrics on, and zero when off (nil handles, checked by the base
// benchmark staying flat). CI's bench-guard step prints the delta.
func BenchmarkFarmThroughputObs(b *testing.B) {
	jobs := fig10Jobs(b)
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("fig10-factor15/workers=%d", workers), func(b *testing.B) {
			engine := farm.New(workers)
			engine.SetObs(farm.NewObs(obs.NewRegistry()))
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				results, _ := engine.Run(ctx, jobs)
				n += len(results)
				if i == 0 {
					b.StopTimer()
					checkFig10(b, results)
					b.StartTimer()
				}
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkFarmSteadyStateAllocs isolates the pool's effect: after warmup,
// running a batch should allocate only per-job bookkeeping (results,
// buffers), never machine state (the 8-way Qat file alone is 8 KiB x 256
// registers).
func BenchmarkFarmSteadyStateAllocs(b *testing.B) {
	jobs := fig10Jobs(b)
	engine := farm.New(1)
	engine.Run(context.Background(), jobs) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(context.Background(), jobs)
	}
}
