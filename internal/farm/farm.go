// Package farm is a concurrent batch-execution engine for Tangled/Qat
// machines: it fans a queue of independent jobs (assembled program + machine
// configuration) out across a bounded worker pool, reusing the expensive
// per-machine state — the Qat register file (up to 256 x 65,536 bits) and the
// 65,536-word host memory — through sync.Pool so steady-state throughput
// performs no per-job machine allocation.
//
// The paper's PBP model makes each coprocessor run "plain bitwise operations
// over packed words"; the natural unit of parallelism above that SIMD layer
// is the whole coprocessor job, mirroring the host/device split of
// QPU-as-accelerator architectures. Farm jobs therefore never share
// architectural state: every job gets a private machine for its lifetime and
// the machine is fully reset (cpu.Machine.Load) before the next job reuses
// it, so results are bit-identical regardless of worker count or scheduling
// order.
//
// Jobs may run on the functional machine (package cpu) or on a cycle-accurate
// pipeline (package pipeline); results come back in job order with aggregate
// batch statistics (jobs/s, retired instructions, cycles, stalls, pool hit
// rate). Per-job deadlines ride on context.Context and on the MaxSteps
// budget; a timed-out job reports its error without poisoning the pooled
// machine, because the reset-on-load contract does not depend on how the
// previous run ended.
package farm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tangled/internal/asm"
	"tangled/internal/backend"
	"tangled/internal/cpu"
	"tangled/internal/lint"
	"tangled/internal/memo"
	"tangled/internal/obs"
	"tangled/internal/pipeline"
	"tangled/internal/qat"
)

// Mode selects which machine model executes a job.
type Mode uint8

const (
	// Functional runs the instruction-at-a-time reference machine.
	Functional Mode = iota
	// Pipelined runs the cycle-accurate 4/5-stage pipeline model.
	Pipelined
)

// DefaultMaxSteps bounds job execution when Job.MaxSteps is zero. It matches
// the toolchain facade's budget (qasm.MaxSteps).
const DefaultMaxSteps = 50_000_000

// ErrNoProgram is reported by jobs that carry neither source nor an
// assembled program.
var ErrNoProgram = errors.New("farm: job has neither Src nor Prog")

// Job describes one independent Tangled/Qat execution.
type Job struct {
	// Name labels the job in results and logs; purely descriptive.
	Name string

	// Prog is the assembled program. When nil, Src is assembled by the
	// worker instead (sharing one *asm.Program across jobs avoids
	// re-assembly).
	Prog *asm.Program
	// Src is Tangled/Qat assembly source, used when Prog is nil.
	Src string

	// Mode picks the machine model; the zero value is Functional.
	Mode Mode

	// Ways is the Qat entanglement degree for Functional jobs; 0 means the
	// paper's full 16-way hardware. Ignored by Pipelined jobs, whose
	// Pipeline config carries its own Ways. The RE backend accepts up to
	// qat.MaxREWays; the dense backend up to aob.MaxWays.
	Ways int
	// ConstantRegs selects the Section 5 constant-register Qat variant for
	// Functional jobs. Ignored by Pipelined jobs (see pipeline.Config).
	ConstantRegs bool
	// Backend selects the Qat register file for Functional jobs: "" or
	// qat.BackendDense for the AoB file, qat.BackendRE for the compressed
	// one (docs/BACKENDS.md), or backend.Auto to let the static planner
	// pick from the program's profile (Result.Backend reports the choice).
	// Pipelined jobs reject a non-dense backend; auto resolves to dense.
	Backend string
	// REChunkWays is the RE backend's symbol size; 0 means the default
	// (min(Ways, aob.MaxWays)). Ignored by the dense backend.
	REChunkWays int
	// RESpillRuns is the RE backend's spill budget; 0 means
	// qat.DefaultSpillRuns, negative disables spilling. Ignored by the
	// dense backend.
	RESpillRuns int
	// Pipeline configures Pipelined jobs; the zero value means
	// pipeline.DefaultConfig().
	Pipeline pipeline.Config

	// MaxSteps bounds instructions (Functional) or cycles (Pipelined);
	// 0 means DefaultMaxSteps.
	MaxSteps uint64
	// Timeout, when positive, bounds the job's wall-clock time on top of
	// the batch context.
	Timeout time.Duration
	// Ctx, when non-nil, additionally bounds this job alone: the job is
	// cancelled when either the batch context or Ctx is done, and Ctx's
	// deadline (if any) is honored as a real deadline (the job fails with
	// context.DeadlineExceeded, not Canceled). This is how a serving layer
	// propagates per-request deadlines and client disconnects into a batch
	// that coalesces many requests.
	Ctx context.Context
	// TraceTag, when non-empty, is stamped into the Req field of every
	// cycle-trace event this job appends to the engine's shared trace ring
	// (see obs.TagTrace), correlating interleaved rows back to requests.
	TraceTag string

	// Memo, when non-nil, overrides the engine's cache (Engine.SetMemo) for
	// this job. NoMemo opts the job out of memoization entirely: it always
	// executes and its result is never stored. Jobs with an Inspect hook and
	// pipelined jobs feeding a trace ring bypass the cache regardless — both
	// exist to observe a real execution. See memo.go.
	Memo   *memo.Cache
	NoMemo bool

	// Inspect, when non-nil, is called with the machine after the run
	// completes (successfully or not), before the machine returns to the
	// pool. It runs on the worker goroutine and owns the machine only for
	// the duration of the call: implementations must copy anything they
	// want to keep and must not retain the pointer.
	Inspect func(m *cpu.Machine)
}

// Result is the outcome of one job, delivered at the job's queue index.
type Result struct {
	// Job is the index of the job within the batch passed to Run.
	Job int
	// Name echoes Job.Name.
	Name string

	// Regs is the final Tangled register file.
	Regs [16]uint16
	// Output is everything the program printed through sys.
	Output string
	// Insts is the retired instruction count.
	Insts uint64
	// Pipe holds cycle accounting for Pipelined jobs.
	Pipe *pipeline.Stats

	// Duration is the job's wall-clock execution time (including assembly
	// when the job carried source).
	Duration time.Duration
	// Err is the job's failure, if any: assembly errors, budget exhaustion
	// (cpu.ErrNoHalt / pipeline.ErrNoHalt), or context cancellation.
	Err error

	// Cached reports that the result was served from the memo cache (or
	// from an identical in-flight execution) instead of being executed by
	// this job.
	Cached bool

	// Backend is the canonical register-file backend that served a
	// Functional job ("dense"/"re"), after any auto-planning; empty for
	// Pipelined jobs and for jobs whose configuration failed validation.
	Backend string
	// Profile is the static profile the auto-planner derived when the job
	// requested backend.Auto; nil otherwise.
	Profile *lint.Profile
}

// Engine is a reusable batch executor with a bounded worker pool and pooled
// machine state. The zero value is not usable; construct with New. An Engine
// is safe for concurrent use.
type Engine struct {
	workers int

	mu    sync.Mutex
	pools map[poolKey]*machinePool

	totalsMu sync.Mutex
	totals   Stats

	// obs is the optional observability hook-up (see obs.go); atomic so
	// SetObs is safe against in-flight batches.
	obs atomic.Pointer[Obs]

	// memo is the optional engine-wide execution cache (see memo.go);
	// atomic so SetMemo is safe against in-flight batches.
	memo atomic.Pointer[memo.Cache]
}

// New returns an engine running at most workers jobs concurrently;
// workers <= 0 means runtime.GOMAXPROCS(0).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, pools: make(map[poolKey]*machinePool)}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Totals returns lifetime statistics accumulated over every batch this
// engine has run. Wall is the sum of batch wall times, not elapsed time.
func (e *Engine) Totals() Stats {
	e.totalsMu.Lock()
	defer e.totalsMu.Unlock()
	return e.totals
}

// Run executes jobs and returns one Result per job, in job order, plus the
// batch statistics. Per-job failures land in Result.Err, never in a panic or
// a lost slot. When ctx is cancelled mid-batch, jobs not yet started report
// ctx.Err() and in-flight jobs stop at their next cancellation poll; Run
// always drains its workers before returning. A nil ctx means
// context.Background().
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, Stats) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	results := make([]Result, len(jobs))
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	o := e.currentObs()
	if o != nil {
		o.QueueDepth.Add(int64(len(jobs)))
	}
	var bc batchCounters
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = e.runJob(ctx, i, &jobs[i], &bc, o)
				if o != nil {
					o.QueueDepth.Add(-1)
					o.JobsDone.Inc()
					if results[i].Err != nil {
						o.JobErrors.Inc()
					}
					o.JobSeconds.Observe(results[i].Duration.Seconds())
				}
			}
		}()
	}
	fed := len(jobs)
	for i := range jobs {
		select {
		case idx <- i:
			continue
		case <-ctx.Done():
			fed = i
		}
		break
	}
	close(idx)
	wg.Wait()
	for i := fed; i < len(jobs); i++ {
		results[i] = Result{Job: i, Name: jobs[i].Name, Err: ctx.Err()}
		if o != nil {
			o.QueueDepth.Add(-1)
			o.JobsDone.Inc()
			o.JobErrors.Inc()
		}
	}
	if o != nil {
		o.PoolHits.Add(bc.hits.Load())
		o.PoolMisses.Add(bc.misses.Load())
	}

	st := Stats{Workers: workers, Wall: time.Since(start)}
	for i := range results {
		st.Jobs++
		if results[i].Err != nil {
			st.Errors++
		}
		st.Insts += results[i].Insts
		if p := results[i].Pipe; p != nil {
			st.Cycles += p.Cycles
			st.Stalls += p.TotalStalls()
		}
		if results[i].Cached {
			st.MemoHits++
		}
	}
	st.PoolHits = bc.hits.Load()
	st.PoolMisses = bc.misses.Load()

	e.totalsMu.Lock()
	e.totals.accumulate(st)
	e.totalsMu.Unlock()
	return results, st
}

// runJob executes one job on the calling worker goroutine.
func (e *Engine) runJob(ctx context.Context, i int, j *Job, bc *batchCounters, o *Obs) Result {
	res := Result{Job: i, Name: j.Name}
	start := time.Now()
	defer func() { res.Duration = time.Since(start) }()
	if o != nil {
		o.InFlight.Add(1)
		defer o.InFlight.Add(-1)
	}

	prog := j.Prog
	if prog == nil {
		if j.Src == "" {
			res.Err = ErrNoProgram
			return res
		}
		p, err := asm.Assemble(j.Src)
		if err != nil {
			res.Err = err
			return res
		}
		prog = p
	}
	if j.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.Timeout)
		defer cancel()
	}
	if j.Ctx != nil {
		var cancel context.CancelFunc
		ctx, cancel = joinContext(ctx, j.Ctx)
		defer cancel()
	}
	maxSteps := j.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	prof, err := e.resolveAuto(j, prog, maxSteps, o)
	if err != nil {
		res.Err = err
		return res
	}
	res.Profile = prof
	if j.Mode != Pipelined {
		if cfg, cerr := j.qatConfig(); cerr == nil {
			res.Backend = cfg.Backend
		}
	}
	exec := func() {
		if j.Mode == Pipelined {
			e.runPipelined(ctx, j, prog, maxSteps, &res, bc, o)
		} else {
			e.runFunctional(ctx, j, prog, maxSteps, &res, bc, o)
		}
	}
	cache := e.jobCache(j, o)
	if cache == nil {
		exec()
		return res
	}
	entry, cached, err := cache.Do(ctx, jobKey(j, prog, maxSteps), func() memo.Entry {
		exec()
		return memo.Entry{Regs: res.Regs, Output: res.Output, Insts: res.Insts, Pipe: res.Pipe, Err: res.Err}
	})
	if err != nil {
		// The job's context expired while waiting on an identical in-flight
		// execution; surface it exactly like a cancelled run.
		res.Err = err
		return res
	}
	if cached {
		res.Regs, res.Output, res.Insts, res.Pipe, res.Err = entry.Regs, entry.Output, entry.Insts, entry.Pipe, entry.Err
		res.Cached = true
	}
	return res
}

// joinContext derives a context cancelled when either batch or job is done.
// A deadline on job is re-applied as a deadline on the derived context so
// expiry surfaces as context.DeadlineExceeded rather than Canceled.
func joinContext(batch, job context.Context) (context.Context, context.CancelFunc) {
	if d, ok := job.Deadline(); ok {
		var cancel context.CancelFunc
		batch, cancel = context.WithDeadline(batch, d)
		ctx, cancel2 := context.WithCancel(batch)
		// The deadline itself is covered by the WithDeadline clone above (so
		// it surfaces as DeadlineExceeded); the AfterFunc only forwards
		// early cancellation, else it would race the deadline timer and
		// mislabel an expiry as Canceled.
		stop := context.AfterFunc(job, func() {
			if !errors.Is(job.Err(), context.DeadlineExceeded) {
				cancel2()
			}
		})
		return ctx, func() { stop(); cancel2(); cancel() }
	}
	ctx, cancel := context.WithCancel(batch)
	stop := context.AfterFunc(job, cancel)
	return ctx, func() { stop(); cancel() }
}

func (e *Engine) runFunctional(ctx context.Context, j *Job, prog *asm.Program, maxSteps uint64, res *Result, bc *batchCounters, o *Obs) {
	cfg, err := j.qatConfig()
	if err != nil {
		res.Err = err
		return
	}
	pool := e.pool(poolKey{ways: cfg.Ways, constRegs: cfg.ConstantRegs,
		backend: cfg.Backend, chunkWays: cfg.ChunkWays, spillRuns: cfg.SpillRuns})
	var m *cpu.Machine
	if v := pool.get(bc); v != nil {
		m = v.(*cpu.Machine)
	} else {
		m, err = cpu.NewFromConfig(cfg)
		if err != nil {
			bc.unalloc() // nothing was constructed; the miss never became a machine
			res.Err = err
			return
		}
	}
	defer func() {
		// Detach every host-side attachment and restore default hardware
		// identity before the machine returns to the pool: an Inspect hook
		// may have planted a trace hook, an energy meter, an alternate
		// encoding, or the LUT reciprocal datapath, and none of those may
		// follow the machine to its next, unrelated tenant. (The pool key
		// guarantees only ways/constRegs; everything else must be default.)
		m.Out = nil
		m.Trace = nil
		m.Enc = nil
		m.RecipLUT = false
		m.Qat.Meter = nil
		m.AttachMetrics(nil)
		pool.put(m)
	}()

	var out bytes.Buffer
	m.Out = &out
	if o != nil {
		m.AttachMetrics(o.CPU)
	}
	if err := m.Load(prog); err != nil {
		res.Err = err
		return
	}
	err = m.RunContext(ctx, maxSteps)
	res.Regs = m.Regs
	res.Output = out.String()
	res.Insts = m.Stats.Insts
	res.Err = err
	if j.Inspect != nil {
		j.Inspect(m)
	}
}

// qatConfig resolves a Functional job's machine configuration into canonical
// form through the backend registry — defaults made explicit, invalid
// geometry rejected — so equivalent spellings share pool and memo identity.
// The Auto pseudo-backend must already be resolved (resolveAuto); seeing it
// here is a sequencing bug, reported rather than guessed around.
func (j *Job) qatConfig() (qat.Config, error) {
	if j.Backend == backend.Auto {
		return qat.Config{}, fmt.Errorf("farm: backend %q not resolved before execution", backend.Auto)
	}
	return backend.Canonicalize(qat.Config{Ways: j.Ways, ConstantRegs: j.ConstantRegs,
		Backend: j.Backend, ChunkWays: j.REChunkWays, SpillRuns: j.RESpillRuns})
}

func (e *Engine) runPipelined(ctx context.Context, j *Job, prog *asm.Program, maxCycles uint64, res *Result, bc *batchCounters, o *Obs) {
	if j.Backend != "" && j.Backend != qat.BackendDense {
		res.Err = fmt.Errorf("farm: pipelined jobs support only the dense backend (got %q)", j.Backend)
		return
	}
	cfg := j.Pipeline
	if cfg == (pipeline.Config{}) {
		cfg = pipeline.DefaultConfig()
	}
	pool := e.pool(poolKey{pipelined: true, pcfg: cfg})
	var p *pipeline.Pipeline
	if v := pool.get(bc); v != nil {
		p = v.(*pipeline.Pipeline)
	} else {
		var err error
		p, err = pipeline.New(cfg)
		if err != nil {
			bc.unalloc() // nothing was constructed; the miss never became a machine
			res.Err = err
			return
		}
	}
	defer func() {
		// Same scrub as the functional pool, reached through the pipeline's
		// embedded machine: SetTraceRing(nil) clears the cycle-trace sink
		// whether it was attached as a ring or as a tagged sink (both
		// setters assign the same field), and the machine-level attachments
		// an Inspect hook could have planted are detached explicitly.
		p.SetOutput(nil)
		p.SetMetrics(nil)
		p.SetTraceRing(nil)
		m := p.Machine()
		m.Trace = nil
		m.Enc = nil
		m.RecipLUT = false
		m.Qat.Meter = nil
		m.AttachMetrics(nil)
		pool.put(p)
	}()

	var out bytes.Buffer
	p.SetOutput(&out)
	if o != nil {
		p.SetMetrics(o.Pipe)
		if j.TraceTag != "" && o.Trace != nil {
			p.SetTraceSink(obs.TagTrace(o.Trace, j.TraceTag))
		} else {
			p.SetTraceRing(o.Trace)
		}
		p.Machine().AttachMetrics(o.CPU)
	}
	if err := p.Load(prog); err != nil {
		res.Err = err
		return
	}
	err := p.RunContext(ctx, maxCycles)
	stats := p.Stats
	res.Regs = p.Machine().Regs
	res.Output = out.String()
	res.Insts = stats.Insts
	res.Pipe = &stats
	res.Err = err
	if j.Inspect != nil {
		j.Inspect(p.Machine())
	}
}
