package farm_test

// The differential harness: seeded random Tangled+Qat programs executed on
// the functional reference machine, the 4-stage pipeline, the 5-stage
// pipeline, and the farm (all three modes again, through the pooled
// concurrent engine), asserting bit-identical final architectural state.
// This is the verification lens applied to the whole simulator stack: any
// disagreement between the timing models, the reference semantics, or the
// concurrency/pooling layer fails with the offending program attached.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/farm"
	"tangled/internal/isa"
	"tangled/internal/pipeline"
)

// diffPrograms is the size of the random-program corpus; the acceptance
// floor for this harness is 200.
const diffPrograms = 200

// diffWays keeps the Qat register file small (64 channels) so the corpus
// runs in well under a second while still exercising every vector code path
// (the word-packing logic is ways-independent above and below 6 ways).
const diffWays = 6

// diffBudget bounds each run; generated programs retire far fewer
// instructions, so hitting it indicates a generator bug.
const diffBudget = 2_000_000

// progGen emits random but well-behaved Tangled/Qat assembly: every program
// halts (branches are forward or strictly bounded loops), stores land in
// high memory (>= 0x7F00) so code is never self-modified, and sys is only
// issued as print services or the final halt.
type progGen struct {
	r      *rand.Rand
	b      strings.Builder
	labels int
}

func (g *progGen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *progGen) label() string {
	g.labels++
	return fmt.Sprintf("L%d", g.labels)
}

// reg returns a random register number in [1, max]; $0 is reserved for the
// sys service selector so random ALU traffic cannot fake a halt.
func (g *progGen) reg(max int) int { return 1 + g.r.Intn(max) }

func (g *progGen) qreg() int { return g.r.Intn(12) }

// plain emits one instruction with no control flow, using registers up to
// maxReg (loop harnesses shrink the range to protect their counters).
func (g *progGen) plain(maxReg int) {
	switch g.r.Intn(20) {
	case 0:
		g.emit("add $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 1:
		g.emit("and $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 2:
		g.emit("or $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 3:
		g.emit("xor $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 4:
		g.emit("mul $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 5:
		g.emit("slt $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 6:
		g.emit("copy $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 7:
		g.emit("shift $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 8:
		g.emit("not $%d", g.reg(maxReg))
		g.emit("neg $%d", g.reg(maxReg))
	case 9:
		g.emit("lex $%d,%d", g.reg(maxReg), g.r.Intn(256)-128)
	case 10:
		g.emit("lhi $%d,%d", g.reg(maxReg), g.r.Intn(128))
	case 11:
		g.emit("load $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 12:
		// Pin the address register's high byte to 0x7F first: stores stay
		// in [0x7F00, 0x7FFF], far above any generated program image, so
		// code is never modified behind the pipeline's back.
		s := g.reg(maxReg)
		g.emit("lhi $%d,0x7F", s)
		g.emit("store $%d,$%d", g.reg(maxReg), s)
	case 13:
		g.emit("float $%d", g.reg(maxReg))
		g.emit("addf $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 14:
		g.emit("mulf $%d,$%d", g.reg(maxReg), g.reg(maxReg))
		g.emit("int $%d", g.reg(maxReg))
	case 15:
		switch g.r.Intn(5) {
		case 0:
			g.emit("zero @%d", g.qreg())
		case 1:
			g.emit("one @%d", g.qreg())
		case 2:
			g.emit("not @%d", g.qreg())
		case 3:
			g.emit("had @%d,%d", g.qreg(), g.r.Intn(diffWays))
		case 4:
			g.emit("swap @%d,@%d", g.qreg(), g.qreg())
		}
	case 16:
		switch g.r.Intn(3) {
		case 0:
			g.emit("and @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		case 1:
			g.emit("or @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		case 2:
			g.emit("xor @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		}
	case 17:
		switch g.r.Intn(3) {
		case 0:
			g.emit("cnot @%d,@%d", g.qreg(), g.qreg())
		case 1:
			g.emit("ccnot @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		case 2:
			g.emit("cswap @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		}
	case 18:
		switch g.r.Intn(3) {
		case 0:
			g.emit("meas $%d,@%d", g.reg(maxReg), g.qreg())
		case 1:
			g.emit("next $%d,@%d", g.reg(maxReg), g.qreg())
		case 2:
			g.emit("pop $%d,@%d", g.reg(maxReg), g.qreg())
		}
	case 19:
		// Print traffic exercises the sys output path on every model.
		g.emit("lex $0,1")
		g.emit("sys")
	}
}

// branchBlock emits a data-dependent forward branch over a short block.
func (g *progGen) branchBlock() {
	lbl := g.label()
	op := "brt"
	if g.r.Intn(2) == 0 {
		op = "brf"
	}
	g.emit("%s $%d,%s", op, g.reg(9), lbl)
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		g.plain(9)
	}
	g.emit("%s:", lbl)
}

// loopBlock emits a strictly bounded countdown loop: $9 counts down via the
// -1 in $8; the body may only touch $1..$7.
func (g *progGen) loopBlock() {
	lbl := g.label()
	g.emit("lex $8,-1")
	g.emit("lex $9,%d", 2+g.r.Intn(4))
	g.emit("%s:", lbl)
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		g.plain(7)
	}
	g.emit("add $9,$8")
	g.emit("brt $9,%s", lbl)
}

// generate returns one complete random program.
func generate(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	for d := 1; d <= 7; d++ {
		g.emit("lex $%d,%d", d, g.r.Intn(256)-128)
	}
	for i, n := 0, 2+g.r.Intn(3); i < n; i++ {
		g.emit("had @%d,%d", g.qreg(), g.r.Intn(diffWays))
	}
	loops := 0
	for i, n := 0, 25+g.r.Intn(35); i < n; i++ {
		switch {
		case g.r.Intn(8) == 0:
			g.branchBlock()
		case loops < 2 && g.r.Intn(12) == 0:
			loops++
			g.loopBlock()
		default:
			g.plain(9)
		}
	}
	g.emit("lex $0,0")
	g.emit("sys")
	return g.b.String()
}

// machineDigest folds the complete architectural state — memory, all 256
// Qat registers, the Tangled register file and the PC — into one FNV-1a
// fingerprint.
func machineDigest(m *cpu.Machine) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	for _, w := range m.Mem {
		mix(uint64(w))
	}
	for qa := 0; qa < isa.NumQRegs; qa++ {
		v := m.Qat.Reg(uint8(qa))
		for i := 0; i < v.NumWords(); i++ {
			mix(v.Word(i))
		}
	}
	for _, r := range m.Regs {
		mix(uint64(r))
	}
	mix(uint64(m.PC))
	return h
}

// snapshot is everything one execution produced.
type snapshot struct {
	regs   [16]uint16
	output string
	insts  uint64
	digest uint64
}

func runReference(t *testing.T, prog *asm.Program) snapshot {
	t.Helper()
	var out strings.Builder
	m := cpu.New(diffWays)
	m.Out = &out
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(diffBudget); err != nil {
		t.Fatalf("functional run: %v", err)
	}
	return snapshot{regs: m.Regs, output: out.String(), insts: m.Stats.Insts, digest: machineDigest(m)}
}

func runPipe(t *testing.T, prog *asm.Program, cfg pipeline.Config) snapshot {
	t.Helper()
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	p.SetOutput(&out)
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(diffBudget); err != nil {
		t.Fatalf("%d-stage run: %v", cfg.Stages, err)
	}
	return snapshot{regs: p.Machine().Regs, output: out.String(), insts: p.Stats.Insts, digest: machineDigest(p.Machine())}
}

// pipeConfigs returns the two pipeline organizations for corpus index i,
// varying the timing knobs (which must never change semantics) with i.
func pipeConfigs(i int) (p4, p5 pipeline.Config) {
	p4 = pipeline.Config{Stages: 4, Ways: diffWays, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	p5 = pipeline.Config{Stages: 5, Ways: diffWays, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	if i%2 == 0 {
		p4.TwoWordFetchPenalty = true
	}
	if i%3 == 0 {
		p5.Forwarding = false
	}
	if i%5 == 0 {
		p5.MulLatency, p5.QatNextLatency = 3, 2
	}
	return p4, p5
}

// TestDifferentialFunctionalPipelineFarm is the harness's main entry: for
// every corpus program, the functional machine, both pipelines, and the
// farm-executed variants of all three must agree on registers, output,
// retired instruction count, memory and Qat state.
func TestDifferentialFunctionalPipelineFarm(t *testing.T) {
	engine := farm.New(0)
	for i := 0; i < diffPrograms; i++ {
		src := generate(0xDE17 + int64(i))
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("program %d does not assemble: %v\n%s", i, err, src)
		}
		ref := runReference(t, prog)
		p4cfg, p5cfg := pipeConfigs(i)
		snaps := map[string]snapshot{
			"pipe4": runPipe(t, prog, p4cfg),
			"pipe5": runPipe(t, prog, p5cfg),
		}

		digests := make([]uint64, 3)
		jobs := []farm.Job{
			{Name: "farm-func", Prog: prog, Mode: farm.Functional, Ways: diffWays,
				Inspect: func(m *cpu.Machine) { digests[0] = machineDigest(m) }},
			{Name: "farm-pipe4", Prog: prog, Mode: farm.Pipelined, Pipeline: p4cfg,
				Inspect: func(m *cpu.Machine) { digests[1] = machineDigest(m) }},
			{Name: "farm-pipe5", Prog: prog, Mode: farm.Pipelined, Pipeline: p5cfg,
				Inspect: func(m *cpu.Machine) { digests[2] = machineDigest(m) }},
		}
		results, _ := engine.Run(nil, jobs)
		for k, res := range results {
			if res.Err != nil {
				t.Fatalf("program %d, %s: %v\n%s", i, res.Name, res.Err, src)
			}
			snaps[res.Name] = snapshot{regs: res.Regs, output: res.Output, insts: res.Insts, digest: digests[k]}
		}

		for name, s := range snaps {
			if s.regs != ref.regs {
				t.Fatalf("program %d: %s regs %v != functional %v\n%s", i, name, s.regs, ref.regs, src)
			}
			if s.output != ref.output {
				t.Fatalf("program %d: %s output %q != functional %q\n%s", i, name, s.output, ref.output, src)
			}
			if s.insts != ref.insts {
				t.Fatalf("program %d: %s retired %d != functional %d\n%s", i, name, s.insts, ref.insts, src)
			}
			if s.digest != ref.digest {
				t.Fatalf("program %d: %s memory/Qat state diverged from functional\n%s", i, name, src)
			}
		}
	}
}
