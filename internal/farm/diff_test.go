package farm_test

// The differential harness: seeded random Tangled+Qat programs (the shared
// corpus in internal/farm/farmtest) executed on the functional reference
// machine, the 4-stage pipeline, the 5-stage pipeline, and the farm (all
// three modes again, through the pooled concurrent engine), asserting
// bit-identical final architectural state. This is the verification lens
// applied to the whole simulator stack: any disagreement between the timing
// models, the reference semantics, or the concurrency/pooling layer fails
// with the offending program attached. internal/server extends the same
// corpus over HTTP (its diff test compares server responses against direct
// batch execution).

import (
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/farm"
	"tangled/internal/farm/farmtest"
	"tangled/internal/isa"
	"tangled/internal/pipeline"
)

const (
	diffPrograms = farmtest.Programs
	diffWays     = farmtest.Ways
	diffBudget   = farmtest.Budget
)

// machineDigest folds the complete architectural state — memory, all 256
// Qat registers, the Tangled register file and the PC — into one FNV-1a
// fingerprint.
func machineDigest(m *cpu.Machine) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	for _, w := range m.Mem {
		mix(uint64(w))
	}
	for qa := 0; qa < isa.NumQRegs; qa++ {
		v := m.Qat.Reg(uint8(qa))
		for i := 0; i < v.NumWords(); i++ {
			mix(v.Word(i))
		}
	}
	for _, r := range m.Regs {
		mix(uint64(r))
	}
	mix(uint64(m.PC))
	return h
}

// snapshot is everything one execution produced.
type snapshot struct {
	regs   [16]uint16
	output string
	insts  uint64
	digest uint64
}

func runReference(t *testing.T, prog *asm.Program) snapshot {
	t.Helper()
	var out strings.Builder
	m := cpu.New(diffWays)
	m.Out = &out
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(diffBudget); err != nil {
		t.Fatalf("functional run: %v", err)
	}
	return snapshot{regs: m.Regs, output: out.String(), insts: m.Stats.Insts, digest: machineDigest(m)}
}

func runPipe(t *testing.T, prog *asm.Program, cfg pipeline.Config) snapshot {
	t.Helper()
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	p.SetOutput(&out)
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(diffBudget); err != nil {
		t.Fatalf("%d-stage run: %v", cfg.Stages, err)
	}
	return snapshot{regs: p.Machine().Regs, output: out.String(), insts: p.Stats.Insts, digest: machineDigest(p.Machine())}
}

// pipeConfigs returns the two pipeline organizations for corpus index i,
// varying the timing knobs (which must never change semantics) with i.
func pipeConfigs(i int) (p4, p5 pipeline.Config) {
	p4 = pipeline.Config{Stages: 4, Ways: diffWays, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	p5 = pipeline.Config{Stages: 5, Ways: diffWays, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	if i%2 == 0 {
		p4.TwoWordFetchPenalty = true
	}
	if i%3 == 0 {
		p5.Forwarding = false
	}
	if i%5 == 0 {
		p5.MulLatency, p5.QatNextLatency = 3, 2
	}
	return p4, p5
}

// TestDifferentialFunctionalPipelineFarm is the harness's main entry: for
// every corpus program, the functional machine, both pipelines, and the
// farm-executed variants of all three must agree on registers, output,
// retired instruction count, memory and Qat state.
func TestDifferentialFunctionalPipelineFarm(t *testing.T) {
	engine := farm.New(0)
	for i := 0; i < diffPrograms; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("program %d does not assemble: %v\n%s", i, err, src)
		}
		ref := runReference(t, prog)
		p4cfg, p5cfg := pipeConfigs(i)
		snaps := map[string]snapshot{
			"pipe4": runPipe(t, prog, p4cfg),
			"pipe5": runPipe(t, prog, p5cfg),
		}

		digests := make([]uint64, 3)
		jobs := []farm.Job{
			{Name: "farm-func", Prog: prog, Mode: farm.Functional, Ways: diffWays,
				Inspect: func(m *cpu.Machine) { digests[0] = machineDigest(m) }},
			{Name: "farm-pipe4", Prog: prog, Mode: farm.Pipelined, Pipeline: p4cfg,
				Inspect: func(m *cpu.Machine) { digests[1] = machineDigest(m) }},
			{Name: "farm-pipe5", Prog: prog, Mode: farm.Pipelined, Pipeline: p5cfg,
				Inspect: func(m *cpu.Machine) { digests[2] = machineDigest(m) }},
		}
		results, _ := engine.Run(nil, jobs)
		for k, res := range results {
			if res.Err != nil {
				t.Fatalf("program %d, %s: %v\n%s", i, res.Name, res.Err, src)
			}
			snaps[res.Name] = snapshot{regs: res.Regs, output: res.Output, insts: res.Insts, digest: digests[k]}
		}

		for name, s := range snaps {
			if s.regs != ref.regs {
				t.Fatalf("program %d: %s regs %v != functional %v\n%s", i, name, s.regs, ref.regs, src)
			}
			if s.output != ref.output {
				t.Fatalf("program %d: %s output %q != functional %q\n%s", i, name, s.output, ref.output, src)
			}
			if s.insts != ref.insts {
				t.Fatalf("program %d: %s retired %d != functional %d\n%s", i, name, s.insts, ref.insts, src)
			}
			if s.digest != ref.digest {
				t.Fatalf("program %d: %s memory/Qat state diverged from functional\n%s", i, name, src)
			}
		}
	}
}
