package farm

// Engine-level observability: queue/in-flight gauges, pool traffic
// counters, a per-job latency histogram, and the shared machine-level
// counter sets (cpu/qat/pipeline) that get attached to every pooled machine
// for the duration of its job. One Obs aggregates across all workers of all
// batches — the handles are atomic — so a farm under load exports exactly
// the per-opcode/per-stage view a single instrumented machine would,
// summed over the fleet.

import (
	"tangled/internal/cpu"
	"tangled/internal/obs"
	"tangled/internal/pipeline"
)

// jobLatencyBuckets spans assembly-included job times from microseconds
// (tiny functional programs) to the tens of seconds of deep factoring runs.
var jobLatencyBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30,
}

// Obs is the engine's observability hook-up; construct with NewObs and
// attach with Engine.SetObs. A nil Obs (or nil registry) disables
// everything.
type Obs struct {
	// QueueDepth is the number of jobs of the current batch not yet
	// finished (queued + running); InFlight the jobs executing right now.
	QueueDepth, InFlight *obs.Gauge
	// JobsDone counts completed jobs, JobErrors the subset that failed.
	JobsDone, JobErrors *obs.Counter
	// PoolHits/PoolMisses mirror Stats pool accounting as live counters.
	PoolHits, PoolMisses *obs.Counter
	// JobSeconds is the per-job wall-clock latency distribution, assembly
	// included.
	JobSeconds *obs.Histogram

	// CPU (with its embedded Qat set) and Pipe are attached to every
	// machine the engine runs, pooled or fresh, for the duration of a job.
	CPU  *cpu.Metrics
	Pipe *pipeline.Metrics

	// Trace, when non-nil, receives the cycle trace of every pipelined job
	// (rows from concurrent jobs interleave; the ring is goroutine-safe).
	Trace *obs.TraceRing
}

// NewObs registers the farm metric set on r, or returns nil when r is nil.
func NewObs(r *obs.Registry) *Obs {
	if r == nil {
		return nil
	}
	return &Obs{
		QueueDepth: r.Gauge("farm_queue_depth", "jobs of the current batch not yet finished"),
		InFlight:   r.Gauge("farm_jobs_in_flight", "jobs executing right now"),
		JobsDone:   r.Counter("farm_jobs_done_total", "completed jobs"),
		JobErrors:  r.Counter("farm_job_errors_total", "jobs that finished with an error"),
		PoolHits:   r.Counter("farm_pool_hits_total", "jobs served by a recycled machine"),
		PoolMisses: r.Counter("farm_pool_misses_total", "jobs that allocated a machine"),
		JobSeconds: r.Histogram("farm_job_seconds", "per-job wall-clock latency", jobLatencyBuckets),
		CPU:        cpu.NewMetrics(r),
		Pipe:       pipeline.NewMetrics(r),
	}
}

// SetObs attaches (or with nil detaches) the engine's observability
// hook-up. Safe to call concurrently with Run; batches pick up the value
// current when they start a job.
func (e *Engine) SetObs(o *Obs) { e.obs.Store(o) }

// currentObs returns the attachment, nil when disabled.
func (e *Engine) currentObs() *Obs { return e.obs.Load() }
