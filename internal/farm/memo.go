package farm

// Memoization hook-up: the engine can carry a content-addressed execution
// cache (internal/memo) consulted by every worker before running a job.
// Qat execution is deterministic and every job starts from the same
// zero-initialized machine state (cpu.Machine.Load), so a job's outcome is
// a pure function of (mode, machine configuration, step budget, program
// words) — exactly what memo.ExecKey hashes. Workers that miss execute and
// populate the cache; identical jobs running concurrently collapse onto one
// execution through the cache's singleflight.
//
// Two kinds of jobs must see a real machine and therefore bypass the cache:
// jobs with an Inspect hook (they observe post-run machine state) and
// pipelined jobs while a trace ring is attached (their value is the
// cycle-by-cycle rows, which a cache hit would not emit). Job.NoMemo is the
// caller-controlled opt-out for everything else.

import (
	"tangled/internal/asm"
	"tangled/internal/memo"
	"tangled/internal/pipeline"
	"tangled/internal/qat"
)

// SetMemo attaches (or with nil detaches) the engine-wide execution cache.
// Safe to call concurrently with Run; jobs pick up the value current when
// they start. A job's own Memo field, when set, takes precedence.
func (e *Engine) SetMemo(c *memo.Cache) { e.memo.Store(c) }

// Memo returns the engine-wide cache, nil when disabled.
func (e *Engine) Memo() *memo.Cache { return e.memo.Load() }

// jobCache resolves the cache a job should consult: the job's own handle,
// else the engine's, else nil; nil also for jobs that must execute for
// real (NoMemo, Inspect, pipelined trace capture).
func (e *Engine) jobCache(j *Job, o *Obs) *memo.Cache {
	c := j.Memo
	if c == nil {
		c = e.memo.Load()
	}
	if c == nil || j.NoMemo || j.Inspect != nil {
		return nil
	}
	if j.Mode == Pipelined && o != nil && o.Trace != nil {
		return nil
	}
	return c
}

// jobKey derives the job's content address from its resolved program and
// budget, normalizing defaults (ways 0, zero pipeline config) so equivalent
// spellings share an entry.
func jobKey(j *Job, prog *asm.Program, maxSteps uint64) memo.Key {
	ek := memo.ExecKey{MaxSteps: maxSteps, Words: prog.Words}
	if j.Mode == Pipelined {
		ek.Pipelined = true
		cfg := j.Pipeline
		if cfg == (pipeline.Config{}) {
			cfg = pipeline.DefaultConfig()
		}
		ek.Pipeline = cfg
	} else {
		// qatConfig resolves every default (ways 0, backend "", chunk/spill
		// zeros), so equivalent spellings hash identically. Invalid configs
		// still key consistently; the execution path reports their error.
		cfg, _ := j.qatConfig()
		ek.Ways = cfg.Ways
		ek.ConstantRegs = cfg.ConstantRegs
		if cfg.Backend == qat.BackendRE {
			ek.Backend = 1
			ek.REChunkWays = uint8(cfg.ChunkWays)
			ek.RESpillRuns = int32(cfg.SpillRuns)
		}
	}
	return ek.Sum()
}

// MemoKey exposes j's content address to serving layers that need to
// populate the cache under the job's *original* identity while executing
// a rewritten image (the optimize-at-admission path: the memo key must
// stay the submitted program so later submissions of the same source hit,
// whatever the optimizer did to the executed words). Returns false when
// the job would bypass the cache (NoMemo, Inspect, traced pipelined runs,
// no cache attached) or has no resolved program; when j carries source it
// is assembled and stored back into j.Prog, like MemoProbe.
func (e *Engine) MemoKey(j *Job) (memo.Key, bool) {
	if e.jobCache(j, e.currentObs()) == nil {
		return memo.Key{}, false
	}
	if j.Prog == nil {
		if j.Src == "" {
			return memo.Key{}, false
		}
		p, err := asm.Assemble(j.Src)
		if err != nil {
			return memo.Key{}, false
		}
		j.Prog = p
	}
	maxSteps := j.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	if _, err := e.resolveAuto(j, j.Prog, maxSteps, e.currentObs()); err != nil {
		return memo.Key{}, false
	}
	return jobKey(j, j.Prog, maxSteps), true
}

// MemoProbe checks whether j's result is already cached, without executing
// anything or touching the worker pool. On a hit it returns the finished
// Result (Cached set, Job index zero — the caller owns placement). Serving
// layers call this before admission control so cache hits never consume an
// admission slot or batching latency. When j carries source, the probe
// assembles it and stores the program back into j.Prog, so a subsequent
// real run does not re-assemble; assembly errors report as a miss and
// surface through the normal execution path.
func (e *Engine) MemoProbe(j *Job) (Result, bool) {
	c := e.jobCache(j, e.currentObs())
	if c == nil {
		return Result{}, false
	}
	if j.Prog == nil {
		if j.Src == "" {
			return Result{}, false
		}
		p, err := asm.Assemble(j.Src)
		if err != nil {
			return Result{}, false
		}
		j.Prog = p
	}
	maxSteps := j.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	// An auto job must resolve to a concrete backend before keying: a key
	// over the unresolved pseudo-name would alias the dense spelling. The
	// resolution is sticky (written back into j) so a subsequent real run
	// executes exactly the identity probed here. Planner failures
	// (unservable width) report as a miss and surface on the run path.
	if _, err := e.resolveAuto(j, j.Prog, maxSteps, e.currentObs()); err != nil {
		return Result{}, false
	}
	ent, ok := c.Get(jobKey(j, j.Prog, maxSteps))
	if !ok {
		return Result{}, false
	}
	res := Result{
		Name:   j.Name,
		Regs:   ent.Regs,
		Output: ent.Output,
		Insts:  ent.Insts,
		Pipe:   ent.Pipe,
		Err:    ent.Err,
		Cached: true,
	}
	if j.Mode != Pipelined {
		if cfg, err := j.qatConfig(); err == nil {
			res.Backend = cfg.Backend
		}
	}
	return res, true
}
