//go:build !race

package farm_test

// raceEnabled reports whether the race detector is active. Under -race the
// runtime deliberately randomizes sync.Pool retention to expose misuse, so
// exact pool hit/miss assertions only hold without it.
const raceEnabled = false
