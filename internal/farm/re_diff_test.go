package farm_test

// The differential harness extended to the RE backend: the same seeded
// corpus (internal/farm/farmtest) executed through the farm on the
// run-encoded register file — at several chunk/spill geometries — must
// reproduce the functional reference bit-for-bit: registers, output,
// retired instructions, and the full memory + Qat state digest. This is the
// acceptance gate for promoting internal/re from a library to an execution
// backend.

import (
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/farm"
	"tangled/internal/farm/farmtest"
)

// TestDifferentialREBackend runs every corpus program on the RE backend and
// compares against the functional reference. The chunk/spill geometry is
// varied with the corpus index so full-width chunks, multi-run patterns,
// and the spill path all see the whole corpus over a run.
func TestDifferentialREBackend(t *testing.T) {
	engine := farm.New(0)
	for i := 0; i < diffPrograms; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("program %d does not assemble: %v\n%s", i, err, src)
		}
		ref := runReference(t, prog)

		// Three geometries: full-width chunks (single-run symbols), halved
		// chunks (real run structure), and halved chunks with a spill budget
		// of one (the spill path on almost every write).
		jobs := []farm.Job{
			{Name: "re-full", Prog: prog, Mode: farm.Functional, Ways: diffWays,
				Backend: "re"},
			{Name: "re-chunked", Prog: prog, Mode: farm.Functional, Ways: diffWays,
				Backend: "re", REChunkWays: diffWays / 2, RESpillRuns: -1},
			{Name: "re-spill", Prog: prog, Mode: farm.Functional, Ways: diffWays,
				Backend: "re", REChunkWays: diffWays / 2, RESpillRuns: 1},
		}
		digests := make([]uint64, len(jobs))
		for k := range jobs {
			k := k
			jobs[k].Inspect = func(m *cpu.Machine) { digests[k] = machineDigest(m) }
		}
		results, _ := engine.Run(nil, jobs)
		for k, res := range results {
			if res.Err != nil {
				t.Fatalf("program %d, %s: %v\n%s", i, res.Name, res.Err, src)
			}
			if res.Regs != ref.regs {
				t.Fatalf("program %d: %s regs %v != functional %v\n%s", i, res.Name, res.Regs, ref.regs, src)
			}
			if res.Output != ref.output {
				t.Fatalf("program %d: %s output %q != functional %q\n%s", i, res.Name, res.Output, ref.output, src)
			}
			if res.Insts != ref.insts {
				t.Fatalf("program %d: %s retired %d != functional %d\n%s", i, res.Name, res.Insts, ref.insts, src)
			}
			if digests[k] != ref.digest {
				t.Fatalf("program %d: %s memory/Qat state diverged from functional\n%s", i, res.Name, src)
			}
		}
	}
}
