// Package farmtest generates the shared random-program corpus used by the
// differential test harnesses: seeded, well-behaved Tangled/Qat assembly
// whose execution is identical on every machine model, every farm
// configuration, and (via internal/server) over HTTP. Simulator production
// code must not import it; it lives outside _test files only so several
// packages' tests — and the qatclient load generator, which replays the
// same corpus against a live server — can share one corpus, with any
// divergence traceable to a single seed.
package farmtest

import (
	"fmt"
	"math/rand"
	"strings"
)

// Programs is the corpus size the differential harnesses iterate; the
// acceptance floor for the harness is 200.
const Programs = 200

// Ways keeps the Qat register file small (64 channels) so the corpus runs
// in well under a second while still exercising every vector code path (the
// word-packing logic is ways-independent above and below 6 ways).
const Ways = 6

// Budget bounds each run; generated programs retire far fewer instructions,
// so hitting it indicates a generator bug.
const Budget = 2_000_000

// Seed maps corpus index i to its generator seed, so every harness runs the
// byte-identical program set.
func Seed(i int) int64 { return 0xDE17 + int64(i) }

// progGen emits random but well-behaved Tangled/Qat assembly: every program
// halts (branches are forward or strictly bounded loops), stores land in
// high memory (>= 0x7F00) so code is never self-modified, and sys is only
// issued as print services or the final halt.
type progGen struct {
	r      *rand.Rand
	b      strings.Builder
	labels int
}

func (g *progGen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *progGen) label() string {
	g.labels++
	return fmt.Sprintf("L%d", g.labels)
}

// reg returns a random register number in [1, max]; $0 is reserved for the
// sys service selector so random ALU traffic cannot fake a halt.
func (g *progGen) reg(max int) int { return 1 + g.r.Intn(max) }

func (g *progGen) qreg() int { return g.r.Intn(12) }

// plain emits one instruction with no control flow, using registers up to
// maxReg (loop harnesses shrink the range to protect their counters).
func (g *progGen) plain(maxReg int) {
	switch g.r.Intn(20) {
	case 0:
		g.emit("add $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 1:
		g.emit("and $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 2:
		g.emit("or $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 3:
		g.emit("xor $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 4:
		g.emit("mul $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 5:
		g.emit("slt $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 6:
		g.emit("copy $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 7:
		g.emit("shift $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 8:
		g.emit("not $%d", g.reg(maxReg))
		g.emit("neg $%d", g.reg(maxReg))
	case 9:
		g.emit("lex $%d,%d", g.reg(maxReg), g.r.Intn(256)-128)
	case 10:
		g.emit("lhi $%d,%d", g.reg(maxReg), g.r.Intn(128))
	case 11:
		g.emit("load $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 12:
		// Pin the address register's high byte to 0x7F first: stores stay
		// in [0x7F00, 0x7FFF], far above any generated program image, so
		// code is never modified behind the pipeline's back.
		s := g.reg(maxReg)
		g.emit("lhi $%d,0x7F", s)
		g.emit("store $%d,$%d", g.reg(maxReg), s)
	case 13:
		g.emit("float $%d", g.reg(maxReg))
		g.emit("addf $%d,$%d", g.reg(maxReg), g.reg(maxReg))
	case 14:
		g.emit("mulf $%d,$%d", g.reg(maxReg), g.reg(maxReg))
		g.emit("int $%d", g.reg(maxReg))
	case 15:
		switch g.r.Intn(5) {
		case 0:
			g.emit("zero @%d", g.qreg())
		case 1:
			g.emit("one @%d", g.qreg())
		case 2:
			g.emit("not @%d", g.qreg())
		case 3:
			g.emit("had @%d,%d", g.qreg(), g.r.Intn(Ways))
		case 4:
			g.emit("swap @%d,@%d", g.qreg(), g.qreg())
		}
	case 16:
		switch g.r.Intn(3) {
		case 0:
			g.emit("and @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		case 1:
			g.emit("or @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		case 2:
			g.emit("xor @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		}
	case 17:
		switch g.r.Intn(3) {
		case 0:
			g.emit("cnot @%d,@%d", g.qreg(), g.qreg())
		case 1:
			g.emit("ccnot @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		case 2:
			g.emit("cswap @%d,@%d,@%d", g.qreg(), g.qreg(), g.qreg())
		}
	case 18:
		switch g.r.Intn(3) {
		case 0:
			g.emit("meas $%d,@%d", g.reg(maxReg), g.qreg())
		case 1:
			g.emit("next $%d,@%d", g.reg(maxReg), g.qreg())
		case 2:
			g.emit("pop $%d,@%d", g.reg(maxReg), g.qreg())
		}
	case 19:
		// Print traffic exercises the sys output path on every model.
		g.emit("lex $0,1")
		g.emit("sys")
	}
}

// branchBlock emits a data-dependent forward branch over a short block.
func (g *progGen) branchBlock() {
	lbl := g.label()
	op := "brt"
	if g.r.Intn(2) == 0 {
		op = "brf"
	}
	g.emit("%s $%d,%s", op, g.reg(9), lbl)
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		g.plain(9)
	}
	g.emit("%s:", lbl)
}

// loopBlock emits a strictly bounded countdown loop: $9 counts down via the
// -1 in $8; the body may only touch $1..$7.
func (g *progGen) loopBlock() {
	lbl := g.label()
	g.emit("lex $8,-1")
	g.emit("lex $9,%d", 2+g.r.Intn(4))
	g.emit("%s:", lbl)
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		g.plain(7)
	}
	g.emit("add $9,$8")
	g.emit("brt $9,%s", lbl)
}

// Generate returns one complete random program for seed.
func Generate(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	for d := 1; d <= 7; d++ {
		g.emit("lex $%d,%d", d, g.r.Intn(256)-128)
	}
	for i, n := 0, 2+g.r.Intn(3); i < n; i++ {
		g.emit("had @%d,%d", g.qreg(), g.r.Intn(Ways))
	}
	loops := 0
	for i, n := 0, 25+g.r.Intn(35); i < n; i++ {
		switch {
		case g.r.Intn(8) == 0:
			g.branchBlock()
		case loops < 2 && g.r.Intn(12) == 0:
			loops++
			g.loopBlock()
		default:
			g.plain(9)
		}
	}
	g.emit("lex $0,0")
	g.emit("sys")
	return g.b.String()
}
