package farm

import (
	"fmt"
	"time"
)

// Stats aggregates one batch (Engine.Run) or an engine lifetime
// (Engine.Totals).
type Stats struct {
	// Jobs is the number of jobs submitted; Errors how many failed.
	Jobs, Errors uint64
	// Insts is the total retired instruction count across jobs.
	Insts uint64
	// Cycles and Stalls total the pipeline accounting of Pipelined jobs
	// (zero for purely functional batches).
	Cycles, Stalls uint64
	// PoolHits counts jobs served by a recycled machine; PoolMisses jobs
	// that had to allocate one. At steady state misses stay flat: no run
	// beyond the first |workers| allocates machine state.
	PoolHits, PoolMisses uint64
	// MemoHits counts jobs served from the memo cache (including jobs
	// collapsed onto an identical in-flight execution) without running.
	MemoHits uint64
	// Wall is the batch wall-clock time (for Totals: the sum over batches).
	Wall time.Duration
	// Workers is the concurrency the batch actually used.
	Workers int
}

// JobsPerSec is the batch throughput figure of merit.
func (s Stats) JobsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Jobs) / s.Wall.Seconds()
}

// PoolHitRate is the fraction of jobs served without allocating a machine.
func (s Stats) PoolHitRate() float64 {
	total := s.PoolHits + s.PoolMisses
	if total == 0 {
		return 0
	}
	return float64(s.PoolHits) / float64(total)
}

// String renders the one-line summary printed by cmd/qatfarm. The memo
// figure only appears when memoization served at least one job, so
// memo-less runs keep their historical format.
func (s Stats) String() string {
	line := fmt.Sprintf("farm: %d jobs (%d failed) on %d workers in %v: %.1f jobs/s, %d insts, %d cycles, %d stalls, pool hit rate %.0f%%",
		s.Jobs, s.Errors, s.Workers, s.Wall.Round(time.Millisecond),
		s.JobsPerSec(), s.Insts, s.Cycles, s.Stalls, 100*s.PoolHitRate())
	if s.MemoHits > 0 {
		line += fmt.Sprintf(", memo hits %d", s.MemoHits)
	}
	return line
}

// accumulate folds a batch into lifetime totals.
func (s *Stats) accumulate(b Stats) {
	s.Jobs += b.Jobs
	s.Errors += b.Errors
	s.Insts += b.Insts
	s.Cycles += b.Cycles
	s.Stalls += b.Stalls
	s.PoolHits += b.PoolHits
	s.PoolMisses += b.PoolMisses
	s.MemoHits += b.MemoHits
	s.Wall += b.Wall
	if b.Workers > s.Workers {
		s.Workers = b.Workers
	}
}
