package farm_test

// Metrics-consistency property test: the observability counters are a second
// witness of execution, so over the same seeded random-program corpus as the
// differential harness (diff_test.go) they must agree EXACTLY — with the
// Stats structs they refine and with each other across execution modes.
// For every corpus program:
//
//   - functional, 4-stage and 5-stage instrumented runs must count the same
//     instruction mix (per-opcode retire counters) and the same Qat work
//     (per-op and AoB word-op counters) as the functional reference;
//   - each pipeline's counter set must mirror its own Stats field for field
//     (cycles, retired, stall causes, flushes);
//   - the farm, running all three modes through shared atomic handles, must
//     report exactly the sum of what the standalone runs counted.
//
// A drift here means instrumentation is lying about the machine it watches,
// even if architectural state still agrees.

import (
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/farm"
	"tangled/internal/farm/farmtest"
	"tangled/internal/isa"
	"tangled/internal/obs"
	"tangled/internal/pipeline"
)

// obsDiffPrograms trims the corpus for the instrumented pass: each program
// runs four more times with registries attached, and a quarter of the
// corpus already covers every generator production.
const obsDiffPrograms = 50

// counts is the flat counter view this test compares across modes.
type counts struct {
	retired  uint64 // cpu_op_retired_total summed over opcodes
	perOp    [64]uint64
	qatOps   uint64 // qat_op_executed_total summed
	wordOps  uint64 // qat_aob_word_ops_total
	insts    uint64 // Stats.Insts of the run itself
	qatInsts uint64 // Stats.QatInsts
}

func collectCounts(m *cpu.Metrics, insts, qatInsts uint64) counts {
	var c counts
	c.insts, c.qatInsts = insts, qatInsts
	for op := 0; op < isa.NumOps; op++ {
		v := m.OpRetired.At(op).Value()
		c.perOp[op] = v
		c.retired += v
	}
	c.qatOps = m.Qat.Ops.Total()
	c.wordOps = m.Qat.WordOps.Value()
	return c
}

// runFunctionalObs executes prog on an instrumented functional machine.
func runFunctionalObs(t *testing.T, prog *asm.Program) counts {
	t.Helper()
	reg := obs.NewRegistry()
	mm := cpu.NewMetrics(reg)
	m := cpu.New(diffWays)
	var out strings.Builder
	m.Out = &out
	m.AttachMetrics(mm)
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(diffBudget); err != nil {
		t.Fatal(err)
	}
	return collectCounts(mm, m.Stats.Insts, m.Stats.QatInsts)
}

// runPipeObs executes prog on an instrumented pipeline and cross-checks the
// pipeline counter family against the pipeline's own Stats.
func runPipeObs(t *testing.T, prog *asm.Program, cfg pipeline.Config) counts {
	t.Helper()
	reg := obs.NewRegistry()
	mm := cpu.NewMetrics(reg)
	pm := pipeline.NewMetrics(reg)
	p, err := pipeline.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	p.SetOutput(&out)
	p.SetMetrics(pm)
	p.Machine().AttachMetrics(mm)
	if err := p.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(diffBudget); err != nil {
		t.Fatalf("%d-stage run: %v", cfg.Stages, err)
	}

	s := p.Stats
	if got := pm.Cycles.Value(); got != s.Cycles {
		t.Errorf("%d-stage: pipeline_cycles_total %d != Stats.Cycles %d", cfg.Stages, got, s.Cycles)
	}
	if got := pm.Retired.Value(); got != s.Insts {
		t.Errorf("%d-stage: pipeline_insts_retired_total %d != Stats.Insts %d", cfg.Stages, got, s.Insts)
	}
	if got := pm.BranchFlushes.Value(); got != s.BranchFlushes {
		t.Errorf("%d-stage: pipeline_branch_flushes_total %d != Stats.BranchFlushes %d", cfg.Stages, got, s.BranchFlushes)
	}
	wantStalls := []uint64{s.LoadUseStalls, s.RawStalls, s.ExBusyStalls, s.FetchStalls, s.FlushCycles}
	for i, want := range wantStalls {
		if got := pm.Stalls.At(i).Value(); got != want {
			t.Errorf("%d-stage: stall cause %d counter %d != Stats field %d", cfg.Stages, i, got, want)
		}
	}
	if got, want := pm.Stalls.Total(), s.TotalStalls(); got != want {
		t.Errorf("%d-stage: stall counter total %d != Stats.TotalStalls %d", cfg.Stages, got, want)
	}
	return collectCounts(mm, s.Insts, p.Machine().Stats.QatInsts)
}

func checkCounts(t *testing.T, i int, name string, got, ref counts, src string) {
	t.Helper()
	if got.retired != got.insts {
		t.Errorf("program %d: %s retire counter %d != its own Stats.Insts %d\n%s", i, name, got.retired, got.insts, src)
	}
	if got.qatOps != got.qatInsts {
		t.Errorf("program %d: %s qat op counter %d != its own Stats.QatInsts %d\n%s", i, name, got.qatOps, got.qatInsts, src)
	}
	if got.perOp != ref.perOp {
		t.Errorf("program %d: %s per-opcode retire counts diverge from functional\n%s", i, name, src)
	}
	if got.wordOps != ref.wordOps {
		t.Errorf("program %d: %s AoB word-ops %d != functional %d\n%s", i, name, got.wordOps, ref.wordOps, src)
	}
}

// TestMetricsConsistencyAcrossModes is the harness entry: counters from the
// functional machine, both pipelines, and a farm running all three must
// agree exactly, program by program and summed over the corpus.
func TestMetricsConsistencyAcrossModes(t *testing.T) {
	freg := obs.NewRegistry()
	fo := farm.NewObs(freg)
	engine := farm.New(0)
	engine.SetObs(fo)

	var want counts // expected farm aggregate: 3x each program's functional counts, pipeline-adjusted
	var wantCycles, wantRetired uint64
	var jobsRun uint64
	for i := 0; i < obsDiffPrograms; i++ {
		src := farmtest.Generate(farmtest.Seed(i)) // same corpus as diff_test.go
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("program %d does not assemble: %v\n%s", i, err, src)
		}
		ref := runFunctionalObs(t, prog)
		checkCounts(t, i, "functional", ref, ref, src)
		p4cfg, p5cfg := pipeConfigs(i)
		c4 := runPipeObs(t, prog, p4cfg)
		checkCounts(t, i, "pipe4", c4, ref, src)
		c5 := runPipeObs(t, prog, p5cfg)
		checkCounts(t, i, "pipe5", c5, ref, src)

		// The farm runs the same three modes through one shared counter set.
		jobs := []farm.Job{
			{Name: "farm-func", Prog: prog, Mode: farm.Functional, Ways: diffWays},
			{Name: "farm-pipe4", Prog: prog, Mode: farm.Pipelined, Pipeline: p4cfg},
			{Name: "farm-pipe5", Prog: prog, Mode: farm.Pipelined, Pipeline: p5cfg},
		}
		results, _ := engine.Run(nil, jobs)
		for _, res := range results {
			if res.Err != nil {
				t.Fatalf("program %d, %s: %v\n%s", i, res.Name, res.Err, src)
			}
			if res.Pipe != nil {
				wantCycles += res.Pipe.Cycles
			}
		}
		jobsRun += uint64(len(jobs))
		for op := range want.perOp {
			want.perOp[op] += ref.perOp[op] + c4.perOp[op] + c5.perOp[op]
		}
		want.retired += ref.retired + c4.retired + c5.retired
		want.qatOps += ref.qatOps + c4.qatOps + c5.qatOps
		want.wordOps += ref.wordOps + c4.wordOps + c5.wordOps
		wantRetired += c4.insts + c5.insts
		if t.Failed() {
			t.FailNow()
		}
	}

	// Fleet-wide aggregation: the farm's shared handles must hold exactly
	// the sum of the standalone instrumented runs.
	got := collectCounts(fo.CPU, 0, 0)
	if got.perOp != want.perOp {
		for op := 0; op < isa.NumOps; op++ {
			if got.perOp[op] != want.perOp[op] {
				t.Errorf("farm aggregate: op %s retired %d, standalone sum %d",
					isa.Op(op).Name(), got.perOp[op], want.perOp[op])
			}
		}
	}
	if got.retired != want.retired {
		t.Errorf("farm aggregate: retired %d, standalone sum %d", got.retired, want.retired)
	}
	if got.qatOps != want.qatOps {
		t.Errorf("farm aggregate: qat ops %d, standalone sum %d", got.qatOps, want.qatOps)
	}
	if got.wordOps != want.wordOps {
		t.Errorf("farm aggregate: AoB word ops %d, standalone sum %d", got.wordOps, want.wordOps)
	}
	if got := fo.Pipe.Cycles.Value(); got != wantCycles {
		t.Errorf("farm aggregate: pipeline cycles %d, per-job sum %d", got, wantCycles)
	}
	if got := fo.Pipe.Retired.Value(); got != wantRetired {
		t.Errorf("farm aggregate: pipeline retired %d, standalone sum %d", got, wantRetired)
	}
	if got := fo.JobsDone.Value(); got != jobsRun {
		t.Errorf("farm: jobs done %d, ran %d", got, jobsRun)
	}
	if got := fo.JobErrors.Value(); got != 0 {
		t.Errorf("farm: %d job errors", got)
	}
	if got := fo.JobSeconds.Count(); got != jobsRun {
		t.Errorf("farm: latency histogram count %d, jobs %d", got, jobsRun)
	}
	if got := fo.QueueDepth.Value(); got != 0 {
		t.Errorf("farm: queue depth %d after all batches drained", got)
	}
	if got := fo.InFlight.Value(); got != 0 {
		t.Errorf("farm: in-flight %d after all batches drained", got)
	}
	if hits, misses := fo.PoolHits.Value(), fo.PoolMisses.Value(); hits+misses != jobsRun {
		t.Errorf("farm: pool hits %d + misses %d != jobs %d", hits, misses, jobsRun)
	}
}
