package farm_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/farm"
	"tangled/internal/farm/farmtest"
	"tangled/internal/pipeline"
)

// countdownSrc prints n..1 and halts; distinct n gives every job a distinct,
// checkable output.
func countdownSrc(n int) string {
	return fmt.Sprintf(`
	lex $2,%d
	lex $3,-1
	loop:
	lex $0,1
	copy $1,$2
	sys
	add $2,$3
	brt $2,loop
	lex $0,0
	sys
	`, n)
}

// spinSrc never halts: the timeout/cancellation test fixture.
const spinSrc = `
loop:
add $1,$2
br loop
`

func countdownWant(n int) string {
	var b strings.Builder
	for i := n; i >= 1; i-- {
		fmt.Fprintf(&b, "%d\n", i)
	}
	return b.String()
}

func TestRunOrderingAndModes(t *testing.T) {
	var jobs []farm.Job
	for i := 1; i <= 8; i++ {
		mode, name := farm.Functional, fmt.Sprintf("func-%d", i)
		if i%2 == 0 {
			mode, name = farm.Pipelined, fmt.Sprintf("pipe-%d", i)
		}
		jobs = append(jobs, farm.Job{
			Name: name, Src: countdownSrc(i), Mode: mode, Ways: 4,
			Pipeline: pipeline.Config{Stages: 4, Ways: 4, Forwarding: true, MulLatency: 1, QatNextLatency: 1},
		})
	}
	results, stats := farm.New(4).Run(context.Background(), jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Job != i || res.Name != jobs[i].Name {
			t.Fatalf("result %d misordered: job %d name %q", i, res.Job, res.Name)
		}
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Name, res.Err)
		}
		if want := countdownWant(i + 1); res.Output != want {
			t.Fatalf("%s printed %q, want %q", res.Name, res.Output, want)
		}
		if pipelined := jobs[i].Mode == farm.Pipelined; (res.Pipe != nil) != pipelined {
			t.Fatalf("%s: Pipe stats presence = %v, want %v", res.Name, res.Pipe != nil, pipelined)
		}
	}
	if stats.Jobs != 8 || stats.Errors != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Cycles == 0 || stats.Insts == 0 {
		t.Fatalf("stats missing cycle/inst accounting: %+v", stats)
	}
}

// TestWorkerCountInvariance: the batch result must be byte-identical no
// matter how many workers execute it (determinism is part of the farm's
// contract, not a scheduling accident).
func TestWorkerCountInvariance(t *testing.T) {
	var jobs []farm.Job
	for i := 0; i < 24; i++ {
		src := farmtest.Generate(0xFA12 + int64(i))
		mode := farm.Functional
		var pcfg pipeline.Config
		if i%3 == 1 {
			mode = farm.Pipelined
			pcfg, _ = pipeConfigs(i)
		} else if i%3 == 2 {
			mode = farm.Pipelined
			_, pcfg = pipeConfigs(i)
		}
		jobs = append(jobs, farm.Job{Name: fmt.Sprintf("j%d", i), Src: src, Mode: mode, Ways: diffWays, Pipeline: pcfg})
	}
	normalize := func(rs []farm.Result) []farm.Result {
		out := make([]farm.Result, len(rs))
		copy(out, rs)
		for i := range out {
			out[i].Duration = 0
			if out[i].Pipe != nil {
				p := *out[i].Pipe
				out[i].Pipe = &p
			}
		}
		return out
	}
	serial, _ := farm.New(1).Run(context.Background(), jobs)
	wide, _ := farm.New(max(4, runtime.NumCPU())).Run(context.Background(), jobs)
	s, w := normalize(serial), normalize(wide)
	for i := range s {
		if !reflect.DeepEqual(s[i], w[i]) {
			t.Fatalf("job %d differs between 1 worker and many:\n  1: %+v\n  N: %+v", i, s[i], w[i])
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestTimeoutAndBudget: a job that exceeds its wall-clock deadline reports a
// deadline error, a job that exceeds its step budget reports ErrNoHalt, and
// neither poisons the pooled machine for the next tenant.
func TestTimeoutAndBudget(t *testing.T) {
	engine := farm.New(1) // one worker forces every job through the same pool
	jobs := []farm.Job{
		{Name: "deadline", Src: spinSrc, Mode: farm.Functional, Ways: 4, Timeout: 20 * time.Millisecond},
		{Name: "budget", Src: spinSrc, Mode: farm.Functional, Ways: 4, MaxSteps: 10_000},
		{Name: "budget-pipe", Src: spinSrc, Mode: farm.Pipelined,
			Pipeline: pipeline.Config{Stages: 5, Ways: 4, Forwarding: true, MulLatency: 1, QatNextLatency: 1},
			MaxSteps: 10_000},
		{Name: "after", Src: countdownSrc(3), Mode: farm.Functional, Ways: 4},
	}
	results, stats := engine.Run(context.Background(), jobs)
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("deadline job: err = %v, want DeadlineExceeded", results[0].Err)
	}
	if !errors.Is(results[1].Err, cpu.ErrNoHalt) {
		t.Fatalf("budget job: err = %v, want cpu.ErrNoHalt", results[1].Err)
	}
	if !errors.Is(results[2].Err, pipeline.ErrNoHalt) {
		t.Fatalf("pipelined budget job: err = %v, want pipeline.ErrNoHalt", results[2].Err)
	}
	if results[3].Err != nil || results[3].Output != countdownWant(3) {
		t.Fatalf("job after failures got dirty state: %+v", results[3])
	}
	if stats.Errors != 3 {
		t.Fatalf("stats.Errors = %d, want 3", stats.Errors)
	}
}

// TestCancelDrains: cancelling the batch context stops in-flight spins and
// marks unstarted jobs, and Run returns with every slot filled.
func TestCancelDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]farm.Job, 16)
	for i := range jobs {
		jobs[i] = farm.Job{Name: fmt.Sprintf("spin-%d", i), Src: spinSrc, Mode: farm.Functional, Ways: 4}
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, stats := farm.New(2).Run(ctx, jobs)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run took %v after cancellation", elapsed)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("job %d: err = %v, want Canceled", i, res.Err)
		}
	}
	if stats.Errors != uint64(len(jobs)) {
		t.Fatalf("stats.Errors = %d, want %d", stats.Errors, len(jobs))
	}
}

// TestPoolReuse: at steady state the pool serves every job without
// allocating new machine state.
func TestPoolReuse(t *testing.T) {
	engine := farm.New(1)
	jobs := make([]farm.Job, 10)
	for i := range jobs {
		jobs[i] = farm.Job{Name: fmt.Sprintf("j%d", i), Src: countdownSrc(2), Mode: farm.Functional, Ways: 4}
	}
	results, stats := engine.Run(context.Background(), jobs)
	for _, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if stats.PoolHits+stats.PoolMisses != uint64(len(jobs)) {
		t.Fatalf("pool accounting %d+%d != %d jobs", stats.PoolHits, stats.PoolMisses, len(jobs))
	}
	// One worker and one machine class: only the very first job can miss
	// (GC may in principle drop a pooled machine, so allow a little slack,
	// but steady state must be dominated by hits). The race detector
	// randomizes sync.Pool retention on purpose, so the strict bound only
	// holds without it.
	if !raceEnabled && stats.PoolMisses > 2 {
		t.Fatalf("pool misses = %d, want <= 2 (hit rate %.0f%%)", stats.PoolMisses, 100*stats.PoolHitRate())
	}
	// Lifetime totals accumulate across batches.
	if _, st2 := engine.Run(context.Background(), jobs); !raceEnabled && st2.PoolMisses > 1 {
		t.Fatalf("second batch should be all hits, got %d misses", st2.PoolMisses)
	}
	if tot := engine.Totals(); tot.Jobs != 2*uint64(len(jobs)) {
		t.Fatalf("Totals().Jobs = %d, want %d", tot.Jobs, 2*len(jobs))
	}
}

// TestBackToBackProgramsOnPooledMachine is the reuse-hazard regression: a
// first program dirties host memory, Tangled registers and Qat registers;
// the second program, executed on the recycled machine, must observe
// factory-clean state.
func TestBackToBackProgramsOnPooledMachine(t *testing.T) {
	// Program A: store a sentinel at 0x7F05, saturate @5, leave garbage in
	// registers.
	progA := `
	lex $3,0x55
	lex $4,5
	lhi $4,0x7F
	store $3,$4
	one @5
	had @6,2
	lex $7,99
	lex $0,0
	sys
	`
	// Program B: read back 0x7F05, measure @5 and @6, and print all three
	// (expect zeros on a clean machine).
	progB := `
	lex $4,5
	lhi $4,0x7F
	load $1,$4
	lex $0,1
	sys
	lex $1,0
	meas $1,@5
	sys
	lex $1,0
	pop $1,@6
	meas $2,@6
	add $1,$2
	sys
	lex $0,0
	sys
	`
	engine := farm.New(1)
	jobs := []farm.Job{
		{Name: "dirty", Src: progA, Mode: farm.Functional, Ways: 4},
		{Name: "probe", Src: progB, Mode: farm.Functional, Ways: 4},
	}
	results, _ := engine.Run(context.Background(), jobs)
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Name, res.Err)
		}
	}
	if want := "0\n0\n0\n"; results[1].Output != want {
		t.Fatalf("probe on recycled machine printed %q, want %q (pooled state leaked)", results[1].Output, want)
	}
	// Same probe on both pipeline organizations, after a dirty pipelined run.
	for _, stages := range []int{4, 5} {
		cfg := pipeline.Config{Stages: stages, Ways: 4, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
		jobs := []farm.Job{
			{Name: "dirty", Src: progA, Mode: farm.Pipelined, Pipeline: cfg},
			{Name: "probe", Src: progB, Mode: farm.Pipelined, Pipeline: cfg},
		}
		results, _ := engine.Run(context.Background(), jobs)
		if results[1].Err != nil {
			t.Fatal(results[1].Err)
		}
		if want := "0\n0\n0\n"; results[1].Output != want {
			t.Fatalf("%d-stage probe printed %q, want %q", stages, results[1].Output, want)
		}
	}
}

// TestJobErrors: malformed jobs fail individually without disturbing their
// neighbors.
func TestJobErrors(t *testing.T) {
	jobs := []farm.Job{
		{Name: "empty"},
		{Name: "badasm", Src: "frobnicate $1,$2\n"},
		{Name: "badways", Src: countdownSrc(1), Ways: 99},
		{Name: "badcfg", Src: countdownSrc(1), Mode: farm.Pipelined,
			Pipeline: pipeline.Config{Stages: 7, Ways: 4, MulLatency: 1, QatNextLatency: 1}},
		{Name: "badpipeways", Src: countdownSrc(1), Mode: farm.Pipelined,
			Pipeline: pipeline.Config{Stages: 5, Ways: 99, MulLatency: 1, QatNextLatency: 1}},
		{Name: "good", Src: countdownSrc(2), Ways: 4},
	}
	results, stats := farm.New(2).Run(context.Background(), jobs)
	if !errors.Is(results[0].Err, farm.ErrNoProgram) {
		t.Fatalf("empty job: %v", results[0].Err)
	}
	for i := 1; i <= 4; i++ {
		if results[i].Err == nil {
			t.Fatalf("job %s should have failed", results[i].Name)
		}
	}
	if results[5].Err != nil || results[5].Output != countdownWant(2) {
		t.Fatalf("good job: %+v", results[5])
	}
	if stats.Errors != 5 {
		t.Fatalf("stats.Errors = %d, want 5", stats.Errors)
	}
}

// TestSharedProgramAcrossJobs: many jobs sharing one *asm.Program must not
// interfere (the program is read-only to the machines).
func TestSharedProgramAcrossJobs(t *testing.T) {
	prog, err := asm.Assemble(countdownSrc(4))
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]farm.Job, 12)
	for i := range jobs {
		jobs[i] = farm.Job{Name: fmt.Sprintf("shared-%d", i), Prog: prog, Mode: farm.Functional, Ways: 4}
	}
	results, _ := farm.New(4).Run(context.Background(), jobs)
	for _, res := range results {
		if res.Err != nil || res.Output != countdownWant(4) {
			t.Fatalf("%s: %+v", res.Name, res)
		}
	}
}

// TestPerJobContext: Job.Ctx bounds one job without poisoning the batch —
// the serving layer's per-request deadline/disconnect propagation path.
func TestPerJobContext(t *testing.T) {
	// A program that never halts within the budget: a tight infinite loop.
	spin := "lex $1,1\nL:\nbrt $1,L\n"
	fine := "lex $1,7\nlex $0,0\nsys\n"

	expired, cancelExpired := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancelExpired()
	cancelled, cancelNow := context.WithCancel(context.Background())
	cancelNow()

	jobs := []farm.Job{
		{Name: "deadline", Src: spin, Ways: diffWays, Ctx: expired},
		{Name: "cancelled", Src: spin, Ways: diffWays, Ctx: cancelled},
		{Name: "fine", Src: fine, Ways: diffWays},
	}
	results, stats := farm.New(2).Run(context.Background(), jobs)
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Errorf("deadline job: err = %v, want DeadlineExceeded", results[0].Err)
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("cancelled job: err = %v, want Canceled", results[1].Err)
	}
	if results[2].Err != nil || results[2].Regs[1] != 7 {
		t.Errorf("fine job poisoned by neighbors: err=%v regs=%v", results[2].Err, results[2].Regs)
	}
	if stats.Errors != 2 {
		t.Errorf("stats.Errors = %d, want 2", stats.Errors)
	}
}
