package farm_test

// Pool-reuse hygiene: a machine handed back to the sync.Pool must carry
// nothing from its previous tenant. Three leak surfaces are pinned here:
// the cycle-trace request tag (a stale tagged sink would stamp the previous
// request's ID onto an unrelated job's rows), machine-level attachments an
// Inspect hook may have planted (instruction-trace hook, energy meter,
// alternate encoding, LUT reciprocal datapath), and the interleaved
// tagged/untagged mix under the race detector.

import (
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/energy"
	"tangled/internal/farm"
	"tangled/internal/farm/farmtest"
	"tangled/internal/isa"
	"tangled/internal/obs"
	"tangled/internal/pipeline"
)

func leakProg(t *testing.T, seed int) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(farmtest.Generate(farmtest.Seed(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestReuseNoTraceTagLeak: after a tagged job releases its pooled pipeline,
// an untagged job reusing the same machine must emit rows with an empty Req
// — the tagged sink must not survive the handoff.
func TestReuseNoTraceTagLeak(t *testing.T) {
	reg := obs.NewRegistry()
	o := farm.NewObs(reg)
	o.Trace = obs.NewTraceRing(1 << 16)
	engine := farm.New(1)
	engine.SetObs(o)

	prog := leakProg(t, 3)
	cfg := pipeline.DefaultConfig()
	cfg.Ways = farmtest.Ways

	// sync.Pool deliberately drops a fraction of puts under the race
	// detector, so one tagged/untagged pair is not guaranteed to share a
	// machine; retry the pair until the untagged job actually reuses one.
	for attempt := 0; attempt < 100; attempt++ {
		tagged := farm.Job{Name: "tagged", Prog: prog, Mode: farm.Pipelined, Pipeline: cfg, TraceTag: "req-A"}
		if res, _ := engine.Run(nil, []farm.Job{tagged}); res[0].Err != nil {
			t.Fatalf("tagged job: %v", res[0].Err)
		}
		taggedRows := len(o.Trace.Events())
		if taggedRows == 0 {
			t.Fatalf("tagged job emitted no trace rows")
		}
		for _, e := range o.Trace.Events() {
			if e.Req != "req-A" {
				t.Fatalf("tagged job row carries req %q, want %q", e.Req, "req-A")
			}
		}

		untagged := farm.Job{Name: "untagged", Prog: prog, Mode: farm.Pipelined, Pipeline: cfg}
		res, st := engine.Run(nil, []farm.Job{untagged})
		if res[0].Err != nil {
			t.Fatalf("untagged job: %v", res[0].Err)
		}
		events := o.Trace.Events()
		if len(events) <= taggedRows {
			t.Fatalf("untagged job emitted no trace rows")
		}
		for _, e := range events[taggedRows:] {
			if e.Req != "" {
				t.Fatalf("untagged job row carries leaked req tag %q", e.Req)
			}
		}
		if st.PoolHits > 0 {
			return // reuse happened and the rows above came out clean
		}
		o.Trace = obs.NewTraceRing(1 << 16) // fresh ring for the retry
		engine.SetObs(o)
	}
	t.Fatalf("untagged job never reused the pooled pipeline; leak surface not exercised")
}

// TestReuseNoInspectStateLeak: attachments and hardware-identity overrides
// planted by one tenant's Inspect hook must be gone when the next tenant's
// Inspect observes the same pooled machine.
func TestReuseNoInspectStateLeak(t *testing.T) {
	prog := leakProg(t, 4)
	cfg := pipeline.DefaultConfig()
	cfg.Ways = farmtest.Ways

	for _, mode := range []struct {
		name string
		job  func(inspect func(*cpu.Machine)) farm.Job
	}{
		{"functional", func(in func(*cpu.Machine)) farm.Job {
			return farm.Job{Prog: prog, Mode: farm.Functional, Ways: farmtest.Ways, Inspect: in}
		}},
		{"pipelined", func(in func(*cpu.Machine)) farm.Job {
			return farm.Job{Prog: prog, Mode: farm.Pipelined, Pipeline: cfg, Inspect: in}
		}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			engine := farm.New(1)
			// Retry the dirty/clean pair until the clean job actually gets
			// the recycled machine (sync.Pool drops puts under -race).
			for attempt := 0; attempt < 100; attempt++ {
				dirty := mode.job(func(m *cpu.Machine) {
					m.Trace = func(uint16, isa.Inst) {}
					m.Qat.Meter = energy.NewMeter()
					m.Enc = isa.Student
					m.RecipLUT = true
				})
				if res, _ := engine.Run(nil, []farm.Job{dirty}); res[0].Err != nil {
					t.Fatalf("dirty job: %v", res[0].Err)
				}

				var leaked []string
				clean := mode.job(func(m *cpu.Machine) {
					if m.Trace != nil {
						leaked = append(leaked, "Trace")
					}
					if m.Qat.Meter != nil {
						leaked = append(leaked, "Qat.Meter")
					}
					if m.Enc != nil {
						leaked = append(leaked, "Enc")
					}
					if m.RecipLUT {
						leaked = append(leaked, "RecipLUT")
					}
				})
				res, st := engine.Run(nil, []farm.Job{clean})
				if res[0].Err != nil {
					t.Fatalf("clean job: %v", res[0].Err)
				}
				if len(leaked) > 0 {
					t.Fatalf("state leaked across pool tenants: %v", leaked)
				}
				if st.PoolHits > 0 {
					return
				}
			}
			t.Fatalf("clean job never reused the pooled machine; leak surface not exercised")
		})
	}
}

// TestReuseInterleavedTaggedUntagged runs a concurrent mix of tagged and
// untagged pipelined jobs over a small worker pool (forcing heavy machine
// reuse) and asserts every trace row carries either its own job's tag or no
// tag at all — with the race detector watching the shared ring and pooled
// machines.
func TestReuseInterleavedTaggedUntagged(t *testing.T) {
	reg := obs.NewRegistry()
	o := farm.NewObs(reg)
	o.Trace = obs.NewTraceRing(1 << 18)
	engine := farm.New(4)
	engine.SetObs(o)

	prog := leakProg(t, 5)
	cfg := pipeline.DefaultConfig()
	cfg.Ways = farmtest.Ways

	const n = 48
	jobs := make([]farm.Job, n)
	want := map[string]bool{"": true}
	for i := range jobs {
		jobs[i] = farm.Job{Prog: prog, Mode: farm.Pipelined, Pipeline: cfg}
		if i%2 == 0 {
			tag := "req-" + string(rune('a'+i/2))
			jobs[i].TraceTag = tag
			want[tag] = true
		}
	}
	results, _ := engine.Run(nil, jobs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
	}
	tagged := 0
	for _, e := range o.Trace.Events() {
		if !want[e.Req] {
			t.Fatalf("trace row carries unknown req tag %q", e.Req)
		}
		if e.Req != "" {
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatalf("no tagged rows recorded")
	}
}
