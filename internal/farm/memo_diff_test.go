package farm_test

// Memoization correctness harness: for every corpus program, a memoized
// engine's first run (the miss that populates the cache) and second run
// (the hit served from it) must be byte-identical to a fresh, memo-less
// execution — registers, output, retired instruction count, and pipeline
// stats — across the functional machine and both pipeline organizations.
// A separate test proves the singleflight property: a batch of identical
// concurrent jobs costs exactly one execution.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/farm"
	"tangled/internal/farm/farmtest"
	"tangled/internal/memo"
)

// sameResult compares the deterministic slice of two farm results.
func sameResult(a, b farm.Result) error {
	if a.Regs != b.Regs {
		return fmt.Errorf("regs %v != %v", a.Regs, b.Regs)
	}
	if a.Output != b.Output {
		return fmt.Errorf("output %q != %q", a.Output, b.Output)
	}
	if a.Insts != b.Insts {
		return fmt.Errorf("insts %d != %d", a.Insts, b.Insts)
	}
	if (a.Pipe == nil) != (b.Pipe == nil) {
		return fmt.Errorf("pipe presence %v != %v", a.Pipe != nil, b.Pipe != nil)
	}
	if a.Pipe != nil && *a.Pipe != *b.Pipe {
		return fmt.Errorf("pipe stats %+v != %+v", *a.Pipe, *b.Pipe)
	}
	if (a.Err == nil) != (b.Err == nil) || (a.Err != nil && a.Err.Error() != b.Err.Error()) {
		return fmt.Errorf("err %v != %v", a.Err, b.Err)
	}
	return nil
}

// TestMemoDifferential: fresh (memo-less) execution vs the memoized
// engine's populating miss vs its subsequent hit, over the full shared
// corpus and all three machine models.
func TestMemoDifferential(t *testing.T) {
	fresh := farm.New(0)
	memoized := farm.New(0)
	cache := memo.New(0)
	memoized.SetMemo(cache)

	for i := 0; i < farmtest.Programs; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("program %d does not assemble: %v", i, err)
		}
		p4cfg, p5cfg := pipeConfigs(i)
		jobs := []farm.Job{
			{Name: "func", Prog: prog, Mode: farm.Functional, Ways: diffWays},
			{Name: "pipe4", Prog: prog, Mode: farm.Pipelined, Pipeline: p4cfg},
			{Name: "pipe5", Prog: prog, Mode: farm.Pipelined, Pipeline: p5cfg},
		}
		freshRes, _ := fresh.Run(nil, jobs)
		missRes, missSt := memoized.Run(nil, jobs)
		hitRes, hitSt := memoized.Run(nil, jobs)

		if missSt.MemoHits != 0 {
			t.Fatalf("program %d: first memoized run reported %d memo hits", i, missSt.MemoHits)
		}
		if hitSt.MemoHits != uint64(len(jobs)) {
			t.Fatalf("program %d: second memoized run reported %d/%d memo hits", i, hitSt.MemoHits, len(jobs))
		}
		for k := range jobs {
			if freshRes[k].Err != nil {
				t.Fatalf("program %d, %s: fresh run failed: %v\n%s", i, jobs[k].Name, freshRes[k].Err, src)
			}
			if missRes[k].Cached {
				t.Fatalf("program %d, %s: populating run flagged cached", i, jobs[k].Name)
			}
			if !hitRes[k].Cached {
				t.Fatalf("program %d, %s: repeat run not served from cache", i, jobs[k].Name)
			}
			if err := sameResult(freshRes[k], missRes[k]); err != nil {
				t.Fatalf("program %d, %s: miss differs from fresh: %v\n%s", i, jobs[k].Name, err, src)
			}
			if err := sameResult(freshRes[k], hitRes[k]); err != nil {
				t.Fatalf("program %d, %s: cache hit differs from fresh: %v\n%s", i, jobs[k].Name, err, src)
			}
		}
	}
	if st := cache.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache saw no traffic: %+v", st)
	}
}

// TestMemoBatchSingleflight: one batch of N identical jobs costs exactly
// one execution — concurrent duplicates collapse onto the in-flight leader
// (or hit the entry it just stored), never re-executing.
func TestMemoBatchSingleflight(t *testing.T) {
	const n = 32
	src := farmtest.Generate(farmtest.Seed(1))
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cache := memo.New(0)
	engine := farm.New(8)
	engine.SetMemo(cache)

	jobs := make([]farm.Job, n)
	for i := range jobs {
		jobs[i] = farm.Job{Name: "dup", Prog: prog, Mode: farm.Functional, Ways: diffWays}
	}
	results, st := engine.Run(nil, jobs)

	cs := cache.Stats()
	if cs.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 execution for %d identical jobs (stats %+v)", cs.Misses, n, cs)
	}
	if cs.Hits+cs.Misses != n {
		t.Fatalf("hits+misses = %d, want %d (stats %+v)", cs.Hits+cs.Misses, n, cs)
	}
	if st.MemoHits != n-1 {
		t.Fatalf("batch memo hits = %d, want %d", st.MemoHits, n-1)
	}
	var cached int
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if err := sameResult(results[0], res); err != nil {
			t.Fatalf("job %d differs from job 0: %v", i, err)
		}
		if res.Cached {
			cached++
		}
	}
	if cached != n-1 {
		t.Fatalf("%d results flagged cached, want %d", cached, n-1)
	}
}

// TestMemoBypass: NoMemo jobs and Inspect-carrying jobs always execute, and
// never populate or read the cache.
func TestMemoBypass(t *testing.T) {
	src := farmtest.Generate(farmtest.Seed(2))
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cache := memo.New(0)
	engine := farm.New(1)
	engine.SetMemo(cache)

	var inspected atomic.Int64
	jobs := []farm.Job{
		{Name: "no-memo", Prog: prog, Mode: farm.Functional, Ways: diffWays, NoMemo: true},
		{Name: "no-memo-again", Prog: prog, Mode: farm.Functional, Ways: diffWays, NoMemo: true},
		{Name: "inspect", Prog: prog, Mode: farm.Functional, Ways: diffWays,
			Inspect: func(*cpu.Machine) { inspected.Add(1) }},
	}
	results, st := engine.Run(nil, jobs)
	for i, res := range results {
		if res.Err != nil || res.Cached {
			t.Fatalf("job %d: err=%v cached=%v", i, res.Err, res.Cached)
		}
	}
	if st.MemoHits != 0 {
		t.Fatalf("bypass jobs produced %d memo hits", st.MemoHits)
	}
	if cs := cache.Stats(); cs.Hits != 0 || cs.Misses != 0 || cache.Len() != 0 {
		t.Fatalf("bypass jobs touched the cache: %+v len=%d", cs, cache.Len())
	}
	if inspected.Load() != 1 {
		t.Fatalf("inspect ran %d times, want 1", inspected.Load())
	}
}
