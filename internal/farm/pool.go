package farm

import (
	"sync"
	"sync/atomic"

	"tangled/internal/pipeline"
)

// poolKey identifies a class of interchangeable machines. Functional
// machines are interchangeable when they share the entanglement degree and
// the constant-register convention; pipelines when they share the full
// timing configuration (pipeline.Config is a comparable value type).
type poolKey struct {
	pipelined bool
	ways      int
	constRegs bool
	// backend/chunkWays/spillRuns carry the canonical (post-default) Qat
	// register-file selection of functional jobs; machines with different
	// compressed-file geometry are not interchangeable.
	backend   string
	chunkWays int
	spillRuns int
	pcfg      pipeline.Config
}

// machinePool wraps sync.Pool with hit/miss accounting. sync.Pool itself
// reports nothing, so get distinguishes a recycled machine (hit) from a nil
// that forces the caller to allocate (miss).
type machinePool struct {
	p sync.Pool
}

// batchCounters aggregates pool traffic for one Engine.Run call.
type batchCounters struct {
	hits, misses atomic.Uint64
}

// unalloc retracts a previously counted miss when machine construction
// failed and no allocation actually happened.
func (bc *batchCounters) unalloc() {
	bc.misses.Add(^uint64(0))
}

func (mp *machinePool) get(bc *batchCounters) interface{} {
	v := mp.p.Get()
	if v != nil {
		bc.hits.Add(1)
	} else {
		bc.misses.Add(1)
	}
	return v
}

func (mp *machinePool) put(v interface{}) { mp.p.Put(v) }

// pool returns the machine pool for key, creating it on first use.
func (e *Engine) pool(key poolKey) *machinePool {
	e.mu.Lock()
	defer e.mu.Unlock()
	mp, ok := e.pools[key]
	if !ok {
		mp = &machinePool{}
		e.pools[key] = mp
	}
	return mp
}
