package qat

import (
	"strings"
	"testing"

	"tangled/internal/aob"
	"tangled/internal/isa"
)

func exec(t *testing.T, q *Coprocessor, inst isa.Inst, rd uint16) uint16 {
	t.Helper()
	out, writes, err := q.Exec(inst, rd)
	if err != nil {
		t.Fatalf("%s: %v", inst, err)
	}
	if !writes {
		return 0
	}
	return out
}

// TestTable3QatISA exercises each Table 3 instruction directly against the
// coprocessor, mirroring the table's functionality column.
func TestTable3QatISA(t *testing.T) {
	q := New(8)

	// zero/one initializers.
	exec(t, q, isa.Inst{Op: isa.OpQOne, QA: 1}, 0)
	if q.Reg(1).Pop() != 256 {
		t.Error("one @1")
	}
	exec(t, q, isa.Inst{Op: isa.OpQZero, QA: 1}, 0)
	if q.Reg(1).Pop() != 0 {
		t.Error("zero @1")
	}

	// had @a,k.
	exec(t, q, isa.Inst{Op: isa.OpQHad, QA: 2, K: 3}, 0)
	if !q.Reg(2).Equal(aob.HadVector(8, 3)) {
		t.Error("had @2,3")
	}

	// and/or/xor: @a = op(@b,@c).
	exec(t, q, isa.Inst{Op: isa.OpQHad, QA: 3, K: 0}, 0)
	exec(t, q, isa.Inst{Op: isa.OpQHad, QA: 4, K: 1}, 0)
	exec(t, q, isa.Inst{Op: isa.OpQAnd, QA: 5, QB: 3, QC: 4}, 0)
	exec(t, q, isa.Inst{Op: isa.OpQOr, QA: 6, QB: 3, QC: 4}, 0)
	exec(t, q, isa.Inst{Op: isa.OpQXor, QA: 7, QB: 3, QC: 4}, 0)
	for ch := uint64(0); ch < 256; ch++ {
		b0, b1 := ch&1 == 1, (ch>>1)&1 == 1
		if q.Reg(5).Get(ch) != (b0 && b1) {
			t.Fatalf("and ch %d", ch)
		}
		if q.Reg(6).Get(ch) != (b0 || b1) {
			t.Fatalf("or ch %d", ch)
		}
		if q.Reg(7).Get(ch) != (b0 != b1) {
			t.Fatalf("xor ch %d", ch)
		}
	}

	// not (Pauli-X analog): @a = NOT(@a).
	exec(t, q, isa.Inst{Op: isa.OpQNot, QA: 5}, 0)
	for ch := uint64(0); ch < 256; ch++ {
		b0, b1 := ch&1 == 1, (ch>>1)&1 == 1
		if q.Reg(5).Get(ch) == (b0 && b1) {
			t.Fatalf("not ch %d", ch)
		}
	}

	// cnot: @a = XOR(@a,@b).
	exec(t, q, isa.Inst{Op: isa.OpQZero, QA: 8}, 0)
	exec(t, q, isa.Inst{Op: isa.OpQCnot, QA: 8, QB: 3}, 0)
	if !q.Reg(8).Equal(q.Reg(3)) {
		t.Error("cnot from zero must copy")
	}

	// ccnot: @a = XOR(@a, AND(@b,@c)).
	exec(t, q, isa.Inst{Op: isa.OpQZero, QA: 9}, 0)
	exec(t, q, isa.Inst{Op: isa.OpQCcnot, QA: 9, QB: 3, QC: 4}, 0)
	want := aob.New(8)
	want.And(aob.HadVector(8, 0), aob.HadVector(8, 1))
	if !q.Reg(9).Equal(want) {
		t.Error("ccnot")
	}

	// swap.
	before3, before4 := q.Reg(3).Clone(), q.Reg(4).Clone()
	exec(t, q, isa.Inst{Op: isa.OpQSwap, QA: 3, QB: 4}, 0)
	if !q.Reg(3).Equal(before4) || !q.Reg(4).Equal(before3) {
		t.Error("swap")
	}
	exec(t, q, isa.Inst{Op: isa.OpQSwap, QA: 3, QB: 4}, 0) // restore

	// cswap (Fredkin): exchange where control is 1.
	exec(t, q, isa.Inst{Op: isa.OpQHad, QA: 10, K: 7}, 0)
	a3, a4 := q.Reg(3).Clone(), q.Reg(4).Clone()
	exec(t, q, isa.Inst{Op: isa.OpQCswap, QA: 3, QB: 4, QC: 10}, 0)
	for ch := uint64(0); ch < 256; ch++ {
		if q.Reg(10).Get(ch) {
			if q.Reg(3).Get(ch) != a4.Get(ch) || q.Reg(4).Get(ch) != a3.Get(ch) {
				t.Fatalf("cswap controlled ch %d", ch)
			}
		} else if q.Reg(3).Get(ch) != a3.Get(ch) || q.Reg(4).Get(ch) != a4.Get(ch) {
			t.Fatalf("cswap uncontrolled ch %d", ch)
		}
	}

	// meas $d,@a returns @a[$d].
	if got := exec(t, q, isa.Inst{Op: isa.OpQMeas, RD: 1, QA: 2}, 8); got != 1 {
		t.Errorf("meas ch8 of had3 = %d", got)
	}
	if got := exec(t, q, isa.Inst{Op: isa.OpQMeas, RD: 1, QA: 2}, 7); got != 0 {
		t.Errorf("meas ch7 of had3 = %d", got)
	}

	// next $d,@a.
	if got := exec(t, q, isa.Inst{Op: isa.OpQNext, RD: 1, QA: 2}, 3); got != 8 {
		t.Errorf("next(3) over had3 = %d", got)
	}

	// pop $d,@a.
	if got := exec(t, q, isa.Inst{Op: isa.OpQPop, RD: 1, QA: 2}, 0); got != 128 {
		t.Errorf("pop(0) of had3 = %d", got)
	}
}

func TestExecRejectsTangledOps(t *testing.T) {
	q := New(4)
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpAdd}, 0); err == nil {
		t.Fatal("tangled op accepted by coprocessor")
	}
}

func TestOpsCounting(t *testing.T) {
	q := New(4)
	for i := 0; i < 5; i++ {
		exec(t, q, isa.Inst{Op: isa.OpQZero, QA: 1}, 0)
	}
	exec(t, q, isa.Inst{Op: isa.OpQOne, QA: 2}, 0)
	if q.Ops[isa.OpQZero] != 5 || q.Ops[isa.OpQOne] != 1 {
		t.Errorf("op counts: %v", q.Ops)
	}
}

func TestConstantBank(t *testing.T) {
	q := NewWithConstants(8)
	if q.Reg(ConstZeroReg()).Pop() != 0 {
		t.Error("@0 not zero")
	}
	if q.Reg(ConstOneReg()).Pop() != 256 {
		t.Error("@1 not ones")
	}
	for k := 0; k < 8; k++ {
		if !q.Reg(ConstHadReg(k)).Equal(aob.HadVector(8, k)) {
			t.Errorf("@%d != H%d", ConstHadReg(k), k)
		}
	}
	// Writes to the bank fault; the classic reversible-Hadamard trick
	// (XOR with the constant) works on ordinary registers.
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpQNot, QA: ConstHadReg(0)}, 0); err == nil {
		t.Error("write to constant accepted")
	}
	exec(t, q, isa.Inst{Op: isa.OpQXor, QA: 100, QB: ConstHadReg(2), QC: ConstZeroReg()}, 0)
	exec(t, q, isa.Inst{Op: isa.OpQXor, QA: 100, QB: 100, QC: ConstHadReg(2)}, 0)
	if q.Reg(100).Pop() != 0 {
		t.Error("XOR-with-Hadamard self-inverse failed")
	}
}

func TestConstantBankSwapRejected(t *testing.T) {
	q := NewWithConstants(8)
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpQSwap, QA: 100, QB: ConstOneReg()}, 0); err == nil {
		t.Error("swap with constant register accepted")
	}
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpQCswap, QA: 100, QB: ConstOneReg(), QC: 101}, 0); err == nil {
		t.Error("cswap with constant register accepted")
	}
}

func TestReset(t *testing.T) {
	q := NewWithConstants(8)
	exec(t, q, isa.Inst{Op: isa.OpQOne, QA: 50}, 0)
	q.Reset()
	if q.Reg(50).Pop() != 0 {
		t.Error("reset did not clear @50")
	}
	if q.Reg(ConstOneReg()).Pop() != 256 {
		t.Error("reset clobbered the constant bank")
	}
	if len(q.Ops) != 0 {
		t.Error("reset kept op counts")
	}
}

func TestHadBeyondWaysFaults(t *testing.T) {
	q := New(8)
	_, _, err := q.Exec(isa.Inst{Op: isa.OpQHad, QA: 1, K: 9}, 0)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v", err)
	}
}

func TestSetRegValidates(t *testing.T) {
	q := New(8)
	defer func() {
		if recover() == nil {
			t.Error("mismatched SetReg accepted")
		}
	}()
	q.SetReg(0, aob.New(4))
}

func TestAliasedOperands(t *testing.T) {
	// and @a,@a,@a == identity; xor @a,@a,@a == clear; swap @a,@a == noop.
	q := New(6)
	exec(t, q, isa.Inst{Op: isa.OpQHad, QA: 1, K: 2}, 0)
	exec(t, q, isa.Inst{Op: isa.OpQAnd, QA: 1, QB: 1, QC: 1}, 0)
	if !q.Reg(1).Equal(aob.HadVector(6, 2)) {
		t.Error("self-and changed value")
	}
	exec(t, q, isa.Inst{Op: isa.OpQSwap, QA: 1, QB: 1}, 0)
	if !q.Reg(1).Equal(aob.HadVector(6, 2)) {
		t.Error("self-swap changed value")
	}
	exec(t, q, isa.Inst{Op: isa.OpQXor, QA: 1, QB: 1, QC: 1}, 0)
	if q.Reg(1).Pop() != 0 {
		t.Error("self-xor must clear")
	}
}

func BenchmarkQatExecAnd16(b *testing.B) {
	q := New(16)
	inst := isa.Inst{Op: isa.OpQAnd, QA: 1, QB: 2, QC: 3}
	for i := 0; i < b.N; i++ {
		if _, _, err := q.Exec(inst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWays(t *testing.T) {
	if New(8).Ways() != 8 || New(16).Ways() != 16 {
		t.Error("Ways wrong")
	}
}

// TestReservedWriteFaultsEveryOpClass drives checkWrite through each
// instruction shape against the constant bank.
func TestReservedWriteFaultsEveryOpClass(t *testing.T) {
	q := NewWithConstants(8)
	cases := []isa.Inst{
		{Op: isa.OpQZero, QA: 0},
		{Op: isa.OpQOne, QA: 1},
		{Op: isa.OpQNot, QA: ConstHadReg(0)},
		{Op: isa.OpQHad, QA: 0, K: 1},
		{Op: isa.OpQAnd, QA: 1, QB: 2, QC: 3},
		{Op: isa.OpQOr, QA: 0, QB: 2, QC: 3},
		{Op: isa.OpQXor, QA: ConstHadReg(2), QB: 2, QC: 3},
		{Op: isa.OpQCnot, QA: 0, QB: 100},
		{Op: isa.OpQCcnot, QA: 1, QB: 100, QC: 101},
		{Op: isa.OpQSwap, QA: 0, QB: 100},
		{Op: isa.OpQSwap, QA: 100, QB: 0},
		{Op: isa.OpQCswap, QA: 0, QB: 100, QC: 101},
		{Op: isa.OpQCswap, QA: 100, QB: 0, QC: 101},
	}
	for _, in := range cases {
		if _, _, err := q.Exec(in, 0); err == nil {
			t.Errorf("%s wrote a reserved register", in)
		}
	}
	// Reads of reserved registers stay legal.
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpQMeas, RD: 1, QA: 0}, 5); err != nil {
		t.Errorf("meas of reserved: %v", err)
	}
}
