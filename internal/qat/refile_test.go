package qat

import (
	"math/rand"
	"testing"

	"tangled/internal/aob"
	"tangled/internal/isa"
)

// Differential coverage of the RE register file: the same instruction
// streams run on the dense backend, the RE backend, and the RE backend with
// an aggressive spill budget, and every observable — scalar write-backs and
// full register materializations — must agree channel-exactly.

// qatOps are the opcodes the random streams draw from.
var qatOps = []isa.Op{
	isa.OpQZero, isa.OpQOne, isa.OpQHad, isa.OpQNot,
	isa.OpQAnd, isa.OpQOr, isa.OpQXor, isa.OpQCnot, isa.OpQCcnot,
	isa.OpQSwap, isa.OpQCswap, isa.OpQMeas, isa.OpQNext, isa.OpQPop,
}

// randInst draws one valid Qat instruction over numRegs registers.
func randInst(r *rand.Rand, ways, numRegs int) isa.Inst {
	inst := isa.Inst{
		Op: qatOps[r.Intn(len(qatOps))],
		QA: uint8(r.Intn(numRegs)),
		QB: uint8(r.Intn(numRegs)),
		QC: uint8(r.Intn(numRegs)),
	}
	if ways > 0 {
		inst.K = uint8(r.Intn(ways))
	}
	return inst
}

// newBackends builds the three coprocessors under comparison.
func newBackends(t *testing.T, ways int, constRegs bool) (dense, reQ, reSpill *Coprocessor) {
	t.Helper()
	var err error
	dense, err = NewFromConfig(Config{Ways: ways, ConstantRegs: constRegs})
	if err != nil {
		t.Fatal(err)
	}
	reQ, err = NewFromConfig(Config{Ways: ways, ConstantRegs: constRegs, Backend: BackendRE, SpillRuns: -1})
	if err != nil {
		t.Fatal(err)
	}
	// SpillRuns 1 with sub-width chunks: anything beyond a single run
	// spills — the spill path runs constantly.
	reSpill, err = NewFromConfig(Config{Ways: ways, ConstantRegs: constRegs, Backend: BackendRE,
		ChunkWays: ways / 2, SpillRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	return dense, reQ, reSpill
}

func TestREBackendDifferential(t *testing.T) {
	for _, tc := range []struct {
		ways      int
		constRegs bool
	}{
		{ways: 3, constRegs: false},
		{ways: 6, constRegs: true},
		{ways: 8, constRegs: false},
		{ways: 10, constRegs: true},
	} {
		dense, reQ, reSpill := newBackends(t, tc.ways, tc.constRegs)
		r := rand.New(rand.NewSource(int64(tc.ways)*1007 + 1))
		const numRegs = 8
		firstReg := 0
		if tc.constRegs {
			firstReg = 2 + tc.ways // skip the reserved bank for writes
		}
		for step := 0; step < 600; step++ {
			inst := randInst(r, tc.ways, numRegs)
			if tc.constRegs {
				// Retarget writes at unreserved registers; reads may still
				// hit the constant bank.
				inst.QA = uint8(firstReg + int(inst.QA))
				inst.QB = uint8(firstReg + int(inst.QB))
			}
			rd := uint16(r.Uint32())
			o1, w1, e1 := dense.Exec(inst, rd)
			o2, w2, e2 := reQ.Exec(inst, rd)
			o3, w3, e3 := reSpill.Exec(inst, rd)
			if (e1 == nil) != (e2 == nil) || (e1 == nil) != (e3 == nil) {
				t.Fatalf("ways=%d step %d %s: error divergence: %v / %v / %v",
					tc.ways, step, inst.Op.Name(), e1, e2, e3)
			}
			if o1 != o2 || o1 != o3 || w1 != w2 || w1 != w3 {
				t.Fatalf("ways=%d step %d %s: scalar divergence: (%d,%v) / (%d,%v) / (%d,%v)",
					tc.ways, step, inst.Op.Name(), o1, w1, o2, w2, o3, w3)
			}
			if step%37 == 0 {
				for qa := 0; qa < numRegs+firstReg; qa++ {
					dv, rv, sv := dense.Reg(uint8(qa)), reQ.Reg(uint8(qa)), reSpill.Reg(uint8(qa))
					if !dv.Equal(rv) {
						t.Fatalf("ways=%d step %d: @%d dense %s vs re %s", tc.ways, step, qa, dv, rv)
					}
					if !dv.Equal(sv) {
						t.Fatalf("ways=%d step %d: @%d dense %s vs re-spill %s", tc.ways, step, qa, dv, sv)
					}
				}
			}
		}
		if reSpill.Spills() == 0 && tc.ways > 0 {
			t.Fatalf("ways=%d: spill-heavy backend never spilled", tc.ways)
		}
	}
}

// TestREBackendSmallChunks exercises chunkWays < ways, where patterns have
// real multi-run structure.
func TestREBackendSmallChunks(t *testing.T) {
	dense, err := NewFromConfig(Config{Ways: 9})
	if err != nil {
		t.Fatal(err)
	}
	reQ, err := NewFromConfig(Config{Ways: 9, Backend: BackendRE, ChunkWays: 4, SpillRuns: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	for step := 0; step < 400; step++ {
		inst := randInst(r, 9, 6)
		rd := uint16(r.Uint32())
		o1, w1, e1 := dense.Exec(inst, rd)
		o2, w2, e2 := reQ.Exec(inst, rd)
		if (e1 == nil) != (e2 == nil) || o1 != o2 || w1 != w2 {
			t.Fatalf("step %d %s: divergence", step, inst.Op.Name())
		}
	}
	for qa := 0; qa < 6; qa++ {
		if !dense.Reg(uint8(qa)).Equal(reQ.Reg(uint8(qa))) {
			t.Fatalf("@%d diverged", qa)
		}
	}
}

// TestREBackendBeyondDense runs the backend past the dense wall (E > 16):
// no dense mirror exists, so results are pinned against analytic values.
func TestREBackendBeyondDense(t *testing.T) {
	const ways = 18
	q, err := NewFromConfig(Config{Ways: ways, Backend: BackendRE})
	if err != nil {
		t.Fatal(err)
	}
	if q.Backend() != BackendRE {
		t.Fatal("backend not re")
	}
	mustExec := func(inst isa.Inst, rd uint16) uint16 {
		t.Helper()
		out, _, err := q.Exec(inst, rd)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// @1 = H(17), @2 = H(16), @3 = @1 AND @2: population 2^18/4 = 65536.
	mustExec(isa.Inst{Op: isa.OpQHad, QA: 1, K: 17}, 0)
	mustExec(isa.Inst{Op: isa.OpQHad, QA: 2, K: 16}, 0)
	mustExec(isa.Inst{Op: isa.OpQAnd, QA: 3, QB: 1, QC: 2}, 0)
	if p := q.RegPattern(3); p.Pop() != 1<<16 {
		t.Fatalf("AND pop = %d, want %d", p.Pop(), 1<<16)
	}
	// pop through the ISA truncates to 16 bits: 65536 -> 0. The full count
	// is visible through RegPattern; the truncation is the documented ISA
	// limit, not state corruption.
	if got := mustExec(isa.Inst{Op: isa.OpQPop, QA: 3}, 0); got != 0 {
		t.Fatalf("truncated pop = %d, want 0", got)
	}
	// meas of channel 0 (both high bits clear there): 0.
	if got := mustExec(isa.Inst{Op: isa.OpQMeas, QA: 3}, 0); got != 0 {
		t.Fatalf("meas = %d, want 0", got)
	}
	// Spilling is impossible above the dense wall.
	if q.Spills() != 0 {
		t.Fatalf("spilled %d times with no dense form", q.Spills())
	}
	// Compression: every register so far is O(1) runs, far below 2^2 chunks.
	if p := q.RegPattern(3); p.NumRuns() > 4 {
		t.Fatalf("structured pattern has %d runs", p.NumRuns())
	}
}

func TestREBackendReset(t *testing.T) {
	q, err := NewFromConfig(Config{Ways: 6, ConstantRegs: true, Backend: BackendRE})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpQCnot, QA: 20, QB: ConstOneReg()}, 0); err != nil {
		t.Fatal(err)
	}
	if !q.Reg(20).All() {
		t.Fatal("cnot from constant one failed")
	}
	q.Reset()
	if q.Reg(20).Any() {
		t.Fatal("reset left state in @20")
	}
	if !q.Reg(ConstOneReg()).All() {
		t.Fatal("reset clobbered the constant bank")
	}
	if !q.Reg(ConstHadReg(3)).Equal(aob.HadVector(6, 3)) {
		t.Fatal("reset clobbered Hadamard constants")
	}
	// Writes to the reserved bank still refuse.
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpQZero, QA: ConstOneReg()}, 0); err == nil {
		t.Fatal("write to reserved register succeeded")
	}
}

func TestNewFromConfigValidation(t *testing.T) {
	bad := []Config{
		{Ways: -1},
		{Ways: aob.MaxWays + 1},
		{Backend: "zstd"},
		{Backend: BackendRE, Ways: MaxREWays + 1},
		{Backend: BackendRE, Ways: 8, ChunkWays: 9},
		{Backend: BackendRE, Ways: 8, ChunkWays: -1},
	}
	for _, cfg := range bad {
		if _, err := NewFromConfig(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	// Zero config is the paper's dense hardware.
	q, err := NewFromConfig(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Ways() != aob.MaxWays || q.Backend() != BackendDense {
		t.Fatalf("zero config: ways=%d backend=%s", q.Ways(), q.Backend())
	}
	// RE default ways is the dense maximum, default chunk the full width.
	q, err = NewFromConfig(Config{Backend: BackendRE})
	if err != nil {
		t.Fatal(err)
	}
	if q.Ways() != aob.MaxWays || q.Space().ChunkWays() != aob.MaxWays {
		t.Fatalf("re defaults: ways=%d chunkWays=%d", q.Ways(), q.Space().ChunkWays())
	}
}
