package qat

import (
	"testing"

	"tangled/internal/isa"
)

// FuzzAoBvsRE drives a random Qat instruction stream through the dense AoB
// register file and the RE compressed one (with a tiny spill budget so the
// spill path is constantly exercised) and asserts the two backends stay
// channel-exact. Input encoding: byte 0 picks ways (0..8), byte 1 the chunk
// ways, then (op, regs, k) byte triples.
func FuzzAoBvsRE(f *testing.F) {
	f.Add([]byte{6, 3, 2, 0x10, 1, 4, 0x21, 0, 8, 0x12, 2, 13, 0x01, 0})
	f.Add([]byte{3, 1, 0, 0x00, 0, 9, 0x21, 0, 10, 0x31, 1})
	f.Add([]byte{8, 4, 2, 0x01, 7, 6, 0x12, 3, 12, 0x00, 0, 11, 0x05, 0})
	f.Add([]byte{0, 0, 1, 0x00, 0, 13, 0x00, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		ways := int(data[0] % 9)
		chunkWays := 0
		if ways > 0 {
			chunkWays = int(data[1]) % (ways + 1)
		}
		data = data[2:]

		dense, err := NewFromConfig(Config{Ways: ways})
		if err != nil {
			t.Fatal(err)
		}
		reQ, err := NewFromConfig(Config{Ways: ways, Backend: BackendRE,
			ChunkWays: chunkWays, SpillRuns: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Keep the symbol table tiny so intern resets happen mid-stream.
		reQ.Space().SetSymbolCap(16)

		const numRegs = 6
		steps := 0
		for len(data) >= 3 {
			op := qatOps[int(data[0])%len(qatOps)]
			inst := isa.Inst{
				Op: op,
				QA: data[1] % numRegs,
				QB: (data[1] >> 4) % numRegs,
				QC: data[2] % numRegs,
			}
			if ways > 0 {
				inst.K = (data[2] >> 4) % uint8(ways)
			}
			rd := uint16(data[1])<<8 | uint16(data[2])
			data = data[3:]
			o1, w1, e1 := dense.Exec(inst, rd)
			o2, w2, e2 := reQ.Exec(inst, rd)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d %s: error divergence: %v vs %v", steps, op.Name(), e1, e2)
			}
			if o1 != o2 || w1 != w2 {
				t.Fatalf("step %d %s: scalar divergence: (%d,%v) vs (%d,%v)",
					steps, op.Name(), o1, w1, o2, w2)
			}
			steps++
		}
		for qa := uint8(0); qa < numRegs; qa++ {
			dv, rv := dense.Reg(qa), reQ.Reg(qa)
			if !dv.Equal(rv) {
				t.Fatalf("@%d diverged after %d steps: dense %s vs re %s", qa, steps, dv, rv)
			}
		}
	})
}
