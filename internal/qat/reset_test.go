package qat

import (
	"reflect"
	"testing"

	"tangled/internal/isa"
)

// These tests pin the allocation-free Reset contract relied on by pooled
// machine reuse (package farm).

func TestResetReusesOpsMapInPlace(t *testing.T) {
	q := New(4)
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpQOne, QA: 3}, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpQNot, QA: 3}, 0); err != nil {
		t.Fatal(err)
	}
	if len(q.Ops) == 0 {
		t.Fatal("fixture executed no ops")
	}
	before := reflect.ValueOf(q.Ops).Pointer()
	q.Reset()
	if len(q.Ops) != 0 {
		t.Fatalf("Reset left op counters: %v", q.Ops)
	}
	if after := reflect.ValueOf(q.Ops).Pointer(); after != before {
		t.Fatal("Reset reallocated the Ops map; it must clear in place")
	}
}

func TestResetClearsRegistersPreservingConstants(t *testing.T) {
	q := NewWithConstants(4)
	if _, _, err := q.Exec(isa.Inst{Op: isa.OpQOne, QA: 100}, 0); err != nil {
		t.Fatal(err)
	}
	q.Reset()
	if got := q.Reg(100).Pop(); got != 0 {
		t.Fatalf("non-reserved @100 not cleared: pop %d", got)
	}
	if got := q.Reg(ConstOneReg()).Pop(); got != q.Reg(0).Channels() {
		t.Fatalf("constant @1 damaged by Reset: pop %d", got)
	}
	for k := 0; k < 4; k++ {
		if got := q.Reg(ConstHadReg(k)).Pop(); got != q.Reg(0).Channels()/2 {
			t.Fatalf("constant H%d damaged by Reset: pop %d", k, got)
		}
	}
}

// TestBackToBackProgramsSeeCleanState runs two different instruction
// sequences on one coprocessor with a Reset between them and verifies the
// second sees no residue — the single-machine version of the farm's pooled
// back-to-back regression.
func TestBackToBackProgramsSeeCleanState(t *testing.T) {
	q := New(4)
	// "Program" 1: saturate a few registers.
	for _, qa := range []uint8{0, 5, 200, 255} {
		if _, _, err := q.Exec(isa.Inst{Op: isa.OpQOne, QA: qa}, 0); err != nil {
			t.Fatal(err)
		}
	}
	q.Reset()
	// "Program" 2: a pop over every register must see zero everywhere.
	for qa := 0; qa < isa.NumQRegs; qa++ {
		out, writes, err := q.Exec(isa.Inst{Op: isa.OpQPop, QA: uint8(qa)}, 0)
		if err != nil || !writes {
			t.Fatalf("@%d pop: writes=%v err=%v", qa, writes, err)
		}
		meas, _, err := q.Exec(isa.Inst{Op: isa.OpQMeas, QA: uint8(qa)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out+meas != 0 {
			t.Fatalf("@%d holds population %d after Reset", qa, out+meas)
		}
	}
}
