// Package qat models the architectural state of the Qat coprocessor: 256
// AoB registers (@0..@255) and the execution semantics of the Table 3
// instructions. Qat has no path to host memory — "all AoB values are
// exclusively held in Qat coprocessor registers" — so this is the complete
// state.
//
// The register width is a construction parameter: 16 ways (65,536-bit
// registers) for the paper's full design, 8 ways for the student versions,
// and anything smaller for exhaustive testing.
package qat

import (
	"fmt"

	"tangled/internal/aob"
	"tangled/internal/energy"
	"tangled/internal/isa"
	"tangled/internal/re"
)

// Coprocessor is one Qat instance.
type Coprocessor struct {
	ways int
	regs [isa.NumQRegs]*aob.Vector

	// re, when non-nil, replaces the dense register file above with the
	// run-length-compressed one (see refile.go); regs stays nil-filled then.
	re *reFile

	// reserved marks registers exposed as hard-wired constants (the
	// Section 5 simplification); writes to them report an error.
	reserved [isa.NumQRegs]bool

	// Ops counts executed Qat operations, by opcode.
	Ops map[isa.Op]uint64

	// Meter, when non-nil, accumulates switching/erasure energy proxies
	// for every executed operation (see package energy).
	Meter *energy.Meter

	// Metrics, when non-nil, feeds the shared performance-counter set (see
	// metrics.go). Like Meter it is a host attachment, but unlike Meter it
	// is detached by cpu.Machine.Reset: counters are per-tenant, energy
	// metering spans runs by design.
	Metrics *Metrics
}

// New returns a Qat coprocessor with ways-way entanglement and all
// registers cleared.
func New(ways int) *Coprocessor {
	q := &Coprocessor{ways: ways, Ops: make(map[isa.Op]uint64)}
	for i := range q.regs {
		q.regs[i] = aob.New(ways)
	}
	return q
}

// NewWithConstants returns a coprocessor implementing the paper's Section 5
// simplification: @0 hard-wired to 0, @1 to 1, and @2..@(2+ways-1) to the
// Hadamard patterns H0..H(ways-1), replacing the zero/one/had instructions
// with constant-initialized registers. The reserved registers reject
// writes.
func NewWithConstants(ways int) *Coprocessor {
	q := New(ways)
	q.regs[1].One()
	q.reserved[0], q.reserved[1] = true, true
	for k := 0; k < ways; k++ {
		q.regs[2+k].Had(k)
		q.reserved[2+k] = true
	}
	return q
}

// Ways returns the entanglement degree of the register file.
func (q *Coprocessor) Ways() int { return q.ways }

// ConstZeroReg returns the register hard-wired to 0 under the
// NewWithConstants convention.
func ConstZeroReg() uint8 { return 0 }

// ConstOneReg returns the register hard-wired to all-ones under the
// NewWithConstants convention.
func ConstOneReg() uint8 { return 1 }

// ConstHadReg returns the register hard-wired to Hadamard pattern k under
// the NewWithConstants convention.
func ConstHadReg(k int) uint8 { return uint8(2 + k) }

// Reg exposes register qa for inspection (tests, tracing). On the dense
// backend the returned vector is live state; callers must not mutate it. On
// the RE backend it is a freshly materialized dense snapshot, which requires
// ways <= aob.MaxWays — above that there is no dense form and Reg panics;
// use RegPattern instead.
func (q *Coprocessor) Reg(qa uint8) *aob.Vector {
	if q.re == nil {
		return q.regs[qa]
	}
	if d := q.re.dense[qa]; d != nil {
		return d
	}
	v, err := q.re.pats[qa].ToDense()
	if err != nil {
		panic(fmt.Sprintf("qat: Reg(@%d) on %d-way re backend: %v", qa, q.ways, err))
	}
	return v
}

// RegPattern exposes register qa of the RE backend in compressed form
// (spilled slots are recompressed transiently). It returns nil on the dense
// backend.
func (q *Coprocessor) RegPattern(qa uint8) *re.Pattern {
	if q.re == nil {
		return nil
	}
	return q.re.pat(qa)
}

// SetReg overwrites register qa (test fixture helper; real programs build
// values with gates). On the RE backend the vector is compressed on entry,
// so its ways must still match the coprocessor's — which therefore must not
// exceed aob.MaxWays.
func (q *Coprocessor) SetReg(qa uint8, v *aob.Vector) {
	if v.Ways() != q.ways {
		panic(fmt.Sprintf("qat: vector ways %d != coprocessor ways %d", v.Ways(), q.ways))
	}
	if q.re != nil {
		p, err := q.re.sp.FromDense(v)
		if err != nil {
			panic(fmt.Sprintf("qat: SetReg(@%d): %v", qa, err))
		}
		if err := q.re.store(qa, p); err != nil {
			panic(fmt.Sprintf("qat: SetReg(@%d): %v", qa, err))
		}
		return
	}
	q.regs[qa] = v.Clone()
}

// Reset clears all non-reserved registers and the per-opcode counters. It
// reuses every allocation — register vectors are zeroed in place and the Ops
// map is emptied rather than replaced — so a pooled coprocessor can be reset
// between runs without touching the heap. An attached Meter is deliberately
// left accumulating (metering spans runs by design); detach or reset it
// separately when a machine changes tenants.
func (q *Coprocessor) Reset() {
	if q.re != nil {
		zero := q.re.sp.Zero()
		for i := range q.re.pats {
			if !q.reserved[i] {
				q.re.pats[i], q.re.dense[i] = zero, nil
			}
		}
		// The symbol space (intern table, memo) survives a reset the same
		// way the dense path keeps its allocations: it is a cache, bounded
		// by its own cap, and carries no channel state.
	} else {
		for i := range q.regs {
			if !q.reserved[i] {
				q.regs[i].Zero()
			}
		}
	}
	for k := range q.Ops {
		delete(q.Ops, k)
	}
}

func (q *Coprocessor) checkWrite(qa uint8) error {
	if q.reserved[qa] {
		return fmt.Errorf("qat: write to reserved constant register @%d", qa)
	}
	return nil
}

// Exec executes one Qat instruction. rd carries the Tangled register value
// consumed by meas/next/pop; the returned value and flag report a Tangled
// register write-back (only those three ops produce one).
func (q *Coprocessor) Exec(inst isa.Inst, rd uint16) (out uint16, writes bool, err error) {
	if q.re != nil {
		return q.execRE(inst, rd)
	}
	q.Ops[inst.Op]++
	a := q.regs[inst.QA]
	if q.Metrics != nil {
		// The op counter mirrors Ops (attempts); the word-op counter is
		// charged on success only, in the deferred hook below.
		q.Metrics.Ops.At(int(inst.Op) - int(isa.OpQZero)).Inc()
		defer func() {
			if err == nil {
				q.Metrics.WordOps.Add(wordOpsFor(inst.Op, a.NumWords()))
			}
		}()
	}
	var snapA, snapB *aob.Vector
	if q.Meter != nil {
		switch inst.Op {
		case isa.OpQMeas, isa.OpQNext, isa.OpQPop:
			q.Meter.Record(inst.Op)
		case isa.OpQSwap, isa.OpQCswap:
			snapA = a.Clone()
			snapB = q.regs[inst.QB].Clone()
		default:
			snapA = a.Clone()
		}
	}
	defer func() {
		if q.Meter == nil || err != nil || snapA == nil {
			return
		}
		if snapB != nil {
			q.Meter.Record(inst.Op, [2]*aob.Vector{snapA, q.regs[inst.QA]},
				[2]*aob.Vector{snapB, q.regs[inst.QB]})
			return
		}
		q.Meter.Record(inst.Op, [2]*aob.Vector{snapA, q.regs[inst.QA]})
	}()
	switch inst.Op {
	case isa.OpQZero:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		a.Zero()
	case isa.OpQOne:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		a.One()
	case isa.OpQNot:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		a.Not()
	case isa.OpQHad:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		if int(inst.K) >= q.ways {
			return 0, false, fmt.Errorf("qat: had pattern %d exceeds %d-way hardware", inst.K, q.ways)
		}
		a.Had(int(inst.K))
	case isa.OpQAnd:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		a.And(q.regs[inst.QB], q.regs[inst.QC])
	case isa.OpQOr:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		a.Or(q.regs[inst.QB], q.regs[inst.QC])
	case isa.OpQXor:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		a.Xor(q.regs[inst.QB], q.regs[inst.QC])
	case isa.OpQCnot:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		a.CNot(q.regs[inst.QB])
	case isa.OpQCcnot:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		a.CCNot(q.regs[inst.QB], q.regs[inst.QC])
	case isa.OpQSwap:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		if err := q.checkWrite(inst.QB); err != nil {
			return 0, false, err
		}
		a.Swap(q.regs[inst.QB])
	case isa.OpQCswap:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		if err := q.checkWrite(inst.QB); err != nil {
			return 0, false, err
		}
		a.CSwap(q.regs[inst.QB], q.regs[inst.QC])
	case isa.OpQMeas:
		return uint16(a.Meas(uint64(rd))), true, nil
	case isa.OpQNext:
		return uint16(a.Next(uint64(rd))), true, nil
	case isa.OpQPop:
		// pop counts 1s strictly after the given channel; with 16-way
		// hardware the count past channel 0 fits 16 bits (max 65535).
		return uint16(a.PopAfter(uint64(rd))), true, nil
	default:
		return 0, false, fmt.Errorf("qat: not a Qat op: %s", inst.Op.Name())
	}
	return 0, false, nil
}
