package qat

// The RE register file: an alternative Coprocessor backend that holds pbit
// state as run-length-compressed re.Pattern values instead of dense AoB
// vectors. This is the paper's answer to the E = 16 scaling wall — the
// Section 1.2 regular-expression representation promoted from a library
// (package re) to an execution engine behind the same Table 3 instruction
// semantics, so structured workloads above 16-way entanglement become
// servable.
//
// Each register is in exactly one of two states: compressed (a Pattern) or
// spilled (a dense AoB vector). Operations execute in the compressed domain
// — spilled operands are recompressed on use — and a result whose run count
// exceeds the spill budget is stored densely instead, bounding the memory a
// pathological (incompressible) value can occupy. Spilling is only possible
// when the total ways fit dense hardware (<= aob.MaxWays); above that the
// budget is ignored, because a dense fallback does not exist — that regime
// is exactly the one where the workload must stay structured.

import (
	"fmt"

	"tangled/internal/aob"
	"tangled/internal/isa"
	"tangled/internal/re"
)

// Backend names for Config.Backend.
const (
	// BackendDense is the default AoB register file (the paper's hardware).
	BackendDense = "dense"
	// BackendRE executes on run-length-compressed patterns.
	BackendRE = "re"
)

// MaxREWays bounds the entanglement degree of the RE backend. The ISA's
// 16-bit scalar registers make reductions above this width meaningless to
// read back, and chunk counts stay small (<= 256 chunks at the hardware
// chunk size).
const MaxREWays = 24

// DefaultSpillRuns is the run-count budget above which an RE-backend result
// is stored densely. At the default geometry a register at the budget costs
// about as much as the dense form it replaces, so holding more runs
// compressed would be a loss on both axes.
const DefaultSpillRuns = 64

// Config selects a register-file implementation and geometry.
// NewFromConfig is the constructor that honors it; New/NewWithConstants
// remain the dense shorthands.
type Config struct {
	// Ways is the entanglement degree; 0 means the full 16-way hardware.
	// The dense backend allows [0, aob.MaxWays]; RE allows [0, MaxREWays].
	Ways int
	// ConstantRegs selects the Section 5 constant-register variant.
	ConstantRegs bool
	// Backend is "" or BackendDense for the AoB file, BackendRE for the
	// compressed file.
	Backend string
	// ChunkWays is the RE symbol size; 0 means min(Ways, aob.MaxWays).
	ChunkWays int
	// SpillRuns is the RE spill budget: results with more runs are stored
	// densely. 0 means DefaultSpillRuns; negative disables spilling.
	SpillRuns int
}

// reFile is the compressed register file hanging off a Coprocessor.
type reFile struct {
	sp        *re.Space
	spillRuns int // <0 disables; only meaningful when ways <= aob.MaxWays
	pats      [isa.NumQRegs]*re.Pattern
	dense     [isa.NumQRegs]*aob.Vector // non-nil exactly when pats is nil
	spills    uint64
}

// NewFromConfig builds a coprocessor per cfg. The zero Config is the
// paper's dense 16-way hardware.
func NewFromConfig(cfg Config) (*Coprocessor, error) {
	ways := cfg.Ways
	switch cfg.Backend {
	case "", BackendDense:
		if ways == 0 {
			ways = aob.MaxWays
		}
		if ways < 0 || ways > aob.MaxWays {
			return nil, fmt.Errorf("qat: dense ways %d out of range [0,%d]", cfg.Ways, aob.MaxWays)
		}
		if cfg.ConstantRegs {
			return NewWithConstants(ways), nil
		}
		return New(ways), nil
	case BackendRE:
	default:
		return nil, fmt.Errorf("qat: unknown backend %q", cfg.Backend)
	}

	if ways == 0 {
		ways = aob.MaxWays
	}
	if ways < 0 || ways > MaxREWays {
		return nil, fmt.Errorf("qat: re ways %d out of range [0,%d]", cfg.Ways, MaxREWays)
	}
	chunkWays := cfg.ChunkWays
	if chunkWays == 0 {
		chunkWays = ways
		if chunkWays > aob.MaxWays {
			chunkWays = aob.MaxWays
		}
	}
	if chunkWays < 0 || chunkWays > aob.MaxWays || chunkWays > ways {
		return nil, fmt.Errorf("qat: re chunkWays %d out of range [0,min(%d,ways)]", cfg.ChunkWays, aob.MaxWays)
	}
	sp, err := re.NewSpace(ways, chunkWays)
	if err != nil {
		return nil, err
	}
	spill := cfg.SpillRuns
	if spill == 0 {
		spill = DefaultSpillRuns
	}
	if ways > aob.MaxWays {
		spill = -1 // no dense form exists to spill into
	}
	q := &Coprocessor{ways: ways, Ops: make(map[isa.Op]uint64)}
	q.re = &reFile{sp: sp, spillRuns: spill}
	for i := range q.re.pats {
		q.re.pats[i] = sp.Zero()
	}
	if cfg.ConstantRegs {
		q.re.pats[1] = sp.One()
		q.reserved[0], q.reserved[1] = true, true
		for k := 0; k < ways; k++ {
			q.re.pats[2+k] = sp.Had(k)
			q.reserved[2+k] = true
		}
	}
	return q, nil
}

// Backend reports which register-file implementation this coprocessor runs.
func (q *Coprocessor) Backend() string {
	if q.re != nil {
		return BackendRE
	}
	return BackendDense
}

// Spills reports how many RE-backend results exceeded the spill budget and
// were stored densely. Always 0 on the dense backend.
func (q *Coprocessor) Spills() uint64 {
	if q.re == nil {
		return 0
	}
	return q.re.spills
}

// Space exposes the RE backend's symbol space (nil on the dense backend) so
// hosts can read compression-health counters like SymbolCount and Resets.
func (q *Coprocessor) Space() *re.Space {
	if q.re == nil {
		return nil
	}
	return q.re.sp
}

// pat returns register i in compressed form, recompressing a spilled slot
// transiently (the slot itself stays dense; only results re-enter the
// compressed state, and only under the budget).
func (f *reFile) pat(i uint8) *re.Pattern {
	if p := f.pats[i]; p != nil {
		return p
	}
	p, err := f.sp.FromDense(f.dense[i])
	if err != nil {
		// dense slots exist only when ways <= aob.MaxWays and always match
		// the space geometry, so this is unreachable absent a bug.
		panic(fmt.Sprintf("qat: recompress of spilled register @%d: %v", i, err))
	}
	return p
}

// store writes a result pattern into register i, spilling to dense when it
// exceeds the run budget.
func (f *reFile) store(i uint8, p *re.Pattern) error {
	if f.spillRuns >= 0 && p.NumRuns() > f.spillRuns {
		v, err := p.ToDense()
		if err != nil {
			return fmt.Errorf("qat: spill of register @%d: %v", i, err)
		}
		f.pats[i], f.dense[i] = nil, v
		f.spills++
		return nil
	}
	f.pats[i], f.dense[i] = p, nil
	return nil
}

// runsIn reports the compressed length a register currently occupies, for
// the word-op work metric: spilled slots count as their chunk count (every
// chunk is distinct work, same as dense).
func (f *reFile) runsIn(i uint8) uint64 {
	if f.pats[i] != nil {
		return uint64(f.pats[i].NumRuns())
	}
	return f.sp.Channels() >> uint(f.sp.ChunkWays())
}

// chunkWords is the dense word cost of one symbol.
func (f *reFile) chunkWords() uint64 {
	cw := f.sp.ChunkWays()
	if cw < 6 {
		return 1
	}
	return uint64(1) << uint(cw-6)
}

// execRE is Exec for the compressed register file. Semantics match the
// dense switch case for case; only the representation differs. The energy
// meter is charged per op class with no toggle pairs (toggle counting is a
// dense-representation proxy; BACKENDS.md records the difference), and the
// word-op counter is charged with compressed work: chunk words times the
// runs the operation actually processed.
func (q *Coprocessor) execRE(inst isa.Inst, rd uint16) (out uint16, writes bool, err error) {
	f := q.re
	q.Ops[inst.Op]++
	if q.Metrics != nil {
		q.Metrics.Ops.At(int(inst.Op) - int(isa.OpQZero)).Inc()
	}
	if q.Meter != nil {
		q.Meter.Record(inst.Op)
	}
	charge := func(runs uint64) {
		if q.Metrics != nil {
			q.Metrics.WordOps.Add(runs * f.chunkWords())
		}
	}

	writeTo := func(dst uint8, p *re.Pattern) error {
		if err := f.store(dst, p); err != nil {
			return err
		}
		charge(uint64(p.NumRuns()))
		return nil
	}

	switch inst.Op {
	case isa.OpQZero:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		return 0, false, writeTo(inst.QA, f.sp.Zero())
	case isa.OpQOne:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		return 0, false, writeTo(inst.QA, f.sp.One())
	case isa.OpQHad:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		if int(inst.K) >= q.ways {
			return 0, false, fmt.Errorf("qat: had pattern %d exceeds %d-way hardware", inst.K, q.ways)
		}
		return 0, false, writeTo(inst.QA, f.sp.Had(int(inst.K)))
	case isa.OpQNot:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		return 0, false, writeTo(inst.QA, f.pat(inst.QA).Not())
	case isa.OpQAnd:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		return 0, false, writeTo(inst.QA, f.pat(inst.QB).And(f.pat(inst.QC)))
	case isa.OpQOr:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		return 0, false, writeTo(inst.QA, f.pat(inst.QB).Or(f.pat(inst.QC)))
	case isa.OpQXor:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		return 0, false, writeTo(inst.QA, f.pat(inst.QB).Xor(f.pat(inst.QC)))
	case isa.OpQCnot:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		return 0, false, writeTo(inst.QA, f.pat(inst.QA).Xor(f.pat(inst.QB)))
	case isa.OpQCcnot:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		ctrl := f.pat(inst.QB).And(f.pat(inst.QC))
		return 0, false, writeTo(inst.QA, f.pat(inst.QA).Xor(ctrl))
	case isa.OpQSwap:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		if err := q.checkWrite(inst.QB); err != nil {
			return 0, false, err
		}
		f.pats[inst.QA], f.pats[inst.QB] = f.pats[inst.QB], f.pats[inst.QA]
		f.dense[inst.QA], f.dense[inst.QB] = f.dense[inst.QB], f.dense[inst.QA]
		charge(f.runsIn(inst.QA) + f.runsIn(inst.QB))
		return 0, false, nil
	case isa.OpQCswap:
		if err := q.checkWrite(inst.QA); err != nil {
			return 0, false, err
		}
		if err := q.checkWrite(inst.QB); err != nil {
			return 0, false, err
		}
		// Fredkin as in the dense kernel: diff = (a^b)&ctrl, then a^=diff,
		// b^=diff — conserving total population.
		a, b := f.pat(inst.QA), f.pat(inst.QB)
		diff := a.Xor(b).And(f.pat(inst.QC))
		if err := writeTo(inst.QA, a.Xor(diff)); err != nil {
			return 0, false, err
		}
		return 0, false, writeTo(inst.QB, b.Xor(diff))
	case isa.OpQMeas:
		charge(1)
		return uint16(f.pat(inst.QA).Meas(uint64(rd))), true, nil
	case isa.OpQNext:
		charge(f.runsIn(inst.QA))
		// Above 16 ways the 16-bit destination truncates the channel
		// number — an ISA limit, not a backend one (BACKENDS.md).
		return uint16(f.pat(inst.QA).Next(uint64(rd))), true, nil
	case isa.OpQPop:
		charge(f.runsIn(inst.QA))
		return uint16(f.pat(inst.QA).PopAfter(uint64(rd))), true, nil
	default:
		return 0, false, fmt.Errorf("qat: not a Qat op: %s", inst.Op.Name())
	}
}
