package qat

// Coprocessor performance counters: per-Qat-op execution counts and the AoB
// word-operation cost underneath them. The PBP model's whole point is that
// a "quantum" gate is really NumWords plain 64-bit word operations, so the
// word-op counter is the architectural work metric — the figure the paper's
// hardware-feasibility discussion (gate counts, OR-reduction width) cares
// about — while the op counter is the instruction-stream view. Costs are
// classed with the energy package's thermodynamic taxonomy so the counter
// agrees with what the energy meter would charge: swap-family ops touch two
// destination registers, read-only reductions scan one.

import (
	"tangled/internal/energy"
	"tangled/internal/isa"
	"tangled/internal/obs"
)

// qatOpNames lists the Qat opcodes in isa order, OpQZero first.
func qatOpNames() []string {
	names := make([]string, isa.NumOps-int(isa.OpQZero))
	for i := range names {
		names[i] = isa.Op(int(isa.OpQZero) + i).Name()
	}
	return names
}

// Metrics is the coprocessor counter set; nil disables instrumentation.
type Metrics struct {
	// Ops counts executed Qat instructions by opcode (the shared-handle,
	// cross-machine counterpart of Coprocessor.Ops).
	Ops *obs.CounterVec
	// WordOps counts 64-bit AoB words processed: the SIMD work a gate-level
	// Qat implementation performs, NumWords per written register (two for
	// the swap family) and one scan for the next/pop reductions.
	WordOps *obs.Counter
}

// NewMetrics registers the coprocessor counters on r, or returns nil when r
// is nil.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Ops: r.CounterVec("qat_op_executed_total",
			"executed Qat coprocessor instructions by opcode", "op", qatOpNames()),
		WordOps: r.Counter("qat_aob_word_ops_total",
			"64-bit AoB words processed by Qat operations"),
	}
}

// wordOpsFor returns the AoB word-operation cost of one executed op on
// numWords-word registers, classed per the energy model: every op that
// writes a register costs one full pass over it (two registers for
// swap/cswap); the next/pop reductions scan the register; meas reads one
// channel (one word).
func wordOpsFor(op isa.Op, numWords int) uint64 {
	switch energy.Classify(op) {
	case energy.Reversible, energy.Irreversible:
		if op == isa.OpQSwap || op == isa.OpQCswap {
			return 2 * uint64(numWords)
		}
		return uint64(numWords)
	default: // ReadOnly
		if op == isa.OpQMeas {
			return 1
		}
		return uint64(numWords)
	}
}

// RegisterMeter exposes an energy meter's accumulators as scrape-time
// gauges on r, wiring the Landauer/adiabatic cost model (package energy)
// into the metrics export. The meter keeps its own lifecycle (it is
// deliberately not reset with the coprocessor); these gauges just read it.
func RegisterMeter(r *obs.Registry, m *energy.Meter) {
	if r == nil || m == nil {
		return
	}
	r.GaugeFunc("qat_energy_switched_bits",
		"register bits toggled by Qat operations (CMOS dynamic-power proxy)",
		func() float64 { return float64(m.SwitchedBits) })
	r.GaugeFunc("qat_energy_erased_bits",
		"toggled bits written by irreversible Qat operations (Landauer proxy)",
		func() float64 { return float64(m.ErasedBits) })
	r.GaugeFunc("qat_energy_adiabatic_recoverable_bits",
		"switching energy an ideal adiabatic implementation could recover",
		func() float64 { return float64(m.AdiabaticRecoverable()) })
}
