// Package aob implements the Array-of-Bits (AoB) representation at the heart
// of the parallel bit pattern (PBP) model described in Dietz, "Tangled: A
// Conventional Processor Integrating A Quantum-Inspired Coprocessor"
// (ICPP Workshops 2021).
//
// An E-way entangled pbit value is stored as a vector of 2^E bits. Each bit
// position is an entanglement channel: the bit at channel c is the value this
// pbit takes in the joint outcome selected by c. Operations on AoB vectors
// are plain bitwise SIMD operations over the packed words, which is exactly
// how the Qat coprocessor's datapath treats them.
//
// The paper's Qat hardware fixes E = 16 (65,536-bit vectors); the student
// implementations used E = 8 (256-bit vectors). This package supports any
// 0 <= E <= MaxWays so both configurations — and everything smaller, which
// is handy for exhaustive testing — can be simulated.
package aob

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxWays is the maximum supported degree of entanglement. The paper's Qat
// coprocessor implements exactly 16-way entanglement; larger entanglement is
// meant to be layered on top using the RE representation (package re), with
// AoB vectors as its symbols.
const MaxWays = 16

// wordBits is the number of bits packed per storage word.
const wordBits = 64

// hadPats precomputes the six Hadamard patterns whose period fits inside one
// 64-bit word: hadPats[k] holds bit k of the bit index at every position
// (2^k zeros then 2^k ones, repeating). Had(k) for k < 6 is then a plain
// word fill instead of a 64-iteration bit build — the word-parallel (SWAR)
// form of the Figure 7 initializer.
var hadPats = [6]uint64{
	0xAAAAAAAAAAAAAAAA, // k=0: 01 repeating
	0xCCCCCCCCCCCCCCCC, // k=1: 0011 repeating
	0xF0F0F0F0F0F0F0F0, // k=2: 00001111 repeating
	0xFF00FF00FF00FF00, // k=3
	0xFFFF0000FFFF0000, // k=4
	0xFFFFFFFF00000000, // k=5
}

// Vector is an AoB value: a bit vector of exactly 2^ways bits packed into
// 64-bit words, least-significant channel first. A Vector with ways < 6
// occupies the low 2^ways bits of a single word; the unused high bits are
// kept zero as an invariant so that whole-word operations need no masking
// beyond the final word.
type Vector struct {
	ways  int
	words []uint64
}

// New returns an all-zero AoB vector supporting ways-way entanglement.
// It panics if ways is negative or exceeds MaxWays: Qat register width is a
// hardware parameter, so a bad value is a programming error, not an input
// error.
func New(ways int) *Vector {
	checkWays(ways)
	return &Vector{ways: ways, words: make([]uint64, wordsFor(ways))}
}

func checkWays(ways int) {
	if ways < 0 || ways > MaxWays {
		panic(fmt.Sprintf("aob: ways %d out of range [0,%d]", ways, MaxWays))
	}
}

// wordsFor returns the number of 64-bit words backing a 2^ways-bit vector.
func wordsFor(ways int) int {
	n := (uint64(1)<<uint(ways) + wordBits - 1) / wordBits
	return int(n)
}

// Ways returns the degree of entanglement E.
func (v *Vector) Ways() int { return v.ways }

// Channels returns the number of entanglement channels, 2^E.
func (v *Vector) Channels() uint64 { return uint64(1) << uint(v.ways) }

// chanMask returns the mask selecting valid channel numbers (Channels()-1).
func (v *Vector) chanMask() uint64 { return v.Channels() - 1 }

// lastWordMask returns the mask of valid bits in the final storage word.
func (v *Vector) lastWordMask() uint64 {
	if v.ways >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << v.Channels()) - 1
}

// clampTail zeroes the invalid high bits of the last word, restoring the
// packing invariant after a whole-word operation such as NOT.
func (v *Vector) clampTail() {
	v.words[len(v.words)-1] &= v.lastWordMask()
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	w := &Vector{ways: v.ways, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of o. Both vectors must have the
// same number of ways.
func (v *Vector) CopyFrom(o *Vector) {
	v.mustMatch(o)
	copy(v.words, o.words)
}

func (v *Vector) mustMatch(o *Vector) {
	if v.ways != o.ways {
		panic(fmt.Sprintf("aob: mismatched ways %d vs %d", v.ways, o.ways))
	}
}

// Zero sets every channel of v to 0 (the Qat "zero @a" instruction).
func (v *Vector) Zero() {
	clear(v.words)
}

// One sets every channel of v to 1 (the Qat "one @a" instruction). The tail
// clamp is fused into the fill: the final word is written once, already
// masked.
func (v *Vector) One() {
	w := v.words
	last := len(w) - 1
	for i := 0; i < last; i++ {
		w[i] = ^uint64(0)
	}
	w[last] = v.lastWordMask()
}

// Had overwrites v with the k-th standard Hadamard initializer pattern (the
// Qat "had @a,k" instruction): channel e holds bit k of the binary
// representation of e, i.e. a repeating run of 2^k zeros followed by 2^k
// ones. It panics if k is outside [0, ways): the hardware has no pattern
// beyond the supported entanglement.
//
// The write is word-parallel in both regimes: patterns with sub-word period
// (k < 6) are a fill with a precomputed period word, wider ones are written
// as whole runs of 2^(k-6) zero words then one words, so no per-bit or
// per-word modular arithmetic survives on the hot path.
func (v *Vector) Had(k int) {
	if k < 0 || k >= v.ways {
		panic(fmt.Sprintf("aob: had channel-set index %d out of range [0,%d)", k, v.ways))
	}
	w := v.words
	if k >= 6 {
		// Whole words alternate between all-zero and all-one in runs of
		// 2^(k-6) words; len(w) is a multiple of 2*run because ways > k.
		run := 1 << uint(k-6)
		for i := 0; i < len(w); i += 2 * run {
			zero, one := w[i:i+run], w[i+run:i+2*run]
			for j := range zero {
				zero[j] = 0
			}
			for j := range one {
				one[j] = ^uint64(0)
			}
		}
		return
	}
	pat := hadPats[k]
	last := len(w) - 1
	for i := 0; i < last; i++ {
		w[i] = pat
	}
	w[last] = pat & v.lastWordMask()
}

// HadVector returns a fresh ways-way vector holding Hadamard pattern k.
func HadVector(ways, k int) *Vector {
	v := New(ways)
	v.Had(k)
	return v
}

// OneVector returns a fresh ways-way vector with every channel set.
func OneVector(ways int) *Vector {
	v := New(ways)
	v.One()
	return v
}

// Get returns the bit at entanglement channel ch. Channel numbers are taken
// modulo the channel count, mirroring how a hardware index register wider
// than the channel space would simply ignore the unused high bits.
func (v *Vector) Get(ch uint64) bool {
	ch &= v.chanMask()
	return (v.words[ch/wordBits]>>(ch%wordBits))&1 == 1
}

// Set writes the bit at entanglement channel ch (modulo the channel count).
// Qat itself has no single-bit write instruction — values are built with
// gates — but Set is essential for building test fixtures and for the RE
// layer's chunk surgery.
func (v *Vector) Set(ch uint64, bit bool) {
	ch &= v.chanMask()
	if bit {
		v.words[ch/wordBits] |= uint64(1) << (ch % wordBits)
	} else {
		v.words[ch/wordBits] &^= uint64(1) << (ch % wordBits)
	}
}

// Meas implements the Qat "meas $d,@a" instruction: it returns @a[$d] as the
// integer 0 or 1 without disturbing the superposition.
func (v *Vector) Meas(ch uint64) uint64 {
	if v.Get(ch) {
		return 1
	}
	return 0
}

// The binary and ternary word loops below share one shape: operand slices
// are re-sliced to the destination length up front (hoisting the bounds
// checks out of the loop) and the body runs four words per iteration with a
// scalar tail. On the paper's 16-way hardware a register is 1024 words, so
// the unrolled body carries essentially the whole operation.

// And sets v = a AND b channel-wise (Qat "and @a,@b,@c"). The operand
// vectors may alias v.
func (v *Vector) And(a, b *Vector) {
	v.mustMatch(a)
	v.mustMatch(b)
	vw := v.words
	aw, bw := a.words[:len(vw)], b.words[:len(vw)]
	i := 0
	for ; i+4 <= len(vw); i += 4 {
		vw[i] = aw[i] & bw[i]
		vw[i+1] = aw[i+1] & bw[i+1]
		vw[i+2] = aw[i+2] & bw[i+2]
		vw[i+3] = aw[i+3] & bw[i+3]
	}
	for ; i < len(vw); i++ {
		vw[i] = aw[i] & bw[i]
	}
}

// Or sets v = a OR b channel-wise (Qat "or @a,@b,@c").
func (v *Vector) Or(a, b *Vector) {
	v.mustMatch(a)
	v.mustMatch(b)
	vw := v.words
	aw, bw := a.words[:len(vw)], b.words[:len(vw)]
	i := 0
	for ; i+4 <= len(vw); i += 4 {
		vw[i] = aw[i] | bw[i]
		vw[i+1] = aw[i+1] | bw[i+1]
		vw[i+2] = aw[i+2] | bw[i+2]
		vw[i+3] = aw[i+3] | bw[i+3]
	}
	for ; i < len(vw); i++ {
		vw[i] = aw[i] | bw[i]
	}
}

// Xor sets v = a XOR b channel-wise (Qat "xor @a,@b,@c").
func (v *Vector) Xor(a, b *Vector) {
	v.mustMatch(a)
	v.mustMatch(b)
	vw := v.words
	aw, bw := a.words[:len(vw)], b.words[:len(vw)]
	i := 0
	for ; i+4 <= len(vw); i += 4 {
		vw[i] = aw[i] ^ bw[i]
		vw[i+1] = aw[i+1] ^ bw[i+1]
		vw[i+2] = aw[i+2] ^ bw[i+2]
		vw[i+3] = aw[i+3] ^ bw[i+3]
	}
	for ; i < len(vw); i++ {
		vw[i] = aw[i] ^ bw[i]
	}
}

// Not flips every channel of v in place (Qat "not @a", the Pauli-X analog).
// The tail clamp is fused into the complement: the final word is flipped and
// masked in one write instead of a second pass.
func (v *Vector) Not() {
	w := v.words
	last := len(w) - 1
	for i := 0; i < last; i++ {
		w[i] = ^w[i]
	}
	w[last] = ^w[last] & v.lastWordMask()
}

// CNot implements the Qat "cnot @a,@b" controlled-NOT: v ^= ctrl. The
// control vector is unchanged (unless it aliases v, which in hardware terms
// is "cnot @a,@a" and correctly zeroes the register).
func (v *Vector) CNot(ctrl *Vector) {
	v.mustMatch(ctrl)
	vw := v.words
	cw := ctrl.words[:len(vw)]
	i := 0
	for ; i+4 <= len(vw); i += 4 {
		vw[i] ^= cw[i]
		vw[i+1] ^= cw[i+1]
		vw[i+2] ^= cw[i+2]
		vw[i+3] ^= cw[i+3]
	}
	for ; i < len(vw); i++ {
		vw[i] ^= cw[i]
	}
}

// CCNot implements the Qat "ccnot @a,@b,@c" Toffoli analog:
// v ^= (b AND c). Both controls are unchanged.
func (v *Vector) CCNot(b, c *Vector) {
	v.mustMatch(b)
	v.mustMatch(c)
	vw := v.words
	bw, cw := b.words[:len(vw)], c.words[:len(vw)]
	i := 0
	for ; i+4 <= len(vw); i += 4 {
		vw[i] ^= bw[i] & cw[i]
		vw[i+1] ^= bw[i+1] & cw[i+1]
		vw[i+2] ^= bw[i+2] & cw[i+2]
		vw[i+3] ^= bw[i+3] & cw[i+3]
	}
	for ; i < len(vw); i++ {
		vw[i] ^= bw[i] & cw[i]
	}
}

// Swap exchanges the contents of v and o (Qat "swap @a,@b").
func (v *Vector) Swap(o *Vector) {
	v.mustMatch(o)
	vw := v.words
	ow := o.words[:len(vw)]
	for i := range vw {
		vw[i], ow[i] = ow[i], vw[i]
	}
}

// CSwap implements the Qat "cswap @a,@b,@c" Fredkin analog: channels of v
// and o are exchanged exactly where ctrl holds a 1. The control is
// unchanged. As the paper notes, this is a channel-wise 1-of-2 multiplexer
// and preserves the total population of v and o ("billiard-ball
// conservancy").
func (v *Vector) CSwap(o, ctrl *Vector) {
	v.mustMatch(o)
	v.mustMatch(ctrl)
	vw := v.words
	ow, cw := o.words[:len(vw)], ctrl.words[:len(vw)]
	for i := range vw {
		diff := (vw[i] ^ ow[i]) & cw[i]
		vw[i] ^= diff
		ow[i] ^= diff
	}
}

// Next implements the Qat "next $d,@a" instruction: it returns the lowest
// entanglement channel number strictly greater than ch that holds a 1, or 0
// if no such channel exists. This is the paper's O(1)-summary replacement
// for the ANY/ALL/POP reductions of the earlier software-only PBP system.
func (v *Vector) Next(ch uint64) uint64 {
	ch &= v.chanMask()
	// Scan the word containing ch with the low bits (<= ch) masked off,
	// then whole words.
	wi := int(ch / wordBits)
	within := ch % wordBits
	w := v.words[wi]
	if within != wordBits-1 {
		w &= ^uint64(0) << (within + 1)
	} else {
		w = 0
	}
	for {
		if w != 0 {
			return uint64(wi*wordBits + bits.TrailingZeros64(w))
		}
		wi++
		if wi >= len(v.words) {
			return 0
		}
		w = v.words[wi]
	}
}

// PopAfter implements the proposed (but unbuilt in the class projects) Qat
// "pop" instruction: the count of 1 bits in channels strictly greater than
// ch. The paper splits POP into PopAfter(0) + Meas(0) so the result of a
// full population count of 2^16 ones cannot overflow a 16-bit register
// undetected.
func (v *Vector) PopAfter(ch uint64) uint64 {
	ch &= v.chanMask()
	wi := int(ch / wordBits)
	within := ch % wordBits
	w := v.words[wi]
	if within != wordBits-1 {
		w &= ^uint64(0) << (within + 1)
	} else {
		w = 0
	}
	return uint64(bits.OnesCount64(w)) + popWords(v.words[wi+1:])
}

// Pop returns the total population count: the number of channels holding 1,
// i.e. the probability of this pbit being 1 in parts per 2^E.
func (v *Vector) Pop() uint64 {
	return popWords(v.words)
}

// popWords is the batched OnesCount64 reduction shared by Pop and PopAfter:
// four independent popcount accumulators per iteration so the counts issue
// in parallel instead of serializing on one add chain.
func popWords(w []uint64) uint64 {
	var n0, n1, n2, n3 int
	i := 0
	for ; i+4 <= len(w); i += 4 {
		n0 += bits.OnesCount64(w[i])
		n1 += bits.OnesCount64(w[i+1])
		n2 += bits.OnesCount64(w[i+2])
		n3 += bits.OnesCount64(w[i+3])
	}
	for ; i < len(w); i++ {
		n0 += bits.OnesCount64(w[i])
	}
	return uint64(n0 + n1 + n2 + n3)
}

// Any reports whether any channel holds a 1 (the ANY reduction). The
// hardware composes it as Next past channel 0 OR Meas of channel 0; a direct
// word scan computes the identical answer without the trailing-zero
// bookkeeping, exiting at the first nonzero word.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// All reports whether every channel holds a 1 (the ALL reduction),
// NOT(ANY(NOT v)) per the paper. Complementing word by word against the tail
// mask makes the check allocation-free: every non-final word must be all
// ones, the final word must match the valid-bit mask exactly.
func (v *Vector) All() bool {
	w := v.words
	last := len(w) - 1
	for i := 0; i < last; i++ {
		if w[i] != ^uint64(0) {
			return false
		}
	}
	return w[last] == v.lastWordMask()
}

// Equal reports whether v and o hold identical bit patterns. Vectors of
// different ways are never equal.
func (v *Vector) Equal(o *Vector) bool {
	if v.ways != o.ways {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Word returns the i-th 64-bit storage word. It exists so the RE layer can
// hash and compare chunks without re-extracting bits one at a time.
func (v *Vector) Word(i int) uint64 { return v.words[i] }

// NumWords returns the number of 64-bit storage words.
func (v *Vector) NumWords() int { return len(v.words) }

// SetWord stores w as the i-th 64-bit storage word, clamping any bits beyond
// the channel count.
func (v *Vector) SetWord(i int, w uint64) {
	v.words[i] = w
	v.clampTail()
}

// String renders small vectors as a channel-0-first bit string, e.g. "0101"
// for Had pattern 0 at 2 ways, and summarizes large ones.
func (v *Vector) String() string {
	n := v.Channels()
	if n <= 64 {
		var b strings.Builder
		for ch := uint64(0); ch < n; ch++ {
			if v.Get(ch) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	return fmt.Sprintf("aob{ways:%d pop:%d}", v.ways, v.Pop())
}

// Bits returns the channels as a []bool, channel 0 first. Intended for tests
// and small examples.
func (v *Vector) Bits() []bool {
	out := make([]bool, v.Channels())
	for ch := range out {
		out[ch] = v.Get(uint64(ch))
	}
	return out
}

// FromBits builds a vector of the given ways from a channel-0-first bit
// slice. Missing trailing channels are zero; extra entries panic.
func FromBits(ways int, bitvals []bool) *Vector {
	v := New(ways)
	if uint64(len(bitvals)) > v.Channels() {
		panic(fmt.Sprintf("aob: %d bits exceed %d channels", len(bitvals), v.Channels()))
	}
	for ch, b := range bitvals {
		v.Set(uint64(ch), b)
	}
	return v
}

// FromString builds a vector from a channel-0-first string of '0'/'1'
// characters, e.g. "0011" for Had pattern 1 at 2 ways.
func FromString(ways int, s string) (*Vector, error) {
	v := New(ways)
	if uint64(len(s)) > v.Channels() {
		return nil, fmt.Errorf("aob: %d bits exceed %d channels", len(s), v.Channels())
	}
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			v.Set(uint64(i), true)
		default:
			return nil, fmt.Errorf("aob: invalid bit character %q at %d", c, i)
		}
	}
	return v, nil
}
