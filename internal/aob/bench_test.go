package aob

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel benchmarks at the three widths that matter: the student hardware
// (8), an intermediate (12), and the paper's Qat (16, 1024 words). The
// cmd/qatfarm -bench-aob harness measures the same kernels outside the
// testing framework for the BENCH_aob.json artifact; these exist for
// benchstat-style iteration during development.

var benchWays = []int{8, 12, 16}

func benchVectors(ways int, n int) []*Vector {
	r := rand.New(rand.NewSource(int64(ways) * 7919))
	out := make([]*Vector, n)
	for i := range out {
		out[i] = randVector(r, ways)
	}
	return out
}

func benchBytes(b *testing.B, ways int) {
	b.SetBytes(int64(wordsFor(ways)) * 8)
}

func BenchmarkAoBAnd(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 3)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs[0].And(vs[1], vs[2])
			}
		})
	}
}

func BenchmarkAoBOr(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 3)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs[0].Or(vs[1], vs[2])
			}
		})
	}
}

func BenchmarkAoBXor(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 3)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs[0].Xor(vs[1], vs[2])
			}
		})
	}
}

func BenchmarkAoBNot(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 1)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs[0].Not()
			}
		})
	}
}

func BenchmarkAoBCNot(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 2)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs[0].CNot(vs[1])
			}
		})
	}
}

func BenchmarkAoBCCNot(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 3)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs[0].CCNot(vs[1], vs[2])
			}
		})
	}
}

func BenchmarkAoBSwap(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 2)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs[0].Swap(vs[1])
			}
		})
	}
}

func BenchmarkAoBCSwap(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 3)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs[0].CSwap(vs[1], vs[2])
			}
		})
	}
}

func BenchmarkAoBHad(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			v := New(ways)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Had(i % ways)
			}
		})
	}
}

func BenchmarkAoBNext(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			// A sparse vector: Next has to scan, not stop at word 0.
			v := New(ways)
			v.Set(v.Channels()-1, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v.Next(0) == 0 {
					b.Fatal("next lost the set channel")
				}
			}
		})
	}
}

func BenchmarkAoBPop(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 1)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if vs[0].Pop() > vs[0].Channels() {
					b.Fatal("impossible pop")
				}
			}
		})
	}
}

func BenchmarkAoBPopAfter(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			vs := benchVectors(ways, 1)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if vs[0].PopAfter(1) > vs[0].Channels() {
					b.Fatal("impossible popAfter")
				}
			}
		})
	}
}

func BenchmarkAoBAll(b *testing.B) {
	for _, ways := range benchWays {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			v := OneVector(ways)
			benchBytes(b, ways)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !v.All() {
					b.Fatal("all-ones vector failed All")
				}
			}
		})
	}
}
