package aob

import (
	"math/rand"
	"testing"
)

// This file cross-validates every AoB operation against a deliberately
// naive reference model (bool slices and linear scans) exhaustively at
// small widths — the same exhaustive-simulation discipline the class
// required ("100% line coverage of the Verilog code").

// model is the naive reference implementation.
type model []bool

func modelOf(v *Vector) model {
	m := make(model, v.Channels())
	for ch := range m {
		m[ch] = v.Get(uint64(ch))
	}
	return m
}

func (m model) equal(v *Vector) bool {
	if uint64(len(m)) != v.Channels() {
		return false
	}
	for ch := range m {
		if m[ch] != v.Get(uint64(ch)) {
			return false
		}
	}
	return true
}

func (m model) next(s uint64) uint64 {
	for ch := s + 1; ch < uint64(len(m)); ch++ {
		if m[ch] {
			return ch
		}
	}
	return 0
}

func (m model) popAfter(s uint64) uint64 {
	var n uint64
	for ch := s + 1; ch < uint64(len(m)); ch++ {
		if m[ch] {
			n++
		}
	}
	return n
}

func (m model) pop() uint64 {
	var n uint64
	for _, b := range m {
		if b {
			n++
		}
	}
	return n
}

// enumerateVectors yields every possible vector for ways <= 4, or a random
// sample for larger ways.
func enumerateVectors(t *testing.T, ways int, f func(v *Vector)) {
	t.Helper()
	n := uint64(1) << uint(ways)
	if ways <= 4 {
		for bits := uint64(0); bits < uint64(1)<<n; bits++ {
			v := New(ways)
			for ch := uint64(0); ch < n; ch++ {
				v.Set(ch, bits>>ch&1 == 1)
			}
			f(v)
		}
		return
	}
	r := rand.New(rand.NewSource(int64(ways)))
	for trial := 0; trial < 200; trial++ {
		f(randVector(r, ways))
	}
}

func TestReferenceUnaryOpsExhaustive(t *testing.T) {
	for ways := 0; ways <= 3; ways++ {
		enumerateVectors(t, ways, func(v *Vector) {
			m := modelOf(v)
			// Not.
			nv := v.Clone()
			nv.Not()
			for ch := range m {
				if nv.Get(uint64(ch)) == m[ch] {
					t.Fatalf("ways=%d not: ch %d", ways, ch)
				}
			}
			// Pop / Any / All.
			if v.Pop() != m.pop() {
				t.Fatalf("ways=%d pop: %s", ways, v)
			}
			if v.Any() != (m.pop() > 0) {
				t.Fatalf("ways=%d any: %s", ways, v)
			}
			if v.All() != (m.pop() == uint64(len(m))) {
				t.Fatalf("ways=%d all: %s", ways, v)
			}
			// Next / NextHW / PopAfter at every start.
			for s := uint64(0); s < v.Channels(); s++ {
				if v.Next(s) != m.next(s) {
					t.Fatalf("ways=%d next(%d): %s", ways, s, v)
				}
				if v.NextHW(s) != m.next(s) {
					t.Fatalf("ways=%d nextHW(%d): %s", ways, s, v)
				}
				if v.PopAfter(s) != m.popAfter(s) {
					t.Fatalf("ways=%d popAfter(%d): %s", ways, s, v)
				}
			}
		})
	}
}

func TestReferenceBinaryOpsExhaustive(t *testing.T) {
	const ways = 2 // 16 x 16 operand pairs, every op
	enumerateVectors(t, ways, func(a *Vector) {
		enumerateVectors(t, ways, func(b *Vector) {
			ma, mb := modelOf(a), modelOf(b)
			d := New(ways)
			d.And(a, b)
			for ch := range ma {
				if d.Get(uint64(ch)) != (ma[ch] && mb[ch]) {
					t.Fatalf("and %s %s", a, b)
				}
			}
			d.Or(a, b)
			for ch := range ma {
				if d.Get(uint64(ch)) != (ma[ch] || mb[ch]) {
					t.Fatalf("or %s %s", a, b)
				}
			}
			d.Xor(a, b)
			for ch := range ma {
				if d.Get(uint64(ch)) != (ma[ch] != mb[ch]) {
					t.Fatalf("xor %s %s", a, b)
				}
			}
			// CNot: a ^= b.
			c := a.Clone()
			c.CNot(b)
			for ch := range ma {
				if c.Get(uint64(ch)) != (ma[ch] != mb[ch]) {
					t.Fatalf("cnot %s %s", a, b)
				}
			}
			// Swap.
			x, y := a.Clone(), b.Clone()
			x.Swap(y)
			if !ma.equal(y) || !mb.equal(x) {
				t.Fatalf("swap %s %s", a, b)
			}
		})
	})
}

func TestReferenceTernaryOpsExhaustive(t *testing.T) {
	const ways = 1 // 4^3 = 64 triples, every op, every channel
	enumerateVectors(t, ways, func(a *Vector) {
		enumerateVectors(t, ways, func(b *Vector) {
			enumerateVectors(t, ways, func(cc *Vector) {
				ma, mb, mc := modelOf(a), modelOf(b), modelOf(cc)
				// CCNot: a ^= b & c.
				x := a.Clone()
				x.CCNot(b, cc)
				for ch := range ma {
					want := ma[ch] != (mb[ch] && mc[ch])
					if x.Get(uint64(ch)) != want {
						t.Fatalf("ccnot %s %s %s", a, b, cc)
					}
				}
				// CSwap controlled by c.
				p, q := a.Clone(), b.Clone()
				p.CSwap(q, cc)
				for ch := range ma {
					wantP, wantQ := ma[ch], mb[ch]
					if mc[ch] {
						wantP, wantQ = wantQ, wantP
					}
					if p.Get(uint64(ch)) != wantP || q.Get(uint64(ch)) != wantQ {
						t.Fatalf("cswap %s %s ctrl %s", a, b, cc)
					}
				}
			})
		})
	})
}

func TestReferenceLargeWaysSampled(t *testing.T) {
	for _, ways := range []int{7, 9, 13, 16} {
		enumerateVectors(t, ways, func(v *Vector) {
			m := modelOf(v)
			if v.Pop() != m.pop() {
				t.Fatalf("ways=%d pop", ways)
			}
			r := rand.New(rand.NewSource(99))
			for probe := 0; probe < 20; probe++ {
				s := r.Uint64() & (v.Channels() - 1)
				if v.Next(s) != m.next(s) {
					t.Fatalf("ways=%d next(%d)", ways, s)
				}
				if v.PopAfter(s) != m.popAfter(s) {
					t.Fatalf("ways=%d popAfter(%d)", ways, s)
				}
			}
		})
	}
}
