package aob

// This file models the paper's Figure 8 hardware implementation of the Qat
// "next" instruction: a barrel-shifter masking step followed by a recursive
// count-trailing-zeros decomposition. NextHW computes the identical function
// to Vector.Next but follows the circuit's structure bit-for-bit, so tests
// can confirm the hardware decomposition is equivalent to the architectural
// definition — the same role the Verilog testbenches played in the paper.

// maskedAfter returns a copy of v with channel 0 and channels 1..s cleared,
// mirroring the Verilog  {((aob[(1<<WAYS)-1:1] >> s) << s), 1'b0}  barrel
// shifter step: only channels strictly greater than s survive.
func (v *Vector) maskedAfter(s uint64) *Vector {
	m := v.Clone()
	s &= v.chanMask()
	// Clear channels 0..s inclusive.
	full := int((s + 1) / wordBits)
	for i := 0; i < full; i++ {
		m.words[i] = 0
	}
	rem := (s + 1) % wordBits
	if rem != 0 && full < len(m.words) {
		m.words[full] &= ^uint64(0) << rem
	}
	return m
}

// anyInRange reports whether any channel in [lo, lo+width) holds a 1.
// In hardware this is the |t[pow2].v[(1<<pow2)-1:0] OR-reduction.
func (v *Vector) anyInRange(lo, width uint64) bool {
	if width >= wordBits && lo%wordBits == 0 {
		for wi := lo / wordBits; wi < (lo+width)/wordBits; wi++ {
			if v.words[wi] != 0 {
				return true
			}
		}
		return false
	}
	for ch := lo; ch < lo+width; ch++ {
		if v.Get(ch) {
			return true
		}
	}
	return false
}

// NextHW computes Next(s) using the Figure 8 recursive decomposition:
// step 1 masks away channels <= s, step 2 binary-searches for the lowest
// surviving 1, producing one result bit per level. It returns 0 when no
// channel past s holds a 1, exactly like the architectural Next.
func (v *Vector) NextHW(s uint64) uint64 {
	if v.ways == 0 {
		// A 0-way vector has a single channel (0); nothing can follow it.
		return 0
	}
	m := v.maskedAfter(s)
	var r uint64
	lo := uint64(0)
	// pow2 walks WAYS-1 down to 0; at each level the live window has
	// 2^(pow2+1) channels and we keep whichever half holds the answer.
	for pow2 := v.ways - 1; pow2 >= 0; pow2-- {
		half := uint64(1) << uint(pow2)
		if m.anyInRange(lo, half) {
			// Low half nonzero: result bit is 0, keep low half.
		} else {
			// Keep high half; result bit pow2 is 1.
			r |= uint64(1) << uint(pow2)
			lo += half
		}
	}
	// The final 1-channel window either holds the located 1 or the vector
	// was empty past s (the Verilog "t[0].v ? tr : 0" guard).
	if !m.Get(lo) {
		return 0
	}
	return r
}
