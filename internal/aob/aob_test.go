package aob

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randVector builds a random ways-way vector from the given source.
func randVector(r *rand.Rand, ways int) *Vector {
	v := New(ways)
	for i := 0; i < v.NumWords(); i++ {
		v.SetWord(i, r.Uint64())
	}
	return v
}

func TestNewIsZero(t *testing.T) {
	for ways := 0; ways <= MaxWays; ways++ {
		v := New(ways)
		if v.Ways() != ways {
			t.Fatalf("ways=%d: Ways()=%d", ways, v.Ways())
		}
		if v.Channels() != uint64(1)<<uint(ways) {
			t.Fatalf("ways=%d: Channels()=%d", ways, v.Channels())
		}
		if v.Pop() != 0 {
			t.Fatalf("ways=%d: new vector pop=%d, want 0", ways, v.Pop())
		}
		if v.Any() {
			t.Fatalf("ways=%d: new vector Any()=true", ways)
		}
	}
}

func TestNewPanicsOnBadWays(t *testing.T) {
	for _, ways := range []int{-1, MaxWays + 1, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", ways)
				}
			}()
			New(ways)
		}()
	}
}

func TestOneAndAll(t *testing.T) {
	for ways := 0; ways <= 10; ways++ {
		v := New(ways)
		v.One()
		if v.Pop() != v.Channels() {
			t.Fatalf("ways=%d: One pop=%d want %d", ways, v.Pop(), v.Channels())
		}
		if !v.All() {
			t.Fatalf("ways=%d: All()=false on all-ones", ways)
		}
		v.Set(v.Channels()-1, false)
		if ways > 0 && v.All() {
			t.Fatalf("ways=%d: All()=true with one zero", ways)
		}
	}
}

// TestFig1AoBExample reproduces the paper's Figure 1: two 2-way entangled
// pbits whose AoB vectors are {0,1,0,1} and {0,0,1,1}; taken as a 2-bit
// value (top vector least significant) the channels encode 0,1,2,3.
func TestFig1AoBExample(t *testing.T) {
	lo := HadVector(2, 0) // {0,1,0,1}
	hi := HadVector(2, 1) // {0,0,1,1}
	if lo.String() != "0101" {
		t.Fatalf("lo = %s, want 0101", lo)
	}
	if hi.String() != "0011" {
		t.Fatalf("hi = %s, want 0011", hi)
	}
	for ch := uint64(0); ch < 4; ch++ {
		got := lo.Meas(ch) | hi.Meas(ch)<<1
		if got != ch {
			t.Errorf("channel %d encodes %d, want %d", ch, got, ch)
		}
	}
}

// TestFig1PdfExample checks the second Figure 1 example: vectors {0,0,1,0}
// and {0,0,1,1} encode the value multiset {0,0,3,2} — 50% 0, 0% 1, 25% 2,
// 25% 3.
func TestFig1PdfExample(t *testing.T) {
	lo, err := FromString(2, "0010")
	if err != nil {
		t.Fatal(err)
	}
	hi, err := FromString(2, "0011")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for ch := uint64(0); ch < 4; ch++ {
		counts[lo.Meas(ch)|hi.Meas(ch)<<1]++
	}
	want := map[uint64]int{0: 2, 2: 1, 3: 1}
	for val, n := range want {
		if counts[val] != n {
			t.Errorf("value %d appears %d times, want %d", val, counts[val], n)
		}
	}
	if counts[1] != 0 {
		t.Errorf("value 1 appears %d times, want 0", counts[1])
	}
}

// TestFig7HadPattern verifies the Figure 7 semantics: channel e of Had(k)
// holds bit k of the binary representation of e, for every ways and k.
func TestFig7HadPattern(t *testing.T) {
	for ways := 1; ways <= 12; ways++ {
		for k := 0; k < ways; k++ {
			v := HadVector(ways, k)
			for ch := uint64(0); ch < v.Channels(); ch++ {
				want := (ch>>uint(k))&1 == 1
				if v.Get(ch) != want {
					t.Fatalf("ways=%d k=%d ch=%d: got %v want %v",
						ways, k, ch, v.Get(ch), want)
				}
			}
		}
	}
}

// TestFig7Had16Way spot-checks the full Qat-sized pattern: had @a,15 is
// 32,768 zeros followed by 32,768 ones, and had @a,0 alternates 0,1.
func TestFig7Had16Way(t *testing.T) {
	v := HadVector(16, 15)
	if v.Get(0) || v.Get(32767) {
		t.Error("had 15: low half must be zero")
	}
	if !v.Get(32768) || !v.Get(65535) {
		t.Error("had 15: high half must be one")
	}
	if v.Pop() != 32768 {
		t.Errorf("had 15 pop = %d, want 32768", v.Pop())
	}
	v.Had(0)
	if v.Get(0) || !v.Get(1) || v.Get(65534) || !v.Get(65535) {
		t.Error("had 0: even channels 0, odd channels 1")
	}
}

func TestHadPanicsOutOfRange(t *testing.T) {
	v := New(4)
	for _, k := range []int{-1, 4, 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Had(%d) on 4-way did not panic", k)
				}
			}()
			v.Had(k)
		}()
	}
}

// TestPaperNextExample is the worked example from Section 2.7: had @123,4
// then next from channel 42 yields 48.
func TestPaperNextExample(t *testing.T) {
	v := HadVector(16, 4)
	if got := v.Next(42); got != 48 {
		t.Fatalf("next(42) over had-4 = %d, want 48", got)
	}
	if got := v.NextHW(42); got != 48 {
		t.Fatalf("NextHW(42) over had-4 = %d, want 48", got)
	}
}

func TestNextBasics(t *testing.T) {
	v := New(8)
	if v.Next(0) != 0 {
		t.Error("next on empty vector must be 0")
	}
	v.Set(0, true)
	if v.Next(0) != 0 {
		t.Error("a 1 only at channel 0 is invisible to next(0)")
	}
	if !v.Any() {
		t.Error("Any must still see channel 0 via meas")
	}
	v.Set(200, true)
	if got := v.Next(0); got != 200 {
		t.Errorf("next(0) = %d, want 200", got)
	}
	if got := v.Next(200); got != 0 {
		t.Errorf("next(200) = %d, want 0 (nothing after)", got)
	}
	if got := v.Next(199); got != 200 {
		t.Errorf("next(199) = %d, want 200", got)
	}
	if got := v.Next(255); got != 0 {
		t.Errorf("next(last) = %d, want 0", got)
	}
}

func TestNextWordBoundaries(t *testing.T) {
	v := New(8)
	for _, ch := range []uint64{63, 64, 127, 128, 191, 192, 255} {
		v.Zero()
		v.Set(ch, true)
		for s := uint64(0); s < ch; s++ {
			if got := v.Next(s); got != ch {
				t.Fatalf("single bit at %d: next(%d) = %d", ch, s, got)
			}
		}
		if got := v.Next(ch); got != 0 {
			t.Fatalf("single bit at %d: next(%d) = %d, want 0", ch, ch, got)
		}
	}
}

// nextRef is an obviously-correct linear-scan reference for Next.
func nextRef(v *Vector, s uint64) uint64 {
	s &= v.Channels() - 1
	for ch := s + 1; ch < v.Channels(); ch++ {
		if v.Get(ch) {
			return ch
		}
	}
	return 0
}

// TestFig8NextHierarchical cross-validates the architectural Next, the
// Figure 8 hardware decomposition NextHW, and a linear-scan reference on
// random vectors across sizes.
func TestFig8NextHierarchical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, ways := range []int{1, 2, 3, 6, 7, 8, 10, 16} {
		for trial := 0; trial < 25; trial++ {
			v := randVector(r, ways)
			if trial == 0 {
				v.Zero() // include the all-zero case
			}
			for probe := 0; probe < 40; probe++ {
				s := r.Uint64() & (v.Channels() - 1)
				want := nextRef(v, s)
				if got := v.Next(s); got != want {
					t.Fatalf("ways=%d Next(%d)=%d want %d", ways, s, got, want)
				}
				if got := v.NextHW(s); got != want {
					t.Fatalf("ways=%d NextHW(%d)=%d want %d", ways, s, got, want)
				}
			}
		}
	}
}

func TestNextHWZeroWays(t *testing.T) {
	v := New(0)
	v.Set(0, true)
	if got := v.NextHW(0); got != 0 {
		t.Errorf("0-way NextHW = %d, want 0", got)
	}
}

func TestPopAfter(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, ways := range []int{1, 4, 6, 8, 12} {
		v := randVector(r, ways)
		for probe := 0; probe < 50; probe++ {
			s := r.Uint64() & (v.Channels() - 1)
			var want uint64
			for ch := s + 1; ch < v.Channels(); ch++ {
				if v.Get(ch) {
					want++
				}
			}
			if got := v.PopAfter(s); got != want {
				t.Fatalf("ways=%d PopAfter(%d)=%d want %d", ways, s, got, want)
			}
		}
		// POP = PopAfter(0) + Meas(0), the paper's overflow-safe split.
		if v.Pop() != v.PopAfter(0)+v.Meas(0) {
			t.Fatalf("pop split mismatch: %d != %d+%d", v.Pop(), v.PopAfter(0), v.Meas(0))
		}
	}
}

// TestFig3NotGatesSelfInverse: not, cnot and ccnot are each their own
// inverse (reversibility property from Figure 3).
func TestFig3NotGatesSelfInverse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		ways := 1 + r.Intn(10)
		a := randVector(r, ways)
		b := randVector(r, ways)
		c := randVector(r, ways)
		orig := a.Clone()

		a.Not()
		a.Not()
		if !a.Equal(orig) {
			t.Fatal("not∘not != identity")
		}
		a.CNot(b)
		a.CNot(b)
		if !a.Equal(orig) {
			t.Fatal("cnot∘cnot != identity")
		}
		a.CCNot(b, c)
		a.CCNot(b, c)
		if !a.Equal(orig) {
			t.Fatal("ccnot∘ccnot != identity")
		}
	}
}

func TestFig3CNotSemantics(t *testing.T) {
	a, _ := FromString(2, "0110")
	b, _ := FromString(2, "0011")
	a.CNot(b)
	if a.String() != "0101" {
		t.Errorf("cnot result %s, want 0101", a)
	}
	// cnot @a,@a zeroes the register (x^x = 0).
	a.CNot(a)
	if a.Any() {
		t.Error("cnot @a,@a must clear @a")
	}
}

func TestFig3CCNotSemantics(t *testing.T) {
	a, _ := FromString(2, "1111")
	b, _ := FromString(2, "0011")
	c, _ := FromString(2, "0101")
	a.CCNot(b, c) // flips only channel 3 where b&c = 0001... b&c = 0001 at ch3
	want := "1110"
	if a.String() != want {
		t.Errorf("ccnot result %s, want %s", a, want)
	}
	if b.String() != "0011" || c.String() != "0101" {
		t.Error("ccnot must not modify controls")
	}
}

// TestFig4SwapGates covers swap/cswap semantics and the "billiard-ball
// conservancy" property: total population is preserved.
func TestFig4SwapGates(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		ways := 1 + r.Intn(10)
		a := randVector(r, ways)
		b := randVector(r, ways)
		ctrl := randVector(r, ways)
		origA, origB := a.Clone(), b.Clone()
		popBefore := a.Pop() + b.Pop()

		a.Swap(b)
		if !a.Equal(origB) || !b.Equal(origA) {
			t.Fatal("swap did not exchange values")
		}
		a.Swap(b) // back

		a.CSwap(b, ctrl)
		if a.Pop()+b.Pop() != popBefore {
			t.Fatal("cswap violated billiard-ball conservancy")
		}
		for ch := uint64(0); ch < a.Channels(); ch++ {
			if ctrl.Get(ch) {
				if a.Get(ch) != origB.Get(ch) || b.Get(ch) != origA.Get(ch) {
					t.Fatalf("cswap: controlled channel %d not swapped", ch)
				}
			} else {
				if a.Get(ch) != origA.Get(ch) || b.Get(ch) != origB.Get(ch) {
					t.Fatalf("cswap: uncontrolled channel %d changed", ch)
				}
			}
		}
		// cswap is its own inverse.
		a.CSwap(b, ctrl)
		if !a.Equal(origA) || !b.Equal(origB) {
			t.Fatal("cswap∘cswap != identity")
		}
	}
}

// TestCSwapIsMux checks the paper's observation that cswap generalizes a
// 1-of-2 multiplexer: after cswap @a,@b,@c, register @a holds b where c=1
// and a where c=0.
func TestCSwapIsMux(t *testing.T) {
	a, _ := FromString(3, "10101010")
	b, _ := FromString(3, "01100110")
	c, _ := FromString(3, "00001111")
	a.CSwap(b, c)
	if a.String() != "10100110" {
		t.Errorf("mux result %s, want 10100110", a)
	}
}

// TestFig5Measurement: meas is non-destructive — the superposition is
// unchanged no matter how many times it is sampled, in contrast to quantum
// measurement collapse.
func TestFig5Measurement(t *testing.T) {
	v := HadVector(8, 3)
	snapshot := v.Clone()
	for i := 0; i < 1000; i++ {
		ch := uint64(i * 37 % 256)
		want := uint64(0)
		if (ch>>3)&1 == 1 {
			want = 1
		}
		if v.Meas(ch) != want {
			t.Fatalf("meas(%d) = %d, want %d", ch, v.Meas(ch), want)
		}
	}
	if !v.Equal(snapshot) {
		t.Fatal("measurement disturbed the superposition")
	}
}

func TestLogicOps(t *testing.T) {
	a, _ := FromString(2, "0011")
	b, _ := FromString(2, "0101")
	d := New(2)
	d.And(a, b)
	if d.String() != "0001" {
		t.Errorf("and = %s", d)
	}
	d.Or(a, b)
	if d.String() != "0111" {
		t.Errorf("or = %s", d)
	}
	d.Xor(a, b)
	if d.String() != "0110" {
		t.Errorf("xor = %s", d)
	}
}

func TestLogicOpsAliasing(t *testing.T) {
	a, _ := FromString(3, "10101010")
	b, _ := FromString(3, "01100110")
	// dest aliases an operand, as "and @a,@a,@b" would.
	a2 := a.Clone()
	a2.And(a2, b)
	want := New(3)
	want.And(a, b)
	if !a2.Equal(want) {
		t.Error("aliased And mismatch")
	}
}

func TestNotClampsTail(t *testing.T) {
	// NOT on a small vector must not leak into the unused high bits of the
	// word; Pop and Next would otherwise see ghost channels.
	v := New(3)
	v.Not()
	if v.Pop() != 8 {
		t.Fatalf("not of 3-way zero: pop=%d want 8", v.Pop())
	}
	if v.Next(7) != 0 {
		t.Fatal("ghost channel past the end")
	}
}

func TestMeasIndexWraps(t *testing.T) {
	v := New(4) // 16 channels
	v.Set(3, true)
	if v.Meas(3+16) != 1 {
		t.Error("channel index must wrap modulo 2^ways")
	}
	if v.Next(19) != 0 { // 19 wraps to 3; nothing after 3
		t.Error("next index must wrap modulo 2^ways")
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := func(aw, bw [4]uint64) bool {
		a, b := New(8), New(8)
		for i := 0; i < 4; i++ {
			a.SetWord(i, aw[i])
			b.SetWord(i, bw[i])
		}
		// NOT(a AND b) == NOT a OR NOT b
		lhs := New(8)
		lhs.And(a, b)
		lhs.Not()
		na, nb := a.Clone(), b.Clone()
		na.Not()
		nb.Not()
		rhs := New(8)
		rhs.Or(na, nb)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorIsAddMod2Property(t *testing.T) {
	f := func(aw, bw uint64) bool {
		a, b := New(6), New(6)
		a.SetWord(0, aw)
		b.SetWord(0, bw)
		x := New(6)
		x.Xor(a, b)
		for ch := uint64(0); ch < 64; ch++ {
			if x.Meas(ch) != (a.Meas(ch)+b.Meas(ch))%2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextEnumeratesAllOnes(t *testing.T) {
	// Looping next (plus meas of channel 0) must enumerate every 1 exactly
	// once — the paper's read-out-everything usage.
	r := rand.New(rand.NewSource(9))
	v := randVector(r, 10)
	var got []uint64
	if v.Get(0) {
		got = append(got, 0)
	}
	for ch := v.Next(0); ch != 0; ch = v.Next(ch) {
		got = append(got, ch)
	}
	var want []uint64
	for ch := uint64(0); ch < v.Channels(); ch++ {
		if v.Get(ch) {
			want = append(want, ch)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("enumerated %d ones, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: got channel %d want %d", i, got[i], want[i])
		}
	}
}

func TestAnyAllComposition(t *testing.T) {
	cases := []struct {
		bits string
		any  bool
		all  bool
	}{
		{"0000", false, false},
		{"1000", true, false},
		{"0001", true, false},
		{"1111", true, true},
		{"0111", true, false},
	}
	for _, c := range cases {
		v, _ := FromString(2, c.bits)
		if v.Any() != c.any {
			t.Errorf("%s: Any=%v want %v", c.bits, v.Any(), c.any)
		}
		if v.All() != c.all {
			t.Errorf("%s: All=%v want %v", c.bits, v.All(), c.all)
		}
	}
}

func TestFromStringErrors(t *testing.T) {
	if _, err := FromString(1, "012"); err == nil {
		t.Error("want error for invalid character")
	}
	if _, err := FromString(1, "0101"); err == nil {
		t.Error("want error for overlong string")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := HadVector(6, 2)
	b := a.Clone()
	b.Not()
	if a.Equal(b) {
		t.Fatal("clone shares storage with original")
	}
}

func TestStringLarge(t *testing.T) {
	v := HadVector(10, 0)
	s := v.String()
	if s == "" {
		t.Fatal("empty summary")
	}
}

func TestMismatchedWaysPanics(t *testing.T) {
	a, b := New(4), New(5)
	defer func() {
		if recover() == nil {
			t.Error("And across ways did not panic")
		}
	}()
	a.And(a, b)
}

func BenchmarkFig7Had(b *testing.B) {
	v := New(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Had(i % 16)
	}
}

func BenchmarkQatAnd16Way(b *testing.B) {
	x := HadVector(16, 3)
	y := HadVector(16, 9)
	d := New(16)
	b.SetBytes(int64(d.NumWords() * 8))
	for i := 0; i < b.N; i++ {
		d.And(x, y)
	}
}

func BenchmarkFig8NextFast(b *testing.B) {
	v := HadVector(16, 15) // worst half-empty pattern
	for i := 0; i < b.N; i++ {
		_ = v.Next(uint64(i) & 32767)
	}
}

func BenchmarkFig8NextHW(b *testing.B) {
	v := HadVector(16, 15)
	for i := 0; i < b.N; i++ {
		_ = v.NextHW(uint64(i) & 32767)
	}
}

func BenchmarkFig8NextNaiveScan(b *testing.B) {
	v := HadVector(16, 15)
	for i := 0; i < b.N; i++ {
		_ = nextRef(v, uint64(i)&32767)
	}
}

func BenchmarkPopAfter(b *testing.B) {
	v := HadVector(16, 0)
	for i := 0; i < b.N; i++ {
		_ = v.PopAfter(uint64(i) & 65535)
	}
}
