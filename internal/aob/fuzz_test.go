package aob

import (
	"testing"
)

// FuzzAoBRef drives a random operation sequence through the packed SWAR
// kernels and the naive bit-at-a-time model side by side, asserting
// channel-exact equality after every step. The input encoding is one header
// byte (ways) followed by (op, arg) byte pairs; arg packs the destination
// and operand register indices in its nibbles, or the probe channel for the
// reductions.
func FuzzAoBRef(f *testing.F) {
	f.Add([]byte{6, 0, 0x01, 2, 0x12, 5, 0x01})
	f.Add([]byte{3, 8, 0x02, 1, 0x21, 9, 0x10, 11, 0x03})
	f.Add([]byte{0, 7, 0x00, 4, 0x00, 12, 0x00})
	f.Add([]byte{8, 6, 0x31, 10, 0x23, 13, 0x07, 14, 0x3F, 15, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		ways := int(data[0] % 9) // 0..8: big enough for multi-word, small enough to model
		data = data[1:]

		const numRegs = 4
		regs := make([]*Vector, numRegs)
		models := make([]model, numRegs)
		for i := range regs {
			regs[i] = New(ways)
			models[i] = make(model, regs[i].Channels())
		}
		check := func(op string) {
			for i := range regs {
				if !models[i].equal(regs[i]) {
					t.Fatalf("after %s: reg %d diverged: packed %s", op, i, regs[i])
				}
			}
		}

		for len(data) >= 2 {
			op, arg := data[0], data[1]
			data = data[2:]
			d := int(arg) & 3
			s := int(arg>>2) & 3
			u := int(arg>>4) & 3
			md, ms, mu := models[d], models[s], models[u]
			switch op % 16 {
			case 0: // zero
				regs[d].Zero()
				for ch := range md {
					md[ch] = false
				}
			case 1: // one
				regs[d].One()
				for ch := range md {
					md[ch] = true
				}
			case 2: // had
				if ways == 0 {
					continue
				}
				k := s ^ u // 0..3, always < ways once ways > 3; clamp below
				if k >= ways {
					k %= ways
				}
				regs[d].Had(k)
				for ch := range md {
					md[ch] = (ch>>uint(k))&1 == 1
				}
			case 3: // not
				regs[d].Not()
				for ch := range md {
					md[ch] = !md[ch]
				}
			case 4: // and
				regs[d].And(regs[s], regs[u])
				for ch := range md {
					md[ch] = ms[ch] && mu[ch]
				}
			case 5: // or
				regs[d].Or(regs[s], regs[u])
				for ch := range md {
					md[ch] = ms[ch] || mu[ch]
				}
			case 6: // xor
				regs[d].Xor(regs[s], regs[u])
				for ch := range md {
					md[ch] = ms[ch] != mu[ch]
				}
			case 7: // cnot
				regs[d].CNot(regs[s])
				for ch := range md {
					md[ch] = md[ch] != ms[ch]
				}
			case 8: // ccnot
				regs[d].CCNot(regs[s], regs[u])
				for ch := range md {
					md[ch] = md[ch] != (ms[ch] && mu[ch])
				}
			case 9: // swap
				if d == s {
					continue
				}
				regs[d].Swap(regs[s])
				for ch := range md {
					md[ch], ms[ch] = ms[ch], md[ch]
				}
			case 10: // cswap
				if d == s {
					continue
				}
				regs[d].CSwap(regs[s], regs[u])
				for ch := range md {
					if mu[ch] {
						md[ch], ms[ch] = ms[ch], md[ch]
					}
				}
			case 11: // set one channel
				ch := uint64(arg) & regs[d].chanMask()
				bit := op&0x10 != 0
				regs[d].Set(ch, bit)
				md[ch] = bit
			case 12: // next
				ch := uint64(arg) & regs[d].chanMask()
				if got, want := regs[d].Next(ch), md.next(ch); got != want {
					t.Fatalf("next(%d) on reg %d: got %d want %d (%s)", ch, d, got, want, regs[d])
				}
			case 13: // popAfter
				ch := uint64(arg) & regs[d].chanMask()
				if got, want := regs[d].PopAfter(ch), md.popAfter(ch); got != want {
					t.Fatalf("popAfter(%d) on reg %d: got %d want %d (%s)", ch, d, got, want, regs[d])
				}
			case 14: // pop / any / all
				if got, want := regs[d].Pop(), md.pop(); got != want {
					t.Fatalf("pop on reg %d: got %d want %d (%s)", d, got, want, regs[d])
				}
				if regs[d].Any() != (md.pop() > 0) {
					t.Fatalf("any on reg %d: %s", d, regs[d])
				}
				if regs[d].All() != (md.pop() == uint64(len(md))) {
					t.Fatalf("all on reg %d: %s", d, regs[d])
				}
			case 15: // meas
				ch := uint64(arg) & regs[d].chanMask()
				want := uint64(0)
				if md[ch] {
					want = 1
				}
				if got := regs[d].Meas(ch); got != want {
					t.Fatalf("meas(%d) on reg %d: got %d want %d", ch, d, got, want)
				}
			}
			check(opName(op % 16))
		}
	})
}

func opName(op byte) string {
	names := [...]string{"zero", "one", "had", "not", "and", "or", "xor",
		"cnot", "ccnot", "swap", "cswap", "set", "next", "popafter", "pop", "meas"}
	return names[op]
}
