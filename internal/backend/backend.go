// Package backend is the pluggable registry of Qat register-file backends
// and the static auto-planner that picks one.
//
// Execution layers (the farm, the HTTP server, the CLIs) historically
// switch-cased on backend names and re-derived each backend's geometry
// defaults locally. This package centralizes that: a Driver bundles a
// backend's name, width ceiling, canonicalization (defaults made explicit,
// invalid geometry rejected) and construction, and drivers register
// themselves by name at init time — the moby/graphdriver shape, so a new
// register-file implementation lands by adding one file here and nothing in
// the layers above.
//
// Canonical form matters beyond validation: the farm keys machine pools and
// the memo store on the canonicalized Config, so every spelling of the same
// geometry ("re at 12 ways", "re at 12 ways, chunk 12, spill 64") shares
// pool and cache identity. Drivers define that form in exactly one place.
//
// The Auto pseudo-backend is resolved by the planner (planner.go) from the
// static profile before any machine is built; it is not a Driver and never
// reaches a pool or memo key.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"tangled/internal/qat"
)

// Auto is the pseudo-backend name the planner resolves into a concrete
// registered backend from the program's static profile. It is accepted by
// the layers above (farm jobs, HTTP requests, CLI flags), never by
// Lookup/New.
const Auto = "auto"

// Driver is one register-file implementation.
type Driver interface {
	// Name is the registry key ("dense", "re").
	Name() string
	// MaxWays is the largest entanglement degree the backend executes.
	MaxWays() int
	// Canonicalize validates cfg and makes its defaults explicit, so equal
	// geometries compare equal. It does not mutate reservations unrelated to
	// the backend (Ways 0 still resolves to the hardware default).
	Canonicalize(cfg qat.Config) (qat.Config, error)
	// New builds a coprocessor for a canonicalized config.
	New(cfg qat.Config) (*qat.Coprocessor, error)
}

var (
	driversMu sync.RWMutex
	drivers   = map[string]Driver{}
)

// Register adds a driver to the registry. It panics on an empty or
// duplicate name, or on the reserved Auto name — registration happens at
// init time and a collision is a programming error.
func Register(d Driver) {
	driversMu.Lock()
	defer driversMu.Unlock()
	name := d.Name()
	if name == "" || name == Auto {
		panic(fmt.Sprintf("backend: cannot register driver with reserved name %q", name))
	}
	if _, dup := drivers[name]; dup {
		panic(fmt.Sprintf("backend: driver %q registered twice", name))
	}
	drivers[name] = d
}

// Lookup resolves a backend name. The empty name is the dense default,
// mirroring qat.Config's zero value.
func Lookup(name string) (Driver, bool) {
	if name == "" {
		name = qat.BackendDense
	}
	driversMu.RLock()
	defer driversMu.RUnlock()
	d, ok := drivers[name]
	return d, ok
}

// Names lists the registered backend names, sorted.
func Names() []string {
	driversMu.RLock()
	defer driversMu.RUnlock()
	out := make([]string, 0, len(drivers))
	for n := range drivers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Canonicalize resolves cfg.Backend in the registry and canonicalizes cfg
// through its driver — the one-call form the execution layers use.
func Canonicalize(cfg qat.Config) (qat.Config, error) {
	d, ok := Lookup(cfg.Backend)
	if !ok {
		return cfg, fmt.Errorf("backend: unknown backend %q", cfg.Backend)
	}
	return d.Canonicalize(cfg)
}

// New canonicalizes cfg and builds its coprocessor.
func New(cfg qat.Config) (*qat.Coprocessor, error) {
	d, ok := Lookup(cfg.Backend)
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q", cfg.Backend)
	}
	c, err := d.Canonicalize(cfg)
	if err != nil {
		return nil, err
	}
	return d.New(c)
}
