package backend

// The dense driver: the paper's AoB register file, entanglement capped at
// the 16-way hardware wall.

import (
	"fmt"

	"tangled/internal/aob"
	"tangled/internal/qat"
)

func init() { Register(denseDriver{}) }

type denseDriver struct{}

func (denseDriver) Name() string { return qat.BackendDense }

func (denseDriver) MaxWays() int { return aob.MaxWays }

// Canonicalize names the backend explicitly, resolves the hardware-default
// width, and zeroes the RE tuning knobs — a dense pool/memo key never
// varies on them.
func (denseDriver) Canonicalize(cfg qat.Config) (qat.Config, error) {
	cfg.Backend = qat.BackendDense
	if cfg.Ways == 0 {
		cfg.Ways = aob.MaxWays
	}
	cfg.ChunkWays, cfg.SpillRuns = 0, 0
	if cfg.Ways < 0 || cfg.Ways > aob.MaxWays {
		return cfg, fmt.Errorf("backend: dense ways %d out of range [0,%d]", cfg.Ways, aob.MaxWays)
	}
	return cfg, nil
}

func (denseDriver) New(cfg qat.Config) (*qat.Coprocessor, error) {
	return qat.NewFromConfig(cfg)
}
