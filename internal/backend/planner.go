package backend

// The auto-planner: resolves the Auto pseudo-backend into a registered
// driver from the program's static profile (internal/profile), before any
// machine is built or pool touched.
//
// Decision order, first match wins:
//
//  1. requested width > every backend's ceiling      -> UnservableError
//     (the caller attaches the profile to its error surface: the HTTP
//     layer returns it as a 422 with the profile in the body)
//  2. a memoized result exists (dense, then planned RE) -> that backend
//     (replaying bytes from the memo beats any static prediction)
//  3. width > dense hardware (aob.MaxWays)           -> RE, forced
//  4. highly compressible (>= 0.9) AND enough writes
//     to matter (>= 16)                              -> RE
//  5. otherwise                                      -> dense
//
// The planner never changes the requested width — it only picks the file
// the width runs on. The RE plan uses the driver's default geometry
// (ChunkWays 0, SpillRuns 0 canonicalize to min(ways, 16) and
// qat.DefaultSpillRuns), so an auto-planned RE run shares pool and memo
// identity with an explicitly requested default RE run.

import (
	"fmt"

	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/lint"
	"tangled/internal/profile"
	"tangled/internal/qat"
)

// CompressibilityFloor is the static compressibility at or above which the
// planner prefers the RE backend even when dense could serve the width.
const CompressibilityFloor = 0.9

// MinWritesForRE is the Qat write count below which a program is too small
// for the compressibility signal to outweigh dense's lower fixed cost.
const MinWritesForRE = 16

// UnservableError reports a width no registered backend can execute. The
// profile documents why, for error surfaces that attach it (HTTP 422).
type UnservableError struct {
	Ways    int
	Profile *lint.Profile
}

func (e *UnservableError) Error() string {
	return fmt.Sprintf("backend: ways %d exceeds every backend (max %d)", e.Ways, qat.MaxREWays)
}

// Plan is a resolved auto decision: the chosen canonical config and the
// profile that drove it.
type Plan struct {
	Config  qat.Config
	Profile *lint.Profile
}

// Decide resolves Auto for a program already profiled at the requested
// width. probe, when non-nil, reports whether a memoized result exists for
// a canonical config; it is consulted before the static rules. cfg.Backend
// must be Auto (or empty/dense/re, which pass through canonicalization
// untouched — callers can funnel every job through Decide).
func Decide(p *lint.Profile, cfg qat.Config, probe func(qat.Config) bool) (Plan, error) {
	if cfg.Backend != Auto {
		c, err := Canonicalize(cfg)
		return Plan{Config: c, Profile: p}, err
	}
	ways := cfg.Ways
	if ways == 0 {
		ways = aob.MaxWays
	}
	if ways < 0 || ways > qat.MaxREWays {
		return Plan{}, &UnservableError{Ways: ways, Profile: p}
	}

	dense := cfg
	dense.Backend = qat.BackendDense
	dense.ChunkWays, dense.SpillRuns = 0, 0
	re := cfg
	re.Backend = qat.BackendRE
	re.ChunkWays, re.SpillRuns = 0, 0

	if probe != nil && ways <= aob.MaxWays {
		if c, err := Canonicalize(dense); err == nil && probe(c) {
			return Plan{Config: c, Profile: p}, nil
		}
	}
	if probe != nil {
		if c, err := Canonicalize(re); err == nil && probe(c) {
			return Plan{Config: c, Profile: p}, nil
		}
	}

	pick := dense
	switch {
	case ways > aob.MaxWays:
		pick = re // dense hardware cannot hold the width
	case p != nil && p.Compressibility >= CompressibilityFloor && p.QatWrites >= MinWritesForRE:
		pick = re // structured enough for run-length compression to win
	}
	c, err := Canonicalize(pick)
	return Plan{Config: c, Profile: p}, err
}

// PlanAuto profiles prog at cfg's width and resolves Auto via Decide. The
// lint analysis runs in facts-only mode: diagnostics are not gated here —
// admission checks belong to the caller's lint policy, the planner only
// reads the profile.
func PlanAuto(prog *asm.Program, cfg qat.Config, probe func(qat.Config) bool) (Plan, error) {
	ways := cfg.Ways
	if ways == 0 {
		ways = aob.MaxWays
	}
	var p *lint.Profile
	if prog != nil && cfg.Backend == Auto {
		lintWays := ways
		if lintWays > aob.MaxWays {
			lintWays = aob.MaxWays // lint's cost model is dense-clamped
		}
		_, f := lint.AnalyzeWithFacts(prog, lint.Options{Ways: lintWays})
		p = profile.Compute(f, profile.Options{Ways: ways, ConstantRegs: cfg.ConstantRegs})
	}
	return Decide(p, cfg, probe)
}
