package backend

// The RE driver: run-length-compressed register file, entanglement up to
// qat.MaxREWays. Canonical geometry mirrors qat.NewFromConfig's defaults so
// every spelling of the defaults shares pool and memo identity.

import (
	"fmt"

	"tangled/internal/aob"
	"tangled/internal/qat"
)

func init() { Register(reDriver{}) }

type reDriver struct{}

func (reDriver) Name() string { return qat.BackendRE }

func (reDriver) MaxWays() int { return qat.MaxREWays }

func (reDriver) Canonicalize(cfg qat.Config) (qat.Config, error) {
	cfg.Backend = qat.BackendRE
	if cfg.Ways == 0 {
		cfg.Ways = aob.MaxWays
	}
	if cfg.Ways < 0 || cfg.Ways > qat.MaxREWays {
		return cfg, fmt.Errorf("backend: re ways %d out of range [0,%d]", cfg.Ways, qat.MaxREWays)
	}
	if cfg.ChunkWays == 0 {
		cfg.ChunkWays = cfg.Ways
		if cfg.ChunkWays > aob.MaxWays {
			cfg.ChunkWays = aob.MaxWays
		}
	}
	if cfg.ChunkWays < 0 || cfg.ChunkWays > aob.MaxWays || cfg.ChunkWays > cfg.Ways {
		return cfg, fmt.Errorf("backend: re chunk ways %d out of range [0,min(%d,ways)]",
			cfg.ChunkWays, aob.MaxWays)
	}
	if cfg.SpillRuns == 0 {
		cfg.SpillRuns = qat.DefaultSpillRuns
	}
	if cfg.Ways > aob.MaxWays || cfg.SpillRuns < 0 {
		cfg.SpillRuns = -1 // no dense form exists to spill into
	}
	return cfg, nil
}

func (reDriver) New(cfg qat.Config) (*qat.Coprocessor, error) {
	return qat.NewFromConfig(cfg)
}
