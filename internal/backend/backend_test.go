package backend

// Registry, canonicalization, and planner decision tests. The farm-level
// differential proof that an auto plan executes byte-identically to its
// explicit spelling lives in internal/farm (TestAutoPlannerDifferential).

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/qat"
)

func TestRegistryNames(t *testing.T) {
	want := []string{qat.BackendDense, qat.BackendRE}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names()=%v, want %v", got, want)
	}
	for _, n := range append([]string{""}, want...) {
		if _, ok := Lookup(n); !ok {
			t.Fatalf("Lookup(%q) failed", n)
		}
	}
	if _, ok := Lookup(Auto); ok {
		t.Fatal("Lookup(auto) resolved: the pseudo-backend must not be registered")
	}
	if _, ok := Lookup("fpga"); ok {
		t.Fatal("Lookup of unknown name resolved")
	}
}

func TestCanonicalizeDense(t *testing.T) {
	c, err := Canonicalize(qat.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := qat.Config{Ways: aob.MaxWays, Backend: qat.BackendDense}
	if c != want {
		t.Fatalf("canonical dense=%+v, want %+v", c, want)
	}
	// RE knobs on a dense config are erased, not rejected: pool/memo keys
	// must not vary on them.
	c, err = Canonicalize(qat.Config{Ways: 4, ChunkWays: 3, SpillRuns: 9, Backend: qat.BackendDense})
	if err != nil || c.ChunkWays != 0 || c.SpillRuns != 0 {
		t.Fatalf("dense knob erasure: %+v err=%v", c, err)
	}
	if _, err := Canonicalize(qat.Config{Ways: aob.MaxWays + 1, Backend: qat.BackendDense}); err == nil {
		t.Fatal("dense over-width accepted")
	}
}

func TestCanonicalizeRE(t *testing.T) {
	c, err := Canonicalize(qat.Config{Ways: 20, Backend: qat.BackendRE})
	if err != nil {
		t.Fatal(err)
	}
	want := qat.Config{Ways: 20, Backend: qat.BackendRE, ChunkWays: aob.MaxWays, SpillRuns: -1}
	if c != want {
		t.Fatalf("canonical re=%+v, want %+v", c, want)
	}
	c, err = Canonicalize(qat.Config{Ways: 8, Backend: qat.BackendRE})
	if err != nil || c.ChunkWays != 8 || c.SpillRuns != qat.DefaultSpillRuns {
		t.Fatalf("re defaults: %+v err=%v", c, err)
	}
	if _, err := Canonicalize(qat.Config{Ways: qat.MaxREWays + 1, Backend: qat.BackendRE}); err == nil {
		t.Fatal("re over-width accepted")
	}
	if _, err := Canonicalize(qat.Config{Ways: 8, ChunkWays: 9, Backend: qat.BackendRE}); err == nil {
		t.Fatal("chunk ways above total accepted")
	}
}

func TestCanonicalizeUnknown(t *testing.T) {
	_, err := Canonicalize(qat.Config{Backend: "fpga"})
	if err == nil || !strings.Contains(err.Error(), "fpga") {
		t.Fatalf("unknown backend error=%v", err)
	}
}

func mustProg(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// wideProg needs more entanglement than dense hardware holds when run at
// ways > 16 (the had channel indexes stay within 4 bits; width forces RE).
const wideProg = `
	had	@1, 0
	cnot	@2, @1
	lex	$0, 0
	sys
`

func TestPlanAutoForcedREOverDenseWidth(t *testing.T) {
	plan, err := PlanAuto(mustProg(t, wideProg), qat.Config{Ways: 20, Backend: Auto}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.Backend != qat.BackendRE {
		t.Fatalf("backend=%q, want re (ways 20 exceeds dense)", plan.Config.Backend)
	}
	if plan.Config.Ways != 20 {
		t.Fatalf("planner changed ways: %d", plan.Config.Ways)
	}
	if plan.Config.ChunkWays != aob.MaxWays || plan.Config.SpillRuns != -1 {
		t.Fatalf("planned geometry %+v not the canonical RE default", plan.Config)
	}
	if plan.Profile == nil || plan.Profile.Ways != 20 {
		t.Fatalf("plan profile missing or at wrong width: %+v", plan.Profile)
	}
}

func TestPlanAutoDenseForSmallPrograms(t *testing.T) {
	plan, err := PlanAuto(mustProg(t, wideProg), qat.Config{Ways: 6, Backend: Auto}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.Backend != qat.BackendDense {
		t.Fatalf("backend=%q, want dense for a small low-degree program", plan.Config.Backend)
	}
}

func TestPlanAutoCompressibilityRoute(t *testing.T) {
	// >= 16 Qat writes, all structured (inits and folds over known states):
	// compressibility 1.0 routes to RE even at a dense-servable width.
	var b strings.Builder
	for i := 1; i <= 17; i++ {
		b.WriteString("\tzero\t@")
		b.WriteString(string(rune('0' + i%10)))
		b.WriteString("\n")
	}
	b.WriteString("\tlex\t$0, 0\n\tsys\n")
	plan, err := PlanAuto(mustProg(t, b.String()), qat.Config{Ways: 8, Backend: Auto}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Profile.Compressibility < CompressibilityFloor || plan.Profile.QatWrites < MinWritesForRE {
		t.Fatalf("test program does not trip the route: %+v", plan.Profile)
	}
	if plan.Config.Backend != qat.BackendRE {
		t.Fatalf("backend=%q, want re on compressibility", plan.Config.Backend)
	}
}

func TestPlanAutoUnservable(t *testing.T) {
	_, err := PlanAuto(mustProg(t, wideProg), qat.Config{Ways: qat.MaxREWays + 1, Backend: Auto}, nil)
	var ue *UnservableError
	if !errors.As(err, &ue) {
		t.Fatalf("err=%v, want UnservableError", err)
	}
	if ue.Ways != qat.MaxREWays+1 || ue.Profile == nil {
		t.Fatalf("unservable detail: %+v", ue)
	}
}

func TestPlanAutoMemoProbeWins(t *testing.T) {
	// A memoized RE result overrides the static dense preference.
	var probed []string
	probe := func(c qat.Config) bool {
		probed = append(probed, c.Backend)
		return c.Backend == qat.BackendRE
	}
	plan, err := PlanAuto(mustProg(t, wideProg), qat.Config{Ways: 6, Backend: Auto}, probe)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.Backend != qat.BackendRE {
		t.Fatalf("backend=%q, want re (memoized)", plan.Config.Backend)
	}
	if !reflect.DeepEqual(probed, []string{qat.BackendDense, qat.BackendRE}) {
		t.Fatalf("probe order %v, want dense then re", probed)
	}
}

func TestDecidePassThroughNonAuto(t *testing.T) {
	plan, err := Decide(nil, qat.Config{Ways: 12, Backend: qat.BackendRE}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Config.Backend != qat.BackendRE || plan.Config.ChunkWays != 12 {
		t.Fatalf("pass-through=%+v", plan.Config)
	}
}
