package rex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Boolean-algebra laws property-tested on the tree-compressed patterns.
// Hash-consing makes each law a pointer comparison, so these also verify
// canonicalization.

// genPattern builds a pseudo-random pattern from a seed by composing
// Hadamards — deterministic per seed, structurally varied.
func genPattern(s *Space, seed uint64) *Pattern {
	r := rand.New(rand.NewSource(int64(seed)))
	p := s.Had(r.Intn(s.Ways()))
	for i := 0; i < 3+r.Intn(4); i++ {
		q := s.Had(r.Intn(s.Ways()))
		switch r.Intn(4) {
		case 0:
			p = p.And(q)
		case 1:
			p = p.Or(q)
		case 2:
			p = p.Xor(q)
		default:
			p = p.Xor(q.Not())
		}
	}
	return p
}

func TestBooleanAlgebraProperties(t *testing.T) {
	s := MustSpace(24, 8)
	f := func(sa, sb, sc uint64) bool {
		a, b, c := genPattern(s, sa), genPattern(s, sb), genPattern(s, sc)
		// Commutativity (pointer-equal thanks to hash-consing).
		if !a.And(b).Equal(b.And(a)) || !a.Or(b).Equal(b.Or(a)) || !a.Xor(b).Equal(b.Xor(a)) {
			return false
		}
		// Associativity.
		if !a.And(b.And(c)).Equal(a.And(b).And(c)) {
			return false
		}
		if !a.Xor(b.Xor(c)).Equal(a.Xor(b).Xor(c)) {
			return false
		}
		// Distributivity: a AND (b OR c) == (a AND b) OR (a AND c).
		if !a.And(b.Or(c)).Equal(a.And(b).Or(a.And(c))) {
			return false
		}
		// Absorption: a OR (a AND b) == a.
		if !a.Or(a.And(b)).Equal(a) {
			return false
		}
		// Complement: a AND NOT a == 0; a OR NOT a == 1.
		if a.And(a.Not()).Any() || !a.Or(a.Not()).All() {
			return false
		}
		// Pop is preserved under double complement and consistent with Xor:
		// pop(a^b) = pop(a) + pop(b) - 2*pop(a&b).
		if a.Xor(b).Pop() != a.Pop()+b.Pop()-2*a.And(b).Pop() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNextPopConsistencyProperty(t *testing.T) {
	s := MustSpace(18, 6)
	f := func(seed, probeSeed uint64) bool {
		p := genPattern(s, seed)
		r := rand.New(rand.NewSource(int64(probeSeed)))
		for i := 0; i < 16; i++ {
			ch := r.Uint64() & (s.Channels() - 1)
			nx := p.Next(ch)
			if nx == 0 {
				// Nothing past ch: PopAfter must agree.
				if p.PopAfter(ch) != 0 {
					return false
				}
				continue
			}
			// nx is the first 1 past ch: it is set, nothing between, and
			// PopAfter counts it.
			if !p.Get(nx) || nx <= ch {
				return false
			}
			if p.PopAfter(ch) != p.PopAfter(nx)+1 {
				return false
			}
			if nx > ch+1 && p.PopAfter(ch) != p.PopAfter(nx-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
