package rex

import (
	"math/rand"
	"testing"

	"tangled/internal/aob"
	"tangled/internal/re"
)

func randBits(r *rand.Rand, n uint64, density float64) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Float64() < density
	}
	return out
}

// periodicBits tiles a random period across the space — the structured
// inputs this representation is built for.
func periodicBits(r *rand.Rand, n, period uint64, density float64) []bool {
	base := randBits(r, period, density)
	out := make([]bool, n)
	for i := range out {
		out[i] = base[uint64(i)%period]
	}
	return out
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(10, -1); err == nil {
		t.Error("negative chunkWays")
	}
	if _, err := NewSpace(10, 17); err == nil {
		t.Error("chunkWays > aob.MaxWays")
	}
	if _, err := NewSpace(3, 4); err == nil {
		t.Error("ways < chunkWays")
	}
	if _, err := NewSpace(63, 4); err == nil {
		t.Error("ways > MaxWays")
	}
}

func TestConstants(t *testing.T) {
	s := MustSpace(40, 12)
	z, o := s.Zero(), s.One()
	if z.Any() || !o.All() {
		t.Fatal("constants wrong")
	}
	if z.Pop() != 0 || o.Pop() != s.Channels() {
		t.Fatal("pop wrong")
	}
	// Shared doubling: the all-zero tree is height+1 distinct nodes.
	if z.NumNodes() != 40-12+1 {
		t.Fatalf("zero tree has %d nodes", z.NumNodes())
	}
}

// TestHadCompactEverywhere is the headline improvement over flat RLE: every
// Hadamard pattern costs O(ways) shared nodes, including the k ~ chunkWays
// band where flat RLE needs 2^(ways-chunkWays) runs.
func TestHadCompactEverywhere(t *testing.T) {
	s := MustSpace(40, 12)
	for k := 0; k < 40; k++ {
		p := s.Had(k)
		if p.NumNodes() > 2*(40-12)+3 {
			t.Fatalf("had(%d) needs %d nodes", k, p.NumNodes())
		}
		if p.Pop() != s.Channels()/2 {
			t.Fatalf("had(%d) pop %d", k, p.Pop())
		}
	}
	// The flat-RLE pathological case is now trivial.
	if n := s.Had(12).NumNodes(); n > 31 {
		t.Fatalf("had(chunkWays) needs %d nodes", n)
	}
}

func TestHadMatchesAoB(t *testing.T) {
	for _, geom := range [][2]int{{8, 4}, {10, 6}, {9, 3}, {12, 8}, {8, 0}} {
		ways, cw := geom[0], geom[1]
		s := MustSpace(ways, cw)
		for k := 0; k < ways; k++ {
			p := s.Had(k)
			want := aob.HadVector(ways, k)
			for ch := uint64(0); ch < s.Channels(); ch++ {
				if p.Get(ch) != want.Get(ch) {
					t.Fatalf("ways=%d cw=%d k=%d ch=%d", ways, cw, k, ch)
				}
			}
		}
	}
}

func TestHashConsingCanonicalizes(t *testing.T) {
	s := MustSpace(10, 2)
	// The same value built three different ways is the same root.
	a := s.Had(7)
	b := s.Had(7).Or(s.Zero())
	c := s.Had(7).And(s.One())
	if !a.Equal(b) || !a.Equal(c) {
		t.Error("equal values, different roots")
	}
	if !a.Xor(a).Equal(s.Zero()) {
		t.Error("x^x != 0")
	}
	// A pattern with period 8 channels built from explicit bits shares
	// nodes aggressively.
	bits := make([]bool, 1024)
	for i := range bits {
		bits[i] = i%8 < 3
	}
	p, err := s.FromBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() > 12 {
		t.Fatalf("periodic pattern uses %d nodes", p.NumNodes())
	}
}

// TestDifferentialVsFlatRE: rex and re must agree on every operation over
// random and periodic inputs.
func TestDifferentialVsFlatRE(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const ways, cw = 9, 3
	sx := MustSpace(ways, cw)
	sf := re.MustSpace(ways, cw)
	n := sx.Channels()
	for trial := 0; trial < 12; trial++ {
		var ab, bb []bool
		switch trial % 3 {
		case 0:
			ab, bb = randBits(r, n, 0.4), randBits(r, n, 0.6)
		case 1:
			ab, bb = periodicBits(r, n, 16, 0.5), periodicBits(r, n, 64, 0.5)
		default:
			ab, bb = periodicBits(r, n, 8, 0.2), randBits(r, n, 0.9)
		}
		xa, err := sx.FromBits(ab)
		if err != nil {
			t.Fatal(err)
		}
		xb, _ := sx.FromBits(bb)
		fa, _ := sf.FromBits(ab)
		fb, _ := sf.FromBits(bb)

		pairs := []struct {
			name string
			x    *Pattern
			f    *re.Pattern
		}{
			{"and", xa.And(xb), fa.And(fb)},
			{"or", xa.Or(xb), fa.Or(fb)},
			{"xor", xa.Xor(xb), fa.Xor(fb)},
			{"not", xa.Not(), fa.Not()},
		}
		for _, pr := range pairs {
			if pr.x.Pop() != pr.f.Pop() {
				t.Fatalf("trial %d %s: pop %d vs %d", trial, pr.name, pr.x.Pop(), pr.f.Pop())
			}
			for probe := 0; probe < 64; probe++ {
				ch := r.Uint64() & (n - 1)
				if pr.x.Get(ch) != pr.f.Get(ch) {
					t.Fatalf("trial %d %s: get(%d)", trial, pr.name, ch)
				}
				if pr.x.Next(ch) != pr.f.Next(ch) {
					t.Fatalf("trial %d %s: next(%d) = %d vs %d", trial, pr.name, ch,
						pr.x.Next(ch), pr.f.Next(ch))
				}
				if pr.x.PopAfter(ch) != pr.f.PopAfter(ch) {
					t.Fatalf("trial %d %s: popAfter(%d) = %d vs %d", trial, pr.name, ch,
						pr.x.PopAfter(ch), pr.f.PopAfter(ch))
				}
			}
		}
	}
}

func TestNextExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	s := MustSpace(8, 2)
	for trial := 0; trial < 8; trial++ {
		density := []float64{0, 0.02, 0.5, 1}[trial%4]
		bits := randBits(r, 256, density)
		if trial >= 4 {
			bits = periodicBits(r, 256, 16, density)
		}
		p, err := s.FromBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		for ch := uint64(0); ch < 256; ch++ {
			var want uint64
			for c := ch + 1; c < 256; c++ {
				if bits[c] {
					want = c
					break
				}
			}
			if got := p.Next(ch); got != want {
				t.Fatalf("density %g trial %d: next(%d) = %d, want %d", density, trial, ch, got, want)
			}
		}
	}
}

func TestPopAfterExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := MustSpace(8, 3)
	bits := periodicBits(r, 256, 32, 0.35)
	p, err := s.FromBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	for ch := uint64(0); ch < 256; ch++ {
		var want uint64
		for c := ch + 1; c < 256; c++ {
			if bits[c] {
				want++
			}
		}
		if got := p.PopAfter(ch); got != want {
			t.Fatalf("popAfter(%d) = %d, want %d", ch, got, want)
		}
	}
}

// TestCrossScaleCombine is the case that defeats both flat RLE and
// single-level periodicity: combining patterns whose periods differ by
// dozens of octaves. Node sharing keeps it tiny and fast.
func TestCrossScaleCombine(t *testing.T) {
	s := MustSpace(60, 12)
	x := s.Had(59).And(s.Had(13)) // periods 2^60 and 2^14 channels
	if x.Pop() != s.Channels()/4 {
		t.Fatalf("pop = %d", x.Pop())
	}
	if n := x.NumNodes(); n > 120 {
		t.Fatalf("cross-scale result uses %d nodes", n)
	}
	// Spot-check channels against the definition bit59 & bit13.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		ch := r.Uint64() & (s.Channels() - 1)
		want := ch>>59&1 == 1 && ch>>13&1 == 1
		if x.Get(ch) != want {
			t.Fatalf("get(%d)", ch)
		}
	}
	// Next from mid-space: the first channel with both bits set after ch.
	got := x.Next(0)
	want := uint64(1)<<59 | 1<<13
	if got != want {
		t.Fatalf("next(0) = %d, want %d", got, want)
	}
}

// TestSixtyWayEntanglement exercises the full supported range: 2^60
// channels — about 10^14 times beyond the 16-way hardware.
func TestSixtyWayEntanglement(t *testing.T) {
	s := MustSpace(60, 12)
	x := s.Had(59).And(s.Had(58))
	if x.Pop() != s.Channels()/4 {
		t.Fatalf("pop = %d", x.Pop())
	}
	if got := x.Next(0); got != 3*(s.Channels()/4) {
		t.Fatalf("next(0) = %d", got)
	}
	if x.CompressionRatio() < 1e13 {
		t.Fatalf("compression ratio %g", x.CompressionRatio())
	}
}

func TestDeMorganProperty(t *testing.T) {
	s := MustSpace(30, 10)
	a, b := s.Had(25), s.Had(9)
	if !a.And(b).Not().Equal(a.Not().Or(b.Not())) {
		t.Error("De Morgan fails")
	}
}

func TestNotInvolution(t *testing.T) {
	s := MustSpace(24, 8)
	p := s.Had(20).Xor(s.Had(3))
	if !p.Not().Not().Equal(p) {
		t.Error("not∘not != id")
	}
}

func TestMeasNonDestructive(t *testing.T) {
	s := MustSpace(40, 12)
	p := s.Had(39)
	for i := 0; i < 200; i++ {
		p.Meas(uint64(i) * 0x9E3779B97F4A7C15 % s.Channels())
	}
	if !p.Equal(s.Had(39)) {
		t.Error("meas disturbed pattern")
	}
}

func TestZeroHeightSpace(t *testing.T) {
	// ways == chunkWays: the tree is a single leaf.
	s := MustSpace(6, 6)
	h := s.Had(3)
	want := aob.HadVector(6, 3)
	for ch := uint64(0); ch < 64; ch++ {
		if h.Get(ch) != want.Get(ch) {
			t.Fatalf("ch %d", ch)
		}
		if h.Next(ch) != want.Next(ch) {
			t.Fatalf("next(%d)", ch)
		}
	}
}

func TestFromBitsValidates(t *testing.T) {
	s := MustSpace(8, 4)
	if _, err := s.FromBits(make([]bool, 17)); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestCrossSpacePanics(t *testing.T) {
	a := MustSpace(8, 4).Zero()
	b := MustSpace(8, 4).Zero()
	defer func() {
		if recover() == nil {
			t.Error("cross-space op did not panic")
		}
	}()
	a.And(b)
}

func TestMemoization(t *testing.T) {
	s := MustSpace(30, 10)
	a, b := s.Had(29), s.Had(4)
	_ = a.And(b)
	before := s.NodeCount()
	c1 := a.And(b)
	c2 := b.And(a) // symmetric memo hit
	if s.NodeCount() != before {
		t.Error("repeat op created new nodes")
	}
	if !c1.Equal(c2) {
		t.Error("memoized commutativity broken")
	}
}

func TestNextEdgeAtTop(t *testing.T) {
	s := MustSpace(20, 8)
	o := s.One()
	if o.Next(s.Channels()-1) != 0 {
		t.Error("next past the last channel must be 0")
	}
	if o.PopAfter(s.Channels()-1) != 0 {
		t.Error("popAfter past the last channel must be 0")
	}
	if o.Next(s.Channels()-2) != s.Channels()-1 {
		t.Error("next at the penultimate channel")
	}
}

func BenchmarkRexAnd60Way(b *testing.B) {
	s := MustSpace(60, 12)
	x, y := s.Had(59), s.Had(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.And(y)
	}
}

func BenchmarkRexVsFlat16Way(b *testing.B) {
	b.Run("rex", func(b *testing.B) {
		s := MustSpace(16, 12)
		x, y := s.Had(12), s.Had(13) // flat RLE's bad band
		for i := 0; i < b.N; i++ {
			_ = x.And(y)
		}
	})
	b.Run("flat", func(b *testing.B) {
		s := re.MustSpace(16, 12)
		x, y := s.Had(12), s.Had(13)
		for i := 0; i < b.N; i++ {
			_ = x.And(y)
		}
	})
}

func BenchmarkRexNext(b *testing.B) {
	s := MustSpace(48, 12)
	p := s.Had(47)
	for i := 0; i < b.N; i++ {
		_ = p.Next(uint64(i))
	}
}
