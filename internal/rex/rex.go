// Package rex implements the hierarchical compressed pbit representation:
// the fully nested member of the paper's regular-expression family, beyond
// package re's flat run-length encoding.
//
// A pattern over 2^(ways-chunkWays) chunk symbols is stored as a perfect
// binary tree over the chunk index space, with hash-consing: identical
// subtrees are one shared node. A periodic pattern — and every PBP
// initializer is periodic — therefore costs O(ways) distinct nodes no
// matter how many times its period repeats, and channel-wise operations
// recurse over *distinct node pairs only* (memoized), never over
// repetitions. The textual analog is a fully nested RE such as
// (0^(2^47))((00 11)^(2^45)); structurally the scheme is the same
// shared-subgraph idea as the binary decision diagrams the paper points to
// when discussing cswap ("which also are used to construct binary decision
// diagrams").
//
// This answers the paper's closing question — "It remains to be seen if the
// manipulation of regular patterns of AoB blocks will effectively scale to
// very high entanglements" — constructively for the Qat operation set:
// logic, reductions (ANY/ALL/POP), channel sampling and next all run in
// time polynomial in the number of distinct subtrees, not in 2^ways.
//
// Hash-consing makes equality a root-pointer comparison, and the node pool
// plus all memo tables live in the Space, which (like the Qat coprocessor's
// single instruction stream) is not safe for concurrent use.
//
// Because the structure is BDD-like, it inherits BDD sensitivities: the
// size of an indicator pattern depends on how the program assigns
// entanglement channel sets to its variables (an equality indicator is
// linear-sized with interleaved operand sets and exponential with blocked
// ones — Bryant's classic ordering result, measured in
// core.TestVariableOrderingMatters), and functions with inherently large
// decision diagrams (middle bits of wide multiplication) do not compress
// under any order.
package rex

import (
	"encoding/binary"
	"fmt"

	"tangled/internal/aob"
)

// MaxWays bounds total entanglement so channel numbers stay comfortably
// within uint64 arithmetic.
const MaxWays = 62

// node is one hash-consed subtree covering 2^height chunks.
type node struct {
	id  uint64
	pop uint64 // 1-channels in this subtree (cached)
	// leaf (height 0): sym != nil. internal: lo/hi halves.
	sym    *aob.Vector
	lo, hi *node
}

// Space owns the node pool, symbol table and operation memos for one
// pattern geometry.
type Space struct {
	ways      int
	chunkWays int

	symbols map[string]*aob.Vector
	leaves  map[*aob.Vector]*node
	pairs   map[[2]uint64]*node
	opMemo  map[opKey]*node
	symMemo map[symOpKey]*aob.Vector
	nextID  uint64

	zeroSym *aob.Vector
	oneSym  *aob.Vector
	// zeroAt[h] caches the all-zero subtree of each height.
	zeroAt []*node
	oneAt  []*node
}

type opKey struct {
	op   byte
	a, b uint64
}

type symOpKey struct {
	op   byte
	a, b *aob.Vector
}

// NewSpace creates a Space for ways-way entanglement over 2^chunkWays-bit
// chunk symbols.
func NewSpace(ways, chunkWays int) (*Space, error) {
	if chunkWays < 0 || chunkWays > aob.MaxWays {
		return nil, fmt.Errorf("rex: chunkWays %d out of range [0,%d]", chunkWays, aob.MaxWays)
	}
	if ways < chunkWays {
		return nil, fmt.Errorf("rex: ways %d smaller than chunkWays %d", ways, chunkWays)
	}
	if ways > MaxWays {
		return nil, fmt.Errorf("rex: ways %d exceeds maximum %d", ways, MaxWays)
	}
	s := &Space{
		ways:      ways,
		chunkWays: chunkWays,
		symbols:   make(map[string]*aob.Vector),
		leaves:    make(map[*aob.Vector]*node),
		pairs:     make(map[[2]uint64]*node),
		opMemo:    make(map[opKey]*node),
		symMemo:   make(map[symOpKey]*aob.Vector),
	}
	s.zeroSym = s.intern(aob.New(chunkWays))
	s.oneSym = s.intern(aob.OneVector(chunkWays))
	h := s.height()
	s.zeroAt = make([]*node, h+1)
	s.oneAt = make([]*node, h+1)
	s.zeroAt[0] = s.leaf(s.zeroSym)
	s.oneAt[0] = s.leaf(s.oneSym)
	for i := 1; i <= h; i++ {
		s.zeroAt[i] = s.mk(s.zeroAt[i-1], s.zeroAt[i-1])
		s.oneAt[i] = s.mk(s.oneAt[i-1], s.oneAt[i-1])
	}
	return s, nil
}

// MustSpace is NewSpace panicking on error (static geometry).
func MustSpace(ways, chunkWays int) *Space {
	s, err := NewSpace(ways, chunkWays)
	if err != nil {
		panic(err)
	}
	return s
}

// Ways returns the total entanglement degree.
func (s *Space) Ways() int { return s.ways }

// ChunkWays returns the per-symbol entanglement degree.
func (s *Space) ChunkWays() int { return s.chunkWays }

// Channels returns 2^ways.
func (s *Space) Channels() uint64 { return uint64(1) << uint(s.ways) }

// height is the tree height: the root covers 2^height chunks.
func (s *Space) height() int { return s.ways - s.chunkWays }

// chunkChannels is channels per leaf symbol.
func (s *Space) chunkChannels() uint64 { return uint64(1) << uint(s.chunkWays) }

// SymbolCount reports distinct interned chunk symbols.
func (s *Space) SymbolCount() int { return len(s.symbols) }

// NodeCount reports the total hash-consed node pool size.
func (s *Space) NodeCount() int { return len(s.leaves) + len(s.pairs) }

func (s *Space) intern(sym *aob.Vector) *aob.Vector {
	key := symKey(sym)
	if got, ok := s.symbols[key]; ok {
		return got
	}
	s.symbols[key] = sym
	return sym
}

func symKey(v *aob.Vector) string {
	buf := make([]byte, 8*v.NumWords())
	for i := 0; i < v.NumWords(); i++ {
		binary.LittleEndian.PutUint64(buf[8*i:], v.Word(i))
	}
	return string(buf)
}

// leaf returns the canonical leaf node for an interned symbol.
func (s *Space) leaf(sym *aob.Vector) *node {
	if n, ok := s.leaves[sym]; ok {
		return n
	}
	s.nextID++
	n := &node{id: s.nextID, pop: sym.Pop(), sym: sym}
	s.leaves[sym] = n
	return n
}

// mk returns the canonical internal node over two halves.
func (s *Space) mk(lo, hi *node) *node {
	key := [2]uint64{lo.id, hi.id}
	if n, ok := s.pairs[key]; ok {
		return n
	}
	s.nextID++
	n := &node{id: s.nextID, pop: lo.pop + hi.pop, lo: lo, hi: hi}
	s.pairs[key] = n
	return n
}

// replicate builds the height-h tree tiling a single height-h0 subtree.
func (s *Space) replicate(n *node, from, to int) *node {
	for h := from; h < to; h++ {
		n = s.mk(n, n)
	}
	return n
}

// Pattern is one compressed pbit value: a root in the Space's shared node
// pool. Patterns are immutable; all operations return new roots.
type Pattern struct {
	sp   *Space
	root *node
}

// Space returns the owning Space.
func (p *Pattern) Space() *Space { return p.sp }

// Zero returns the all-zeros pattern.
func (s *Space) Zero() *Pattern { return &Pattern{sp: s, root: s.zeroAt[s.height()]} }

// One returns the all-ones pattern.
func (s *Space) One() *Pattern { return &Pattern{sp: s, root: s.oneAt[s.height()]} }

// Had returns the k-th Hadamard pattern (channel e holds bit k of e). Every
// k costs O(ways) shared nodes — including the k ≈ chunkWays band where
// flat run-length encoding needs 2^(ways-chunkWays) runs.
func (s *Space) Had(k int) *Pattern {
	if k < 0 || k >= s.ways {
		panic(fmt.Sprintf("rex: had index %d out of range [0,%d)", k, s.ways))
	}
	h := s.height()
	if k < s.chunkWays {
		n := s.replicate(s.leaf(s.intern(aob.HadVector(s.chunkWays, k))), 0, h)
		return &Pattern{sp: s, root: n}
	}
	// At height k-chunkWays+1 the subtree is (zeros, ones); above, tile it.
	hh := k - s.chunkWays + 1
	n := s.mk(s.zeroAt[hh-1], s.oneAt[hh-1])
	return &Pattern{sp: s, root: s.replicate(n, hh, h)}
}

// FromBits builds a pattern from an explicit channel-0-first bit slice of
// exactly 2^ways bits. Hash-consing canonicalizes any regularity
// automatically. Test helper; exponential input by nature.
func (s *Space) FromBits(bits []bool) (*Pattern, error) {
	if uint64(len(bits)) != s.Channels() {
		return nil, fmt.Errorf("rex: got %d bits, want %d", len(bits), s.Channels())
	}
	cc := s.chunkChannels()
	level := make([]*node, uint64(1)<<uint(s.height()))
	for ci := range level {
		v := aob.New(s.chunkWays)
		for off := uint64(0); off < cc; off++ {
			v.Set(off, bits[uint64(ci)*cc+off])
		}
		level[ci] = s.leaf(s.intern(v))
	}
	for len(level) > 1 {
		up := make([]*node, len(level)/2)
		for i := range up {
			up[i] = s.mk(level[2*i], level[2*i+1])
		}
		level = up
	}
	return &Pattern{sp: s, root: level[0]}, nil
}

func (p *Pattern) mustShareSpace(q *Pattern) {
	if p.sp != q.sp {
		panic("rex: patterns from different spaces")
	}
}

// symOp applies a chunk-level operation with memoization.
func (s *Space) symOp(op byte, a, b *aob.Vector) *aob.Vector {
	k := symOpKey{op, a, b}
	if got, ok := s.symMemo[k]; ok {
		return got
	}
	v := aob.New(s.chunkWays)
	switch op {
	case '&':
		v.And(a, b)
	case '|':
		v.Or(a, b)
	case '^':
		v.Xor(a, b)
	}
	sym := s.intern(v)
	s.symMemo[k] = sym
	s.symMemo[symOpKey{op, b, a}] = sym
	return sym
}

// apply runs a binary op over two trees, recursing only into distinct node
// pairs (memoized).
func (s *Space) apply(op byte, a, b *node) *node {
	k := opKey{op, a.id, b.id}
	if got, ok := s.opMemo[k]; ok {
		return got
	}
	var out *node
	if a.sym != nil {
		out = s.leaf(s.symOp(op, a.sym, b.sym))
	} else {
		out = s.mk(s.apply(op, a.lo, b.lo), s.apply(op, a.hi, b.hi))
	}
	s.opMemo[k] = out
	// Commutative ops hit from either order.
	s.opMemo[opKey{op, b.id, a.id}] = out
	return out
}

// And returns p AND q channel-wise.
func (p *Pattern) And(q *Pattern) *Pattern {
	p.mustShareSpace(q)
	return &Pattern{sp: p.sp, root: p.sp.apply('&', p.root, q.root)}
}

// Or returns p OR q channel-wise.
func (p *Pattern) Or(q *Pattern) *Pattern {
	p.mustShareSpace(q)
	return &Pattern{sp: p.sp, root: p.sp.apply('|', p.root, q.root)}
}

// Xor returns p XOR q channel-wise.
func (p *Pattern) Xor(q *Pattern) *Pattern {
	p.mustShareSpace(q)
	return &Pattern{sp: p.sp, root: p.sp.apply('^', p.root, q.root)}
}

// Not returns the channel-wise complement.
func (p *Pattern) Not() *Pattern {
	return &Pattern{sp: p.sp, root: p.sp.applyNot(p.root)}
}

func (s *Space) applyNot(n *node) *node {
	k := opKey{'~', n.id, 0}
	if got, ok := s.opMemo[k]; ok {
		return got
	}
	var out *node
	if n.sym != nil {
		sk := symOpKey{'~', n.sym, nil}
		sym, ok := s.symMemo[sk]
		if !ok {
			v := n.sym.Clone()
			v.Not()
			sym = s.intern(v)
			s.symMemo[sk] = sym
		}
		out = s.leaf(sym)
	} else {
		out = s.mk(s.applyNot(n.lo), s.applyNot(n.hi))
	}
	s.opMemo[k] = out
	return out
}

// Get returns the bit at channel ch (modulo the channel count).
func (p *Pattern) Get(ch uint64) bool {
	ch &= p.sp.Channels() - 1
	n := p.root
	for h := p.sp.height() - 1; h >= 0; h-- {
		if ch>>uint(h+p.sp.chunkWays)&1 == 1 {
			n = n.hi
		} else {
			n = n.lo
		}
	}
	return n.sym.Get(ch & (p.sp.chunkChannels() - 1))
}

// Meas returns Get as 0/1 — the non-destructive Qat meas.
func (p *Pattern) Meas(ch uint64) uint64 {
	if p.Get(ch) {
		return 1
	}
	return 0
}

// Pop returns the total 1-channel count (cached per node: O(1)).
func (p *Pattern) Pop() uint64 { return p.root.pop }

// Any reports whether any channel holds a 1 (O(1)).
func (p *Pattern) Any() bool { return p.root.pop != 0 }

// All reports whether every channel holds a 1 (O(1)).
func (p *Pattern) All() bool { return p.root.pop == p.sp.Channels() }

// firstOne returns the channel of the lowest 1 in subtree n (which must
// have pop > 0), with the subtree starting at channel base.
func (p *Pattern) firstOne(n *node, base uint64, h int) uint64 {
	for n.sym == nil {
		h--
		if n.lo.pop != 0 {
			n = n.lo
		} else {
			base += uint64(1) << uint(h+p.sp.chunkWays)
			n = n.hi
		}
	}
	if n.sym.Get(0) {
		return base
	}
	return base + n.sym.Next(0)
}

// Next returns the lowest channel strictly greater than ch holding a 1, or
// 0 if none — an O(height) descent.
func (p *Pattern) Next(ch uint64) uint64 {
	ch &= p.sp.Channels() - 1
	from := ch + 1
	if from >= p.sp.Channels() {
		return 0
	}
	res, ok := p.nextFrom(p.root, 0, p.sp.height(), from)
	if !ok {
		return 0
	}
	return res
}

// nextFrom finds the lowest 1-channel >= from within the subtree at
// [base, base + 2^(h+chunkWays)).
func (p *Pattern) nextFrom(n *node, base uint64, h int, from uint64) (uint64, bool) {
	if n.pop == 0 {
		return 0, false
	}
	span := uint64(1) << uint(h+p.sp.chunkWays)
	if from <= base {
		return p.firstOne(n, base, h), true
	}
	if from >= base+span {
		return 0, false
	}
	if n.sym != nil {
		local := from - base
		if n.sym.Get(local) {
			return from, true
		}
		if nx := n.sym.Next(local); nx != 0 && nx > local {
			return base + nx, true
		}
		return 0, false
	}
	half := span / 2
	if from < base+half {
		if r, ok := p.nextFrom(n.lo, base, h-1, from); ok {
			return r, true
		}
	}
	return p.nextFrom(n.hi, base+half, h-1, from)
}

// PopAfter counts 1 bits strictly above channel ch — an O(height) descent.
func (p *Pattern) PopAfter(ch uint64) uint64 {
	ch &= p.sp.Channels() - 1
	from := ch + 1
	if from >= p.sp.Channels() {
		return 0
	}
	return p.popFrom(p.root, 0, p.sp.height(), from)
}

// popFrom counts 1 bits at channels >= from within the subtree at base.
func (p *Pattern) popFrom(n *node, base uint64, h int, from uint64) uint64 {
	span := uint64(1) << uint(h+p.sp.chunkWays)
	if from <= base {
		return n.pop
	}
	if from >= base+span || n.pop == 0 {
		return 0
	}
	if n.sym != nil {
		local := from - base
		// Bits >= local: PopAfter(local-1) counts exactly those.
		return n.sym.PopAfter(local - 1)
	}
	half := span / 2
	return p.popFrom(n.lo, base, h-1, from) + p.popFrom(n.hi, base+half, h-1, from)
}

// Equal is semantic equality; hash-consing makes it a pointer comparison.
func (p *Pattern) Equal(q *Pattern) bool {
	return p.sp == q.sp && p.root == q.root
}

// NumNodes counts the distinct subtrees reachable from p — the compressed
// size, and the nesting depth of the equivalent regular expression.
func (p *Pattern) NumNodes() int {
	seen := map[uint64]bool{}
	var walk func(n *node)
	walk = func(n *node) {
		if seen[n.id] {
			return
		}
		seen[n.id] = true
		if n.sym == nil {
			walk(n.lo)
			walk(n.hi)
		}
	}
	walk(p.root)
	return len(seen)
}

// StorageBits estimates the compressed footprint: 192 bits of node header
// per distinct node plus each distinct leaf symbol's chunk.
func (p *Pattern) StorageBits() uint64 {
	seenN := map[uint64]bool{}
	seenS := map[*aob.Vector]bool{}
	var bits uint64
	var walk func(n *node)
	walk = func(n *node) {
		if seenN[n.id] {
			return
		}
		seenN[n.id] = true
		bits += 192
		if n.sym != nil {
			if !seenS[n.sym] {
				seenS[n.sym] = true
				bits += p.sp.chunkChannels()
			}
			return
		}
		walk(n.lo)
		walk(n.hi)
	}
	walk(p.root)
	return bits
}

// CompressionRatio returns uncompressed bits / compressed bits.
func (p *Pattern) CompressionRatio() float64 {
	return float64(p.sp.Channels()) / float64(p.StorageBits())
}

// String summarizes the pattern structurally.
func (p *Pattern) String() string {
	return fmt.Sprintf("rex{ways:%d nodes:%d pop:%d}", p.sp.ways, p.NumNodes(), p.Pop())
}
