package cpu

// Cancel-latency pin: a canceled running program must unwind at the next
// checkpoint, a bounded number of instructions after the cancellation
// lands — not at some distant context check. The cancel is injected
// deterministically through the Out writer (sys print executes the hook
// synchronously inside Step), so the instruction count after the cancel
// point is exact, not a wall-clock race.

import (
	"context"
	"errors"
	"testing"

	"tangled/internal/asm"
)

// cancelOnWrite cancels a context the first time the program prints.
type cancelOnWrite struct {
	cancel context.CancelFunc
	writes int
}

func (w *cancelOnWrite) Write(p []byte) (int, error) {
	w.writes++
	w.cancel()
	return len(p), nil
}

func TestCancelCheckpointLatency(t *testing.T) {
	// Print once (cancel fires there), then spin forever.
	prog, err := asm.Assemble(`
	lex $0,2
	lex $1,65
	sys
loop:
	add $2,$3
	br loop
`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := New(2)
	m.Out = &cancelOnWrite{cancel: cancel}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	err = m.RunContext(ctx, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancel landed on instruction 3 (the sys). Execution may continue
	// only until the next checkpoint: ≤ ctxCheckInterval more instructions.
	const setup = 3
	if got, max := m.Stats.Insts, uint64(setup+ctxCheckInterval); got > max {
		t.Fatalf("ran %d instructions, want ≤ %d (checkpoint every %d)", got, max, ctxCheckInterval)
	}
}
