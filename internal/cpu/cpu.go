// Package cpu implements a functional (instruction-at-a-time) model of the
// Tangled processor with its integrated Qat coprocessor — the reference
// semantics that the pipelined model (package pipeline) must match, in the
// same way the students' multi-cycle Verilog design preceded their
// pipelined one.
//
// Architectural state: sixteen 16-bit general registers, a 16-bit PC, a
// 65,536-word unified memory, and the Qat register file. All Qat
// instructions are fetched and decoded by Tangled; only meas/next/pop
// deliver results back into Tangled registers.
package cpu

import (
	"context"
	"errors"
	"fmt"
	"io"

	"tangled/internal/asm"
	"tangled/internal/bf16"
	"tangled/internal/isa"
	"tangled/internal/qat"
)

// MemWords is the size of Tangled's word-addressed memory.
const MemWords = 1 << 16

// Syscall service codes, taken from $0 when sys executes. The paper leaves
// sys semantics to the implementation; these match the conventions used by
// this repository's examples.
const (
	SysHalt     = 0 // stop execution
	SysPutInt   = 1 // print $1 as a signed decimal integer and newline
	SysPutChar  = 2 // print the low byte of $1
	SysPutFloat = 3 // print $1 interpreted as bfloat16
)

// ErrHalted is returned by Step once the machine has halted.
var ErrHalted = errors.New("cpu: machine halted")

// ErrNoHalt is returned by Run when the step budget is exhausted.
var ErrNoHalt = errors.New("cpu: step budget exhausted without halt")

// Stats accumulates execution counters.
type Stats struct {
	Insts         uint64 // instructions executed
	TangledInsts  uint64
	QatInsts      uint64
	BranchesTaken uint64
	Branches      uint64
	MemReads      uint64
	MemWrites     uint64
	// MultiCycles is the cycle count a multi-cycle (non-pipelined)
	// implementation would spend on this execution; see MultiCyclesFor.
	MultiCycles uint64
}

// Machine is one Tangled/Qat system.
type Machine struct {
	Regs [isa.NumRegs]uint16
	PC   uint16
	Mem  []uint16
	Qat  *qat.Coprocessor

	// Enc is the binary instruction codec; nil means isa.Primary. The
	// paper's students each picked their own encoding, so the machine is
	// layout-agnostic.
	Enc isa.Encoding

	// RecipLUT selects the course hardware's table-lookup reciprocal
	// datapath (within 1 ulp) instead of the correctly rounded divider.
	RecipLUT bool

	Halted bool
	Stats  Stats

	// Out receives sys service output; nil discards it.
	Out io.Writer

	// Trace, when non-nil, observes every executed instruction.
	Trace func(pc uint16, inst isa.Inst)

	// Metrics, when non-nil, feeds the performance-counter set (see
	// metrics.go); attach with AttachMetrics so the coprocessor's set is
	// wired in the same motion.
	Metrics *Metrics
}

// New builds a machine whose Qat coprocessor has the given entanglement
// degree (16 for the paper's design, 8 for the student versions).
func New(ways int) *Machine {
	return &Machine{Mem: make([]uint16, MemWords), Qat: qat.New(ways)}
}

// NewWithConstants builds a machine whose Qat uses the Section 5
// constant-register convention instead of zero/one/had instructions.
func NewWithConstants(ways int) *Machine {
	return &Machine{Mem: make([]uint16, MemWords), Qat: qat.NewWithConstants(ways)}
}

// NewFromConfig builds a machine whose Qat coprocessor is selected by cfg —
// the constructor that reaches the RE compressed backend (and, through it,
// entanglement beyond the dense 16-way limit).
func NewFromConfig(cfg qat.Config) (*Machine, error) {
	q, err := qat.NewFromConfig(cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{Mem: make([]uint16, MemWords), Qat: q}, nil
}

// Load installs an assembled program image at address 0 and resets the
// whole machine: PC, registers, memory, statistics, and the Qat register
// file (its reserved constant bank, if any, is preserved). A machine can
// therefore be reused across runs deterministically — and without
// reallocating any of its state, which is what makes pooled reuse (package
// farm) allocation-free at steady state. Host attachments (Out, Trace) are
// left alone so they can be configured once before repeated loads.
func (m *Machine) Load(p *asm.Program) error {
	if len(p.Words) > len(m.Mem) {
		return fmt.Errorf("cpu: program of %d words exceeds memory", len(p.Words))
	}
	m.clearArch()
	copy(m.Mem, p.Words)
	return nil
}

// Reset restores power-on state without loading a program: architectural
// state is cleared like Load, and the host-side attachments that must not
// leak between unrelated runs — the sys output writer and the instruction
// trace hook — are detached. Hardware identity (Enc, RecipLUT, the Qat
// constant bank) is preserved: it describes which machine this is, not what
// it last ran. Pooled executors reset a machine before handing it to a new
// tenant.
func (m *Machine) Reset() {
	m.clearArch()
	m.Out = nil
	m.Trace = nil
	m.AttachMetrics(nil)
}

// clearArch zeroes all architectural state in place.
func (m *Machine) clearArch() {
	for i := range m.Mem {
		m.Mem[i] = 0
	}
	m.Regs = [isa.NumRegs]uint16{}
	m.PC = 0
	m.Halted = false
	m.Stats = Stats{}
	m.Qat.Reset()
}

// Fetch decodes the instruction at pc without executing it.
func (m *Machine) Fetch(pc uint16) (isa.Inst, int, error) {
	w0 := m.Mem[pc]
	w1 := m.Mem[uint16(pc+1)] // wraps at the top of memory
	if m.Enc != nil {
		return m.Enc.Decode(w0, w1)
	}
	return isa.Decode(w0, w1)
}

// Step executes one instruction. It returns ErrHalted if the machine was
// already halted, or a decode/execution error (leaving PC at the faulting
// instruction).
func (m *Machine) Step() error {
	if m.Halted {
		return ErrHalted
	}
	inst, n, err := m.Fetch(m.PC)
	if err != nil {
		return fmt.Errorf("cpu: at %#04x: %w", m.PC, err)
	}
	if m.Trace != nil {
		m.Trace(m.PC, inst)
	}
	pc := m.PC
	m.PC += uint16(n)
	m.Stats.Insts++
	m.Stats.MultiCycles += MultiCyclesFor(inst)
	m.Metrics.retire(inst)
	if inst.Op.IsQat() {
		m.Stats.QatInsts++
		out, writes, err := m.Qat.Exec(inst, m.Regs[inst.RD])
		if err != nil {
			m.PC = pc
			return err
		}
		if writes {
			m.Regs[inst.RD] = out
		}
		return nil
	}
	m.Stats.TangledInsts++
	return m.execTangled(inst)
}

func (m *Machine) execTangled(inst isa.Inst) error {
	r := &m.Regs
	d, s := inst.RD, inst.RS
	switch inst.Op {
	case isa.OpAdd:
		r[d] += r[s]
	case isa.OpAddf:
		r[d] = uint16(bf16.Add(bf16.Float(r[d]), bf16.Float(r[s])))
	case isa.OpAnd:
		r[d] &= r[s]
	case isa.OpBrf:
		m.Stats.Branches++
		if r[d] == 0 {
			m.Stats.BranchesTaken++
			m.PC += uint16(int16(inst.Imm))
		}
	case isa.OpBrt:
		m.Stats.Branches++
		if r[d] != 0 {
			m.Stats.BranchesTaken++
			m.PC += uint16(int16(inst.Imm))
		}
	case isa.OpCopy:
		r[d] = r[s]
	case isa.OpFloat:
		r[d] = uint16(bf16.FromInt(int16(r[d])))
	case isa.OpInt:
		r[d] = uint16(bf16.ToInt(bf16.Float(r[d])))
	case isa.OpJumpr:
		m.PC = r[d]
	case isa.OpLex:
		r[d] = uint16(int16(inst.Imm))
	case isa.OpLhi:
		r[d] = r[d]&0x00FF | uint16(uint8(inst.Imm))<<8
	case isa.OpLoad:
		m.Stats.MemReads++
		r[d] = m.Mem[r[s]]
	case isa.OpMul:
		r[d] = uint16(int16(r[d]) * int16(r[s]))
	case isa.OpMulf:
		r[d] = uint16(bf16.Mul(bf16.Float(r[d]), bf16.Float(r[s])))
	case isa.OpNeg:
		r[d] = uint16(-int16(r[d]))
	case isa.OpNegf:
		r[d] = uint16(bf16.Float(r[d]).Neg())
	case isa.OpNot:
		r[d] = ^r[d]
	case isa.OpOr:
		r[d] |= r[s]
	case isa.OpRecip:
		if m.RecipLUT {
			r[d] = uint16(bf16.RecipLUT(bf16.Float(r[d])))
		} else {
			r[d] = uint16(bf16.Recip(bf16.Float(r[d])))
		}
	case isa.OpShift:
		r[d] = shift(r[d], int16(r[s]))
	case isa.OpSlt:
		if int16(r[d]) < int16(r[s]) {
			r[d] = 1
		} else {
			r[d] = 0
		}
	case isa.OpStore:
		m.Stats.MemWrites++
		m.Mem[r[s]] = r[d]
	case isa.OpSys:
		return m.syscall()
	case isa.OpXor:
		r[d] ^= r[s]
	default:
		return fmt.Errorf("cpu: unimplemented op %s", inst.Op.Name())
	}
	return nil
}

// shift implements the Tangled shift instruction: left for non-negative
// counts, arithmetic right for negative counts (the sign-aware reading of
// the paper's "shift left/right ... $d=$d<<$s"). Counts of magnitude >= 16
// produce the fully-shifted result (0, or the sign fill).
func shift(v uint16, by int16) uint16 {
	if by >= 0 {
		if by >= 16 {
			return 0
		}
		return v << uint(by)
	}
	n := uint(-by)
	if n >= 16 {
		n = 15
	}
	return uint16(int16(v) >> n)
}

func (m *Machine) syscall() error {
	switch m.Regs[0] {
	case SysHalt:
		m.Halted = true
	case SysPutInt:
		m.print("%d\n", int16(m.Regs[1]))
	case SysPutChar:
		m.print("%c", rune(m.Regs[1]&0xFF))
	case SysPutFloat:
		m.print("%g\n", bf16.Float(m.Regs[1]).Float64())
	default:
		return fmt.Errorf("cpu: unknown sys service %d", m.Regs[0])
	}
	return nil
}

func (m *Machine) print(format string, args ...interface{}) {
	if m.Out != nil {
		fmt.Fprintf(m.Out, format, args...)
	}
}

// Run executes until halt, error, or maxSteps instructions.
func (m *Machine) Run(maxSteps uint64) error {
	for i := uint64(0); i < maxSteps; i++ {
		if err := m.Step(); err != nil {
			return err
		}
		if m.Halted {
			return nil
		}
	}
	return ErrNoHalt
}

// ctxCheckInterval is how many instructions RunContext executes between
// cancellation polls. The budget is set by the slowest instruction, not the
// average: one Qat op on 65,536-bit words costs microseconds, so a 2048-step
// window could hold a canceled job's worker for milliseconds. 256 keeps the
// poll under ~0.1% of even pure-scalar loops while letting DELETE /v1/jobs
// and router-side disconnects reclaim the worker promptly.
const ctxCheckInterval = 256

// RunContext executes like Run but honors context cancellation, polling ctx
// every ctxCheckInterval instructions. On cancellation the returned error
// wraps ctx.Err(), so errors.Is(err, context.DeadlineExceeded) and friends
// work. The machine is left in a consistent (resumable or reloadable) state.
func (m *Machine) RunContext(ctx context.Context, maxSteps uint64) error {
	if ctx == nil || ctx.Done() == nil {
		return m.Run(maxSteps)
	}
	done := ctx.Done()
	for executed := uint64(0); executed < maxSteps; {
		n := maxSteps - executed
		if n > ctxCheckInterval {
			n = ctxCheckInterval
		}
		for i := uint64(0); i < n; i++ {
			if err := m.Step(); err != nil {
				return err
			}
			if m.Halted {
				return nil
			}
		}
		executed += n
		select {
		case <-done:
			return fmt.Errorf("cpu: run cancelled after %d instructions: %w", m.Stats.Insts, ctx.Err())
		default:
		}
	}
	return ErrNoHalt
}

// RunProgram is a convenience: assemble src, load, and run.
func RunProgram(src string, ways int, maxSteps uint64, out io.Writer) (*Machine, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	m := New(ways)
	m.Out = out
	if err := m.Load(p); err != nil {
		return nil, err
	}
	if err := m.Run(maxSteps); err != nil {
		return m, err
	}
	return m, nil
}
