package cpu

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"tangled/internal/asm"
	"tangled/internal/isa"
)

// These tests pin the pooled-reuse contract: Load fully re-initializes
// architectural state (and nothing else), Reset additionally detaches the
// host hooks that must never leak between unrelated tenants of a pooled
// machine.

const haltSrc = "lex $0,0\nsys\n"

func TestResetClearsStateAndDetachesHostHooks(t *testing.T) {
	prog, err := asm.Assemble("lex $3,7\nlex $4,5\nlhi $4,0x7F\nstore $3,$4\none @9\nlex $0,1\nlex $1,42\nsys\nlex $0,0\nsys\n")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	traced := 0
	m := New(4)
	m.Out = &out
	m.Trace = func(pc uint16, inst isa.Inst) { traced++ }
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 || traced == 0 {
		t.Fatal("fixture program produced no observable work")
	}

	m.Reset()
	if m.Out != nil || m.Trace != nil {
		t.Fatal("Reset must detach Out and Trace")
	}
	if m.Halted || m.PC != 0 || m.Stats != (Stats{}) {
		t.Fatalf("Reset left control state: halted=%v pc=%#x stats=%+v", m.Halted, m.PC, m.Stats)
	}
	if m.Regs != [isa.NumRegs]uint16{} {
		t.Fatalf("Reset left registers: %v", m.Regs)
	}
	for addr, w := range m.Mem {
		if w != 0 {
			t.Fatalf("Reset left memory word %#x at %#x", w, addr)
		}
	}
	if got := m.Qat.Reg(9).Pop(); got != 0 {
		t.Fatalf("Reset left Qat @9 with population %d", got)
	}
}

func TestLoadPreservesHostHooks(t *testing.T) {
	// The benchmarks (and any configure-once caller) set Out a single time
	// and Load repeatedly; Load must not detach it.
	prog, err := asm.Assemble("lex $0,1\nlex $1,3\nsys\nlex $0,0\nsys\n")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m := New(2)
	m.Out = &out
	for i := 0; i < 2; i++ {
		if err := m.Load(prog); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(100); err != nil {
			t.Fatal(err)
		}
	}
	if got := out.String(); got != "3\n3\n" {
		t.Fatalf("output across reloads = %q, want %q", got, "3\n3\n")
	}
}

func TestRunContextCancellation(t *testing.T) {
	prog, err := asm.Assemble("loop:\nadd $1,$2\nbr loop\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(2)
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = m.RunContext(ctx, 1<<62)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The machine must remain reusable after cancellation.
	halt, err := asm.Assemble(haltSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(halt); err != nil {
		t.Fatal(err)
	}
	if err := m.RunContext(context.Background(), 100); err != nil {
		t.Fatalf("machine unusable after cancelled run: %v", err)
	}
}

func TestRunContextBudget(t *testing.T) {
	prog, err := asm.Assemble("loop:\nadd $1,$2\nbr loop\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(2)
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.RunContext(context.Background(), 10_000); !errors.Is(err, ErrNoHalt) {
		t.Fatalf("err = %v, want ErrNoHalt", err)
	}
}
