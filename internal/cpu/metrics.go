package cpu

// Performance counters for the functional machine, the software analog of a
// hardware PMU: per-opcode retirement counts and multi-cycle-machine state
// counts by instruction class. Handles come from an obs.Registry and may be
// shared across machines (farm workers), where the atomic counters make the
// aggregation exact. A nil *Metrics disables everything at the cost of one
// nil check per retired instruction.

import (
	"tangled/internal/isa"
	"tangled/internal/obs"
	"tangled/internal/qat"
)

// Instruction classes for cycle accounting: where a multi-cycle
// implementation spends its states (see MultiCyclesFor).
const (
	classALU = iota
	classBranch
	classMem
	classFloat
	classSys
	classQatGate
	classQatRead
	numClasses
)

var classNames = [numClasses]string{"alu", "branch", "mem", "float", "sys", "qat-gate", "qat-read"}

// classOf buckets an opcode into its cycle-accounting class.
func classOf(op isa.Op) int {
	switch op {
	case isa.OpBrf, isa.OpBrt, isa.OpJumpr:
		return classBranch
	case isa.OpLoad, isa.OpStore:
		return classMem
	case isa.OpAddf, isa.OpMulf, isa.OpNegf, isa.OpRecip, isa.OpFloat, isa.OpInt:
		return classFloat
	case isa.OpSys:
		return classSys
	case isa.OpQMeas, isa.OpQNext, isa.OpQPop:
		return classQatRead
	default:
		if op.IsQat() {
			return classQatGate
		}
		return classALU
	}
}

// Metrics is the functional machine's counter set. Construct with
// NewMetrics; a nil value disables instrumentation.
type Metrics struct {
	// OpRetired counts retired instructions by opcode. Because the label is
	// the opcode, derived figures come free: OpRetired[load] is the memory
	// read count, OpRetired[brt]+OpRetired[brf] the branch count.
	OpRetired *obs.CounterVec
	// ClassCycles counts the states a multi-cycle (non-pipelined)
	// implementation would spend, by instruction class — the per-class CPI
	// numerator against OpRetired.
	ClassCycles *obs.CounterVec
	// Qat is the coprocessor counter set, attached to Machine.Qat alongside
	// this set (see Machine.AttachMetrics).
	Qat *qat.Metrics
}

// NewMetrics registers the functional-machine counters on r and returns the
// handle set, or nil when r is nil (instrumentation off).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	opNames := make([]string, isa.NumOps)
	for i := range opNames {
		opNames[i] = isa.Op(i).Name()
	}
	return &Metrics{
		OpRetired: r.CounterVec("cpu_op_retired_total",
			"retired instructions by opcode", "op", opNames),
		ClassCycles: r.CounterVec("cpu_class_cycles_total",
			"multi-cycle machine states by instruction class", "class", classNames[:]),
		Qat: qat.NewMetrics(r),
	}
}

// retire accounts one retired instruction; nil-safe.
func (mm *Metrics) retire(inst isa.Inst) {
	if mm == nil {
		return
	}
	mm.OpRetired.At(int(inst.Op)).Inc()
	mm.ClassCycles.At(classOf(inst.Op)).Add(MultiCyclesFor(inst))
}

// AttachMetrics wires a counter set into the machine and its coprocessor;
// nil detaches both. Like Out and Trace, metrics are a host attachment:
// Reset drops them so a pooled machine cannot bill one tenant's work to
// another's registry.
func (m *Machine) AttachMetrics(mm *Metrics) {
	if mm == nil {
		m.Metrics = nil
		m.Qat.Metrics = nil
		return
	}
	m.Metrics = mm
	m.Qat.Metrics = mm.Qat
}
