package cpu

import (
	"bytes"
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/bf16"
	"tangled/internal/isa"
)

// run assembles and runs src on a fresh machine, failing the test on any
// error, and returns the machine and captured sys output.
func run(t *testing.T, ways int, src string) (*Machine, string) {
	t.Helper()
	var out bytes.Buffer
	m, err := RunProgram(src, ways, 1_000_000, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, out.String()
}

// halt is the standard program epilogue: request SysHalt.
const halt = "\nlex $0,0\nsys\n"

// TestTable1ISASemanticsInt exercises each integer/logic instruction from
// Table 1 against its documented functionality.
func TestTable1ISASemanticsInt(t *testing.T) {
	cases := []struct {
		name string
		src  string
		reg  uint8
		want int16
	}{
		{"add", "lex $1,30\nlex $2,12\nadd $1,$2", 1, 42},
		{"add wraps", "loadi $1,0x7FFF\nlex $2,1\nadd $1,$2", 1, -32768},
		{"and", "loadi $1,0xF0F0\nloadi $2,0xFF00\nand $1,$2", 1, -4096}, // 0xF000
		{"or", "lex $1,0x0F\nloadi $2,0xF0\nor $1,$2", 1, 0xFF},
		{"xor", "loadi $1,0xFF\nlex $2,0x0F\nxor $1,$2", 1, 0xF0},
		{"not", "lex $1,0\nnot $1", 1, -1},
		{"copy", "lex $2,77\ncopy $1,$2", 1, 77},
		{"lex negative", "lex $1,-5", 1, -5},
		{"lex positive", "lex $1,127", 1, 127},
		{"lhi", "lex $1,0x34\nlhi $1,0x12", 1, 0x1234},
		{"lhi preserves low", "lex $1,-1\nlhi $1,0", 1, 0x00FF},
		{"mul", "lex $1,-6\nlex $2,7\nmul $1,$2", 1, -42},
		{"mul wraps", "loadi $1,300\nloadi $2,300\nmul $1,$2", 1, int16(uint16(90000 & 0xFFFF))},
		{"neg", "lex $1,5\nneg $1", 1, -5},
		{"neg min", "loadi $1,0x8000\nneg $1", 1, -32768},
		{"shift left", "lex $1,3\nlex $2,4\nshift $1,$2", 1, 48},
		{"shift right", "lex $1,-16\nlex $2,-2\nshift $1,$2", 1, -4},
		{"shift right logical-ish", "loadi $1,0x0100\nlex $2,-8\nshift $1,$2", 1, 1},
		{"shift big", "lex $1,1\nlex $2,16\nshift $1,$2", 1, 0},
		{"slt true", "lex $1,-3\nlex $2,5\nslt $1,$2", 1, 1},
		{"slt false", "lex $1,5\nlex $2,-3\nslt $1,$2", 1, 0},
		{"slt equal", "lex $1,9\nlex $2,9\nslt $1,$2", 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, _ := run(t, 4, c.src+halt)
			if got := int16(m.Regs[c.reg]); got != c.want {
				t.Errorf("$%d = %d, want %d", c.reg, got, c.want)
			}
		})
	}
}

// TestTable1ISASemanticsFloat exercises the bfloat16 instructions.
func TestTable1ISASemanticsFloat(t *testing.T) {
	oneHalf := uint16(bf16.FromFloat32(0.5))
	two := uint16(bf16.FromFloat32(2.0))
	three := uint16(bf16.FromFloat32(3.0))
	six := uint16(bf16.FromFloat32(6.0))
	five := uint16(bf16.FromFloat32(5.0))

	m, _ := run(t, 4, `
	lex $1,2
	float $1          ; $1 = 2.0
	lex $2,3
	float $2          ; $2 = 3.0
	copy $3,$1
	mulf $3,$2        ; $3 = 6.0
	copy $4,$1
	addf $4,$2        ; $4 = 5.0
	copy $5,$1
	recip $5          ; $5 = 0.5
	copy $6,$2
	negf $6           ; $6 = -3.0
	copy $7,$3
	int $7            ; $7 = 6
	`+halt)
	if m.Regs[1] != two {
		t.Errorf("float: %#04x want %#04x", m.Regs[1], two)
	}
	if m.Regs[2] != three {
		t.Errorf("float 3: %#04x", m.Regs[2])
	}
	if m.Regs[3] != six {
		t.Errorf("mulf: %#04x want %#04x", m.Regs[3], six)
	}
	if m.Regs[4] != five {
		t.Errorf("addf: %#04x want %#04x", m.Regs[4], five)
	}
	if m.Regs[5] != oneHalf {
		t.Errorf("recip: %#04x want %#04x", m.Regs[5], oneHalf)
	}
	if bf16.Float(m.Regs[6]).Float64() != -3.0 {
		t.Errorf("negf: %g", bf16.Float(m.Regs[6]).Float64())
	}
	if int16(m.Regs[7]) != 6 {
		t.Errorf("int: %d", int16(m.Regs[7]))
	}
}

func TestLoadStore(t *testing.T) {
	m, _ := run(t, 4, `
	loadi $1,0x1234
	loadi $2,1000
	store $1,$2       ; mem[1000] = 0x1234
	load $3,$2        ; $3 = mem[1000]
	`+halt)
	if m.Mem[1000] != 0x1234 {
		t.Errorf("mem[1000] = %#x", m.Mem[1000])
	}
	if m.Regs[3] != 0x1234 {
		t.Errorf("$3 = %#x", m.Regs[3])
	}
	if m.Stats.MemReads != 1 || m.Stats.MemWrites != 1 {
		t.Errorf("mem stats: %+v", m.Stats)
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 with a conditional loop.
	m, _ := run(t, 4, `
	lex $1,0          ; sum
	lex $2,10         ; i
	lex $3,-1
	loop: add $1,$2
	add $2,$3
	brt $2,loop
	`+halt)
	if int16(m.Regs[1]) != 55 {
		t.Errorf("sum = %d, want 55", int16(m.Regs[1]))
	}
	if m.Stats.BranchesTaken != 9 || m.Stats.Branches != 10 {
		t.Errorf("branch stats: %+v", m.Stats)
	}
}

func TestJumpr(t *testing.T) {
	m, _ := run(t, 4, `
	loadi $1,target
	jumpr $1
	lex $2,99         ; skipped
	target: lex $3,7
	`+halt)
	if m.Regs[2] != 0 || m.Regs[3] != 7 {
		t.Errorf("$2=%d $3=%d", m.Regs[2], m.Regs[3])
	}
}

// TestTable2MacrosExecute runs each pseudo-instruction through the machine.
func TestTable2MacrosExecute(t *testing.T) {
	m, _ := run(t, 4, `
	lex $5,1
	br first
	lex $6,1          ; must be skipped
	first: jump second
	lex $6,2          ; must be skipped
	second: jumpt $5,third
	lex $6,3          ; must be skipped
	third: lex $7,0
	jumpf $7,fourth
	lex $6,4          ; must be skipped
	fourth: loadi $8,0x7FFF
	`+halt)
	if m.Regs[6] != 0 {
		t.Errorf("a skipped path executed: $6=%d", m.Regs[6])
	}
	if m.Regs[8] != 0x7FFF {
		t.Errorf("loadi: $8=%#x", m.Regs[8])
	}
}

func TestJumpfFallsThrough(t *testing.T) {
	m, _ := run(t, 4, `
	lex $1,1          ; true: jumpf must NOT jump
	jumpf $1,away
	lex $2,42
	away: `+halt)
	if m.Regs[2] != 42 {
		t.Errorf("jumpf with true condition skipped fall-through")
	}
}

func TestSysOutput(t *testing.T) {
	_, out := run(t, 4, `
	lex $0,1
	lex $1,-123
	sys               ; print int
	lex $0,2
	lex $1,'H'
	sys               ; print char
	lex $1,'\n'
	sys
	lex $0,3
	lex $1,2
	float $1
	sys               ; print float 2
	`+halt)
	if out != "-123\nH\n2\n" {
		t.Errorf("sys output = %q", out)
	}
}

func TestSysUnknownService(t *testing.T) {
	p, err := asm.Assemble("lex $0,99\nsys\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(4)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err == nil {
		t.Fatal("unknown sys service did not error")
	}
}

// TestFig6SingleCycleMachine runs a mixed Tangled+Qat program on the
// functional machine — the Figure 6 organization where one instruction
// stream feeds both ALUs.
func TestFig6SingleCycleMachine(t *testing.T) {
	m, _ := run(t, 8, `
	had @10,3         ; pattern: 8 zeros, 8 ones, ...
	lex $1,0
	meas $1,@10       ; channel 0 -> 0
	lex $2,12
	meas $2,@10       ; channel 12 -> 1
	lex $3,5
	next $3,@10       ; first 1 after 5 -> 8
	zero @11
	one @12
	and @13,@10,@12   ; @13 = @10
	xor @14,@10,@10   ; @14 = 0
	lex $4,0
	next $4,@14       ; none -> 0
	lex $5,0
	pop $5,@13        ; ones after channel 0 in had-3 = 128
	`+halt)
	if m.Regs[1] != 0 {
		t.Errorf("meas ch0 = %d", m.Regs[1])
	}
	if m.Regs[2] != 1 {
		t.Errorf("meas ch12 = %d", m.Regs[2])
	}
	if m.Regs[3] != 8 {
		t.Errorf("next after 5 = %d, want 8", m.Regs[3])
	}
	if m.Regs[4] != 0 {
		t.Errorf("next on zero = %d", m.Regs[4])
	}
	if m.Regs[5] != 128 {
		t.Errorf("pop = %d, want 128", m.Regs[5])
	}
	if m.Stats.QatInsts != 10 {
		t.Errorf("qat inst count = %d", m.Stats.QatInsts)
	}
}

// TestPaperNextSequence is the exact three-instruction example from
// Section 2.7: had @123,4 / lex $8,42 / next $8,@123 leaves 48 in $8.
func TestPaperNextSequence(t *testing.T) {
	m, _ := run(t, 16, "had @123,4\nlex $8,42\nnext $8,@123"+halt)
	if m.Regs[8] != 48 {
		t.Errorf("$8 = %d, want 48", m.Regs[8])
	}
}

func TestQatSwapInstructions(t *testing.T) {
	m, _ := run(t, 8, `
	had @1,0
	had @2,1
	swap @1,@2
	lex $1,1
	meas $1,@1        ; had-1 pattern: channel 1 -> 0
	lex $2,2
	meas $2,@1        ; channel 2 -> 1
	one @3
	cswap @1,@2,@3    ; full swap back
	lex $3,1
	meas $3,@1        ; had-0: channel 1 -> 1
	`+halt)
	if m.Regs[1] != 0 || m.Regs[2] != 1 {
		t.Errorf("swap: meas = %d,%d", m.Regs[1], m.Regs[2])
	}
	if m.Regs[3] != 1 {
		t.Errorf("cswap restore failed: %d", m.Regs[3])
	}
}

func TestQatNotGates(t *testing.T) {
	m, _ := run(t, 8, `
	zero @1
	not @1            ; all ones
	had @2,2
	cnot @1,@2        ; @1 ^= had2
	lex $1,0
	meas $1,@1        ; had2 ch0=0 -> @1 ch0 stays 1
	lex $2,4
	meas $2,@1        ; had2 ch4=1 -> flipped to 0
	one @3
	one @4
	zero @5
	ccnot @5,@3,@4    ; 0 ^= 1&1 = all ones
	lex $3,17
	meas $3,@5
	`+halt)
	if m.Regs[1] != 1 || m.Regs[2] != 0 {
		t.Errorf("cnot: %d %d", m.Regs[1], m.Regs[2])
	}
	if m.Regs[3] != 1 {
		t.Errorf("ccnot: %d", m.Regs[3])
	}
}

func TestHadExceedsWaysErrors(t *testing.T) {
	p, err := asm.Assemble("had @1,12\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(8) // only 8-way: pattern 12 impossible
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("had 12 on 8-way: err = %v", err)
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	m := New(4)
	m.Mem[0] = 0xA000
	if err := m.Step(); err == nil {
		t.Fatal("illegal instruction executed")
	}
	if m.PC != 0 {
		t.Error("PC advanced past faulting instruction")
	}
}

func TestRunBudget(t *testing.T) {
	p, err := asm.Assemble("spin: br spin\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(4)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != ErrNoHalt {
		t.Fatalf("err = %v, want ErrNoHalt", err)
	}
}

func TestStepAfterHalt(t *testing.T) {
	m, _ := run(t, 4, halt)
	if err := m.Step(); err != ErrHalted {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
}

func TestConstantRegisterMachine(t *testing.T) {
	p, err := asm.Assemble(`
	xor @100,@0,@3    ; H1 via constants: 0 XOR H1
	lex $1,2
	meas $1,@100      ; H1: channel 2 -> 1
	` + halt)
	if err != nil {
		t.Fatal(err)
	}
	m := NewWithConstants(8)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 1 {
		t.Errorf("meas = %d", m.Regs[1])
	}
}

func TestConstantRegisterWriteFaults(t *testing.T) {
	p, err := asm.Assemble("one @0\n")
	if err != nil {
		t.Fatal(err)
	}
	m := NewWithConstants(8)
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("write to @0: err = %v", err)
	}
}

func TestTraceHook(t *testing.T) {
	p, _ := asm.Assemble("lex $1,1\nand @1,@2,@3" + halt)
	m := New(4)
	_ = m.Load(p)
	var ops []isa.Op
	m.Trace = func(pc uint16, inst isa.Inst) { ops = append(ops, inst.Op) }
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{isa.OpLex, isa.OpQAnd, isa.OpLex, isa.OpSys}
	if len(ops) != len(want) {
		t.Fatalf("traced %d ops", len(ops))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("trace %d: %s want %s", i, ops[i].Name(), want[i].Name())
		}
	}
}

func TestStatsClassification(t *testing.T) {
	m, _ := run(t, 8, "lex $1,1\nzero @1\none @2\nand @3,@1,@2"+halt)
	if m.Stats.TangledInsts != 3 || m.Stats.QatInsts != 3 {
		t.Errorf("stats: %+v", m.Stats)
	}
}

func BenchmarkFig6FunctionalSim(b *testing.B) {
	// Dense mixed loop: measures functional-simulator throughput.
	src := `
	lex $1,100
	lex $3,-1
	had @1,3
	loop: and @2,@1,@1
	xor @3,@2,@1
	copy $2,$1
	next $2,@3
	add $1,$3
	brt $1,loop
	` + halt
	p, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	m := New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Load(p); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Stats.Insts), "insts/run")
}

func BenchmarkTable3QatOps(b *testing.B) {
	p, err := asm.Assemble("loop: and @1,@2,@3\nxor @4,@1,@5\nor @6,@4,@7\nbr loop\n")
	if err != nil {
		b.Fatal(err)
	}
	m := New(16)
	_ = m.Load(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMultiCyclesFor(t *testing.T) {
	cases := []struct {
		inst isa.Inst
		want uint64
	}{
		{isa.Inst{Op: isa.OpLex}, 4}, // fetch+decode+execute+wb
		{isa.Inst{Op: isa.OpAdd}, 4},
		{isa.Inst{Op: isa.OpBrt}, 3}, // no wb
		{isa.Inst{Op: isa.OpSys}, 3},
		{isa.Inst{Op: isa.OpLoad}, 5},  // + mem
		{isa.Inst{Op: isa.OpStore}, 4}, // + mem, no wb
		{isa.Inst{Op: isa.OpQZero}, 3}, // qat: no tangled wb
		{isa.Inst{Op: isa.OpQAnd}, 4},  // two fetch states
		{isa.Inst{Op: isa.OpQMeas}, 4}, // one word + wb
	}
	for _, c := range cases {
		if got := MultiCyclesFor(c.inst); got != c.want {
			t.Errorf("%s: %d cycles, want %d", c.inst.Op.Name(), got, c.want)
		}
	}
}

func TestMultiCyclesAccumulate(t *testing.T) {
	m, _ := run(t, 4, "lex $1,1\nadd $1,$1"+halt)
	// lex(4) + add(4) + lex(4) + sys(3) = 15.
	if m.Stats.MultiCycles != 15 {
		t.Errorf("multi cycles = %d, want 15", m.Stats.MultiCycles)
	}
}

// TestS5QatMacrosSemantics executes the reversible-macro expansions and
// the native instructions side by side: identical final Qat state.
func TestS5QatMacrosSemantics(t *testing.T) {
	prologue := "had @1,0\nhad @2,1\nhad @3,2\n"
	native := prologue + "cnot @1,@2\nccnot @2,@1,@3\nswap @1,@2\ncswap @1,@2,@3\n" + halt
	macro := prologue + "mcnot @1,@2\nmccnot @2,@1,@3\nmswap @1,@2\nmcswap @1,@2,@3\n" + halt
	mn, _ := run(t, 8, native)
	mm, _ := run(t, 8, macro)
	for q := uint8(1); q <= 3; q++ {
		if !mn.Qat.Reg(q).Equal(mm.Qat.Reg(q)) {
			t.Errorf("@%d differs between native and macro forms", q)
		}
	}
	if mm.Stats.QatInsts <= mn.Stats.QatInsts {
		t.Error("macro form should execute more instructions")
	}
}

// TestStudentEncodingMachine runs a whole program transcoded to the
// Student layout on a machine configured for that codec — the end-to-end
// form of the paper's "encoding is a free choice" point.
func TestStudentEncodingMachine(t *testing.T) {
	src := `
	lex $1,100
	lex $2,-1
	had @1,3
	loop:
	copy $3,$1
	next $3,@1
	add $1,$2
	brt $1,loop
	lex $0,0
	sys
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ref := New(8)
	if err := ref.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(100000); err != nil {
		t.Fatal(err)
	}

	words, err := isa.Transcode(prog.Words, isa.Primary, isa.Student)
	if err != nil {
		t.Fatal(err)
	}
	m := New(8)
	m.Enc = isa.Student
	if err := m.Load(&asm.Program{Words: words}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if m.Regs != ref.Regs {
		t.Fatalf("student-encoded run differs: %v vs %v", m.Regs, ref.Regs)
	}
	if m.Stats.Insts != ref.Stats.Insts {
		t.Fatalf("instruction counts differ: %d vs %d", m.Stats.Insts, ref.Stats.Insts)
	}
}

// TestStudentEncodingTrapsOnPrimaryImage: running a Primary-encoded image
// under the Student codec faults quickly (the all-zero/illegal majors).
func TestStudentEncodingTrapsOnPrimaryImage(t *testing.T) {
	prog, err := asm.Assemble("sys\n") // primary sys = 0xF007
	if err != nil {
		t.Fatal(err)
	}
	m := New(4)
	m.Enc = isa.Student
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err == nil {
		t.Fatal("cross-encoding confusion not detected")
	}
}

func TestRecipLUTDatapath(t *testing.T) {
	p, err := asm.Assemble("lex $1,3\nfloat $1\nrecip $1\nlex $0,0\nsys\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(4)
	m.RecipLUT = true
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	got := bf16.Float(m.Regs[1])
	want := bf16.RecipLUT(bf16.FromInt(3))
	if got != want {
		t.Errorf("LUT recip = %#04x, want %#04x", uint16(got), uint16(want))
	}
	// Within 1 ulp of the correctly rounded result.
	cr := bf16.Recip(bf16.FromInt(3))
	diff := int32(uint16(got)) - int32(uint16(cr))
	if diff < -1 || diff > 1 {
		t.Errorf("LUT recip off by %d ulp", diff)
	}
}
