package cpu

import "tangled/internal/isa"

// The class projects built a multi-cycle Tangled/Qat before pipelining it;
// this file models that machine's timing so the pipelined speedup can be
// quantified. A multi-cycle implementation spends one state per step
// actually needed by the instruction:
//
//	fetch (one per instruction word) + decode + execute
//	+ memory access (load/store only)
//	+ register write-back (instructions producing a Tangled result)
//
// Pure Qat operations update the coprocessor register file during execute
// and need no separate write-back state (the Qat file is written by the
// coprocessor datapath, not the Tangled register file).

// MultiCyclesFor returns the multi-cycle machine's state count for one
// instruction.
func MultiCyclesFor(inst isa.Inst) uint64 {
	n := uint64(inst.Words()) // fetch states
	n += 2                    // decode + execute
	switch inst.Op {
	case isa.OpLoad, isa.OpStore:
		n++ // memory state
	}
	if inst.Op.WritesTangledReg() {
		n++ // write-back state
	}
	return n
}
