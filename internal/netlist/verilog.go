package netlist

import "fmt"

// Verilog emission: the paper's Figures 7 and 8 give complete parametric
// Verilog for the had and next datapaths. These generators reproduce those
// modules (modulo whitespace) so the repository contains the same artifact
// the paper publishes, parameterized the same way (WAYS). The netlists in
// this package implement the identical structure, so the emitted text is
// backed by executable, tested logic.

// HadVerilog returns the Figure 7 module for WAYS-way entanglement.
func HadVerilog(ways int) string {
	return fmt.Sprintf(`module qathad(aob, h);
parameter WAYS=%d;
input [WAYS-1:0] h;
output [(1<<WAYS)-1:0] aob;
genvar i;
generate
  for (i=0; i<(1<<WAYS); i=i+1) begin
      assign aob[i] = (i >> h);
    end
endgenerate
endmodule
`, ways)
}

// NextVerilog returns the Figure 8 module for WAYS-way entanglement.
func NextVerilog(ways int) string {
	return fmt.Sprintf(`module qatnext(r, aob, s);
parameter WAYS=%d;
input [(1<<WAYS)-1:0] aob;
input [WAYS-1:0] s;
output [WAYS-1:0] r;
genvar pow2;
generate
  wire [WAYS-1:0] tr;
  for (pow2=WAYS-1; pow2>=0; pow2=pow2-1) begin:t
    // wires named as t[pow2].v
    wire [(2<<pow2)-1:0] v;
  end
  assign t[WAYS-1].v =
    {((aob[(1<<WAYS)-1:1] >> s) << s), 1'b0};
  for (pow2=WAYS-1; pow2>0; pow2=pow2-1) begin
    assign {tr[pow2], t[pow2-1].v} =
      ((|t[pow2].v[(1<<pow2)-1:0]) ?
       {1'b0, t[pow2].v[(1<<pow2)-1:0]} :
       {1'b1, t[pow2].v[(2<<pow2)-1:(1<<pow2)]});
  end
  assign tr[0] = ~t[0].v[0];
  assign r = ((t[0].v) ? tr : 0);
endgenerate
endmodule
`, ways)
}
