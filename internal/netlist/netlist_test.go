package netlist

import (
	"math/rand"
	"strings"
	"testing"

	"tangled/internal/aob"
	"tangled/internal/gates"
)

func TestCircuitPrimitives(t *testing.T) {
	c := New()
	a, b := c.Input(), c.Input()
	n := c.Not(a)
	and := c.And(a, b)
	or := c.Or(a, b)
	mux := c.Mux(a, b, n) // a ? n : b
	for _, tc := range []struct{ a, b bool }{{false, false}, {false, true}, {true, false}, {true, true}} {
		read, err := c.Eval([]bool{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if read(n) != !tc.a || read(and) != (tc.a && tc.b) || read(or) != (tc.a || tc.b) {
			t.Fatalf("primitives wrong at %+v", tc)
		}
		want := tc.b
		if tc.a {
			want = !tc.a == false && read(n) // n = !a
			want = read(n)
		}
		if read(mux) != want {
			t.Fatalf("mux wrong at %+v", tc)
		}
	}
	if c.NumGates() != 4 || c.NumInputs() != 2 {
		t.Errorf("counts: %d gates, %d inputs", c.NumGates(), c.NumInputs())
	}
}

func TestOrReduce(t *testing.T) {
	c := New()
	var ids []int32
	for i := 0; i < 9; i++ {
		ids = append(ids, c.Input())
	}
	root := c.OrReduce(ids)
	for probe := 0; probe < 9; probe++ {
		in := make([]bool, 9)
		in[probe] = true
		read, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if !read(root) {
			t.Fatalf("or-reduce missed input %d", probe)
		}
	}
	read, _ := c.Eval(make([]bool, 9))
	if read(root) {
		t.Fatal("or-reduce of zeros")
	}
}

func TestEvalInputCount(t *testing.T) {
	c := New()
	c.Input()
	if _, err := c.Eval(nil); err == nil {
		t.Fatal("wrong input count accepted")
	}
}

// TestFig7HadNetlistMatchesBehavior: the structural circuit computes
// exactly aob.Had for every pattern index, at several widths.
func TestFig7HadNetlistMatchesBehavior(t *testing.T) {
	for _, ways := range []int{1, 2, 3, 5, 8} {
		nl, err := HadCircuit(ways)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < ways; k++ {
			got, err := nl.EvalHad(k)
			if err != nil {
				t.Fatal(err)
			}
			want := aob.HadVector(ways, k)
			for ch := range got {
				if got[ch] != want.Get(uint64(ch)) {
					t.Fatalf("ways=%d k=%d ch=%d", ways, k, ch)
				}
			}
		}
	}
}

// TestFig7HadNetlistCost: the structural gate count matches the analytic
// model exactly (ways-1 muxes per output channel).
func TestFig7HadNetlistCost(t *testing.T) {
	for _, ways := range []int{2, 4, 8} {
		nl, err := HadCircuit(ways)
		if err != nil {
			t.Fatal(err)
		}
		want := gates.HadMuxCost(ways)
		if uint64(nl.C.NumGates()) != want.Gates {
			t.Errorf("ways=%d: netlist %d gates, model %d", ways, nl.C.NumGates(), want.Gates)
		}
		if nl.C.Depth() != want.Levels {
			t.Errorf("ways=%d: netlist depth %d, model %d", ways, nl.C.Depth(), want.Levels)
		}
	}
}

// TestFig8NextNetlistMatchesBehavior: the structural Figure 8 circuit
// equals the architectural Next on random vectors — the role of the
// students' Verilog testbenches, for the hardest module in the project.
func TestFig8NextNetlistMatchesBehavior(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, ways := range []int{1, 2, 3, 4, 6, 8} {
		nl, err := NextCircuit(ways)
		if err != nil {
			t.Fatal(err)
		}
		n := uint64(1) << uint(ways)
		trials := 20
		if ways <= 3 {
			trials = 60
		}
		for trial := 0; trial < trials; trial++ {
			v := aob.New(ways)
			bits := make([]bool, n)
			for ch := uint64(0); ch < n; ch++ {
				b := r.Intn(3) == 0
				bits[ch] = b
				v.Set(ch, b)
			}
			for s := uint64(0); s < n; s++ {
				got, err := nl.EvalNext(bits, s)
				if err != nil {
					t.Fatal(err)
				}
				if want := v.Next(s); got != want {
					t.Fatalf("ways=%d next(%d) over %s: netlist %d, architecture %d",
						ways, s, v, got, want)
				}
			}
		}
	}
}

// TestFig8NextNetlistCost: measured structure vs the analytic model. The
// barrel shifter dominates and must match exactly; the CTZ section adds
// the small constant factors (result NOTs and the validity ANDs) the
// analytic model ignores.
func TestFig8NextNetlistCost(t *testing.T) {
	for _, ways := range []int{4, 6, 8, 10} {
		nl, err := NextCircuit(ways)
		if err != nil {
			t.Fatal(err)
		}
		model := gates.NextCost(ways, 2)
		got := uint64(nl.C.NumGates())
		// The netlist shifts an (n-1)-wide vector (the model charges n) and
		// adds 2*ways bookkeeping gates; agreement within 2% is structural
		// agreement.
		lo := model.Gates * 98 / 100
		hi := model.Gates * 102 / 100
		if got < lo || got > hi {
			t.Errorf("ways=%d: netlist %d gates, model %d", ways, got, model.Gates)
		}
		// Depth: the model sums OR-tree depth and mux level per CTZ stage
		// plus 2*ways shifter levels; the netlist adds the final AND.
		if d := nl.C.Depth(); d < model.Levels-ways || d > model.Levels+ways {
			t.Errorf("ways=%d: netlist depth %d, model %d", ways, d, model.Levels)
		}
	}
}

// TestFig8StudentScale: the 8-way (256-bit) configuration the students
// built evaluates fast enough to sweep every start channel exhaustively
// on a Hadamard pattern — and gives the paper's worked-example answer at
// 16 channels... scaled: had-2 pattern, next(2) = 4.
func TestFig8StudentScale(t *testing.T) {
	nl, err := NextCircuit(8)
	if err != nil {
		t.Fatal(err)
	}
	v := aob.HadVector(8, 4) // 16 zeros, 16 ones, ...
	bits := make([]bool, 256)
	for ch := uint64(0); ch < 256; ch++ {
		bits[ch] = v.Get(ch)
	}
	for s := uint64(0); s < 256; s++ {
		got, err := nl.EvalNext(bits, s)
		if err != nil {
			t.Fatal(err)
		}
		if want := v.Next(s); got != want {
			t.Fatalf("next(%d): %d vs %d", s, got, want)
		}
	}
	// The Section 2.7 example at this scale: next after 42 is 48.
	got, _ := nl.EvalNext(bits, 42)
	if got != 48 {
		t.Fatalf("worked example: %d", got)
	}
}

func TestCircuitValidation(t *testing.T) {
	if _, err := HadCircuit(0); err == nil {
		t.Error("ways 0 accepted")
	}
	if _, err := NextCircuit(17); err == nil {
		t.Error("ways 17 accepted")
	}
}

func BenchmarkFig8NetlistEval8Way(b *testing.B) {
	nl, err := NextCircuit(8)
	if err != nil {
		b.Fatal(err)
	}
	bits := make([]bool, 256)
	for i := range bits {
		bits[i] = i%16 >= 8
	}
	b.ReportMetric(float64(nl.C.NumGates()), "gates")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nl.EvalNext(bits, uint64(i)&255); err != nil {
			b.Fatal(err)
		}
	}
}

// TestVerilogEmission: the emitted modules carry the paper's exact
// structural lines (Figures 7 and 8).
func TestVerilogEmission(t *testing.T) {
	had := HadVerilog(16)
	for _, frag := range []string{
		"module qathad(aob, h);",
		"parameter WAYS=16;",
		"assign aob[i] = (i >> h);",
	} {
		if !strings.Contains(had, frag) {
			t.Errorf("had verilog missing %q", frag)
		}
	}
	next := NextVerilog(8)
	for _, frag := range []string{
		"module qatnext(r, aob, s);",
		"parameter WAYS=8;",
		"{((aob[(1<<WAYS)-1:1] >> s) << s), 1'b0};",
		"assign tr[0] = ~t[0].v[0];",
		"assign r = ((t[0].v) ? tr : 0);",
	} {
		if !strings.Contains(next, frag) {
			t.Errorf("next verilog missing %q", frag)
		}
	}
}
